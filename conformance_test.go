package sspubsub

// Cross-substrate conformance: the BuildSR convergence scenario must pass
// identically on the deterministic discrete-event scheduler and on the
// concurrent goroutine runtime. "Identically" is meaningful because the
// legitimate state is unique (Lemma 2): for a given member count the
// converged overlay has exactly one label assignment, so both substrates
// must end in the same topology even though the concurrent run's message
// interleaving is arbitrary. Run with -race to validate the runtime's
// synchronization (CI does).

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"
)

// conformanceResult captures everything the scenario asserts on.
type conformanceResult struct {
	labels      []string // sorted member labels after convergence
	afterCrash  []string // sorted member labels after crash recovery
	payloads    []string // sorted payloads known to every member
	memberCount int
}

// runConvergenceScenario is the BuildSR scenario from the system tests:
// fresh join burst → convergence; publish burst → full dissemination;
// crash → re-convergence. The rounds budgets are virtual time on
// RuntimeSim and wall-clock intervals on RuntimeConcurrent.
func runConvergenceScenario(t *testing.T, kind RuntimeKind, n int, seed int64) conformanceResult {
	t.Helper()
	s := NewSimulation(SimOptions{Runtime: kind, Seed: seed, Interval: 2 * time.Millisecond})
	defer s.Close()

	ids := s.AddSubscribers(n)
	s.JoinAll(1)
	if _, ok := s.RunUntilConverged(1, n, 5000); !ok {
		t.Fatalf("[%s] no convergence with %d members: %s", kind, n, s.Explain(1))
	}

	var res conformanceResult
	for _, id := range s.Members(1) {
		res.labels = append(res.labels, s.Label(id, 1))
	}
	sort.Strings(res.labels)

	members := s.Members(1)
	const pubs = 5
	for p := 0; p < pubs; p++ {
		s.Publish(members[p%len(members)], 1, fmt.Sprintf("pub-%d", p))
	}
	if _, ok := s.RunUntil(5000, func() bool { return s.AllHavePubs(1, pubs) && s.TriesEqual(1) }); !ok {
		t.Fatalf("[%s] publications never fully disseminated", kind)
	}
	res.payloads = append(res.payloads, s.Publications(members[0], 1)...)
	sort.Strings(res.payloads)

	s.Crash(ids[0])
	if _, ok := s.RunUntilConverged(1, n-1, 10000); !ok {
		t.Fatalf("[%s] no recovery after crash: %s", kind, s.Explain(1))
	}
	for _, id := range s.Members(1) {
		res.afterCrash = append(res.afterCrash, s.Label(id, 1))
	}
	sort.Strings(res.afterCrash)
	res.memberCount = len(res.afterCrash)
	return res
}

// TestCrossSubstrateConformance runs the scenario on all three substrates
// — deterministic scheduler, concurrent goroutines, and the networked
// loopback transport (every message through the wire codec and a real TCP
// socket) — and requires identical outcomes.
func TestCrossSubstrateConformance(t *testing.T) {
	const n = 10
	simRes := runConvergenceScenario(t, RuntimeSim, n, 5)
	for _, kind := range []RuntimeKind{RuntimeConcurrent, RuntimeNet} {
		res := runConvergenceScenario(t, kind, n, 5)
		if got, want := fmt.Sprint(res.labels), fmt.Sprint(simRes.labels); got != want {
			t.Errorf("converged labels differ: %s %s, sim %s", kind, got, want)
		}
		if got, want := fmt.Sprint(res.afterCrash), fmt.Sprint(simRes.afterCrash); got != want {
			t.Errorf("post-crash labels differ: %s %s, sim %s", kind, got, want)
		}
		if got, want := fmt.Sprint(res.payloads), fmt.Sprint(simRes.payloads); got != want {
			t.Errorf("publication sets differ: %s %s, sim %s", kind, got, want)
		}
		if res.memberCount != n-1 {
			t.Errorf("[%s] member count %d, want %d", kind, res.memberCount, n-1)
		}
	}
	if simRes.memberCount != n-1 {
		t.Errorf("[sim] member count %d, want %d", simRes.memberCount, n-1)
	}
}

// TestOrderedDeliveryConformance is the FIFO/causal conformance vector run
// identically on all three substrates: with an ordered delivery mode one
// publisher's publications must reach every subscriber in publish order,
// each exactly once. The publishes are spaced a couple of rounds apart so
// the publisher's own sequence assignment matches the payload index (the
// publish command itself is a delayed self-send); everything after that —
// flooding, anti-entropy, transport interleaving — is what the ordering
// discipline must absorb.
func TestOrderedDeliveryConformance(t *testing.T) {
	const n = 8
	const pubs = 6
	want := make([]string, pubs)
	for p := 0; p < pubs; p++ {
		want[p] = fmt.Sprintf("ordered-%d", p)
	}
	for _, mode := range []DeliveryMode{ModeFIFO, ModeCausal} {
		for _, kind := range []RuntimeKind{RuntimeSim, RuntimeConcurrent, RuntimeNet} {
			mode, kind := mode, kind
			t.Run(fmt.Sprintf("%s/%s", mode, kind), func(t *testing.T) {
				var mu sync.Mutex
				got := make(map[NodeID][]string)
				s := NewSimulation(SimOptions{
					Runtime: kind, Seed: 7, Interval: time.Millisecond,
					DeliveryMode: mode,
					OnDeliver: func(node NodeID, tp Topic, payload string) {
						mu.Lock()
						got[node] = append(got[node], payload)
						mu.Unlock()
					},
				})
				defer s.Close()
				ids := s.AddSubscribers(n)
				s.JoinAll(1)
				if _, ok := s.RunUntilConverged(1, n, 5000); !ok {
					t.Fatalf("no convergence: %s", s.Explain(1))
				}
				for _, payload := range want {
					s.Publish(ids[0], 1, payload)
					s.RunRounds(2)
				}
				if _, ok := s.RunUntil(5000, func() bool { return s.AllHavePubs(1, pubs) }); !ok {
					t.Fatal("publications never fully disseminated")
				}
				mu.Lock()
				defer mu.Unlock()
				if len(got) != n {
					t.Fatalf("%d subscribers observed deliveries, want %d", len(got), n)
				}
				for id, seq := range got {
					if fmt.Sprint(seq) != fmt.Sprint(want) {
						t.Errorf("node %d delivered %v, want %v", id, seq, want)
					}
				}
			})
		}
	}
}

// TestConcurrentRuntimeUnderChurn stresses the concurrent substrate with
// the crash/restart injector while a topic is converging, then verifies
// the system still reaches the unique legitimate state once churn stops.
func TestConcurrentRuntimeUnderChurn(t *testing.T) {
	s := NewSimulation(SimOptions{Runtime: RuntimeConcurrent, Seed: 9, Interval: time.Millisecond})
	defer s.Close()
	const n = 8
	s.AddSubscribers(n)
	s.JoinAll(1)
	stop := s.StartChurn(9)
	s.RunRounds(100) // let crashes and restarts interleave with joins
	stop()
	if _, ok := s.RunUntilConverged(1, n, 20000); !ok {
		t.Fatalf("no convergence after churn: %s", s.Explain(1))
	}
	want := make([]string, 0, n)
	for _, id := range s.Members(1) {
		want = append(want, s.Label(id, 1))
	}
	if len(want) != n {
		t.Fatalf("%d members after churn, want %d", len(want), n)
	}
}

// TestSimulationFacadeGuards pins the substrate-specific API edges: the
// corruption injectors refuse to run on the concurrent runtime, and the
// runtime kind is reported correctly.
func TestSimulationFacadeGuards(t *testing.T) {
	s := NewSimulation(SimOptions{Runtime: RuntimeConcurrent, Interval: time.Millisecond})
	defer s.Close()
	if s.Runtime() != RuntimeConcurrent {
		t.Errorf("Runtime() = %s", s.Runtime())
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic on the concurrent runtime", name)
			}
		}()
		f()
	}
	mustPanic("CorruptSubscriberStates", func() { s.CorruptSubscriberStates(1) })
	mustPanic("CorruptSupervisorDB", func() { s.CorruptSupervisorDB(1) })
	mustPanic("InjectGarbageMessages", func() { s.InjectGarbageMessages(1, 1) })
	mustPanic("PartitionStates", func() { s.PartitionStates(1, 2) })
	mustPanic("Cluster", func() { s.Cluster() })

	d := NewSimulation(SimOptions{})
	if d.Runtime() != RuntimeSim {
		t.Errorf("default Runtime() = %s", d.Runtime())
	}
	mustPanic("StartChurn", func() { d.StartChurn(1) })
	d.Close() // no-op on sim

	nt := NewSimulation(SimOptions{Runtime: RuntimeNet, Interval: time.Millisecond})
	defer nt.Close()
	if nt.Runtime() != RuntimeNet {
		t.Errorf("net Runtime() = %s", nt.Runtime())
	}
	// The injectors need in-place access to state and the scheduler — the
	// net transport has neither.
	mustPanic("CorruptSubscriberStates/net", func() { nt.CorruptSubscriberStates(1) })
	mustPanic("StartChurn/net", func() { nt.StartChurn(1) })
}
