package sspubsub

// Benchmark harness: one benchmark per experiment (per paper artifact;
// see DESIGN.md's experiment index and EXPERIMENTS.md for recorded
// results). Custom metrics carry the quantities the paper's claims are
// stated in (rounds, messages per round, hops), so
//
//	go test -bench=. -benchmem
//
// regenerates every series. Micro-benchmarks for the hot data structures
// (label algebra, Patricia trie, scheduler) follow at the end.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"sspubsub/internal/baseline"
	"sspubsub/internal/cluster"
	"sspubsub/internal/core"
	"sspubsub/internal/experiments"
	"sspubsub/internal/label"
	"sspubsub/internal/metrics"
	"sspubsub/internal/ordering"
	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
	"sspubsub/internal/topology"
	"sspubsub/internal/trie"
)

const benchTopic sim.Topic = 1

// BenchmarkE1_Figure1Topology constructs SR(16) and verifies its edge
// census against Figure 1 on every iteration.
func BenchmarkE1_Figure1Topology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E1Figure1()
		if res.ByLevel[4] != 16 || res.ByLevel[1] != 1 {
			b.Fatal("Figure 1 mismatch")
		}
	}
}

// BenchmarkE2_DegreeStats builds SR(n) and reports Lemma 3's quantities.
func BenchmarkE2_DegreeStats(b *testing.B) {
	for _, n := range []int{16, 256, 4096, 65536} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var st topology.DegreeStats
			for i := 0; i < b.N; i++ {
				st = topology.New(n).Stats()
			}
			b.ReportMetric(float64(st.MaxDegree), "maxdeg")
			b.ReportMetric(st.AvgDegree, "avgdeg")
			b.ReportMetric(float64(st.Directed), "edges")
		})
	}
}

// BenchmarkE3_ConfigRequestRate measures Theorem 5's request rate in a
// legitimate steady state.
func BenchmarkE3_ConfigRequestRate(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			c := benchConverge(b, n, 100+int64(n))
			c.Sched.ResetCounters()
			b.ResetTimer()
			rounds := 0
			for i := 0; i < b.N; i++ {
				c.Sched.RunRounds(1)
				rounds++
			}
			b.ReportMetric(float64(c.Sched.CountByType("proto.GetConfiguration"))/float64(rounds), "requests/round")
		})
	}
}

// BenchmarkE4_SubscribeOverhead measures one join through full
// re-convergence (Theorem 7's constant supervisor work per operation).
func BenchmarkE4_SubscribeOverhead(b *testing.B) {
	c := benchConverge(b, 16, 11)
	n := 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := c.AddClient()
		c.Join(id, benchTopic)
		n++
		if _, ok := c.RunUntilConverged(benchTopic, n, 2000); !ok {
			b.Fatalf("join %d did not converge", i)
		}
	}
	b.ReportMetric(float64(c.Sched.SentBy(cluster.SupervisorID))/float64(b.N), "sup-msgs/join(total)")
}

// BenchmarkE5_Convergence measures rounds-to-legitimacy per initial-state
// scenario (Theorem 8).
func BenchmarkE5_Convergence(b *testing.B) {
	for _, sc := range experiments.AllScenarios {
		for _, n := range []int{16, 64} {
			b.Run(fmt.Sprintf("%s/n=%d", sc, n), func(b *testing.B) {
				totalRounds := 0
				for i := 0; i < b.N; i++ {
					rounds, ok := benchScenario(sc, n, int64(i)*17+3)
					if !ok {
						b.Fatalf("scenario %s n=%d seed=%d did not converge", sc, n, i)
					}
					totalRounds += rounds
				}
				b.ReportMetric(float64(totalRounds)/float64(b.N), "rounds")
			})
		}
	}
}

func benchScenario(sc experiments.E5Scenario, n int, seed int64) (int, bool) {
	if sc == experiments.ScenarioFresh {
		c := cluster.New(cluster.Options{Seed: seed})
		c.AddClients(n)
		c.JoinAll(benchTopic)
		return c.RunUntilConverged(benchTopic, n, 5000)
	}
	c := cluster.New(cluster.Options{Seed: seed})
	c.AddClients(n)
	c.JoinAll(benchTopic)
	if _, ok := c.RunUntilConverged(benchTopic, n, 5000); !ok {
		return 0, false
	}
	switch sc {
	case experiments.ScenarioCorrupt:
		c.CorruptSubscriberStates(benchTopic)
	case experiments.ScenarioPartition:
		c.PartitionStates(benchTopic, 3)
	case experiments.ScenarioBadDB:
		c.CorruptSupervisorDB(benchTopic)
	case experiments.ScenarioGarbageMsg:
		c.InjectGarbageMessages(benchTopic, 5*n)
	}
	return c.RunUntilConverged(benchTopic, n, 20000)
}

// BenchmarkE6_Closure runs a converged system and reports the steady-state
// maintenance message rate (Theorem 13's quiet state).
func BenchmarkE6_Closure(b *testing.B) {
	c := benchConverge(b, 64, 13)
	c.Sched.ResetCounters()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Sched.RunRounds(1)
	}
	if !c.ConvergedWith(benchTopic, 64) {
		b.Fatal("legitimacy lost during closure run")
	}
	b.ReportMetric(float64(c.Sched.Delivered())/float64(b.N)/64, "msgs/node/round")
}

// BenchmarkE7_PublicationConvergence measures anti-entropy-only
// reconciliation (Theorem 17).
func BenchmarkE7_PublicationConvergence(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			totalRounds := 0
			for i := 0; i < b.N; i++ {
				c := cluster.New(cluster.Options{
					Seed:       int64(i)*7 + int64(n),
					ClientOpts: core.Options{DisableFlooding: true},
				})
				c.AddClients(n)
				c.JoinAll(benchTopic)
				if _, ok := c.RunUntilConverged(benchTopic, n, 2000); !ok {
					b.Fatal("setup failed")
				}
				members := c.Members(benchTopic)
				for p := 0; p < 10; p++ {
					c.Publish(members[p%len(members)], benchTopic, fmt.Sprintf("p%d", p))
				}
				rounds, ok := c.Sched.RunRoundsUntil(20000, func() bool {
					return c.AllHavePubs(benchTopic, 10) && c.TriesEqual(benchTopic)
				})
				if !ok {
					b.Fatal("anti-entropy did not converge")
				}
				totalRounds += rounds
			}
			b.ReportMetric(float64(totalRounds)/float64(b.N), "rounds")
		})
	}
}

// BenchmarkE8_FloodingVsRing reports broadcast depth on SR(n) versus the
// plain ring (Section 4.3 vs the PSVR-style baselines).
func BenchmarkE8_FloodingVsRing(b *testing.B) {
	for _, n := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var skip, ring int
			for i := 0; i < b.N; i++ {
				skip = len(baseline.FloodHops(baseline.NewSkipRing(n), 0)) - 1
				ring = len(baseline.FloodHops(baseline.NewRing(n), 0)) - 1
			}
			b.ReportMetric(float64(skip), "skipring-hops")
			b.ReportMetric(float64(ring), "ring-hops")
		})
	}
}

// BenchmarkE9_Figure2TrieSync replays the Figure 2 reconciliation.
func BenchmarkE9_Figure2TrieSync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E9Figure2()
		if !res.P4Delivered {
			b.Fatal("P4 not delivered")
		}
	}
}

// BenchmarkE10_Congestion reports the balance comparison of Section 1.3.
func BenchmarkE10_Congestion(b *testing.B) {
	const n, keys = 512, 100000
	b.Run("position-balance", func(b *testing.B) {
		var srb, chb baseline.PositionBalance
		for i := 0; i < b.N; i++ {
			rng := rand.New(rand.NewSource(int64(i)))
			srb = baseline.KeyLoad("skip-ring", baseline.NewSkipRing(n).Positions(), keys, rng)
			chb = baseline.KeyLoad("chord", baseline.NewChord(n, rng).Positions(), keys, rng)
		}
		b.ReportMetric(srb.MaxOverAvg, "skipring-max/avg")
		b.ReportMetric(chb.MaxOverAvg, "chord-max/avg")
	})
}

// BenchmarkE11_JoinLocality measures configuration changes per pre-existing
// node while n doubles (Section 4.1).
func BenchmarkE11_JoinLocality(b *testing.B) {
	var res experiments.E11Result
	for i := 0; i < b.N; i++ {
		res, _ = experiments.E11JoinLocality(16, int64(i)+5)
	}
	b.ReportMetric(res.AvgConfigChanges, "cfg-changes/node")
}

// BenchmarkE12_CrashRecovery measures re-convergence after crashing a
// quarter of the ring (Section 3.3).
func BenchmarkE12_CrashRecovery(b *testing.B) {
	totalRounds := 0
	for i := 0; i < b.N; i++ {
		c := benchConverge(b, 32, int64(i)*13+29)
		members := c.Members(benchTopic)
		for j := 0; j < 8; j++ {
			c.Crash(members[j*len(members)/8])
		}
		rounds, ok := c.RunUntilConverged(benchTopic, 24, 20000)
		if !ok {
			b.Fatal("no recovery")
		}
		totalRounds += rounds
	}
	b.ReportMetric(float64(totalRounds)/float64(b.N), "rounds")
}

// BenchmarkE13_SupervisorVsBroker compares central-component load.
func BenchmarkE13_SupervisorVsBroker(b *testing.B) {
	var res experiments.E13Result
	for i := 0; i < b.N; i++ {
		res, _ = experiments.E13SupervisorVsBroker(32, 20, int64(i)+37)
	}
	b.ReportMetric(res.SupPerPublish, "sup-msgs/pub")
	b.ReportMetric(res.BrokerPerPublish, "broker-msgs/pub")
}

// ---- ablation benches (design choices called out in DESIGN.md) ----

// BenchmarkAblationActionIV compares partitioned-state recovery with the
// locally-minimal probe on and off.
func BenchmarkAblationActionIV(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "enabled"
		if disable {
			name = "disabled"
		}
		b.Run(name, func(b *testing.B) {
			totalRounds := 0
			for i := 0; i < b.N; i++ {
				c := cluster.New(cluster.Options{
					Seed:       int64(i)*3 + 41,
					ClientOpts: core.Options{DisableActionIV: disable},
				})
				c.AddClients(16)
				c.JoinAll(benchTopic)
				if _, ok := c.RunUntilConverged(benchTopic, 16, 2000); !ok {
					b.Fatal("setup failed")
				}
				c.PartitionStates(benchTopic, 2)
				rounds, ok := c.RunUntilConverged(benchTopic, 16, 100000)
				if !ok {
					rounds = 100000 // cap: report the cap rather than failing
				}
				totalRounds += rounds
			}
			b.ReportMetric(float64(totalRounds)/float64(b.N), "rounds")
		})
	}
}

// BenchmarkAblationFlooding compares delivery latency with and without the
// PublishNew layer.
func BenchmarkAblationFlooding(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "flooding"
		if disable {
			name = "anti-entropy-only"
		}
		b.Run(name, func(b *testing.B) {
			totalRounds := 0
			for i := 0; i < b.N; i++ {
				c := cluster.New(cluster.Options{
					Seed:       int64(i)*5 + 43,
					ClientOpts: core.Options{DisableFlooding: disable},
				})
				c.AddClients(64)
				c.JoinAll(benchTopic)
				if _, ok := c.RunUntilConverged(benchTopic, 64, 2000); !ok {
					b.Fatal("setup failed")
				}
				c.Publish(c.Members(benchTopic)[0], benchTopic, "x")
				rounds, ok := c.Sched.RunRoundsUntil(20000, func() bool {
					return c.AllHavePubs(benchTopic, 1)
				})
				if !ok {
					b.Fatal("never delivered")
				}
				totalRounds += rounds
			}
			b.ReportMetric(float64(totalRounds)/float64(b.N), "rounds")
		})
	}
}

// ---- micro-benchmarks ----

// BenchmarkLabelFromIndex exercises the label codec.
func BenchmarkLabelFromIndex(b *testing.B) {
	var l label.Label
	for i := 0; i < b.N; i++ {
		l = label.FromIndex(uint64(i))
	}
	_ = l
}

// BenchmarkLabelShortcuts exercises the shortcut derivation (the per-round
// local computation of every subscriber).
func BenchmarkLabelShortcuts(b *testing.B) {
	r := topology.New(1024)
	for i := 0; i < b.N; i++ {
		x := i % 1024
		pred, succ := r.RingNeighbors(x)
		label.Shortcuts(r.Label(x), r.Label(pred), r.Label(succ))
	}
}

// BenchmarkTrieInsert measures hashed Patricia insertion.
func BenchmarkTrieInsert(b *testing.B) {
	t := trie.New(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Insert(trie.NewPublication(64, 1, fmt.Sprintf("payload-%d", i)))
	}
}

// BenchmarkTrieSyncRound measures one full CheckTrie reconciliation round
// between two tries differing in one publication.
func BenchmarkTrieSyncRound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.E9Figure2()
		if !res.TriesEqual {
			b.Fatal("sync failed")
		}
	}
}

// BenchmarkSchedulerThroughput measures raw event throughput of the
// deterministic kernel with the full protocol running.
func BenchmarkSchedulerThroughput(b *testing.B) {
	c := benchConverge(b, 128, 99)
	b.ResetTimer()
	start := c.Sched.Delivered()
	for i := 0; i < b.N; i++ {
		c.Sched.Step()
	}
	b.ReportMetric(float64(c.Sched.Delivered()-start)/float64(b.N), "deliveries/op")
}

// BenchmarkLiveSystemPublish measures end-to-end publish latency on the
// goroutine runtime (8 subscribers).
func BenchmarkLiveSystemPublish(b *testing.B) {
	sys := NewSystem(Options{Seed: 7})
	defer sys.Close()
	pubber := sys.MustClient("pub")
	sub := pubber.Subscribe("t")
	recv := sys.MustClient("recv")
	rsub := recv.Subscribe("t")
	if !sys.WaitStable("t", 2, 10*time.Second) {
		b.Fatal("no stability")
	}
	_ = sub
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pubber.Publish("t", fmt.Sprintf("m%d", i)); err != nil {
			b.Fatal(err)
		}
		<-rsub.Events()
	}
}

// ---- cross-substrate benches (sim scheduler vs concurrent vs net) ----

// crossSubstrateKinds are the three execution substrates every hot-path
// benchmark covers: the deterministic scheduler, the goroutine runtime,
// and the loopback TCP transport (every message through the wire codec).
var crossSubstrateKinds = []RuntimeKind{RuntimeSim, RuntimeConcurrent, RuntimeNet}

// BenchmarkCrossSubstratePublishThroughput measures end-to-end publish
// fan-out on all three substrates: b.N publications are issued into a
// converged 16-node ring and the benchmark runs until every subscriber
// holds every publication (flooding + anti-entropy). pubs/s is the
// sustained system throughput; allocs/op and B/op are the whole-system
// allocation cost per publication, the series the zero-allocation hot
// path is pinned against.
func BenchmarkCrossSubstratePublishThroughput(b *testing.B) {
	for _, kind := range crossSubstrateKinds {
		b.Run(string(kind), func(b *testing.B) {
			s := NewSimulation(SimOptions{Runtime: kind, Seed: 11, Interval: time.Millisecond})
			defer s.Close()
			const n = 16
			s.AddSubscribers(n)
			s.JoinAll(benchTopic)
			if _, ok := s.RunUntilConverged(benchTopic, n, 5000); !ok {
				b.Fatalf("setup: no convergence: %s", s.Explain(benchTopic))
			}
			members := s.Members(benchTopic)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Publish(members[i%len(members)], benchTopic, fmt.Sprintf("p%d", i))
			}
			if _, ok := s.RunUntil(200000, func() bool {
				return s.AllHavePubs(benchTopic, b.N) && s.TriesEqual(benchTopic)
			}); !ok {
				b.Fatal("publications never fully disseminated")
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pubs/s")
		})
	}
}

// BenchmarkHotPathPublishFanout isolates the publish fan-out hot path —
// the O(log n) delivery layer of Section 4.3 — on all three substrates.
// Anti-entropy is disabled so every measured allocation belongs to
// publish → send → (encode → socket → decode →) deliver → forward, with
// no wall-clock-dependent background reconciliation in the series. This
// is the benchmark the zero-allocation acceptance gate pins: allocs/op
// here is the whole-system allocation cost of delivering one publication
// to all 16 subscribers.
func BenchmarkHotPathPublishFanout(b *testing.B) {
	for _, kind := range crossSubstrateKinds {
		b.Run(string(kind), func(b *testing.B) {
			benchHotPathFanout(b, SimOptions{
				Runtime: kind, Seed: 11, Interval: time.Millisecond,
				DisableAntiEntropy: true,
			})
		})
	}
	// Sharded-plane overhead series: the identical fan-out with the topic
	// owned by one of four supervisors. The three single-supervisor series
	// above are the zero-allocation acceptance gate (allocs/op pinned
	// against the committed baseline); this series tracks what the
	// crash-tolerant supervisor plane costs on the publish hot path — by
	// construction nothing, since plane screening, gossip and ownership
	// checks all run supervisor-side, off the flood path.
	b.Run("sim-4sup", func(b *testing.B) {
		benchHotPathFanout(b, SimOptions{
			Runtime: RuntimeSim, Seed: 11, Interval: time.Millisecond,
			DisableAntiEntropy: true, Supervisors: 4,
		})
	})
}

func benchHotPathFanout(b *testing.B, opts SimOptions) {
	s := NewSimulation(opts)
	defer s.Close()
	const n = 16
	s.AddSubscribers(n)
	s.JoinAll(benchTopic)
	if _, ok := s.RunUntilConverged(benchTopic, n, 5000); !ok {
		b.Fatalf("setup: no convergence: %s", s.Explain(benchTopic))
	}
	members := s.Members(benchTopic)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Publish(members[i%len(members)], benchTopic, fmt.Sprintf("p%d", i))
		// Drain in small batches so queues stay bounded and the
		// flooding itself (not queue growth) dominates.
		if (i+1)%32 == 0 || i == b.N-1 {
			if _, ok := s.RunUntil(200000, func() bool {
				return s.AllHavePubs(benchTopic, i+1)
			}); !ok {
				b.Fatalf("flood of publication %d never completed", i)
			}
		}
	}
}

// BenchmarkOrderedFanout prices the per-topic delivery modes against each
// other on the deterministic scheduler: the identical 16-node publish
// fan-out (anti-entropy disabled, exactly as the hot-path gate) run in
// best-effort, FIFO and causal mode. allocs/op and B/op are the
// whole-system cost of delivering one publication to all 16 subscribers
// through the ordering layer; p95-rounds is the 95th-percentile drain time
// of a 32-publication batch, which surfaces any buffering the reorder
// window introduces. The best-effort series must stay identical to the
// hot-path gate — mode besteffort bypasses the ordering layer entirely.
func BenchmarkOrderedFanout(b *testing.B) {
	for _, mode := range []ordering.Mode{ordering.BestEffort, ordering.FIFO, ordering.Causal} {
		b.Run(mode.String(), func(b *testing.B) {
			const n = 16
			delivered := make(map[sim.NodeID]int, n)
			c := cluster.New(cluster.Options{
				Seed: 11,
				ClientOpts: core.Options{
					DisableAntiEntropy: true,
					DeliveryMode:       mode,
					OnDeliverTrace: func(node sim.NodeID, t sim.Topic, p proto.Publication, m ordering.Meta) {
						delivered[node]++
					},
				},
			})
			c.AddClients(n)
			c.JoinAll(benchTopic)
			if _, ok := c.RunUntilConverged(benchTopic, n, 5000); !ok {
				b.Fatalf("setup: no convergence: %s", c.Explain(benchTopic))
			}
			members := c.Members(benchTopic)
			var drainRounds []int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Publish(members[i%len(members)], benchTopic, fmt.Sprintf("p%d", i))
				if (i+1)%32 == 0 || i == b.N-1 {
					want := i + 1
					rounds, ok := c.Sched.RunRoundsUntil(200000, func() bool {
						for _, id := range members {
							if delivered[id] < want {
								return false
							}
						}
						return true
					})
					if !ok {
						b.Fatalf("delivery of publication %d never completed", i)
					}
					drainRounds = append(drainRounds, rounds)
				}
			}
			b.StopTimer()
			sum := metrics.Summarize(metrics.Ints(drainRounds))
			b.ReportMetric(sum.P95, "p95-rounds")
		})
	}
}

// BenchmarkCrossSubstrateStabilization measures wall-time from a fresh
// join burst to the unique legitimate SR(n) on all three substrates
// (ns/op is the stabilization time).
func BenchmarkCrossSubstrateStabilization(b *testing.B) {
	for _, kind := range crossSubstrateKinds {
		b.Run(string(kind), func(b *testing.B) {
			b.ReportAllocs()
			const n = 24
			for i := 0; i < b.N; i++ {
				s := NewSimulation(SimOptions{Runtime: kind, Seed: int64(i)*31 + 7, Interval: time.Millisecond})
				s.AddSubscribers(n)
				s.JoinAll(benchTopic)
				if _, ok := s.RunUntilConverged(benchTopic, n, 10000); !ok {
					s.Close()
					b.Fatalf("no convergence: %s", s.Explain(benchTopic))
				}
				s.Close()
			}
		})
	}
}

// ---- helpers ----

func benchConverge(b *testing.B, n int, seed int64) *cluster.Cluster {
	b.Helper()
	c := cluster.New(cluster.Options{Seed: seed})
	c.AddClients(n)
	c.JoinAll(benchTopic)
	if _, ok := c.RunUntilConverged(benchTopic, n, 5000); !ok {
		b.Fatalf("bench setup: n=%d did not converge: %s", n, c.Explain(benchTopic))
	}
	return c
}
