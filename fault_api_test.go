package sspubsub

// Public-API surface of the chaos machinery: Restart and SetMessageFault
// on the Simulation facade.

import (
	"testing"
	"time"
)

// TestSimulationRestart pins the crash → restart → re-converge cycle on
// the deterministic substrate: the restarted node comes back with stale
// state and the system absorbs it.
func TestSimulationRestart(t *testing.T) {
	s := NewSimulation(SimOptions{Seed: 3})
	defer s.Close()
	const n = 8
	ids := s.AddSubscribers(n)
	s.JoinAll(1)
	if _, ok := s.RunUntilConverged(1, n, 5000); !ok {
		t.Fatalf("no initial convergence: %s", s.Explain(1))
	}
	s.Crash(ids[2])
	if _, ok := s.RunUntilConverged(1, n-1, 10000); !ok {
		t.Fatalf("no convergence after crash: %s", s.Explain(1))
	}
	if s.Restart(ids[2]) != true {
		t.Fatal("Restart returned false for a crashed node")
	}
	if s.Restart(ids[2]) {
		t.Fatal("Restart returned true for an already-restarted node")
	}
	if _, ok := s.RunUntilConverged(1, n, 10000); !ok {
		t.Fatalf("no convergence after restart: %s", s.Explain(1))
	}
}

// TestSimulationMessageFault pins the fault filter: a drop-all filter on
// protocol traffic stalls dissemination, clearing it heals the system.
func TestSimulationMessageFault(t *testing.T) {
	s := NewSimulation(SimOptions{Seed: 4})
	defer s.Close()
	const n = 6
	s.AddSubscribers(n)
	s.JoinAll(1)
	if _, ok := s.RunUntilConverged(1, n, 5000); !ok {
		t.Fatalf("no initial convergence: %s", s.Explain(1))
	}

	// Sever every node-to-node channel (control self-sends stay exempt).
	s.SetMessageFault(func(from, to NodeID, _ Topic) FaultAction {
		if from == to {
			return FaultDeliver
		}
		return FaultDrop
	})
	members := s.Members(1)
	s.Publish(members[0], 1, "stalled")
	s.RunRounds(50)
	for _, id := range members[1:] {
		if len(s.Publications(id, 1)) != 0 {
			t.Fatalf("node %d received a publication across a severed channel", id)
		}
	}

	s.SetMessageFault(nil)
	if _, ok := s.RunUntil(5000, func() bool { return s.AllHavePubs(1, 1) && s.TriesEqual(1) }); !ok {
		t.Fatal("publication never disseminated after clearing the fault")
	}
}

// TestSimulationRestartLive exercises Restart on the concurrent runtime.
func TestSimulationRestartLive(t *testing.T) {
	s := NewSimulation(SimOptions{Runtime: RuntimeConcurrent, Seed: 5, Interval: time.Millisecond})
	defer s.Close()
	const n = 6
	ids := s.AddSubscribers(n)
	s.JoinAll(1)
	if _, ok := s.RunUntilConverged(1, n, 20000); !ok {
		t.Fatalf("no initial convergence: %s", s.Explain(1))
	}
	s.Crash(ids[0])
	if !s.Restart(ids[0]) {
		t.Fatal("Restart returned false for a crashed node")
	}
	if _, ok := s.RunUntilConverged(1, n, 20000); !ok {
		t.Fatalf("no convergence after live restart: %s", s.Explain(1))
	}
}

// TestSimulationSupervisorFailover drives the supervisor plane through the
// Simulation facade on the deterministic substrate: crash the owner of the
// topic, converge under the successor, restart, converge again.
func TestSimulationSupervisorFailover(t *testing.T) {
	s := NewSimulation(SimOptions{Runtime: RuntimeSim, Seed: 31, Supervisors: 3})
	defer s.Close()
	sups := s.SupervisorIDs()
	if len(sups) != 3 {
		t.Fatalf("SupervisorIDs = %v", sups)
	}
	const n = 8
	s.AddSubscribers(n)
	s.JoinAll(1)
	if _, ok := s.RunUntilConverged(1, n, 8000); !ok {
		t.Fatalf("setup: %s", s.Explain(1))
	}
	// Crash the topic's owner, so convergence proves an actual ownership
	// migration (crashing a bystander would exercise nothing).
	owner, ok := s.harness().ExpectedOwner(1)
	if !ok {
		t.Fatal("no owner on a 3-supervisor plane")
	}
	if !s.CrashSupervisor(owner) {
		t.Fatal("CrashSupervisor refused a live supervisor")
	}
	if s.CrashSupervisor(owner) {
		t.Fatal("double crash accepted")
	}
	if _, ok := s.RunUntilConverged(1, n, 8000); !ok {
		t.Fatalf("no convergence after supervisor crash: %s", s.Explain(1))
	}
	if !s.RestartSupervisor(owner) {
		t.Fatal("RestartSupervisor refused")
	}
	if _, ok := s.RunUntilConverged(1, n, 8000); !ok {
		t.Fatalf("no convergence after supervisor restart: %s", s.Explain(1))
	}
}
