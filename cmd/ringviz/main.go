// Command ringviz prints the structure of the legitimate skip ring SR(n):
// the label triples of Figure 1, the per-level edge sets, degree statistics
// (Lemma 3) and the graph diameter. It is the textual reproduction of the
// paper's Figure 1 for arbitrary n.
//
// Usage:
//
//	ringviz [-n 16] [-edges]
package main

import (
	"flag"
	"fmt"
	"sort"

	"sspubsub/internal/metrics"
	"sspubsub/internal/topology"
)

func main() {
	n := flag.Int("n", 16, "number of subscribers")
	showEdges := flag.Bool("edges", false, "list every edge")
	flag.Parse()

	r := topology.New(*n)
	fmt.Printf("supervised skip ring SR(%d)\n\n", *n)

	tb := metrics.NewTable("x", "l(x)", "r(l(x))", "ring pos", "left", "right", "ring", "shortcut slots")
	type row struct {
		pos int
		x   int
	}
	rows := make([]row, *n)
	for x := 0; x < *n; x++ {
		rows[x] = row{posOf(r, x), x}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].pos < rows[j].pos })
	for _, rw := range rows {
		x := rw.x
		exp := r.Expected(x)
		slots := make([]string, 0, len(exp.Shortcuts))
		for s := range exp.Shortcuts {
			slots = append(slots, s.String())
		}
		sort.Strings(slots)
		tb.AddRow(x, r.Label(x).String(), fmt.Sprintf("%.4f", r.Label(x).Real()), rw.pos,
			exp.Left.String(), exp.Right.String(), exp.Ring.String(), fmt.Sprint(slots))
	}
	fmt.Println(tb)

	st := r.Stats()
	fmt.Printf("degrees: max %d, avg %.2f (Lemma 3: ≤ 2⌈log n⌉, avg ≤ 4)\n", st.MaxDegree, st.AvgDegree)
	fmt.Printf("edges: %d undirected / %d directed (paper closed form 4n−4 = %d)\n",
		st.Undirected, st.Directed, st.PaperDirected)
	fmt.Printf("diameter: %d (⌈log n⌉ = %d)\n", r.Diameter(), ceilLog(*n))

	if *showEdges {
		fmt.Println("\nedges by level:")
		type edge struct {
			a, b int
			lvl  uint8
		}
		var edges []edge
		for e, lvl := range r.Edges() {
			edges = append(edges, edge{e[0], e[1], lvl})
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].lvl != edges[j].lvl {
				return edges[i].lvl > edges[j].lvl
			}
			if edges[i].a != edges[j].a {
				return edges[i].a < edges[j].a
			}
			return edges[i].b < edges[j].b
		})
		for _, e := range edges {
			fmt.Printf("  level %d: %s (%d) — %s (%d)\n", e.lvl, r.Label(e.a), e.a, r.Label(e.b), e.b)
		}
	}
}

func posOf(r *topology.SkipRing, x int) int {
	// rank = number of labels with smaller r value
	pos := 0
	for y := 0; y < r.N(); y++ {
		if r.Label(y).Frac() < r.Label(x).Frac() {
			pos++
		}
	}
	return pos
}

func ceilLog(n int) int {
	k, v := 0, 1
	for v < n {
		v <<= 1
		k++
	}
	return k
}
