// Command experiments regenerates every experiment table of EXPERIMENTS.md
// (the reproduction of each figure, lemma, theorem and comparative claim of
// Feldmann et al., "Self-Stabilizing Supervised Publish-Subscribe
// Systems"). Run with -quick for a fast pass or select one experiment with
// -only.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-only E3]
package main

import (
	"flag"
	"fmt"
	"strings"

	"sspubsub/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "smaller sweeps for a fast pass")
	seed := flag.Int64("seed", 1, "base random seed")
	only := flag.String("only", "", "run only the experiment with this ID (e.g. E5)")
	flag.Parse()

	sizes := []int{16, 64, 256, 1024, 4096}
	dynSizes := []int{16, 64, 256}
	e5Sizes := []int{16, 32, 64}
	seeds := 5
	e3Rounds := 2000
	if *quick {
		sizes = []int{16, 64, 256}
		dynSizes = []int{16, 64}
		e5Sizes = []int{16, 32}
		seeds = 2
		e3Rounds = 500
	}

	want := func(id string) bool {
		return *only == "" || strings.EqualFold(*only, id)
	}

	if want("E1") {
		fmt.Print(experiments.Banner("E1", "Figure 1 — the skip ring SR(16)"))
		res := experiments.E1Figure1()
		fmt.Println(res.Triples)
		fmt.Println(res.Edges)
	}
	if want("E2") {
		fmt.Print(experiments.Banner("E2", "Lemma 3 — node degree and edge count"))
		_, tb := experiments.E2Degree(sizes)
		fmt.Println(tb)
	}
	if want("E3") {
		fmt.Print(experiments.Banner("E3", "Theorem 5 — configuration requests per timeout interval"))
		_, tb := experiments.E3ConfigRate(dynSizes, e3Rounds, *seed)
		fmt.Println(tb)
	}
	if want("E4") {
		fmt.Print(experiments.Banner("E4", "Theorem 7 — supervisor messages per subscribe/unsubscribe"))
		_, tb := experiments.E4Overhead(16, 10, *seed)
		fmt.Println(tb)
	}
	if want("E5") {
		fmt.Print(experiments.Banner("E5", "Theorem 8 — convergence from arbitrary initial states"))
		_, tb := experiments.E5Convergence(e5Sizes, seeds, *seed)
		fmt.Println(tb)
	}
	if want("E6") {
		fmt.Print(experiments.Banner("E6", "Theorem 13 — closure and steady-state maintenance"))
		_, tb := experiments.E6Closure(64, 300, *seed)
		fmt.Println(tb)
	}
	if want("E7") {
		fmt.Print(experiments.Banner("E7", "Theorem 17 — publication convergence (anti-entropy only)"))
		_, tb := experiments.E7PublicationConvergence(dynSizes, 10, *seed)
		fmt.Println(tb)
	}
	if want("E8") {
		fmt.Print(experiments.Banner("E8", "Section 4.3 — flooding: O(log n) vs ring-only Θ(n)"))
		_, tb := experiments.E8Flooding(dynSizes, *seed)
		fmt.Println(tb)
	}
	if want("E9") {
		fmt.Print(experiments.Banner("E9", "Figure 2 — Patricia-trie synchronisation example"))
		res := experiments.E9Figure2()
		fmt.Println("trie u:")
		fmt.Println(res.TrieU)
		fmt.Println("trie v:")
		fmt.Println(res.TrieV)
		fmt.Println("probe u→v:")
		for _, l := range res.TraceUtoV {
			fmt.Println("  " + l)
		}
		fmt.Println("probe v→u:")
		for _, l := range res.TraceVtoU {
			fmt.Println("  " + l)
		}
		fmt.Printf("\nP4 delivered: %v; tries equal: %v\n\n", res.P4Delivered, res.TriesEqual)
	}
	if want("E10") {
		fmt.Print(experiments.Banner("E10", "Section 1.3 — balance vs Chord and skip graphs"))
		res := experiments.E10Balance(512, 100000, 20000, *seed)
		fmt.Println("position balance (the paper's claim):")
		fmt.Println(res.Position)
		fmt.Println("degree statistics:")
		fmt.Println(res.Degrees)
		fmt.Println("greedy routing load (informational; see EXPERIMENTS.md):")
		fmt.Println(res.Routing)
	}
	if want("E11") {
		fmt.Print(experiments.Banner("E11", "Section 4.1 — join locality while n doubles"))
		_, tb := experiments.E11JoinLocality(16, *seed)
		fmt.Println(tb)
	}
	if want("E12") {
		fmt.Print(experiments.Banner("E12", "Section 3.3 — recovery from unannounced crashes"))
		_, tb := experiments.E12CrashRecovery(32, []float64{0.125, 0.25, 0.5}, *seed)
		fmt.Println(tb)
	}
	if want("E13") {
		fmt.Print(experiments.Banner("E13", "Introduction — supervisor vs central broker load"))
		_, tb := experiments.E13SupervisorVsBroker(64, 50, *seed)
		fmt.Println(tb)
	}
	if want("ablations") || *only == "" {
		fmt.Print(experiments.Banner("A1", "Ablation — action (iv) on/off (partitioned recovery)"))
		fmt.Println(experiments.AblationActionIV(16, seeds, *seed))
		fmt.Print(experiments.Banner("A2", "Ablation — flooding vs anti-entropy-only delivery"))
		fmt.Println(experiments.AblationFlooding(64, *seed))
		fmt.Print(experiments.Banner("A3", "Ablation — probe schedule (supervisor load vs repair speed)"))
		fmt.Println(experiments.AblationProbeSchedule(32, *seed))
		fmt.Print(experiments.Banner("A4", "Extension — database vs deterministic token-ring supervisor"))
		fmt.Println(experiments.A4TokenVsDatabase(32, *seed))
	}
}
