// Command srsim runs deterministic simulations of the self-stabilizing
// supervised publish-subscribe system: pick an initial-state scenario, a
// size and a seed, and watch the system converge (or trace every message
// with -trace).
//
// Usage:
//
//	srsim -n 32 -scenario corrupted-states [-seed 7] [-rounds 20000] [-trace]
//	srsim -scenarios                     # list scenarios
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sspubsub/internal/cluster"
	"sspubsub/internal/experiments"
	"sspubsub/internal/sim"
)

const topic sim.Topic = 1

func main() {
	n := flag.Int("n", 32, "number of subscribers")
	seed := flag.Int64("seed", 1, "random seed (runs are reproducible)")
	scenario := flag.String("scenario", "fresh-join-burst", "initial state scenario")
	rounds := flag.Int("rounds", 20000, "max rounds before giving up")
	trace := flag.Bool("trace", false, "print every delivered message and timeout")
	list := flag.Bool("scenarios", false, "list scenarios and exit")
	pubs := flag.Int("pubs", 0, "publish this many items after convergence and wait for full dissemination")
	crash := flag.Float64("crash", 0, "crash this fraction of nodes after convergence")
	flag.Parse()

	if *list {
		for _, s := range experiments.AllScenarios {
			fmt.Println(string(s))
		}
		return
	}

	opts := cluster.Options{Seed: *seed}
	if *trace {
		opts.Sched.Trace = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	c := cluster.New(opts)
	c.AddClients(*n)
	c.JoinAll(topic)

	sc := experiments.E5Scenario(*scenario)
	if sc != experiments.ScenarioFresh {
		if _, ok := c.RunUntilConverged(topic, *n, 5000); !ok {
			log.Fatalf("setup convergence failed: %s", c.Explain(topic))
		}
		fmt.Printf("setup: legitimate SR(%d) built; injecting %s\n", *n, sc)
		switch sc {
		case experiments.ScenarioCorrupt:
			c.CorruptSubscriberStates(topic)
		case experiments.ScenarioPartition:
			c.PartitionStates(topic, 3)
		case experiments.ScenarioBadDB:
			c.CorruptSupervisorDB(topic)
		case experiments.ScenarioGarbageMsg:
			c.InjectGarbageMessages(topic, 5**n)
		default:
			log.Fatalf("unknown scenario %q (use -scenarios)", *scenario)
		}
	}

	start := c.Sched.Now()
	r, ok := c.RunUntilConverged(topic, *n, *rounds)
	if !ok {
		log.Fatalf("NOT converged after %d rounds: %s", r, c.Explain(topic))
	}
	fmt.Printf("converged to legitimate SR(%d) in %d rounds (%.0f messages, %.1f per node per round)\n",
		*n, r, float64(c.Sched.Delivered()),
		float64(c.Sched.Delivered())/float64(*n)/(c.Sched.Now()-start+1))

	if *crash > 0 {
		members := c.Members(topic)
		k := int(*crash * float64(*n))
		for i := 0; i < k; i++ {
			c.Crash(members[i*len(members)/k])
		}
		fmt.Printf("crashed %d nodes; waiting for recovery…\n", k)
		r, ok := c.RunUntilConverged(topic, *n-k, *rounds)
		if !ok {
			log.Fatalf("no recovery: %s", c.Explain(topic))
		}
		fmt.Printf("recovered to legitimate SR(%d) in %d rounds\n", *n-k, r)
	}

	if *pubs > 0 {
		members := c.Members(topic)
		for i := 0; i < *pubs; i++ {
			c.Publish(members[i%len(members)], topic, fmt.Sprintf("pub-%d", i))
		}
		r, ok := c.Sched.RunRoundsUntil(*rounds, func() bool {
			return c.AllHavePubs(topic, *pubs) && c.TriesEqual(topic)
		})
		if !ok {
			log.Fatal("publications never converged")
		}
		fmt.Printf("%d publications disseminated to all %d subscribers in %d rounds\n",
			*pubs, len(members), r)
	}

	// Print a compact state listing.
	fmt.Println("\nfinal state:")
	fmt.Print(statesSummary(c))
}

func statesSummary(c *cluster.Cluster) string {
	out := ""
	for _, id := range c.Members(topic) {
		st, _ := c.Clients[id].StateOf(topic)
		out += fmt.Sprintf("  node %-4d label %-8s left %-12s right %-12s ring %-12s shortcuts %d\n",
			id, st.Label, st.Left, st.Right, st.Ring, len(st.Shortcuts))
	}
	return out
}
