// Command srsim runs the self-stabilizing supervised publish-subscribe
// system: single-process simulations on any execution substrate, and real
// multi-process deployments over TCP.
//
// One-shot simulation:
//
//	srsim -n 32 -scenario corrupted-states [-seed 7] [-rounds 20000] [-trace]
//	srsim -n 32 -runtime concurrent [-interval 2ms] [-churn]
//	srsim -n 16 -runtime net [-pubs 8]      # every message crosses TCP loopback
//	srsim -n 24 -supervisors 4              # crash-tolerant sharded supervisor plane
//	srsim -scenarios                        # list scenarios
//
// Scale sweeps (the empirical O(log n) curves):
//
//	srsim scale -ns 1000,10000,100000       # sweep, table + exponent fits
//	srsim scale -ns 1000000 -bench          # emit benchjson-ready series
//	srsim scale -ns 100000 -workers 8       # lane-sharded parallel engine (bit-identical for any -workers)
//	srsim scale -ns 10000 -workers 0        # legacy serial scheduler
//	srsim failover -ns 1000,10000 -rf 2     # supervisor failover-to-convergence sweep
//
// Scale and failover sweeps default to the parallel deterministic engine
// (internal/psim) with one worker per CPU; results are bit-identical for
// every -workers value, so parallelism never costs reproducibility.
// -cpuprofile/-memprofile write pprof profiles of a sweep.
//
// With -runtime=sim (the default) the run is a deterministic
// discrete-event simulation and every corruption scenario is available.
// With -runtime=concurrent the same protocol code runs on the live
// goroutine-per-node runtime; -churn additionally runs a crash/restart
// fault injector. With -runtime=net the live nodes exchange every message
// as binary wire frames over a loopback TCP socket.
//
// Networked deployment across processes:
//
//	srsim serve -listen 127.0.0.1:7411 -topic news -local 2 -expect 5 -pubs 3
//	srsim join  -hub 127.0.0.1:7411 -topic news -local 3 -pubs 2 -waitpubs 5
//
// The serve process hosts the supervisor and relays traffic; each join
// process receives a node-ID block and runs its own subscribers. All
// processes converge onto one skip ring and disseminate each other's
// publications.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sspubsub/internal/cluster"
	"sspubsub/internal/core"
	"sspubsub/internal/experiments"
	"sspubsub/internal/runtime/concurrent"
	"sspubsub/internal/runtime/nettransport"
	"sspubsub/internal/sim"
)

const topic sim.Topic = 1

// fail prints a usage error and exits non-zero: invalid flag combinations
// must be loud, not silently ignored.
func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "srsim: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	if len(os.Args) > 1 {
		switch arg := os.Args[1]; arg {
		case "serve":
			runServe(os.Args[2:])
			return
		case "join":
			runJoin(os.Args[2:])
			return
		case "chaos":
			runChaos(os.Args[2:])
			return
		case "scale":
			runScale(os.Args[2:])
			return
		case "failover":
			runFailover(os.Args[2:])
			return
		default:
			// Anything that is not a flag must be a known subcommand: a typo
			// like `srsim chaso` silently running the one-shot simulation
			// would make the operator believe they ran something they did
			// not.
			if len(arg) > 0 && arg[0] != '-' {
				fail("unknown subcommand %q (subcommands: serve, join, chaos, scale, failover; run without a subcommand for a one-shot simulation)", arg)
			}
		}
	}
	runOneShot()
}

func runOneShot() {
	n := flag.Int("n", 32, "number of subscribers")
	supervisors := flag.Int("supervisors", 1, "supervisor-plane size: topics shard over this many supervisors by consistent hashing")
	seed := flag.Int64("seed", 1, "random seed (sim runs are reproducible)")
	runtime := flag.String("runtime", "sim", "execution substrate: sim | concurrent | net")
	interval := flag.Duration("interval", 2*time.Millisecond, "timeout interval (concurrent/net runtimes)")
	churn := flag.Bool("churn", false, "run a crash/restart injector during stabilization (concurrent runtime)")
	scenario := flag.String("scenario", "fresh-join-burst", "initial state scenario")
	rounds := flag.Int("rounds", 20000, "max rounds before giving up")
	trace := flag.Bool("trace", false, "print every delivered message and timeout (sim runtime)")
	list := flag.Bool("scenarios", false, "list scenarios and exit")
	pubs := flag.Int("pubs", 0, "publish this many items after convergence and wait for full dissemination")
	crash := flag.Float64("crash", 0, "crash this fraction of nodes after convergence")
	flag.Parse()

	if *list {
		for _, s := range experiments.AllScenarios {
			fmt.Println(string(s))
		}
		return
	}

	// Validate flag combinations before anything starts: a silently
	// ignored flag makes the operator believe they measured something
	// they did not.
	if *n <= 0 {
		fail("-n must be positive, got %d", *n)
	}
	if *supervisors < 1 {
		fail("-supervisors must be at least 1, got %d", *supervisors)
	}
	if *crash < 0 || *crash >= 1 {
		fail("-crash must be in [0, 1), got %g", *crash)
	}
	sc := experiments.E5Scenario(*scenario)
	known := false
	for _, s := range experiments.AllScenarios {
		if s == sc {
			known = true
			break
		}
	}
	if !known {
		fail("unknown scenario %q (use -scenarios to list)", *scenario)
	}
	switch *runtime {
	case "sim":
		if *churn {
			fail("-churn requires -runtime=concurrent (the deterministic scheduler has its own scripted fault scenarios; see -scenarios)")
		}
	case "concurrent":
		if sc != experiments.ScenarioFresh {
			fail("scenario %q requires -runtime=sim (live state cannot be corrupted in place)", *scenario)
		}
		if *trace {
			fail("-trace requires -runtime=sim (live runs have no deterministic event order to trace)")
		}
	case "net":
		if sc != experiments.ScenarioFresh {
			fail("scenario %q requires -runtime=sim (live state cannot be corrupted in place)", *scenario)
		}
		if *trace {
			fail("-trace requires -runtime=sim")
		}
		if *churn {
			fail("-churn requires -runtime=concurrent (the injector drives the in-process runtime directly)")
		}
	default:
		fail("unknown -runtime %q (use sim, concurrent or net)", *runtime)
	}

	if *runtime == "sim" {
		runSim(*n, *supervisors, *seed, *scenario, *rounds, *trace, *pubs, *crash)
		return
	}
	runLive(*runtime, *n, *supervisors, *seed, *interval, *rounds, *churn, *pubs, *crash)
}

func runSim(n, supervisors int, seed int64, scenario string, rounds int, trace bool, pubs int, crash float64) {
	opts := cluster.Options{Seed: seed, Supervisors: supervisors}
	if trace {
		opts.Sched.Trace = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	c := cluster.New(opts)
	c.AddClients(n)
	c.JoinAll(topic)

	sc := experiments.E5Scenario(scenario)
	if sc != experiments.ScenarioFresh {
		if _, ok := c.RunUntilConverged(topic, n, 5000); !ok {
			fatalf("setup convergence failed: %s", c.Explain(topic))
		}
		fmt.Printf("setup: legitimate SR(%d) built; injecting %s\n", n, sc)
		switch sc {
		case experiments.ScenarioCorrupt:
			c.CorruptSubscriberStates(topic)
		case experiments.ScenarioPartition:
			c.PartitionStates(topic, 3)
		case experiments.ScenarioBadDB:
			c.CorruptSupervisorDB(topic)
		case experiments.ScenarioGarbageMsg:
			c.InjectGarbageMessages(topic, 5*n)
		default:
			fail("unknown scenario %q (use -scenarios)", scenario)
		}
	}

	start := c.Sched.Now()
	r, ok := c.RunUntilConverged(topic, n, rounds)
	if !ok {
		fatalf("NOT converged after %d rounds: %s", r, c.Explain(topic))
	}
	fmt.Printf("converged to legitimate SR(%d) in %d rounds (%.0f messages, %.1f per node per round)\n",
		n, r, float64(c.Sched.Delivered()),
		float64(c.Sched.Delivered())/float64(n)/(c.Sched.Now()-start+1))

	if crash > 0 {
		members := c.Members(topic)
		k := int(crash * float64(n))
		for i := 0; i < k; i++ {
			c.Crash(members[i*len(members)/k])
		}
		fmt.Printf("crashed %d nodes; waiting for recovery…\n", k)
		r, ok := c.RunUntilConverged(topic, n-k, rounds)
		if !ok {
			fatalf("no recovery: %s", c.Explain(topic))
		}
		fmt.Printf("recovered to legitimate SR(%d) in %d rounds\n", n-k, r)
	}

	if pubs > 0 {
		members := c.Members(topic)
		for i := 0; i < pubs; i++ {
			c.Publish(members[i%len(members)], topic, fmt.Sprintf("pub-%d", i))
		}
		r, ok := c.Sched.RunRoundsUntil(rounds, func() bool {
			return c.AllHavePubs(topic, pubs) && c.TriesEqual(topic)
		})
		if !ok {
			fatalf("publications never converged")
		}
		fmt.Printf("%d publications disseminated to all %d subscribers in %d rounds\n",
			pubs, len(members), r)
	}

	fmt.Println("\nfinal state:")
	printStates(c.Members(topic), func(id sim.NodeID) (st stateLike, ok bool) {
		s, ok2 := c.Clients[id].StateOf(topic)
		return stateLike{s.Label.String(), s.Left.String(), s.Right.String(), s.Ring.String(), len(s.Shortcuts)}, ok2
	})
}

// quiescer is the live-substrate surface runLive needs beyond
// sim.Transport; both the concurrent runtime and the net transport
// provide it.
type quiescer interface {
	Quiesce(timeout time.Duration, f func()) bool
	Delivered() int64
}

// runLive executes the fresh-join scenario on a live substrate:
// goroutine nodes exchanging Go values (concurrent) or wire frames over
// loopback TCP (net).
func runLive(kind string, n, supervisors int, seed int64, interval time.Duration, rounds int, churn bool, pubs int, crash float64) {
	var (
		tr sim.Transport
		q  quiescer
		rt *concurrent.Runtime
		nt *nettransport.Transport
	)
	switch kind {
	case "concurrent":
		rt = concurrent.NewRuntime(concurrent.Options{Interval: interval, Seed: seed})
		tr, q = rt, rt
	case "net":
		var err error
		nt, err = nettransport.NewLoopback(nettransport.Options{Interval: interval, Seed: seed})
		if err != nil {
			fatalf("loopback transport: %v", err)
		}
		tr, q = nt, nt
	}
	defer tr.Close()
	l := cluster.NewLiveN(tr, core.Options{}, supervisors)
	l.AddClients(n)
	l.JoinAll(topic)

	start := time.Now()
	if churn {
		// Let the fault injector interleave crashes and restarts with the
		// join burst for a fixed window, then require re-convergence. The
		// whole supervisor plane is protected: the injector exercises
		// subscriber churn (supervisor crashes have their own chaos
		// scenarios).
		in := rt.NewInjector(concurrent.InjectorOptions{
			Period:   10 * interval,
			Downtime: 4 * interval,
			Seed:     seed,
			Protect:  l.IsSupervisor,
		})
		time.Sleep(100 * interval)
		in.Stop()
		fmt.Printf("churn: %d crashes, %d restarts survived\n", in.Crashes(), in.Restarts())
	}
	ok := waitConverged(q, l, n, time.Duration(rounds)*interval, interval)
	if !ok {
		fatalf("NOT converged within %d intervals: %s", rounds, quietExplain(q, l))
	}
	elapsed := time.Since(start)
	fmt.Printf("converged to legitimate SR(%d) in %s (%.1f intervals, %d messages delivered)\n",
		n, elapsed.Round(time.Millisecond), float64(elapsed)/float64(interval), q.Delivered())

	if crash > 0 {
		members := l.Members(topic)
		k := int(crash * float64(n))
		for i := 0; i < k; i++ {
			l.Crash(members[i*len(members)/k])
		}
		fmt.Printf("crashed %d nodes; waiting for recovery…\n", k)
		if !waitConverged(q, l, n-k, time.Duration(rounds)*interval, interval) {
			fatalf("no recovery: %s", quietExplain(q, l))
		}
		fmt.Printf("recovered to legitimate SR(%d)\n", n-k)
	}

	if pubs > 0 {
		members := l.Members(topic)
		for i := 0; i < pubs; i++ {
			l.Publish(members[i%len(members)], topic, fmt.Sprintf("pub-%d", i))
		}
		deadline := time.Now().Add(time.Duration(rounds) * interval)
		for {
			done := false
			q.Quiesce(time.Second, func() { done = l.AllHavePubs(topic, pubs) && l.TriesEqual(topic) })
			if done {
				break
			}
			if time.Now().After(deadline) {
				fatalf("publications never converged")
			}
			time.Sleep(interval)
		}
		fmt.Printf("%d publications disseminated to all %d subscribers\n", pubs, len(members))
	}

	if nt != nil {
		fmt.Printf("wire: %d frames garbage, %d frames lost\n", nt.GarbageFrames(), nt.LostFrames())
	}
	fmt.Println("\nfinal state:")
	q.Quiesce(time.Second, func() {
		printStates(l.Members(topic), func(id sim.NodeID) (stateLike, bool) {
			s, ok2 := l.Clients[id].StateOf(topic)
			return stateLike{s.Label.String(), s.Left.String(), s.Right.String(), s.Ring.String(), len(s.Shortcuts)}, ok2
		})
	})
}

// quietExplain reads the first legitimacy violation under the quiesce
// barrier, so the report is an exact snapshot rather than a torn one.
func quietExplain(q quiescer, l *cluster.Live) string {
	out := "system did not quiesce"
	q.Quiesce(time.Second, func() { out = l.Explain(topic) })
	return out
}

func waitConverged(q quiescer, l *cluster.Live, n int, timeout, interval time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		ok := false
		q.Quiesce(time.Second, func() { ok = l.ConvergedWith(topic, n) })
		if ok {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(interval)
	}
}

// fatalf reports a runtime failure (as opposed to a usage error) and
// exits 1.
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "srsim: "+format+"\n", args...)
	os.Exit(1)
}

// stateLike is the subset of a subscriber state the summary prints.
type stateLike struct {
	label, left, right, ring string
	shortcuts                int
}

func printStates(members []sim.NodeID, state func(sim.NodeID) (stateLike, bool)) {
	for _, id := range members {
		st, ok := state(id)
		if !ok {
			continue
		}
		fmt.Printf("  node %-4d label %-8s left %-12s right %-12s ring %-12s shortcuts %d\n",
			id, st.label, st.left, st.right, st.ring, st.shortcuts)
	}
}
