package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"sspubsub/internal/metrics"
	"sspubsub/internal/scale"
)

// runFailover executes the supervisor-failover sweep: for each n it builds
// a sharded supervisor plane hosting n pooled subscribers, crashes the
// topic's owner, and measures rounds until the hashdht successor's
// database is exact and every survivor reports to it. -rf selects the
// directory replication factor: 0 measures the cold rebuild-from-
// subscribers baseline, ≥ 1 the warm-replica adoption path. With -bench
// the points are also printed as go-bench result lines for cmd/benchjson:
//
//	srsim failover -ns 1000,10000,100000 -rf 2 -bench | go run ./cmd/benchjson
func runFailover(args []string) {
	fs := flag.NewFlagSet("failover", flag.ExitOnError)
	nsFlag := fs.String("ns", "1000,10000,100000", "comma-separated subscriber counts to sweep")
	rf := fs.Int("rf", 2, "directory replication factor (0 = cold Reregister rebuild baseline)")
	supervisors := fs.Int("supervisors", 4, "supervisor-plane size")
	seed := fs.Int64("seed", 1, "random seed (runs are reproducible)")
	poolSize := fs.Int("poolsize", 1024, "virtual subscribers per pool node")
	cull := fs.Int("cull", 0, "supervisor cull budget per timeout (0 = auto, n/64)")
	maxRounds := fs.Int("maxrounds", 0, "max rounds per convergence wait (0 = default)")
	bench := fs.Bool("bench", false, "emit go-bench result lines (pipe into cmd/benchjson)")
	workers := fs.Int("workers", scale.DefaultWorkers(), "lane workers for the parallel engine (results are identical for every value); 0 = legacy serial scheduler")
	lanes := fs.Int("lanes", 0, "parallel engine lane count (part of the schedule identity; 0 = default 16)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile covering the whole sweep to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile (taken after the sweep) to this file")
	fs.Parse(args)

	if *workers < 0 {
		fail("failover: -workers must be >= 0, got %d", *workers)
	}
	stopCPU := startCPUProfile(*cpuprofile)
	defer stopCPU()
	defer writeMemProfile(*memprofile)

	var ns []int
	for _, part := range strings.Split(*nsFlag, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			fail("failover: -ns entries must be positive integers, got %q", part)
		}
		ns = append(ns, n)
	}
	if len(ns) == 0 {
		fail("failover: -ns is empty")
	}
	if *rf < 0 {
		fail("failover: -rf must be non-negative, got %d", *rf)
	}
	if *supervisors < 2 {
		fail("failover: -supervisors must be at least 2 (there must be a successor to fail over to), got %d", *supervisors)
	}

	results := make([]scale.FailoverResult, 0, len(ns))
	for _, n := range ns {
		fmt.Printf("# n=%d rf=%d: join → settle → crash owner → converge...\n", n, *rf)
		res := scale.RunFailover(scale.FailoverConfig{
			N:                 n,
			PoolSize:          *poolSize,
			Seed:              *seed,
			Supervisors:       *supervisors,
			ReplicationFactor: *rf,
			CullPerTimeout:    *cull,
			MaxRounds:         *maxRounds,
			Workers:           *workers,
			Lanes:             *lanes,
		})
		results = append(results, res)
		if !res.Converged {
			fmt.Printf("# n=%d: DID NOT CONVERGE — curve below excludes it\n", n)
		}
		if *bench {
			// Parallel-engine runs get a /p= suffix: a different engine is a
			// different schedule, so it must not land in the legacy gated
			// series.
			suffix := ""
			if *workers > 0 {
				suffix = fmt.Sprintf("/p=%d", *workers)
			}
			fmt.Printf("BenchmarkFailoverConvergence/rf=%d/n=%d%s 1 %d failover-rounds %d relabelled %d setup-rounds\n",
				res.RepFactor, res.N, suffix, res.FailoverRounds, res.Relabelled, res.SetupRounds)
		}
	}

	tbl := metrics.NewTable("n", "rf", "replica warm", "failover (rounds)", "relabelled", "setup (rounds)")
	for _, r := range results {
		tbl.AddRow(r.N, r.RepFactor, r.ReplicaWarm, r.FailoverRounds, r.Relabelled, r.SetupRounds)
	}
	fmt.Println()
	fmt.Print(tbl.String())

	var xs, fo []float64
	for _, r := range results {
		if !r.Converged {
			continue
		}
		xs = append(xs, float64(r.N))
		fo = append(fo, float64(r.FailoverRounds))
	}
	if len(xs) < 2 {
		fmt.Println("\n(fewer than two converged points: no exponent fit)")
		return
	}
	_, b := scale.FitPowerLaw(xs, fo)
	fmt.Printf("\nPower-law fit failover-rounds = a·n^b: b = %+.3f", b)
	if *rf > 0 {
		fmt.Printf("   (warm adoption: expected ≈ 0 — the replica ships no per-subscriber traffic)\n")
	} else {
		fmt.Printf("   (cold rebuild: grows with n — every survivor Reregisters)\n")
	}
}
