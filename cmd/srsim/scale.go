package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"sspubsub/internal/metrics"
	"sspubsub/internal/ordering"
	"sspubsub/internal/scale"
)

// runScale executes the scale sweep: for each n it drives n real-protocol
// subscribers (multiplexed into pools, see internal/scale), measures join
// latency, publish fan-out, post-crash stabilization and memory, then fits
// power-law growth exponents across the sweep. With -bench the per-point
// series are also printed as go-bench result lines, so the output pipes
// straight into cmd/benchjson:
//
//	srsim scale -ns 1000,10000,100000 -bench | go run ./cmd/benchjson
//
// The sweep runs on the lane-sharded parallel engine by default (-workers
// = GOMAXPROCS); any -workers >= 1 produces bit-identical results, and
// -workers=0 selects the legacy serial scheduler (a different, equally
// deterministic, schedule). -digest prints a canonical per-point DIGEST
// line — CI diffs those lines across worker counts to enforce the
// P-independence invariant.
func runScale(args []string) {
	fs := flag.NewFlagSet("scale", flag.ExitOnError)
	nsFlag := fs.String("ns", "1000,10000,100000", "comma-separated subscriber counts to sweep")
	seed := fs.Int64("seed", 1, "random seed (runs are reproducible)")
	poolSize := fs.Int("poolsize", 1024, "virtual subscribers per pool node")
	historyCap := fs.Int("historycap", 0, "per-subscriber publication retention bound (0 = unlimited)")
	cull := fs.Int("cull", 0, "supervisor cull budget per timeout (0 = auto, n/64)")
	maxRounds := fs.Int("maxrounds", 512, "max rounds per convergence wait")
	crash := fs.Float64("crash", 0.01, "fraction of subscribers crashed for the stabilization probe")
	maxEvents := fs.Int("maxevents", 0, "scheduler event-queue ceiling (0 = unbounded; sheds load past it)")
	bench := fs.Bool("bench", false, "emit go-bench result lines (pipe into cmd/benchjson)")
	mode := fs.String("mode", "besteffort", "delivery mode: besteffort | fifo | causal (ordered modes time fan-out on actual deliveries)")
	workers := fs.Int("workers", scale.DefaultWorkers(), "lane workers for the parallel engine (results are identical for every value); 0 = legacy serial scheduler")
	lanes := fs.Int("lanes", 0, "parallel engine lane count (part of the schedule identity; 0 = default 16)")
	digest := fs.Bool("digest", false, "print a DIGEST line per point (canonical schedule-determined fields, for divergence diffing)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile covering the whole sweep to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile (taken after the sweep) to this file")
	fs.Parse(args)

	if *workers < 0 {
		fail("scale: -workers must be >= 0, got %d", *workers)
	}
	stopCPU := startCPUProfile(*cpuprofile)
	defer stopCPU()
	defer writeMemProfile(*memprofile)

	dm, err := ordering.ParseMode(*mode)
	if err != nil {
		fail("scale: %v", err)
	}

	var ns []int
	for _, part := range strings.Split(*nsFlag, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			fail("scale: -ns entries must be positive integers, got %q", part)
		}
		ns = append(ns, n)
	}
	if len(ns) == 0 {
		fail("scale: -ns is empty")
	}
	if *crash < 0 || *crash >= 1 {
		fail("scale: -crash must be in [0, 1), got %g", *crash)
	}

	results := make([]scale.Result, 0, len(ns))
	for _, n := range ns {
		fmt.Printf("# n=%d: running join → fan-out → crash-burst scenario...\n", n)
		res := scale.Run(scale.Config{
			N:               n,
			PoolSize:        *poolSize,
			Seed:            *seed,
			HistoryCap:      *historyCap,
			CullPerTimeout:  *cull,
			MaxRounds:       *maxRounds,
			CrashFrac:       *crash,
			MaxQueuedEvents: *maxEvents,
			DeliveryMode:    dm,
			Workers:         *workers,
			Lanes:           *lanes,
		})
		results = append(results, res)
		if !res.Converged {
			fmt.Printf("# n=%d: DID NOT CONVERGE within %d rounds — curves below exclude it\n", n, *maxRounds)
		}
		if res.OverflowDropped > 0 {
			fmt.Printf("# n=%d: event ceiling shed %d messages — latencies are load-shed, not protocol, numbers\n", n, res.OverflowDropped)
		}
		if *digest {
			fmt.Printf("DIGEST %s\n", res.Digest())
		}
		if *bench {
			printBenchLines(res)
		}
	}

	tbl := metrics.NewTable("n", "join p50/p95/max (rounds)", "joins/s",
		"fanout p50/p95/max (rounds)", "stabilize (rounds)", "db bytes", "trie bytes")
	for _, r := range results {
		tbl.AddRow(r.N,
			fmt.Sprintf("%.0f / %.0f / %.0f", r.JoinRounds.P50, r.JoinRounds.P95, r.JoinRounds.Max),
			fmt.Sprintf("%.0f", r.JoinsPerSec),
			fmt.Sprintf("%.0f / %.0f / %.0f", r.FanoutRounds.P50, r.FanoutRounds.P95, r.FanoutRounds.Max),
			r.StabilizeRounds, r.SupDBBytes, r.SubTrieBytes)
	}
	fmt.Println()
	fmt.Print(tbl.String())

	// Exponent fits need at least two converged points.
	var xs, joinP95, fanP95, stab, db, jps []float64
	for _, r := range results {
		if !r.Converged {
			continue
		}
		xs = append(xs, float64(r.N))
		joinP95 = append(joinP95, r.JoinRounds.P95)
		fanP95 = append(fanP95, r.FanoutRounds.P95)
		stab = append(stab, float64(r.StabilizeRounds))
		db = append(db, float64(r.SupDBBytes))
		jps = append(jps, r.JoinsPerSec)
	}
	if len(xs) < 2 {
		fmt.Println("\n(fewer than two converged points: no exponent fit)")
		return
	}
	fmt.Println("\nPower-law fits y = a·n^b across the sweep (b ≈ 1 linear; b ≪ 1 consistent with O(log n)):")
	fit := func(name string, ys []float64, expect string) {
		_, b := scale.FitPowerLaw(xs, ys)
		fmt.Printf("  %-28s b = %+.3f   (paper: %s)\n", name, b, expect)
	}
	fit("join latency p95", joinP95, "O(log n)")
	fit("publish fan-out p95", fanP95, "O(log n)")
	fit("stabilize after 1% crash", stab, "O(n/cull-budget) sweep; ~flat with auto budget")
	fit("supervisor DB bytes", db, "Θ(n)")
	fit("joins/s", jps, "per-join work O(log n) → mildly sub-linear decay")
}

// printBenchLines renders one scale point as go-bench result lines
// (name, iterations, then value-unit pairs — the even-field format
// cmd/benchjson parses).
func printBenchLines(r scale.Result) {
	// Ordered sweeps and parallel-engine runs get their own series names
	// so they never collide with the legacy best-effort/serial baselines
	// in benchjson (a new series is informational, not a regression).
	suffix := ""
	if r.Mode != "" && r.Mode != "besteffort" {
		suffix = "/mode=" + r.Mode
	}
	if r.Workers > 0 {
		suffix += fmt.Sprintf("/p=%d", r.Workers)
	}
	fmt.Printf("BenchmarkScaleJoin/n=%d%s 1 %.2f p50-rounds %.2f p95-rounds %.2f max-rounds %.0f joins/s %.3f wall-sec\n",
		r.N, suffix, r.JoinRounds.P50, r.JoinRounds.P95, r.JoinRounds.Max, r.JoinsPerSec, r.JoinWallSec)
	fmt.Printf("BenchmarkScaleFanout/n=%d%s 1 %.2f p50-rounds %.2f p95-rounds %.2f max-rounds\n",
		r.N, suffix, r.FanoutRounds.P50, r.FanoutRounds.P95, r.FanoutRounds.Max)
	fmt.Printf("BenchmarkScaleStabilize/n=%d%s 1 %d stabilize-rounds\n", r.N, suffix, r.StabilizeRounds)
	fmt.Printf("BenchmarkScaleMemory/n=%d%s 1 %d db-bytes %d trie-bytes %d queue-bytes\n",
		r.N, suffix, r.SupDBBytes, r.SubTrieBytes, r.QueueBytes)
	// Wall-clock per phase: the series the parallel-speedup claims are
	// measured on (P on the x-axis, one line per n).
	if r.Workers > 0 {
		fmt.Printf("BenchmarkScaleWallClock/n=%d/p=%d 1 %.0f joins/s %.3f join-sec %.3f fanout-sec %.3f stabilize-sec\n",
			r.N, r.Workers, r.JoinsPerSec, r.JoinWallSec, r.FanoutWallSec, r.StabilizeWallSec)
	}
}
