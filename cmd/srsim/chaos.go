package main

// srsim chaos: the chaos scenario engine as a command. Runs named or
// seed-generated random scenarios on any execution substrate, prints the
// per-run convergence report, and — for failing random scenarios on the
// deterministic substrate — shrinks the action list to a 1-minimal failing
// core and prints the exact replay command.
//
//	srsim chaos -scenario=partition-heal -runtime=net
//	srsim chaos -scenario=random -count=200 -seed=1
//	srsim chaos -scenario=random-ordering -count=60 -seed=1
//	srsim chaos -scenario=message-reorder -mode=fifo
//	srsim chaos -scenario=random -seed=1337 -shrink
//	srsim chaos -list

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"sspubsub/internal/chaos"
	"sspubsub/internal/metrics"
	"sspubsub/internal/ordering"
)

func runChaos(args []string) {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	scenario := fs.String("scenario", "random", "scenario name, 'random' for seed-generated scenarios, or 'random-ordering' for seed-generated ordered-delivery scenarios")
	mode := fs.String("mode", "besteffort", "delivery mode: besteffort | fifo | causal (a scenario's own mode wins when set)")
	runtime := fs.String("runtime", "sim", "execution substrate: sim | concurrent | net")
	n := fs.Int("n", 12, "initial member count")
	supervisors := fs.Int("supervisors", 1, "supervisor-plane size (a scenario's own supervisor count wins when set)")
	repFactor := fs.Int("repfactor", 0, "directory replication factor (a scenario's own ReplicationFactor wins when set)")
	seed := fs.Int64("seed", 1, "scenario seed (random scenarios replay exactly from it on -runtime=sim)")
	count := fs.Int("count", 1, "number of runs; run i uses seed+i-1")
	interval := fs.Duration("interval", 2*time.Millisecond, "timeout interval (concurrent/net substrates)")
	rounds := fs.Int("rounds", 0, "convergence budget in intervals (0 = engine default)")
	shrink := fs.Bool("shrink", false, "on a random-scenario failure, shrink the action list to a minimal failing core (sim runtime only)")
	list := fs.Bool("list", false, "list named scenarios and exit")
	verbose := fs.Bool("v", false, "log every applied action")
	failuresOut := fs.String("failures-out", "", "append failing runs as JSON lines to this file (soak artifact)")
	fs.Parse(args)

	if *list {
		for _, sc := range chaos.Registry {
			fmt.Printf("%-22s %s\n", sc.Name, sc.Note)
		}
		return
	}

	// Strict validation, consistent with the one-shot flag checks: a typo
	// must be loud, not a silently different experiment.
	if *n < 3 {
		fail("-n must be at least 3, got %d", *n)
	}
	if *supervisors < 1 {
		fail("-supervisors must be at least 1, got %d", *supervisors)
	}
	if *repFactor < 0 {
		fail("-repfactor must be non-negative, got %d", *repFactor)
	}
	if *count < 1 {
		fail("-count must be positive, got %d", *count)
	}
	sub, err := chaos.ParseSubstrate(*runtime)
	if err != nil {
		fail("%v", err)
	}
	dm, err := ordering.ParseMode(*mode)
	if err != nil {
		fail("%v", err)
	}
	random := *scenario == "random"
	randomOrdering := *scenario == "random-ordering"
	var named chaos.Scenario
	if !random && !randomOrdering {
		var ok bool
		if named, ok = chaos.Lookup(*scenario); !ok {
			fail("unknown scenario %q (use -list; 'random' and 'random-ordering' generate from -seed)", *scenario)
		}
	}
	if *shrink && (!(random || randomOrdering) || sub != chaos.SubstrateSim) {
		fail("-shrink requires -scenario=random or -scenario=random-ordering and -runtime=sim (shrinking replays candidate action lists, which is only exact on the deterministic substrate)")
	}

	var agg metrics.Convergence
	failures := 0
	for i := 0; i < *count; i++ {
		runSeed := *seed + int64(i)
		sc := named
		if random {
			sc = chaos.Generate(runSeed)
		} else if randomOrdering {
			sc = chaos.GenerateOrdering(runSeed)
		}
		cfg := chaos.Config{
			Substrate:         sub,
			N:                 *n,
			Supervisors:       *supervisors,
			ReplicationFactor: *repFactor,
			Seed:              runSeed,
			Interval:          *interval,
			ConvergeRounds:    *rounds,
			DeliveryMode:      dm,
		}
		if *verbose {
			cfg.Log = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			}
		}
		res := chaos.Run(sc, cfg)
		fmt.Println(res)
		agg.Observe(res.Rounds, res.Converged)
		if res.Converged {
			continue
		}
		failures++
		// The replay command must carry every flag that shaped the run, or
		// "exact replay" silently runs a different experiment.
		replay := fmt.Sprintf("srsim chaos -scenario=%s -runtime=%s -n=%d -seed=%d", *scenario, sub, *n, runSeed)
		if dm != ordering.BestEffort {
			replay += fmt.Sprintf(" -mode=%s", dm)
		}
		if *supervisors != 1 {
			replay += fmt.Sprintf(" -supervisors=%d", *supervisors)
		}
		if *repFactor != 0 {
			replay += fmt.Sprintf(" -repfactor=%d", *repFactor)
		}
		if *rounds != 0 {
			replay += fmt.Sprintf(" -rounds=%d", *rounds)
		}
		if sub != chaos.SubstrateSim {
			replay += fmt.Sprintf(" -interval=%s", *interval)
		}
		fmt.Printf("  replay: %s\n", replay)
		recordFailure(*failuresOut, res)
		if *shrink && (random || randomOrdering) {
			fmt.Printf("  shrinking %d actions…\n", len(res.Actions))
			minimal := chaos.Shrink(res.Actions, func(actions []Action) bool {
				r := chaos.Run(chaos.Scenario{Name: sc.Name, DeliveryMode: sc.DeliveryMode, Actions: actions}, cfg)
				return !r.Converged
			})
			fmt.Printf("  minimal failing action list (%d actions):\n", len(minimal))
			for _, a := range minimal {
				fmt.Printf("    %s\n", a)
			}
		}
	}

	if *count > 1 {
		fmt.Printf("\nchaos summary: %s\n", agg.String())
	}
	if failures > 0 {
		fatalf("%d of %d runs failed to converge", failures, *count)
	}
}

// Action aliases the chaos action type for the shrink callback signature.
type Action = chaos.Action

// recordFailure appends one failing result as a JSON line (the nightly
// soak uploads the file as an artifact, so a red run always carries its
// replay seeds).
func recordFailure(path string, res chaos.Result) {
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fmt.Fprintf(os.Stderr, "srsim: failures-out: %v\n", err)
		return
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	if err := enc.Encode(res); err != nil {
		fmt.Fprintf(os.Stderr, "srsim: failures-out: %v\n", err)
	}
}
