package main

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// startCPUProfile begins writing a CPU profile to path and returns the
// stop function. An unwritable path or a profiling failure is a usage
// error (exit 2): a sweep that silently measured without the profile the
// operator asked for would waste the whole run.
func startCPUProfile(path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fail("-cpuprofile: %v", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		fail("-cpuprofile: %v", err)
	}
	return func() {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			fail("-cpuprofile: %v", err)
		}
	}
}

// writeMemProfile writes an allocs-space heap profile to path (after a GC,
// so the numbers reflect live retention, not garbage). Exit 2 on failure,
// as with startCPUProfile.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fail("-memprofile: %v", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		fail("-memprofile: %v", err)
	}
	if err := f.Close(); err != nil {
		fail("-memprofile: %v", err)
	}
}
