package main

import (
	"flag"
	"fmt"
	"time"

	"sspubsub"
	"sspubsub/internal/runtime/nettransport"
)

// netFlags are the options shared by the serve and join subcommands.
type netFlags struct {
	topic    string
	local    int
	pubs     int
	waitpubs int
	interval time.Duration
	timeout  time.Duration
	seed     int64
	eventbuf int
	verbose  bool
}

func addNetFlags(fs *flag.FlagSet) *netFlags {
	nf := &netFlags{}
	fs.StringVar(&nf.topic, "topic", "demo", "topic name")
	fs.IntVar(&nf.local, "local", 2, "subscriber clients hosted by this process")
	fs.IntVar(&nf.pubs, "pubs", 2, "publications this process contributes")
	fs.IntVar(&nf.waitpubs, "waitpubs", 0, "total publications (all processes) to wait for; 0 = just this process's")
	fs.DurationVar(&nf.interval, "interval", 5*time.Millisecond, "protocol timeout interval")
	fs.DurationVar(&nf.timeout, "timeout", 60*time.Second, "overall deadline")
	fs.Int64Var(&nf.seed, "seed", 1, "random seed for protocol coin flips")
	fs.IntVar(&nf.eventbuf, "eventbuf", 256, "per-subscription event buffer (small values demonstrate the Dropped counter)")
	fs.BoolVar(&nf.verbose, "v", false, "log connection lifecycle events")
	return nf
}

func (nf *netFlags) validate() {
	if nf.local < 0 {
		fail("-local must be ≥ 0, got %d", nf.local)
	}
	if nf.pubs < 0 {
		fail("-pubs must be ≥ 0, got %d", nf.pubs)
	}
	if nf.waitpubs == 0 {
		nf.waitpubs = nf.pubs
	}
	if nf.eventbuf <= 0 {
		fail("-eventbuf must be positive, got %d", nf.eventbuf)
	}
	if nf.local == 0 && nf.pubs > 0 {
		fail("-pubs %d requires -local ≥ 1 (publishers are subscribers; pass -pubs 0 to run a relay-only process)", nf.pubs)
	}
	if nf.local == 0 && nf.waitpubs > 0 {
		fail("-waitpubs %d requires -local ≥ 1 (no local subscriber can observe publications)", nf.waitpubs)
	}
}

func (nf *netFlags) logf() func(string, ...any) {
	if !nf.verbose {
		return nil
	}
	return func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}
}

// runServe hosts the supervisor process of a networked deployment: it
// listens for join processes, runs -local subscribers of its own, waits
// until -expect subscribers (across all processes) are registered, then
// publishes and waits for full dissemination.
func runServe(args []string) {
	fs := flag.NewFlagSet("srsim serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7411", "TCP address to listen on")
	expect := fs.Int("expect", 0, "total subscribers (all processes) to wait for; 0 = only local ones")
	linger := fs.Duration("linger", 5*time.Second, "keep serving this long after local success, so join processes can finish their anti-entropy through the hub")
	nf := addNetFlags(fs)
	fs.Parse(args)
	nf.validate()
	if *expect == 0 {
		*expect = nf.local
	}
	if *expect < nf.local {
		fail("-expect %d is smaller than -local %d", *expect, nf.local)
	}

	hub, err := nettransport.NewHub(nettransport.Options{
		Listen: *listen, Interval: nf.interval, Seed: nf.seed, Logf: nf.logf(),
	})
	if err != nil {
		fatalf("%v", err)
	}
	sys := sspubsub.NewSystem(sspubsub.Options{
		Transport: hub, Interval: nf.interval, Seed: nf.seed, EventBuffer: nf.eventbuf,
	})
	defer sys.Close()
	fmt.Printf("serve: supervisor up on %s, hosting %d local subscribers of topic %q\n",
		hub.Addr(), nf.local, nf.topic)

	subs := makeClients(sys, "serve", nf)

	// Wait for the whole deployment: the supervisor's database counts
	// subscribers from every process.
	deadline := time.Now().Add(nf.timeout)
	last := -1
	for sys.TopicSize(nf.topic) < *expect {
		if n := sys.TopicSize(nf.topic); n != last {
			fmt.Printf("serve: %d/%d subscribers registered\n", n, *expect)
			last = n
		}
		if time.Now().After(deadline) {
			fatalf("only %d/%d subscribers registered within %s", sys.TopicSize(nf.topic), *expect, nf.timeout)
		}
		time.Sleep(nf.interval)
	}
	fmt.Printf("serve: all %d subscribers registered\n", *expect)

	publishAndReport(sys, "serve", nf, subs, hub.GarbageFrames, hub.LostFrames)
	if *linger > 0 {
		fmt.Printf("serve: lingering %s for join processes to finish…\n", *linger)
		time.Sleep(*linger)
	}
}

// runJoin attaches a subscriber process to a running serve process: it
// receives a node-ID block, joins the topic, publishes its share and
// waits for everyone else's publications to arrive.
func runJoin(args []string) {
	fs := flag.NewFlagSet("srsim join", flag.ExitOnError)
	hubAddr := fs.String("hub", "127.0.0.1:7411", "address of the serve process")
	nf := addNetFlags(fs)
	fs.Parse(args)
	nf.validate()
	if nf.local == 0 {
		fail("-local must be ≥ 1 on join (a joiner with no subscribers does nothing)")
	}

	nt, err := nettransport.NewJoiner(nettransport.Options{
		Hub: *hubAddr, Interval: nf.interval, Seed: nf.seed, Logf: nf.logf(),
	})
	if err != nil {
		fatalf("%v", err)
	}
	sys := sspubsub.NewSystem(sspubsub.Options{
		Transport: nt, Attach: true, FirstClientID: nt.BaseID(),
		Interval: nf.interval, Seed: nf.seed, EventBuffer: nf.eventbuf,
	})
	defer sys.Close()
	prefix := fmt.Sprintf("join%d", nt.BaseID())
	fmt.Printf("join: granted node IDs [%d, %d); hosting %d subscribers of topic %q\n",
		nt.BaseID(), int64(nt.BaseID())+int64(nt.Slots()), nf.local, nf.topic)

	subs := makeClients(sys, prefix, nf)
	if !sys.WaitJoined(nf.topic, nf.local, nf.timeout) {
		fatalf("subscribers not integrated by the remote supervisor within %s", nf.timeout)
	}
	fmt.Printf("join: all %d local subscribers hold labels\n", nf.local)

	publishAndReport(sys, prefix, nf, subs, nt.GarbageFrames, nt.LostFrames)
}

// procClients is one process's set of clients and their subscriptions.
type procClients struct {
	clients []*sspubsub.Client
	subs    []*sspubsub.Subscription
}

// makeClients creates the local clients and subscribes each to the topic.
func makeClients(sys *sspubsub.System, prefix string, nf *netFlags) *procClients {
	pc := &procClients{
		clients: make([]*sspubsub.Client, nf.local),
		subs:    make([]*sspubsub.Subscription, nf.local),
	}
	for i := range pc.clients {
		pc.clients[i] = sys.MustClient(fmt.Sprintf("%s-%d", prefix, i))
		pc.subs[i] = pc.clients[i].Subscribe(nf.topic)
	}
	return pc
}

// publishAndReport is the shared tail of serve and join: publish this
// process's share, wait until every local subscriber knows all -waitpubs
// publications, then report deliveries — including the Dropped counter,
// so a lagging consumer is visible instead of silent.
func publishAndReport(sys *sspubsub.System, prefix string, nf *netFlags,
	pc *procClients, garbage, lost func() int64) {

	subs := pc.subs
	if len(subs) == 0 {
		// Relay-only process (-local 0): nothing to publish or observe.
		fmt.Printf("%s: no local subscribers; relaying only\n", prefix)
		return
	}
	for i := 0; i < nf.pubs; i++ {
		c := pc.clients[i%len(pc.clients)]
		if err := c.Publish(nf.topic, fmt.Sprintf("%s-pub-%d", prefix, i)); err != nil {
			fatalf("publish: %v", err)
		}
	}
	if nf.pubs > 0 {
		fmt.Printf("%s: published %d items\n", prefix, nf.pubs)
	}

	deadline := time.Now().Add(nf.timeout)
	for {
		done := true
		for _, sub := range subs {
			if len(sub.History()) < nf.waitpubs {
				done = false
				break
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			fatalf("only %d/%d publications arrived within %s", len(subs[0].History()), nf.waitpubs, nf.timeout)
		}
		time.Sleep(nf.interval)
	}

	consumed := 0
	for _, sub := range subs {
	drain:
		for {
			select {
			case _, ok := <-sub.Events():
				if !ok {
					break drain
				}
				consumed++
			default:
				break drain
			}
		}
	}
	var droppedTotal int64
	for _, sub := range subs {
		droppedTotal += sub.Dropped()
	}
	fmt.Printf("%s: %d publications known to every local subscriber\n", prefix, nf.waitpubs)
	fmt.Printf("%s: events consumed %d, dropped %d (lagging-consumer overflow)\n", prefix, consumed, droppedTotal)
	fmt.Printf("%s: wire frames — garbage %d, lost %d\n", prefix, garbage(), lost())
	for i, sub := range subs {
		fmt.Printf("  %s-%d: %d publications in history\n", prefix, i, len(sub.History()))
	}
}
