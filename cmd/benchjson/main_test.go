package main

import (
	"io"
	"strings"
	"testing"
)

func rep(results ...Result) Report { return Report{Results: results} }

func res(name string, metrics map[string]float64) Result {
	return Result{Name: name, Iterations: 1000, Metrics: metrics}
}

// TestParseRecordsAllocMetrics: a -benchmem result line yields B/op and
// allocs/op series alongside ns/op and custom metrics.
func TestParseRecordsAllocMetrics(t *testing.T) {
	text := `goos: linux
goarch: amd64
BenchmarkHotPathPublishFanout/net-8   1000   249800 ns/op   19007 B/op   114 allocs/op   7.5 extra/metric
some unrelated line
`
	var r Report
	parse(strings.NewReader(text), &r)
	if len(r.Results) != 1 {
		t.Fatalf("parsed %d results, want 1", len(r.Results))
	}
	got := r.Results[0]
	if got.Name != "BenchmarkHotPathPublishFanout/net-8" || got.Iterations != 1000 {
		t.Fatalf("parsed %+v", got)
	}
	for unit, want := range map[string]float64{
		"ns/op": 249800, "B/op": 19007, "allocs/op": 114, "extra/metric": 7.5,
	} {
		if got.Metrics[unit] != want {
			t.Errorf("metric %s = %v, want %v", unit, got.Metrics[unit], want)
		}
	}
	if r.GoOS != "linux" || r.GoArch != "amd64" {
		t.Errorf("platform = %s/%s", r.GoOS, r.GoArch)
	}
}

// TestCompareGating pins the regression gate: only gated units fail,
// direction respects rate units, and the threshold is relative.
func TestCompareGating(t *testing.T) {
	old := rep(
		res("BenchA", map[string]float64{"allocs/op": 100, "ns/op": 1000, "pubs/s": 500}),
		res("BenchGone", map[string]float64{"allocs/op": 1}),
	)
	cases := []struct {
		name       string
		cur        Report
		gate       string
		wantHits   int
		wantSubstr string
	}{
		{"within threshold", rep(res("BenchA", map[string]float64{"allocs/op": 110})), "allocs/op", 0, ""},
		{"alloc regression", rep(res("BenchA", map[string]float64{"allocs/op": 120})), "allocs/op", 1, "allocs/op"},
		{"improvement never gates", rep(res("BenchA", map[string]float64{"allocs/op": 10})), "allocs/op", 0, ""},
		{"ungated unit ignored", rep(res("BenchA", map[string]float64{"ns/op": 5000})), "allocs/op", 0, ""},
		{"gate all", rep(res("BenchA", map[string]float64{"ns/op": 5000})), "all", 1, "ns/op"},
		{"rate drop is a regression", rep(res("BenchA", map[string]float64{"pubs/s": 100})), "all", 1, "pubs/s"},
		{"rate rise is fine", rep(res("BenchA", map[string]float64{"pubs/s": 900})), "all", 0, ""},
		{"new series never gates", rep(res("BenchNew", map[string]float64{"allocs/op": 9999})), "all", 0, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			regs := compare(&sb, old, tc.cur, 0.15, tc.gate)
			if len(regs) != tc.wantHits {
				t.Fatalf("regressions = %v, want %d", regs, tc.wantHits)
			}
			if tc.wantHits > 0 && !strings.Contains(regs[0], tc.wantSubstr) {
				t.Fatalf("regression %q does not mention %q", regs[0], tc.wantSubstr)
			}
			if !strings.Contains(sb.String(), "| benchmark |") {
				t.Fatal("no markdown table emitted")
			}
			if !strings.Contains(sb.String(), "BenchGone") || !strings.Contains(sb.String(), "removed") {
				t.Fatal("removed series not listed")
			}
		})
	}
}

// TestCompareZeroBaseline: growing from a zero baseline counts as
// unbounded regression rather than dividing by zero.
func TestCompareZeroBaseline(t *testing.T) {
	old := rep(res("BenchA", map[string]float64{"allocs/op": 0}))
	var sb strings.Builder
	regs := compare(&sb, old, rep(res("BenchA", map[string]float64{"allocs/op": 3})), 0.15, "allocs/op")
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want 1", regs)
	}
}

// Every series unit the repository's benchmarks and sweeps emit must have
// an explicit direction: rates up, everything else down. One subtest per
// unit so a future series added without a table entry fails by name.
func TestUnitDirections(t *testing.T) {
	cases := []struct {
		unit   string
		higher bool
	}{
		{"subs/s", true},
		{"joins/s", true},
		{"pubs/s", true},
		{"msgs/s", true},
		{"ops/s", true},
		{"ns/op", false},
		{"B/op", false},
		{"allocs/op", false},
		{"p50-rounds", false},
		{"p95-rounds", false},
		{"max-rounds", false},
		{"stabilize-rounds", false},
		{"db-bytes", false},
		{"trie-bytes", false},
		{"queue-bytes", false},
		{"wall-sec", false},
		{"rounds", false},
		{"msgs", false},
	}
	for _, c := range cases {
		t.Run(c.unit, func(t *testing.T) {
			if _, listed := unitDirection[c.unit]; !listed {
				t.Fatalf("unit %q missing from the explicit direction table", c.unit)
			}
			if got := higherIsBetter(c.unit); got != c.higher {
				t.Fatalf("higherIsBetter(%q) = %v, want %v", c.unit, got, c.higher)
			}
		})
	}
	// Unlisted units fall back to the rate-suffix heuristic.
	if !higherIsBetter("widgets/s") {
		t.Fatal("unlisted rate unit should default to higher-is-better")
	}
	if higherIsBetter("widgets") {
		t.Fatal("unlisted non-rate unit should default to lower-is-better")
	}
}

// A regression in a higher-is-better scale series (throughput drop) must
// gate, and an increase must not — the direction table, not the suffix,
// decides.
func TestCompareGatesScaleSeries(t *testing.T) {
	old := Report{Results: []Result{{
		Name: "BenchmarkScaleJoin/n=1000", Iterations: 1,
		Metrics: map[string]float64{"joins/s": 1000, "p95-rounds": 3},
	}}}
	slower := Report{Results: []Result{{
		Name: "BenchmarkScaleJoin/n=1000", Iterations: 1,
		Metrics: map[string]float64{"joins/s": 100, "p95-rounds": 9},
	}}}
	regs := compare(io.Discard, old, slower, 0.15, "all")
	if len(regs) != 2 {
		t.Fatalf("expected both joins/s drop and p95-rounds rise to gate, got %v", regs)
	}
	faster := Report{Results: []Result{{
		Name: "BenchmarkScaleJoin/n=1000", Iterations: 1,
		Metrics: map[string]float64{"joins/s": 2000, "p95-rounds": 1},
	}}}
	if regs := compare(io.Discard, old, faster, 0.15, "all"); len(regs) != 0 {
		t.Fatalf("improvements must not gate, got %v", regs)
	}
}
