// Command benchjson converts `go test -bench` text output into a JSON
// artifact, so CI runs can accumulate a machine-readable performance
// trajectory (BENCH_<sha>.json files) instead of throwaway logs, and
// compares two artifacts as a regression gate.
//
// Usage:
//
//	go test -bench . -benchmem | go run ./cmd/benchjson -commit $SHA -o BENCH_$SHA.json
//	go run ./cmd/benchjson -o out.json bench1.txt bench2.txt
//	go run ./cmd/benchjson -compare BENCH_old.json -o out.json bench1.txt
//	go run ./cmd/benchjson -compare BENCH_old.json BENCH_new.json
//
// Every benchmark result line of the form
//
//	BenchmarkName-8   1234   5678 ns/op   90 B/op   2 allocs/op   3.4 extra/metric
//
// becomes one JSON object with the benchmark name, iteration count and a
// metrics map keyed by unit (run benchmarks with -benchmem, or with
// b.ReportAllocs() in the benchmark, so B/op and allocs/op are part of
// every series). Non-benchmark lines are ignored, so raw `go test`
// output can be piped in unfiltered. Inputs ending in .json are loaded
// as previously written artifacts and merged, so two artifacts can be
// compared directly. When the same benchmark name appears more than once
// (e.g. a 1x smoke pass and a dedicated high-iteration pass of the same
// package), the last occurrence wins, so feed inputs lowest-fidelity
// first.
//
// With -compare OLD.json the assembled report is diffed against the
// baseline artifact: a markdown delta table goes to stdout (ready for a
// CI job summary), and the process exits with status 2 if any gated
// series regressed by more than -threshold (default 0.15 = 15%). The
// gate defaults to the allocation metrics (allocs/op, B/op), which are
// stable across machines; pass -gate all to also gate wall-clock and
// custom series, or -gate "ns/op,allocs/op" to pick your own. Series
// whose unit ends in "/s" are rates (higher is better); every other
// metric counts lower as better.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the artifact schema.
type Report struct {
	Commit  string   `json:"commit,omitempty"`
	GoOS    string   `json:"goos,omitempty"`
	GoArch  string   `json:"goarch,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	commit := flag.String("commit", "", "commit SHA to stamp into the artifact")
	out := flag.String("o", "", "output file (default stdout; suppressed in -compare mode unless set)")
	compareWith := flag.String("compare", "", "baseline artifact (.json) to diff against; exits 2 on regression")
	threshold := flag.Float64("threshold", 0.15, "relative regression beyond which a gated series fails")
	gate := flag.String("gate", "allocs/op,B/op", `comma-separated metric units to gate on, or "all"`)
	flag.Parse()

	rep := Report{Commit: *commit}
	if flag.NArg() == 0 {
		parse(os.Stdin, &rep)
	}
	for _, path := range flag.Args() {
		if strings.HasSuffix(path, ".json") {
			old, err := loadReport(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
			rep.Results = append(rep.Results, old.Results...)
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		parse(f, &rep)
		f.Close()
	}
	rep.Results = dedupeKeepLast(rep.Results)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	switch {
	case *out != "":
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(rep.Results), *out)
	case *compareWith == "":
		os.Stdout.Write(enc)
	}

	if *compareWith != "" {
		base, err := loadReport(*compareWith)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		regressions := compare(os.Stdout, base, rep, *threshold, *gate)
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d series regressed beyond %.0f%%:\n", len(regressions), *threshold*100)
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "benchjson: no gated series regressed beyond %.0f%%\n", *threshold*100)
	}
}

func loadReport(path string) (Report, error) {
	var rep Report
	b, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// unitDirection is the explicit improvement direction per metric unit:
// true = higher is better (throughput rates), false = lower is better
// (times, bytes, allocations, rounds). Every unit a benchmark in this
// repository emits must be listed — the suffix heuristic this table
// replaced silently classified a typoed rate unit ("joins/sec") as
// lower-is-better and let a 10× throughput collapse pass the gate.
var unitDirection = map[string]bool{
	// Throughput rates: higher is better.
	"subs/s":  true,
	"joins/s": true,
	"pubs/s":  true,
	"msgs/s":  true,
	"ops/s":   true,
	// Standard go-bench series: lower is better.
	"ns/op":     false,
	"B/op":      false,
	"allocs/op": false,
	// Scale-sweep series (cmd/srsim scale -bench): lower is better.
	"p50-rounds":       false,
	"p95-rounds":       false,
	"max-rounds":       false,
	"stabilize-rounds": false,
	"db-bytes":         false,
	"trie-bytes":       false,
	"queue-bytes":      false,
	"wall-sec":         false,
	// Protocol experiment series: lower is better.
	"rounds":   false,
	"msgs":     false,
	"hops":     false,
	"messages": false,
}

// higherIsBetter resolves a unit's direction from the explicit table;
// unlisted units fall back to the per-second heuristic so ad-hoc local
// benchmarks still compare sensibly.
func higherIsBetter(unit string) bool {
	if hb, ok := unitDirection[unit]; ok {
		return hb
	}
	return strings.HasSuffix(unit, "/s")
}

// compare writes a markdown delta table for every series present in both
// reports and returns a description of each gated series that regressed
// beyond threshold. Series appearing in only one report are listed but
// never gate (a renamed or new benchmark is not a regression).
func compare(w io.Writer, old, cur Report, threshold float64, gate string) []string {
	gateAll := gate == "all"
	gated := map[string]bool{}
	for _, u := range strings.Split(gate, ",") {
		if u = strings.TrimSpace(u); u != "" {
			gated[u] = true
		}
	}
	oldBy := map[string]Result{}
	for _, r := range old.Results {
		oldBy[r.Name] = r
	}
	var regressions, added []string
	fmt.Fprintf(w, "| benchmark | metric | old | new | delta | |\n|---|---|---:|---:|---:|---|\n")
	for _, nr := range cur.Results {
		or, ok := oldBy[nr.Name]
		if !ok {
			added = append(added, nr.Name)
			continue
		}
		delete(oldBy, nr.Name)
		units := make([]string, 0, len(nr.Metrics))
		for u := range nr.Metrics {
			if _, both := or.Metrics[u]; both {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			ov, nv := or.Metrics[u], nr.Metrics[u]
			var delta float64
			switch {
			case ov == nv:
				delta = 0
			case ov == 0:
				delta = math.Inf(1) // 0 → nonzero: treat as unbounded growth
			default:
				delta = nv/ov - 1
			}
			worse := delta > 0
			if higherIsBetter(u) {
				worse = delta < 0
			}
			mark := ""
			if worse && math.Abs(delta) > threshold {
				mark = "⚠"
				if gateAll || gated[u] {
					mark = "❌"
					regressions = append(regressions,
						fmt.Sprintf("%s %s: %.4g → %.4g (%+.1f%%)", nr.Name, u, ov, nv, delta*100))
				}
			}
			fmt.Fprintf(w, "| %s | %s | %.4g | %.4g | %+.1f%% | %s |\n", nr.Name, u, ov, nv, delta*100, mark)
		}
	}
	for _, name := range added {
		fmt.Fprintf(w, "| %s | | | | | new |\n", name)
	}
	removed := make([]string, 0, len(oldBy))
	for name := range oldBy {
		removed = append(removed, name)
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(w, "| %s | | | | | removed |\n", name)
	}
	return regressions
}

// dedupeKeepLast collapses repeated benchmark names to their final
// measurement, preserving first-appearance order.
func dedupeKeepLast(results []Result) []Result {
	last := make(map[string]Result, len(results))
	for _, r := range results {
		last[r.Name] = r
	}
	out := make([]Result, 0, len(last))
	seen := make(map[string]bool, len(last))
	for _, r := range results {
		if !seen[r.Name] {
			seen[r.Name] = true
			out = append(out, last[r.Name])
		}
	}
	return out
}

func parse(r io.Reader, rep *Report) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			res.Metrics[fields[i+1]] = v
		}
		if ok {
			rep.Results = append(rep.Results, res)
		}
	}
}
