// Command benchjson converts `go test -bench` text output into a JSON
// artifact, so CI runs can accumulate a machine-readable performance
// trajectory (BENCH_<sha>.json files) instead of throwaway logs.
//
// Usage:
//
//	go test -bench . | go run ./cmd/benchjson -commit $SHA -o BENCH_$SHA.json
//	go run ./cmd/benchjson -o out.json bench1.txt bench2.txt
//
// Every benchmark result line of the form
//
//	BenchmarkName-8   1234   5678 ns/op   90 B/op   2 allocs/op   3.4 extra/metric
//
// becomes one JSON object with the benchmark name, iteration count and a
// metrics map keyed by unit. Non-benchmark lines are ignored, so raw `go
// test` output can be piped in unfiltered. When the same benchmark name
// appears more than once (e.g. a 1x smoke pass and a dedicated
// high-iteration pass of the same package), the last occurrence wins, so
// feed inputs lowest-fidelity first.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the artifact schema.
type Report struct {
	Commit  string   `json:"commit,omitempty"`
	GoOS    string   `json:"goos,omitempty"`
	GoArch  string   `json:"goarch,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	commit := flag.String("commit", "", "commit SHA to stamp into the artifact")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rep := Report{Commit: *commit}
	readers := []io.Reader{}
	if flag.NArg() == 0 {
		readers = append(readers, os.Stdin)
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		readers = append(readers, f)
	}
	for _, r := range readers {
		parse(r, &rep)
	}
	rep.Results = dedupeKeepLast(rep.Results)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(rep.Results), *out)
}

// dedupeKeepLast collapses repeated benchmark names to their final
// measurement, preserving first-appearance order.
func dedupeKeepLast(results []Result) []Result {
	last := make(map[string]Result, len(results))
	for _, r := range results {
		last[r.Name] = r
	}
	out := make([]Result, 0, len(last))
	seen := make(map[string]bool, len(last))
	for _, r := range results {
		if !seen[r.Name] {
			seen[r.Name] = true
			out = append(out, last[r.Name])
		}
	}
	return out
}

func parse(r io.Reader, rep *Report) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			res.Metrics[fields[i+1]] = v
		}
		if ok {
			rep.Results = append(rep.Results, res)
		}
	}
}
