// Package sspubsub is a self-stabilizing supervised publish-subscribe
// system: a Go implementation of Feldmann, Kolb, Scheideler and Strothmann,
// "Self-Stabilizing Supervised Publish-Subscribe Systems" (IPDPS Workshops
// 2018, arXiv:1710.08128).
//
// Subscribers of a topic organize themselves into a supervised skip ring —
// a sorted ring over supervisor-assigned labels plus shortcuts that give
// the overlay logarithmic diameter — with the help of a lightweight,
// always-known supervisor that only stores the (label, subscriber)
// database and answers subscribe/unsubscribe/configuration requests with a
// constant number of messages. The protocol is self-stabilizing: from any
// initial state (corrupted labels, corrupted supervisor database, garbage
// in channels, partitioned components, crashed nodes) the overlay
// converges to the unique legitimate topology and stays there.
// Publications are stored in hashed Patricia tries and reconciled by a
// Merkle-style anti-entropy protocol, so every subscriber of a topic
// eventually holds every publication ever issued for it; a flooding layer
// delivers fresh publications along ring and shortcut edges in O(log n)
// hops.
//
// Two entry points are provided:
//
//   - System runs the protocol live for applications: create clients,
//     subscribe to topics, publish payloads and receive deliveries on
//     channels.
//   - Simulation drives research scenarios — corrupted states, crashes,
//     convergence detection, message accounting — on a selectable
//     execution substrate (SimOptions.Runtime).
//
// Protocol nodes are substrate-agnostic: they implement sim.Handler
// against sim.Context, and any sim.Transport can execute them. Three
// transports ship with the package:
//
//   - RuntimeSim, the deterministic discrete-event scheduler
//     (internal/sim): virtual time, seeded randomness, bit-identical
//     equal-seed replay, exact message accounting. Use it for research,
//     regression tests and anything that must be reproducible.
//   - RuntimeConcurrent, the production goroutine-per-node runtime
//     (internal/runtime/concurrent): buffered mailbox channels with a
//     loss-free overflow tier, real-time jittered Timeout ticks, a
//     crash/restart fault injector, and a quiesce barrier that freezes
//     the system so convergence predicates read one consistent cross-node
//     snapshot. Use it to exercise true parallelism; System runs on it by
//     default.
//   - RuntimeNet, the networked transport (internal/runtime/nettransport
//     over the internal/wire binary codec): the same goroutine nodes, but
//     every message is a length-prefixed wire frame crossing a real TCP
//     socket. In-process it runs as a loopback (SimOptions.Runtime "net");
//     across processes a hub grants node-ID blocks to joiners and relays
//     their traffic, so one skip ring spans address spaces. Undecodable
//     frames are counted and dropped — corruption becomes message loss,
//     which the protocol self-stabilizes through — and dropped links
//     redial with exponential backoff.
//
// Networked deployment: the serve process creates a System over
// nettransport.NewHub (it hosts the supervisor); every other process
// attaches with Options.Attach and Options.FirstClientID set from its
// nettransport.NewJoiner's granted ID block. See cmd/srsim's serve and
// join subcommands for a complete two-process walkthrough, and
// Subscription.Dropped for observing consumers that lag behind their
// event buffer.
//
// The cross-substrate conformance tests run the same BuildSR scenario on
// all three transports and require identical outcomes, which is
// well-defined because the legitimate state is unique for every member
// count.
//
// # Performance
//
// The message hot path is effectively allocation-free on every
// substrate. The deterministic scheduler schedules and delivers with
// zero allocations per message (slice-backed event heap, reused handler
// context, cached type-name accounting shared with the wire registry);
// the wire codec encodes frames append-only into pooled or caller-held
// buffers (wire.AppendFrame, wire.WriteFrame) and decodes through a
// per-connection wire.DecodeState whose arena bump-allocates payload
// strings and batch scaffolds and whose direct-mapped cache interns
// repeated fan-out bodies; and the concurrent runtime's loss-free
// overflow tier recycles pooled segments. The networked transport runs
// an encode-once egress pipeline: a single router goroutine encodes each
// distinct outbound body once into a pooled refcounted slab and hands
// slab references to the per-peer writers over lock-free single-
// producer/single-consumer rings (internal/ring — runtime-agnostic, a
// candidate for the concurrent runtime's mailbox tier), and each writer
// coalesces its ring bursts into length-prefixed wire.Batch2 frames by
// splicing the shared slabs, never re-encoding. On the pinned fan-out
// benchmark (one publication flooded to 16 subscribers,
// BenchmarkHotPathPublishFanout) this cut whole-system allocations per
// publication by 9.0x on the sim substrate, 12.0x on the concurrent
// runtime and 24x over TCP (647 to 27 allocs/op), and a 16-way
// multicast of one body costs one encode and 16 boxed deliveries
// (BenchmarkNetEgressMulticast). testing.AllocsPerRun guards in
// internal/wire, internal/sim, internal/runtime/concurrent and the
// root package hold each layer to its budget, and CI diffs every run's
// BENCH_<sha>.json against the committed baseline, failing on >15%
// regressions in allocs/op or B/op (cmd/benchjson -compare). See the
// README's Performance section for the measured table and the exact
// reproduction commands.
//
// # Scale
//
// internal/scale drives 10^5–10^6 real-protocol subscribers on one
// machine by multiplexing thousands of unmodified client state machines
// onto each physical node: the substrates' AddListener aliases every
// virtual subscriber's node ID onto its hosting pool, so each keeps its
// own identity on the wire while sharing one timeout chain and one
// mailbox. `srsim scale -ns 1000,10000,100000` sweeps the population,
// measures join latency, publish fan-out, post-crash stabilization and
// memory at each point, and fits power-law growth exponents against the
// paper's O(log n) bounds; -bench emits the series in benchjson form so
// the nightly sweep accumulates a machine-readable scaling trajectory.
// Options.HistoryCap (and SimOptions.HistoryCap) bound each subscriber's
// retained publication history — at these populations an unbounded
// history is the difference between a flat and a linearly growing
// per-node footprint.
//
// The sweeps run on internal/psim, a conservative parallel discrete-event
// engine: nodes are sharded across lanes by a deterministic NodeID hash,
// lanes execute concurrently inside lookahead windows of width MinDelay
// (a message sent at t cannot deliver before t+MinDelay, so intra-window
// events never causally interact), and cross-lane sends merge at window
// barriers in a fixed (deliverTime, srcLane, seq) order. Results are
// bit-identical for every -workers value — parallelism buys wall-clock,
// never reproducibility — which CI enforces by diffing full result
// digests between serial and 4-worker runs. -workers=0 selects the
// legacy serial scheduler. See the README's Scale section for measured
// curves and the speedup table.
//
// # Supervisor plane
//
// The paper assumes one reliable supervisor. With Options.Supervisors > 1
// the system instead runs a crash-tolerant supervisor plane: topics are
// sharded over the supervisors by consistent hashing (internal/hashdht),
// the supervisors monitor each other through the system-wide failure
// detector, a crashed supervisor's topics migrate to their hashing
// successors, and each successor rebuilds its topic database from the
// live subscribers (the database is soft state, re-reported through a
// Reregister/OwnerAnnounce handshake that preserves the survivors'
// labels). Ownership eras are ordered by per-topic epochs carried in
// every configuration, so commands from deposed supervisors are
// recognizably stale. System.CrashSupervisor and System.RestartSupervisor
// (and the same pair on Simulation) inject the faults; the legitimacy
// predicates extend to ownership agreement. A single-supervisor system
// takes none of these code paths — this is a deliberate departure from
// the paper's reliable-supervisor assumption, extending the
// self-stabilization guarantee to the one component the paper exempts.
//
// With Options.ReplicationFactor > 0 the plane additionally replicates
// each topic's directory to the topic's hashdht successors: owners
// stream bounded delta batches and run a periodic anti-entropy digest
// exchange (mismatch triggers a bounded-chunk full sync, so an
// arbitrarily corrupted replica converges — the replication protocol is
// itself self-stabilizing, with no unbounded logs). On owner failure the
// successor adopts the warm replica at a fresh epoch and announces
// itself to the recorded subscribers directly, making failover time
// near-constant in the subscriber count; the Reregister rebuild above
// remains the fallback when the replica is stale or absent.
//
// # Delivery modes
//
// Delivery is best-effort by default: every publication reaches every
// subscriber exactly once, in no promised order — the paper's semantics.
// Options.DeliveryMode (and SimOptions.DeliveryMode, `srsim … -mode`)
// selects a stronger discipline for the deployment. ModeFIFO delivers
// each publisher's publications in publish order: publishers stamp a
// per-topic sequence number, subscribers hold out-of-order arrivals in a
// bounded reorder window, and a gap that outlives the window is declared
// lost so the cursor advances — corrupted or wrapped sequence state
// always converges instead of wedging the stream. ModeCausal additionally
// stamps each publication with a bounded causal-barrier summary (the
// publisher's recently-observed publishers and their sequence numbers,
// after VCube-PS) and holds delivery until the barrier is satisfied, with
// a hard cap on tracked publishers and deterministic eviction — O(k)
// state per subscriber, never a full vector clock. The ordering state is
// itself self-stabilizing: the corrupt-ordering chaos fault scrambles
// cursors, barriers and publisher sequence counters, and the
// delivery-ordering probe (per-origin sequence monotonicity, causal
// coverage, cross-node agreement on delivery order) verifies convergence
// under reorder/dup/loss on every substrate. Steady-state cost on the
// pinned 16-subscriber fan-out (BenchmarkOrderedFanout, gated like the
// hot path): FIFO adds zero allocations per publication over best-effort
// (42 vs 42 allocs/op) and causal adds four (46), at identical p95
// delivery rounds. Best-effort deployments take none of these code paths
// and their hot-path series are bit-identical.
//
// # Chaos testing
//
// Simulation.Restart brings a crashed subscriber back with its stale
// state (an arbitrary initial configuration, Theorem 8's premise),
// Simulation.SetMessageFault installs a transport-layer fault filter
// (loss, duplication, reordering, partitions) on any substrate, and
// Simulation.CrashSupervisor / Simulation.RestartSupervisor fail and
// revive members of the supervisor plane. The full chaos machinery —
// declarative scenarios, seed-reproducible random generation, invariant
// probes (including ownership convergence), convergence-time measurement
// and a failure shrinker — lives in internal/chaos and is exposed as
// `srsim chaos`; see the README's "Chaos & self-stabilization testing"
// section.
//
// The packages under internal/ hold the building blocks (label algebra,
// the BuildSR subscriber and supervisor protocols, the Patricia trie, the
// static topology oracle and the baseline overlays used by the
// experiments); see DESIGN.md for the inventory and EXPERIMENTS.md for the
// reproduction of every quantitative claim in the paper.
package sspubsub
