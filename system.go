package sspubsub

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sspubsub/internal/cluster"
	"sspubsub/internal/core"
	"sspubsub/internal/hashdht"
	"sspubsub/internal/ordering"
	"sspubsub/internal/proto"
	"sspubsub/internal/runtime/concurrent"
	"sspubsub/internal/sim"
	"sspubsub/internal/supervisor"
)

// DeliveryMode selects the delivery discipline clients apply to
// publications before handing them to the application (the Mode constants
// below). The zero value is best-effort — the paper's semantics.
type DeliveryMode = ordering.Mode

// Delivery modes. ModeBestEffort (the default) delivers each publication
// exactly once per subscriber with no ordering promise. ModeFIFO delivers
// each publisher's publications in publish order, absorbing transport
// reordering in a bounded window; a gap that outlives the window is
// declared lost and the cursor advances, so corrupted or wrapped sequence
// state always converges. ModeCausal additionally holds a publication
// until the bounded causal-barrier summary it carries — the publisher's
// recently-observed publishers — is satisfied, with a hard cap on tracked
// publishers and deterministic eviction. Both ordered modes keep O(1)
// bounded state per subscriber and degrade to declared loss, never
// deadlock (see the README's "Delivery modes" section).
const (
	ModeBestEffort = ordering.BestEffort
	ModeFIFO       = ordering.FIFO
	ModeCausal     = ordering.Causal
)

// Options configure a live System.
type Options struct {
	// Interval is the protocol timeout interval (default 10ms). Smaller
	// intervals stabilize faster at higher background message cost.
	Interval time.Duration
	// Seed drives protocol coin flips (live runs are still subject to
	// goroutine scheduling).
	Seed int64
	// KeyLen is the publication key width m in bits (default 64).
	KeyLen uint8
	// EventBuffer is each subscription's delivery channel capacity
	// (default 256). When a consumer lags, the oldest buffered events are
	// dropped from the channel — the retained history (the newest
	// HistoryCap publications, or everything when HistoryCap is 0) remains
	// available via Subscription.History.
	EventBuffer int
	// HistoryCap bounds how many publications each subscriber retains per
	// topic: when the stored set exceeds the cap, the publications with
	// the smallest keys are evicted. 0 means unlimited — the paper's
	// monotone store, where every subscriber keeps every publication
	// forever. Unlimited retention is an unbounded memory leak under
	// sustained publishing (≈96 B + payload per publication per
	// subscriber), so long-running deployments should set a cap; eviction
	// is by key, a pure function of the stored set, so capped replicas
	// still converge to identical tries. With a cap, a publication evicted
	// and later relearned through anti-entropy is delivered again
	// (at-least-once); with 0 delivery stays exactly-once.
	HistoryCap int
	// DisableFlooding turns off PublishNew (deliveries then come only
	// through anti-entropy).
	DisableFlooding bool
	// DeliveryMode selects the delivery ordering discipline every client
	// applies (default ModeBestEffort). The supervisors record it as the
	// directory default for new topics, so warm replicas and failed-over
	// owners agree on the deployment's mode.
	DeliveryMode DeliveryMode
	// Supervisors is the number of supervisor nodes (default 1). With more
	// than one, topics are spread over the supervisors by consistent
	// hashing — the scalability extension of Section 1.3 — and the
	// supervisor plane is crash-tolerant: supervisors monitor each other,
	// a crashed supervisor's topics migrate to their hashdht successors,
	// and each successor rebuilds its topic databases from the live
	// subscribers (see CrashSupervisor / RestartSupervisor).
	Supervisors int
	// ReplicationFactor is how many hashdht successors each topic owner
	// streams its directory to (default 0). With a factor ≥ 1 a crashed
	// supervisor's topics fail over from the successor's warm replica —
	// the self-stabilizing anti-entropy keeps replicas convergent — and
	// the subscriber-driven Reregister rebuild becomes the fallback for
	// stale or absent replicas. Only meaningful with Supervisors > 1.
	ReplicationFactor int
	// Transport overrides the execution substrate the nodes run on. When
	// nil, a concurrent goroutine runtime (internal/runtime/concurrent)
	// with Interval and Seed is used. The System takes ownership and
	// closes it on Close.
	Transport sim.Transport
	// Attach, when true, creates no local supervisors: the system joins an
	// existing deployment whose supervisor (node 1) lives in another
	// process, reachable through Transport (typically a
	// nettransport.NewJoiner). Supervisor-side observability (Stable,
	// WaitStable, TopicSize) is unavailable; use WaitJoined.
	Attach bool
	// FirstClientID sets the first client node ID. Attached systems must
	// set it to the base of the ID block their transport was granted so
	// IDs are unique across processes. Default: after the supervisors.
	FirstClientID sim.NodeID
}

// System is a running supervised publish-subscribe system: one supervisor
// plus any number of clients, each a goroutine-backed protocol node.
type System struct {
	opts   Options
	tr     sim.Transport
	sups   map[sim.NodeID]*supervisor.Supervisor
	supIDs []sim.NodeID
	// ring is the live-supervisor view: crashed supervisors are removed and
	// restarted ones re-added, so topic routing always follows the current
	// owner (matching the supervisors' own plane view once their failure
	// detector agrees).
	ring *hashdht.Ring

	mu       sync.Mutex
	topics   map[string]sim.Topic
	names    map[sim.Topic]string
	topicSup map[sim.Topic]sim.NodeID
	supDown  map[sim.NodeID]bool
	clients  map[sim.NodeID]*Client
	byName   map[string]*Client
	nextID   sim.NodeID
	closed   bool
}

// SupervisorID is the supervisor's node ID in every System.
const supervisorID sim.NodeID = 1

// NewSystem starts a system with a supervisor and no clients.
func NewSystem(opts Options) *System {
	if opts.Interval == 0 {
		opts.Interval = 10 * time.Millisecond
	}
	if opts.KeyLen == 0 {
		opts.KeyLen = 64
	}
	if opts.EventBuffer == 0 {
		opts.EventBuffer = 256
	}
	if opts.Supervisors <= 0 {
		opts.Supervisors = 1
	}
	tr := opts.Transport
	if tr == nil {
		tr = concurrent.NewRuntime(concurrent.Options{Interval: opts.Interval, Seed: opts.Seed})
	}
	sups := make(map[sim.NodeID]*supervisor.Supervisor, opts.Supervisors)
	ring := hashdht.NewRing(64)
	supIDs := make([]sim.NodeID, 0, opts.Supervisors)
	for i := 0; i < opts.Supervisors; i++ {
		id := supervisorID + sim.NodeID(i)
		// Attached systems build the same topic→supervisor ring (the IDs
		// are deterministic, so every process routes a topic to the same
		// supervisor) but host no supervisor nodes themselves.
		ring.Add(id)
		supIDs = append(supIDs, id)
	}
	if !opts.Attach {
		for _, id := range supIDs {
			sup := supervisor.New(id, tr)
			if opts.Supervisors > 1 {
				sup.JoinPlane(supIDs)
				if opts.ReplicationFactor > 0 {
					sup.SetReplicationFactor(opts.ReplicationFactor)
				}
			}
			if opts.DeliveryMode != ModeBestEffort {
				sup.SetDefaultMode(opts.DeliveryMode)
			}
			tr.AddNode(id, sup)
			sups[id] = sup
		}
	}
	firstID := opts.FirstClientID
	if firstID == sim.None {
		firstID = supervisorID + sim.NodeID(opts.Supervisors)
	}
	return &System{
		opts:     opts,
		tr:       tr,
		sups:     sups,
		supIDs:   supIDs,
		ring:     ring,
		topics:   make(map[string]sim.Topic),
		names:    make(map[sim.Topic]string),
		topicSup: make(map[sim.Topic]sim.NodeID),
		supDown:  make(map[sim.NodeID]bool),
		clients:  make(map[sim.NodeID]*Client),
		byName:   make(map[string]*Client),
		nextID:   firstID,
	}
}

// Close stops every node goroutine. Subscription channels are closed.
func (s *System) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	clients := make([]*Client, 0, len(s.clients))
	for _, c := range s.clients {
		clients = append(clients, c)
	}
	s.mu.Unlock()
	s.tr.Close()
	for _, c := range clients {
		c.closeSubs()
	}
}

// topicIDFor derives the wire identity of a topic name. Every process of
// a networked deployment must agree on it without coordination (frames
// carry the ID, not the name), so it is a hash of the name — never an
// allocation counter, which would depend on per-process first-use order.
func topicIDFor(name string) sim.Topic {
	h := fnv.New32a()
	h.Write([]byte(name))
	t := sim.Topic(h.Sum32() & 0x7fffffff)
	if t == 0 {
		return 1
	}
	return t
}

// topicID resolves (and caches) the stable ID of a topic name.
func (s *System) topicID(name string) sim.Topic {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.topics[name]; ok {
		return t
	}
	t := topicIDFor(name)
	if prev, taken := s.names[t]; taken && prev != name {
		// A 32-bit collision between live topic names (≈1 in 4 billion per
		// pair). Conflating two topics would corrupt both rings; refuse.
		panic(fmt.Sprintf("sspubsub: topic ID collision between %q and %q", prev, name))
	}
	s.topics[name] = t
	s.names[t] = name
	// Placement hashes the wire ID (hashdht.TopicKey), never the name:
	// it is the identity the supervisors' own plane shards by, so client
	// routing and supervisor ownership agree by construction.
	if owner, ok := s.ring.OwnerTopic(t); ok {
		s.topicSup[t] = owner
	}
	return t
}

// SupervisorCount returns the number of supervisors the system was
// configured with.
func (s *System) SupervisorCount() int { return len(s.supIDs) }

// CrashSupervisor fails supervisor i (0-based, of Options.Supervisors)
// without warning. Its topics are orphaned until the surviving
// supervisors' failure detector migrates them to their hashdht successors,
// which rebuild the topic databases from the live subscribers; client
// routing follows immediately. The supervisor's state is retained so
// RestartSupervisor can bring it back (with that stale state).
func (s *System) CrashSupervisor(i int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.Attach {
		return fmt.Errorf("sspubsub: attached systems host no supervisors")
	}
	if i < 0 || i >= len(s.supIDs) {
		return fmt.Errorf("sspubsub: supervisor index %d out of range [0,%d)", i, len(s.supIDs))
	}
	id := s.supIDs[i]
	if s.supDown[id] {
		return fmt.Errorf("sspubsub: supervisor %d already crashed", i)
	}
	live := 0
	for _, sid := range s.supIDs {
		if !s.supDown[sid] {
			live++
		}
	}
	if live <= 1 {
		return fmt.Errorf("sspubsub: refusing to crash the last live supervisor")
	}
	s.supDown[id] = true
	s.ring.Remove(id)
	s.reroute()
	s.tr.Crash(id)
	return nil
}

// RestartSupervisor brings a crashed supervisor back with the stale state
// it crashed with — an arbitrary initial plane state the self-stabilizing
// ownership machinery repairs (the restarted supervisor reclaims its
// topics at a fresh ownership epoch).
func (s *System) RestartSupervisor(i int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.Attach {
		return fmt.Errorf("sspubsub: attached systems host no supervisors")
	}
	if i < 0 || i >= len(s.supIDs) {
		return fmt.Errorf("sspubsub: supervisor index %d out of range [0,%d)", i, len(s.supIDs))
	}
	id := s.supIDs[i]
	if !s.supDown[id] {
		return fmt.Errorf("sspubsub: supervisor %d is not crashed", i)
	}
	delete(s.supDown, id)
	s.ring.Add(id)
	s.reroute()
	s.tr.AddNode(id, s.sups[id])
	return nil
}

// reroute recomputes every known topic's owner after a supervisor
// membership change. Lock held.
func (s *System) reroute() {
	for t := range s.names {
		if owner, ok := s.ring.OwnerTopic(t); ok {
			s.topicSup[t] = owner
		}
	}
}

// supervisorOf returns the supervisor node responsible for a topic.
func (s *System) supervisorOf(t sim.Topic) sim.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.topicSup[t]; ok {
		return id
	}
	return supervisorID
}

// supFor returns the supervisor instance responsible for a topic.
func (s *System) supFor(t sim.Topic) *supervisor.Supervisor {
	id := s.supervisorOf(t)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sups[id]
}

// TopicName returns the name registered for a topic ID.
func (s *System) topicName(t sim.Topic) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.names[t]
}

// NewClient creates and starts a client node. Names must be unique.
func (s *System) NewClient(name string) (*Client, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("sspubsub: system closed")
	}
	if _, dup := s.byName[name]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("sspubsub: duplicate client name %q", name)
	}
	id := s.nextID
	s.nextID++
	c := &Client{sys: s, name: name, id: id, subs: make(map[sim.Topic]*Subscription)}
	c.cc = core.NewClient(id, supervisorID, core.Options{
		KeyLen:          s.opts.KeyLen,
		OnDeliver:       c.deliver,
		DisableFlooding: s.opts.DisableFlooding,
		DeliveryMode:    s.opts.DeliveryMode,
		SupervisorFor:   s.supervisorOf,
		Supervisors:     s.supIDs,
		HistoryCap:      s.opts.HistoryCap,
	})
	s.clients[id] = c
	s.byName[name] = c
	s.mu.Unlock()
	s.tr.AddNode(id, c.cc)
	return c, nil
}

// MustClient is NewClient that panics on error (examples and tests).
func (s *System) MustClient(name string) *Client {
	c, err := s.NewClient(name)
	if err != nil {
		panic(err)
	}
	return c
}

// clientName resolves a node ID to its client name ("?" if unknown).
func (s *System) clientName(id sim.NodeID) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.clients[id]; ok {
		return c.name
	}
	if _, ok := s.sups[id]; ok {
		return "supervisor"
	}
	return "?"
}

// Members returns the names of the clients currently subscribed to topic.
func (s *System) Members(topic string) []string {
	t := s.topicID(topic)
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for _, c := range s.clients {
		if c.cc.Joined(t) {
			out = append(out, c.name)
		}
	}
	sort.Strings(out)
	return out
}

// Stable reports whether the topic's overlay is currently in its
// legitimate state (the supervisor database matches the members and every
// member's explicit state equals the unique legitimate skip ring).
func (s *System) Stable(topic string) bool { return s.explain(topic) == "" }

// explain returns the first legitimacy violation, or "".
func (s *System) explain(topic string) string {
	t := s.topicID(topic)
	s.mu.Lock()
	var members []*Client
	for _, c := range s.clients {
		if c.cc.Joined(t) {
			members = append(members, c)
		}
	}
	s.mu.Unlock()
	states := make(map[sim.NodeID]core.State, len(members))
	for _, c := range members {
		st, ok := c.cc.StateOf(t)
		if !ok {
			return fmt.Sprintf("member %s has no instance", c.name)
		}
		states[c.id] = st
	}
	sup := s.supFor(t)
	if sup == nil {
		return "supervisor is not local to this process (attached system)"
	}
	if sup.Corrupted(t) {
		return "supervisor database corrupted"
	}
	return cluster.CheckLegitimacy(sup.Snapshot(t), states)
}

// WaitStable polls until the topic overlay is legitimate with exactly n
// members, or the timeout expires.
func (s *System) WaitStable(topic string, n int, timeout time.Duration) bool {
	t := s.topicID(topic)
	deadline := time.Now().Add(timeout)
	sup := s.supFor(t)
	if sup == nil {
		return false // attached system: the supervisor is remote
	}
	for time.Now().Before(deadline) {
		if sup.N(t) == n && len(s.Members(topic)) == n && s.Stable(topic) {
			return true
		}
		time.Sleep(s.opts.Interval)
	}
	return false
}

// TopicSize returns the member count recorded by the topic's supervisor —
// across all processes of a networked deployment, since remote
// subscribers register with the same supervisor. It returns -1 on
// attached systems, where the supervisor is remote.
func (s *System) TopicSize(topic string) int {
	t := s.topicID(topic)
	sup := s.supFor(t)
	if sup == nil {
		return -1
	}
	return sup.N(t)
}

// WaitJoined polls until n of this process's clients hold a live,
// labelled instance of the topic, or the timeout expires. Unlike
// WaitStable it needs no local supervisor, so it is the join barrier for
// attached (multi-process) systems: a client only obtains a label once
// the remote supervisor has integrated it.
func (s *System) WaitJoined(topic string, n int, timeout time.Duration) bool {
	t := s.topicID(topic)
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		joined := 0
		s.mu.Lock()
		for _, c := range s.clients {
			if st, ok := c.cc.StateOf(t); ok && !st.Label.IsBottom() {
				joined++
			}
		}
		s.mu.Unlock()
		if joined >= n {
			return true
		}
		time.Sleep(s.opts.Interval)
	}
	return false
}

// Publication is one published item as seen by applications.
type Publication struct {
	Topic   string
	Origin  string // publishing client's name
	Payload string
}

// Client is one application endpoint: a physical node that can subscribe
// to topics and publish on them.
type Client struct {
	sys  *System
	name string
	id   sim.NodeID
	cc   *core.Client

	mu   sync.Mutex
	subs map[sim.Topic]*Subscription
}

// Name returns the client's name.
func (c *Client) Name() string { return c.name }

// Subscribe joins a topic and returns the subscription handle. Subscribing
// twice to the same topic returns the existing subscription.
func (c *Client) Subscribe(topic string) *Subscription {
	t := c.sys.topicID(topic)
	c.mu.Lock()
	if sub, ok := c.subs[t]; ok {
		c.mu.Unlock()
		return sub
	}
	sub := &Subscription{
		client: c,
		topic:  topic,
		tid:    t,
		events: make(chan Publication, c.sys.opts.EventBuffer),
	}
	c.subs[t] = sub
	c.mu.Unlock()
	c.sys.tr.Send(sim.Message{To: c.id, From: c.id, Topic: t, Body: core.JoinTopic{}})
	return sub
}

// Publish publishes a payload on a topic the client subscribes to. It
// returns an error if the client never subscribed (in this system, as in
// the paper, publishers are subscribers of the topic's skip ring).
func (c *Client) Publish(topic, payload string) error {
	t := c.sys.topicID(topic)
	c.mu.Lock()
	_, subscribed := c.subs[t]
	c.mu.Unlock()
	if !subscribed {
		return fmt.Errorf("sspubsub: %s is not subscribed to %q", c.name, topic)
	}
	c.sys.tr.Send(sim.Message{To: c.id, From: c.id, Topic: t, Body: core.PublishCmd{Payload: payload}})
	return nil
}

// History returns the publications currently retained for the topic,
// oldest key first (the Patricia-trie contents, Section 4.2). With
// Options.HistoryCap set this is the newest HistoryCap publications by
// key; with 0 it is everything ever known.
func (c *Client) History(topic string) []Publication {
	t := c.sys.topicID(topic)
	pubs := c.cc.Publications(t)
	out := make([]Publication, len(pubs))
	for i, p := range pubs {
		out[i] = Publication{Topic: topic, Origin: c.sys.clientName(p.Origin), Payload: p.Payload}
	}
	return out
}

// Degree returns the client's current overlay degree for a topic.
func (c *Client) Degree(topic string) int {
	return c.cc.Degree(c.sys.topicID(topic))
}

// Label returns the client's current overlay label for a topic (a bit
// string such as "011", or "⊥" before the supervisor assigns one).
func (c *Client) Label(topic string) string {
	st, ok := c.cc.StateOf(c.sys.topicID(topic))
	if !ok {
		return "⊥"
	}
	return st.Label.String()
}

// deliver routes one protocol delivery to the right subscription channel.
// It runs on the client's node goroutine and must not call back into cc.
func (c *Client) deliver(t sim.Topic, p proto.Publication) {
	c.mu.Lock()
	sub := c.subs[t]
	c.mu.Unlock()
	if sub == nil {
		return
	}
	sub.push(Publication{
		Topic:   c.sys.topicName(t),
		Origin:  c.sys.clientName(p.Origin),
		Payload: p.Payload,
	})
}

func (c *Client) closeSubs() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, sub := range c.subs {
		sub.close()
	}
}

// Subscription is a client's handle on one topic.
type Subscription struct {
	client *Client
	topic  string
	tid    sim.Topic
	events chan Publication

	dropped atomic.Int64

	mu     sync.Mutex
	closed bool
}

// Topic returns the topic name.
func (s *Subscription) Topic() string { return s.topic }

// Events returns the delivery channel. Every publication that becomes
// known to this subscriber (via flooding or anti-entropy) is sent exactly
// once; when the buffer overflows the oldest entries are dropped — each
// drop is counted (Dropped) and the retained set stays available via
// History.
func (s *Subscription) Events() <-chan Publication { return s.events }

// Dropped returns how many buffered events have been discarded because
// the consumer lagged behind the delivery rate. A growing value means the
// reader of Events is too slow for its EventBuffer; the events themselves
// are not lost to the system — History still has them (up to the
// configured HistoryCap).
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// History returns all publications currently known for the topic.
func (s *Subscription) History() []Publication { return s.client.History(s.topic) }

// Unsubscribe leaves the topic: the supervisor excises this node from the
// skip ring (Section 4.1) and the delivery channel is closed.
func (s *Subscription) Unsubscribe() {
	c := s.client
	c.sys.tr.Send(sim.Message{To: c.id, From: c.id, Topic: s.tid, Body: core.LeaveTopic{}})
	c.mu.Lock()
	delete(c.subs, s.tid)
	c.mu.Unlock()
	s.close()
}

// push delivers one event, dropping the oldest buffered entry when the
// consumer lags. push and close share the mutex, so a send can never race
// a channel close.
func (s *Subscription) push(pub Publication) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	for {
		select {
		case s.events <- pub:
			return
		default:
			select {
			case <-s.events:
				s.dropped.Add(1)
			default:
			}
		}
	}
}

func (s *Subscription) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.events)
	}
}
