module sspubsub

go 1.22
