// Quickstart: start a live system, subscribe three clients to a topic,
// publish, and watch deliveries arrive — the minimal end-to-end use of the
// public API.
package main

import (
	"fmt"
	"log"
	"time"

	"sspubsub"
)

func main() {
	// One supervisor, goroutine-per-node protocol, 5ms timeout interval.
	sys := sspubsub.NewSystem(sspubsub.Options{Interval: 5 * time.Millisecond, Seed: 1})
	defer sys.Close()

	alice := sys.MustClient("alice")
	bob := sys.MustClient("bob")
	carol := sys.MustClient("carol")

	// Everyone subscribes to "golang". The supervisor assigns skip-ring
	// labels and the overlay self-organizes.
	subA := alice.Subscribe("golang")
	subB := bob.Subscribe("golang")
	subC := carol.Subscribe("golang")

	if !sys.WaitStable("golang", 3, 10*time.Second) {
		log.Fatal("overlay did not stabilize")
	}
	fmt.Println("overlay stable; labels:")
	for _, c := range []*sspubsub.Client{alice, bob, carol} {
		fmt.Printf("  %-6s label=%-4s degree=%d\n", c.Name(), c.Label("golang"), c.Degree("golang"))
	}

	// Publish: flooding delivers along ring+shortcut edges in O(log n) hops.
	if err := alice.Publish("golang", "generics are here"); err != nil {
		log.Fatal(err)
	}
	for _, pair := range []struct {
		name string
		sub  *sspubsub.Subscription
	}{{"alice", subA}, {"bob", subB}, {"carol", subC}} {
		select {
		case p := <-pair.sub.Events():
			fmt.Printf("  %-6s received %q from %s\n", pair.name, p.Payload, p.Origin)
		case <-time.After(5 * time.Second):
			log.Fatalf("%s never received the publication", pair.name)
		}
	}

	// A late joiner gets the full history through the Patricia-trie
	// anti-entropy protocol — no republish needed.
	dave := sys.MustClient("dave")
	subD := dave.Subscribe("golang")
	select {
	case p := <-subD.Events():
		fmt.Printf("  dave   received %q via anti-entropy (late join)\n", p.Payload)
	case <-time.After(10 * time.Second):
		log.Fatal("late joiner never synchronized")
	}
	fmt.Println("done")
}
