// Chatgroups: a group-communication service built on topics (the paper
// cites group communication as a key application of topic-based
// publish-subscribe). Each room is a topic; members chat; a member who was
// offline during part of the conversation reconstructs the complete,
// identical history from the Patricia tries — and members of a room never
// learn about other rooms.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"sspubsub"
)

func main() {
	sys := sspubsub.NewSystem(sspubsub.Options{Interval: 5 * time.Millisecond, Seed: 3})
	defer sys.Close()

	// Two rooms with overlapping membership.
	users := map[string]*sspubsub.Client{}
	for _, u := range []string{"ann", "ben", "cyn", "dan", "eva"} {
		users[u] = sys.MustClient(u)
	}
	rooms := map[string][]string{
		"room-go":    {"ann", "ben", "cyn"},
		"room-chess": {"cyn", "dan", "eva"},
	}
	for room, members := range rooms {
		for _, u := range members {
			users[u].Subscribe(room)
		}
		if !sys.WaitStable(room, len(members), 10*time.Second) {
			log.Fatalf("%s did not stabilize", room)
		}
	}

	say := func(u, room, msg string) {
		if err := users[u].Publish(room, u+": "+msg); err != nil {
			log.Fatal(err)
		}
	}
	say("ann", "room-go", "anyone tried the new iterator proposal?")
	say("ben", "room-go", "yes — range over funcs feels natural")
	say("dan", "room-chess", "Nf3 or d4?")
	say("cyn", "room-go", "agreed")
	say("eva", "room-chess", "d4, always")

	// Wait until the room histories settle (flooding is O(log n) hops, so
	// this is quick), then print each member's view.
	deadline := time.Now().Add(10 * time.Second)
	for room, members := range rooms {
		want := countFor(room)
		for {
			done := true
			for _, u := range members {
				if len(users[u].History(room)) < want {
					done = false
				}
			}
			if done || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	for room, members := range rooms {
		fmt.Printf("\n%s:\n", room)
		var reference string
		for _, u := range members {
			hist := users[u].History(room)
			lines := make([]string, len(hist))
			for i, p := range hist {
				lines[i] = p.Payload
			}
			view := strings.Join(lines, " | ")
			if reference == "" {
				reference = view
				fmt.Printf("  history (%d messages): %s\n", len(hist), view)
			} else if view != reference {
				log.Fatalf("member %s sees a different history: %s", u, view)
			}
		}
		fmt.Printf("  all %d members share an identical history\n", len(members))
	}

	// Late joiner: frank joins room-go after the conversation and gets the
	// full transcript via anti-entropy.
	frank := sys.MustClient("frank")
	frank.Subscribe("room-go")
	for time.Now().Before(deadline) {
		if len(frank.History("room-go")) == countFor("room-go") {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := len(frank.History("room-go")); got != countFor("room-go") {
		log.Fatalf("frank reconstructed %d/%d messages", got, countFor("room-go"))
	}
	fmt.Printf("\nfrank joined late and reconstructed all %d room-go messages\n", countFor("room-go"))

	// Isolation: dan is not in room-go and must know nothing about it.
	if len(users["dan"].History("room-go")) != 0 {
		log.Fatal("room isolation violated")
	}
	fmt.Println("room isolation holds: non-members know nothing")
}

func countFor(room string) int {
	if room == "room-go" {
		return 3
	}
	return 2
}
