// Marketplace: an online market where clients publish service requests on
// category topics and providers subscribe to the categories they serve
// (the paper's "online market places (where clients publish service
// requests)" application). Demonstrates many topics on one supervisor —
// the supervisor's message overhead is linear in the number of topics,
// never in the number of subscribers or requests.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"sspubsub"
)

var categories = []string{"translation", "compute", "storage", "design"}

func main() {
	sys := sspubsub.NewSystem(sspubsub.Options{Interval: 5 * time.Millisecond, Seed: 4})
	defer sys.Close()

	// Providers: each serves two adjacent categories.
	var matched atomic.Int64
	var wg sync.WaitGroup
	expected := map[string]int{}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("provider-%d", i)
		p := sys.MustClient(name)
		for j := 0; j < 2; j++ {
			cat := categories[(i+j)%len(categories)]
			sub := p.Subscribe(cat)
			expected[cat]++
			wg.Add(1)
			go func(name, cat string, sub *sspubsub.Subscription) {
				defer wg.Done()
				for {
					select {
					case req, ok := <-sub.Events():
						if !ok {
							return
						}
						matched.Add(1)
						fmt.Printf("  %-11s bids on %-12s %q (from %s)\n", name, cat, req.Payload, req.Origin)
					case <-time.After(3 * time.Second):
						return
					}
				}
			}(name, cat, sub)
		}
	}
	for _, cat := range categories {
		if !sys.WaitStable(cat, expected[cat], 20*time.Second) {
			log.Fatalf("category %s did not stabilize", cat)
		}
	}
	fmt.Println("marketplace open; categories stable")

	// Buyers post requests. Buyers are subscribers of the category ring
	// too (publishers participate in the overlay), which also means they
	// see competing requests — useful for price discovery.
	buyers := []*sspubsub.Client{sys.MustClient("buyer-a"), sys.MustClient("buyer-b")}
	requests := []struct {
		buyer int
		cat   string
		text  string
	}{
		{0, "translation", "EN→DE, 20 pages"},
		{1, "compute", "1000 core-hours"},
		{0, "storage", "2 TB, 30 days"},
		{1, "design", "logo refresh"},
		{0, "compute", "GPU fine-tune, 8h"},
	}
	joined := map[string]map[int]bool{}
	for _, r := range requests {
		if joined[r.cat] == nil {
			joined[r.cat] = map[int]bool{}
		}
		if !joined[r.cat][r.buyer] {
			buyers[r.buyer].Subscribe(r.cat)
			joined[r.cat][r.buyer] = true
			expected[r.cat]++
		}
	}
	// Let the joins settle before publishing.
	for _, cat := range categories {
		if !sys.WaitStable(cat, expected[cat], 20*time.Second) {
			log.Fatalf("category %s did not re-stabilize after buyers joined", cat)
		}
	}
	for _, r := range requests {
		if err := buyers[r.buyer].Publish(r.cat, r.text); err != nil {
			log.Fatal(err)
		}
	}

	wg.Wait()
	// Each request reaches every provider subscribed to its category
	// (4 providers per category, and the other buyer when subscribed).
	fmt.Printf("matched %d provider notifications across %d requests\n", matched.Load(), len(requests))
	if matched.Load() == 0 {
		log.Fatal("no provider ever saw a request")
	}

	// The archive: a new provider entering "compute" late still sees all
	// open compute requests (2 of them) without any re-broadcast.
	late := sys.MustClient("provider-late")
	late.Subscribe("compute")
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && len(late.History("compute")) < 2 {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("late provider recovered %d open compute requests from the archive\n",
		len(late.History("compute")))
	if len(late.History("compute")) < 2 {
		log.Fatal("late provider failed to recover the request archive")
	}
}
