// Faulttolerance: the self-stabilization demo, on the deterministic
// simulation API. Builds a 32-node topic ring, then throws the paper's
// whole catalogue of faults at it — corrupted subscriber states, a
// corrupted supervisor database, garbage in the channels, a partition into
// unrecorded components, and unannounced crashes — verifying after each
// that the system returns to the exact legitimate skip ring and that no
// publication is ever lost.
package main

import (
	"fmt"
	"log"

	"sspubsub"
)

const topic sspubsub.Topic = 1

func main() {
	sim := sspubsub.NewSimulation(sspubsub.SimOptions{Seed: 2026})
	ids := sim.AddSubscribers(32)
	sim.JoinAll(topic)

	report := func(phase string, rounds int, ok bool) {
		if !ok {
			log.Fatalf("%s: NOT converged: %s", phase, sim.Explain(topic))
		}
		fmt.Printf("%-28s re-converged in %4d rounds\n", phase, rounds)
	}

	rounds, ok := sim.RunUntilConverged(topic, 32, 5000)
	report("initial join burst", rounds, ok)

	// Seed some publications; they must survive every fault below.
	for i := 0; i < 5; i++ {
		sim.Publish(ids[i], topic, fmt.Sprintf("pub-%d", i))
	}
	sim.RunRounds(10)
	if !sim.TriesEqual(topic) {
		log.Fatal("publications did not disseminate")
	}
	fmt.Println("5 publications disseminated to all 32 subscribers")

	sim.CorruptSubscriberStates(topic)
	rounds, ok = sim.RunUntilConverged(topic, 32, 20000)
	report("corrupted all node states", rounds, ok)

	sim.CorruptSupervisorDB(topic)
	rounds, ok = sim.RunUntilConverged(topic, 32, 20000)
	report("corrupted supervisor DB", rounds, ok)

	sim.InjectGarbageMessages(topic, 200)
	rounds, ok = sim.RunUntilConverged(topic, 32, 20000)
	report("200 garbage messages", rounds, ok)

	sim.PartitionStates(topic, 4)
	rounds, ok = sim.RunUntilConverged(topic, 32, 20000)
	report("partitioned into 4 pieces", rounds, ok)

	// Crash a quarter of the ring without warning (Section 3.3): the
	// supervisor's failure detector culls them; survivors re-form SR(24).
	members := sim.Members(topic)
	for i := 0; i < 8; i++ {
		sim.Crash(members[i*len(members)/8])
	}
	rounds, ok = sim.RunUntilConverged(topic, 24, 20000)
	report("crashed 8 of 32 nodes", rounds, ok)

	// Everything above preserved the full publication history at every
	// surviving subscriber.
	for _, id := range sim.Members(topic) {
		if got := len(sim.Publications(id, topic)); got != 5 {
			log.Fatalf("node %d lost publications: has %d of 5", id, got)
		}
	}
	if !sim.TriesEqual(topic) {
		log.Fatal("tries diverged")
	}
	fmt.Println("all survivors still hold the complete 5-publication history")
	fmt.Printf("total messages delivered: %d\n", sim.MessagesDelivered())
}
