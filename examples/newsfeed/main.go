// Newsfeed: a targeted news service — the paper's motivating application.
// Many readers subscribe to a few broad topics; publishers post stories;
// readers only receive what matches their interests; late subscribers
// catch up on the full archive of a topic.
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"sspubsub"
)

var topics = []string{"world", "tech", "sports"}

func main() {
	sys := sspubsub.NewSystem(sspubsub.Options{Interval: 5 * time.Millisecond, Seed: 2})
	defer sys.Close()

	// Three newsrooms, each publishing on its own desk.
	desks := map[string]*sspubsub.Client{}
	for _, tp := range topics {
		desk := sys.MustClient("desk-" + tp)
		desk.Subscribe(tp)
		desks[tp] = desk
	}

	// Twelve readers with mixed interests (reader i subscribes to the
	// topics whose index divides i).
	type readerSub struct {
		name string
		sub  *sspubsub.Subscription
	}
	var subs []readerSub
	received := map[string][]string{}
	interests := map[string]map[string]bool{}
	var mu sync.Mutex
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("reader-%02d", i)
		r := sys.MustClient(name)
		interests[name] = map[string]bool{}
		for j, tp := range topics {
			if i%(j+1) == 0 {
				subs = append(subs, readerSub{name, r.Subscribe(tp)})
				interests[name][tp] = true
			}
		}
	}
	for _, tp := range topics {
		if !sys.WaitStable(tp, len(sys.Members(tp)), 15*time.Second) {
			log.Fatalf("topic %s did not stabilize", tp)
		}
		fmt.Printf("topic %-6s: %2d subscribers, overlay stable\n", tp, len(sys.Members(tp)))
	}

	// Fan-in all deliveries.
	var wg sync.WaitGroup
	var misdelivered int
	for _, rs := range subs {
		wg.Add(1)
		go func(rs readerSub) {
			defer wg.Done()
			for {
				select {
				case p, ok := <-rs.sub.Events():
					if !ok {
						return
					}
					mu.Lock()
					received[rs.name] = append(received[rs.name], p.Topic+": "+p.Payload)
					if !interests[rs.name][p.Topic] {
						misdelivered++
					}
					mu.Unlock()
				case <-time.After(3 * time.Second):
					return
				}
			}
		}(rs)
	}

	stories := map[string][]string{
		"world":  {"summit concludes", "markets steady"},
		"tech":   {"new language release", "chip shortage easing"},
		"sports": {"cup final tonight"},
	}
	for tp, items := range stories {
		for _, s := range items {
			if err := desks[tp].Publish(tp, s); err != nil {
				log.Fatal(err)
			}
		}
	}
	wg.Wait()

	names := make([]string, 0, len(received))
	for n := range received {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sort.Strings(received[n])
		fmt.Printf("%-10s got %d stories: %v\n", n, len(received[n]), received[n])
	}

	if misdelivered > 0 {
		log.Fatalf("targeting violated: %d stories delivered outside their topic", misdelivered)
	}
	fmt.Println("newsfeed done — every reader received exactly its topics' stories")
}
