package sspubsub

import (
	"testing"
	"time"
)

func newTestSystem(t *testing.T) *System {
	t.Helper()
	sys := NewSystem(Options{Interval: 2 * time.Millisecond, Seed: 42})
	t.Cleanup(sys.Close)
	return sys
}

func TestSystemSubscribePublishDeliver(t *testing.T) {
	sys := newTestSystem(t)
	alice := sys.MustClient("alice")
	bob := sys.MustClient("bob")
	subA := alice.Subscribe("news")
	subB := bob.Subscribe("news")
	if !sys.WaitStable("news", 2, 5*time.Second) {
		t.Fatalf("overlay never stabilized: %s", sys.explain("news"))
	}
	if err := alice.Publish("news", "hello"); err != nil {
		t.Fatal(err)
	}
	want := func(sub *Subscription, who string) {
		select {
		case p := <-sub.Events():
			if p.Payload != "hello" || p.Origin != "alice" || p.Topic != "news" {
				t.Errorf("%s received %+v", who, p)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s never received the publication", who)
		}
	}
	want(subA, "alice")
	want(subB, "bob")
}

func TestSystemLateJoinerGetsHistory(t *testing.T) {
	sys := newTestSystem(t)
	alice := sys.MustClient("alice")
	alice.Subscribe("chat")
	if !sys.WaitStable("chat", 1, 5*time.Second) {
		t.Fatal("no stability with one member")
	}
	for _, m := range []string{"one", "two", "three"} {
		if err := alice.Publish("chat", m); err != nil {
			t.Fatal(err)
		}
	}
	// Late joiner must obtain the full history through anti-entropy.
	carol := sys.MustClient("carol")
	sub := carol.Subscribe("chat")
	got := map[string]bool{}
	deadline := time.After(10 * time.Second)
	for len(got) < 3 {
		select {
		case p := <-sub.Events():
			got[p.Payload] = true
		case <-deadline:
			t.Fatalf("late joiner got %v, want all three", got)
		}
	}
	if h := sub.History(); len(h) != 3 {
		t.Errorf("history has %d entries", len(h))
	}
}

func TestSystemUnsubscribe(t *testing.T) {
	sys := newTestSystem(t)
	a := sys.MustClient("a")
	b := sys.MustClient("b")
	c := sys.MustClient("c")
	a.Subscribe("t")
	subB := b.Subscribe("t")
	c.Subscribe("t")
	if !sys.WaitStable("t", 3, 5*time.Second) {
		t.Fatalf("setup: %s", sys.explain("t"))
	}
	subB.Unsubscribe()
	if !sys.WaitStable("t", 2, 10*time.Second) {
		t.Fatalf("no re-stabilization after unsubscribe: %s", sys.explain("t"))
	}
	members := sys.Members("t")
	if len(members) != 2 {
		t.Errorf("members = %v", members)
	}
	// The closed channel signals the unsubscribe locally.
	select {
	case _, open := <-subB.Events():
		if open {
			// Drain any buffered pre-unsubscribe deliveries.
		}
	case <-time.After(time.Second):
	}
}

func TestSystemPublishRequiresSubscription(t *testing.T) {
	sys := newTestSystem(t)
	a := sys.MustClient("a")
	if err := a.Publish("nope", "x"); err == nil {
		t.Fatal("publish without subscription must fail")
	}
}

// TestSystemFIFODelivery: a live System configured with ModeFIFO presents
// one publisher's payloads on every subscription channel in publish order.
func TestSystemFIFODelivery(t *testing.T) {
	sys := NewSystem(Options{Interval: 2 * time.Millisecond, Seed: 42, DeliveryMode: ModeFIFO})
	t.Cleanup(sys.Close)
	alice := sys.MustClient("alice")
	bob := sys.MustClient("bob")
	alice.Subscribe("feed")
	sub := bob.Subscribe("feed")
	if !sys.WaitStable("feed", 2, 5*time.Second) {
		t.Fatalf("overlay never stabilized: %s", sys.explain("feed"))
	}
	want := []string{"first", "second", "third"}
	for _, payload := range want {
		if err := alice.Publish("feed", payload); err != nil {
			t.Fatal(err)
		}
		time.Sleep(4 * time.Millisecond) // order the publish-command self-sends
	}
	for _, payload := range want {
		select {
		case p := <-sub.Events():
			if p.Payload != payload {
				t.Fatalf("bob received %q, want %q", p.Payload, payload)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("bob never received %q", payload)
		}
	}
}

func TestSystemDuplicateClientName(t *testing.T) {
	sys := newTestSystem(t)
	sys.MustClient("dup")
	if _, err := sys.NewClient("dup"); err == nil {
		t.Fatal("duplicate names must be rejected")
	}
}

func TestSystemLabelsAndDegrees(t *testing.T) {
	sys := newTestSystem(t)
	clients := make([]*Client, 4)
	for i := range clients {
		clients[i] = sys.MustClient(string(rune('a' + i)))
		clients[i].Subscribe("t")
	}
	if !sys.WaitStable("t", 4, 5*time.Second) {
		t.Fatalf("no stability: %s", sys.explain("t"))
	}
	labels := map[string]bool{}
	for _, c := range clients {
		labels[c.Label("t")] = true
		if c.Degree("t") == 0 {
			t.Errorf("client %s has degree 0", c.Name())
		}
	}
	for _, want := range []string{"0", "1", "01", "11"} {
		if !labels[want] {
			t.Errorf("label %s missing (have %v)", want, labels)
		}
	}
}

func TestSystemCloseIdempotent(t *testing.T) {
	sys := NewSystem(Options{Interval: time.Millisecond})
	c := sys.MustClient("x")
	c.Subscribe("t")
	sys.Close()
	sys.Close()
	if _, err := sys.NewClient("y"); err == nil {
		t.Fatal("NewClient after Close must fail")
	}
}

func TestSimulationFacade(t *testing.T) {
	s := NewSimulation(SimOptions{Seed: 9})
	ids := s.AddSubscribers(8)
	s.JoinAll(1)
	rounds, ok := s.RunUntilConverged(1, 8, 300)
	if !ok {
		t.Fatalf("no convergence: %s", s.Explain(1))
	}
	t.Logf("converged in %d rounds", rounds)
	s.Publish(ids[0], 1, "msg")
	s.RunRounds(5)
	if !s.TriesEqual(1) {
		t.Fatal("publication did not spread")
	}
	for _, id := range ids {
		if got := s.Publications(id, 1); len(got) != 1 || got[0] != "msg" {
			t.Fatalf("node %d publications = %v", id, got)
		}
		if s.Degree(id, 1) == 0 {
			t.Errorf("node %d degree 0", id)
		}
	}
	if s.MessagesDelivered() == 0 || s.SupervisorSent() == 0 {
		t.Error("message accounting empty")
	}
	// Determinism: same seed, same convergence time.
	s2 := NewSimulation(SimOptions{Seed: 9})
	s2.AddSubscribers(8)
	s2.JoinAll(1)
	rounds2, _ := s2.RunUntilConverged(1, 8, 300)
	if rounds2 != rounds {
		t.Errorf("nondeterministic: %d vs %d rounds", rounds, rounds2)
	}
}

func TestSimulationCorruptionRecovery(t *testing.T) {
	s := NewSimulation(SimOptions{Seed: 31})
	s.AddSubscribers(10)
	s.JoinAll(1)
	if _, ok := s.RunUntilConverged(1, 10, 300); !ok {
		t.Fatal("setup failed")
	}
	s.CorruptSubscriberStates(1)
	s.CorruptSupervisorDB(1)
	s.InjectGarbageMessages(1, 30)
	if _, ok := s.RunUntilConverged(1, 10, 3000); !ok {
		t.Fatalf("no recovery: %s", s.Explain(1))
	}
	s.Crash(s.Members(1)[0])
	if _, ok := s.RunUntilConverged(1, 9, 3000); !ok {
		t.Fatalf("no crash recovery: %s", s.Explain(1))
	}
}

func TestSystemMultiSupervisor(t *testing.T) {
	sys := NewSystem(Options{Interval: 2 * time.Millisecond, Seed: 77, Supervisors: 3})
	t.Cleanup(sys.Close)
	topics := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	clients := make([]*Client, 6)
	for i := range clients {
		clients[i] = sys.MustClient(string(rune('a' + i)))
	}
	// Every client joins every topic; each topic's ring is managed by its
	// consistent-hashing owner supervisor.
	for _, tp := range topics {
		for _, c := range clients {
			c.Subscribe(tp)
		}
	}
	owners := map[NodeID]bool{}
	for _, tp := range topics {
		if !sys.WaitStable(tp, len(clients), 10*time.Second) {
			t.Fatalf("topic %s never stabilized: %s", tp, sys.explain(tp))
		}
		owners[sys.supervisorOf(sys.topicID(tp))] = true
	}
	if len(owners) < 2 {
		t.Errorf("6 topics landed on %d supervisor(s); expected spread over ≥ 2 of 3", len(owners))
	}
	// Publications still flow normally on a sharded system.
	if err := clients[0].Publish("alpha", "hello"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(clients[5].History("alpha")) == 1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("publication never reached the last client")
}

// TestSubscriptionDroppedCounter forces event-buffer overflow with a tiny
// buffer and verifies the loss is counted instead of silent, while History
// keeps the full set.
func TestSubscriptionDroppedCounter(t *testing.T) {
	sys := NewSystem(Options{Interval: 2 * time.Millisecond, Seed: 7, EventBuffer: 2})
	t.Cleanup(sys.Close)
	pub := sys.MustClient("pub")
	lag := sys.MustClient("lag")
	_ = pub.Subscribe("hot")
	sub := lag.Subscribe("hot")
	if !sys.WaitStable("hot", 2, 5*time.Second) {
		t.Fatalf("overlay never stabilized: %s", sys.explain("hot"))
	}
	const total = 10
	for i := 0; i < total; i++ {
		if err := pub.Publish("hot", string(rune('a'+i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(sub.History()) < total && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := len(sub.History()); got != total {
		t.Fatalf("history has %d publications, want %d", got, total)
	}
	// Nobody consumed lag's channel (capacity 2): 8 of the 10 events must
	// have displaced older ones, each counted.
	if got := sub.Dropped(); got != total-2 {
		t.Errorf("Dropped() = %d, want %d", got, total-2)
	}
	consumed := 0
	for {
		select {
		case <-sub.Events():
			consumed++
			continue
		default:
		}
		break
	}
	if consumed != 2 {
		t.Errorf("consumed %d buffered events, want 2", consumed)
	}
}

// TestSystemAttachOptions pins the attach-mode API surface without a real
// second process: no local supervisors, client IDs from FirstClientID, and
// the supervisor-side observers degrade explicitly instead of panicking.
func TestSystemAttachOptions(t *testing.T) {
	sys := NewSystem(Options{Interval: 2 * time.Millisecond, Attach: true, FirstClientID: 5000})
	t.Cleanup(sys.Close)
	c := sys.MustClient("solo")
	if c.id != 5000 {
		t.Errorf("first client ID = %d, want 5000", c.id)
	}
	if sys.TopicSize("x") != -1 {
		t.Errorf("TopicSize on attached system = %d, want -1", sys.TopicSize("x"))
	}
	if sys.Stable("x") {
		t.Error("Stable must be false when the supervisor is remote")
	}
	if sys.WaitStable("x", 1, 10*time.Millisecond) {
		t.Error("WaitStable must fail fast when the supervisor is remote")
	}
	// With no transport to a real supervisor the client can never join;
	// WaitJoined must time out rather than hang or lie.
	if sys.WaitJoined("x", 1, 20*time.Millisecond) {
		t.Error("WaitJoined reported success without a supervisor")
	}
}

// TestTopicIDsProcessIndependent: topic IDs are the cross-process wire
// identity of a topic, so they must not depend on the order in which a
// process first touches the names (a per-process allocation counter would
// make two processes disagree about which ring a frame belongs to).
func TestTopicIDsProcessIndependent(t *testing.T) {
	a := newTestSystem(t)
	b := newTestSystem(t)
	a.topicID("alpha")
	a.topicID("beta")
	// Opposite first-use order in the "other process".
	b.topicID("beta")
	b.topicID("alpha")
	for _, name := range []string{"alpha", "beta"} {
		if got, want := b.topicID(name), a.topicID(name); got != want {
			t.Errorf("topic %q: ID %d in one process, %d in another", name, got, want)
		}
	}
	if a.topicID("alpha") == a.topicID("beta") {
		t.Error("distinct topics share an ID")
	}
}

// TestSystemSupervisorFailover drives the crash-tolerant supervisor plane
// through the public API: crash a topic's owner supervisor, verify the
// system re-stabilizes under the hashdht successor with subscriptions and
// delivery intact, then restart the old owner and verify it reclaims the
// topic.
func TestSystemSupervisorFailover(t *testing.T) {
	sys := NewSystem(Options{Interval: 2 * time.Millisecond, Seed: 99, Supervisors: 4})
	t.Cleanup(sys.Close)
	if got := sys.SupervisorCount(); got != 4 {
		t.Fatalf("SupervisorCount = %d", got)
	}

	clients := make([]*Client, 5)
	for i := range clients {
		clients[i] = sys.MustClient(string(rune('a' + i)))
		clients[i].Subscribe("orders")
	}
	if !sys.WaitStable("orders", len(clients), 20*time.Second) {
		t.Fatalf("never stabilized: %s", sys.explain("orders"))
	}

	owner := sys.supervisorOf(sys.topicID("orders"))
	ownerIdx := int(owner - supervisorID)
	if err := sys.CrashSupervisor(ownerIdx); err != nil {
		t.Fatal(err)
	}
	successor := sys.supervisorOf(sys.topicID("orders"))
	if successor == owner {
		t.Fatalf("routing still points at the crashed owner %d", owner)
	}

	// The successor rebuilds the database from the live overlay; the
	// system must return to a fully legitimate state with all members.
	if !sys.WaitStable("orders", len(clients), 20*time.Second) {
		t.Fatalf("no re-stabilization after owner crash: %s", sys.explain("orders"))
	}

	// Pre-crash subscriptions keep delivering.
	if err := clients[0].Publish("orders", "post-failover"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if len(clients[4].History("orders")) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("post-failover publication never delivered")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Restart: the original owner reclaims the topic at a fresh epoch.
	if err := sys.RestartSupervisor(ownerIdx); err != nil {
		t.Fatal(err)
	}
	if got := sys.supervisorOf(sys.topicID("orders")); got != owner {
		t.Fatalf("routing did not return to the restarted owner: %d", got)
	}
	if !sys.WaitStable("orders", len(clients), 20*time.Second) {
		t.Fatalf("no re-stabilization after owner restart: %s", sys.explain("orders"))
	}
}

// TestSystemCrashSupervisorValidation pins the public-API error surface.
func TestSystemCrashSupervisorValidation(t *testing.T) {
	sys := NewSystem(Options{Interval: 2 * time.Millisecond, Seed: 3, Supervisors: 2})
	t.Cleanup(sys.Close)
	if err := sys.CrashSupervisor(5); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := sys.RestartSupervisor(0); err == nil {
		t.Error("restart of a live supervisor accepted")
	}
	if err := sys.CrashSupervisor(0); err != nil {
		t.Fatal(err)
	}
	if err := sys.CrashSupervisor(0); err == nil {
		t.Error("double crash accepted")
	}
	if err := sys.CrashSupervisor(1); err == nil {
		t.Error("crashing the last live supervisor accepted")
	}
	if err := sys.RestartSupervisor(0); err != nil {
		t.Fatal(err)
	}
}
