package sspubsub

import (
	"sspubsub/internal/cluster"
	"sspubsub/internal/core"
	"sspubsub/internal/sim"
)

// SimOptions configure a deterministic Simulation.
type SimOptions struct {
	// Seed makes the entire run reproducible.
	Seed int64
	// KeyLen is the publication key width (default 64).
	KeyLen uint8
	// DisableFlooding / DisableAntiEntropy / DisableActionIV are the
	// ablation switches described in DESIGN.md.
	DisableFlooding    bool
	DisableAntiEntropy bool
	DisableActionIV    bool
}

// NodeID identifies a simulated subscriber node.
type NodeID = sim.NodeID

// Topic identifies a topic in a Simulation.
type Topic = sim.Topic

// Simulation runs the full protocol stack (supervisor, subscribers,
// publication engines) on a deterministic discrete-event scheduler with
// virtual time measured in timeout intervals. It exposes the research
// controls used by the paper-reproduction experiments: corrupted initial
// states, crashes, convergence detection against the exact legitimate
// topology, and message accounting.
type Simulation struct {
	c *cluster.Cluster
}

// NewSimulation creates an empty deterministic system (supervisor only).
func NewSimulation(opts SimOptions) *Simulation {
	return &Simulation{c: cluster.New(cluster.Options{
		Seed: opts.Seed,
		ClientOpts: core.Options{
			KeyLen:             opts.KeyLen,
			DisableFlooding:    opts.DisableFlooding,
			DisableAntiEntropy: opts.DisableAntiEntropy,
			DisableActionIV:    opts.DisableActionIV,
		},
	})}
}

// AddSubscribers creates n subscriber nodes and returns their IDs.
func (s *Simulation) AddSubscribers(n int) []NodeID { return s.c.AddClients(n) }

// Join subscribes a node to a topic.
func (s *Simulation) Join(id NodeID, t Topic) { s.c.Join(id, t) }

// JoinAll subscribes every node to the topic.
func (s *Simulation) JoinAll(t Topic) { s.c.JoinAll(t) }

// Leave starts an unsubscribe handshake.
func (s *Simulation) Leave(id NodeID, t Topic) { s.c.Leave(id, t) }

// Crash fails a node without warning (Section 3.3).
func (s *Simulation) Crash(id NodeID) { s.c.Crash(id) }

// Publish makes a node publish a payload.
func (s *Simulation) Publish(id NodeID, t Topic, payload string) { s.c.Publish(id, t, payload) }

// RunRounds advances virtual time by k timeout intervals.
func (s *Simulation) RunRounds(k int) { s.c.Sched.RunRounds(k) }

// RunUntilConverged advances until topic t is in its legitimate state with
// exactly n members, returning the rounds taken and success.
func (s *Simulation) RunUntilConverged(t Topic, n, maxRounds int) (int, bool) {
	return s.c.RunUntilConverged(t, n, maxRounds)
}

// Converged reports whether topic t is currently legitimate.
func (s *Simulation) Converged(t Topic) bool { return s.c.Converged(t) }

// Explain describes the first legitimacy violation, or returns "".
func (s *Simulation) Explain(t Topic) string { return s.c.Explain(t) }

// TriesEqual reports whether all members hold identical publication sets.
func (s *Simulation) TriesEqual(t Topic) bool { return s.c.TriesEqual(t) }

// Publications returns the publication payloads known to a node.
func (s *Simulation) Publications(id NodeID, t Topic) []string {
	cl, ok := s.c.Clients[id]
	if !ok {
		return nil
	}
	pubs := cl.Publications(t)
	out := make([]string, len(pubs))
	for i, p := range pubs {
		out[i] = p.Payload
	}
	return out
}

// Degree returns a node's current overlay degree.
func (s *Simulation) Degree(id NodeID, t Topic) int {
	cl, ok := s.c.Clients[id]
	if !ok {
		return 0
	}
	return cl.Degree(t)
}

// CorruptSubscriberStates overwrites all member states with garbage.
func (s *Simulation) CorruptSubscriberStates(t Topic) { s.c.CorruptSubscriberStates(t) }

// CorruptSupervisorDB injects the four database corruption cases.
func (s *Simulation) CorruptSupervisorDB(t Topic) { s.c.CorruptSupervisorDB(t) }

// InjectGarbageMessages seeds the channels with corrupted messages.
func (s *Simulation) InjectGarbageMessages(t Topic, count int) { s.c.InjectGarbageMessages(t, count) }

// PartitionStates splits the members into k self-consistent, unrecorded
// components (the hard initial state of Section 3.2.1).
func (s *Simulation) PartitionStates(t Topic, k int) { s.c.PartitionStates(t, k) }

// MessagesDelivered returns the total messages delivered so far.
func (s *Simulation) MessagesDelivered() int64 { return s.c.Sched.Delivered() }

// MessagesByType returns the count of sends for a protocol message type
// name, e.g. "proto.GetConfiguration".
func (s *Simulation) MessagesByType(name string) int64 { return s.c.Sched.CountByType(name) }

// SentBy returns the number of messages a node has sent.
func (s *Simulation) SentBy(id NodeID) int64 { return s.c.Sched.SentBy(id) }

// SupervisorSent returns the number of messages the supervisor has sent.
func (s *Simulation) SupervisorSent() int64 { return s.c.Sched.SentBy(cluster.SupervisorID) }

// ResetCounters zeroes the message accounting (measure steady states).
func (s *Simulation) ResetCounters() { s.c.Sched.ResetCounters() }

// Members returns the nodes currently subscribed to t.
func (s *Simulation) Members(t Topic) []NodeID { return s.c.Members(t) }

// Now returns the current virtual time in timeout intervals.
func (s *Simulation) Now() float64 { return s.c.Sched.Now() }

// Cluster exposes the underlying harness for advanced experiments.
func (s *Simulation) Cluster() *cluster.Cluster { return s.c }
