package sspubsub

import (
	"fmt"
	"time"

	"sspubsub/internal/cluster"
	"sspubsub/internal/core"
	"sspubsub/internal/ordering"
	"sspubsub/internal/proto"
	"sspubsub/internal/runtime/concurrent"
	"sspubsub/internal/runtime/nettransport"
	"sspubsub/internal/sim"
)

// RuntimeKind selects the execution substrate protocol nodes run on.
type RuntimeKind string

const (
	// RuntimeSim is the deterministic discrete-event scheduler: virtual
	// time, seeded randomness, exact reproducibility. The default.
	RuntimeSim RuntimeKind = "sim"
	// RuntimeConcurrent is the live goroutine-per-node runtime: real-time
	// jittered timeouts, buffered mailboxes, true parallelism. Runs are
	// not reproducible, but exercise the protocol under genuine
	// concurrency.
	RuntimeConcurrent RuntimeKind = "concurrent"
	// RuntimeNet is the loopback networked transport: the same goroutine
	// nodes as RuntimeConcurrent, but every message — including
	// node-to-node within the process — is encoded with the internal/wire
	// codec and crosses a real TCP socket. The closest single-process
	// approximation of a deployed multi-process system.
	RuntimeNet RuntimeKind = "net"
)

// liveSubstrate is what the Simulation facade needs from a non-deterministic
// execution substrate: transport, quiesce barrier and message accounting.
// Both concurrent.Runtime and nettransport.Transport satisfy it.
type liveSubstrate interface {
	sim.Transport
	Quiesce(timeout time.Duration, f func()) bool
	Delivered() int64
	CountByType(name string) int64
	SentBy(id sim.NodeID) int64
	ResetCounters()
	Now() float64
	SetFault(f sim.FaultFunc)
}

// SimOptions configure a Simulation.
type SimOptions struct {
	// Runtime picks the substrate (default RuntimeSim). The corruption
	// injectors (CorruptSubscriberStates, CorruptSupervisorDB,
	// InjectGarbageMessages, PartitionStates) require RuntimeSim; all
	// other controls work on both substrates.
	Runtime RuntimeKind
	// Interval is the real-time length of one timeout interval on
	// RuntimeConcurrent and RuntimeNet (default 2ms). Ignored by
	// RuntimeSim, where a round is a unit of virtual time.
	Interval time.Duration
	// Seed makes RuntimeSim runs fully reproducible and seeds the
	// per-node randomness on the live substrates.
	Seed int64
	// KeyLen is the publication key width (default 64).
	KeyLen uint8
	// Supervisors is the supervisor-plane size (default 1). With more than
	// one, topics are sharded by consistent hashing over supervisors
	// 1 … Supervisors, the plane is crash-tolerant (CrashSupervisor /
	// RestartSupervisor), and subscriber IDs start after the supervisor
	// block.
	Supervisors int
	// ReplicationFactor is how many hashdht successors each topic owner
	// streams its directory to (default 0: failover rebuilds from the
	// subscribers). With a factor ≥ 1 supervisor failover adopts the
	// successor's warm replica; anti-entropy keeps replicas convergent
	// from arbitrary corruption. Only meaningful with Supervisors > 1.
	ReplicationFactor int
	// DisableFlooding / DisableAntiEntropy / DisableActionIV are the
	// ablation switches described in DESIGN.md.
	DisableFlooding    bool
	DisableAntiEntropy bool
	DisableActionIV    bool
	// HistoryCap bounds each subscriber's retained publications per topic
	// (0 = unlimited; see Options.HistoryCap on the live System).
	HistoryCap int
	// DeliveryMode selects the delivery ordering discipline every
	// subscriber applies and the supervisors record as the directory
	// default (ModeBestEffort, ModeFIFO or ModeCausal). Works on every
	// substrate; on RuntimeSim ordered runs replay bit-exactly from Seed.
	DeliveryMode DeliveryMode
	// OnDeliver, if non-nil, observes every publication delivery as
	// (subscriber, topic, payload), after the DeliveryMode discipline has
	// released it — with ModeFIFO each publisher's payloads arrive at every
	// subscriber in publish order. It runs inside the protocol handlers (on
	// node goroutines under the live substrates, so it must be safe for
	// concurrent use) and must not call back into the Simulation.
	OnDeliver func(node NodeID, t Topic, payload string)
}

// NodeID identifies a simulated subscriber node.
type NodeID = sim.NodeID

// Topic identifies a topic in a Simulation.
type Topic = sim.Topic

// Simulation runs the full protocol stack (supervisor, subscribers,
// publication engines) on a chosen substrate. On the default deterministic
// scheduler it exposes the research controls used by the
// paper-reproduction experiments: corrupted initial states, crashes,
// convergence detection against the exact legitimate topology, and message
// accounting. On the concurrent runtime the same scenario API drives real
// goroutines, with convergence checks taken under a quiesce barrier; a
// "round" is then one wall-clock timeout interval.
type Simulation struct {
	c *cluster.Cluster // deterministic substrate (nil on concurrent/net)

	live  *cluster.Live       // live substrate harness (nil on sim)
	lrt   liveSubstrate       // live substrate (nil on sim)
	crt   *concurrent.Runtime // non-nil only on RuntimeConcurrent (injectors)
	ivl   time.Duration
	churn []*concurrent.Injector // injectors started via StartChurn
}

// NewSimulation creates an empty system (supervisor only) on the substrate
// selected by opts.Runtime. RuntimeNet panics if the loopback listener
// cannot be opened (no 127.0.0.1 available).
func NewSimulation(opts SimOptions) *Simulation {
	clientOpts := core.Options{
		KeyLen:             opts.KeyLen,
		DisableFlooding:    opts.DisableFlooding,
		DisableAntiEntropy: opts.DisableAntiEntropy,
		DisableActionIV:    opts.DisableActionIV,
		HistoryCap:         opts.HistoryCap,
		DeliveryMode:       opts.DeliveryMode,
	}
	if f := opts.OnDeliver; f != nil {
		clientOpts.OnDeliverTrace = func(node sim.NodeID, t sim.Topic, p proto.Publication, _ ordering.Meta) {
			f(node, t, p.Payload)
		}
	}
	ivl := opts.Interval
	if ivl == 0 {
		ivl = 2 * time.Millisecond
	}
	supers := opts.Supervisors
	if supers < 1 {
		supers = 1
	}
	switch opts.Runtime {
	case RuntimeConcurrent:
		crt := concurrent.NewRuntime(concurrent.Options{Interval: ivl, Seed: opts.Seed})
		return &Simulation{live: cluster.NewLiveRF(crt, clientOpts, supers, opts.ReplicationFactor), lrt: crt, crt: crt, ivl: ivl}
	case RuntimeNet:
		nt, err := nettransport.NewLoopback(nettransport.Options{Interval: ivl, Seed: opts.Seed})
		if err != nil {
			panic(fmt.Sprintf("sspubsub: loopback transport: %v", err))
		}
		return &Simulation{live: cluster.NewLiveRF(nt, clientOpts, supers, opts.ReplicationFactor), lrt: nt, ivl: ivl}
	case RuntimeSim, "":
		return &Simulation{c: cluster.New(cluster.Options{Seed: opts.Seed, ClientOpts: clientOpts, Supervisors: supers, ReplicationFactor: opts.ReplicationFactor})}
	default:
		panic(fmt.Sprintf("sspubsub: unknown runtime %q", opts.Runtime))
	}
}

// Close stops any running fault injectors and the substrate. It must be
// called on RuntimeConcurrent to terminate the node goroutines; on
// RuntimeSim it is a no-op.
func (s *Simulation) Close() {
	for _, in := range s.churn {
		in.Stop()
	}
	s.churn = nil
	if s.lrt != nil {
		s.lrt.Close()
	}
}

// Runtime returns which substrate the simulation runs on.
func (s *Simulation) Runtime() RuntimeKind {
	switch {
	case s.crt != nil:
		return RuntimeConcurrent
	case s.lrt != nil:
		return RuntimeNet
	default:
		return RuntimeSim
	}
}

// requireSim guards the deterministic-only research controls.
func (s *Simulation) requireSim(op string) {
	if s.c == nil {
		panic(fmt.Sprintf("sspubsub: %s requires Runtime == RuntimeSim", op))
	}
}

// AddSubscribers creates n subscriber nodes and returns their IDs.
func (s *Simulation) AddSubscribers(n int) []NodeID {
	if s.lrt != nil {
		return s.live.AddClients(n)
	}
	return s.c.AddClients(n)
}

// Join subscribes a node to a topic.
func (s *Simulation) Join(id NodeID, t Topic) {
	if s.lrt != nil {
		s.live.Join(id, t)
		return
	}
	s.c.Join(id, t)
}

// JoinAll subscribes every node to the topic.
func (s *Simulation) JoinAll(t Topic) {
	if s.lrt != nil {
		s.live.JoinAll(t)
		return
	}
	s.c.JoinAll(t)
}

// Leave starts an unsubscribe handshake.
func (s *Simulation) Leave(id NodeID, t Topic) {
	if s.lrt != nil {
		s.live.Leave(id, t)
		return
	}
	s.c.Leave(id, t)
}

// Crash fails a node without warning (Section 3.3).
func (s *Simulation) Crash(id NodeID) {
	if s.lrt != nil {
		s.live.Crash(id)
		return
	}
	s.c.Crash(id)
}

// Publish makes a node publish a payload.
func (s *Simulation) Publish(id NodeID, t Topic, payload string) {
	if s.lrt != nil {
		s.live.Publish(id, t, payload)
		return
	}
	s.c.Publish(id, t, payload)
}

// RunRounds advances by k timeout intervals: virtual on RuntimeSim,
// wall-clock on RuntimeConcurrent.
func (s *Simulation) RunRounds(k int) {
	if s.lrt != nil {
		time.Sleep(time.Duration(k) * s.ivl)
		return
	}
	s.c.Sched.RunRounds(k)
}

// RunUntilConverged advances until topic t is in its legitimate state with
// exactly n members, returning the rounds taken and success. On
// RuntimeConcurrent the legitimacy predicate is evaluated under the
// quiesce barrier once per interval, so the snapshot is exact.
func (s *Simulation) RunUntilConverged(t Topic, n, maxRounds int) (int, bool) {
	if s.lrt != nil {
		start := time.Now()
		deadline := start.Add(time.Duration(maxRounds) * s.ivl)
		for {
			if s.quiescedCheck(func() bool { return s.live.ConvergedWith(t, n) }) {
				return s.elapsedRounds(start), true
			}
			if time.Now().After(deadline) {
				return maxRounds, false
			}
			time.Sleep(s.ivl)
		}
	}
	return s.c.RunUntilConverged(t, n, maxRounds)
}

// RunUntil advances round by round until pred returns true or maxRounds
// elapsed; pred is evaluated between rounds (under the quiesce barrier on
// RuntimeConcurrent).
func (s *Simulation) RunUntil(maxRounds int, pred func() bool) (int, bool) {
	if s.lrt != nil {
		start := time.Now()
		deadline := start.Add(time.Duration(maxRounds) * s.ivl)
		for {
			if s.quiescedCheck(pred) {
				return s.elapsedRounds(start), true
			}
			if time.Now().After(deadline) {
				return maxRounds, false
			}
			time.Sleep(s.ivl)
		}
	}
	return s.c.Sched.RunRoundsUntil(maxRounds, pred)
}

// quiescedCheck evaluates pred with the concurrent runtime frozen. If the
// system does not drain within a generous window (livelock, injector
// churn), the check conservatively reports false.
func (s *Simulation) quiescedCheck(pred func() bool) bool {
	ok := false
	s.lrt.Quiesce(100*s.ivl, func() { ok = pred() })
	return ok
}

func (s *Simulation) elapsedRounds(start time.Time) int {
	return int(time.Since(start) / s.ivl)
}

// Converged reports whether topic t is currently legitimate.
func (s *Simulation) Converged(t Topic) bool {
	if s.lrt != nil {
		return s.quiescedCheck(func() bool { return s.live.Converged(t) })
	}
	return s.c.Converged(t)
}

// Explain describes the first legitimacy violation, or returns "".
func (s *Simulation) Explain(t Topic) string {
	if s.lrt != nil {
		out := "system did not quiesce"
		s.lrt.Quiesce(100*s.ivl, func() { out = s.live.Explain(t) })
		return out
	}
	return s.c.Explain(t)
}

// ReplicasConverged reports whether every expected warm replica of t
// matches the owner's directory digest (trivially true when
// SimOptions.ReplicationFactor is 0).
func (s *Simulation) ReplicasConverged(t Topic) bool {
	if s.lrt != nil {
		return s.quiescedCheck(func() bool { return s.live.ReplicasConverged(t) })
	}
	return s.c.ReplicasConverged(t)
}

// ExplainReplication describes the first replica-convergence violation
// for t, or returns "" when all replicas are warm.
func (s *Simulation) ExplainReplication(t Topic) string {
	if s.lrt != nil {
		out := "system did not quiesce"
		s.lrt.Quiesce(100*s.ivl, func() { out = s.live.ExplainReplication(t) })
		return out
	}
	return s.c.ExplainReplication(t)
}

// TriesEqual reports whether all members hold identical publication sets.
func (s *Simulation) TriesEqual(t Topic) bool {
	if s.lrt != nil {
		return s.quiescedCheck(func() bool { return s.live.TriesEqual(t) })
	}
	return s.c.TriesEqual(t)
}

// AllHavePubs reports whether every member knows at least k publications.
func (s *Simulation) AllHavePubs(t Topic, k int) bool {
	if s.lrt != nil {
		return s.quiescedCheck(func() bool { return s.live.AllHavePubs(t, k) })
	}
	return s.c.AllHavePubs(t, k)
}

// Publications returns the publication payloads known to a node.
func (s *Simulation) Publications(id NodeID, t Topic) []string {
	cl, ok := s.clientOf(id)
	if !ok {
		return nil
	}
	pubs := cl.Publications(t)
	out := make([]string, len(pubs))
	for i, p := range pubs {
		out[i] = p.Payload
	}
	return out
}

// Degree returns a node's current overlay degree.
func (s *Simulation) Degree(id NodeID, t Topic) int {
	cl, ok := s.clientOf(id)
	if !ok {
		return 0
	}
	return cl.Degree(t)
}

// Label returns a node's current overlay label for t ("⊥" when absent).
func (s *Simulation) Label(id NodeID, t Topic) string {
	cl, ok := s.clientOf(id)
	if !ok {
		return "⊥"
	}
	st, ok := cl.StateOf(t)
	if !ok {
		return "⊥"
	}
	return st.Label.String()
}

func (s *Simulation) clientOf(id NodeID) (*core.Client, bool) {
	if s.lrt != nil {
		cl, ok := s.live.Clients[id]
		return cl, ok
	}
	cl, ok := s.c.Clients[id]
	return cl, ok
}

// CorruptSubscriberStates overwrites all member states with garbage.
// Requires RuntimeSim.
func (s *Simulation) CorruptSubscriberStates(t Topic) {
	s.requireSim("CorruptSubscriberStates")
	s.c.CorruptSubscriberStates(t)
}

// CorruptSupervisorDB injects the four database corruption cases.
// Requires RuntimeSim.
func (s *Simulation) CorruptSupervisorDB(t Topic) {
	s.requireSim("CorruptSupervisorDB")
	s.c.CorruptSupervisorDB(t)
}

// InjectGarbageMessages seeds the channels with corrupted messages.
// Requires RuntimeSim.
func (s *Simulation) InjectGarbageMessages(t Topic, count int) {
	s.requireSim("InjectGarbageMessages")
	s.c.InjectGarbageMessages(t, count)
}

// PartitionStates splits the members into k self-consistent, unrecorded
// components (the hard initial state of Section 3.2.1). Requires
// RuntimeSim.
func (s *Simulation) PartitionStates(t Topic, k int) {
	s.requireSim("PartitionStates")
	s.c.PartitionStates(t, k)
}

// Restart brings a previously crashed subscriber back with exactly the
// stale state it crashed with — an arbitrary initial state for the
// self-stabilization machinery to repair. It reports false when the node
// was never crashed (or was already restarted). Works on every substrate.
func (s *Simulation) Restart(id NodeID) bool {
	if s.lrt != nil {
		return s.live.Restart(id)
	}
	return s.c.Restart(id)
}

// SupervisorIDs returns the static supervisor plane (node IDs
// 1 … SimOptions.Supervisors), crashed or not.
func (s *Simulation) SupervisorIDs() []NodeID {
	return append([]NodeID(nil), s.harness().SupIDs...)
}

// CrashSupervisor fails a supervisor without warning (by node ID; see
// SupervisorIDs). Its topics are orphaned until the surviving peers'
// failure detector migrates them to their hashdht successors, which
// rebuild the topic databases from the live subscribers. It reports false
// for unknown or already-crashed supervisors, and refuses to crash the
// last live supervisor (mirroring System.CrashSupervisor — a plane with
// no live member owns nothing and cannot converge). Works on every
// substrate.
func (s *Simulation) CrashSupervisor(id NodeID) bool {
	return s.harness().CrashSupervisor(id)
}

// RestartSupervisor brings a crashed supervisor back with the stale plane
// state it crashed with; the ownership machinery lets it reclaim its
// topics at a fresh epoch. It reports false when the supervisor was not
// crashed.
func (s *Simulation) RestartSupervisor(id NodeID) bool {
	return s.harness().RestartSupervisor(id)
}

// harness returns the substrate-independent cluster harness.
func (s *Simulation) harness() *cluster.Live {
	if s.lrt != nil {
		return s.live
	}
	return s.c.Live
}

// FaultAction is the verdict a message-fault filter returns; see the
// Fault* constants.
type FaultAction = sim.FaultAction

// Fault filter verdicts: deliver unchanged, lose the message, deliver it
// twice, or hold it back so later traffic overtakes it.
const (
	FaultDeliver = sim.FaultDeliver
	FaultDrop    = sim.FaultDrop
	FaultDup     = sim.FaultDup
	FaultDelay   = sim.FaultDelay
)

// SetMessageFault installs (or clears, with nil) a transport-layer fault
// filter consulted for every message: chaos experiments use it to model
// lossy, duplicating, reordering or partitioned channels (Section 3.3's
// adversarial channel). On the live substrates the filter runs on the
// sending goroutine and must be safe for concurrent use. Driver control
// commands are ordinary self-sends — exempt them (from == to) unless the
// experiment really wants to sever its own controls.
func (s *Simulation) SetMessageFault(f func(from, to NodeID, topic Topic) FaultAction) {
	var ff sim.FaultFunc
	if f != nil {
		ff = func(m sim.Message) sim.FaultAction { return f(m.From, m.To, m.Topic) }
	}
	if s.lrt != nil {
		s.lrt.SetFault(ff)
		return
	}
	s.c.Sched.SetFault(ff)
}

// StartChurn attaches a crash/restart fault injector to a concurrent run:
// every few intervals a random subscriber crashes and later restarts with
// its stale state. The returned stop function halts the churn, restarts
// any victim still down and blocks until the system is whole again; it is
// idempotent, and Close stops any injector still running. Requires
// RuntimeConcurrent.
func (s *Simulation) StartChurn(seed int64) (stop func()) {
	if s.crt == nil {
		panic("sspubsub: StartChurn requires Runtime == RuntimeConcurrent")
	}
	in := s.crt.NewInjector(concurrent.InjectorOptions{
		Seed:    seed,
		Protect: s.live.IsSupervisor,
	})
	s.churn = append(s.churn, in)
	return in.Stop
}

// MessagesDelivered returns the total messages delivered so far.
func (s *Simulation) MessagesDelivered() int64 {
	if s.lrt != nil {
		return s.lrt.Delivered()
	}
	return s.c.Sched.Delivered()
}

// MessagesByType returns the count of sends for a protocol message type
// name, e.g. "proto.GetConfiguration".
func (s *Simulation) MessagesByType(name string) int64 {
	if s.lrt != nil {
		return s.lrt.CountByType(name)
	}
	return s.c.Sched.CountByType(name)
}

// SentBy returns the number of messages a node has sent.
func (s *Simulation) SentBy(id NodeID) int64 {
	if s.lrt != nil {
		return s.lrt.SentBy(id)
	}
	return s.c.Sched.SentBy(id)
}

// SupervisorSent returns the number of messages the supervisor has sent.
func (s *Simulation) SupervisorSent() int64 { return s.SentBy(cluster.SupervisorID) }

// ResetCounters zeroes the message accounting (measure steady states).
func (s *Simulation) ResetCounters() {
	if s.lrt != nil {
		s.lrt.ResetCounters()
		return
	}
	s.c.Sched.ResetCounters()
}

// Members returns the nodes currently subscribed to t.
func (s *Simulation) Members(t Topic) []NodeID {
	if s.lrt != nil {
		return s.live.Members(t)
	}
	return s.c.Members(t)
}

// Now returns the current time in timeout intervals: virtual on
// RuntimeSim, wall-clock on RuntimeConcurrent.
func (s *Simulation) Now() float64 {
	if s.lrt != nil {
		return s.lrt.Now()
	}
	return s.c.Sched.Now()
}

// Cluster exposes the underlying deterministic harness for advanced
// experiments. Requires RuntimeSim.
func (s *Simulation) Cluster() *cluster.Cluster {
	s.requireSim("Cluster")
	return s.c
}
