package ring

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestCapacityRounding: capacities round up to powers of two, minimum 2.
func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}, {4096, 4096},
	} {
		if got := New[int](tc.ask).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

// TestFullEmptyBoundaries pins the edge behavior: a full ring rejects
// pushes without losing anything, an empty ring pops nothing, and the
// count stays exact through both boundaries.
func TestFullEmptyBoundaries(t *testing.T) {
	r := New[int](4)
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop on empty ring returned an item")
	}
	for i := 0; i < 4; i++ {
		if !r.Push(i) {
			t.Fatalf("Push %d rejected below capacity", i)
		}
	}
	if r.Push(99) {
		t.Fatal("Push accepted on a full ring")
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d after filling, want 4", r.Len())
	}
	for i := 0; i < 4; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop on drained ring returned an item")
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after draining, want 0", r.Len())
	}
}

// TestWraparound cycles the indices far past the capacity so the masked
// addressing and the head/tail distance survive wrap.
func TestWraparound(t *testing.T) {
	r := New[int](8)
	next := 0
	for round := 0; round < 10_000; round++ {
		// Variable-size bursts so head/tail hit every alignment.
		k := round%8 + 1
		for i := 0; i < k; i++ {
			if !r.Push(next + i) {
				t.Fatalf("round %d: push rejected with Len=%d", round, r.Len())
			}
		}
		for i := 0; i < k; i++ {
			v, ok := r.Pop()
			if !ok || v != next+i {
				t.Fatalf("round %d: Pop = (%d, %v), want (%d, true)", round, v, ok, next+i)
			}
		}
		next += k
	}
}

// TestPopNBatch: PopN moves up to len(dst) items in FIFO order and arms
// the wake flag when empty.
func TestPopNBatch(t *testing.T) {
	r := New[int](16)
	dst := make([]int, 8)
	if n := r.PopN(dst); n != 0 {
		t.Fatalf("PopN on empty = %d", n)
	}
	for i := 0; i < 12; i++ {
		r.Push(i)
	}
	if n := r.PopN(dst); n != 8 {
		t.Fatalf("PopN = %d, want 8", n)
	}
	for i := 0; i < 8; i++ {
		if dst[i] != i {
			t.Fatalf("dst[%d] = %d", i, dst[i])
		}
	}
	if n := r.PopN(dst); n != 4 {
		t.Fatalf("second PopN = %d, want 4", n)
	}
	for i := 0; i < 4; i++ {
		if dst[i] != 8+i {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], 8+i)
		}
	}
}

// TestSlotsZeroed: consumed slots must not retain references (the
// transport parks pointer-bearing entries here; a retained pointer would
// pin refcounted slabs past their release).
func TestSlotsZeroed(t *testing.T) {
	r := New[*int](4)
	v := new(int)
	r.Push(v)
	r.Pop()
	for i, p := range r.buf {
		if p != nil {
			t.Fatalf("slot %d still holds a pointer after Pop", i)
		}
	}
	r.Push(v)
	r.Push(v)
	dst := make([]*int, 2)
	r.PopN(dst)
	for i, p := range r.buf {
		if p != nil {
			t.Fatalf("slot %d still holds a pointer after PopN", i)
		}
	}
}

// TestWakeHandshake: a consumer that found the ring empty and blocks on
// Wake() must be woken by the next Push — the lost-wakeup property the
// seq-cst arm/re-check protocol guarantees.
func TestWakeHandshake(t *testing.T) {
	r := New[int](4)
	got := make(chan int)
	go func() {
		for {
			v, ok := r.Pop()
			if !ok {
				select {
				case <-r.Wake():
					continue
				case <-time.After(5 * time.Second):
					close(got)
					return
				}
			}
			got <- v
			return
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the consumer arm and block
	r.Push(42)
	v, ok := <-got
	if !ok {
		t.Fatal("consumer timed out: wakeup lost")
	}
	if v != 42 {
		t.Fatalf("woke with %d", v)
	}
}

// TestConcurrentStress runs one producer against one consumer across the
// full/empty boundaries for a while; under -race this doubles as the
// memory-model proof for the slot handoff. The consumer alternates Pop
// and PopN and sleeps on Wake() when empty, so the wake protocol is
// exercised continuously, not just once.
func TestConcurrentStress(t *testing.T) {
	const total = 100_000
	r := New[uint64](64)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // producer: yields only when full
		defer wg.Done()
		for i := uint64(0); i < total; {
			if r.Push(i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	var sum uint64
	go func() { // consumer
		defer wg.Done()
		dst := make([]uint64, 16)
		var seen uint64
		var expect uint64
		for seen < total {
			if seen%3 == 0 {
				v, ok := r.Pop()
				if !ok {
					select {
					case <-r.Wake():
					case <-time.After(time.Millisecond):
					}
					continue
				}
				if v != expect {
					t.Errorf("out of order: got %d want %d", v, expect)
					return
				}
				expect++
				sum += v
				seen++
				continue
			}
			n := r.PopN(dst)
			if n == 0 {
				select {
				case <-r.Wake():
				case <-time.After(time.Millisecond):
				}
				continue
			}
			for _, v := range dst[:n] {
				if v != expect {
					t.Errorf("out of order: got %d want %d", v, expect)
					return
				}
				expect++
				sum += v
			}
			seen += uint64(n)
		}
	}()
	wg.Wait()
	if want := uint64(total) * (total - 1) / 2; sum != want {
		t.Fatalf("sum = %d, want %d: items lost or duplicated", sum, want)
	}
}
