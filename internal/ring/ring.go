// Package ring provides a fixed-capacity, lock-free single-producer/
// single-consumer ring buffer with batch drain. It is the egress handoff
// of the networked transport (router goroutine → per-peer writer), built
// to replace a buffered-channel handoff on the hot path; the same shape
// is intended to back the concurrent runtime's mailbox fast path later.
//
// Concurrency contract: at most one goroutine calls Push at a time, and
// at most one goroutine calls Pop/PopN at a time. The two sides need no
// external synchronization against each other. Either *role* may migrate
// between goroutines if the handoff itself is synchronized (the transport
// hands the consumer role from a dead writer to the drain path only after
// the writer goroutine has provably exited).
//
// A full ring rejects the push (Push returns false) instead of blocking
// or overwriting: the caller owns the overflow policy, which for the
// transport is counted message loss — exactly the contract the protocol's
// self-stabilization absorbs.
//
// The consumer can sleep without busy-waiting: when Pop/PopN find the
// ring empty they arm a wake flag, and the next Push posts a token to
// Wake(). Tokens are advisory — the consumer must re-poll after waking,
// and spurious tokens are harmless — but the seq-cst ordering of the
// flag/tail accesses makes lost wakeups impossible: either the producer
// observes the armed flag, or the consumer's re-check observes the new
// tail.
package ring

import "sync/atomic"

// cacheLine keeps the producer- and consumer-owned indices on separate
// cache lines so the two sides do not false-share.
const cacheLine = 64

// SPSC is a single-producer/single-consumer ring of T.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	_    [cacheLine]byte
	head atomic.Uint64 // next slot to pop; written by the consumer only
	_    [cacheLine]byte
	tail atomic.Uint64 // next slot to push; written by the producer only
	_    [cacheLine]byte

	sleeping atomic.Bool
	wake     chan struct{}
}

// New returns a ring with capacity rounded up to the next power of two
// (minimum 2).
func New[T any](capacity int) *SPSC[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &SPSC[T]{
		buf:  make([]T, n),
		mask: uint64(n - 1),
		wake: make(chan struct{}, 1),
	}
}

// Cap returns the ring's fixed capacity.
func (r *SPSC[T]) Cap() int { return len(r.buf) }

// Len returns the number of buffered items. It is exact only for the two
// owning goroutines; for anyone else it is a racy snapshot.
func (r *SPSC[T]) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Push appends v. It reports false — leaving the ring unchanged — when
// the ring is full. Producer side only.
func (r *SPSC[T]) Push(v T) bool {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1) // publish: the slot write happens-before this
	if r.sleeping.Load() && r.sleeping.CompareAndSwap(true, false) {
		select {
		case r.wake <- struct{}{}:
		default: // a token is already pending; one is enough
		}
	}
	return true
}

// Pop removes and returns the oldest item. On an empty ring it returns
// the zero value and false, arming the wake flag so the next Push posts
// to Wake(). The vacated slot is zeroed, so the ring never retains
// references to consumed items. Consumer side only.
func (r *SPSC[T]) Pop() (T, bool) {
	var zero T
	h := r.head.Load()
	if h == r.tail.Load() {
		// Empty: arm the wake flag, then re-check — a push that raced the
		// arming must be either popped now or have seen the flag.
		r.sleeping.Store(true)
		if h == r.tail.Load() {
			return zero, false
		}
		r.sleeping.Store(false)
	}
	v := r.buf[h&r.mask]
	r.buf[h&r.mask] = zero
	r.head.Store(h + 1)
	return v, true
}

// PopN drains up to len(dst) items into dst with a single index update,
// returning how many were moved. On an empty ring it returns 0 and arms
// the wake flag exactly like Pop. Consumer side only.
func (r *SPSC[T]) PopN(dst []T) int {
	var zero T
	h := r.head.Load()
	t := r.tail.Load()
	if h == t {
		r.sleeping.Store(true)
		if t = r.tail.Load(); h == t {
			return 0
		}
		r.sleeping.Store(false)
	}
	n := int(t - h)
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		idx := (h + uint64(i)) & r.mask
		dst[i] = r.buf[idx]
		r.buf[idx] = zero
	}
	r.head.Store(h + uint64(n))
	return n
}

// Wake returns the channel the producer posts to after pushing into a
// ring whose consumer armed the wake flag (by finding it empty). Tokens
// are advisory: after receiving one the consumer must re-poll, and a
// stale token may arrive after data was already consumed.
func (r *SPSC[T]) Wake() <-chan struct{} { return r.wake }
