// Package ordering implements the per-topic delivery modes of the
// publish-subscribe layer: best-effort (the paper's unordered delivery),
// FIFO per publisher, and causal broadcast in the style of VCube-PS.
//
// The defining constraint is that ordering metadata must stabilize like
// every other piece of protocol state: it is bounded, corruption-tolerant
// and convergent — never an unbounded vector clock, never a cursor that
// can deadlock delivery forever.
//
//   - FIFO keeps one bounded cursor per recent publisher: the next
//     expected sequence number plus a 64-bit bitmap of recently delivered
//     sequences (duplicate suppression and straggler detection). Arrivals
//     inside the reorder window buffer until the gap fills; a gap that
//     survives past the window is declared loss and the cursor advances,
//     so a corrupted or wrapped publisher counter converges instead of
//     wedging the stream. Arrivals far below the cursor are suppressed,
//     but a run of ResyncAfter consecutive "ancient" sequences resyncs
//     the cursor downward — the repair for a cursor scrambled upward.
//   - Causal attaches a bounded barrier summary to each publication: up
//     to BarrierCap (origin, seq) entries naming the highest sequences
//     the publisher had delivered from other recent publishers
//     (deterministic eviction keeps the summary O(k) regardless of
//     history). A receiver holds a publication until its own cursors
//     cover the barrier; held publications live in a bounded pending set
//     and are force-delivered (flagged, so ordering probes exempt them)
//     after ForceAfter ticks — causality is enforced when the metadata is
//     healthy and degrades to bounded-delay delivery when it is not.
//
// Deliveries escape the ordering guarantees in exactly two marked ways:
// Meta.Recovered (the publication arrived through anti-entropy
// reconciliation, which carries no sequencing) and Meta.Forced (the
// self-stabilization machinery released it: declared loss, resync,
// pending-set overflow or age-out). The chaos delivery-ordering probe
// asserts the FIFO/causal invariants over all other deliveries.
package ordering

import (
	"fmt"
	"strings"

	"sspubsub/internal/proto"
)

// Mode selects a topic's delivery discipline.
type Mode uint8

const (
	// BestEffort is the paper's delivery: publications are handed to the
	// application the moment they are first stored, in arrival order.
	BestEffort Mode = iota
	// FIFO delivers each publisher's publications in publication order
	// (per-publisher sequence numbers, bounded reorder window).
	FIFO
	// Causal delivers respecting causal precedence across publishers, as
	// summarized by bounded causal barriers, and implies FIFO per
	// publisher.
	Causal
)

// String names the mode the way flags and scenario notes spell it.
func (m Mode) String() string {
	switch m {
	case BestEffort:
		return "besteffort"
	case FIFO:
		return "fifo"
	case Causal:
		return "causal"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// ParseMode parses a mode name as accepted by srsim's -mode flag.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "besteffort", "best-effort":
		return BestEffort, nil
	case "fifo":
		return FIFO, nil
	case "causal":
		return Causal, nil
	}
	return BestEffort, fmt.Errorf("unknown delivery mode %q (use besteffort, fifo or causal)", s)
}

// Bounds of the self-stabilizing ordering state. All per-subscriber
// ordering memory is O(MaxPublishers·Window + PendingCap) regardless of
// history length.
const (
	// Window is the reorder window: a sequence this far past the cursor
	// declares the gap lost and advances. It is also the width of the
	// duplicate-suppression bitmap.
	Window = 64
	// MaxPublishers caps the tracked per-publisher cursors; the
	// least-recently-touched cursor is evicted deterministically.
	MaxPublishers = 16
	// BarrierCap caps the causal barrier entries attached to a
	// publication (the highest-sequence cursors win, deterministically).
	BarrierCap = 4
	// PendingCap bounds the held-publication set; overflow force-delivers
	// the oldest entry.
	PendingCap = 128
	// ForceAfter is the age, in ticks, past which a held publication is
	// force-delivered even though its gap or barrier is unsatisfied.
	ForceAfter = 8
	// ResyncAfter is how many consecutive far-below-cursor ("ancient")
	// sequences from one publisher resync the cursor downward — the
	// convergence path for a cursor corrupted upward or a publisher
	// counter that wrapped.
	ResyncAfter = 3
)

// Meta annotates one delivery with its ordering provenance.
type Meta struct {
	// Seq is the publisher-assigned sequence number (0 on best-effort
	// deliveries, which carry none).
	Seq uint64
	// Recovered marks a delivery from the anti-entropy reconciliation
	// path, which carries no ordering metadata. Exempt from the ordering
	// invariants.
	Recovered bool
	// Forced marks a delivery released by the self-stabilization
	// machinery (declared loss, cursor resync, pending overflow or
	// age-out) rather than by a satisfied ordering condition. Exempt from
	// the ordering invariants.
	Forced bool
	// Barrier is the causal barrier the publication carried (causal mode
	// only; nil otherwise).
	Barrier []proto.BarrierEntry
}
