package ordering

import (
	"math/rand"
	"sort"

	"sspubsub/internal/sim"
)

// Corrupt scrambles the buffer's ordering state in place — the
// corrupt-ordering chaos fault. The scrambles it performs model real
// failure classes the machinery must converge from:
//
//   - cursors scrambled downward (amnesia): the next publication from that
//     origin looks far ahead → gap-declared-loss advance resyncs upward,
//     or within-window gaps resolve via ForceAfter forced deliveries.
//   - FIFO cursors may additionally scramble upward (a wrapped or
//     fabricated counter): subsequent real sequences look ancient and the
//     ResyncAfter run resyncs the cursor downward. Causal cursors scramble
//     DOWN only — an upward scramble would manufacture false barrier
//     coverage, which no amount of later traffic can distinguish from a
//     genuine past delivery, so the coverage probe would (correctly) flag
//     machinery that allowed it.
//   - bitmaps scrambled arbitrarily: worst case is spurious duplicate
//     suppression of Window stragglers — bounded, and only of already
//     flagged deliveries.
//   - pending entries dropped (never mutated: a held publication either
//     survives intact or disappears; its cursor never advanced, so a
//     dropped entry is indistinguishable from transport loss and the gap
//     machinery recovers it).
func (b *Buffer) Corrupt(rng *rand.Rand) {
	origins := make([]sim.NodeID, 0, len(b.curs))
	for id := range b.curs {
		origins = append(origins, id)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	for _, id := range origins {
		if rng.Intn(2) == 0 {
			continue
		}
		c := b.curs[id]
		switch rng.Intn(3) {
		case 0: // scramble the cursor position
			if b.mode == Causal || rng.Intn(2) == 0 {
				// Downward (both modes): lose progress.
				c.next = 1 + uint64(rng.Int63n(int64(c.next)))
			} else {
				// Upward (FIFO only): fabricate progress.
				c.next += uint64(1 + rng.Intn(4*Window))
			}
		case 1: // scramble the duplicate-suppression bitmap
			c.recent = rng.Uint64()
		case 2: // full amnesia for this publisher
			delete(b.curs, id)
		}
	}
	if len(b.pending) > 0 && rng.Intn(2) == 0 {
		kept := b.pending[:0]
		for _, e := range b.pending {
			if rng.Intn(2) == 0 {
				kept = append(kept, e)
			}
		}
		b.pending = kept
	}
}
