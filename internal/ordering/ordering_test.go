package ordering

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
)

type delivery struct {
	payload string
	meta    Meta
}

type harness struct {
	buf *Buffer
	out []delivery
}

func newHarness(mode Mode) *harness {
	h := &harness{}
	h.buf = New(mode, 99, func(p proto.Publication, m Meta) {
		m.Barrier = nil // normalize: tests compare order/flags, not barriers
		h.out = append(h.out, delivery{payload: p.Payload, meta: m})
	})
	return h
}

func pub(origin sim.NodeID, payload string) proto.Publication {
	return proto.Publication{Origin: origin, Payload: payload}
}

func (h *harness) take() []delivery {
	out := h.out
	h.out = nil
	return out
}

func (h *harness) payloads() []string {
	var ps []string
	for _, d := range h.out {
		ps = append(ps, d.payload)
	}
	h.out = nil
	return ps
}

func TestModeStringParse(t *testing.T) {
	for _, m := range []Mode{BestEffort, FIFO, Causal} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if m, err := ParseMode(""); err != nil || m != BestEffort {
		t.Fatalf("ParseMode(\"\") = %v, %v", m, err)
	}
	if m, err := ParseMode("Best-Effort"); err != nil || m != BestEffort {
		t.Fatalf("ParseMode case-insensitive = %v, %v", m, err)
	}
	if _, err := ParseMode("total"); err == nil {
		t.Fatal("ParseMode accepted an unknown mode")
	}
}

// TestFIFOInOrder: the trivial path — sequences arriving in order deliver
// immediately, unflagged.
func TestFIFOInOrder(t *testing.T) {
	h := newHarness(FIFO)
	for i := 1; i <= 5; i++ {
		h.buf.Arrive(pub(1, fmt.Sprintf("p%d", i)), uint64(i), nil)
	}
	want := []string{"p1", "p2", "p3", "p4", "p5"}
	if got := h.payloads(); !reflect.DeepEqual(got, want) {
		t.Fatalf("in-order delivery = %v, want %v", got, want)
	}
}

// TestFIFOReorderBuffered: a gap inside the window holds later sequences
// until the gap fills, then drains in order.
func TestFIFOReorderBuffered(t *testing.T) {
	h := newHarness(FIFO)
	h.buf.Arrive(pub(1, "p1"), 1, nil)
	h.buf.Arrive(pub(1, "p3"), 3, nil)
	h.buf.Arrive(pub(1, "p4"), 4, nil)
	if got := h.payloads(); !reflect.DeepEqual(got, []string{"p1"}) {
		t.Fatalf("before gap fill: delivered %v, want [p1]", got)
	}
	if n := h.buf.PendingLen(); n != 2 {
		t.Fatalf("pending = %d, want 2", n)
	}
	h.buf.Arrive(pub(1, "p2"), 2, nil)
	want := []string{"p2", "p3", "p4"}
	if got := h.payloads(); !reflect.DeepEqual(got, want) {
		t.Fatalf("after gap fill: delivered %v, want %v", got, want)
	}
	for _, d := range h.out {
		if d.meta.Forced || d.meta.Recovered {
			t.Fatalf("unexpected flagged delivery %+v", d)
		}
	}
}

// TestFIFOWindowBoundary: seq next+Window-1 still buffers; seq next+Window
// declares the gap lost and advances the cursor (conformance vector:
// reorder window boundary).
func TestFIFOWindowBoundary(t *testing.T) {
	h := newHarness(FIFO)
	h.buf.Arrive(pub(1, "edge"), Window, nil) // next=1, seq == next+Window-1
	if got := h.take(); len(got) != 0 {
		t.Fatalf("seq at window edge delivered %v, want buffered", got)
	}
	h2 := newHarness(FIFO)
	h2.buf.Arrive(pub(1, "past"), Window+1, nil) // seq == next+Window
	got := h2.take()
	if len(got) != 1 || got[0].payload != "past" {
		t.Fatalf("seq past window = %v, want immediate delivery", got)
	}
	if got[0].meta.Forced {
		t.Fatal("gap-declared-loss FIFO delivery should be unflagged (order preserved, payloads declared lost)")
	}
	// Cursor advanced: the next in-stream sequence delivers immediately.
	h2.buf.Arrive(pub(1, "next"), Window+2, nil)
	if got := h2.payloads(); !reflect.DeepEqual(got, []string{"next"}) {
		t.Fatalf("after gap advance: %v, want [next]", got)
	}
}

// TestFIFOGapDeclaredLossAdvance: a gap that never fills is released by
// age-out, and the stream keeps moving (conformance vector:
// gap-declared-loss advance).
func TestFIFOGapDeclaredLossAdvance(t *testing.T) {
	h := newHarness(FIFO)
	h.buf.Arrive(pub(1, "p1"), 1, nil)
	h.buf.Arrive(pub(1, "p3"), 3, nil) // p2 lost in transit
	h.take()
	for tick := uint64(1); tick <= ForceAfter; tick++ {
		h.buf.Tick(tick)
	}
	got := h.take()
	if len(got) != 1 || got[0].payload != "p3" || !got[0].meta.Forced {
		t.Fatalf("aged-out gap: %+v, want forced p3", got)
	}
	// Cursor advanced past the loss: stream continues unflagged.
	h.buf.Arrive(pub(1, "p4"), 4, nil)
	got = h.take()
	if len(got) != 1 || got[0].payload != "p4" || got[0].meta.Forced {
		t.Fatalf("post-loss stream: %+v, want normal p4", got)
	}
	// The straggler p2 finally arrives: delivered flagged, not lost.
	h.buf.Arrive(pub(1, "p2"), 2, nil)
	got = h.take()
	if len(got) != 1 || got[0].payload != "p2" || !got[0].meta.Forced {
		t.Fatalf("straggler: %+v, want forced p2", got)
	}
}

// TestFIFODuplicateSuppression: redelivered sequences inside the bitmap
// are suppressed exactly (conformance vector: duplicate suppression).
func TestFIFODuplicateSuppression(t *testing.T) {
	h := newHarness(FIFO)
	for i := 1; i <= 4; i++ {
		h.buf.Arrive(pub(1, fmt.Sprintf("p%d", i)), uint64(i), nil)
	}
	h.take()
	for i := 1; i <= 4; i++ {
		h.buf.Arrive(pub(1, fmt.Sprintf("p%d", i)), uint64(i), nil)
	}
	if got := h.take(); len(got) != 0 {
		t.Fatalf("duplicates delivered: %v", got)
	}
	// Forward progress unharmed.
	h.buf.Arrive(pub(1, "p5"), 5, nil)
	if got := h.payloads(); !reflect.DeepEqual(got, []string{"p5"}) {
		t.Fatalf("after dups: %v, want [p5]", got)
	}
}

// TestFIFOAncientResync: a run of ResyncAfter far-below-cursor sequences
// resyncs the cursor downward — convergence from an upward-corrupted
// cursor.
func TestFIFOAncientResync(t *testing.T) {
	h := newHarness(FIFO)
	h.buf.Arrive(pub(1, "p1"), 1, nil)
	h.take()
	// Corrupt the cursor far upward.
	h.buf.curs[1].next = 100000
	for i := 0; i < ResyncAfter-1; i++ {
		h.buf.Arrive(pub(1, fmt.Sprintf("a%d", i)), uint64(10+i), nil)
		if got := h.take(); len(got) != 0 {
			t.Fatalf("ancient %d delivered early: %v", i, got)
		}
	}
	h.buf.Arrive(pub(1, "sync"), uint64(10+ResyncAfter-1), nil)
	got := h.take()
	if len(got) != 1 || got[0].payload != "sync" || !got[0].meta.Forced {
		t.Fatalf("resync delivery: %+v", got)
	}
	// Cursor now tracks the real stream again.
	h.buf.Arrive(pub(1, "p13"), uint64(10+ResyncAfter), nil)
	got = h.take()
	if len(got) != 1 || got[0].payload != "p13" || got[0].meta.Forced {
		t.Fatalf("post-resync: %+v, want normal p13", got)
	}
}

// TestFIFOPendingOverflow: the pending set is hard-bounded; overflow
// force-delivers the oldest entry.
func TestFIFOPendingOverflow(t *testing.T) {
	h := newHarness(FIFO)
	// Many origins each with an unfillable gap — each origin contributes
	// a few held entries within its window.
	n := 0
	for o := sim.NodeID(1); n < PendingCap+8; o++ {
		for s := uint64(2); s < 10 && n < PendingCap+8; s++ {
			h.buf.Arrive(pub(o, fmt.Sprintf("o%dp%d", o, s)), s, nil)
			n++
		}
	}
	if got := h.buf.PendingLen(); got > PendingCap {
		t.Fatalf("pending overflowed the cap: %d > %d", got, PendingCap)
	}
	forced := 0
	for _, d := range h.take() {
		if d.meta.Forced {
			forced++
		}
	}
	if forced == 0 {
		t.Fatal("overflow produced no forced deliveries")
	}
}

// TestCausalBarrierHold: a causal publication is held until its barrier
// is covered by local deliveries, then delivered in causal order.
func TestCausalBarrierHold(t *testing.T) {
	h := newHarness(Causal)
	// B's publication causally follows A's seq 1.
	barrier := []proto.BarrierEntry{{Origin: 1, Seq: 1}}
	h.buf.Arrive(pub(2, "effect"), 1, barrier)
	if got := h.take(); len(got) != 0 {
		t.Fatalf("uncovered barrier delivered early: %v", got)
	}
	h.buf.Arrive(pub(1, "cause"), 1, nil)
	want := []string{"cause", "effect"}
	if got := h.payloads(); !reflect.DeepEqual(got, want) {
		t.Fatalf("causal order = %v, want %v", got, want)
	}
}

// TestCausalBarrierAgeOut: an uncoverable barrier (its cause truly lost)
// degrades to forced delivery after ForceAfter ticks, not deadlock.
func TestCausalBarrierAgeOut(t *testing.T) {
	h := newHarness(Causal)
	h.buf.Arrive(pub(2, "orphan"), 1, []proto.BarrierEntry{{Origin: 1, Seq: 5}})
	for tick := uint64(1); tick <= ForceAfter; tick++ {
		h.buf.Tick(tick)
	}
	got := h.take()
	if len(got) != 1 || got[0].payload != "orphan" || !got[0].meta.Forced {
		t.Fatalf("aged-out barrier: %+v, want forced orphan", got)
	}
}

// TestCausalBarrierConstruction: Barrier() summarizes the delivery
// frontier, capped at BarrierCap with deterministic eviction (highest
// sequences win, ties by smallest origin) and self excluded (conformance
// vector: barrier cap eviction).
func TestCausalBarrierConstruction(t *testing.T) {
	h := newHarness(Causal) // self = 99
	// Deliver from BarrierCap+2 publishers with distinct frontiers.
	for o := 1; o <= BarrierCap+2; o++ {
		for s := 1; s <= o; s++ { // publisher o's frontier = o
			h.buf.Arrive(pub(sim.NodeID(o), fmt.Sprintf("o%ds%d", o, s)), uint64(s), nil)
		}
	}
	// And a self-delivery that must not appear.
	h.buf.Arrive(pub(99, "self"), 7, nil)
	h.take()
	br := h.buf.Barrier()
	if len(br) != BarrierCap {
		t.Fatalf("barrier len = %d, want cap %d", len(br), BarrierCap)
	}
	// Highest frontiers kept: publishers BarrierCap+2 down to 3.
	for i, e := range br {
		wantOrigin := sim.NodeID(BarrierCap + 2 - i)
		wantSeq := uint64(BarrierCap + 2 - i)
		if e.Origin == 99 {
			t.Fatal("barrier includes self")
		}
		if e.Origin != wantOrigin || e.Seq != wantSeq {
			t.Fatalf("barrier[%d] = %+v, want {%d %d}", i, e, wantOrigin, wantSeq)
		}
	}
	if got := New(FIFO, 99, nil).Barrier(); got != nil {
		t.Fatalf("FIFO Barrier() = %v, want nil", got)
	}
}

// TestCursorEviction: the publisher-cursor set is hard-capped; the
// least-recently-touched cursor is evicted deterministically and its held
// publications are force-delivered, not dropped.
func TestCursorEviction(t *testing.T) {
	h := newHarness(FIFO)
	for o := 1; o <= MaxPublishers; o++ {
		h.buf.now = uint64(o) // distinct touch times
		h.buf.Arrive(pub(sim.NodeID(o), fmt.Sprintf("o%d", o)), 1, nil)
	}
	// Park a pending entry on origin 1, then pin it as the LRU cursor.
	h.buf.now = uint64(MaxPublishers + 1)
	h.buf.Arrive(pub(1, "held"), 3, nil) // gap at 2 → pending
	h.take()
	h.buf.curs[1].touch = 0
	// A new publisher forces the eviction of origin 1, flushing its held
	// publication as a forced delivery.
	h.buf.now = uint64(MaxPublishers + 2)
	h.buf.Arrive(pub(100, "new"), 1, nil)
	var forcedHeld bool
	for _, d := range h.take() {
		if d.payload == "held" && d.meta.Forced {
			forcedHeld = true
		}
	}
	if !forcedHeld {
		t.Fatal("evicted publisher's pending entry was dropped, want forced delivery")
	}
	if _, ok := h.buf.curs[1]; ok {
		t.Fatal("cursor (origin 1) not evicted")
	}
	if len(h.buf.curs) > MaxPublishers {
		t.Fatalf("cursor count %d exceeds cap %d", len(h.buf.curs), MaxPublishers)
	}
}

// TestRecoveredBypass: anti-entropy deliveries bypass the cursors and are
// flagged Recovered.
func TestRecoveredBypass(t *testing.T) {
	h := newHarness(Causal)
	h.buf.Recovered(pub(1, "rec"))
	got := h.take()
	if len(got) != 1 || !got[0].meta.Recovered {
		t.Fatalf("Recovered: %+v", got)
	}
	if len(h.buf.curs) != 0 {
		t.Fatal("Recovered touched a cursor")
	}
}

// TestCorruptConverges: after arbitrary state corruption, a healthy
// in-order stream from each publisher converges back to unflagged
// in-order delivery, and every live payload surfaces at least once.
func TestCorruptConverges(t *testing.T) {
	for _, mode := range []Mode{FIFO, Causal} {
		for seed := int64(1); seed <= 20; seed++ {
			h := newHarness(mode)
			rng := rand.New(rand.NewSource(seed))
			seq := map[sim.NodeID]uint64{}
			send := func(o sim.NodeID) {
				seq[o]++
				h.buf.Arrive(pub(o, fmt.Sprintf("o%d-%d", o, seq[o])), seq[o], nil)
			}
			for i := 0; i < 30; i++ {
				send(sim.NodeID(1 + rng.Intn(4)))
			}
			h.take()
			h.buf.Corrupt(rng)
			// Healthy traffic + ticks: must converge to normal delivery.
			// An upward-scrambled FIFO cursor can emit up to Window flagged
			// stragglers before the real stream catches up, so drive more
			// than Window publications per origin.
			var tick uint64 = 100
			for i := 0; i < 2*Window; i++ {
				for o := sim.NodeID(1); o <= 4; o++ {
					send(o)
				}
				if i%2 == 0 {
					tick++
					h.buf.Tick(tick)
				}
			}
			for i := 0; i < 2*ForceAfter; i++ {
				tick++
				h.buf.Tick(tick)
			}
			if n := h.buf.PendingLen(); n != 0 {
				t.Fatalf("mode=%v seed=%d: %d entries still pending after convergence", mode, seed, n)
			}
			// The tail of the trace must be unflagged in-order deliveries.
			out := h.take()
			if len(out) == 0 {
				t.Fatalf("mode=%v seed=%d: no deliveries after corruption", mode, seed)
			}
			tail := out
			if len(tail) > 10 {
				tail = tail[len(tail)-10:]
			}
			for _, d := range tail {
				if d.meta.Forced || d.meta.Recovered {
					t.Fatalf("mode=%v seed=%d: tail delivery still flagged: %+v", mode, seed, d)
				}
			}
		}
	}
}

// TestCausalCorruptNeverScramblesUp: causal cursors must only be
// scrambled downward — an upward scramble would fabricate barrier
// coverage.
func TestCausalCorruptNeverScramblesUp(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		h := newHarness(Causal)
		for o := sim.NodeID(1); o <= 4; o++ {
			for s := uint64(1); s <= 10; s++ {
				h.buf.Arrive(pub(o, "x"), s, nil)
			}
		}
		h.take()
		before := map[sim.NodeID]uint64{}
		for id, c := range h.buf.curs {
			before[id] = c.next
		}
		h.buf.Corrupt(rand.New(rand.NewSource(seed)))
		for id, c := range h.buf.curs {
			if c.next > before[id] {
				t.Fatalf("seed=%d: causal cursor %d scrambled up: %d -> %d", seed, id, before[id], c.next)
			}
		}
	}
}
