package ordering

import (
	"sort"

	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
)

// Buffer is one subscriber's ordering state for one topic: the bounded
// per-publisher cursors plus the bounded pending set of publications whose
// gap or barrier is not yet satisfied. It sits between the storage layer
// (which inserts and forwards publications immediately in every mode — the
// trie and the flood are ordering-agnostic) and the application delivery
// callback, reordering only the callback.
//
// The Buffer is not safe for concurrent use; like the rest of a protocol
// node's state it is driven from the node's handler goroutine.
type Buffer struct {
	mode Mode
	self sim.NodeID
	emit func(proto.Publication, Meta)

	now     uint64
	curs    map[sim.NodeID]*cursor
	pending []pend // kept sorted by (origin, seq)
}

// cursor is the bounded FIFO state for one publisher.
type cursor struct {
	// next is the next expected sequence (sequences start at 1; next is 1
	// for a publisher nothing was delivered from, so next-1 is always the
	// highest contiguously delivered sequence).
	next uint64
	// recent is the duplicate-suppression bitmap: bit i set means
	// sequence next-1-i was delivered.
	recent uint64
	// touch is the tick of the last arrival (eviction order).
	touch uint64
	// ancients counts consecutive arrivals far below the bitmap; at
	// ResyncAfter the cursor resyncs downward.
	ancients int
}

// pend is one held publication.
type pend struct {
	p       proto.Publication
	seq     uint64
	barrier []proto.BarrierEntry
	added   uint64
}

// New creates a Buffer for the given mode. emit receives every delivery,
// annotated with its ordering provenance. self is the owning subscriber
// (excluded from its own barrier summaries).
func New(mode Mode, self sim.NodeID, emit func(proto.Publication, Meta)) *Buffer {
	return &Buffer{
		mode: mode,
		self: self,
		emit: emit,
		curs: make(map[sim.NodeID]*cursor),
	}
}

// Mode returns the buffer's delivery mode.
func (b *Buffer) Mode() Mode { return b.mode }

// PendingLen reports how many publications are currently held.
func (b *Buffer) PendingLen() int { return len(b.pending) }

// cur returns (creating, evicting if needed) the cursor for origin.
func (b *Buffer) cur(origin sim.NodeID) *cursor {
	if c, ok := b.curs[origin]; ok {
		return c
	}
	if len(b.curs) >= MaxPublishers {
		b.evictCursor()
	}
	c := &cursor{next: 1, touch: b.now}
	b.curs[origin] = c
	return c
}

// evictCursor removes the least-recently-touched cursor (ties broken by
// the smallest origin, so the choice is independent of map iteration
// order). Pending publications of the evicted publisher are force-
// delivered: at-least-once beats silent loss.
func (b *Buffer) evictCursor() {
	var victim sim.NodeID
	found := false
	for id, c := range b.curs {
		if !found || c.touch < b.curs[victim].touch ||
			(c.touch == b.curs[victim].touch && id < victim) {
			victim, found = id, true
		}
	}
	if !found {
		return
	}
	kept := b.pending[:0]
	var orphans []pend
	for _, e := range b.pending {
		if e.p.Origin == victim {
			orphans = append(orphans, e)
		} else {
			kept = append(kept, e)
		}
	}
	b.pending = kept
	for _, e := range orphans { // already (origin, seq) sorted
		b.emit(e.p, Meta{Seq: e.seq, Forced: true, Barrier: e.barrier})
	}
	delete(b.curs, victim)
}

// advance moves the cursor past seq, shifting the delivered bitmap.
func (c *cursor) advance(seq uint64) {
	delta := seq + 1 - c.next
	if delta >= Window {
		c.recent = 0
	} else {
		c.recent <<= delta
	}
	c.recent |= 1
	c.next = seq + 1
}

// delivered reports whether the bitmap remembers seq (< next) as
// delivered; inWindow is false when seq is below the bitmap's reach.
func (c *cursor) delivered(seq uint64) (dup, inWindow bool) {
	d := c.next - seq
	if d > Window {
		return false, false
	}
	return c.recent&(1<<(d-1)) != 0, true
}

// covered reports whether every barrier entry is satisfied by the local
// cursors (the publication's causal predecessors were delivered here).
func (b *Buffer) covered(barrier []proto.BarrierEntry) bool {
	for _, e := range barrier {
		c, ok := b.curs[e.Origin]
		if !ok || c.next <= e.Seq {
			return false
		}
	}
	return true
}

// Arrive feeds one sequenced publication (the flood path). barrier is nil
// in FIFO mode. Deliveries it unblocks — including previously pending
// publications — are emitted before Arrive returns.
func (b *Buffer) Arrive(p proto.Publication, seq uint64, barrier []proto.BarrierEntry) {
	c := b.cur(p.Origin)
	c.touch = b.now
	b.dispatch(p, seq, barrier)
	b.drain()
}

// dispatch routes one arrival against its cursor: deliver, buffer,
// suppress, declare loss or resync.
func (b *Buffer) dispatch(p proto.Publication, seq uint64, barrier []proto.BarrierEntry) {
	c := b.cur(p.Origin)
	if seq == 0 {
		// A sequenced frame with no sequence is corrupted metadata; hand
		// the payload through flagged rather than inventing an order.
		b.emit(p, Meta{Forced: true})
		return
	}
	switch {
	case seq < c.next:
		b.arriveBelow(c, p, seq, barrier)
	case seq == c.next && b.covered(barrier):
		b.emit(p, Meta{Seq: seq, Barrier: barrier})
		c.advance(seq)
		c.ancients = 0
	case seq >= c.next+Window:
		// Gap declared loss: the missing sequences are either actually
		// lost (anti-entropy will recover the payloads, flagged
		// Recovered) or the cursor is corrupted downward — either way the
		// cursor advances so the stream cannot deadlock.
		m := Meta{Seq: seq, Barrier: barrier}
		if !b.covered(barrier) {
			m.Forced = true
		}
		b.emit(p, m)
		c.advance(seq)
		c.ancients = 0
	default:
		b.hold(p, seq, barrier)
	}
}

// arriveBelow handles a sequence below the cursor: duplicate, straggler,
// or ancient (possible upward cursor corruption).
func (b *Buffer) arriveBelow(c *cursor, p proto.Publication, seq uint64, barrier []proto.BarrierEntry) {
	dup, inWindow := c.delivered(seq)
	switch {
	case dup:
		// Duplicate: already delivered, suppress.
	case inWindow:
		// Straggler: it was declared lost and the cursor moved on.
		// Deliver flagged — at-least-once, outside the order.
		c.recent |= 1 << (c.next - seq - 1)
		c.ancients = 0
		b.emit(p, Meta{Seq: seq, Forced: true, Barrier: barrier})
	default:
		// Ancient: far below the bitmap. A lone ancient is a duplicate
		// from deep history; a run of them means the cursor, not the
		// stream, is wrong (corruption, or a wrapped publisher counter) —
		// resync downward so delivery converges.
		c.ancients++
		if c.ancients >= ResyncAfter {
			c.next = seq + 1
			c.recent = 1
			c.ancients = 0
			b.emit(p, Meta{Seq: seq, Forced: true, Barrier: barrier})
		}
	}
}

// hold buffers a not-yet-deliverable publication in the bounded pending
// set, force-delivering the oldest entry on overflow.
func (b *Buffer) hold(p proto.Publication, seq uint64, barrier []proto.BarrierEntry) {
	for _, e := range b.pending {
		if e.p.Origin == p.Origin && e.seq == seq {
			return // already held
		}
	}
	if len(b.pending) >= PendingCap {
		b.forceOldest()
	}
	i := sort.Search(len(b.pending), func(i int) bool {
		e := b.pending[i]
		return e.p.Origin > p.Origin || (e.p.Origin == p.Origin && e.seq >= seq)
	})
	b.pending = append(b.pending, pend{})
	copy(b.pending[i+1:], b.pending[i:])
	b.pending[i] = pend{p: p, seq: seq, barrier: barrier, added: b.now}
}

// forceOldest force-delivers the longest-held pending entry (ties broken
// by (origin, seq) — the pending set's storage order).
func (b *Buffer) forceOldest() {
	oldest := -1
	for i, e := range b.pending {
		if oldest < 0 || e.added < b.pending[oldest].added {
			oldest = i
		}
	}
	if oldest < 0 {
		return
	}
	e := b.pending[oldest]
	b.pending = append(b.pending[:oldest], b.pending[oldest+1:]...)
	b.force(e)
}

// force emits a pending entry flagged and advances its cursor so the
// publisher's stream keeps moving.
func (b *Buffer) force(e pend) {
	c := b.cur(e.p.Origin)
	if e.seq < c.next {
		if dup, _ := c.delivered(e.seq); dup {
			return
		}
		if d := c.next - e.seq; d <= Window {
			c.recent |= 1 << (d - 1)
		}
	} else {
		c.advance(e.seq)
	}
	b.emit(e.p, Meta{Seq: e.seq, Forced: true, Barrier: e.barrier})
}

// drain delivers pending publications whose condition is now satisfied,
// and resolves entries the cursors have moved past, until a fixpoint. The
// scan order is the pending set's (origin, seq) order — deterministic.
func (b *Buffer) drain() {
	for {
		progressed := false
		for i := 0; i < len(b.pending); i++ {
			e := b.pending[i]
			c := b.cur(e.p.Origin)
			switch {
			case e.seq < c.next:
				// The cursor moved past it while held: duplicate or
				// straggler now.
				b.pending = append(b.pending[:i], b.pending[i+1:]...)
				b.force(e)
				progressed = true
			case e.seq == c.next && b.covered(e.barrier):
				b.pending = append(b.pending[:i], b.pending[i+1:]...)
				b.emit(e.p, Meta{Seq: e.seq, Barrier: e.barrier})
				c.advance(e.seq)
				c.ancients = 0
				progressed = true
			}
			if progressed {
				break
			}
		}
		if !progressed {
			return
		}
	}
}

// Tick advances the buffer's clock and force-delivers pending entries
// older than ForceAfter ticks: causality (and gap-filling) is enforced
// while the metadata is healthy and degrades to bounded-delay delivery
// when it is not.
func (b *Buffer) Tick(now uint64) {
	b.now = now
	for {
		expired := -1
		for i, e := range b.pending {
			if now-e.added >= ForceAfter {
				expired = i
				break // pending is (origin, seq) sorted: first hit is deterministic
			}
		}
		if expired < 0 {
			break
		}
		e := b.pending[expired]
		b.pending = append(b.pending[:expired], b.pending[expired+1:]...)
		b.force(e)
	}
	b.drain()
}

// Recovered emits a publication that arrived through anti-entropy
// reconciliation: it carries no sequencing, so it bypasses the cursors and
// is flagged exempt from the ordering invariants.
func (b *Buffer) Recovered(p proto.Publication) {
	b.emit(p, Meta{Recovered: true})
}

// Barrier summarizes this subscriber's delivery frontier as a bounded
// causal barrier for an outgoing publication: the BarrierCap highest
// delivered sequences across tracked publishers, excluding self. Eviction
// (smallest sequence first, ties by smallest origin) is deterministic.
func (b *Buffer) Barrier() []proto.BarrierEntry {
	if b.mode != Causal {
		return nil
	}
	entries := make([]proto.BarrierEntry, 0, len(b.curs))
	for id, c := range b.curs {
		if id == b.self || c.next <= 1 {
			continue
		}
		entries = append(entries, proto.BarrierEntry{Origin: id, Seq: c.next - 1})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Seq != entries[j].Seq {
			return entries[i].Seq > entries[j].Seq
		}
		return entries[i].Origin < entries[j].Origin
	})
	if len(entries) > BarrierCap {
		entries = entries[:BarrierCap]
	}
	return entries
}
