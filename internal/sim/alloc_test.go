package sim

import (
	"fmt"
	"testing"
)

type nopHandler struct{}

func (nopHandler) OnMessage(Context, Message) {}
func (nopHandler) OnTimeout(Context)          {}

// testBody is deliberately NOT in the wire registry: it exercises the
// lazily-cached branch of TypeName.
type testBody struct{ X int }

// TestSchedulerHotPathAllocFree pins the scheduler's per-message cost at
// zero allocations: with the body pre-boxed and the event heap warm,
// Send + Step (schedule, deliver, account) must not touch the allocator.
// This is the deterministic substrate's share of the zero-allocation
// hot-path contract.
func TestSchedulerHotPathAllocFree(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Seed: 1})
	s.AddNode(1, nopHandler{})
	s.AddNode(2, nopHandler{})
	var body any = testBody{X: 7}
	m := Message{To: 2, From: 1, Topic: 1, Body: body}
	// Warm: grow the event heap and the accounting maps, cache the type
	// name, and run a few timeout cycles.
	for i := 0; i < 256; i++ {
		s.Send(m)
	}
	s.RunRounds(3)
	avg := testing.AllocsPerRun(500, func() {
		s.Send(m)
		for s.InFlight() > 0 {
			s.Step()
		}
	})
	if avg != 0 {
		t.Errorf("Send+Step allocates %.2f objects/op, want 0", avg)
	}
}

// TestTypeNameMatchesReflection: TypeName must render exactly what
// fmt.Sprintf("%T", …) renders, for registered and unregistered types,
// pointers, and nil.
func TestTypeNameMatchesReflection(t *testing.T) {
	for _, body := range []any{testBody{}, &testBody{}, nil, "str", 42} {
		want := fmt.Sprintf("%T", body)
		if got := TypeName(body); got != want {
			t.Errorf("TypeName(%v) = %q, want %q", body, got, want)
		}
		// Second call exercises the cached branch.
		if got := TypeName(body); got != want {
			t.Errorf("cached TypeName(%v) = %q, want %q", body, got, want)
		}
	}
}

// TestCountByTypeAndTypeNames pins the accounting semantics across the
// type-tag refactor: counts key on the %T rendering of the body's
// concrete type, count at send time (even if delivery later drops), and
// TypeNames returns every name seen, sorted.
func TestCountByTypeAndTypeNames(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Seed: 2})
	s.AddNode(1, nopHandler{})
	send := func(body any, times int) {
		for i := 0; i < times; i++ {
			s.Send(Message{To: 1, From: 1, Topic: 1, Body: body})
		}
	}
	send(testBody{}, 3)
	send(&testBody{}, 2)
	send("corrupted-string-body", 1)
	s.Send(Message{To: 99, From: 1, Topic: 1, Body: testBody{}}) // dropped at delivery, still counted
	s.RunRounds(2)

	for name, want := range map[string]int64{
		"sim.testBody":  4,
		"*sim.testBody": 2,
		"string":        1,
		"sim.neverSeen": 0,
	} {
		if got := s.CountByType(name); got != want {
			t.Errorf("CountByType(%q) = %d, want %d", name, got, want)
		}
	}

	names := s.TypeNames()
	want := []string{"*sim.testBody", "sim.testBody", "string"}
	if len(names) != len(want) {
		t.Fatalf("TypeNames = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("TypeNames = %v, want %v (sorted)", names, want)
		}
	}

	s.ResetCounters()
	if got := s.CountByType("sim.testBody"); got != 0 {
		t.Errorf("after ResetCounters, CountByType = %d, want 0", got)
	}
	if got := s.TypeNames(); len(got) != 0 {
		t.Errorf("after ResetCounters, TypeNames = %v, want empty", got)
	}
}
