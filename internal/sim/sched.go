package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"unsafe"
)

// SchedulerOptions configure a deterministic simulation.
type SchedulerOptions struct {
	// Seed drives all randomness (message delays, timeout phases, protocol
	// coin flips). Two runs with equal seeds and equal call sequences are
	// bit-identical.
	Seed int64
	// MinDelay and MaxDelay bound message delivery delay, in timeout
	// intervals. Delays are drawn uniformly, so delivery is non-FIFO.
	// Defaults: 0.05 and 0.95.
	MinDelay, MaxDelay float64
	// DetectorGrace is how long after a crash the failure detector keeps
	// answering "alive" — it models the eventually-correct detector of
	// Section 3.3. Default 2 intervals.
	DetectorGrace float64
	// MaxQueuedEvents, when positive, caps the event queue: a Send that
	// would push the queue past the ceiling drops the message instead
	// (counted in OverflowDropped). Timeout events are never dropped —
	// losing one would silently kill a node's self-renewing chain. The
	// scale harness sets this so a 10^6-subscriber run degrades by
	// shedding load instead of exhausting memory. 0 means unbounded.
	MaxQueuedEvents int
	// Trace, if non-nil, receives every delivered message and fired timeout.
	Trace func(format string, args ...any)
}

// Scheduler is a deterministic discrete-event executor for Handlers.
// Virtual time is measured in timeout intervals: every registered node
// fires its Timeout action exactly once per unit of virtual time (at a
// per-node random phase), and messages are delivered with random sub-unit
// delays. This realizes the paper's fully asynchronous model with fair
// message receipt and weakly fair action execution, while keeping runs
// reproducible.
type Scheduler struct {
	opts    SchedulerOptions
	rng     *rand.Rand
	now     float64
	seq     int64
	events  eventHeap
	nodes   map[NodeID]*schedNode
	crashed map[NodeID]float64 // node → crash time

	inFlight  int // message events currently queued
	highWater int // max queued-event count ever observed

	// fault, when non-nil, filters every Send (after accounting): drops,
	// duplicates or delays messages to model adversarial channels. The
	// chaos engine installs it; nil means a healthy channel.
	fault FaultFunc

	// ctx is the single Context handed to every handler invocation; only
	// its node binding changes per event. Handlers must not retain it
	// beyond the call (the Context contract), so reusing one value keeps
	// the delivery path free of per-event allocations.
	ctx schedCtx

	// accounting
	delivered  int64
	dropped    int64
	overflow   int64 // messages shed by the MaxQueuedEvents ceiling
	byType     map[string]int64
	sentBy     map[NodeID]int64
	receivedBy map[NodeID]int64
}

type schedNode struct {
	id    NodeID
	h     Handler
	owner NodeID // non-⊥ for listeners: the pool node handling our traffic
	phase float64
	next  float64 // next timeout
	// gen distinguishes incarnations of the same node ID: a crashed node's
	// stale evTimeout may still sit in the queue when the ID is re-added
	// (restart), and without the generation check it would resurrect into a
	// second self-renewing timeout chain for the restarted node.
	gen int64
}

type evKind uint8

const (
	evDeliver evKind = iota
	evTimeout
)

type event struct {
	t    float64
	seq  int64 // tie-break for determinism
	kind evKind
	msg  Message
	node NodeID
	gen  int64 // timeout events: the node incarnation that scheduled it
}

func (e event) before(o event) bool {
	if e.t != o.t {
		return e.t < o.t
	}
	return e.seq < o.seq
}

// eventHeap is a binary min-heap laid out directly in a slice. It
// deliberately does not implement container/heap: that interface forces
// every Push and Pop through an `any` conversion, which boxes the event
// struct on the heap once per scheduled message. Operating on the slice
// in place keeps entries pooled in the slice's capacity, so the
// steady-state schedule/deliver cycle performs no allocations at all.
type eventHeap []event

func (h eventHeap) peekTime() float64 { return h[0].t }

func (h *eventHeap) pushEvent(e event) {
	s := append(*h, e)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s[i].before(s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

func (h *eventHeap) popEvent() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release the Body reference held in the vacated slot
	s = s[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && s[c+1].before(s[c]) {
			c++
		}
		if !s[c].before(s[i]) {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	*h = s
	return top
}

// NewScheduler creates an empty deterministic simulation.
func NewScheduler(opts SchedulerOptions) *Scheduler {
	if opts.MaxDelay == 0 {
		opts.MaxDelay = 0.95
	}
	if opts.MinDelay == 0 {
		opts.MinDelay = 0.05
	}
	if opts.DetectorGrace == 0 {
		opts.DetectorGrace = 2
	}
	return &Scheduler{
		opts:       opts,
		rng:        rand.New(rand.NewSource(opts.Seed)),
		nodes:      make(map[NodeID]*schedNode),
		crashed:    make(map[NodeID]float64),
		byType:     make(map[string]int64),
		sentBy:     make(map[NodeID]int64),
		receivedBy: make(map[NodeID]int64),
	}
}

// AddNode registers a handler under the given ID and schedules its periodic
// Timeout action starting at a random phase within the current interval.
func (s *Scheduler) AddNode(id NodeID, h Handler) {
	if id == None {
		panic("sim: cannot add node with ID 0")
	}
	if _, dup := s.nodes[id]; dup {
		panic(fmt.Sprintf("sim: duplicate node %d", id))
	}
	n := &schedNode{id: id, h: h, phase: s.rng.Float64(), gen: s.seq}
	n.next = s.now + n.phase
	s.nodes[id] = n
	// Re-adding a crashed ID is a restart: the failure detector must stop
	// suspecting it (mirrors the concurrent runtime's Restart semantics).
	delete(s.crashed, id)
	s.push(event{t: n.next, kind: evTimeout, node: id, gen: n.gen})
}

// AddListener registers id as a virtual alias of an existing owner node:
// messages addressed to id are handled by the owner's handler (with the
// Message.To field still naming id), and id owns no periodic timeout chain.
// This is the multiplexing seam for the scale harness: one physical pool
// node (AddNode) drives the timeouts of thousands of virtual subscribers,
// while each virtual ID is a listener routing its inbound traffic back to
// the pool. A listener costs one map entry instead of one self-renewing
// timeout event, which is what makes 10^6 registered IDs tractable. The
// owner is resolved at delivery time, so messages to a listener whose
// owner has crashed are dropped — a pool crash fails all of its virtual
// subscribers, exactly like a machine hosting many processes. Listeners
// can Crash, be removed and be suspected like full nodes.
func (s *Scheduler) AddListener(id, owner NodeID) {
	if id == None {
		panic("sim: cannot add listener with ID 0")
	}
	if owner == None {
		panic("sim: listener needs a non-⊥ owner")
	}
	if _, dup := s.nodes[id]; dup {
		panic(fmt.Sprintf("sim: duplicate node %d", id))
	}
	s.nodes[id] = &schedNode{id: id, owner: owner, gen: -1}
	delete(s.crashed, id)
}

// RemoveNode gracefully deregisters a node (used for unsubscribed clients
// that leave the system; in-flight messages to it are dropped on delivery).
func (s *Scheduler) RemoveNode(id NodeID) { delete(s.nodes, id) }

// Close implements Transport; the discrete-event scheduler owns no
// goroutines or OS resources, so it is a no-op.
func (s *Scheduler) Close() {}

var _ Transport = (*Scheduler)(nil)

// Crash marks the node as failed without warning (Section 3.3): it stops
// executing actions and all messages addressed to it vanish. The failure
// detector starts suspecting it after the configured grace period.
func (s *Scheduler) Crash(id NodeID) {
	if _, ok := s.nodes[id]; !ok {
		return
	}
	s.crashed[id] = s.now
	delete(s.nodes, id)
}

// Crashed reports whether the node has crashed.
func (s *Scheduler) Crashed(id NodeID) bool {
	_, ok := s.crashed[id]
	return ok
}

// Suspects implements Detector with the configured grace period.
func (s *Scheduler) Suspects(id NodeID) bool {
	t, ok := s.crashed[id]
	return ok && s.now >= t+s.opts.DetectorGrace
}

// Now returns the current virtual time in timeout intervals.
func (s *Scheduler) Now() float64 { return s.now }

func (s *Scheduler) push(e event) {
	e.seq = s.seq
	s.seq++
	s.events.pushEvent(e)
	if len(s.events) > s.highWater {
		s.highWater = len(s.events)
	}
}

// SetFault installs (or clears, with nil) the transport-layer fault filter.
// The filter sees every Send after the accounting step; a dropped message
// counts toward Dropped(), a duplicated one is delivered twice with
// independent delays, a delayed one arrives several intervals late (so
// later traffic overtakes it). Fault decisions consume scheduler
// randomness deterministically, so faulted runs replay from their seed.
func (s *Scheduler) SetFault(f FaultFunc) { s.fault = f }

// Send queues a message with a random delay. It is also usable directly by
// test harnesses to inject well-formed traffic.
func (s *Scheduler) Send(m Message) {
	if m.To == None {
		s.dropped++
		return
	}
	s.sentBy[m.From]++
	s.byType[TypeName(m.Body)]++
	copies, extra := 1, 0.0
	if s.fault != nil {
		switch s.fault(m) {
		case FaultDrop:
			s.dropped++
			return
		case FaultDup:
			copies = 2
		case FaultDelay:
			// 1–4 extra intervals: enough for a full timeout's worth of
			// newer traffic to overtake the held message.
			extra = 1 + 3*s.rng.Float64()
		}
	}
	for i := 0; i < copies; i++ {
		// Draw the delay even when the ceiling sheds the copy, so enabling
		// MaxQueuedEvents never perturbs the random sequence of the
		// messages that do get through.
		delay := s.opts.MinDelay + s.rng.Float64()*(s.opts.MaxDelay-s.opts.MinDelay)
		if s.opts.MaxQueuedEvents > 0 && len(s.events) >= s.opts.MaxQueuedEvents {
			s.dropped++
			s.overflow++
			continue
		}
		s.inFlight++
		s.push(event{t: s.now + delay + extra, kind: evDeliver, msg: m})
	}
}

// InjectAt places an arbitrary (possibly corrupted) message into the event
// queue at the given virtual time, modelling the paper's arbitrary initial
// channel contents.
func (s *Scheduler) InjectAt(t float64, m Message) {
	s.inFlight++
	s.push(event{t: t, kind: evDeliver, msg: m})
}

// Step executes the next event. It returns false when no events remain
// (which cannot happen while any node is registered, since timeouts renew).
func (s *Scheduler) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := s.events.popEvent()
	if e.t > s.now {
		s.now = e.t
	}
	switch e.kind {
	case evDeliver:
		s.inFlight--
		n, ok := s.nodes[e.msg.To]
		if !ok {
			s.dropped++
			return true
		}
		h := n.h
		if n.owner != None {
			o, up := s.nodes[n.owner]
			if !up {
				s.dropped++ // owner pool crashed: its listeners fail with it
				return true
			}
			h = o.h
		}
		s.delivered++
		s.receivedBy[e.msg.To]++
		if s.opts.Trace != nil {
			s.opts.Trace("%.3f deliver %s", s.now, e.msg)
		}
		s.ctx = schedCtx{s: s, id: e.msg.To}
		h.OnMessage(&s.ctx, e.msg)
	case evTimeout:
		n, ok := s.nodes[e.node]
		if !ok || n.gen != e.gen {
			// Crashed, removed, or a stale chain from a previous incarnation
			// of a restarted ID: let it die (the restart pushed its own).
			return true
		}
		if s.opts.Trace != nil {
			s.opts.Trace("%.3f timeout %d", s.now, e.node)
		}
		s.ctx = schedCtx{s: s, id: e.node}
		n.h.OnTimeout(&s.ctx)
		n.next += 1
		s.push(event{t: n.next, kind: evTimeout, node: e.node, gen: n.gen})
	}
	return true
}

// RunUntil advances virtual time to t (exclusive of later events).
func (s *Scheduler) RunUntil(t float64) {
	for len(s.events) > 0 && s.events.peekTime() <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunRounds advances by k timeout intervals.
func (s *Scheduler) RunRounds(k int) { s.RunUntil(s.now + float64(k)) }

// RunRoundsUntil advances round by round until pred returns true or maxRounds
// elapsed; it returns the number of whole rounds executed and whether pred
// held. pred is evaluated after each round.
func (s *Scheduler) RunRoundsUntil(maxRounds int, pred func() bool) (rounds int, ok bool) {
	if pred() {
		return 0, true
	}
	for r := 1; r <= maxRounds; r++ {
		s.RunRounds(1)
		if pred() {
			return r, true
		}
	}
	return maxRounds, false
}

// InFlight returns the number of queued message deliveries.
func (s *Scheduler) InFlight() int { return s.inFlight }

// QueueLen returns the total number of queued events (deliveries plus
// pending timeouts) — the quantity MaxQueuedEvents caps.
func (s *Scheduler) QueueLen() int { return len(s.events) }

// OverflowDropped returns how many messages the MaxQueuedEvents ceiling has
// shed so far (a subset of Dropped). A non-zero value on a scale run means
// the configured ceiling, not the protocol, bounded the measurement.
func (s *Scheduler) OverflowDropped() int64 { return s.overflow }

// QueueMemoryBytes estimates the event queue's resident footprint: the
// heap slice's full capacity (slots persist across pops) at the static
// event size. Message bodies are counted by pointer only — they are shared
// with handler state, so attributing them here would double-count.
func (s *Scheduler) QueueMemoryBytes() uint64 {
	return uint64(cap(s.events)) * uint64(unsafe.Sizeof(event{}))
}

// QueueHighWaterBytes returns the queue's high-water footprint: the
// maximum queued-event count ever observed (tracked on every push) at the
// static event size. Unlike QueueMemoryBytes it is exact and deterministic
// — it cannot under-report a spike that drained before sampling, nor
// over-report slack capacity the growth policy happened to allocate.
func (s *Scheduler) QueueHighWaterBytes() uint64 {
	return uint64(s.highWater) * uint64(unsafe.Sizeof(event{}))
}

// Delivered returns the total number of delivered messages.
func (s *Scheduler) Delivered() int64 { return s.delivered }

// Dropped returns messages dropped (sent to ⊥, crashed or removed nodes).
func (s *Scheduler) Dropped() int64 { return s.dropped }

// SentBy returns the number of messages node id has sent so far.
func (s *Scheduler) SentBy(id NodeID) int64 { return s.sentBy[id] }

// ReceivedBy returns the number of messages delivered to node id so far.
func (s *Scheduler) ReceivedBy(id NodeID) int64 { return s.receivedBy[id] }

// CountByType returns the number of sends per message body type name.
func (s *Scheduler) CountByType(typeName string) int64 { return s.byType[typeName] }

// TypeNames returns all message body type names seen, sorted.
func (s *Scheduler) TypeNames() []string {
	out := make([]string, 0, len(s.byType))
	for k := range s.byType {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ResetCounters zeroes the message accounting (used to measure steady-state
// rates after convergence).
func (s *Scheduler) ResetCounters() {
	s.delivered, s.dropped, s.overflow = 0, 0, 0
	s.byType = make(map[string]int64)
	s.sentBy = make(map[NodeID]int64)
	s.receivedBy = make(map[NodeID]int64)
}

// Rand exposes the scheduler's random source for workload generation.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// NodeIDs returns the IDs of all live registered nodes, sorted.
func (s *Scheduler) NodeIDs() []NodeID {
	out := make([]NodeID, 0, len(s.nodes))
	for id := range s.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Handler returns the handler registered under id, or nil. For a listener
// it resolves the owning pool's handler.
func (s *Scheduler) Handler(id NodeID) Handler {
	n, ok := s.nodes[id]
	if !ok {
		return nil
	}
	if n.owner != None {
		if o, up := s.nodes[n.owner]; up {
			return o.h
		}
		return nil
	}
	return n.h
}

// schedCtx binds the scheduler to the currently executing node.
type schedCtx struct {
	s  *Scheduler
	id NodeID
}

func (c *schedCtx) Self() NodeID { return c.id }
func (c *schedCtx) Send(to NodeID, topic Topic, body any) {
	c.s.Send(Message{To: to, From: c.id, Topic: topic, Body: body})
}
func (c *schedCtx) Rand() *rand.Rand { return c.s.rng }
func (c *schedCtx) Now() float64     { return c.s.now }
