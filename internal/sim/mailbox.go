package sim

import "sync"

// Mailbox is an unbounded, loss-free message queue: the paper's channel
// abstraction ("we assume a channel to be able to store any finite number
// of messages, and messages are never duplicated or get lost"). Push never
// blocks; Pop returns false when the box is empty or closed.
type Mailbox struct {
	mu     sync.Mutex
	q      []Message
	notify chan struct{}
	closed bool
}

// NewMailbox creates an empty mailbox.
func NewMailbox() *Mailbox {
	return &Mailbox{notify: make(chan struct{}, 1)}
}

// Push enqueues a message. Pushing to a closed mailbox drops the message,
// mirroring sends to crashed nodes.
func (b *Mailbox) Push(m Message) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.q = append(b.q, m)
	b.mu.Unlock()
	select {
	case b.notify <- struct{}{}:
	default:
	}
}

// Pop dequeues the oldest message. The second result is false when empty.
func (b *Mailbox) Pop() (Message, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.q) == 0 {
		return Message{}, false
	}
	m := b.q[0]
	b.q = b.q[1:]
	return m, true
}

// Len returns the number of queued messages.
func (b *Mailbox) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.q)
}

// Wait returns a channel that receives a token when messages may be
// available. Consumers drain with Pop until false, then Wait again.
func (b *Mailbox) Wait() <-chan struct{} { return b.notify }

// Close marks the mailbox closed and discards queued messages.
func (b *Mailbox) Close() {
	b.mu.Lock()
	b.closed = true
	b.q = nil
	b.mu.Unlock()
}
