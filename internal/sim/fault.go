package sim

// FaultAction is the verdict a transport-layer fault filter returns for one
// outgoing message. Faults model the adversarial channel of Section 3.3:
// channels may lose, duplicate and reorder messages, and self-stabilization
// must absorb all of it once the faults stop.
type FaultAction uint8

const (
	// FaultDeliver lets the message through unchanged.
	FaultDeliver FaultAction = iota
	// FaultDrop loses the message (counted as a drop by the substrate).
	FaultDrop
	// FaultDup delivers the message twice, each copy independently delayed.
	FaultDup
	// FaultDelay holds the message back by several timeout intervals before
	// delivery, so later traffic overtakes it (reordering).
	FaultDelay
)

// String names the action for scenario traces.
func (a FaultAction) String() string {
	switch a {
	case FaultDeliver:
		return "deliver"
	case FaultDrop:
		return "drop"
	case FaultDup:
		return "dup"
	case FaultDelay:
		return "delay"
	}
	return "unknown"
}

// FaultFunc inspects an outgoing message after the send-side accounting and
// decides its fate. It must be fast and must not call back into the
// substrate. A nil FaultFunc means a healthy channel.
//
// On the deterministic Scheduler the filter runs on the driver goroutine;
// on the live substrates it runs on whichever goroutine sends, so an
// installed filter must be safe for concurrent use.
type FaultFunc func(m Message) FaultAction

// FaultInjectable is implemented by every execution substrate that supports
// transport-layer fault injection (the chaos engine drives it through this
// interface).
type FaultInjectable interface {
	// SetFault installs (or, with nil, removes) the fault filter. Replacing
	// a filter takes effect for subsequent sends; messages already delayed
	// by a previous filter still arrive.
	SetFault(f FaultFunc)
}
