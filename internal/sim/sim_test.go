package sim

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// echoNode counts timeouts and bounces every message back to its sender.
type echoNode struct {
	timeouts int
	got      []Message
	bounce   bool
}

func (e *echoNode) OnMessage(ctx Context, m Message) {
	e.got = append(e.got, m)
	if e.bounce {
		ctx.Send(m.From, m.Topic, "ack")
	}
}
func (e *echoNode) OnTimeout(ctx Context) { e.timeouts++ }

func TestSchedulerTimeoutsOncePerRound(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Seed: 7})
	nodes := make([]*echoNode, 10)
	for i := range nodes {
		nodes[i] = &echoNode{}
		s.AddNode(NodeID(i+1), nodes[i])
	}
	const rounds = 50
	s.RunRounds(rounds)
	for i, n := range nodes {
		if n.timeouts != rounds {
			t.Errorf("node %d fired %d timeouts in %d rounds", i+1, n.timeouts, rounds)
		}
	}
}

func TestSchedulerDelivery(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Seed: 1})
	a, b := &echoNode{}, &echoNode{bounce: true}
	s.AddNode(1, a)
	s.AddNode(2, b)
	s.Send(Message{To: 2, From: 1, Topic: 3, Body: "hello"})
	s.RunRounds(2)
	if len(b.got) != 1 || b.got[0].Body != "hello" || b.got[0].Topic != 3 {
		t.Fatalf("b received %v", b.got)
	}
	if len(a.got) != 1 || a.got[0].Body != "ack" {
		t.Fatalf("a received %v", a.got)
	}
	if s.Delivered() != 2 || s.InFlight() != 0 {
		t.Errorf("delivered=%d inFlight=%d", s.Delivered(), s.InFlight())
	}
	if s.CountByType("string") != 2 {
		t.Errorf("CountByType(string) = %d", s.CountByType("string"))
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	run := func() []int {
		s := NewScheduler(SchedulerOptions{Seed: 42})
		nodes := make([]*pingAll, 8)
		for i := range nodes {
			nodes[i] = &pingAll{n: 8}
			s.AddNode(NodeID(i+1), nodes[i])
		}
		s.RunRounds(20)
		out := make([]int, 8)
		for i, n := range nodes {
			out[i] = n.received
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: %v vs %v", a, b)
		}
	}
}

// pingAll sends one message to a random peer per timeout.
type pingAll struct {
	n        int
	received int
}

func (p *pingAll) OnMessage(ctx Context, m Message) { p.received++ }
func (p *pingAll) OnTimeout(ctx Context) {
	peer := NodeID(ctx.Rand().Intn(p.n) + 1)
	if peer != ctx.Self() {
		ctx.Send(peer, 0, "ping")
	}
}

func TestSchedulerCrashAndDetector(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Seed: 3, DetectorGrace: 2})
	a, b := &echoNode{}, &echoNode{}
	s.AddNode(1, a)
	s.AddNode(2, b)
	s.RunRounds(1)
	s.Crash(2)
	if s.Suspects(2) {
		t.Error("detector must not suspect within the grace period")
	}
	s.Send(Message{To: 2, From: 1, Body: "x"})
	got := b.timeouts
	s.RunRounds(3)
	if b.timeouts != got {
		t.Error("crashed node executed a timeout")
	}
	if len(b.got) != 0 {
		t.Error("crashed node received a message")
	}
	if !s.Suspects(2) {
		t.Error("detector should suspect after the grace period")
	}
	if s.Suspects(1) {
		t.Error("detector must never suspect a live node")
	}
	if s.Dropped() == 0 {
		t.Error("message to crashed node should count as dropped")
	}
}

func TestSchedulerInjectCorrupted(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Seed: 9})
	a := &echoNode{}
	s.AddNode(1, a)
	s.InjectAt(0.1, Message{To: 1, From: 99, Body: "garbage"})
	s.InjectAt(0.2, Message{To: 55, From: 1, Body: "to nobody"})
	s.RunRounds(1)
	if len(a.got) != 1 || a.got[0].Body != "garbage" {
		t.Fatalf("corrupted message not delivered: %v", a.got)
	}
	if s.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", s.Dropped())
	}
}

func TestSchedulerRunRoundsUntil(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Seed: 5})
	a := &echoNode{}
	s.AddNode(1, a)
	rounds, ok := s.RunRoundsUntil(100, func() bool { return a.timeouts >= 10 })
	if !ok || rounds != 10 {
		t.Errorf("rounds=%d ok=%v, want 10,true", rounds, ok)
	}
	if _, ok := s.RunRoundsUntil(5, func() bool { return false }); ok {
		t.Error("pred never true must report !ok")
	}
}

// Mailbox property: n pushes from k goroutines are all popped exactly once.
func TestMailboxNoLossNoDup(t *testing.T) {
	f := func(counts []uint8) bool {
		if len(counts) > 8 {
			counts = counts[:8]
		}
		mb := NewMailbox()
		var want int64
		var wg sync.WaitGroup
		for gi, c := range counts {
			n := int(c%50) + 1
			want += int64(n)
			wg.Add(1)
			go func(gi, n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					mb.Push(Message{From: NodeID(gi + 1), Body: i})
				}
			}(gi, n)
		}
		wg.Wait()
		var got int64
		for {
			_, ok := mb.Pop()
			if !ok {
				break
			}
			got++
		}
		return got == want && mb.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMailboxClose(t *testing.T) {
	mb := NewMailbox()
	mb.Push(Message{Body: 1})
	mb.Close()
	if _, ok := mb.Pop(); ok {
		t.Error("pop after close should fail")
	}
	mb.Push(Message{Body: 2}) // must not panic, silently dropped
	if mb.Len() != 0 {
		t.Error("push after close should drop")
	}
}

// counterNode counts both callbacks atomically (live runtime is concurrent).
type counterNode struct {
	timeouts atomic.Int64
	messages atomic.Int64
	peer     NodeID
}

func (c *counterNode) OnMessage(ctx Context, m Message) {
	c.messages.Add(1)
	if c.peer != None && m.Body == "ping" {
		ctx.Send(m.From, m.Topic, "pong")
	}
}
func (c *counterNode) OnTimeout(ctx Context) {
	c.timeouts.Add(1)
	if c.peer != None {
		ctx.Send(c.peer, 1, "ping")
	}
}

func TestRuntimeLiveExchange(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{Interval: time.Millisecond, Seed: 11})
	defer rt.Close()
	a := &counterNode{peer: 2}
	b := &counterNode{peer: 1}
	rt.AddNode(1, a)
	rt.AddNode(2, b)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if a.messages.Load() > 5 && b.messages.Load() > 5 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if a.messages.Load() == 0 || b.messages.Load() == 0 {
		t.Fatalf("no live message exchange: a=%d b=%d", a.messages.Load(), b.messages.Load())
	}
	if a.timeouts.Load() == 0 {
		t.Error("live timeouts did not fire")
	}
}

func TestRuntimeRemoveNodeStopsDelivery(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{Interval: time.Millisecond})
	defer rt.Close()
	b := &counterNode{}
	rt.AddNode(2, b)
	rt.RemoveNode(2)
	if !rt.Suspects(2) {
		t.Error("runtime detector should suspect a removed node")
	}
	rt.Send(Message{To: 2, From: 1, Body: "x"})
	time.Sleep(5 * time.Millisecond)
	if b.messages.Load() != 0 {
		t.Error("removed node received a message")
	}
	if rt.Dropped() == 0 {
		t.Error("send to removed node should count as dropped")
	}
}

func TestRuntimeCloseIdempotentAndQuiet(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{Interval: time.Millisecond})
	for i := 1; i <= 20; i++ {
		rt.AddNode(NodeID(i), &counterNode{peer: NodeID(i%20 + 1)})
	}
	time.Sleep(10 * time.Millisecond)
	rt.Close()
	rt.Close() // second close must not panic or deadlock
}
