package sim

import (
	"fmt"
	"reflect"
	"sync"
)

// typeNames caches the display name of every message body type the
// accounting layer has seen (reflect.Type → string). Formatting a type
// name with fmt.Sprintf("%T", …) allocates on every call, which used to
// be the single largest per-send cost of both the deterministic Scheduler
// and the concurrent runtime; the cache makes the steady-state lookup
// allocation-free. The wire codec's registry pre-populates it through
// RegisterTypeName so the accounting names and the codec's canonical
// self-description come from one table.
var typeNames sync.Map // reflect.Type (nil for nil bodies) → string

// TypeName returns the accounting name of a message body — exactly what
// fmt.Sprintf("%T", body) would produce — from a per-type cache. The
// first sight of a type formats and caches it; every later call is an
// allocation-free map read.
func TypeName(body any) string {
	t := reflect.TypeOf(body)
	if s, ok := typeNames.Load(t); ok {
		return s.(string)
	}
	s := fmt.Sprintf("%T", body)
	typeNames.Store(t, s)
	return s
}

// RegisterTypeName seeds the type-name cache. The wire registry calls it
// for every registered message type so the scheduler's CountByType keys,
// the concurrent runtime's accounting and the codec's tag table all share
// one canonical name per type. name must equal fmt.Sprintf("%T", zero);
// TypeName would otherwise diverge from its documented contract.
func RegisterTypeName(zero any, name string) {
	typeNames.Store(reflect.TypeOf(zero), name)
}
