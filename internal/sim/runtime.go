package sim

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// RuntimeOptions configure a live (goroutine-per-node) execution.
type RuntimeOptions struct {
	// Interval is the real-time length of one timeout interval.
	// Default 10ms — fast enough for interactive examples, slow enough to
	// keep the supervisor's round-robin visible.
	Interval time.Duration
	// Seed drives the per-node random sources. Live runs are not
	// deterministic (goroutine interleaving), but seeding keeps protocol
	// coin flips reproducible in aggregate.
	Seed int64
}

// Runtime executes Handlers live: one goroutine and one unbounded mailbox
// per node, with a real ticker driving the Timeout action. It implements
// the same Context contract as the deterministic Scheduler, so the exact
// protocol code runs unchanged.
type Runtime struct {
	opts  RuntimeOptions
	start time.Time

	mu    sync.RWMutex
	nodes map[NodeID]*liveNode
	seedC int64

	sent    atomic.Int64
	dropped atomic.Int64

	wg sync.WaitGroup
}

type liveNode struct {
	id   NodeID
	h    Handler
	mbox *Mailbox
	rng  *rand.Rand // used only from the node's own goroutine
	stop chan struct{}
	rt   *Runtime
}

// NewRuntime creates a live execution environment.
func NewRuntime(opts RuntimeOptions) *Runtime {
	if opts.Interval == 0 {
		opts.Interval = 10 * time.Millisecond
	}
	return &Runtime{
		opts:  opts,
		start: time.Now(),
		nodes: make(map[NodeID]*liveNode),
		seedC: opts.Seed,
	}
}

// AddNode registers and starts a node goroutine.
func (r *Runtime) AddNode(id NodeID, h Handler) {
	r.mu.Lock()
	if _, dup := r.nodes[id]; dup {
		r.mu.Unlock()
		panic("sim: duplicate live node")
	}
	r.seedC++
	n := &liveNode{
		id:   id,
		h:    h,
		mbox: NewMailbox(),
		rng:  rand.New(rand.NewSource(r.seedC*0x9e3779b9 + 1)),
		stop: make(chan struct{}),
		rt:   r,
	}
	r.nodes[id] = n
	r.mu.Unlock()

	r.wg.Add(1)
	go n.loop(r.opts.Interval)
}

// RemoveNode stops a node's goroutine and discards its mailbox. Messages
// already in flight to it are dropped — an unannounced crash (Section 3.3).
func (r *Runtime) RemoveNode(id NodeID) {
	r.mu.Lock()
	n, ok := r.nodes[id]
	if ok {
		delete(r.nodes, id)
	}
	r.mu.Unlock()
	if ok {
		close(n.stop)
		n.mbox.Close()
	}
}

// Crash implements Transport. On this runtime an unannounced crash and a
// graceful removal coincide: the goroutine stops and queued messages are
// discarded.
func (r *Runtime) Crash(id NodeID) { r.RemoveNode(id) }

var _ Transport = (*Runtime)(nil)

// Suspects implements Detector: the live runtime knows crashes immediately
// (grace period zero), which satisfies eventual correctness trivially.
func (r *Runtime) Suspects(id NodeID) bool {
	r.mu.RLock()
	_, ok := r.nodes[id]
	r.mu.RUnlock()
	return !ok
}

// Send routes a message to the target's mailbox.
func (r *Runtime) Send(m Message) {
	if m.To == None {
		r.dropped.Add(1)
		return
	}
	r.mu.RLock()
	n, ok := r.nodes[m.To]
	r.mu.RUnlock()
	if !ok {
		r.dropped.Add(1)
		return
	}
	r.sent.Add(1)
	n.mbox.Push(m)
}

// Sent returns the total number of routed messages.
func (r *Runtime) Sent() int64 { return r.sent.Load() }

// Dropped returns the number of messages sent to missing nodes.
func (r *Runtime) Dropped() int64 { return r.dropped.Load() }

// Close stops all node goroutines and waits for them to exit.
func (r *Runtime) Close() {
	r.mu.Lock()
	nodes := make([]*liveNode, 0, len(r.nodes))
	for _, n := range r.nodes {
		nodes = append(nodes, n)
	}
	r.nodes = make(map[NodeID]*liveNode)
	r.mu.Unlock()
	for _, n := range nodes {
		close(n.stop)
		n.mbox.Close()
	}
	r.wg.Wait()
}

func (n *liveNode) loop(interval time.Duration) {
	defer n.rt.wg.Done()
	// Random phase so node timeouts are spread across the interval, as in
	// the deterministic scheduler.
	phase := time.Duration(n.rng.Int63n(int64(interval)))
	timer := time.NewTimer(phase)
	defer timer.Stop()
	ctx := &liveCtx{n: n}
	for {
		select {
		case <-n.stop:
			return
		case <-timer.C:
			n.h.OnTimeout(ctx)
			timer.Reset(interval)
		case <-n.mbox.Wait():
			for {
				m, ok := n.mbox.Pop()
				if !ok {
					break
				}
				n.h.OnMessage(ctx, m)
			}
		}
	}
}

// liveCtx implements Context for a live node; it is only used from the
// node's own goroutine.
type liveCtx struct {
	n *liveNode
}

func (c *liveCtx) Self() NodeID { return c.n.id }
func (c *liveCtx) Send(to NodeID, topic Topic, body any) {
	c.n.rt.Send(Message{To: to, From: c.n.id, Topic: topic, Body: body})
}
func (c *liveCtx) Rand() *rand.Rand { return c.n.rng }
func (c *liveCtx) Now() float64 {
	return float64(time.Since(c.n.rt.start)) / float64(c.n.rt.opts.Interval)
}
