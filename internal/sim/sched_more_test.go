package sim

import (
	"testing"
)

func TestSchedulerSendToBottomDropped(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Seed: 1})
	s.Send(Message{To: None, From: 1, Body: "x"})
	if s.Dropped() != 1 {
		t.Errorf("dropped = %d", s.Dropped())
	}
	if s.InFlight() != 0 {
		t.Errorf("inflight = %d", s.InFlight())
	}
}

func TestSchedulerTypeNamesSorted(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Seed: 2})
	s.AddNode(1, &echoNode{})
	s.Send(Message{To: 1, From: 1, Body: "s"})
	s.Send(Message{To: 1, From: 1, Body: 42})
	names := s.TypeNames()
	if len(names) != 2 || names[0] != "int" || names[1] != "string" {
		t.Errorf("TypeNames = %v", names)
	}
	if s.CountByType("int") != 1 {
		t.Errorf("count(int) = %d", s.CountByType("int"))
	}
}

func TestSchedulerRemoveNodeDropsInFlight(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Seed: 3})
	a := &echoNode{}
	s.AddNode(1, a)
	s.Send(Message{To: 1, From: 2, Body: "x"})
	s.RemoveNode(1)
	s.RunRounds(2)
	if len(a.got) != 0 {
		t.Error("removed node received a message")
	}
	if s.Dropped() != 1 {
		t.Errorf("dropped = %d", s.Dropped())
	}
}

func TestSchedulerResetCounters(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Seed: 4})
	s.AddNode(1, &echoNode{})
	s.Send(Message{To: 1, From: 2, Body: "x"})
	s.RunRounds(2)
	if s.Delivered() == 0 {
		t.Fatal("nothing delivered")
	}
	s.ResetCounters()
	if s.Delivered() != 0 || s.SentBy(2) != 0 || s.ReceivedBy(1) != 0 || s.CountByType("string") != 0 {
		t.Error("counters not reset")
	}
}

func TestSchedulerNodeIDsAndHandler(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Seed: 5})
	h1, h3 := &echoNode{}, &echoNode{}
	s.AddNode(3, h3)
	s.AddNode(1, h1)
	ids := s.NodeIDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Errorf("NodeIDs = %v", ids)
	}
	if s.Handler(3) != h3 || s.Handler(99) != nil {
		t.Error("Handler lookup wrong")
	}
}

func TestSchedulerCrashUnknownNoop(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Seed: 6})
	s.Crash(42) // unknown: must not panic or mark crashed
	if s.Crashed(42) {
		t.Error("unknown node marked crashed")
	}
}

func TestSchedulerDuplicateNodePanics(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Seed: 7})
	s.AddNode(1, &echoNode{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate AddNode")
		}
	}()
	s.AddNode(1, &echoNode{})
}

func TestMessageString(t *testing.T) {
	m := Message{To: 2, From: 1, Topic: 3, Body: "hello"}
	if got := m.String(); got != "1→2 t3 string" {
		t.Errorf("String() = %q", got)
	}
}

func TestNeverSuspects(t *testing.T) {
	if NeverSuspects().Suspects(5) {
		t.Error("NeverSuspects suspected someone")
	}
}
