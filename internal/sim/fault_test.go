package sim

import (
	"reflect"
	"testing"
)

// recorder is a Handler that records the order of payloads it receives.
type recorder struct {
	got []string
}

func (r *recorder) OnMessage(ctx Context, m Message) {
	if s, ok := m.Body.(string); ok {
		r.got = append(r.got, s)
	}
}
func (r *recorder) OnTimeout(Context) {}

func TestSchedulerFaultDrop(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Seed: 1})
	rec := &recorder{}
	s.AddNode(2, rec)
	s.SetFault(func(m Message) FaultAction { return FaultDrop })
	for i := 0; i < 5; i++ {
		s.Send(Message{To: 2, From: 3, Body: "x"})
	}
	s.RunRounds(5)
	if len(rec.got) != 0 {
		t.Fatalf("delivered %d messages under a drop-all fault", len(rec.got))
	}
	if s.Dropped() != 5 {
		t.Fatalf("Dropped() = %d, want 5", s.Dropped())
	}
	// Accounting still sees the sends (counted before the fault filter).
	if s.SentBy(3) != 5 {
		t.Fatalf("SentBy(3) = %d, want 5", s.SentBy(3))
	}
	s.SetFault(nil)
	s.Send(Message{To: 2, From: 3, Body: "y"})
	s.RunRounds(2)
	if len(rec.got) != 1 {
		t.Fatalf("healthy channel after clearing fault delivered %d, want 1", len(rec.got))
	}
}

func TestSchedulerFaultDup(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Seed: 1})
	rec := &recorder{}
	s.AddNode(2, rec)
	s.SetFault(func(m Message) FaultAction { return FaultDup })
	s.Send(Message{To: 2, From: 3, Body: "d"})
	s.RunRounds(3)
	if len(rec.got) != 2 {
		t.Fatalf("duplicated message delivered %d times, want 2", len(rec.got))
	}
	if s.Delivered() != 2 {
		t.Fatalf("Delivered() = %d, want 2", s.Delivered())
	}
}

func TestSchedulerFaultDelayReorders(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Seed: 1})
	rec := &recorder{}
	s.AddNode(2, rec)
	// Delay the first message only; the second must overtake it.
	first := true
	s.SetFault(func(m Message) FaultAction {
		if first {
			first = false
			return FaultDelay
		}
		return FaultDeliver
	})
	s.Send(Message{To: 2, From: 3, Body: "slow"})
	s.Send(Message{To: 2, From: 3, Body: "fast"})
	s.RunRounds(10)
	want := []string{"fast", "slow"}
	if !reflect.DeepEqual(rec.got, want) {
		t.Fatalf("delivery order %v, want %v", rec.got, want)
	}
}

// TestSchedulerFaultDeterminism pins the replay contract: identical seeds
// and identical fault filters produce identical runs.
func TestSchedulerFaultDeterminism(t *testing.T) {
	run := func() []string {
		s := NewScheduler(SchedulerOptions{Seed: 42})
		rec := &recorder{}
		s.AddNode(2, rec)
		i := 0
		s.SetFault(func(m Message) FaultAction {
			i++
			return FaultAction(i % 4)
		})
		for j := 0; j < 40; j++ {
			s.Send(Message{To: 2, From: 3, Body: string(rune('a' + j%26))})
		}
		s.RunRounds(20)
		return rec.got
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two seeded faulted runs diverged:\n%v\n%v", a, b)
	}
}

// ticker counts OnTimeout invocations.
type ticker struct{ ticks int }

func (t *ticker) OnMessage(Context, Message) {}
func (t *ticker) OnTimeout(Context)          { t.ticks++ }

// TestSchedulerRestartSingleTimeoutChain pins the restart path against a
// stale-chain resurrection: crashing and immediately re-adding a node (no
// intervening rounds, as a chaos CrashBurst→RestartAll produces) must
// leave exactly one self-renewing timeout chain — the crashed
// incarnation's queued event must not revive for the new incarnation.
func TestSchedulerRestartSingleTimeoutChain(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Seed: 1})
	tk := &ticker{}
	s.AddNode(2, tk)
	s.RunRounds(2)
	for cycle := 0; cycle < 3; cycle++ { // every cycle would add a chain
		s.Crash(2)
		s.AddNode(2, tk)
	}
	tk.ticks = 0
	const rounds = 50
	s.RunRounds(rounds)
	// One chain fires exactly once per round (± one for phase alignment).
	if tk.ticks < rounds-1 || tk.ticks > rounds+1 {
		t.Fatalf("restarted node fired %d timeouts over %d rounds, want ~%d (duplicate chains?)",
			tk.ticks, rounds, rounds)
	}
}

// TestSchedulerRestartClearsSuspicion pins the restart semantics: re-adding
// a crashed node's ID stops the failure detector from suspecting it, same
// as the concurrent runtime's Restart.
func TestSchedulerRestartClearsSuspicion(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Seed: 1, DetectorGrace: 1})
	rec := &recorder{}
	s.AddNode(2, rec)
	s.Crash(2)
	s.RunRounds(3)
	if !s.Suspects(2) {
		t.Fatal("crashed node not suspected after the grace period")
	}
	s.AddNode(2, rec)
	if s.Suspects(2) {
		t.Fatal("restarted node still suspected")
	}
	if s.Crashed(2) {
		t.Fatal("restarted node still reported crashed")
	}
}
