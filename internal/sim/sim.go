// Package sim provides the distributed-system substrate the paper's
// protocols run on: an asynchronous message-passing model with unbounded,
// loss-free, non-FIFO channels, periodic Timeout actions, node crashes and
// an eventually-correct failure detector (Sections 1.1 and 3.3 of Feldmann
// et al.).
//
// Two interchangeable executions are provided:
//
//   - Scheduler: a deterministic discrete-event simulation (virtual time,
//     seeded randomness, exact message accounting). All tests, experiments
//     and benchmarks run on it.
//   - Runtime: a live execution with one goroutine per protocol node,
//     unbounded mailboxes and real tickers. The public API and the examples
//     run on it.
//
// Protocol nodes implement Handler against Context and are oblivious to
// which execution drives them.
package sim

import (
	"fmt"
	"math/rand"
)

// NodeID identifies a protocol node. The zero value is ⊥ (no node); the
// supervisor of a system conventionally has ID 1.
type NodeID int64

// None is the ⊥ node reference.
const None NodeID = 0

// Topic identifies one publish-subscribe topic; every message is tagged
// with the topic it refers to (Section 4: "each message contains the topic
// it refers to, such that the receiver can match it to the respective
// BuildSR protocol").
type Topic int32

// Message is an envelope in a node's channel. Body carries one of the
// protocol messages defined in package proto.
type Message struct {
	To    NodeID
	From  NodeID
	Topic Topic
	Body  any
}

// String renders a compact description for traces.
func (m Message) String() string {
	return fmt.Sprintf("%d→%d t%d %T", m.From, m.To, m.Topic, m.Body)
}

// Context is the interface a node uses to interact with the system while
// handling a message or a timeout.
type Context interface {
	// Self returns the executing node's ID.
	Self() NodeID
	// Send puts a message into the channel of node to. Sends to ⊥ or to
	// crashed/unknown nodes are silently dropped (the paper assumes
	// non-corrupted IDs; messages to failed nodes invoke no action).
	Send(to NodeID, topic Topic, body any)
	// Rand returns the node's deterministic random source. It must only be
	// used from within the executing handler.
	Rand() *rand.Rand
	// Now returns the current time in timeout intervals (virtual time under
	// the Scheduler, wall-clock intervals under the Runtime).
	Now() float64
}

// Handler is a protocol node: it reacts to messages and to the periodic
// Timeout action (the paper's only spontaneous action).
type Handler interface {
	OnMessage(ctx Context, m Message)
	OnTimeout(ctx Context)
}

// Transport is the execution-substrate contract: everything a protocol
// driver (the public System/Simulation facades, the cluster harness, the
// CLIs) needs in order to host Handlers, independent of whether they run on
// the deterministic Scheduler, the in-package goroutine Runtime, or the
// concurrent runtime in internal/runtime/concurrent. Handlers themselves
// never see a Transport — they only see Context — so protocol code is
// substrate-agnostic by construction.
type Transport interface {
	// AddNode registers a handler and starts its periodic Timeout action.
	AddNode(id NodeID, h Handler)
	// RemoveNode gracefully deregisters a node; in-flight messages to it
	// are dropped on delivery.
	RemoveNode(id NodeID)
	// Crash fails a node without warning (Section 3.3): it stops executing
	// actions, messages addressed to it vanish, and the failure detector
	// eventually suspects it.
	Crash(id NodeID)
	// Send routes a well-formed message toward its destination mailbox.
	Send(m Message)
	// Close stops the substrate and releases its resources. Close is
	// idempotent; on the deterministic Scheduler it is a no-op.
	Close()

	// Transports double as the system-wide failure detector of Section 3.3.
	Detector
}

// Detector is the failure-detector oracle of Section 3.3. Only the
// supervisor consults it. Implementations are eventually correct: a crashed
// node is eventually (and permanently) suspected, and live nodes are never
// suspected.
type Detector interface {
	Suspects(id NodeID) bool
}

// neverSuspects is the detector used when failures are disabled.
type neverSuspects struct{}

func (neverSuspects) Suspects(NodeID) bool { return false }

// NeverSuspects returns a Detector that suspects no one.
func NeverSuspects() Detector { return neverSuspects{} }
