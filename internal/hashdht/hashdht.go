// Package hashdht implements the scalability extension sketched in
// Section 1.3 of the paper: "better scalability can be achieved … by having
// different supervisors for each topic. For the latter scenario, one could
// make use of a … distributed hash table (with consistent hashing) for all
// supervisors, in which a sub-interval of [0,1) is assigned to each
// supervisor. By hashing IDs of topics in the same manner, each supervisor
// is then only responsible for the topics in its sub-interval."
//
// Ring holds the supervisor set under consistent hashing with virtual
// points; Directory routes topic names to their responsible supervisor and
// rebalances when supervisors join or leave. The self-stabilizing DHT the
// paper defers to the literature ([11]) is out of scope; this is the static
// consistent-hashing layer the sketch requires.
package hashdht

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"sspubsub/internal/sim"
)

// hashPoint maps a string to a point in [0, 2^64) ≅ [0, 1).
func hashPoint(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// TopicKey renders a topic's wire identity as the canonical placement key.
// Every layer that places topics on the supervisor ring — the public
// System, the supervisor plane, the cluster harness — must hash the same
// key, or two layers could route the same topic to different supervisors.
// The key is derived from the numeric wire ID (never the human name):
// frames carry only the ID, so it is the one identity every process of a
// networked deployment agrees on without coordination.
func TopicKey(t sim.Topic) string { return "t/" + strconv.FormatInt(int64(t), 10) }

// Ring is a consistent-hashing ring of supervisors. The zero value is
// unusable; use NewRing. All methods are safe for concurrent use.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	points   []point // sorted by position
	members  map[sim.NodeID]bool
}

type point struct {
	pos uint64
	id  sim.NodeID
}

// NewRing creates a ring with the given number of virtual points per
// supervisor (more points → smoother intervals; 64 is a good default).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = 64
	}
	return &Ring{replicas: replicas, members: make(map[sim.NodeID]bool)}
}

// Add inserts a supervisor. Adding an existing member is a no-op.
func (r *Ring) Add(id sim.NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[id] {
		return
	}
	r.members[id] = true
	for v := 0; v < r.replicas; v++ {
		r.points = append(r.points, point{hashPoint(fmt.Sprintf("sup-%d-%d", id, v)), id})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].pos < r.points[j].pos })
}

// Remove deletes a supervisor (e.g. decommissioned); topics it owned move
// to the circular successors of its points.
func (r *Ring) Remove(id sim.NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[id] {
		return
	}
	delete(r.members, id)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.id != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the supervisor set, sorted.
func (r *Ring) Members() []sim.NodeID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]sim.NodeID, 0, len(r.members))
	for id := range r.members {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Owner returns the supervisor responsible for a topic name: the circular
// successor of the topic's hash point. ok is false for an empty ring.
func (r *Ring) Owner(topic string) (sim.NodeID, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return sim.None, false
	}
	h := hashPoint("topic-" + topic)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= h })
	return r.points[i%len(r.points)].id, true
}

// OwnerTopic is Owner over the canonical TopicKey of a wire topic ID.
func (r *Ring) OwnerTopic(t sim.Topic) (sim.NodeID, bool) { return r.Owner(TopicKey(t)) }

// Successors returns up to k distinct supervisors after the topic's owner
// in ring order, owner excluded — the replica set of the warm-failover
// replication layer. When the owner's points are removed from the ring, its
// first successor becomes the topic's new owner, so replicating to the
// successors places the warm state exactly where an adoption will look for
// it. Fewer than k members besides the owner yields a shorter slice.
func (r *Ring) Successors(topic string, k int) []sim.NodeID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if k <= 0 || len(r.points) == 0 {
		return nil
	}
	h := hashPoint("topic-" + topic)
	base := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= h }) % len(r.points)
	owner := r.points[base].id
	seen := map[sim.NodeID]bool{owner: true}
	var out []sim.NodeID
	for j := 1; j <= len(r.points) && len(out) < k; j++ {
		id := r.points[(base+j)%len(r.points)].id
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// Spread reports how many of the given topics each supervisor owns — the
// balance measurement for the extension experiment.
func (r *Ring) Spread(topics []string) map[sim.NodeID]int {
	out := make(map[sim.NodeID]int)
	for _, t := range topics {
		if id, ok := r.Owner(t); ok {
			out[id]++
		}
	}
	return out
}

// Directory maps topic names to supervisors and tracks reassignments as
// the supervisor set changes (topics whose owner changed must be re-joined
// by their subscribers — the price of elasticity).
type Directory struct {
	mu    sync.Mutex
	ring  *Ring
	known map[string]sim.NodeID
}

// NewDirectory creates a directory over a ring.
func NewDirectory(ring *Ring) *Directory {
	return &Directory{ring: ring, known: make(map[string]sim.NodeID)}
}

// Lookup resolves (and caches) the owner for a topic.
func (d *Directory) Lookup(topic string) (sim.NodeID, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id, ok := d.ring.Owner(topic)
	if ok {
		d.known[topic] = id
	}
	return id, ok
}

// Rebalance recomputes every cached topic's owner and returns the topics
// whose responsible supervisor changed since the last lookup.
func (d *Directory) Rebalance() map[string]sim.NodeID {
	d.mu.Lock()
	defer d.mu.Unlock()
	moved := make(map[string]sim.NodeID)
	for t, old := range d.known {
		now, ok := d.ring.Owner(t)
		if ok && now != old {
			moved[t] = now
			d.known[t] = now
		}
	}
	return moved
}

// ForceOwner overwrites the cached owner of a topic with an arbitrary
// (possibly wrong, possibly dead) supervisor — a chaos/test hook modelling
// corruption of the routing directory itself. The poison is soft state:
// the next Lookup recomputes from the ring, and the next Rebalance reports
// the repair as a move.
func (d *Directory) ForceOwner(topic string, owner sim.NodeID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.known[topic] = owner
}

// Topics returns the cached topic set, sorted.
func (d *Directory) Topics() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.known))
	for t := range d.known {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
