package hashdht

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"sspubsub/internal/sim"
)

func topics(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("topic-%04d", i)
	}
	return out
}

func TestOwnerDeterministic(t *testing.T) {
	r := NewRing(64)
	r.Add(1)
	r.Add(2)
	r.Add(3)
	for _, tp := range topics(50) {
		a, ok1 := r.Owner(tp)
		b, ok2 := r.Owner(tp)
		if !ok1 || !ok2 || a != b {
			t.Fatalf("owner not deterministic for %s: %d vs %d", tp, a, b)
		}
	}
}

func TestEmptyRing(t *testing.T) {
	r := NewRing(8)
	if _, ok := r.Owner("x"); ok {
		t.Error("empty ring must own nothing")
	}
	r.Add(5)
	if id, ok := r.Owner("x"); !ok || id != 5 {
		t.Error("single supervisor must own everything")
	}
}

func TestAddIdempotentRemoveUnknown(t *testing.T) {
	r := NewRing(8)
	r.Add(1)
	r.Add(1)
	if got := len(r.Members()); got != 1 {
		t.Errorf("members = %d", got)
	}
	r.Remove(99) // no-op
	r.Remove(1)
	if got := len(r.Members()); got != 0 {
		t.Errorf("members after remove = %d", got)
	}
}

// Load balance: with enough virtual points, topic ownership spreads within
// a small factor of uniform.
func TestSpreadBalanced(t *testing.T) {
	r := NewRing(128)
	for i := sim.NodeID(1); i <= 8; i++ {
		r.Add(i)
	}
	spread := r.Spread(topics(4000))
	want := 4000 / 8
	for id, c := range spread {
		if c < want/2 || c > want*2 {
			t.Errorf("supervisor %d owns %d topics, want ≈ %d", id, c, want)
		}
	}
}

// Consistency: removing one supervisor only moves the topics it owned.
func TestRemovalMovesOnlyOwnedTopics(t *testing.T) {
	r := NewRing(64)
	for i := sim.NodeID(1); i <= 5; i++ {
		r.Add(i)
	}
	tps := topics(1000)
	before := map[string]sim.NodeID{}
	for _, tp := range tps {
		before[tp], _ = r.Owner(tp)
	}
	r.Remove(3)
	for _, tp := range tps {
		now, _ := r.Owner(tp)
		if before[tp] == 3 {
			if now == 3 {
				t.Fatalf("topic %s still owned by removed supervisor", tp)
			}
		} else if now != before[tp] {
			t.Errorf("topic %s moved from %d to %d although its owner stayed", tp, before[tp], now)
		}
	}
}

// Property: ownership is always a live member.
func TestPropertyOwnerIsMember(t *testing.T) {
	f := func(ids []uint8, topic string) bool {
		r := NewRing(16)
		live := map[sim.NodeID]bool{}
		for _, raw := range ids {
			id := sim.NodeID(raw%16 + 1)
			if live[id] {
				r.Remove(id)
				delete(live, id)
			} else {
				r.Add(id)
				live[id] = true
			}
		}
		owner, ok := r.Owner(topic)
		if len(live) == 0 {
			return !ok
		}
		return ok && live[owner]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryRebalance(t *testing.T) {
	r := NewRing(64)
	r.Add(1)
	r.Add(2)
	d := NewDirectory(r)
	tps := topics(300)
	for _, tp := range tps {
		if _, ok := d.Lookup(tp); !ok {
			t.Fatal("lookup failed")
		}
	}
	if len(d.Topics()) != 300 {
		t.Fatalf("directory caches %d topics", len(d.Topics()))
	}
	// No change → no moves.
	if moved := d.Rebalance(); len(moved) != 0 {
		t.Fatalf("spurious rebalance: %d topics moved", len(moved))
	}
	// New supervisor takes over roughly a third of the topics.
	r.Add(3)
	moved := d.Rebalance()
	if len(moved) == 0 || len(moved) > 250 {
		t.Fatalf("rebalance moved %d topics, want ≈ 100", len(moved))
	}
	for tp, id := range moved {
		if id != 3 {
			t.Errorf("topic %s moved to %d, but only supervisor 3 is new", tp, id)
		}
	}
}

// TestRemovalRebalanceMinimality is the migration-minimality property the
// crash-tolerant supervisor plane rests on, mirrored from the join-side
// rebalance tests: when a supervisor is removed (crashed), Rebalance moves
// exactly the topics the removed node owned — each to a surviving
// supervisor — and every other topic keeps its owner untouched.
func TestRemovalRebalanceMinimality(t *testing.T) {
	r := NewRing(32)
	for i := sim.NodeID(1); i <= 4; i++ {
		r.Add(i)
	}
	d := NewDirectory(r)
	ts := topics(400)
	before := map[string]sim.NodeID{}
	owned := 0
	for _, tp := range ts {
		id, ok := d.Lookup(tp)
		if !ok {
			t.Fatal("lookup failed on populated ring")
		}
		before[tp] = id
		if id == 3 {
			owned++
		}
	}
	if owned == 0 {
		t.Fatal("supervisor 3 owns no topics — the removal test would be vacuous")
	}

	r.Remove(3)
	moved := d.Rebalance()

	// Exactly the dead node's topics move: no more, no fewer.
	if len(moved) != owned {
		t.Fatalf("removal moved %d topics, supervisor 3 owned %d", len(moved), owned)
	}
	for tp, now := range moved {
		if before[tp] != 3 {
			t.Errorf("topic %s moved although its owner %d survived", tp, before[tp])
		}
		if now == 3 {
			t.Errorf("topic %s still assigned to the removed supervisor", tp)
		}
	}
	for _, tp := range ts {
		now, ok := r.Owner(tp)
		if !ok {
			t.Fatalf("topic %s orphaned", tp)
		}
		if before[tp] != 3 && now != before[tp] {
			t.Errorf("surviving topic %s silently moved %d→%d", tp, before[tp], now)
		}
	}
}

// TestRemovalRebalanceSuccessorAgreement: after a removal, the moved
// topics' new owners equal the owners a fresh ring (built without the dead
// node) computes — the history-independence that lets every supervisor
// run the migration independently and agree.
func TestRemovalRebalanceSuccessorAgreement(t *testing.T) {
	churned := NewRing(32)
	for i := sim.NodeID(1); i <= 5; i++ {
		churned.Add(i)
	}
	d := NewDirectory(churned)
	ts := topics(300)
	for _, tp := range ts {
		d.Lookup(tp)
	}
	churned.Remove(2)
	moved := d.Rebalance()

	fresh := NewRing(32)
	for _, id := range []sim.NodeID{1, 3, 4, 5} {
		fresh.Add(id)
	}
	for tp, now := range moved {
		want, ok := fresh.Owner(tp)
		if !ok || now != want {
			t.Errorf("topic %s migrated to %d, fresh ring says %d", tp, now, want)
		}
	}
}

// TestRemoveThenReaddRestoresOwnership: a crash followed by a restart
// (remove + re-add) returns every topic to its original owner, and the
// two rebalances report inverse move sets — what lets a restarted
// supervisor reclaim exactly its own topics.
func TestRemoveThenReaddRestoresOwnership(t *testing.T) {
	r := NewRing(32)
	for i := sim.NodeID(1); i <= 4; i++ {
		r.Add(i)
	}
	d := NewDirectory(r)
	ts := topics(300)
	before := map[string]sim.NodeID{}
	for _, tp := range ts {
		before[tp], _ = d.Lookup(tp)
	}
	r.Remove(4)
	away := d.Rebalance()
	r.Add(4)
	back := d.Rebalance()
	if len(away) != len(back) {
		t.Fatalf("asymmetric churn: %d topics moved away, %d moved back", len(away), len(back))
	}
	for tp := range away {
		if now, _ := r.Owner(tp); now != 4 {
			t.Errorf("topic %s not reclaimed by the restarted supervisor (owner %d)", tp, now)
		}
	}
	for _, tp := range ts {
		if now, _ := r.Owner(tp); now != before[tp] {
			t.Errorf("topic %s ended at %d, started at %d", tp, now, before[tp])
		}
	}
}

// TestForceOwnerSelfHeals: a poisoned directory cache (corruption of the
// routing directory itself) is repaired by the next Lookup, and Rebalance
// reports the repair as a move.
func TestForceOwnerSelfHeals(t *testing.T) {
	r := NewRing(16)
	r.Add(1)
	r.Add(2)
	d := NewDirectory(r)
	truth, _ := d.Lookup("tp")
	d.ForceOwner("tp", 99) // 99 is not even a member
	if got, _ := d.Lookup("tp"); got != truth {
		t.Fatalf("Lookup returned the poisoned owner %d, want %d", got, truth)
	}
	d.ForceOwner("tp", 99)
	moved := d.Rebalance()
	if moved["tp"] != truth {
		t.Fatalf("Rebalance did not repair the poisoned entry: %v", moved)
	}
}

// TestChurnNeverOrphansTopics drives a long random add/remove sequence of
// supervisors and checks the core placement invariant after every step:
// while any supervisor is alive, every topic has exactly one owner and
// that owner is a live member. (A topic without a responsible supervisor
// would strand its subscribers forever — the multi-supervisor extension's
// worst failure mode.)
func TestChurnNeverOrphansTopics(t *testing.T) {
	r := NewRing(32)
	ts := topics(200)
	alive := map[sim.NodeID]bool{}
	rng := rand.New(rand.NewSource(11))
	for step := 0; step < 200; step++ {
		id := sim.NodeID(1 + rng.Intn(12))
		if alive[id] && len(alive) > 1 && rng.Intn(2) == 0 {
			r.Remove(id)
			delete(alive, id)
		} else {
			r.Add(id)
			alive[id] = true
		}
		for _, tp := range ts {
			owner, ok := r.Owner(tp)
			if !ok {
				t.Fatalf("step %d: topic %s orphaned with %d supervisors alive", step, tp, len(alive))
			}
			if !alive[owner] {
				t.Fatalf("step %d: topic %s owned by dead supervisor %d", step, tp, owner)
			}
		}
	}
}

// TestPlacementIndependentOfHistory: two rings holding the same supervisor
// set must agree on every topic's owner, regardless of the insertion order
// or intermediate churn that produced them. This is what lets a restarted
// process rebuild routing from the member list alone.
func TestPlacementIndependentOfHistory(t *testing.T) {
	a := NewRing(32)
	for _, id := range []sim.NodeID{1, 2, 3, 4, 5} {
		a.Add(id)
	}
	a.Remove(2)
	a.Remove(4)

	b := NewRing(32)
	b.Add(5)
	b.Add(1)
	b.Add(3)

	for _, tp := range topics(300) {
		ao, aok := a.Owner(tp)
		bo, bok := b.Owner(tp)
		if !aok || !bok || ao != bo {
			t.Fatalf("placement differs for %s: %d (churned) vs %d (fresh)", tp, ao, bo)
		}
	}
}

// TestRebalanceMinimality: when a supervisor joins, only topics that now
// hash to it may move — every other topic keeps its owner (the consistent
// hashing guarantee that makes supervisor elasticity affordable).
func TestRebalanceMinimality(t *testing.T) {
	r := NewRing(32)
	r.Add(1)
	r.Add(2)
	d := NewDirectory(r)
	ts := topics(300)
	before := map[string]sim.NodeID{}
	for _, tp := range ts {
		id, ok := d.Lookup(tp)
		if !ok {
			t.Fatal("lookup failed on populated ring")
		}
		before[tp] = id
	}
	r.Add(3)
	moved := d.Rebalance()
	for tp, now := range moved {
		if now != 3 {
			t.Errorf("topic %s moved to %d, not to the new supervisor", tp, now)
		}
	}
	for _, tp := range ts {
		now, _ := r.Owner(tp)
		if _, didMove := moved[tp]; !didMove && now != before[tp] {
			t.Errorf("topic %s silently moved %d→%d without being reported", tp, before[tp], now)
		}
	}
	if len(moved) == 0 {
		t.Error("adding a third supervisor moved no topics at all (suspicious with 300 topics)")
	}
	if len(moved) > len(ts)/2 {
		t.Errorf("adding one of three supervisors moved %d/%d topics — not minimal", len(moved), len(ts))
	}
}

// TestSuccessorsExcludeOwnerAndDedup: the replica set never contains the
// owner, never repeats a member, and is capped by both k and the member
// count — the contract the replication layer's fan-out depends on.
func TestSuccessorsExcludeOwnerAndDedup(t *testing.T) {
	r := NewRing(0)
	for i := sim.NodeID(1); i <= 5; i++ {
		r.Add(i)
	}
	for _, tp := range topics(100) {
		owner, _ := r.Owner(tp)
		for k := 0; k <= 7; k++ {
			succs := r.Successors(tp, k)
			want := k
			if want > 4 {
				want = 4 // 5 members minus the owner
			}
			if len(succs) != want {
				t.Fatalf("topic %s k=%d: %d successors, want %d", tp, k, len(succs), want)
			}
			seen := map[sim.NodeID]bool{owner: true}
			for _, id := range succs {
				if seen[id] {
					t.Fatalf("topic %s k=%d: duplicate or owner %d in %v", tp, k, id, succs)
				}
				seen[id] = true
			}
		}
	}
}

// TestSuccessorBecomesOwnerOnRemoval pins the placement property the warm
// failover rests on: remove a topic's owner and the new owner is exactly
// the first successor the replication layer was streaming to.
func TestSuccessorBecomesOwnerOnRemoval(t *testing.T) {
	for _, tp := range topics(200) {
		r := NewRing(0)
		for i := sim.NodeID(1); i <= 4; i++ {
			r.Add(i)
		}
		owner, _ := r.Owner(tp)
		succs := r.Successors(tp, 2)
		if len(succs) != 2 {
			t.Fatalf("topic %s: %d successors, want 2", tp, len(succs))
		}
		r.Remove(owner)
		next, ok := r.Owner(tp)
		if !ok || next != succs[0] {
			t.Fatalf("topic %s: owner after removal %d, want first successor %d", tp, next, succs[0])
		}
	}
}
