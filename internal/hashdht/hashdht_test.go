package hashdht

import (
	"fmt"
	"testing"
	"testing/quick"

	"sspubsub/internal/sim"
)

func topics(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("topic-%04d", i)
	}
	return out
}

func TestOwnerDeterministic(t *testing.T) {
	r := NewRing(64)
	r.Add(1)
	r.Add(2)
	r.Add(3)
	for _, tp := range topics(50) {
		a, ok1 := r.Owner(tp)
		b, ok2 := r.Owner(tp)
		if !ok1 || !ok2 || a != b {
			t.Fatalf("owner not deterministic for %s: %d vs %d", tp, a, b)
		}
	}
}

func TestEmptyRing(t *testing.T) {
	r := NewRing(8)
	if _, ok := r.Owner("x"); ok {
		t.Error("empty ring must own nothing")
	}
	r.Add(5)
	if id, ok := r.Owner("x"); !ok || id != 5 {
		t.Error("single supervisor must own everything")
	}
}

func TestAddIdempotentRemoveUnknown(t *testing.T) {
	r := NewRing(8)
	r.Add(1)
	r.Add(1)
	if got := len(r.Members()); got != 1 {
		t.Errorf("members = %d", got)
	}
	r.Remove(99) // no-op
	r.Remove(1)
	if got := len(r.Members()); got != 0 {
		t.Errorf("members after remove = %d", got)
	}
}

// Load balance: with enough virtual points, topic ownership spreads within
// a small factor of uniform.
func TestSpreadBalanced(t *testing.T) {
	r := NewRing(128)
	for i := sim.NodeID(1); i <= 8; i++ {
		r.Add(i)
	}
	spread := r.Spread(topics(4000))
	want := 4000 / 8
	for id, c := range spread {
		if c < want/2 || c > want*2 {
			t.Errorf("supervisor %d owns %d topics, want ≈ %d", id, c, want)
		}
	}
}

// Consistency: removing one supervisor only moves the topics it owned.
func TestRemovalMovesOnlyOwnedTopics(t *testing.T) {
	r := NewRing(64)
	for i := sim.NodeID(1); i <= 5; i++ {
		r.Add(i)
	}
	tps := topics(1000)
	before := map[string]sim.NodeID{}
	for _, tp := range tps {
		before[tp], _ = r.Owner(tp)
	}
	r.Remove(3)
	for _, tp := range tps {
		now, _ := r.Owner(tp)
		if before[tp] == 3 {
			if now == 3 {
				t.Fatalf("topic %s still owned by removed supervisor", tp)
			}
		} else if now != before[tp] {
			t.Errorf("topic %s moved from %d to %d although its owner stayed", tp, before[tp], now)
		}
	}
}

// Property: ownership is always a live member.
func TestPropertyOwnerIsMember(t *testing.T) {
	f := func(ids []uint8, topic string) bool {
		r := NewRing(16)
		live := map[sim.NodeID]bool{}
		for _, raw := range ids {
			id := sim.NodeID(raw%16 + 1)
			if live[id] {
				r.Remove(id)
				delete(live, id)
			} else {
				r.Add(id)
				live[id] = true
			}
		}
		owner, ok := r.Owner(topic)
		if len(live) == 0 {
			return !ok
		}
		return ok && live[owner]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryRebalance(t *testing.T) {
	r := NewRing(64)
	r.Add(1)
	r.Add(2)
	d := NewDirectory(r)
	tps := topics(300)
	for _, tp := range tps {
		if _, ok := d.Lookup(tp); !ok {
			t.Fatal("lookup failed")
		}
	}
	if len(d.Topics()) != 300 {
		t.Fatalf("directory caches %d topics", len(d.Topics()))
	}
	// No change → no moves.
	if moved := d.Rebalance(); len(moved) != 0 {
		t.Fatalf("spurious rebalance: %d topics moved", len(moved))
	}
	// New supervisor takes over roughly a third of the topics.
	r.Add(3)
	moved := d.Rebalance()
	if len(moved) == 0 || len(moved) > 250 {
		t.Fatalf("rebalance moved %d topics, want ≈ 100", len(moved))
	}
	for tp, id := range moved {
		if id != 3 {
			t.Errorf("topic %s moved to %d, but only supervisor 3 is new", tp, id)
		}
	}
}
