package hashdht

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"sspubsub/internal/sim"
)

func topics(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("topic-%04d", i)
	}
	return out
}

func TestOwnerDeterministic(t *testing.T) {
	r := NewRing(64)
	r.Add(1)
	r.Add(2)
	r.Add(3)
	for _, tp := range topics(50) {
		a, ok1 := r.Owner(tp)
		b, ok2 := r.Owner(tp)
		if !ok1 || !ok2 || a != b {
			t.Fatalf("owner not deterministic for %s: %d vs %d", tp, a, b)
		}
	}
}

func TestEmptyRing(t *testing.T) {
	r := NewRing(8)
	if _, ok := r.Owner("x"); ok {
		t.Error("empty ring must own nothing")
	}
	r.Add(5)
	if id, ok := r.Owner("x"); !ok || id != 5 {
		t.Error("single supervisor must own everything")
	}
}

func TestAddIdempotentRemoveUnknown(t *testing.T) {
	r := NewRing(8)
	r.Add(1)
	r.Add(1)
	if got := len(r.Members()); got != 1 {
		t.Errorf("members = %d", got)
	}
	r.Remove(99) // no-op
	r.Remove(1)
	if got := len(r.Members()); got != 0 {
		t.Errorf("members after remove = %d", got)
	}
}

// Load balance: with enough virtual points, topic ownership spreads within
// a small factor of uniform.
func TestSpreadBalanced(t *testing.T) {
	r := NewRing(128)
	for i := sim.NodeID(1); i <= 8; i++ {
		r.Add(i)
	}
	spread := r.Spread(topics(4000))
	want := 4000 / 8
	for id, c := range spread {
		if c < want/2 || c > want*2 {
			t.Errorf("supervisor %d owns %d topics, want ≈ %d", id, c, want)
		}
	}
}

// Consistency: removing one supervisor only moves the topics it owned.
func TestRemovalMovesOnlyOwnedTopics(t *testing.T) {
	r := NewRing(64)
	for i := sim.NodeID(1); i <= 5; i++ {
		r.Add(i)
	}
	tps := topics(1000)
	before := map[string]sim.NodeID{}
	for _, tp := range tps {
		before[tp], _ = r.Owner(tp)
	}
	r.Remove(3)
	for _, tp := range tps {
		now, _ := r.Owner(tp)
		if before[tp] == 3 {
			if now == 3 {
				t.Fatalf("topic %s still owned by removed supervisor", tp)
			}
		} else if now != before[tp] {
			t.Errorf("topic %s moved from %d to %d although its owner stayed", tp, before[tp], now)
		}
	}
}

// Property: ownership is always a live member.
func TestPropertyOwnerIsMember(t *testing.T) {
	f := func(ids []uint8, topic string) bool {
		r := NewRing(16)
		live := map[sim.NodeID]bool{}
		for _, raw := range ids {
			id := sim.NodeID(raw%16 + 1)
			if live[id] {
				r.Remove(id)
				delete(live, id)
			} else {
				r.Add(id)
				live[id] = true
			}
		}
		owner, ok := r.Owner(topic)
		if len(live) == 0 {
			return !ok
		}
		return ok && live[owner]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryRebalance(t *testing.T) {
	r := NewRing(64)
	r.Add(1)
	r.Add(2)
	d := NewDirectory(r)
	tps := topics(300)
	for _, tp := range tps {
		if _, ok := d.Lookup(tp); !ok {
			t.Fatal("lookup failed")
		}
	}
	if len(d.Topics()) != 300 {
		t.Fatalf("directory caches %d topics", len(d.Topics()))
	}
	// No change → no moves.
	if moved := d.Rebalance(); len(moved) != 0 {
		t.Fatalf("spurious rebalance: %d topics moved", len(moved))
	}
	// New supervisor takes over roughly a third of the topics.
	r.Add(3)
	moved := d.Rebalance()
	if len(moved) == 0 || len(moved) > 250 {
		t.Fatalf("rebalance moved %d topics, want ≈ 100", len(moved))
	}
	for tp, id := range moved {
		if id != 3 {
			t.Errorf("topic %s moved to %d, but only supervisor 3 is new", tp, id)
		}
	}
}

// TestChurnNeverOrphansTopics drives a long random add/remove sequence of
// supervisors and checks the core placement invariant after every step:
// while any supervisor is alive, every topic has exactly one owner and
// that owner is a live member. (A topic without a responsible supervisor
// would strand its subscribers forever — the multi-supervisor extension's
// worst failure mode.)
func TestChurnNeverOrphansTopics(t *testing.T) {
	r := NewRing(32)
	ts := topics(200)
	alive := map[sim.NodeID]bool{}
	rng := rand.New(rand.NewSource(11))
	for step := 0; step < 200; step++ {
		id := sim.NodeID(1 + rng.Intn(12))
		if alive[id] && len(alive) > 1 && rng.Intn(2) == 0 {
			r.Remove(id)
			delete(alive, id)
		} else {
			r.Add(id)
			alive[id] = true
		}
		for _, tp := range ts {
			owner, ok := r.Owner(tp)
			if !ok {
				t.Fatalf("step %d: topic %s orphaned with %d supervisors alive", step, tp, len(alive))
			}
			if !alive[owner] {
				t.Fatalf("step %d: topic %s owned by dead supervisor %d", step, tp, owner)
			}
		}
	}
}

// TestPlacementIndependentOfHistory: two rings holding the same supervisor
// set must agree on every topic's owner, regardless of the insertion order
// or intermediate churn that produced them. This is what lets a restarted
// process rebuild routing from the member list alone.
func TestPlacementIndependentOfHistory(t *testing.T) {
	a := NewRing(32)
	for _, id := range []sim.NodeID{1, 2, 3, 4, 5} {
		a.Add(id)
	}
	a.Remove(2)
	a.Remove(4)

	b := NewRing(32)
	b.Add(5)
	b.Add(1)
	b.Add(3)

	for _, tp := range topics(300) {
		ao, aok := a.Owner(tp)
		bo, bok := b.Owner(tp)
		if !aok || !bok || ao != bo {
			t.Fatalf("placement differs for %s: %d (churned) vs %d (fresh)", tp, ao, bo)
		}
	}
}

// TestRebalanceMinimality: when a supervisor joins, only topics that now
// hash to it may move — every other topic keeps its owner (the consistent
// hashing guarantee that makes supervisor elasticity affordable).
func TestRebalanceMinimality(t *testing.T) {
	r := NewRing(32)
	r.Add(1)
	r.Add(2)
	d := NewDirectory(r)
	ts := topics(300)
	before := map[string]sim.NodeID{}
	for _, tp := range ts {
		id, ok := d.Lookup(tp)
		if !ok {
			t.Fatal("lookup failed on populated ring")
		}
		before[tp] = id
	}
	r.Add(3)
	moved := d.Rebalance()
	for tp, now := range moved {
		if now != 3 {
			t.Errorf("topic %s moved to %d, not to the new supervisor", tp, now)
		}
	}
	for _, tp := range ts {
		now, _ := r.Owner(tp)
		if _, didMove := moved[tp]; !didMove && now != before[tp] {
			t.Errorf("topic %s silently moved %d→%d without being reported", tp, before[tp], now)
		}
	}
	if len(moved) == 0 {
		t.Error("adding a third supervisor moved no topics at all (suspicious with 300 topics)")
	}
	if len(moved) > len(ts)/2 {
		t.Errorf("adding one of three supervisors moved %d/%d topics — not minimal", len(moved), len(ts))
	}
}
