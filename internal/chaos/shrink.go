package chaos

// Shrink reduces a failing action list to a stable minimum by delta
// debugging: it repeatedly tries to delete chunks of halving size,
// keeping any deletion that still fails, until no single action can be
// removed (1-minimality). fails must be a pure predicate — for chaos runs
// that means replaying on the deterministic substrate with a fixed seed,
// where a run is a function of (actions, seed) alone.
//
// fails is assumed true for the input list (the caller observed the
// failure); Shrink returns the input unchanged when it is not, so a flaky
// predicate degrades to a no-op rather than an invalid "minimum".
func Shrink(actions []Action, fails func([]Action) bool) []Action {
	cur := append([]Action(nil), actions...)
	if len(cur) == 0 || !fails(cur) {
		return cur
	}
	for changed := true; changed; {
		changed = false
		for size := len(cur) / 2; size >= 1; size /= 2 {
			for i := 0; i+size <= len(cur); {
				cand := make([]Action, 0, len(cur)-size)
				cand = append(cand, cur[:i]...)
				cand = append(cand, cur[i+size:]...)
				if len(cand) > 0 && fails(cand) {
					cur = cand
					changed = true
					// Retry at the same index: the next chunk slid into it.
				} else if len(cand) == 0 && fails(cand) {
					// The empty list still fails: the failure does not
					// depend on the actions at all.
					return nil
				} else {
					i += size
				}
			}
		}
	}
	return cur
}
