// Package chaos is the self-stabilization torture chamber: a declarative,
// seed-reproducible scenario engine that perturbs a running supervised
// publish-subscribe system with composed fault actions and then measures
// whether — and how fast — it converges back to a legal state, with every
// invariant probe passing.
//
// The paper's central theorem (Theorem 8) promises convergence from an
// *arbitrary* initial configuration. Hand-written fault scripts only ever
// test the configurations someone thought of; this package systematically
// explores the rest.
//
// # Model
//
// A Scenario is a list of Actions applied in order to a freshly converged
// system of N subscribers:
//
//   - process faults: crash bursts, restarts (stale state), join/leave churn
//   - supervisor-plane faults (Config.Supervisors > 1): supervisor crashes
//     (the topic's owner first), stale-state supervisor restarts, and
//     corruption of the ownership directory itself (hosting flags, epochs,
//     routing cache)
//   - channel faults: network partitions and heal, probabilistic message
//     loss/duplication/reordering at the transport layer, wire-frame
//     corruption on the networked substrate
//   - state corruption: supervisor database, subscriber ring/shortcut
//     pointers, trie divergence, token-supervisor state, garbage protocol
//     traffic
//   - pacing: settle periods and mid-fault publications
//
// After the last action the engine force-heals all channel faults (the
// paper's model: faults eventually cease), publishes a fresh delivery wave
// and runs until every invariant probe holds:
//
//   - supervisor-plane ownership convergence (the expected owner — and only
//     it — hosts the topic database; every member reports to it; epochs
//     agree)
//   - supervisor database ↔ live membership agreement
//   - topic overlay connectivity (the union graph of ring + shortcut edges
//     connects all members)
//   - exact overlay legitimacy against the unique SR(n) (Definition 2)
//   - trie structural invariants and cross-member root-hash agreement
//   - delivery completeness of the post-fault publication wave
//
// The convergence time — last fault to all-probes-green — is measured with
// metrics.Stopwatch and reported per run.
//
// # Substrates
//
// Every scenario runs unchanged on all three execution substrates via the
// sim.Transport abstraction: the deterministic discrete-event scheduler
// (fully reproducible: a failing seed replays bit-for-bit), the concurrent
// goroutine runtime, and the networked loopback transport where every
// message crosses the wire codec and a real TCP socket. State corruption on
// the live substrates happens under the quiesce barrier, so no handler ever
// observes a torn write.
//
// # Reproducibility and shrinking
//
// Random scenarios are generated from a seed (Generate) and replayed from
// that seed alone. When a random scenario fails on the deterministic
// substrate, Shrink delta-debugs the action list down to a 1-minimal
// failing core: removing any single remaining action makes the failure
// disappear.
//
// The engine is exposed as `srsim chaos` (see cmd/srsim) and as the
// chaos_test.go property suite; CI runs the suite on every PR and a long
// random soak nightly.
package chaos
