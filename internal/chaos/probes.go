package chaos

import (
	"fmt"
	"sort"

	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
)

// ProbeNames lists the invariant probes in evaluation order.
var ProbeNames = []string{
	"ownership-convergence",
	"supervisor-db",
	"replica-consistency",
	"overlay-connectivity",
	"overlay-legitimacy",
	"trie-consistency",
	"delivery-completeness",
	"delivery-ordering",
}

// violation evaluates every invariant probe against the current (frozen)
// state and returns "probe: detail" for the first one that fails, or ""
// when the system is in a legal state. The probes are ordered from the
// coarsest invariant to the most exacting, so the reported violation names
// the most fundamental breakage.
//
// Callers on a live substrate must evaluate under the quiesce barrier
// (runUntil and freeze do).
func (e *env) violation() string {
	if v := e.ownershipViolation(); v != "" {
		return "ownership-convergence: " + v
	}
	if v := e.dbMembershipViolation(); v != "" {
		return "supervisor-db: " + v
	}
	if v := e.replicaViolation(); v != "" {
		return "replica-consistency: " + v
	}
	if v := e.connectivityViolation(); v != "" {
		return "overlay-connectivity: " + v
	}
	if v := e.l.Explain(e.topic); v != "" {
		return "overlay-legitimacy: " + v
	}
	if v := e.trieViolation(); v != "" {
		return "trie-consistency: " + v
	}
	if v := e.deliveryViolation(); v != "" {
		return "delivery-completeness: " + v
	}
	if v := e.orderingViolation(); v != "" {
		return "delivery-ordering: " + v
	}
	return ""
}

// ownershipViolation checks supervisor-plane agreement: the topic's
// expected owner (consistent hashing over the live supervisors) — and
// only it — hosts the database, every member reports to it, and every
// epoch agrees with the owner's. On a single-supervisor plane this
// degenerates to "the supervisor hosts the topic and every member reports
// to it at epoch 0", so it is checked everywhere.
func (e *env) ownershipViolation() string {
	return e.l.ExplainOwnership(e.topic)
}

// dbMembershipViolation checks supervisor database ↔ live membership
// agreement on the topic's current owner: the database is structurally
// valid (Section 3.1), records exactly the live members, and references no
// crashed or departed node.
func (e *env) dbMembershipViolation() string {
	sup := e.l.SupFor(e.topic)
	if sup == nil {
		return "no live supervisor"
	}
	if sup.Corrupted(e.topic) {
		return "database violates the validity conditions of Section 3.1"
	}
	members := e.l.Members(e.topic)
	if n := sup.N(e.topic); n != len(members) {
		return fmt.Sprintf("database records %d subscribers, %d live members", n, len(members))
	}
	live := make(map[sim.NodeID]bool, len(members))
	for _, id := range members {
		live[id] = true
	}
	for lab, v := range sup.Snapshot(e.topic) {
		if !live[v] {
			return fmt.Sprintf("database entry %s → %d references a non-member", lab, v)
		}
	}
	return ""
}

// replicaViolation checks warm-replica convergence when directory
// replication is on: every expected replica holder's digest (era, entry
// count, content hash) must match the owner's database. Trivially "" with
// ReplicationFactor 0, so the probe chain is unchanged for the classic
// configurations.
func (e *env) replicaViolation() string {
	return e.l.ExplainReplication(e.topic)
}

// connectivityViolation checks that the union graph of every member's
// overlay edges (left, right, ring closure, shortcuts), taken undirected,
// connects all members. Connectivity is the weakest property the topic
// tree needs for publications to reach everyone; it is implied by full
// legitimacy but fails with a far more useful message.
func (e *env) connectivityViolation() string {
	members := e.l.Members(e.topic)
	if len(members) <= 1 {
		return ""
	}
	adj := make(map[sim.NodeID][]sim.NodeID, len(members))
	inSet := make(map[sim.NodeID]bool, len(members))
	for _, id := range members {
		inSet[id] = true
	}
	link := func(a, b sim.NodeID) {
		if a != b && inSet[a] && inSet[b] {
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
	}
	for _, id := range members {
		st, ok := e.l.Clients[id].StateOf(e.topic)
		if !ok {
			return fmt.Sprintf("member %d has no instance", id)
		}
		link(id, st.Left.Ref)
		link(id, st.Right.Ref)
		link(id, st.Ring.Ref)
		for _, ref := range st.Shortcuts {
			link(id, ref)
		}
	}
	seen := map[sim.NodeID]bool{members[0]: true}
	queue := []sim.NodeID{members[0]}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	if len(seen) != len(members) {
		return fmt.Sprintf("overlay graph splits: %d of %d members reachable from %d",
			len(seen), len(members), members[0])
	}
	return ""
}

// trieViolation checks each member's publication trie structurally
// (leaf counts, hashes, key placement) and requires all members to hold
// hash-identical tries — the converged state of the anti-entropy protocol
// of Section 4.2.
func (e *env) trieViolation() string {
	members := e.l.Members(e.topic)
	for _, id := range members {
		in, ok := e.l.Clients[id].Instance(e.topic)
		if !ok {
			return fmt.Sprintf("member %d has no instance", id)
		}
		if msg := in.Eng.Trie().CheckInvariants(); msg != "" {
			return fmt.Sprintf("member %d trie: %s", id, msg)
		}
	}
	return trieAgreementViolation(members, func(id sim.NodeID) [16]byte {
		return e.l.Clients[id].TrieRootHash(e.topic)
	})
}

// deliveryViolation requires every member to know every publication of the
// post-fault delivery wave.
func (e *env) deliveryViolation() string {
	return waveViolation(e.l.Members(e.topic), e.wave, func(id sim.NodeID) []proto.Publication {
		return e.l.Clients[id].Publications(e.topic)
	})
}

// orderingViolation evaluates the delivery-ordering probe over the
// recorded per-node delivery traces ("" when the run records none). Three
// invariants, each restricted to unflagged deliveries — entries the ordered
// layer marked Recovered (anti-entropy repair) or Forced
// (self-stabilization release) are exempt by contract:
//
//  1. Per-publisher monotonicity: within one corruption epoch, a node's
//     unflagged sequenced deliveries from any single publisher carry
//     strictly increasing sequence numbers (which also rules out
//     duplicate delivery).
//  2. Causal coverage: when a delivery carries a causal barrier, every
//     barrier entry (origin o, seq s) must be preceded in that node's own
//     trace by a delivery from o with sequence ≥ s. Coverage spans
//     epochs — a delivery that happened never un-happens.
//  3. Wave order agreement: every pair of nodes agrees on the relative
//     delivery order of the single-publisher wave publications, and no
//     node delivers one twice. This is the only clause with teeth in
//     best-effort mode (sequence numbers are all zero there), which is
//     how the probe demonstrably fails when forced onto best-effort
//     traces.
func (e *env) orderingViolation() string {
	if e.rec == nil {
		return ""
	}
	e.rec.mu.Lock()
	defer e.rec.mu.Unlock()
	ids := make([]sim.NodeID, 0, len(e.rec.byNode))
	for id := range e.rec.byNode {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	waveIdx := make(map[wavePub]int, len(e.wave))
	for i, w := range e.wave {
		waveIdx[w] = i
	}
	waveOrders := make(map[sim.NodeID][]int, len(ids))

	type stream struct {
		epoch  int
		origin sim.NodeID
	}
	for _, id := range ids {
		last := make(map[stream]uint64)
		maxSeen := make(map[sim.NodeID]uint64)
		for _, en := range e.rec.byNode[id] {
			flagged := en.Recovered || en.Forced
			if !flagged && len(en.Barrier) > 0 {
				for _, b := range en.Barrier {
					if maxSeen[b.Origin] < b.Seq {
						return fmt.Sprintf(
							"node %d delivered %q before its causal predecessor (origin %d seq %d)",
							id, en.Payload, b.Origin, b.Seq)
					}
				}
			}
			if maxSeen[en.Origin] < en.Seq {
				maxSeen[en.Origin] = en.Seq
			}
			if flagged {
				continue
			}
			if en.Seq > 0 {
				k := stream{epoch: en.Epoch, origin: en.Origin}
				if prev, ok := last[k]; ok && en.Seq <= prev {
					return fmt.Sprintf(
						"node %d delivered seq %d from publisher %d after seq %d (epoch %d)",
						id, en.Seq, en.Origin, prev, en.Epoch)
				}
				last[k] = en.Seq
			}
			if idx, ok := waveIdx[wavePub{Payload: en.Payload, Origin: en.Origin}]; ok {
				for _, seen := range waveOrders[id] {
					if seen == idx {
						return fmt.Sprintf("node %d delivered wave publication %q twice", id, en.Payload)
					}
				}
				waveOrders[id] = append(waveOrders[id], idx)
			}
		}
	}

	// Pairwise agreement on the common subsequence of wave deliveries.
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			a, b := waveOrders[ids[i]], waveOrders[ids[j]]
			pos := make(map[int]int, len(b))
			for p, idx := range b {
				pos[idx] = p
			}
			lastPos := -1
			for _, idx := range a {
				p, ok := pos[idx]
				if !ok {
					continue
				}
				if p < lastPos {
					return fmt.Sprintf(
						"nodes %d and %d disagree on the delivery order of wave publication %q",
						ids[i], ids[j], e.wave[idx].Payload)
				}
				lastPos = p
			}
		}
	}
	return ""
}

// trieAgreementViolation requires hash-identical tries across ids
// (shared by the database and token stacks).
func trieAgreementViolation(ids []sim.NodeID, hash func(sim.NodeID) [16]byte) string {
	var first [16]byte
	for i, id := range ids {
		h := hash(id)
		if i == 0 {
			first = h
		} else if h != first {
			return fmt.Sprintf("node %d root hash differs from node %d", id, ids[0])
		}
	}
	return ""
}

// wavePub identifies one delivery-wave publication: the payload together
// with the member that published it. Keying the probes on the pair — not
// the payload alone — prevents a publication from a wrong origin (a
// duplicated or fabricated copy under a different key) from counting as
// the wave's.
type wavePub struct {
	Payload string
	Origin  sim.NodeID
}

// waveViolation requires every node to know every wave publication from
// its actual publisher (shared by the database and token stacks).
func waveViolation(ids []sim.NodeID, wave []wavePub, pubs func(sim.NodeID) []proto.Publication) string {
	if len(wave) == 0 {
		return ""
	}
	for _, id := range ids {
		known := make(map[wavePub]bool)
		for _, p := range pubs(id) {
			known[wavePub{Payload: p.Payload, Origin: p.Origin}] = true
		}
		for _, w := range wave {
			if !known[w] {
				return fmt.Sprintf("node %d is missing wave publication %q from %d", id, w.Payload, w.Origin)
			}
		}
	}
	return ""
}
