package chaos

import (
	"fmt"
	"math/rand"

	"sspubsub/internal/cluster"
	"sspubsub/internal/core"
	"sspubsub/internal/label"
	"sspubsub/internal/metrics"
	"sspubsub/internal/proto"
	"sspubsub/internal/runtime/concurrent"
	"sspubsub/internal/runtime/nettransport"
	"sspubsub/internal/sim"
	"sspubsub/internal/tokenring"
)

// tokenEnv hosts a scenario on the token-passing supervisor stack (the
// deterministic O(1)-space variant of the paper's conclusion). The action
// vocabulary is reduced — CorruptToken, CorruptStates, Settle and Publish
// are meaningful; everything else is skipped — because membership in token
// mode is repaired by the rebuild machinery rather than a database.
type tokenEnv struct {
	driver
	cfg   Config
	topic sim.Topic
	sup   *tokenring.Supervisor
	nodes map[sim.NodeID]*tokenring.Node
	ids   []sim.NodeID

	rng  *rand.Rand
	wave []wavePub
}

func newTokenEnv(cfg Config) (*tokenEnv, error) {
	e := &tokenEnv{
		cfg:   cfg,
		topic: cfg.Topic,
		nodes: make(map[sim.NodeID]*tokenring.Node),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	e.driver.cfg = cfg
	var tr sim.Transport
	switch cfg.Substrate {
	case SubstrateSim:
		e.sched = sim.NewScheduler(sim.SchedulerOptions{Seed: cfg.Seed})
		tr = e.sched
	case SubstrateConcurrent:
		rt := concurrent.NewRuntime(concurrent.Options{Interval: cfg.Interval, Seed: cfg.Seed})
		e.lrt, tr = rt, rt
	case SubstrateNet:
		nt, err := nettransport.NewLoopback(nettransport.Options{Interval: cfg.Interval, Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("chaos: loopback transport: %w", err)
		}
		e.lrt, tr = nt, nt
	default:
		return nil, fmt.Errorf("chaos: unknown substrate %q", cfg.Substrate)
	}
	e.sup = tokenring.NewSupervisor(cluster.SupervisorID)
	tr.AddNode(cluster.SupervisorID, e.sup)
	for i := 0; i < cfg.N; i++ {
		id := cluster.SupervisorID + 1 + sim.NodeID(i)
		// Token mode disables the randomized probe machinery: label refresh
		// comes from the circulating token, not from database probes.
		cl := core.NewClient(id, cluster.SupervisorID, core.Options{
			DisableActionIV: true,
			ProbeProb:       func(int) float64 { return 0 },
		})
		nd := tokenring.NewNode(cl, cluster.SupervisorID)
		e.nodes[id] = nd
		e.ids = append(e.ids, id)
		tr.AddNode(id, nd)
	}
	for _, id := range e.ids {
		tr.Send(sim.Message{To: id, From: id, Topic: e.topic, Body: core.JoinTopic{}})
	}
	return e, nil
}

func (e *tokenEnv) close() {
	if e.lrt != nil {
		e.lrt.Close()
	}
}

// violation checks the token-mode invariants: supervisor O(1)-state
// integrity, committed ring size = live membership, exact overlay
// legitimacy of the label assignment the token derives, trie agreement and
// wave delivery.
func (e *tokenEnv) violation() string {
	if msg := e.sup.CheckIntegrity(e.topic); msg != "" {
		return "token-integrity: " + msg
	}
	if n := e.sup.N(e.topic); n != len(e.ids) {
		return fmt.Sprintf("token-integrity: committed ring size %d, %d live nodes", n, len(e.ids))
	}
	states := make(map[sim.NodeID]core.State, len(e.ids))
	db := make(map[label.Label]sim.NodeID, len(e.ids))
	for _, id := range e.ids {
		nd := e.nodes[id]
		if !nd.Client.Joined(e.topic) {
			return fmt.Sprintf("overlay-legitimacy: node %d not joined", id)
		}
		st, _ := nd.Client.StateOf(e.topic)
		states[id] = st
		if !st.Label.IsBottom() {
			db[st.Label] = id
		}
	}
	if len(db) != len(e.ids) {
		return fmt.Sprintf("overlay-legitimacy: %d distinct labels over %d nodes", len(db), len(e.ids))
	}
	if msg := cluster.CheckLegitimacy(db, states); msg != "" {
		return "overlay-legitimacy: " + msg
	}
	if msg := trieAgreementViolation(e.ids, func(id sim.NodeID) [16]byte {
		return e.nodes[id].Client.TrieRootHash(e.topic)
	}); msg != "" {
		return "trie-consistency: " + msg
	}
	if msg := waveViolation(e.ids, e.wave, func(id sim.NodeID) []proto.Publication {
		return e.nodes[id].Client.Publications(e.topic)
	}); msg != "" {
		return "delivery-completeness: " + msg
	}
	return ""
}

// corrupt scrambles the token supervisor's O(1) state and a third of the
// nodes' explicit overlay states.
func (e *tokenEnv) corrupt() {
	e.sup.CorruptTopicState(e.topic, e.rng)
	for i, id := range e.ids {
		if i%3 != 0 {
			continue
		}
		in, ok := e.nodes[id].Client.Instance(e.topic)
		if !ok {
			continue
		}
		lab := label.FromIndex(e.rng.Uint64() % 64)
		other := e.ids[e.rng.Intn(len(e.ids))]
		in.Sub.ForceState(lab,
			proto.Tuple{L: label.FromIndex(e.rng.Uint64() % 64), Ref: other},
			proto.Tuple{}, proto.Tuple{}, nil)
	}
}

// runToken executes a token-mode scenario.
func runToken(sc Scenario, cfg Config) Result {
	res := Result{
		Scenario:  sc.Name,
		Substrate: cfg.Substrate,
		Seed:      cfg.Seed,
		N:         cfg.N,
		Rounds:    -1,
		Actions:   sc.Actions,
	}
	e, err := newTokenEnv(cfg)
	if err != nil {
		res.Violation = err.Error()
		return res
	}
	defer e.close()

	if _, ok := e.runUntil(cfg.SetupRounds, func() bool { return e.violation() == "" }); !ok {
		setupViolation := "system did not quiesce"
		e.freeze(func() { setupViolation = e.violation() })
		res.Violation = "setup: " + setupViolation
		return res
	}
	res.Setup = true
	cfg.logf("chaos: [%s] %s: token ring of %d converged; applying %d actions",
		cfg.Substrate, sc.Name, cfg.N, len(sc.Actions))

	var watch metrics.Stopwatch
	for _, a := range sc.Actions {
		switch a.Kind {
		case Settle:
			e.runRounds(max(1, a.Rounds))
		case Publish:
			for i := 0; i < max(1, a.Count); i++ {
				id := e.ids[e.rng.Intn(len(e.ids))]
				e.send(id, core.PublishCmd{Payload: fmt.Sprintf("mid-%d", i)})
			}
		case CorruptToken, CorruptStates, CorruptDB:
			cfg.logf("chaos:   %s", a)
			watch.Fault(e.now())
			e.freeze(e.corrupt)
			res.FaultActions++
		default:
			cfg.logf("chaos:   %s (skipped in token mode)", a)
		}
	}

	watch.Fault(e.now())
	for i := 0; i < cfg.DeliveryWave; i++ {
		payload := fmt.Sprintf("wave-%d", i)
		id := e.ids[e.rng.Intn(len(e.ids))]
		e.wave = append(e.wave, wavePub{Payload: payload, Origin: id})
		e.send(id, core.PublishCmd{Payload: payload})
	}

	e.driver.finish(&res, &watch, cfg.ConvergeRounds, e.violation)
	cfg.logf("chaos: %s", res)
	return res
}

// send issues a control command to a node through the transport.
func (e *tokenEnv) send(id sim.NodeID, body any) {
	m := sim.Message{To: id, From: id, Topic: e.topic, Body: body}
	if e.sched != nil {
		e.sched.Send(m)
		return
	}
	e.lrt.Send(m)
}
