package chaos

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"sspubsub/internal/ordering"
	"sspubsub/internal/sim"
)

// orderedScenarioNames lists the named ordered-delivery scenarios (pinned
// here so CI can address them by name).
var orderedScenarioNames = []string{
	"fifo-reorder-storm",
	"causal-dup-loss",
	"ordering-corruption",
	"causal-barrier-corruption",
}

// TestOrderedScenariosRegistered pins that the ordered scenarios are
// registered, carry a non-default delivery mode, and that the
// delivery-ordering probe is part of the evaluated set.
func TestOrderedScenariosRegistered(t *testing.T) {
	for _, name := range orderedScenarioNames {
		sc, ok := Lookup(name)
		if !ok {
			t.Fatalf("scenario %q not registered", name)
		}
		if sc.DeliveryMode == ordering.BestEffort {
			t.Fatalf("scenario %q does not pin an ordered delivery mode", name)
		}
	}
	found := false
	for _, p := range ProbeNames {
		if p == "delivery-ordering" {
			found = true
		}
	}
	if !found {
		t.Fatalf("delivery-ordering missing from ProbeNames %v", ProbeNames)
	}
}

// TestOrderedReplayDeterministic pins the reproducibility contract for
// ordered runs on the deterministic substrate: the delivery-ordering probe,
// trace epochs and the ordering-state corruption all replay bit-exactly
// from the seed.
func TestOrderedReplayDeterministic(t *testing.T) {
	for _, seed := range []int64{4, 9, 23} {
		sc := GenerateOrdering(seed)
		a := Run(sc, Config{Substrate: SubstrateSim, Seed: seed})
		b := Run(sc, Config{Substrate: SubstrateSim, Seed: seed})
		if a.Converged != b.Converged || a.Rounds != b.Rounds ||
			a.Delivered != b.Delivered || a.Violation != b.Violation {
			t.Errorf("seed %d replay diverged:\n  %s (delivered %d)\n  %s (delivered %d)",
				seed, a, a.Delivered, b, b.Delivered)
		}
	}
}

// TestRandomOrderingScenariosConverge: seed-generated ordered scenarios —
// reorder/dup-weighted faults with FIFO or causal delivery — converge with
// every probe green, the delivery-ordering probe included.
func TestRandomOrderingScenariosConverge(t *testing.T) {
	const seeds = 12
	for seed := int64(1); seed <= seeds; seed++ {
		sc := GenerateOrdering(seed)
		res := Run(sc, Config{Substrate: SubstrateSim, Seed: seed})
		if !res.Converged {
			t.Errorf("seed %d (%s): %s\n  actions: %v\n  replay: srsim chaos -scenario=random-ordering -seed=%d",
				seed, res.Mode, res.Violation, res.Actions, seed)
		}
	}
}

// TestOrderingGeneratorDeterministic pins the ordered generator as a pure
// function of the seed, including the mode alternation.
func TestOrderingGeneratorDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a, b := GenerateOrdering(seed), GenerateOrdering(seed)
		if fmt.Sprint(a.Actions) != fmt.Sprint(b.Actions) || a.DeliveryMode != b.DeliveryMode {
			t.Fatalf("seed %d: generator is not a function of the seed", seed)
		}
		want := ordering.FIFO
		if seed%2 != 0 {
			want = ordering.Causal
		}
		if a.DeliveryMode != want {
			t.Fatalf("seed %d: mode %v, want %v", seed, a.DeliveryMode, want)
		}
	}
}

// TestRandomGeneratorDrawsOrderingFault: the generic random-scenario
// vocabulary includes corrupt-ordering (soaks must exercise the fault
// without hand-written scenarios; it is a safe no-op in best-effort mode).
func TestRandomGeneratorDrawsOrderingFault(t *testing.T) {
	for seed := int64(1); seed <= 400; seed++ {
		for _, a := range Generate(seed).Actions {
			if a.Kind == CorruptOrdering {
				return
			}
		}
	}
	t.Fatal("400 seeds never drew a corrupt-ordering action")
}

// TestBestEffortFailsOrderingProbe is the probe's negative control and the
// PR's acceptance demonstration: with best-effort delivery the probe —
// forced on — must catch a wave-order disagreement on some seed (the sim
// substrate's per-message delays reorder same-instant floods), and the
// very same (scenario, seed) must pass once the clients run in FIFO mode.
func TestBestEffortFailsOrderingProbe(t *testing.T) {
	sc := Scenario{
		Name:    "besteffort-negative-control",
		Actions: []Action{{Kind: Settle, Rounds: 2}},
	}
	for seed := int64(1); seed <= 40; seed++ {
		res := Run(sc, Config{
			Substrate: SubstrateSim, Seed: seed,
			ForceOrderingProbe: true, DeliveryWave: 8,
		})
		if !res.Setup {
			t.Fatalf("seed %d: setup failed: %s", seed, res.Violation)
		}
		if res.Converged || !strings.Contains(res.Violation, "delivery-ordering") {
			continue
		}
		// Found the demonstration seed: best-effort traces violate the
		// ordering invariants. FIFO on the same run must absorb it.
		fifo := Run(sc, Config{
			Substrate: SubstrateSim, Seed: seed,
			DeliveryMode: ordering.FIFO, DeliveryWave: 8,
		})
		if !fifo.Converged {
			t.Fatalf("seed %d: FIFO did not absorb the reordering best-effort exposed: %s",
				seed, fifo.Violation)
		}
		return
	}
	t.Fatal("no seed in 1..40 demonstrated a best-effort ordering violation")
}

// TestDupFaultExactDeliveryCounts is the regression pin for the
// delivery-wave probe's duplicate-counting fix: under an active duplication
// fault every member must observe each mid-scenario publication exactly
// once — a duplicated flood copy may neither surface as a second delivery
// nor stand in for the missing original from the true publisher.
func TestDupFaultExactDeliveryCounts(t *testing.T) {
	sc := Scenario{
		Name: "dup-exact-counts",
		Actions: []Action{
			{Kind: Duplicate, Rate: 0.4},
			{Kind: Publish, Count: 4},
			{Kind: Settle, Rounds: 30},
			{Kind: Heal},
		},
	}
	for _, mode := range []ordering.Mode{ordering.FIFO, ordering.Causal} {
		var trace map[sim.NodeID][]TraceEntry
		res := Run(sc, Config{
			Substrate: SubstrateSim, Seed: 11, DeliveryMode: mode,
			TraceSink: func(tr map[sim.NodeID][]TraceEntry) { trace = tr },
		})
		if !res.Converged {
			t.Fatalf("%v: not converged: %s", mode, res.Violation)
		}
		if trace == nil {
			t.Fatalf("%v: no trace captured", mode)
		}
		for id, entries := range trace {
			counts := make(map[string]int)
			for _, en := range entries {
				if strings.HasPrefix(en.Payload, "mid-") || strings.HasPrefix(en.Payload, "wave-") {
					counts[en.Payload]++
				}
			}
			for i := 1; i <= 4; i++ {
				if got := counts[fmt.Sprintf("mid-%d", i)]; got != 1 {
					t.Errorf("%v: node %d observed mid-%d %d times, want exactly 1", mode, id, i, got)
				}
			}
			for i := 0; i < 3; i++ {
				if got := counts[fmt.Sprintf("wave-%d", i)]; got != 1 {
					t.Errorf("%v: node %d observed wave-%d %d times, want exactly 1", mode, id, i, got)
				}
			}
		}
	}
}

// TestOrderedScenariosLiveSubstratesSmoke runs one FIFO and one causal
// named scenario on each live substrate (the full matrix runs in
// TestNamedScenariosLiveSubstrates; this adds a targeted ordered smoke even
// under -short-less constrained runs).
func TestOrderedScenariosLiveSubstratesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live substrates skipped in -short mode")
	}
	for _, sub := range []Substrate{SubstrateConcurrent, SubstrateNet} {
		for _, name := range []string{"fifo-reorder-storm", "causal-dup-loss"} {
			sub, name := sub, name
			t.Run(fmt.Sprintf("%s/%s", sub, name), func(t *testing.T) {
				t.Parallel()
				sc, _ := Lookup(name)
				res := Run(sc, Config{Substrate: sub, Seed: 5, N: 8, Interval: time.Millisecond})
				if !res.Setup {
					t.Fatalf("setup failed: %s", res.Violation)
				}
				if !res.Converged {
					t.Errorf("not converged: %s", res.Violation)
				}
			})
		}
	}
}
