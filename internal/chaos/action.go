package chaos

import "fmt"

// Kind enumerates the fault-action vocabulary.
type Kind uint8

const (
	// Settle runs the system for Rounds timeout intervals with whatever
	// faults are currently installed.
	Settle Kind = iota
	// CrashBurst crashes Count random members without warning (never the
	// supervisor; at least two members always survive).
	CrashBurst
	// RestartAll restarts every crashed member with the stale state it
	// crashed with (Count > 0 restarts at most Count of them).
	RestartAll
	// JoinBurst adds Count fresh clients and subscribes them.
	JoinBurst
	// LeaveBurst starts the unsubscribe handshake for Count random members
	// (at least two members always remain).
	LeaveBurst
	// Partition splits supervisor + members into K groups; messages
	// crossing group boundaries are dropped until Heal.
	Partition
	// Heal removes all installed channel faults (partition, loss,
	// duplication, reordering, wire corruption).
	Heal
	// Loss drops each non-local message with probability Rate until Heal.
	Loss
	// Duplicate delivers each message twice with probability Rate until
	// Heal.
	Duplicate
	// Reorder delays each message by several intervals with probability
	// Rate until Heal, letting newer traffic overtake it.
	Reorder
	// WireGarbage corrupts outgoing wire frames with probability Rate on
	// the networked substrate (the receiver sees undecodable garbage); on
	// the other substrates it degrades to GarbageTraffic with Count
	// messages, so the scenario stays meaningful everywhere.
	WireGarbage
	// GarbageTraffic sends Count corrupted protocol messages (stale
	// tuples, wrong labels, bogus trie summaries) to random members.
	GarbageTraffic
	// CorruptStates overwrites every member's ring/shortcut state with
	// pseudo-random garbage (Section 3.2's arbitrary states).
	CorruptStates
	// CorruptDB injects the four supervisor-database corruption cases of
	// Section 3.1.
	CorruptDB
	// CorruptTries inserts Count fabricated publications directly into
	// random members' tries, forcing divergence only anti-entropy can heal.
	CorruptTries
	// SplitStates forces members into K self-consistent unrecorded chains
	// and wipes the database (the hard case of Section 3.2.1).
	SplitStates
	// Publish makes Count random members publish mid-scenario (the
	// payloads may be lost to crashes; agreement is still enforced by the
	// trie probe).
	Publish
	// CorruptToken scrambles the token-passing supervisor's O(1) state
	// (token-mode scenarios only; a no-op on the database stack).
	CorruptToken
	// CrashSupervisor crashes Count supervisors without warning — the
	// topic's current owner first (crashing only bystanders would not
	// exercise failover), then random others; at least one supervisor
	// always survives. A no-op on a single-supervisor plane.
	CrashSupervisor
	// RestartSupervisors restarts every crashed supervisor with the stale
	// plane state (epochs, hosting flags, deposed database) it crashed
	// with; the restored owner must reclaim its topics at a fresh epoch.
	RestartSupervisors
	// CorruptDirectory scrambles a random live supervisor's ownership
	// directory: hosting flags dropped or fabricated, epochs regressed,
	// the routing cache poisoned. A no-op on a single-supervisor plane.
	CorruptDirectory
	// CorruptReplica scrambles a warm directory replica on one of the
	// topic's expected replica holders: bogus entries, amnesia, or a
	// poisoned digest/era. Anti-entropy must detect and repair it. A safe
	// no-op when ReplicationFactor is 0 or the plane has one supervisor.
	CorruptReplica
	// CorruptOrdering scrambles every subscriber's ordered-delivery state
	// (FIFO cursors, causal coverage positions, pending buffers) and the
	// publishers' sequence counters. The ordering layer must re-converge
	// to clean in-order delivery in a fresh monotonicity epoch. A safe
	// no-op in best-effort mode, so random scenarios stay valid on every
	// configuration.
	CorruptOrdering

	kindCount // sentinel
)

var kindNames = [...]string{
	Settle:             "settle",
	CrashBurst:         "crash",
	RestartAll:         "restart",
	JoinBurst:          "join",
	LeaveBurst:         "leave",
	Partition:          "partition",
	Heal:               "heal",
	Loss:               "loss",
	Duplicate:          "dup",
	Reorder:            "reorder",
	WireGarbage:        "wire-garbage",
	GarbageTraffic:     "garbage",
	CorruptStates:      "corrupt-states",
	CorruptDB:          "corrupt-db",
	CorruptTries:       "corrupt-tries",
	SplitStates:        "split-states",
	Publish:            "publish",
	CorruptToken:       "corrupt-token",
	CrashSupervisor:    "crash-sup",
	RestartSupervisors: "restart-sups",
	CorruptDirectory:   "corrupt-directory",
	CorruptReplica:     "corrupt-replica",
	CorruptOrdering:    "corrupt-ordering",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Action is one step of a scenario script. Which fields matter depends on
// the kind; unused fields are ignored.
type Action struct {
	Kind   Kind
	Count  int     // crash/join/leave/garbage/trie/publish volume
	K      int     // partition / split-states group count
	Rate   float64 // loss/dup/reorder/wire-garbage probability
	Rounds int     // settle duration in timeout intervals
}

// String renders the action compactly for logs and shrink reports.
func (a Action) String() string {
	switch a.Kind {
	case Settle:
		return fmt.Sprintf("settle(%d)", a.Rounds)
	case Partition, SplitStates:
		return fmt.Sprintf("%s(k=%d)", a.Kind, a.K)
	case Loss, Duplicate, Reorder, WireGarbage:
		return fmt.Sprintf("%s(%.2f)", a.Kind, a.Rate)
	case Heal, CorruptStates, CorruptDB, CorruptToken, RestartSupervisors, CorruptDirectory, CorruptReplica, CorruptOrdering:
		return a.Kind.String()
	default:
		return fmt.Sprintf("%s(%d)", a.Kind, a.Count)
	}
}

// isFault reports whether the action perturbs the system (everything
// except pacing actions); the stopwatch records fault times from these.
func (a Action) isFault() bool {
	switch a.Kind {
	case Settle, Publish, Heal, RestartAll, RestartSupervisors:
		return false
	}
	return true
}
