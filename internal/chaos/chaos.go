package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sspubsub/internal/cluster"
	"sspubsub/internal/core"
	"sspubsub/internal/metrics"
	"sspubsub/internal/ordering"
	"sspubsub/internal/runtime/concurrent"
	"sspubsub/internal/runtime/nettransport"
	"sspubsub/internal/sim"
)

// Substrate selects the execution substrate a scenario runs on.
type Substrate string

const (
	// SubstrateSim is the deterministic discrete-event scheduler; runs are
	// bit-for-bit reproducible from the seed.
	SubstrateSim Substrate = "sim"
	// SubstrateConcurrent is the goroutine-per-node live runtime.
	SubstrateConcurrent Substrate = "concurrent"
	// SubstrateNet is the loopback networked transport (every message
	// crosses the wire codec and a TCP socket).
	SubstrateNet Substrate = "net"
)

// AllSubstrates lists the substrates in presentation order.
var AllSubstrates = []Substrate{SubstrateSim, SubstrateConcurrent, SubstrateNet}

// ParseSubstrate validates a -runtime style string.
func ParseSubstrate(s string) (Substrate, error) {
	switch Substrate(s) {
	case SubstrateSim, SubstrateConcurrent, SubstrateNet:
		return Substrate(s), nil
	}
	return "", fmt.Errorf("unknown substrate %q (use sim, concurrent or net)", s)
}

// Config parameterizes one scenario run.
type Config struct {
	// Substrate picks the execution substrate (default SubstrateSim).
	Substrate Substrate
	// N is the initial member count (default 12; a scenario's own N wins
	// when set).
	N int
	// Supervisors is the supervisor-plane size (default 1; a scenario's
	// own Supervisors wins when set). With more than one, topics are
	// sharded by consistent hashing and the supervisor fault actions
	// (CrashSupervisor, RestartSupervisors, CorruptDirectory) become
	// meaningful; the ownership-convergence probe is checked either way.
	Supervisors int
	// ReplicationFactor is the plane's directory replication factor
	// (default 0; a scenario's own ReplicationFactor wins when set). With
	// a factor ≥ 1 supervisor failover adopts warm replicas, the
	// CorruptReplica fault bites, and the replica-consistency probe is
	// enforced.
	ReplicationFactor int
	// Seed drives every random choice: victim selection, corruption
	// content, fault coin flips, and — on SubstrateSim — the entire event
	// schedule. Identical (scenario, config) pairs replay identically on
	// the deterministic substrate.
	Seed int64
	// Topic is the topic under test (default 1).
	Topic sim.Topic
	// Interval is the timeout interval on the live substrates
	// (default 2ms). Ignored on SubstrateSim.
	Interval time.Duration
	// SetupRounds budgets the unmeasured join-and-converge prologue
	// (default 8000 intervals).
	SetupRounds int
	// ConvergeRounds budgets the measured post-fault convergence
	// (default 8000 intervals).
	ConvergeRounds int
	// DeliveryWave is how many fresh publications are issued after the
	// faults cease; the delivery-completeness probe requires all of them
	// at every member (default 3; negative disables).
	DeliveryWave int
	// DeliveryMode selects the per-topic delivery mode every client runs
	// with (best-effort, FIFO, causal). An ordered mode records delivery
	// traces, arms the delivery-ordering probe, and issues the delivery
	// wave from a single publisher so cross-node order agreement is
	// checkable. A scenario's own DeliveryMode wins when set.
	DeliveryMode ordering.Mode
	// ForceOrderingProbe records traces and evaluates the
	// delivery-ordering probe even in best-effort mode — the probe's
	// negative control, expected to fail under reordering.
	ForceOrderingProbe bool
	// TraceSink, when non-nil, receives a snapshot of every node's
	// delivery trace after the final probe evaluation (testing hook;
	// needs an ordered mode or ForceOrderingProbe to have any traces).
	TraceSink func(map[sim.NodeID][]TraceEntry)
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Substrate == "" {
		c.Substrate = SubstrateSim
	}
	if c.N == 0 {
		c.N = 12
	}
	if c.Supervisors < 1 {
		c.Supervisors = 1
	}
	if c.Topic == 0 {
		c.Topic = 1
	}
	if c.Interval == 0 {
		c.Interval = 2 * time.Millisecond
	}
	if c.SetupRounds == 0 {
		c.SetupRounds = 8000
	}
	if c.ConvergeRounds == 0 {
		c.ConvergeRounds = 8000
	}
	if c.DeliveryWave == 0 {
		c.DeliveryWave = 3
	}
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

// Result reports one scenario run.
type Result struct {
	Scenario  string
	Substrate Substrate
	Seed      int64
	N         int
	// Mode is the delivery mode the run used ("besteffort", "fifo",
	// "causal").
	Mode string

	// Setup is false when the unmeasured prologue never converged (an
	// engine failure, not a protocol one).
	Setup bool
	// Converged reports whether every invariant probe held within the
	// budget after the last fault.
	Converged bool
	// Rounds is the measured convergence time in timeout intervals from
	// the moment faults ceased; -1 whenever the run did not converge
	// (including setup failures).
	Rounds float64
	// Violation describes the first failing probe at the deadline ("" when
	// converged).
	Violation string
	// FaultActions counts the perturbing actions applied.
	FaultActions int
	// Delivered is the substrate's total delivered-message count.
	Delivered int64
	// Actions is the applied action list (the shrinker's input on
	// failure).
	Actions []Action
}

// String renders a one-line report.
func (r Result) String() string {
	status := fmt.Sprintf("converged in %.0f rounds", r.Rounds)
	if !r.Setup {
		status = "SETUP FAILED"
	} else if !r.Converged {
		status = "FAILED: " + r.Violation
	}
	sub := string(r.Substrate)
	if r.Mode != "" && r.Mode != "besteffort" {
		sub += "/" + r.Mode
	}
	return fmt.Sprintf("[%s] %s seed=%d n=%d faults=%d: %s",
		sub, r.Scenario, r.Seed, r.N, r.FaultActions, status)
}

// liveSubstrate is the surface the engine needs from a live transport
// beyond sim.Transport.
type liveSubstrate interface {
	sim.Transport
	Quiesce(timeout time.Duration, f func()) bool
	Delivered() int64
	Now() float64
	SetFault(f sim.FaultFunc)
}

// driver is the substrate-facing surface shared by the database-stack env
// and the token-stack env: time, pacing, predicate polling and the freeze
// barrier, each dispatched to the deterministic scheduler or a live
// transport.
type driver struct {
	cfg   Config
	sched *sim.Scheduler // non-nil on SubstrateSim
	lrt   liveSubstrate  // non-nil on the live substrates
}

// now returns substrate time in timeout intervals.
func (d *driver) now() float64 {
	if d.sched != nil {
		return d.sched.Now()
	}
	return d.lrt.Now()
}

func (d *driver) delivered() int64 {
	if d.sched != nil {
		return d.sched.Delivered()
	}
	return d.lrt.Delivered()
}

// runRounds advances k timeout intervals.
func (d *driver) runRounds(k int) {
	if d.sched != nil {
		d.sched.RunRounds(k)
		return
	}
	time.Sleep(time.Duration(k) * d.cfg.Interval)
}

// runUntil advances until pred holds (evaluated against a frozen snapshot)
// or maxRounds elapse; it returns rounds taken and success.
func (d *driver) runUntil(maxRounds int, pred func() bool) (int, bool) {
	if d.sched != nil {
		return d.sched.RunRoundsUntil(maxRounds, pred)
	}
	start := time.Now()
	deadline := start.Add(time.Duration(maxRounds) * d.cfg.Interval)
	for {
		ok := false
		d.lrt.Quiesce(100*d.cfg.Interval, func() { ok = pred() })
		if ok {
			return int(time.Since(start) / d.cfg.Interval), true
		}
		if time.Now().After(deadline) {
			return maxRounds, false
		}
		time.Sleep(d.cfg.Interval)
	}
}

// freeze runs f against a consistent cross-node snapshot: directly on the
// deterministic scheduler (nothing runs between events), under the quiesce
// barrier on the live substrates. It reports whether f ran — a false
// return means the system never drained, which callers must treat as a
// violation in its own right.
func (d *driver) freeze(f func()) bool {
	if d.sched != nil {
		f()
		return true
	}
	return d.lrt.Quiesce(200*d.cfg.Interval, f)
}

// finish is the measured endgame shared by both stacks: poll until the
// violation clears or the budget expires, then take one final frozen
// snapshot for the report — a timed-out freeze is itself a violation (the
// system never drained), while a clean snapshot that finds nothing means
// the system converged between the last poll and now (a flaky pass is
// still a pass). res.Rounds must be preset to -1; it is overwritten with
// the stopwatch measurement only on convergence.
func (d *driver) finish(res *Result, watch *metrics.Stopwatch, budget int, violation func() string) {
	if _, ok := d.runUntil(budget, func() bool { return violation() == "" }); ok {
		res.Converged = true
	} else {
		v := "system did not quiesce for the final probe snapshot"
		d.freeze(func() { v = violation() })
		res.Violation = v
		res.Converged = v == ""
	}
	if res.Converged {
		res.Violation = ""
		watch.Converge(d.now())
		res.Rounds = watch.Rounds()
	}
}

// env is one scenario execution: the harness, the substrate-specific
// driving surface, and the scenario bookkeeping.
type env struct {
	driver
	cfg   Config
	topic sim.Topic
	l     *cluster.Live

	nt *nettransport.Transport

	// rng drives every scenario-level choice (victims, corruption,
	// partitions); it is distinct from the substrate's own randomness so
	// the action stream is identical across substrates for a given seed.
	rng *rand.Rand

	watch metrics.Stopwatch
	wave  []wavePub // post-fault publications (delivery probes)
	pubs  int       // mid-scenario publication counter

	// rec collects per-node delivery traces when the run is ordered (or
	// the ordering probe is forced); nil otherwise.
	rec *traceRec

	// askedToLeave records every member a LeaveBurst targeted. The leave
	// control message travels like any other (non-FIFO, delayed), so at
	// wave time a victim may not yet report Leaving — but it must never
	// publish the delivery wave: its departure grant can overtake its own
	// publish command and lose the publication.
	askedToLeave map[sim.NodeID]bool
}

func newEnv(cfg Config) (*env, error) {
	e := &env{cfg: cfg, topic: cfg.Topic, rng: rand.New(rand.NewSource(cfg.Seed)),
		askedToLeave: make(map[sim.NodeID]bool)}
	e.driver.cfg = cfg
	co := core.Options{DeliveryMode: cfg.DeliveryMode}
	if cfg.DeliveryMode != ordering.BestEffort || cfg.ForceOrderingProbe {
		e.rec = newTraceRec(cfg.Topic)
		co.OnDeliverTrace = e.rec.record
	}
	switch cfg.Substrate {
	case SubstrateSim:
		c := cluster.New(cluster.Options{Seed: cfg.Seed, ClientOpts: co,
			Supervisors: cfg.Supervisors, ReplicationFactor: cfg.ReplicationFactor})
		e.l, e.sched = c.Live, c.Sched
	case SubstrateConcurrent:
		rt := concurrent.NewRuntime(concurrent.Options{Interval: cfg.Interval, Seed: cfg.Seed})
		e.l, e.lrt = cluster.NewLiveRF(rt, co, cfg.Supervisors, cfg.ReplicationFactor), rt
	case SubstrateNet:
		nt, err := nettransport.NewLoopback(nettransport.Options{Interval: cfg.Interval, Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("chaos: loopback transport: %w", err)
		}
		e.l, e.lrt, e.nt = cluster.NewLiveRF(nt, co, cfg.Supervisors, cfg.ReplicationFactor), nt, nt
	default:
		return nil, fmt.Errorf("chaos: unknown substrate %q", cfg.Substrate)
	}
	return e, nil
}

func (e *env) close() {
	e.clearFaults()
	if e.lrt != nil {
		e.lrt.Close()
	}
}

func (e *env) setFault(f sim.FaultFunc) {
	if e.sched != nil {
		e.sched.SetFault(f)
		return
	}
	e.lrt.SetFault(f)
}

// clearFaults removes every installed channel fault.
func (e *env) clearFaults() {
	e.setFault(nil)
	if e.nt != nil {
		e.nt.SetFrameFault(nil)
	}
}

// faultRng returns a self-locking uniform source for fault coin flips:
// fault filters run on arbitrary sending goroutines on the live
// substrates, and *rand.Rand is not concurrency-safe.
func (e *env) faultRng(salt int64) func() float64 {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(e.cfg.Seed ^ salt))
	return func() float64 {
		mu.Lock()
		v := rng.Float64()
		mu.Unlock()
		return v
	}
}

// rateFault builds a filter applying verdict with the given probability.
// Driver self-sends (control commands like JoinTopic) are exempt: they are
// the experiment's control plane, not protocol traffic.
func (e *env) rateFault(verdict sim.FaultAction, rate float64, salt int64) sim.FaultFunc {
	next := e.faultRng(salt)
	return func(m sim.Message) sim.FaultAction {
		if m.From == m.To {
			return sim.FaultDeliver
		}
		if next() < rate {
			return verdict
		}
		return sim.FaultDeliver
	}
}

// apply executes one action.
func (e *env) apply(a Action) {
	if a.isFault() {
		e.watch.Fault(e.now())
	}
	switch a.Kind {
	case Settle:
		e.runRounds(max(1, a.Rounds))

	case CrashBurst:
		members := e.l.Members(e.topic)
		k := clamp(a.Count, 0, len(members)-2)
		for _, i := range e.rng.Perm(len(members))[:k] {
			e.l.Crash(members[i])
		}

	case RestartAll:
		downed := e.l.Downed()
		k := len(downed)
		if a.Count > 0 && a.Count < k {
			k = a.Count
		}
		for _, id := range downed[:k] {
			e.l.Restart(id)
		}

	case JoinBurst:
		for _, id := range e.l.AddClients(max(1, a.Count)) {
			e.l.Join(id, e.topic)
		}

	case LeaveBurst:
		members := e.l.Members(e.topic)
		k := clamp(a.Count, 0, len(members)-2)
		for _, i := range e.rng.Perm(len(members))[:k] {
			e.l.Leave(members[i], e.topic)
			e.askedToLeave[members[i]] = true
		}

	case Partition:
		e.setFault(e.partitionFault(max(2, a.K)))

	case Heal:
		e.clearFaults()

	case Loss:
		e.setFault(e.rateFault(sim.FaultDrop, a.Rate, 0x10af))

	case Duplicate:
		e.setFault(e.rateFault(sim.FaultDup, a.Rate, 0x2d0b))

	case Reorder:
		e.setFault(e.rateFault(sim.FaultDelay, a.Rate, 0x3e0c))

	case WireGarbage:
		if e.nt != nil {
			next := e.faultRng(0x4f1d)
			rate := a.Rate
			e.nt.SetFrameFault(func() nettransport.FrameFault {
				if next() < rate {
					return nettransport.FrameCorrupt
				}
				return nettransport.FrameDeliver
			})
		} else {
			count := a.Count
			if count == 0 {
				count = 5 * e.cfg.N
			}
			e.freeze(func() { e.l.SendGarbageMessages(e.topic, count, e.rng) })
		}

	case GarbageTraffic:
		count := a.Count
		if count == 0 {
			count = 5 * e.cfg.N
		}
		e.freeze(func() { e.l.SendGarbageMessages(e.topic, count, e.rng) })

	case CorruptStates:
		e.freeze(func() { e.l.CorruptSubscriberStatesRand(e.topic, e.rng) })

	case CorruptDB:
		e.freeze(func() { e.l.CorruptSupervisorDBRand(e.topic, e.rng) })

	case CorruptTries:
		count := max(1, a.Count)
		e.freeze(func() { e.l.CorruptTries(e.topic, count, e.rng) })

	case SplitStates:
		e.freeze(func() { e.l.PartitionStates(e.topic, max(2, a.K)) })

	case Publish:
		members := e.l.Members(e.topic)
		for i := 0; i < max(1, a.Count) && len(members) > 0; i++ {
			e.pubs++
			e.l.Publish(members[e.rng.Intn(len(members))], e.topic, fmt.Sprintf("mid-%d", e.pubs))
		}

	case CorruptToken:
		// Only meaningful on the token-passing stack (see token.go); on the
		// database stack corrupt the supervisor DB instead, so random
		// scenarios containing it still perturb something.
		e.freeze(func() { e.l.CorruptSupervisorDBRand(e.topic, e.rng) })

	case CrashSupervisor:
		live := e.l.LiveSupervisors()
		k := clamp(max(1, a.Count), 0, len(live)-1)
		// The topic's current owner dies first — crashing only bystanders
		// would not exercise failover — then random extras.
		victims := make([]sim.NodeID, 0, k)
		if owner, ok := e.l.ExpectedOwner(e.topic); ok && k > 0 {
			victims = append(victims, owner)
		}
		rest := make([]sim.NodeID, 0, len(live))
		for _, id := range live {
			if len(victims) == 0 || id != victims[0] {
				rest = append(rest, id)
			}
		}
		for _, i := range e.rng.Perm(len(rest)) {
			if len(victims) >= k {
				break
			}
			victims = append(victims, rest[i])
		}
		for _, id := range victims {
			e.l.CrashSupervisor(id)
		}

	case RestartSupervisors:
		for _, id := range e.l.DownedSupervisors() {
			e.l.RestartSupervisor(id)
		}

	case CorruptDirectory:
		live := e.l.LiveSupervisors()
		if len(e.l.SupIDs) > 1 && len(live) > 0 {
			id := live[e.rng.Intn(len(live))]
			e.freeze(func() { e.l.Sups[id].CorruptPlane(e.topic, e.rng) })
		}

	case CorruptReplica:
		// Target a live expected replica holder; Supervisor.CorruptReplica
		// itself is a no-op when that holder has no replica yet, and
		// ExpectedReplicas is empty with ReplicationFactor 0 — either way a
		// safe no-op, so random scenarios stay valid on every configuration.
		if targets := e.l.ExpectedReplicas(e.topic); len(targets) > 0 {
			id := targets[e.rng.Intn(len(targets))]
			e.freeze(func() { e.l.Sups[id].CorruptReplica(e.topic, e.rng) })
		}

	case CorruptOrdering:
		// Scrambling cursor positions legitimately re-delivers or skips
		// sequence numbers while the layer re-stabilizes, so monotonicity
		// restarts in a fresh trace epoch (bumped under the same freeze,
		// before any post-corruption delivery can be recorded). A no-op in
		// best-effort mode — the engines hold no ordering state.
		e.freeze(func() {
			e.l.CorruptOrderingState(e.topic, e.rng)
			if e.rec != nil {
				e.rec.bumpEpoch()
			}
		})
	}
}

// Run executes one scenario against one configuration and reports the
// outcome. Token-mode scenarios are dispatched to the token-ring stack.
func Run(sc Scenario, cfg Config) Result {
	cfg.fill()
	if sc.N > 0 {
		cfg.N = sc.N
	}
	if sc.Supervisors > 0 {
		cfg.Supervisors = sc.Supervisors
	}
	if sc.ReplicationFactor > 0 {
		cfg.ReplicationFactor = sc.ReplicationFactor
	}
	if sc.DeliveryMode != ordering.BestEffort {
		cfg.DeliveryMode = sc.DeliveryMode
	}
	if sc.Token {
		return runToken(sc, cfg)
	}
	res := Result{
		Scenario:  sc.Name,
		Substrate: cfg.Substrate,
		Seed:      cfg.Seed,
		N:         cfg.N,
		Mode:      cfg.DeliveryMode.String(),
		Rounds:    -1,
		Actions:   sc.Actions,
	}
	e, err := newEnv(cfg)
	if err != nil {
		res.Violation = err.Error()
		return res
	}
	defer e.close()

	// Unmeasured prologue: a converged SR(n) is the scenario's starting
	// point (Definition 2's legitimate state).
	e.l.AddClients(cfg.N)
	e.l.JoinAll(e.topic)
	if _, ok := e.runUntil(cfg.SetupRounds, func() bool { return e.l.ConvergedWith(e.topic, cfg.N) }); !ok {
		res.Violation = "setup: " + e.explain()
		return res
	}
	res.Setup = true
	cfg.logf("chaos: [%s] %s: setup converged with %d members; applying %d actions",
		cfg.Substrate, sc.Name, cfg.N, len(sc.Actions))

	for _, a := range sc.Actions {
		cfg.logf("chaos:   %s", a)
		e.apply(a)
		if a.isFault() {
			res.FaultActions++
		}
	}

	// Faults cease here (the paper's convergence premise); the stopwatch
	// measures from this instant.
	e.clearFaults()
	e.watch.Fault(e.now())

	// Post-fault delivery wave: fresh publications that must reach every
	// member (publication completeness in a self-stabilized system). The
	// publishers are settled members — one with an unsubscribe in flight
	// could complete its departure before its own publish command arrives
	// (channels are non-FIFO), silently losing the wave publication.
	if cfg.DeliveryWave > 0 {
		members := e.l.SettledMembers(e.topic)
		staying := members[:0]
		for _, id := range members {
			if !e.askedToLeave[id] {
				staying = append(staying, id)
			}
		}
		if len(staying) > 0 && e.rec != nil {
			// Ordered (or probe-forced) runs issue the whole wave from a
			// single publisher: every pair of subscribers must then agree
			// on the relative delivery order of the wave publications,
			// which is exactly what the delivery-ordering probe asserts.
			// The publish commands travel as delayed self-sends, so the
			// payload indices need not match the actual publish order —
			// only cross-node agreement is promised.
			p := staying[e.rng.Intn(len(staying))]
			for i := 0; i < cfg.DeliveryWave; i++ {
				payload := fmt.Sprintf("wave-%d", i)
				e.wave = append(e.wave, wavePub{Payload: payload, Origin: p})
				e.l.Publish(p, e.topic, payload)
			}
		} else if len(staying) > 0 {
			for i := 0; i < cfg.DeliveryWave; i++ {
				payload := fmt.Sprintf("wave-%d", i)
				pub := staying[e.rng.Intn(len(staying))]
				e.wave = append(e.wave, wavePub{Payload: payload, Origin: pub})
				e.l.Publish(pub, e.topic, payload)
			}
		}
	}

	e.driver.finish(&res, &e.watch, cfg.ConvergeRounds, e.violation)
	res.Delivered = e.delivered()
	if cfg.TraceSink != nil && e.rec != nil {
		e.freeze(func() { cfg.TraceSink(e.rec.clone()) })
	}
	cfg.logf("chaos: %s", res)
	return res
}

// explain renders the current first legitimacy violation under freeze.
func (e *env) explain() string {
	out := "system did not quiesce"
	e.freeze(func() { out = e.l.Explain(e.topic) })
	if out == "" {
		out = "converged"
	}
	return out
}

// partitionFault builds the partition filter: supervisors + members are
// split into k groups (every supervisor in group 0, where joiners also
// land — the plane stays whole, members lose it), and messages crossing
// group boundaries are dropped. The map is immutable after construction,
// so concurrent reads are safe.
func (e *env) partitionFault(k int) sim.FaultFunc {
	parts := make(map[sim.NodeID]int)
	for _, id := range e.l.SupIDs {
		parts[id] = 0
	}
	members := e.l.Members(e.topic)
	perm := e.rng.Perm(len(members))
	for i, pi := range perm {
		parts[members[pi]] = i % k
	}
	return func(m sim.Message) sim.FaultAction {
		if m.From == m.To {
			return sim.FaultDeliver
		}
		if parts[m.From] != parts[m.To] { // unknown IDs default to group 0
			return sim.FaultDrop
		}
		return sim.FaultDeliver
	}
}

func clamp(v, lo, hi int) int {
	if hi < lo {
		hi = lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
