package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"sspubsub/internal/ordering"
)

// Scenario is a named, declarative chaos script.
type Scenario struct {
	Name string
	// Note is a one-line description for listings.
	Note string
	// N overrides the configured member count when > 0.
	N int
	// Supervisors overrides the configured supervisor-plane size when > 0.
	Supervisors int
	// ReplicationFactor overrides the configured directory replication
	// factor when > 0 (warm-replica supervisor failover).
	ReplicationFactor int
	// Token runs the scenario on the token-passing supervisor stack
	// (the deterministic variant of the paper's conclusion) instead of the
	// database stack.
	Token bool
	// DeliveryMode pins the per-topic delivery mode when non-zero
	// (overriding the configured one): ordered scenarios run every client
	// in FIFO or causal mode and arm the delivery-ordering probe.
	DeliveryMode ordering.Mode
	// Actions is the fault script, applied in order.
	Actions []Action
}

// Registry lists the named scenarios in presentation order.
var Registry = []Scenario{
	{
		Name: "crash-burst",
		Note: "a third of the members fail simultaneously; the survivors must re-form SR(n−k)",
		Actions: []Action{
			{Kind: Settle, Rounds: 5},
			{Kind: CrashBurst, Count: 4},
		},
	},
	{
		Name: "crash-restart-storm",
		Note: "repeated crash waves with stale-state restarts (every restart is an arbitrary initial state)",
		Actions: []Action{
			{Kind: CrashBurst, Count: 3},
			{Kind: Settle, Rounds: 8},
			{Kind: RestartAll},
			{Kind: Settle, Rounds: 8},
			{Kind: CrashBurst, Count: 4},
			{Kind: Settle, Rounds: 8},
			{Kind: RestartAll},
		},
	},
	{
		Name: "join-leave-churn",
		Note: "interleaved subscription churn; Theorem 7's constant-cost handshakes under load",
		Actions: []Action{
			{Kind: JoinBurst, Count: 4},
			{Kind: LeaveBurst, Count: 3},
			{Kind: Settle, Rounds: 6},
			{Kind: JoinBurst, Count: 3},
			{Kind: LeaveBurst, Count: 4},
		},
	},
	{
		Name: "partition-heal",
		Note: "the network splits three ways around the supervisor, then heals",
		Actions: []Action{
			{Kind: Partition, K: 3},
			{Kind: Settle, Rounds: 30},
			{Kind: Heal},
		},
	},
	{
		Name: "message-loss",
		Note: "25% message loss while fresh members join",
		Actions: []Action{
			{Kind: Loss, Rate: 0.25},
			{Kind: JoinBurst, Count: 4},
			{Kind: Settle, Rounds: 40},
			{Kind: Heal},
		},
	},
	{
		Name: "message-dup",
		Note: "30% duplication with mid-fault publications (idempotence of every handler)",
		Actions: []Action{
			{Kind: Duplicate, Rate: 0.3},
			{Kind: Publish, Count: 3},
			{Kind: Settle, Rounds: 30},
			{Kind: Heal},
		},
	},
	{
		Name: "message-reorder",
		Note: "half of all messages are delayed several intervals (non-FIFO channels, amplified)",
		Actions: []Action{
			{Kind: Reorder, Rate: 0.5},
			{Kind: Publish, Count: 3},
			{Kind: Settle, Rounds: 30},
			{Kind: Heal},
		},
	},
	{
		Name: "db-corruption",
		Note: "the four supervisor-database corruption cases of Section 3.1, twice",
		Actions: []Action{
			{Kind: CorruptDB},
			{Kind: Settle, Rounds: 3},
			{Kind: CorruptDB},
		},
	},
	{
		Name: "state-corruption",
		Note: "every member's ring/shortcut state is overwritten with garbage (Theorem 8's arbitrary states)",
		Actions: []Action{
			{Kind: CorruptStates},
		},
	},
	{
		Name: "split-states",
		Note: "members forced into unrecorded self-consistent chains, database wiped (Section 3.2.1's hard case)",
		Actions: []Action{
			{Kind: SplitStates, K: 3},
		},
	},
	{
		Name: "trie-divergence",
		Note: "fabricated publications diverge the tries; anti-entropy must reconcile the union",
		Actions: []Action{
			{Kind: CorruptTries, Count: 6},
			{Kind: Publish, Count: 3},
		},
	},
	{
		Name: "garbage-channels",
		Note: "a flood of corrupted protocol messages (and corrupted wire frames on the net substrate)",
		Actions: []Action{
			{Kind: GarbageTraffic, Count: 60},
			{Kind: WireGarbage, Rate: 0.2, Count: 30},
			{Kind: Settle, Rounds: 15},
			{Kind: Heal},
		},
	},
	{
		Name: "kitchen-sink",
		Note: "partition + crashes + corruption + loss, composed",
		Actions: []Action{
			{Kind: Partition, K: 2},
			{Kind: CrashBurst, Count: 2},
			{Kind: Settle, Rounds: 10},
			{Kind: Heal},
			{Kind: RestartAll},
			{Kind: CorruptDB},
			{Kind: JoinBurst, Count: 2},
			{Kind: Loss, Rate: 0.15},
			{Kind: Settle, Rounds: 20},
			{Kind: Heal},
			{Kind: CorruptTries, Count: 4},
		},
	},
	{
		Name:        "supervisor-crash",
		Note:        "1 of 4 supervisors (the topic's owner) crashes mid-publish-load; the hashdht successor adopts and rebuilds the DB from the live overlay",
		Supervisors: 4,
		Actions: []Action{
			{Kind: Settle, Rounds: 5},
			{Kind: Publish, Count: 3},
			{Kind: CrashSupervisor, Count: 1},
			{Kind: Publish, Count: 3},
			{Kind: Settle, Rounds: 10},
		},
	},
	{
		Name:        "supervisor-crash-restart",
		Note:        "the owner crashes and its successor adopts; the old owner then restarts with stale state and must reclaim ownership at a fresh epoch",
		Supervisors: 4,
		Actions: []Action{
			{Kind: CrashSupervisor, Count: 1},
			{Kind: Settle, Rounds: 60},
			{Kind: Publish, Count: 2},
			{Kind: RestartSupervisors},
			{Kind: Settle, Rounds: 10},
		},
	},
	{
		Name:        "supervisor-double-crash",
		Note:        "two supervisors (incl. the owner) crash while members churn — crash-during-migration must still converge; both restart stale",
		Supervisors: 4,
		Actions: []Action{
			{Kind: CrashSupervisor, Count: 2},
			{Kind: JoinBurst, Count: 2},
			{Kind: Settle, Rounds: 40},
			{Kind: RestartSupervisors},
		},
	},
	{
		Name:        "supervisor-directory-corruption",
		Note:        "the ownership directory itself is corrupted (hosting flags, epochs, routing cache); the plane must re-agree on owners",
		Supervisors: 4,
		Actions: []Action{
			{Kind: CorruptDirectory},
			{Kind: Settle, Rounds: 5},
			{Kind: CorruptDirectory},
			{Kind: Publish, Count: 2},
		},
	},
	{
		Name:              "replica-warm-failover",
		Note:              "with directory replication on, the owner crashes mid-publish-load; the successor adopts its warm replica and announces immediately — no subscriber rebuild",
		Supervisors:       4,
		ReplicationFactor: 2,
		Actions: []Action{
			{Kind: Settle, Rounds: 12},
			{Kind: Publish, Count: 3},
			{Kind: Settle, Rounds: 8},
			{Kind: CrashSupervisor, Count: 1},
			{Kind: Publish, Count: 3},
			{Kind: Settle, Rounds: 10},
		},
	},
	{
		Name:              "supervisor-crash-during-sync",
		Note:              "a replica is corrupted so a bounded-chunk full sync is in flight when the owner crashes; adoption must cope with the half-applied sync",
		Supervisors:       4,
		ReplicationFactor: 1,
		Actions: []Action{
			{Kind: Settle, Rounds: 12},
			{Kind: CorruptReplica},
			{Kind: Settle, Rounds: 2},
			{Kind: CrashSupervisor, Count: 1},
			{Kind: Settle, Rounds: 20},
			{Kind: RestartSupervisors},
		},
	},
	{
		Name:              "supervisor-crash-corrupted-replica",
		Note:              "the successor's replica is corrupted and the owner crashes before anti-entropy can repair it; failover must detect the damage or self-stabilize from the bad warm state",
		Supervisors:       4,
		ReplicationFactor: 1,
		Actions: []Action{
			{Kind: Settle, Rounds: 12},
			{Kind: CorruptReplica},
			{Kind: CrashSupervisor, Count: 1},
			{Kind: Publish, Count: 2},
			{Kind: Settle, Rounds: 10},
		},
	},
	{
		Name:         "fifo-reorder-storm",
		Note:         "FIFO mode under heavy reordering: per-publisher delivery order must survive non-FIFO channels",
		DeliveryMode: ordering.FIFO,
		Actions: []Action{
			{Kind: Reorder, Rate: 0.5},
			{Kind: Publish, Count: 3},
			{Kind: Settle, Rounds: 30},
			{Kind: Heal},
		},
	},
	{
		Name:         "causal-dup-loss",
		Note:         "causal mode under duplication and loss: barriers must hold causes-before-effects without double delivery",
		DeliveryMode: ordering.Causal,
		Actions: []Action{
			{Kind: Duplicate, Rate: 0.3},
			{Kind: Loss, Rate: 0.15},
			{Kind: Publish, Count: 3},
			{Kind: Settle, Rounds: 30},
			{Kind: Heal},
		},
	},
	{
		Name:         "ordering-corruption",
		Note:         "FIFO cursors and publisher sequence counters scrambled twice; the ordered layer must self-stabilize",
		DeliveryMode: ordering.FIFO,
		Actions: []Action{
			{Kind: CorruptOrdering},
			{Kind: Publish, Count: 3},
			{Kind: Settle, Rounds: 10},
			{Kind: CorruptOrdering},
			{Kind: Publish, Count: 3},
			{Kind: Settle, Rounds: 10},
		},
	},
	{
		Name:         "causal-barrier-corruption",
		Note:         "causal coverage positions and pending buffers scrambled mid-reorder; covered-barrier delivery must re-converge",
		DeliveryMode: ordering.Causal,
		Actions: []Action{
			{Kind: Reorder, Rate: 0.3},
			{Kind: CorruptOrdering},
			{Kind: Publish, Count: 3},
			{Kind: Settle, Rounds: 30},
			{Kind: Heal},
		},
	},
	{
		Name:  "token-corruption",
		Note:  "token-passing supervisor variant: O(1) supervisor state and member states scrambled",
		N:     8,
		Token: true,
		Actions: []Action{
			{Kind: CorruptToken},
		},
	},
}

// Lookup resolves a scenario by name.
func Lookup(name string) (Scenario, bool) {
	for _, sc := range Registry {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	out := make([]string, len(Registry))
	for i, sc := range Registry {
		out[i] = sc.Name
	}
	sort.Strings(out)
	return out
}

// Generate builds a random scenario from a seed: 3–8 fault actions drawn
// from the full vocabulary with settle periods interleaved, reproducible
// from the seed alone. Channel faults are always given time to bite
// (settle follows), and the engine force-heals at the end, so every
// generated scenario is convergable in principle — any failure is a
// finding.
func Generate(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	n := 3 + rng.Intn(6)
	var actions []Action
	for i := 0; i < n; i++ {
		a := randomAction(rng)
		actions = append(actions, a)
		switch a.Kind {
		case Partition, Loss, Duplicate, Reorder, WireGarbage:
			// Let the channel fault bite, then usually heal before the next
			// fault composes on top (one filter slot: a later channel fault
			// replaces this one anyway).
			actions = append(actions, Action{Kind: Settle, Rounds: 8 + rng.Intn(20)})
			if rng.Intn(3) > 0 {
				actions = append(actions, Action{Kind: Heal})
			}
		case CrashBurst:
			if rng.Intn(2) == 0 {
				actions = append(actions, Action{Kind: Settle, Rounds: 4 + rng.Intn(10)})
				actions = append(actions, Action{Kind: RestartAll})
			}
		case CrashSupervisor:
			// Give the failover time to bite, then usually bring the dead
			// supervisor back (a stale-state restart is its own fault).
			actions = append(actions, Action{Kind: Settle, Rounds: 8 + rng.Intn(20)})
			if rng.Intn(3) > 0 {
				actions = append(actions, Action{Kind: RestartSupervisors})
			}
		case Settle:
		default:
			if rng.Intn(2) == 0 {
				actions = append(actions, Action{Kind: Settle, Rounds: 2 + rng.Intn(8)})
			}
		}
	}
	return Scenario{
		Name:    fmt.Sprintf("random-%d", seed),
		Note:    "generated scenario (reproducible from the seed)",
		Actions: actions,
	}
}

// randomAction draws one action from the vocabulary. The supervisor-plane
// kinds are included unconditionally: on a single-supervisor plane they
// degrade to safe no-ops (CrashSupervisor never removes the last live
// supervisor), while `-supervisors=4` soaks compose them with every other
// fault class.
func randomAction(rng *rand.Rand) Action {
	switch rng.Intn(19) {
	case 0:
		return Action{Kind: CrashBurst, Count: 1 + rng.Intn(3)}
	case 1:
		return Action{Kind: RestartAll}
	case 2:
		return Action{Kind: JoinBurst, Count: 1 + rng.Intn(3)}
	case 3:
		return Action{Kind: LeaveBurst, Count: 1 + rng.Intn(2)}
	case 4:
		return Action{Kind: Partition, K: 2 + rng.Intn(2)}
	case 5:
		return Action{Kind: Loss, Rate: 0.1 + 0.2*rng.Float64()}
	case 6:
		return Action{Kind: Duplicate, Rate: 0.1 + 0.3*rng.Float64()}
	case 7:
		return Action{Kind: Reorder, Rate: 0.2 + 0.3*rng.Float64()}
	case 8:
		return Action{Kind: GarbageTraffic, Count: 20 + rng.Intn(40)}
	case 9:
		return Action{Kind: CorruptStates}
	case 10:
		return Action{Kind: CorruptDB}
	case 11:
		return Action{Kind: CorruptTries, Count: 2 + rng.Intn(5)}
	case 12:
		return Action{Kind: Publish, Count: 1 + rng.Intn(3)}
	case 13:
		return Action{Kind: CrashSupervisor, Count: 1 + rng.Intn(2)}
	case 14:
		return Action{Kind: RestartSupervisors}
	case 15:
		return Action{Kind: CorruptDirectory}
	case 16:
		return Action{Kind: CorruptReplica}
	case 17:
		return Action{Kind: CorruptOrdering}
	default:
		return Action{Kind: Settle, Rounds: 3 + rng.Intn(10)}
	}
}

// GenerateOrdering builds a random ordered-delivery scenario from a seed:
// like Generate, but the draw is weighted toward the channel faults the
// ordering layer exists to absorb (reordering and duplication above all,
// plus loss and ordering-state corruption), and the scenario pins a
// delivery mode — FIFO for even seeds, causal for odd ones — so soaks
// cover both machines. Channel faults always get time to bite and are
// usually healed; the engine force-heals at the end, so every generated
// scenario is convergable in principle and any failure is a finding.
func GenerateOrdering(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	mode := ordering.FIFO
	if seed%2 != 0 {
		mode = ordering.Causal
	}
	n := 3 + rng.Intn(5)
	var actions []Action
	for i := 0; i < n; i++ {
		var a Action
		switch rng.Intn(10) {
		case 0, 1, 2:
			a = Action{Kind: Reorder, Rate: 0.3 + 0.4*rng.Float64()}
		case 3, 4:
			a = Action{Kind: Duplicate, Rate: 0.2 + 0.3*rng.Float64()}
		case 5:
			a = Action{Kind: Loss, Rate: 0.1 + 0.15*rng.Float64()}
		case 6:
			a = Action{Kind: CorruptOrdering}
		case 7:
			a = Action{Kind: CrashBurst, Count: 1 + rng.Intn(2)}
		case 8:
			a = Action{Kind: JoinBurst, Count: 1 + rng.Intn(2)}
		default:
			a = Action{Kind: Publish, Count: 1 + rng.Intn(3)}
		}
		actions = append(actions, a)
		switch a.Kind {
		case Reorder, Duplicate, Loss:
			// Publish while the channel fault is live — ordered delivery
			// under a clean network proves nothing — then settle, and
			// usually heal before the next fault composes on top.
			actions = append(actions, Action{Kind: Publish, Count: 1 + rng.Intn(3)})
			actions = append(actions, Action{Kind: Settle, Rounds: 8 + rng.Intn(16)})
			if rng.Intn(3) > 0 {
				actions = append(actions, Action{Kind: Heal})
			}
		case CrashBurst:
			actions = append(actions, Action{Kind: Settle, Rounds: 4 + rng.Intn(8)})
			actions = append(actions, Action{Kind: RestartAll})
		default:
			if rng.Intn(2) == 0 {
				actions = append(actions, Action{Kind: Settle, Rounds: 2 + rng.Intn(8)})
			}
		}
	}
	return Scenario{
		Name:         fmt.Sprintf("random-ordering-%d", seed),
		Note:         "generated ordered-delivery scenario (reproducible from the seed)",
		DeliveryMode: mode,
		Actions:      actions,
	}
}
