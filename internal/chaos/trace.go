package chaos

import (
	"sync"

	"sspubsub/internal/ordering"
	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
)

// TraceEntry is one recorded delivery: what a member's application callback
// observed, in observation order. The delivery-ordering probe evaluates its
// invariants over these traces; deliveries the ordered layer flags as
// Recovered (anti-entropy repair) or Forced (self-stabilization release)
// are exempt from the ordering guarantees by contract and carry their flags
// here so the probe can skip them.
type TraceEntry struct {
	Origin    sim.NodeID
	Seq       uint64
	Payload   string
	Recovered bool
	Forced    bool
	Barrier   []proto.BarrierEntry
	// Epoch counts the corrupt-ordering faults applied before this
	// delivery. A corruption legitimately scrambles cursor positions, so
	// per-publisher monotonicity is only promised within one epoch;
	// causal coverage ("causes before effects") spans epochs, because a
	// delivery that happened never un-happens.
	Epoch int
}

// traceRec collects per-node delivery traces. record is installed as the
// cluster-wide OnDeliverTrace callback, so on the live substrates it runs
// on arbitrary node goroutines — every access takes the mutex.
type traceRec struct {
	mu     sync.Mutex
	topic  sim.Topic
	epoch  int
	byNode map[sim.NodeID][]TraceEntry
}

func newTraceRec(topic sim.Topic) *traceRec {
	return &traceRec{topic: topic, byNode: make(map[sim.NodeID][]TraceEntry)}
}

func (r *traceRec) record(node sim.NodeID, t sim.Topic, p proto.Publication, m ordering.Meta) {
	if t != r.topic {
		return
	}
	r.mu.Lock()
	r.byNode[node] = append(r.byNode[node], TraceEntry{
		Origin:    p.Origin,
		Seq:       m.Seq,
		Payload:   p.Payload,
		Recovered: m.Recovered,
		Forced:    m.Forced,
		Barrier:   m.Barrier,
		Epoch:     r.epoch,
	})
	r.mu.Unlock()
}

// bumpEpoch starts a new monotonicity epoch (called under freeze when a
// corrupt-ordering fault is applied).
func (r *traceRec) bumpEpoch() {
	r.mu.Lock()
	r.epoch++
	r.mu.Unlock()
}

// clone snapshots every trace (testing hook).
func (r *traceRec) clone() map[sim.NodeID][]TraceEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[sim.NodeID][]TraceEntry, len(r.byNode))
	for id, es := range r.byNode {
		out[id] = append([]TraceEntry(nil), es...)
	}
	return out
}
