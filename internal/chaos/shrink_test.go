package chaos

import (
	"reflect"
	"testing"
)

// TestShrinkToFailingPair is the satellite's acceptance property: a
// known-failing action list shrinks to a stable minimum. The synthetic
// failure needs both a CrashBurst and a CorruptDB somewhere in the list;
// the minimum is therefore exactly one of each, in order.
func TestShrinkToFailingPair(t *testing.T) {
	fails := func(actions []Action) bool {
		crash, db := false, false
		for _, a := range actions {
			switch a.Kind {
			case CrashBurst:
				crash = true
			case CorruptDB:
				db = true
			}
		}
		return crash && db
	}
	var noisy []Action
	for i := 0; i < 8; i++ {
		noisy = append(noisy, Action{Kind: Settle, Rounds: i + 1})
		if i == 2 {
			noisy = append(noisy, Action{Kind: CrashBurst, Count: 3})
		}
		if i == 5 {
			noisy = append(noisy, Action{Kind: CorruptDB})
		}
		noisy = append(noisy, Action{Kind: Publish, Count: 1})
	}
	got := Shrink(noisy, fails)
	want := []Action{{Kind: CrashBurst, Count: 3}, {Kind: CorruptDB}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Shrink = %v, want %v", got, want)
	}
	// Stability: shrinking the minimum again must be a fixpoint.
	if again := Shrink(got, fails); !reflect.DeepEqual(again, got) {
		t.Fatalf("Shrink is not a fixpoint: %v → %v", got, again)
	}
}

// TestShrinkIsOneMinimal verifies the 1-minimality contract on a failure
// that needs any three Loss actions: the result holds exactly three, and
// removing any single one no longer fails.
func TestShrinkIsOneMinimal(t *testing.T) {
	fails := func(actions []Action) bool {
		n := 0
		for _, a := range actions {
			if a.Kind == Loss {
				n++
			}
		}
		return n >= 3
	}
	var input []Action
	for i := 0; i < 20; i++ {
		k := Settle
		if i%3 == 0 {
			k = Loss
		}
		input = append(input, Action{Kind: k, Rounds: 1, Rate: 0.1})
	}
	got := Shrink(input, fails)
	if len(got) != 3 {
		t.Fatalf("Shrink kept %d actions, want 3: %v", len(got), got)
	}
	for i := range got {
		cand := append(append([]Action(nil), got[:i]...), got[i+1:]...)
		if fails(cand) {
			t.Fatalf("result is not 1-minimal: removing index %d still fails", i)
		}
	}
}

// TestShrinkNonFailingInput pins the flaky-predicate guard: when the input
// does not fail, Shrink returns it unchanged instead of fabricating a
// bogus minimum.
func TestShrinkNonFailingInput(t *testing.T) {
	input := []Action{{Kind: Settle, Rounds: 1}, {Kind: CorruptDB}}
	got := Shrink(input, func([]Action) bool { return false })
	if !reflect.DeepEqual(got, input) {
		t.Fatalf("Shrink altered a non-failing input: %v", got)
	}
}

// TestShrinkIndependentFailure pins the degenerate case: a failure that
// does not depend on the actions at all shrinks to the empty list.
func TestShrinkIndependentFailure(t *testing.T) {
	input := []Action{{Kind: Settle, Rounds: 1}, {Kind: CrashBurst, Count: 1}, {Kind: CorruptDB}}
	got := Shrink(input, func([]Action) bool { return true })
	if len(got) != 0 {
		t.Fatalf("Shrink = %v, want empty", got)
	}
}

// TestShrinkReplaysDeterministically composes the shrinker with the real
// engine: the predicate replays a scenario on the deterministic substrate
// with a fixed seed, so repeated evaluations of the same candidate agree.
// The "failure" here is a healthy convergence check inverted on a
// specific action subset — it exercises Shrink against real Run calls
// without needing a genuinely broken protocol.
func TestShrinkReplaysDeterministically(t *testing.T) {
	if testing.Short() {
		t.Skip("engine-backed shrink skipped in -short mode")
	}
	// Fails iff the scenario still contains a CorruptStates action AND the
	// run (a real engine replay) converges — i.e. the protocol absorbs the
	// corruption. This is monotone in the subset ordering for the engine's
	// healthy behavior, so the minimum is the single CorruptStates action.
	fails := func(actions []Action) bool {
		has := false
		for _, a := range actions {
			if a.Kind == CorruptStates {
				has = true
			}
		}
		if !has {
			return false
		}
		res := Run(Scenario{Name: "shrink-probe", Actions: actions},
			Config{Substrate: SubstrateSim, Seed: 11, N: 8})
		return res.Converged
	}
	input := []Action{
		{Kind: Settle, Rounds: 3},
		{Kind: CorruptStates},
		{Kind: Publish, Count: 2},
		{Kind: Settle, Rounds: 3},
	}
	got := Shrink(input, fails)
	want := []Action{{Kind: CorruptStates}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Shrink = %v, want %v", got, want)
	}
}
