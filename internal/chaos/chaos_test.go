package chaos

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"
)

// liveCfg keeps the live-substrate runs tight: fewer members and a short
// interval bound the wall clock even under -race.
func liveCfg(sub Substrate, seed int64) Config {
	return Config{Substrate: sub, Seed: seed, N: 8, Interval: time.Millisecond}
}

// TestNamedScenariosSim runs every named scenario on the deterministic
// scheduler across several seeds: each must converge with all invariant
// probes green.
func TestNamedScenariosSim(t *testing.T) {
	for _, sc := range Registry {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				res := Run(sc, Config{Substrate: SubstrateSim, Seed: seed})
				if !res.Setup {
					t.Fatalf("seed %d: %s", seed, res.Violation)
				}
				if !res.Converged {
					t.Errorf("seed %d: not converged: %s", seed, res.Violation)
				}
				if res.Converged && res.Rounds < 0 {
					t.Errorf("seed %d: converged but Rounds = %g", seed, res.Rounds)
				}
			}
		})
	}
}

// TestNamedScenariosLiveSubstrates runs every named scenario on the
// concurrent goroutine runtime and the networked loopback transport. The
// subtests run in parallel — every run owns its own substrate.
func TestNamedScenariosLiveSubstrates(t *testing.T) {
	if testing.Short() {
		t.Skip("live substrates skipped in -short mode")
	}
	for _, sub := range []Substrate{SubstrateConcurrent, SubstrateNet} {
		for _, sc := range Registry {
			sub, sc := sub, sc
			t.Run(fmt.Sprintf("%s/%s", sub, sc.Name), func(t *testing.T) {
				t.Parallel()
				res := Run(sc, liveCfg(sub, 7))
				if !res.Setup {
					t.Fatalf("setup failed: %s", res.Violation)
				}
				if !res.Converged {
					t.Errorf("not converged: %s", res.Violation)
				}
			})
		}
	}
}

// TestRandomScenariosConverge is the acceptance property: at least 50
// seeded random scenarios converge on the deterministic substrate. A
// failing seed is a real finding — it replays exactly via
// `srsim chaos -scenario=random -seed=<seed>`.
func TestRandomScenariosConverge(t *testing.T) {
	const seeds = 55
	for seed := int64(1); seed <= seeds; seed++ {
		sc := Generate(seed)
		res := Run(sc, Config{Substrate: SubstrateSim, Seed: seed})
		if !res.Converged {
			t.Errorf("seed %d: %s\n  actions: %v\n  replay: srsim chaos -scenario=random -seed=%d",
				seed, res.Violation, res.Actions, seed)
		}
	}
}

// TestRandomScenariosLiveSubstrates samples random scenarios on the live
// substrates. The default count keeps PR CI fast; the nightly soak covers
// volume via `srsim chaos -count=200` (and CHAOS_RANDOM_LIVE raises the
// count here).
func TestRandomScenariosLiveSubstrates(t *testing.T) {
	if testing.Short() {
		t.Skip("live substrates skipped in -short mode")
	}
	count := int64(6)
	if v := os.Getenv("CHAOS_RANDOM_LIVE"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
			count = n
		}
	}
	for _, sub := range []Substrate{SubstrateConcurrent, SubstrateNet} {
		sub := sub
		for seed := int64(1); seed <= count; seed++ {
			seed := seed
			t.Run(fmt.Sprintf("%s/seed-%d", sub, seed), func(t *testing.T) {
				t.Parallel()
				res := Run(Generate(seed), liveCfg(sub, seed))
				if !res.Converged {
					t.Errorf("seed %d: %s", seed, res.Violation)
				}
			})
		}
	}
}

// TestReplayDeterministic pins the reproducibility contract on the
// deterministic substrate: two runs of the same (scenario, seed) agree on
// every observable outcome, including the exact delivered-message count.
func TestReplayDeterministic(t *testing.T) {
	for _, seed := range []int64{3, 17, 41} {
		sc := Generate(seed)
		a := Run(sc, Config{Substrate: SubstrateSim, Seed: seed})
		b := Run(sc, Config{Substrate: SubstrateSim, Seed: seed})
		if a.Converged != b.Converged || a.Rounds != b.Rounds ||
			a.Delivered != b.Delivered || a.Violation != b.Violation {
			t.Errorf("seed %d replay diverged:\n  %s (delivered %d)\n  %s (delivered %d)",
				seed, a, a.Delivered, b, b.Delivered)
		}
	}
}

// TestSupervisorScenarioReplayDeterministic pins the failover acceptance
// property: the supervisor-crash scenarios replay bit-exactly from their
// seed on the deterministic substrate — ownership migration, DB rebuild
// and epoch bumps included.
func TestSupervisorScenarioReplayDeterministic(t *testing.T) {
	for _, name := range []string{"supervisor-crash", "supervisor-crash-restart", "supervisor-double-crash", "supervisor-directory-corruption",
		"replica-warm-failover", "supervisor-crash-during-sync", "supervisor-crash-corrupted-replica"} {
		sc, ok := Lookup(name)
		if !ok {
			t.Fatalf("scenario %q not registered", name)
		}
		for _, seed := range []int64{2, 19} {
			a := Run(sc, Config{Substrate: SubstrateSim, Seed: seed})
			b := Run(sc, Config{Substrate: SubstrateSim, Seed: seed})
			if !a.Converged {
				t.Errorf("%s seed %d: %s", name, seed, a.Violation)
			}
			if a.Converged != b.Converged || a.Rounds != b.Rounds ||
				a.Delivered != b.Delivered || a.Violation != b.Violation {
				t.Errorf("%s seed %d replay diverged:\n  %s (delivered %d)\n  %s (delivered %d)",
					name, seed, a, a.Delivered, b, b.Delivered)
			}
		}
	}
}

// TestSupervisorCrashProbeCoverage pins the acceptance criterion shape:
// the supervisor-crash scenario runs on a 4-supervisor plane and the
// ownership-convergence probe is part of the evaluated set.
func TestSupervisorCrashProbeCoverage(t *testing.T) {
	sc, _ := Lookup("supervisor-crash")
	if sc.Supervisors != 4 {
		t.Fatalf("supervisor-crash runs on %d supervisors, want 4", sc.Supervisors)
	}
	found := false
	for _, p := range ProbeNames {
		if p == "ownership-convergence" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ownership-convergence missing from ProbeNames %v", ProbeNames)
	}
	res := Run(sc, Config{Substrate: SubstrateSim, Seed: 1})
	if !res.Converged {
		t.Fatalf("supervisor-crash did not converge: %s", res.Violation)
	}
	if res.Rounds < 0 {
		t.Fatalf("converged without a measured convergence time")
	}
}

// TestGenerateDeterministic pins the generator: the same seed yields the
// same action list.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a, b := Generate(seed), Generate(seed)
		if fmt.Sprint(a.Actions) != fmt.Sprint(b.Actions) {
			t.Fatalf("seed %d: generator is not a function of the seed:\n%v\n%v", seed, a.Actions, b.Actions)
		}
		if len(a.Actions) == 0 {
			t.Fatalf("seed %d: empty scenario generated", seed)
		}
	}
}

// TestRegistry pins the scenario registry surface the CLI validates
// against.
func TestRegistry(t *testing.T) {
	if len(Registry) < 10 {
		t.Fatalf("registry holds %d scenarios, want ≥ 10", len(Registry))
	}
	names := Names()
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate scenario name %q", n)
		}
		seen[n] = true
		if _, ok := Lookup(n); !ok {
			t.Fatalf("Lookup(%q) failed for a registered name", n)
		}
	}
	if _, ok := Lookup("no-such-scenario"); ok {
		t.Fatal("Lookup accepted an unknown name")
	}
}

// TestConvergenceRoundsMeasured pins the stopwatch plumbing: a scenario
// with faults reports a non-negative convergence time measured after the
// faults ceased.
func TestConvergenceRoundsMeasured(t *testing.T) {
	sc, _ := Lookup("state-corruption")
	res := Run(sc, Config{Substrate: SubstrateSim, Seed: 5})
	if !res.Converged {
		t.Fatalf("not converged: %s", res.Violation)
	}
	if res.Rounds < 0 {
		t.Fatalf("Rounds = %g, want ≥ 0", res.Rounds)
	}
	if res.FaultActions != 1 {
		t.Fatalf("FaultActions = %d, want 1", res.FaultActions)
	}
}

// TestSubstrateParsing pins the -runtime validation surface.
func TestSubstrateParsing(t *testing.T) {
	for _, sub := range AllSubstrates {
		if got, err := ParseSubstrate(string(sub)); err != nil || got != sub {
			t.Fatalf("ParseSubstrate(%q) = %q, %v", sub, got, err)
		}
	}
	if _, err := ParseSubstrate("quantum"); err == nil {
		t.Fatal("ParseSubstrate accepted an unknown substrate")
	}
}

// TestCorruptReplicaNoopWithoutReplication pins the generator-safety
// contract: the corrupt-replica fault is a safe no-op on configurations
// with no replicas (single supervisor, or a sharded plane with
// ReplicationFactor 0), so seed-generated random scenarios — which draw
// it blindly — stay valid everywhere.
func TestCorruptReplicaNoopWithoutReplication(t *testing.T) {
	sc := Scenario{
		Name: "corrupt-replica-noop",
		Actions: []Action{
			{Kind: Settle, Rounds: 8},
			{Kind: CorruptReplica},
			{Kind: Settle, Rounds: 4},
		},
	}
	for _, cfg := range []Config{
		{Substrate: SubstrateSim, Seed: 1},
		{Substrate: SubstrateSim, Seed: 1, Supervisors: 4},
	} {
		res := Run(sc, cfg)
		if !res.Converged {
			t.Errorf("supervisors=%d: corrupt-replica was not a no-op: %s", cfg.Supervisors, res.Violation)
		}
	}
}

// TestRandomGeneratorDrawsReplicaFault: the random-scenario vocabulary
// includes the corrupt-replica kind (satellite of the replication PR —
// soaks must exercise the new machinery without hand-written scenarios).
func TestRandomGeneratorDrawsReplicaFault(t *testing.T) {
	for seed := int64(1); seed <= 400; seed++ {
		for _, a := range Generate(seed).Actions {
			if a.Kind == CorruptReplica {
				return
			}
		}
	}
	t.Fatal("400 seeds never drew a corrupt-replica action")
}
