// Package metrics provides the small reporting toolkit used by the
// experiment harness: aligned text tables and summary statistics, so every
// experiment prints the same kind of rows the paper's claims are stated in.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table renders rows of cells with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are rendered with %v (floats with %.3g
// unless already strings).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = runeLen(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && runeLen(c) > widths[i] {
				widths[i] = runeLen(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-runeLen(c)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

func runeLen(s string) int { return len([]rune(s)) }

// Summary holds order statistics over a sample.
type Summary struct {
	Count int
	Min   float64
	Max   float64
	Mean  float64
	P50   float64
	P95   float64
	P99   float64
	Std   float64
}

// Summarize computes summary statistics; it returns a zero Summary for an
// empty sample.
func Summarize(sample []float64) Summary {
	n := len(sample)
	if n == 0 {
		return Summary{}
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(n)
	var ss float64
	for _, v := range s {
		ss += (v - mean) * (v - mean)
	}
	q := func(p float64) float64 {
		i := int(p * float64(n-1))
		return s[i]
	}
	return Summary{
		Count: n,
		Min:   s[0],
		Max:   s[n-1],
		Mean:  mean,
		P50:   q(0.50),
		P95:   q(0.95),
		P99:   q(0.99),
		Std:   math.Sqrt(ss / float64(n)),
	}
}

// Ints converts an int sample for Summarize.
func Ints(v []int) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(x)
	}
	return out
}
