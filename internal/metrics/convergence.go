package metrics

import "fmt"

// Stopwatch measures convergence time the way the paper's theorems state
// it: the interval between the moment the last fault was injected and the
// moment every invariant probe holds again. Time is whatever monotonic
// clock the substrate provides (virtual rounds on the deterministic
// scheduler, wall-clock timeout intervals on the live runtimes).
type Stopwatch struct {
	faultAt     float64
	convergedAt float64
	faults      int
	converged   bool
}

// Fault records a fault injection at time now. Later faults overwrite
// earlier ones — convergence is measured from the last fault — and any
// previously recorded convergence is voided.
func (w *Stopwatch) Fault(now float64) {
	w.faultAt = now
	w.faults++
	w.converged = false
}

// Converge records that all probes passed at time now. Only the first
// convergence after the most recent fault sticks.
func (w *Stopwatch) Converge(now float64) {
	if w.converged {
		return
	}
	w.convergedAt = now
	w.converged = true
}

// Faults returns the number of faults recorded.
func (w *Stopwatch) Faults() int { return w.faults }

// Converged reports whether a convergence has been recorded after the
// last fault.
func (w *Stopwatch) Converged() bool { return w.converged }

// Rounds returns the measured convergence time (last fault → probes
// pass), or -1 when convergence has not been recorded. A run with no
// faults converges in 0 rounds by definition — even if no probe ever ran,
// so the zero-fault check must precede the converged check (a fault-free
// run previously reported -1 when Converge was never called).
func (w *Stopwatch) Rounds() float64 {
	if w.faults == 0 {
		return 0
	}
	if !w.converged {
		return -1
	}
	if w.convergedAt < w.faultAt {
		return 0 // probes already held when the fault landed (no-op fault)
	}
	return w.convergedAt - w.faultAt
}

// Convergence aggregates convergence times across many runs (a scenario
// sweep, a soak): successes feed the sample, failures are counted.
type Convergence struct {
	sample   []float64
	failures int
}

// Observe records one run: rounds is the measured convergence time (only
// consulted when ok), ok is whether the run converged at all.
func (c *Convergence) Observe(rounds float64, ok bool) {
	if !ok {
		c.failures++
		return
	}
	c.sample = append(c.sample, rounds)
}

// Runs returns the total number of observed runs.
func (c *Convergence) Runs() int { return len(c.sample) + c.failures }

// Failures returns the number of runs that never converged.
func (c *Convergence) Failures() int { return c.failures }

// Summary returns order statistics over the converged runs' times.
func (c *Convergence) Summary() Summary { return Summarize(c.sample) }

// String renders a one-line report for soak logs.
func (c *Convergence) String() string {
	s := c.Summary()
	return fmt.Sprintf("%d runs, %d failures; convergence rounds min %.1f p50 %.1f p95 %.1f max %.1f",
		c.Runs(), c.failures, s.Min, s.P50, s.P95, s.Max)
}
