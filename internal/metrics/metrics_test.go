package metrics

import (
	"math/rand"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("n", "rounds", "note")
	tb.AddRow(16, 7, "ok")
	tb.AddRow(1024, 12, "also ok")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "n ") || !strings.Contains(lines[0], "rounds") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[2], "16") || !strings.Contains(lines[3], "1024") {
		t.Errorf("rows: %q", out)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("v")
	tb.AddRow(3.14159)
	if !strings.Contains(tb.String(), "3.142") {
		t.Errorf("float not formatted: %q", tb.String())
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.Count != 10 || s.Min != 1 || s.Max != 10 {
		t.Errorf("bounds: %+v", s)
	}
	if s.Mean != 5.5 {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.P50 < 5 || s.P50 > 6 {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.Std < 2.8 || s.Std > 3.0 {
		t.Errorf("std = %v", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.Max != 0 {
		t.Errorf("empty summary: %+v", s)
	}
}

func TestInts(t *testing.T) {
	got := Ints([]int{1, 2, 3})
	if len(got) != 3 || got[2] != 3.0 {
		t.Errorf("Ints = %v", got)
	}
}

// Property test: on any sample, order statistics must be monotone
// (Min ≤ P50 ≤ P95 ≤ P99 ≤ Max) and the mean must lie within [Min, Max].
func TestSummarizeQuantileMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(50)
		sample := make([]float64, n)
		for i := range sample {
			switch rng.Intn(3) {
			case 0:
				sample[i] = rng.NormFloat64() * 100
			case 1:
				sample[i] = float64(rng.Intn(5)) // heavy ties
			default:
				sample[i] = rng.ExpFloat64()
			}
		}
		s := Summarize(sample)
		if s.Count != n {
			t.Fatalf("trial %d: Count = %d, want %d", trial, s.Count, n)
		}
		if !(s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max) {
			t.Fatalf("trial %d: quantiles not monotone: min %g p50 %g p95 %g p99 %g max %g (sample %v)",
				trial, s.Min, s.P50, s.P95, s.P99, s.Max, sample)
		}
		if s.Mean < s.Min || s.Mean > s.Max {
			t.Fatalf("trial %d: mean %g outside [%g, %g]", trial, s.Mean, s.Min, s.Max)
		}
		if s.Std < 0 {
			t.Fatalf("trial %d: negative std %g", trial, s.Std)
		}
	}
}

// A single-element sample collapses every statistic onto that element.
func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{7.5})
	if s.Min != 7.5 || s.P50 != 7.5 || s.P95 != 7.5 || s.P99 != 7.5 || s.Max != 7.5 || s.Mean != 7.5 || s.Std != 0 {
		t.Fatalf("Summarize singleton = %+v", s)
	}
}
