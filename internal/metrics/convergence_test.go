package metrics

import (
	"strings"
	"testing"
)

func TestStopwatchMeasuresFromLastFault(t *testing.T) {
	var w Stopwatch
	w.Fault(10)
	w.Fault(25) // later fault resets the measurement origin
	w.Converge(40)
	if got := w.Rounds(); got != 15 {
		t.Fatalf("Rounds() = %g, want 15 (measured from the last fault)", got)
	}
	if w.Faults() != 2 {
		t.Fatalf("Faults() = %d, want 2", w.Faults())
	}
}

func TestStopwatchOnlyFirstConvergenceSticks(t *testing.T) {
	var w Stopwatch
	w.Fault(5)
	w.Converge(8)
	w.Converge(100) // the probes keep passing; the measurement must not move
	if got := w.Rounds(); got != 3 {
		t.Fatalf("Rounds() = %g, want 3", got)
	}
}

func TestStopwatchFaultVoidsConvergence(t *testing.T) {
	var w Stopwatch
	w.Fault(5)
	w.Converge(8)
	w.Fault(20) // a new fault re-opens the measurement
	if w.Converged() {
		t.Fatal("Converged() true right after a new fault")
	}
	if got := w.Rounds(); got != -1 {
		t.Fatalf("Rounds() = %g, want -1 while unconverged", got)
	}
	w.Converge(26)
	if got := w.Rounds(); got != 6 {
		t.Fatalf("Rounds() = %g, want 6", got)
	}
}

func TestStopwatchNoFaults(t *testing.T) {
	var w Stopwatch
	w.Converge(7)
	if got := w.Rounds(); got != 0 {
		t.Fatalf("Rounds() = %g, want 0 for a fault-free run", got)
	}
}

// A fault-free run converges in 0 rounds by definition, even when no probe
// ever recorded a convergence (regression: the converged check used to run
// first and report -1).
func TestStopwatchNoFaultsNoProbes(t *testing.T) {
	var w Stopwatch
	if got := w.Rounds(); got != 0 {
		t.Fatalf("Rounds() = %g, want 0 for an untouched stopwatch", got)
	}
}

// Fault and convergence observed at the same timestamp: zero rounds, not
// negative and not -1 (the probes passed in the same instant the fault
// landed).
func TestStopwatchFaultAndConvergeSameInstant(t *testing.T) {
	var w Stopwatch
	w.Fault(12)
	w.Converge(12)
	if got := w.Rounds(); got != 0 {
		t.Fatalf("Rounds() = %g, want 0 for same-instant fault+converge", got)
	}
	if !w.Converged() {
		t.Fatal("Converged() = false after Converge")
	}
}

func TestStopwatchUnconverged(t *testing.T) {
	var w Stopwatch
	w.Fault(3)
	if w.Converged() {
		t.Fatal("Converged() true without a Converge call")
	}
	if got := w.Rounds(); got != -1 {
		t.Fatalf("Rounds() = %g, want -1", got)
	}
}

func TestConvergenceAggregation(t *testing.T) {
	var c Convergence
	for _, r := range []float64{10, 20, 30, 40} {
		c.Observe(r, true)
	}
	c.Observe(0, false)
	c.Observe(0, false)
	if c.Runs() != 6 {
		t.Fatalf("Runs() = %d, want 6", c.Runs())
	}
	if c.Failures() != 2 {
		t.Fatalf("Failures() = %d, want 2", c.Failures())
	}
	s := c.Summary()
	if s.Count != 4 || s.Min != 10 || s.Max != 40 || s.Mean != 25 {
		t.Fatalf("Summary() = %+v, want count 4, min 10, max 40, mean 25", s)
	}
	if out := c.String(); !strings.Contains(out, "6 runs, 2 failures") {
		t.Fatalf("String() = %q", out)
	}
}
