package cluster

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"sspubsub/internal/sim"
)

// fingerprint reduces an entire run — virtual time, message accounting by
// type and by node, and every member's explicit state — to one string.
// Bit-identical runs produce identical fingerprints.
func fingerprint(c *Cluster, t sim.Topic) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "now=%.6f delivered=%d dropped=%d inflight=%d\n",
		c.Sched.Now(), c.Sched.Delivered(), c.Sched.Dropped(), c.Sched.InFlight())
	for _, name := range c.Sched.TypeNames() {
		fmt.Fprintf(&sb, "type %s=%d\n", name, c.Sched.CountByType(name))
	}
	ids := c.Sched.NodeIDs()
	for _, id := range ids {
		fmt.Fprintf(&sb, "node %d sent=%d recv=%d\n", id, c.Sched.SentBy(id), c.Sched.ReceivedBy(id))
	}
	members := c.Members(t)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	for _, id := range members {
		st, _ := c.Clients[id].StateOf(t)
		fmt.Fprintf(&sb, "state %d: label=%s left=%s right=%s ring=%s sc=%d pubs=%d\n",
			id, st.Label, st.Left, st.Right, st.Ring, len(st.Shortcuts),
			len(c.Clients[id].Publications(t)))
	}
	fmt.Fprintf(&sb, "db=%v\n", c.Sup.Snapshot(t))
	return sb.String()
}

// runScripted drives one full scenario: fresh join, convergence, state and
// database corruption, garbage traffic, recovery, churn (leave + crash),
// publications. Every random decision flows from the scheduler's seed, so
// the run is a pure function of seed.
func runScripted(seed int64, n int) (string, int, bool) {
	const topic sim.Topic = 1
	c := New(Options{Seed: seed})
	ids := c.AddClients(n)
	c.JoinAll(topic)
	r1, ok := c.RunUntilConverged(topic, n, 5000)
	if !ok {
		return "", 0, false
	}
	c.CorruptSubscriberStates(topic)
	c.CorruptSupervisorDB(topic)
	c.InjectGarbageMessages(topic, 3*n)
	r2, ok := c.RunUntilConverged(topic, n, 20000)
	if !ok {
		return "", 0, false
	}
	c.Leave(ids[1], topic)
	c.Crash(ids[2])
	r3, ok := c.RunUntilConverged(topic, n-2, 20000)
	if !ok {
		return "", 0, false
	}
	members := c.Members(topic)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	for p := 0; p < 5; p++ {
		c.Publish(members[p%len(members)], topic, fmt.Sprintf("pub-%d", p))
	}
	rp, ok := c.Sched.RunRoundsUntil(20000, func() bool {
		return c.AllHavePubs(topic, 5) && c.TriesEqual(topic)
	})
	if !ok {
		return "", 0, false
	}
	return fingerprint(c, topic), r1 + r2 + r3 + rp, true
}

// TestSchedulerDeterminismProperty is the replay guarantee the concurrent
// runtime is validated against: two scheduler runs with equal seeds and
// equal call sequences are bit-identical — same convergence rounds, same
// message counts per type and per node, same final protocol states. The
// property is checked across many seeds and two system sizes.
func TestSchedulerDeterminismProperty(t *testing.T) {
	for _, n := range []int{8, 13} {
		for s := 0; s < 8; s++ {
			seed := int64(s)*7919 + 11
			t.Run(fmt.Sprintf("n=%d/seed=%d", n, seed), func(t *testing.T) {
				fp1, rounds1, ok1 := runScripted(seed, n)
				fp2, rounds2, ok2 := runScripted(seed, n)
				if !ok1 || !ok2 {
					t.Fatalf("scenario did not converge (ok1=%v ok2=%v)", ok1, ok2)
				}
				if rounds1 != rounds2 {
					t.Errorf("rounds differ: %d vs %d", rounds1, rounds2)
				}
				if fp1 != fp2 {
					t.Errorf("fingerprints differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", fp1, fp2)
				}
			})
		}
	}
}

// TestSchedulerSeedSensitivity is the complement: different seeds must not
// produce identical full fingerprints (they encode random delays), which
// guards against the accounting accidentally ignoring the seed.
func TestSchedulerSeedSensitivity(t *testing.T) {
	fp1, _, ok1 := runScripted(101, 8)
	fp2, _, ok2 := runScripted(202, 8)
	if !ok1 || !ok2 {
		t.Fatal("scenario did not converge")
	}
	if fp1 == fp2 {
		t.Error("two different seeds produced bit-identical runs")
	}
}
