package cluster

import (
	"testing"

	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
)

// TestStaleSubscribeAfterDeparture is the deterministic regression for a
// permanent-divergence bug the chaos churn scenarios surfaced: channels
// are non-FIFO, so a subscriber's Subscribe (the initial join or an
// action (i) retry) can be delivered to the supervisor AFTER its
// unsubscribe handshake completed. The supervisor then re-records the
// departed node; the failure detector never suspects it (it is alive),
// the departed instance never probes or re-subscribes, and before the
// fix it even adopted the label from the round-robin refresh while
// staying departed — leaving the database and the live membership in
// permanent disagreement. The fix: a departed instance that receives a
// non-⊥ configuration answers with Unsubscribe until the database
// forgets it again.
func TestStaleSubscribeAfterDeparture(t *testing.T) {
	c := New(Options{Seed: 99})
	const n = 5
	c.AddClients(n)
	c.JoinAll(topicA)
	if _, ok := c.RunUntilConverged(topicA, n, 5000); !ok {
		t.Fatalf("setup: %s", c.Explain(topicA))
	}

	v := c.Members(topicA)[2]
	c.Leave(v, topicA)
	if _, ok := c.RunUntilConverged(topicA, n-1, 5000); !ok {
		t.Fatalf("leave never converged: %s", c.Explain(topicA))
	}
	if !c.Clients[v].Departed(topicA) {
		t.Fatal("leaver never departed")
	}

	// The stale message: v's Subscribe arrives after the departure grant.
	// Step event-by-event to observe the stale entry the moment it lands
	// (the repair round-trip removes it again within a round or two).
	c.Sched.Send(sim.Message{To: SupervisorID, From: v, Topic: topicA, Body: proto.Subscribe{V: v}})
	recorded := false
	for i := 0; i < 100000 && !recorded; i++ {
		if !c.Sched.Step() {
			break
		}
		recorded = !c.Sup.LabelOf(topicA, v).IsBottom()
	}
	if !recorded {
		t.Fatal("stale Subscribe was not recorded — the scenario no longer reproduces the race")
	}

	// Self-stabilization: the departed node must talk the supervisor back
	// out of the stale entry, restoring db ↔ membership agreement.
	if r, ok := c.RunUntilConverged(topicA, n-1, 5000); !ok {
		t.Fatalf("stale entry never repaired: %s", c.Explain(topicA))
	} else {
		t.Logf("repaired in %d rounds", r)
	}
	if !c.Sup.LabelOf(topicA, v).IsBottom() {
		t.Fatal("departed node still recorded after convergence")
	}
}
