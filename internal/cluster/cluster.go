// Package cluster assembles a complete supervised publish-subscribe system
// on the deterministic scheduler: one supervisor plus any number of client
// nodes. It provides the legitimacy predicate used by every convergence
// experiment (comparing live protocol state against the unique legitimate
// SR(n) computed by package topology), corruption injectors for arbitrary
// initial states, and workload helpers.
//
// Tests, benchmarks and the experiment CLI all drive this harness.
package cluster

import (
	"fmt"
	"strings"

	"sspubsub/internal/core"
	"sspubsub/internal/label"
	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
)

// SupervisorID is the well-known node ID of the supervisor.
const SupervisorID sim.NodeID = 1

// Options configure a cluster.
type Options struct {
	Seed       int64
	ClientOpts core.Options
	Sched      sim.SchedulerOptions // Seed is overridden by Options.Seed
}

// Cluster is a deterministic simulation of the full system: the shared
// Live driver/legitimacy surface running on the discrete-event Scheduler,
// plus the research controls that only make sense there (round-based
// convergence, corruption injectors).
type Cluster struct {
	*Live
	Sched *sim.Scheduler
}

// New creates a cluster with a supervisor and no clients.
func New(opts Options) *Cluster {
	so := opts.Sched
	so.Seed = opts.Seed
	s := sim.NewScheduler(so)
	return &Cluster{Live: NewLive(s, opts.ClientOpts), Sched: s}
}

// RunUntilConverged advances rounds until the topic is legitimate with
// exactly n members; it returns the rounds taken and whether convergence
// was reached.
func (c *Cluster) RunUntilConverged(t sim.Topic, n, maxRounds int) (int, bool) {
	return c.Sched.RunRoundsUntil(maxRounds, func() bool { return c.ConvergedWith(t, n) })
}

// ---- corruption injectors (arbitrary initial states, Theorem 8) ----

// CorruptSubscriberStates overwrites every member's explicit state with
// pseudo-random garbage: random labels (possibly duplicated, possibly
// malformed), neighbour pointers to random members (or self), and random
// shortcut slots. The result is still a weakly connected graph because
// every node keeps its read-only edge to the supervisor.
func (c *Cluster) CorruptSubscriberStates(t sim.Topic) {
	rng := c.Sched.Rand()
	members := c.Members(t)
	randTuple := func() proto.Tuple {
		if rng.Intn(4) == 0 || len(members) == 0 {
			return proto.Tuple{}
		}
		id := members[rng.Intn(len(members))]
		return proto.Tuple{L: label.FromIndex(uint64(rng.Intn(4 * len(members)))), Ref: id}
	}
	for _, id := range members {
		in, ok := c.Clients[id].Instance(t)
		if !ok {
			continue
		}
		var lab label.Label
		switch rng.Intn(4) {
		case 0:
			lab = label.Bottom
		case 1:
			lab = label.FromIndex(uint64(rng.Intn(len(members))))
		case 2:
			lab = label.FromIndex(uint64(rng.Intn(8 * len(members))))
		default:
			lab = label.Label{Bits: rng.Uint64() & 3, Len: 2} // possibly malformed
		}
		sc := map[label.Label]sim.NodeID{}
		for i := rng.Intn(3); i > 0; i-- {
			tp := randTuple()
			if !tp.IsBottom() {
				sc[tp.L] = tp.Ref
			}
		}
		in.Sub.ForceState(lab, randTuple(), randTuple(), randTuple(), sc)
	}
}

// CorruptSupervisorDB injects all four database corruption cases of
// Section 3.1: a ⊥ tuple, a duplicated subscriber, a deleted label and an
// out-of-range label.
func (c *Cluster) CorruptSupervisorDB(t sim.Topic) {
	n := c.Sup.N(t)
	if n == 0 {
		return
	}
	rng := c.Sched.Rand()
	snap := c.Sup.Snapshot(t)
	var someNode sim.NodeID
	for _, v := range snap { // deterministic: take the largest recorded ID
		if v > someNode {
			someNode = v
		}
	}
	c.Sup.InjectRaw(t, label.FromIndex(uint64(n+1+rng.Intn(8))), sim.None)  // (i) ⊥ subscriber
	c.Sup.InjectRaw(t, label.FromIndex(uint64(n+10+rng.Intn(8))), someNode) // (ii)+(iv) duplicate, out of range
	c.Sup.DeleteLabel(t, label.FromIndex(uint64(rng.Intn(n))))              // (iii) missing label
}

// InjectGarbageMessages places corrupted messages into random members'
// channels at time ~0: stale tuples, wrong labels, nonexistent topics and
// truncated publication traffic.
func (c *Cluster) InjectGarbageMessages(t sim.Topic, count int) {
	rng := c.Sched.Rand()
	members := c.Members(t)
	if len(members) == 0 {
		return
	}
	pick := func() sim.NodeID { return members[rng.Intn(len(members))] }
	for i := 0; i < count; i++ {
		to := pick()
		var body any
		switch rng.Intn(6) {
		case 0:
			body = proto.Introduce{C: proto.Tuple{L: label.FromIndex(rng.Uint64() % 64), Ref: pick()}, Flag: proto.Flag(rng.Intn(2))}
		case 1:
			body = proto.Linearize{V: proto.Tuple{L: label.FromIndex(rng.Uint64() % 64), Ref: pick()}}
		case 2:
			body = proto.SetData{Pred: proto.Tuple{L: label.FromIndex(rng.Uint64() % 64), Ref: pick()},
				Label: label.FromIndex(rng.Uint64() % 64),
				Succ:  proto.Tuple{L: label.FromIndex(rng.Uint64() % 64), Ref: pick()}}
		case 3:
			body = proto.Check{Sender: proto.Tuple{L: label.FromIndex(rng.Uint64() % 64), Ref: pick()},
				YourLabel: label.FromIndex(rng.Uint64() % 64), Flag: proto.CYC}
		case 4:
			body = proto.IntroduceShortcut{T: proto.Tuple{L: label.FromIndex(rng.Uint64() % 64), Ref: pick()}}
		default:
			body = proto.CheckTrie{Sender: pick(), Nodes: []proto.NodeSummary{{Label: proto.Key{Bits: rng.Uint64(), Len: 7}}}}
		}
		c.Sched.InjectAt(rng.Float64()*0.5, sim.Message{To: to, From: pick(), Topic: t, Body: body})
	}
}

// PartitionStates forces the members into k disjoint sorted chains with
// self-consistent but unrecorded labels — the "connected component with
// negligible probe probability" scenario of Section 3.2.1. The supervisor
// database is wiped for the topic.
func (c *Cluster) PartitionStates(t sim.Topic, k int) {
	members := c.Members(t)
	snap := c.Sup.Snapshot(t)
	for l := range snap {
		c.Sup.DeleteLabel(t, l)
	}
	if len(members) == 0 || k < 1 {
		return
	}
	for part := 0; part < k; part++ {
		var chain []sim.NodeID
		for i, id := range members {
			if i%k == part {
				chain = append(chain, id)
			}
		}
		for i, id := range chain {
			in, _ := c.Clients[id].Instance(t)
			// Self-consistent labels with long lengths → tiny probe
			// probability via action (ii).
			lab := label.FromIndex(uint64(1024 + part*4096 + i))
			var left, right proto.Tuple
			if i > 0 {
				left = proto.Tuple{L: label.FromIndex(uint64(1024 + part*4096 + i - 1)), Ref: chain[i-1]}
			}
			if i < len(chain)-1 {
				right = proto.Tuple{L: label.FromIndex(uint64(1024 + part*4096 + i + 1)), Ref: chain[i+1]}
			}
			in.Sub.ForceState(lab, left, right, proto.Tuple{}, nil)
		}
	}
}

// DumpStates renders every member's state (debugging aid).
func (c *Cluster) DumpStates(t sim.Topic) string {
	var sb strings.Builder
	for _, id := range c.Members(t) {
		st, _ := c.Clients[id].StateOf(t)
		fmt.Fprintf(&sb, "node %d: label=%s left=%s right=%s ring=%s sc=%v\n",
			id, st.Label, st.Left, st.Right, st.Ring, st.Shortcuts)
	}
	fmt.Fprintf(&sb, "db: %v\n", c.Sup.Snapshot(t))
	return sb.String()
}
