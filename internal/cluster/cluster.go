// Package cluster assembles a complete supervised publish-subscribe system
// on the deterministic scheduler: one supervisor plus any number of client
// nodes. It provides the legitimacy predicate used by every convergence
// experiment (comparing live protocol state against the unique legitimate
// SR(n) computed by package topology), corruption injectors for arbitrary
// initial states, and workload helpers.
//
// Tests, benchmarks and the experiment CLI all drive this harness.
package cluster

import (
	"fmt"
	"strings"

	"sspubsub/internal/core"
	"sspubsub/internal/sim"
)

// SupervisorID is the well-known node ID of the supervisor.
const SupervisorID sim.NodeID = 1

// Options configure a cluster.
type Options struct {
	Seed       int64
	ClientOpts core.Options
	Sched      sim.SchedulerOptions // Seed is overridden by Options.Seed
	// Supervisors is the supervisor-plane size (default 1). With more than
	// one, topics are sharded by consistent hashing and supervisor crashes
	// are recoverable (see internal/supervisor's plane).
	Supervisors int
	// ReplicationFactor is how many hashdht successors each topic owner
	// replicates its directory to (default 0: failover falls back to the
	// Reregister rebuild). Only meaningful with Supervisors > 1.
	ReplicationFactor int
}

// Cluster is a deterministic simulation of the full system: the shared
// Live driver/legitimacy surface running on the discrete-event Scheduler,
// plus the research controls that only make sense there (round-based
// convergence, corruption injectors).
type Cluster struct {
	*Live
	Sched *sim.Scheduler
}

// New creates a cluster with a supervisor and no clients.
func New(opts Options) *Cluster {
	so := opts.Sched
	so.Seed = opts.Seed
	s := sim.NewScheduler(so)
	supers := opts.Supervisors
	if supers < 1 {
		supers = 1
	}
	return &Cluster{Live: NewLiveRF(s, opts.ClientOpts, supers, opts.ReplicationFactor), Sched: s}
}

// RunUntilConverged advances rounds until the topic is legitimate with
// exactly n members; it returns the rounds taken and whether convergence
// was reached.
func (c *Cluster) RunUntilConverged(t sim.Topic, n, maxRounds int) (int, bool) {
	return c.Sched.RunRoundsUntil(maxRounds, func() bool { return c.ConvergedWith(t, n) })
}

// ---- corruption injectors (arbitrary initial states, Theorem 8) ----

// CorruptSubscriberStates overwrites every member's explicit state with
// pseudo-random garbage drawn from the scheduler's random source; see
// Live.CorruptSubscriberStatesRand.
func (c *Cluster) CorruptSubscriberStates(t sim.Topic) {
	c.CorruptSubscriberStatesRand(t, c.Sched.Rand())
}

// CorruptSupervisorDB injects all four database corruption cases of
// Section 3.1 using the scheduler's random source; see
// Live.CorruptSupervisorDBRand.
func (c *Cluster) CorruptSupervisorDB(t sim.Topic) {
	c.CorruptSupervisorDBRand(t, c.Sched.Rand())
}

// InjectGarbageMessages places corrupted messages into random members'
// channels at time ~0: stale tuples, wrong labels, nonexistent topics and
// truncated publication traffic (the shared garbageMessage vocabulary).
func (c *Cluster) InjectGarbageMessages(t sim.Topic, count int) {
	rng := c.Sched.Rand()
	members := c.Members(t)
	if len(members) == 0 {
		return
	}
	for i := 0; i < count; i++ {
		m := garbageMessage(t, members, rng)
		c.Sched.InjectAt(rng.Float64()*0.5, m)
	}
}

// DumpStates renders every member's state (debugging aid).
func (c *Cluster) DumpStates(t sim.Topic) string {
	var sb strings.Builder
	for _, id := range c.Members(t) {
		st, _ := c.Clients[id].StateOf(t)
		fmt.Fprintf(&sb, "node %d: label=%s left=%s right=%s ring=%s sc=%v\n",
			id, st.Label, st.Left, st.Right, st.Ring, st.Shortcuts)
	}
	if sup := c.SupFor(t); sup != nil {
		fmt.Fprintf(&sb, "db(owner %d): %v\n", sup.ID(), sup.Snapshot(t))
	} else {
		fmt.Fprintf(&sb, "db: no live supervisor\n")
	}
	return sb.String()
}
