package cluster

import (
	"testing"
)

// replicaCluster builds a converged cluster with directory replication on:
// n members over k supervisors at replication factor rf, legitimate AND
// with every expected replica holding the owner's exact digest.
func replicaCluster(t *testing.T, seed int64, k, n, rf int) *Cluster {
	t.Helper()
	c := New(Options{Seed: seed, Supervisors: k, ReplicationFactor: rf})
	c.AddClients(n)
	c.JoinAll(topicA)
	if _, ok := c.RunUntilConverged(topicA, n, 8000); !ok {
		t.Fatalf("setup never converged: %s", c.Explain(topicA))
	}
	if _, ok := c.Sched.RunRoundsUntil(2000, func() bool {
		return c.ReplicasConverged(topicA)
	}); !ok {
		t.Fatalf("replicas never converged: %s", c.ExplainReplication(topicA))
	}
	return c
}

// TestWarmFailoverPreservesEveryLabel is the tentpole's headline property:
// with a warm replica, the successor adopts the directory as-is, so NO
// survivor is relabelled — strictly stronger than the cold rebuild's
// majority-preservation guarantee (TestSupervisorFailoverRebuildsDB).
func TestWarmFailoverPreservesEveryLabel(t *testing.T) {
	const n = 10
	c := replicaCluster(t, 3, 4, n, 2)

	owner, _ := c.ExpectedOwner(topicA)
	before := c.Sups[owner].Snapshot(topicA)
	if !c.CrashSupervisor(owner) {
		t.Fatalf("CrashSupervisor(%d) refused", owner)
	}
	successor, _ := c.ExpectedOwner(topicA)

	if r, ok := c.RunUntilConverged(topicA, n, 8000); !ok {
		t.Fatalf("no re-convergence after owner crash: %s", c.Explain(topicA))
	} else {
		t.Logf("warm failover converged in %d rounds (owner %d → %d)", r, owner, successor)
	}
	if got := c.Sups[successor].EpochOf(topicA); got == 0 {
		t.Fatal("successor still at epoch 0 — adoption never bumped the era")
	}
	after := c.Sups[successor].Snapshot(topicA)
	if len(after) != n {
		t.Fatalf("successor records %d members, want %d", len(after), n)
	}
	for lab, v := range after {
		if before[lab] != v {
			t.Errorf("label %s remapped: %d before, %d after — warm adoption must not relabel", lab, before[lab], v)
		}
	}
	// The new owner must restart the replica stream to its own successors.
	if _, ok := c.Sched.RunRoundsUntil(2000, func() bool {
		return c.ReplicasConverged(topicA)
	}); !ok {
		t.Fatalf("new owner never re-replicated: %s", c.ExplainReplication(topicA))
	}
}

// TestWarmFailoverFasterThanCold pins the performance claim at the cluster
// scale too: same seed, same plane, warm adoption re-converges in fewer
// rounds than the Reregister rebuild.
func TestWarmFailoverFasterThanCold(t *testing.T) {
	const n = 12
	run := func(rf int) int {
		c := New(Options{Seed: 9, Supervisors: 4, ReplicationFactor: rf})
		c.AddClients(n)
		c.JoinAll(topicA)
		if _, ok := c.RunUntilConverged(topicA, n, 8000); !ok {
			t.Fatalf("rf=%d setup: %s", rf, c.Explain(topicA))
		}
		if rf > 0 {
			if _, ok := c.Sched.RunRoundsUntil(2000, func() bool {
				return c.ReplicasConverged(topicA)
			}); !ok {
				t.Fatalf("rf=%d replicas never converged: %s", rf, c.ExplainReplication(topicA))
			}
		}
		owner, _ := c.ExpectedOwner(topicA)
		c.CrashSupervisor(owner)
		r, ok := c.RunUntilConverged(topicA, n, 8000)
		if !ok {
			t.Fatalf("rf=%d failover: %s", rf, c.Explain(topicA))
		}
		return r
	}
	warm, cold := run(2), run(0)
	t.Logf("failover rounds: warm=%d cold=%d", warm, cold)
	if warm >= cold {
		t.Errorf("warm failover (%d rounds) not faster than cold rebuild (%d rounds)", warm, cold)
	}
}

// TestAntiEntropyRepairsCorruptedReplica: scramble a replica arbitrarily;
// the owner's periodic digest probe must detect the divergence and ship a
// full sync — the replica re-converges with no owner-side mutation and no
// effect on the live overlay.
func TestAntiEntropyRepairsCorruptedReplica(t *testing.T) {
	const n = 8
	c := replicaCluster(t, 5, 4, n, 1)

	owner, _ := c.ExpectedOwner(topicA)
	targets := c.ExpectedReplicas(topicA)
	if len(targets) != 1 {
		t.Fatalf("expected exactly 1 replica holder, got %v", targets)
	}
	c.Sups[targets[0]].CorruptReplica(topicA, c.Sched.Rand())
	if c.ReplicasConverged(topicA) {
		t.Fatal("corruption was a no-op — the injector did not scramble the replica")
	}
	if _, ok := c.Sched.RunRoundsUntil(2000, func() bool {
		return c.ReplicasConverged(topicA)
	}); !ok {
		t.Fatalf("anti-entropy never repaired the replica: %s", c.ExplainReplication(topicA))
	}
	// The repair is owner → replica only: the live directory and overlay
	// must be untouched throughout.
	if got := c.Sups[owner].N(topicA); got != n {
		t.Errorf("owner database changed during replica repair: %d entries, want %d", got, n)
	}
	if !c.Converged(topicA) {
		t.Errorf("overlay left legitimacy during replica repair: %s", c.Explain(topicA))
	}
}

// TestFailoverWithoutReplicaFallsBack: crash the owner AND its sole
// replica holder in the same instant. The next successor holds no replica,
// so the warm path is unavailable — it must fall back to the PR 5
// Reregister rebuild and still converge.
func TestFailoverWithoutReplicaFallsBack(t *testing.T) {
	const n = 8
	c := replicaCluster(t, 7, 4, n, 1)

	owner, _ := c.ExpectedOwner(topicA)
	holder := c.ExpectedReplicas(topicA)[0]
	if !c.CrashSupervisor(holder) || !c.CrashSupervisor(owner) {
		t.Fatal("CrashSupervisor refused")
	}
	successor, ok := c.ExpectedOwner(topicA)
	if !ok || successor == owner || successor == holder {
		t.Fatalf("no fresh successor: %d (ok=%v)", successor, ok)
	}
	if _, ok := c.RunUntilConverged(topicA, n, 8000); !ok {
		t.Fatalf("cold fallback never converged: %s", c.Explain(topicA))
	}
	if got := c.Sups[successor].N(topicA); got != n {
		t.Errorf("successor rebuilt %d entries, want %d", got, n)
	}
}

// TestWarmFailoverDeterministicReplay pins reproducibility with the
// replica machinery in the loop: the same seeded warm-failover scenario
// run twice agrees on rounds and on the exact delivered-message count.
func TestWarmFailoverDeterministicReplay(t *testing.T) {
	run := func() (int, int64) {
		c := New(Options{Seed: 21, Supervisors: 4, ReplicationFactor: 2})
		c.AddClients(9)
		c.JoinAll(topicA)
		if _, ok := c.RunUntilConverged(topicA, 9, 8000); !ok {
			t.Fatalf("setup: %s", c.Explain(topicA))
		}
		if _, ok := c.Sched.RunRoundsUntil(2000, func() bool {
			return c.ReplicasConverged(topicA)
		}); !ok {
			t.Fatalf("replicas: %s", c.ExplainReplication(topicA))
		}
		owner, _ := c.ExpectedOwner(topicA)
		c.CrashSupervisor(owner)
		r, ok := c.RunUntilConverged(topicA, 9, 8000)
		if !ok {
			t.Fatalf("failover: %s", c.Explain(topicA))
		}
		return r, c.Sched.Delivered()
	}
	r1, d1 := run()
	r2, d2 := run()
	if r1 != r2 || d1 != d2 {
		t.Fatalf("replay diverged: (%d rounds, %d delivered) vs (%d rounds, %d delivered)", r1, d1, r2, d2)
	}
}
