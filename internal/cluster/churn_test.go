package cluster

import (
	"fmt"
	"testing"
	"testing/quick"

	"sspubsub/internal/sim"
)

// Randomized churn property: any interleaving of joins, leaves, crashes,
// publishes and corruption injections, followed by a quiet period, ends in
// the legitimate state with consistent publication sets. This is the
// fuzz-style version of Theorems 8/13/17 over the op space.
func TestPropertyRandomChurnConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("churn property is slow")
	}
	f := func(seed int64, script []uint8) bool {
		if len(script) > 24 {
			script = script[:24]
		}
		c := New(Options{Seed: seed})
		c.AddClients(6)
		c.JoinAll(topicA)
		if _, ok := c.RunUntilConverged(topicA, 6, 2000); !ok {
			t.Logf("seed %d: setup failed: %s", seed, c.Explain(topicA))
			return false
		}
		live := 6
		pubs := 0
		// leaving tracks members whose unsubscribe handshake has started:
		// they stay in Members until the supervisor grants departure, so a
		// later leave/crash picking the same node must not decrement the
		// expected count twice (the accounting bug behind the historical
		// TestZZRepro failure).
		leaving := map[sim.NodeID]bool{}
		for i, op := range script {
			members := c.Members(topicA)
			switch op % 6 {
			case 0: // join
				id := c.AddClient()
				c.Join(id, topicA)
				live++
			case 1: // leave
				if live > 2 {
					v := members[int(op/6)%len(members)]
					c.Leave(v, topicA)
					if !leaving[v] {
						leaving[v] = true
						live--
					}
				}
			case 2: // crash
				if live > 2 {
					v := members[int(op/6)%len(members)]
					c.Crash(v)
					if !leaving[v] {
						leaving[v] = true // gone either way; count it once
						live--
					}
				}
			case 3: // publish
				c.Publish(members[int(op/6)%len(members)], topicA, fmt.Sprintf("p-%d-%d", seed, i))
				pubs++
			case 4: // corrupt a node state mid-flight
				c.CorruptSubscriberStates(topicA)
			case 5: // garbage into channels
				c.InjectGarbageMessages(topicA, 5)
			}
			c.Sched.RunRounds(int(op%3) + 1)
		}
		rounds, ok := c.RunUntilConverged(topicA, live, 30000)
		if !ok {
			t.Logf("seed %d: no convergence after churn (%d rounds): %s\n%s",
				seed, rounds, c.Explain(topicA), c.DumpStates(topicA))
			return false
		}
		// Publications survive on all remaining members: all tries equal.
		if _, ok := c.Sched.RunRoundsUntil(30000, func() bool { return c.TriesEqual(topicA) }); !ok {
			t.Logf("seed %d: tries never reconciled", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// After arbitrary corruption, the potential argument of Theorem 17 holds:
// the union of all publication sets never shrinks (no publication is ever
// lost once any live member stores it).
func TestPublicationsNeverLost(t *testing.T) {
	c := New(Options{Seed: 404})
	c.AddClients(10)
	c.JoinAll(topicA)
	if _, ok := c.RunUntilConverged(topicA, 10, 2000); !ok {
		t.Fatal("setup")
	}
	members := c.Members(topicA)
	for i := 0; i < 12; i++ {
		c.Publish(members[i%len(members)], topicA, fmt.Sprintf("pub-%d", i))
	}
	c.Sched.RunRounds(10)
	union := func() map[string]bool {
		set := map[string]bool{}
		for _, id := range c.Members(topicA) {
			for _, p := range c.Clients[id].Publications(topicA) {
				set[p.Payload] = true
			}
		}
		return set
	}
	if len(union()) != 12 {
		t.Fatalf("setup: union has %d publications", len(union()))
	}
	// Corrupt the topology (not the tries — the protocol never deletes
	// publications) and churn; the union must stay intact throughout.
	c.CorruptSubscriberStates(topicA)
	c.CorruptSupervisorDB(topicA)
	for r := 0; r < 50; r++ {
		c.Sched.RunRounds(10)
		if got := len(union()); got != 12 {
			t.Fatalf("round %d: union shrank to %d publications", r*10, got)
		}
	}
	if _, ok := c.RunUntilConverged(topicA, 10, 20000); !ok {
		t.Fatalf("no re-convergence: %s", c.Explain(topicA))
	}
	if _, ok := c.Sched.RunRoundsUntil(20000, func() bool { return c.TriesEqual(topicA) }); !ok {
		t.Fatal("tries never equalized after corruption")
	}
	for _, id := range c.Members(topicA) {
		if got := len(c.Clients[id].Publications(topicA)); got != 12 {
			t.Errorf("node %d holds %d/12 publications", id, got)
		}
	}
}

// A component that loses its supervisor edge cannot exist in this model
// (the supervisor is read-only hard-coded state); but a component whose
// every member is unrecorded must still merge via actions (iii)/(iv).
// Here: half the ring is wiped from the database while keeping its links.
func TestHalfRingWipedFromDatabase(t *testing.T) {
	c := New(Options{Seed: 808})
	c.AddClients(12)
	c.JoinAll(topicA)
	if _, ok := c.RunUntilConverged(topicA, 12, 2000); !ok {
		t.Fatal("setup")
	}
	snap := c.Sup.Snapshot(topicA)
	i := 0
	for l := range snap {
		if i%2 == 0 {
			c.Sup.DeleteLabel(topicA, l)
		}
		i++
	}
	rounds, ok := c.RunUntilConverged(topicA, 12, 20000)
	if !ok {
		t.Fatalf("no recovery from half-wiped database: %s", c.Explain(topicA))
	}
	t.Logf("recovered in %d rounds", rounds)
}

// Simultaneous mass leave: half the members unsubscribe at once.
func TestMassLeave(t *testing.T) {
	c := New(Options{Seed: 909})
	c.AddClients(16)
	c.JoinAll(topicA)
	if _, ok := c.RunUntilConverged(topicA, 16, 2000); !ok {
		t.Fatal("setup")
	}
	members := c.Members(topicA)
	for i, id := range members {
		if i%2 == 0 {
			c.Leave(id, topicA)
		}
	}
	rounds, ok := c.RunUntilConverged(topicA, 8, 20000)
	if !ok {
		t.Fatalf("no convergence after mass leave: %s\n%s", c.Explain(topicA), c.DumpStates(topicA))
	}
	t.Logf("converged to n=8 in %d rounds", rounds)
	for i, id := range members {
		if i%2 == 0 && !c.Clients[id].Departed(topicA) {
			t.Errorf("leaver %d never departed", id)
		}
	}
}

// Rejoin after leave: a departed client can subscribe again and is treated
// as a fresh member.
func TestRejoinAfterLeave(t *testing.T) {
	c := New(Options{Seed: 111})
	c.AddClients(6)
	c.JoinAll(topicA)
	if _, ok := c.RunUntilConverged(topicA, 6, 2000); !ok {
		t.Fatal("setup")
	}
	leaver := c.Members(topicA)[2]
	c.Leave(leaver, topicA)
	if _, ok := c.RunUntilConverged(topicA, 5, 5000); !ok {
		t.Fatalf("leave did not converge: %s", c.Explain(topicA))
	}
	// Rejoin: the departed instance must restart cleanly.
	c.Join(leaver, topicA)
	if _, ok := c.RunUntilConverged(topicA, 6, 5000); !ok {
		t.Fatalf("rejoin did not converge: %s", c.Explain(topicA))
	}
	if !c.Clients[leaver].Joined(topicA) {
		t.Error("rejoined client not a member")
	}
}

// The supervisor's failure detector must never evict live nodes even under
// heavy concurrent crash load elsewhere.
func TestDetectorNeverEvictsLive(t *testing.T) {
	c := New(Options{Seed: 212})
	c.AddClients(20)
	c.JoinAll(topicA)
	if _, ok := c.RunUntilConverged(topicA, 20, 2000); !ok {
		t.Fatal("setup")
	}
	members := c.Members(topicA)
	for i := 0; i < 5; i++ {
		c.Crash(members[i*4])
	}
	if _, ok := c.RunUntilConverged(topicA, 15, 20000); !ok {
		t.Fatalf("no recovery: %s", c.Explain(topicA))
	}
	// All 15 survivors must still be recorded.
	for _, id := range c.Members(topicA) {
		if c.Sup.LabelOf(topicA, id).IsBottom() {
			t.Errorf("live node %d missing from database", id)
		}
	}
}
