package cluster

import (
	"math/rand"

	"sspubsub/internal/label"
	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
	"sspubsub/internal/trie"
)

// Substrate-generic corruption injectors. Each takes the random source
// driving the corruption explicitly, so the chaos engine can derive it
// from the scenario seed and replay an injection bit-for-bit. On the
// deterministic scheduler they may be called at any point between events;
// on a live substrate the caller must hold the quiesce barrier (no handler
// may be executing while explicit state is overwritten).

// CorruptSubscriberStatesRand overwrites every member's explicit state
// with pseudo-random garbage: random labels (possibly duplicated, possibly
// malformed), neighbour pointers to random members (or self), and random
// shortcut slots. The result is still a weakly connected graph because
// every node keeps its read-only edge to the supervisor.
func (l *Live) CorruptSubscriberStatesRand(t sim.Topic, rng *rand.Rand) {
	members := l.Members(t)
	randTuple := func() proto.Tuple {
		if rng.Intn(4) == 0 || len(members) == 0 {
			return proto.Tuple{}
		}
		id := members[rng.Intn(len(members))]
		return proto.Tuple{L: label.FromIndex(uint64(rng.Intn(4 * len(members)))), Ref: id}
	}
	for _, id := range members {
		in, ok := l.Clients[id].Instance(t)
		if !ok {
			continue
		}
		var lab label.Label
		switch rng.Intn(4) {
		case 0:
			lab = label.Bottom
		case 1:
			lab = label.FromIndex(uint64(rng.Intn(len(members))))
		case 2:
			lab = label.FromIndex(uint64(rng.Intn(8 * len(members))))
		default:
			lab = label.Label{Bits: rng.Uint64() & 3, Len: 2} // possibly malformed
		}
		sc := map[label.Label]sim.NodeID{}
		for i := rng.Intn(3); i > 0; i-- {
			tp := randTuple()
			if !tp.IsBottom() {
				sc[tp.L] = tp.Ref
			}
		}
		in.Sub.ForceState(lab, randTuple(), randTuple(), randTuple(), sc)
	}
}

// CorruptSupervisorDBRand injects all four database corruption cases of
// Section 3.1: a ⊥ tuple, a duplicated subscriber, a deleted label and an
// out-of-range label.
func (l *Live) CorruptSupervisorDBRand(t sim.Topic, rng *rand.Rand) {
	sup := l.SupFor(t) // the topic's owner holds the database of record
	if sup == nil {
		return
	}
	n := sup.N(t)
	if n == 0 {
		return
	}
	snap := sup.Snapshot(t)
	var someNode sim.NodeID
	for _, v := range snap { // deterministic: take the largest recorded ID
		if v > someNode {
			someNode = v
		}
	}
	sup.InjectRaw(t, label.FromIndex(uint64(n+1+rng.Intn(8))), sim.None)  // (i) ⊥ subscriber
	sup.InjectRaw(t, label.FromIndex(uint64(n+10+rng.Intn(8))), someNode) // (ii)+(iv) duplicate, out of range
	sup.DeleteLabel(t, label.FromIndex(uint64(rng.Intn(n))))              // (iii) missing label
}

// PartitionStates forces the members into k disjoint sorted chains with
// self-consistent but unrecorded labels — the "connected component with
// negligible probe probability" scenario of Section 3.2.1. The supervisor
// database is wiped for the topic. Deterministic: no randomness involved.
func (l *Live) PartitionStates(t sim.Topic, k int) {
	members := l.Members(t)
	sup := l.SupFor(t)
	if sup == nil {
		return
	}
	snap := sup.Snapshot(t)
	for lab := range snap {
		sup.DeleteLabel(t, lab)
	}
	if len(members) == 0 || k < 1 {
		return
	}
	for part := 0; part < k; part++ {
		var chain []sim.NodeID
		for i, id := range members {
			if i%k == part {
				chain = append(chain, id)
			}
		}
		for i, id := range chain {
			in, _ := l.Clients[id].Instance(t)
			// Self-consistent labels with long lengths → tiny probe
			// probability via action (ii).
			lab := label.FromIndex(uint64(1024 + part*4096 + i))
			var left, right proto.Tuple
			if i > 0 {
				left = proto.Tuple{L: label.FromIndex(uint64(1024 + part*4096 + i - 1)), Ref: chain[i-1]}
			}
			if i < len(chain)-1 {
				right = proto.Tuple{L: label.FromIndex(uint64(1024 + part*4096 + i + 1)), Ref: chain[i+1]}
			}
			in.Sub.ForceState(lab, left, right, proto.Tuple{}, nil)
		}
	}
}

// garbageMessage draws one corrupted protocol message aimed at a random
// member: stale tuples, wrong labels, bogus trie summaries. Shared by the
// scheduler-side channel injector (Cluster.InjectGarbageMessages) and the
// transport-side sender (Live.SendGarbageMessages), so the garbage
// vocabulary cannot diverge between the two. Garbage SetData travels with
// From ⊥: a forged member sender would be screened out by the
// subscriber's deposed-owner protection, while ⊥ models the paper's
// "arbitrary channel contents" and is processed like any configuration.
func garbageMessage(t sim.Topic, members []sim.NodeID, rng *rand.Rand) sim.Message {
	pick := func() sim.NodeID { return members[rng.Intn(len(members))] }
	to := pick()
	from := pick()
	var body any
	switch rng.Intn(6) {
	case 0:
		body = proto.Introduce{C: proto.Tuple{L: label.FromIndex(rng.Uint64() % 64), Ref: pick()}, Flag: proto.Flag(rng.Intn(2))}
	case 1:
		body = proto.Linearize{V: proto.Tuple{L: label.FromIndex(rng.Uint64() % 64), Ref: pick()}}
	case 2:
		body = proto.SetData{Pred: proto.Tuple{L: label.FromIndex(rng.Uint64() % 64), Ref: pick()},
			Label: label.FromIndex(rng.Uint64() % 64),
			Succ:  proto.Tuple{L: label.FromIndex(rng.Uint64() % 64), Ref: pick()}}
		from = sim.None
	case 3:
		body = proto.Check{Sender: proto.Tuple{L: label.FromIndex(rng.Uint64() % 64), Ref: pick()},
			YourLabel: label.FromIndex(rng.Uint64() % 64), Flag: proto.CYC}
	case 4:
		body = proto.IntroduceShortcut{T: proto.Tuple{L: label.FromIndex(rng.Uint64() % 64), Ref: pick()}}
	default:
		body = proto.CheckTrie{Sender: pick(), Nodes: []proto.NodeSummary{{Label: proto.Key{Bits: rng.Uint64(), Len: 7}}}}
	}
	return sim.Message{To: to, From: from, Topic: t, Body: body}
}

// SendGarbageMessages sends corrupted protocol messages to random members
// through the transport. Unlike the scheduler-only channel injection,
// this works on every substrate (the garbage travels like any other
// message — over the wire codec on the networked transport).
func (l *Live) SendGarbageMessages(t sim.Topic, count int, rng *rand.Rand) {
	members := l.Members(t)
	if len(members) == 0 {
		return
	}
	for i := 0; i < count; i++ {
		l.Tr.Send(garbageMessage(t, members, rng))
	}
}

// CorruptTries inserts fabricated publications directly into up to count
// random members' tries, bypassing the publication protocol entirely: the
// tries diverge (different members know different sets) and only the
// anti-entropy machinery of Section 4.2 can reconcile them. The fabricated
// entries are well-formed (key = h̄_m(origin, payload)), so reconciliation
// converges on the union. It returns the payloads injected.
func (l *Live) CorruptTries(t sim.Topic, count int, rng *rand.Rand) []string {
	members := l.Members(t)
	if len(members) == 0 || count <= 0 {
		return nil
	}
	payloads := make([]string, 0, count)
	for i := 0; i < count; i++ {
		id := members[rng.Intn(len(members))]
		in, ok := l.Clients[id].Instance(t)
		if !ok {
			continue
		}
		payload := "corrupt-" + string(rune('a'+rng.Intn(26))) + string(rune('a'+rng.Intn(26))) + string(rune('a'+rng.Intn(26)))
		p := trie.NewPublication(in.Eng.Trie().KeyLen(), id, payload)
		if in.Eng.Trie().Insert(p) {
			payloads = append(payloads, payload)
		}
	}
	return payloads
}
