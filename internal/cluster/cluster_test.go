package cluster

import (
	"testing"

	"sspubsub/internal/core"
	"sspubsub/internal/sim"
)

const topicA sim.Topic = 1

// Fresh join burst: n clients subscribe simultaneously; the system must
// converge to the legitimate SR(n) (Theorem 8, benign initial state).
func TestConvergenceFreshJoin(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13, 16, 32} {
		c := New(Options{Seed: int64(n) * 11})
		c.AddClients(n)
		c.JoinAll(topicA)
		rounds, ok := c.RunUntilConverged(topicA, n, 200)
		if !ok {
			t.Fatalf("n=%d: not converged after %d rounds: %s\n%s", n, rounds, c.Explain(topicA), c.DumpStates(topicA))
		}
		t.Logf("n=%d converged in %d rounds", n, rounds)
	}
}

// converge is a helper: join n fresh clients and reach legitimacy.
func converge(t *testing.T, n int, seed int64, opts Options) *Cluster {
	t.Helper()
	opts.Seed = seed
	c := New(opts)
	c.AddClients(n)
	c.JoinAll(topicA)
	if _, ok := c.RunUntilConverged(topicA, n, 300); !ok {
		t.Fatalf("setup: n=%d did not converge: %s", n, c.Explain(topicA))
	}
	return c
}

// Theorem 8 with corrupted subscriber states: overwrite every node's
// explicit state with garbage; the system must re-converge.
func TestConvergenceCorruptedStates(t *testing.T) {
	for _, n := range []int{4, 8, 16, 24} {
		for seed := int64(0); seed < 3; seed++ {
			c := converge(t, n, 100+seed+int64(n), Options{})
			c.CorruptSubscriberStates(topicA)
			rounds, ok := c.RunUntilConverged(topicA, n, 3000)
			if !ok {
				t.Fatalf("n=%d seed=%d: no re-convergence: %s\n%s", n, seed, c.Explain(topicA), c.DumpStates(topicA))
			}
			t.Logf("n=%d seed=%d re-converged in %d rounds", n, seed, rounds)
		}
	}
}

// Theorem 8 + Lemma 9 with a corrupted supervisor database.
func TestConvergenceCorruptedDatabase(t *testing.T) {
	for _, n := range []int{5, 12, 16} {
		c := converge(t, n, 200+int64(n), Options{})
		c.CorruptSupervisorDB(topicA)
		if !c.Sup.Corrupted(topicA) {
			t.Fatal("injection did not corrupt the database")
		}
		rounds, ok := c.RunUntilConverged(topicA, n, 3000)
		if !ok {
			t.Fatalf("n=%d: no re-convergence: %s", n, c.Explain(topicA))
		}
		t.Logf("n=%d re-converged in %d rounds", n, rounds)
	}
}

// Theorem 8 with corrupted channel contents: garbage messages must be
// absorbed without destroying legitimacy permanently.
func TestConvergenceGarbageMessages(t *testing.T) {
	for _, n := range []int{6, 16} {
		c := converge(t, n, 300+int64(n), Options{})
		c.InjectGarbageMessages(topicA, 5*n)
		rounds, ok := c.RunUntilConverged(topicA, n, 3000)
		if !ok {
			t.Fatalf("n=%d: no re-convergence: %s", n, c.Explain(topicA))
		}
		t.Logf("n=%d absorbed garbage, re-converged in %d rounds", n, rounds)
	}
}

// Theorem 8 from partitioned components with unrecorded, long labels (the
// hard case of Section 3.2.1 that needs actions (iii)/(iv) plus the
// probabilistic probe).
func TestConvergencePartitionedComponents(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{{8, 2}, {12, 3}, {16, 4}} {
		c := converge(t, tc.n, 400+int64(tc.n), Options{})
		c.PartitionStates(topicA, tc.parts)
		rounds, ok := c.RunUntilConverged(topicA, tc.n, 5000)
		if !ok {
			t.Fatalf("n=%d parts=%d: no re-convergence: %s\n%s",
				tc.n, tc.parts, c.Explain(topicA), c.DumpStates(topicA))
		}
		t.Logf("n=%d parts=%d re-converged in %d rounds", tc.n, tc.parts, rounds)
	}
}

// Theorem 13 (closure): once legitimate, the explicit state never changes
// again while no one joins or leaves.
func TestClosure(t *testing.T) {
	c := converge(t, 16, 77, Options{})
	versions := map[sim.NodeID]uint64{}
	for id, cl := range c.Clients {
		st, _ := cl.StateOf(topicA)
		versions[id] = st.Version
	}
	c.Sched.RunRounds(300)
	if !c.ConvergedWith(topicA, 16) {
		t.Fatalf("legitimacy lost: %s", c.Explain(topicA))
	}
	for id, cl := range c.Clients {
		st, _ := cl.StateOf(topicA)
		if st.Version != versions[id] {
			t.Errorf("node %d mutated its state after convergence (version %d → %d)",
				id, versions[id], st.Version)
		}
	}
}

// Section 4.1: unsubscribe removes the node, the highest-label node takes
// over its label, and the ring re-converges (Lemma 6).
func TestUnsubscribe(t *testing.T) {
	const n = 12
	c := converge(t, n, 88, Options{})
	// Pick an arbitrary member that does not hold the last label.
	var leaver sim.NodeID
	for _, id := range c.Members(topicA) {
		if c.Sup.LabelOf(topicA, id).Index() == 3 {
			leaver = id
		}
	}
	if leaver == sim.None {
		t.Fatal("no member with label index 3")
	}
	c.Leave(leaver, topicA)
	rounds, ok := c.RunUntilConverged(topicA, n-1, 2000)
	if !ok {
		t.Fatalf("no convergence after unsubscribe: %s\n%s", c.Explain(topicA), c.DumpStates(topicA))
	}
	if !c.Clients[leaver].Departed(topicA) {
		t.Error("leaver never got departure permission")
	}
	// The leaver must be fully disconnected: no member may still point at it.
	for _, id := range c.Members(topicA) {
		st, _ := c.Clients[id].StateOf(topicA)
		for _, tu := range []sim.NodeID{st.Left.Ref, st.Right.Ref, st.Ring.Ref} {
			if tu == leaver {
				t.Errorf("node %d still points at departed node %d", id, leaver)
			}
		}
		for _, ref := range st.Shortcuts {
			if ref == leaver {
				t.Errorf("node %d keeps shortcut to departed node %d", id, leaver)
			}
		}
	}
	t.Logf("re-converged to n=%d in %d rounds", n-1, rounds)
}

// Sequential churn: nodes join and leave one after another; legitimacy is
// restored after each operation.
func TestChurnSequence(t *testing.T) {
	c := converge(t, 8, 99, Options{})
	n := 8
	for i := 0; i < 4; i++ {
		id := c.AddClient()
		c.Join(id, topicA)
		n++
		if rounds, ok := c.RunUntilConverged(topicA, n, 2000); !ok {
			t.Fatalf("join %d: no convergence: %s", i, c.Explain(topicA))
		} else {
			t.Logf("join → n=%d in %d rounds", n, rounds)
		}
	}
	for i := 0; i < 4; i++ {
		members := c.Members(topicA)
		leaver := members[i%len(members)]
		c.Leave(leaver, topicA)
		n--
		if rounds, ok := c.RunUntilConverged(topicA, n, 2000); !ok {
			t.Fatalf("leave %d: no convergence: %s", i, c.Explain(topicA))
		} else {
			t.Logf("leave → n=%d in %d rounds", n, rounds)
		}
	}
}

// Section 3.3: unannounced crashes are culled by the supervisor's failure
// detector and the ring re-converges around the survivors.
func TestCrashRecovery(t *testing.T) {
	const n = 16
	c := converge(t, n, 123, Options{})
	members := c.Members(topicA)
	crashed := 0
	for i, id := range members {
		if i%4 == 0 { // crash a quarter of the ring
			c.Crash(id)
			crashed++
		}
	}
	rounds, ok := c.RunUntilConverged(topicA, n-crashed, 5000)
	if !ok {
		t.Fatalf("no recovery after %d crashes: %s\n%s", crashed, c.Explain(topicA), c.DumpStates(topicA))
	}
	t.Logf("recovered from %d crashes in %d rounds", crashed, rounds)
}

// Crash of the label-0 node specifically (the round-robin anchor).
func TestCrashMinimumNode(t *testing.T) {
	const n = 8
	c := converge(t, n, 321, Options{})
	var minNode sim.NodeID
	for _, id := range c.Members(topicA) {
		if c.Sup.LabelOf(topicA, id).Index() == 0 {
			minNode = id
		}
	}
	c.Crash(minNode)
	rounds, ok := c.RunUntilConverged(topicA, n-1, 5000)
	if !ok {
		t.Fatalf("no recovery: %s", c.Explain(topicA))
	}
	t.Logf("recovered in %d rounds", rounds)
}

// Multi-topic isolation: protocols of different topics share nodes but
// converge independently.
func TestMultiTopic(t *testing.T) {
	const n = 10
	c := New(Options{Seed: 55})
	ids := c.AddClients(n)
	c.JoinAll(topicA)
	for i, id := range ids {
		if i%2 == 0 {
			c.Join(id, 2)
		}
	}
	if _, ok := c.RunUntilConverged(topicA, n, 500); !ok {
		t.Fatalf("topic 1: %s", c.Explain(topicA))
	}
	if _, ok := c.RunUntilConverged(2, n/2, 500); !ok {
		t.Fatalf("topic 2: %s", c.Explain(2))
	}
	if c.Sup.N(topicA) != n || c.Sup.N(2) != n/2 {
		t.Errorf("db sizes: %d, %d", c.Sup.N(topicA), c.Sup.N(2))
	}
}

// Publications reach everyone: flooding delivers fast, and anti-entropy
// serves a late joiner the full history (Theorem 17's practical payoff).
func TestPublicationDissemination(t *testing.T) {
	const n = 12
	c := converge(t, n, 66, Options{})
	members := c.Members(topicA)
	for i := 0; i < 5; i++ {
		c.Publish(members[i%len(members)], topicA, "msg-"+string(rune('a'+i)))
	}
	c.Sched.RunRounds(5)
	if !c.AllHavePubs(topicA, 5) || !c.TriesEqual(topicA) {
		t.Fatal("flooding did not deliver to all members")
	}
	// Late joiner: must receive the full history via anti-entropy.
	late := c.AddClient()
	c.Join(late, topicA)
	if _, ok := c.RunUntilConverged(topicA, n+1, 1000); !ok {
		t.Fatalf("late joiner never integrated: %s", c.Explain(topicA))
	}
	if _, ok := c.Sched.RunRoundsUntil(500, func() bool {
		return len(c.Clients[late].Publications(topicA)) == 5
	}); !ok {
		t.Fatalf("late joiner got %d/5 publications", len(c.Clients[late].Publications(topicA)))
	}
}

// Theorem 17 (publication convergence) with flooding disabled: anti-entropy
// alone must spread pre-seeded publications to every member.
func TestAntiEntropyOnly(t *testing.T) {
	const n = 10
	c := converge(t, n, 44, Options{ClientOpts: core.Options{DisableFlooding: true}})
	members := c.Members(topicA)
	for i := 0; i < 8; i++ {
		c.Publish(members[i%len(members)], topicA, "p"+string(rune('0'+i)))
	}
	rounds, ok := c.Sched.RunRoundsUntil(2000, func() bool {
		return c.AllHavePubs(topicA, 8) && c.TriesEqual(topicA)
	})
	if !ok {
		t.Fatal("anti-entropy alone did not converge publications")
	}
	t.Logf("anti-entropy converged 8 pubs × %d nodes in %d rounds", n, rounds)
}

// Theorem 23 (publication closure): once all tries are equal, CheckTrie
// traffic generates no further messages.
func TestPublicationClosure(t *testing.T) {
	const n = 8
	c := converge(t, n, 33, Options{})
	members := c.Members(topicA)
	c.Publish(members[0], topicA, "only")
	c.Sched.RunRounds(10)
	if !c.TriesEqual(topicA) {
		t.Fatal("setup: tries not equal")
	}
	c.Sched.ResetCounters()
	c.Sched.RunRounds(50)
	// CheckTrie probes continue (they are the periodic action) but no
	// CheckAndPublish or PublishBatch may ever be triggered.
	if got := c.Sched.CountByType("proto.CheckAndPublish"); got != 0 {
		t.Errorf("%d CheckAndPublish messages in a stable system", got)
	}
	if got := c.Sched.CountByType("proto.PublishBatch"); got != 0 {
		t.Errorf("%d PublishBatch messages in a stable system", got)
	}
}
