package cluster

import (
	"fmt"
	"testing"

	"sspubsub/internal/sim"
)

// TestZZRepro replays a fuzzer-found churn script (seed and script are
// verbatim from the original failure).
//
// Root cause of the historical failure — a harness accounting bug, not a
// protocol bug: the script issued Leave(v) (decrementing its expected
// member count) and then, before the unsubscribe handshake completed,
// Crash(v) on the same node — v was still listed in Members — and
// decremented the count again. One departure, counted twice: the script
// expected 5 survivors while the system (correctly, per the supervisor's
// database and the legitimacy predicate) stabilized with 6. The protocol
// side was verified converged: after the script, Explain reported a
// legitimate state whose membership matched the supervisor's N exactly.
//
// The fix keeps the script byte-identical and makes the bookkeeping
// match the protocol's semantics: a node with a pending leave is already
// counted out, so crashing it (or re-targeting it with another leave)
// must not decrement again. Pending leaves are cleared once the node has
// actually departed.
func TestZZRepro(t *testing.T) {
	seed := int64(-8243038565506179627)
	script := []uint8{0x7, 0x1f, 0x7a, 0xef, 0x5d, 0xf0, 0xdc, 0x18, 0x6, 0xe1, 0xd2, 0x7c, 0xae, 0xf7, 0x3d, 0x63, 0x4f, 0xdb, 0x69, 0xcc, 0xf8, 0x1b, 0xb1, 0xe8, 0xfc, 0x54, 0xbc, 0x8b, 0xff, 0x35, 0x99, 0x53, 0xa, 0x8, 0x96, 0xfd, 0x8c, 0x83, 0x36, 0x74, 0xba, 0x9}
	if len(script) > 24 {
		script = script[:24]
	}
	c := New(Options{Seed: seed})
	c.AddClients(6)
	c.JoinAll(topicA)
	if _, ok := c.RunUntilConverged(topicA, 6, 2000); !ok {
		t.Fatalf("setup failed: %s", c.Explain(topicA))
	}
	live := 6
	leaving := map[sim.NodeID]bool{} // leave issued, departure not yet observed
	for i, op := range script {
		members := c.Members(topicA)
		present := map[sim.NodeID]bool{}
		for _, id := range members {
			present[id] = true
		}
		for id := range leaving {
			if !present[id] {
				delete(leaving, id) // departure completed
			}
		}
		switch op % 6 {
		case 0:
			id := c.AddClient()
			c.Join(id, topicA)
			live++
		case 1:
			if live > 2 {
				v := members[int(op/6)%len(members)]
				c.Leave(v, topicA)
				if !leaving[v] {
					leaving[v] = true
					live--
				}
			}
		case 2:
			if live > 2 {
				v := members[int(op/6)%len(members)]
				c.Crash(v)
				if leaving[v] {
					// Its departure was already counted at Leave time; the
					// crash merely finishes it by other means.
					delete(leaving, v)
				} else {
					live--
				}
			}
		case 3:
			c.Publish(members[int(op/6)%len(members)], topicA, fmt.Sprintf("p-%d-%d", seed, i))
		case 4:
			c.CorruptSubscriberStates(topicA)
		case 5:
			c.InjectGarbageMessages(topicA, 5)
		}
		c.Sched.RunRounds(int(op%3) + 1)
	}
	rounds, ok := c.RunUntilConverged(topicA, live, 30000)
	if !ok {
		t.Fatalf("no convergence after churn (%d rounds): %s\n%s",
			rounds, c.Explain(topicA), c.DumpStates(topicA))
	}
	if _, ok := c.Sched.RunRoundsUntil(30000, func() bool { return c.TriesEqual(topicA) }); !ok {
		t.Fatalf("tries never reconciled")
	}
}
