package cluster

import (
	"testing"

	"sspubsub/internal/label"
	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
)

// failoverCluster builds a converged multi-supervisor cluster: n members
// on one topic, sharded over k supervisors, legitimacy (including
// ownership agreement) established.
func failoverCluster(t *testing.T, seed int64, k, n int) *Cluster {
	t.Helper()
	c := New(Options{Seed: seed, Supervisors: k})
	c.AddClients(n)
	c.JoinAll(topicA)
	if _, ok := c.RunUntilConverged(topicA, n, 8000); !ok {
		t.Fatalf("setup never converged: %s", c.Explain(topicA))
	}
	return c
}

// TestSupervisorFailoverRebuildsDB is the tentpole's core property on the
// deterministic scheduler: crash the topic's owner supervisor, and the
// hashdht successor must adopt the topic, rebuild the database from the
// surviving subscribers, and drive the system back to full legitimacy —
// with the surviving overlay (the members' labels) preserved, not rebuilt.
func TestSupervisorFailoverRebuildsDB(t *testing.T) {
	const n = 10
	c := failoverCluster(t, 3, 4, n)

	owner, ok := c.ExpectedOwner(topicA)
	if !ok {
		t.Fatal("no owner on a 4-supervisor plane")
	}
	before := c.Sups[owner].Snapshot(topicA)
	if len(before) != n {
		t.Fatalf("owner %d records %d members, want %d", owner, len(before), n)
	}

	if !c.CrashSupervisor(owner) {
		t.Fatalf("CrashSupervisor(%d) refused", owner)
	}
	successor, ok := c.ExpectedOwner(topicA)
	if !ok || successor == owner {
		t.Fatalf("expected a successor owner, got %d (ok=%v)", successor, ok)
	}

	if r, ok := c.RunUntilConverged(topicA, n, 8000); !ok {
		t.Fatalf("no re-convergence after owner crash: %s", c.Explain(topicA))
	} else {
		t.Logf("failover converged in %d rounds (owner %d → %d)", r, owner, successor)
	}
	if v := c.ExplainOwnership(topicA); v != "" {
		t.Fatalf("ownership not converged: %s", v)
	}
	if got := c.Sups[successor].EpochOf(topicA); got == 0 {
		t.Fatal("successor still at epoch 0 — adoption never bumped the era")
	}

	// Soft-state rebuild: the successor's database must be reconstructed
	// from the survivors' own reports. Label preservation is what keeps the
	// surviving skip ring intact — require the majority of members to keep
	// their pre-crash label (the deterministic seed in fact preserves all).
	after := c.Sups[successor].Snapshot(topicA)
	kept := 0
	for lab, v := range after {
		if before[lab] == v {
			kept++
		}
	}
	if kept < n/2 {
		t.Errorf("only %d/%d labels survived the rebuild — overlay was rebuilt, not recovered", kept, n)
	}
}

// TestSupervisorRestartReclaimsTopics: after a crash and failover, the
// original owner restarts with its stale pre-crash state. The plane must
// hand the topic back (it is the hashdht owner again) at a fresh epoch,
// and re-converge.
func TestSupervisorRestartReclaimsTopics(t *testing.T) {
	const n = 8
	c := failoverCluster(t, 7, 3, n)

	owner, _ := c.ExpectedOwner(topicA)
	c.CrashSupervisor(owner)
	if _, ok := c.RunUntilConverged(topicA, n, 8000); !ok {
		t.Fatalf("no convergence after crash: %s", c.Explain(topicA))
	}
	successor, _ := c.ExpectedOwner(topicA)

	if !c.RestartSupervisor(owner) {
		t.Fatal("RestartSupervisor refused")
	}
	restored, _ := c.ExpectedOwner(topicA)
	if restored != owner {
		t.Fatalf("restart did not restore ownership: expected %d, got %d", owner, restored)
	}
	if _, ok := c.RunUntilConverged(topicA, n, 8000); !ok {
		t.Fatalf("no convergence after restart: %s", c.Explain(topicA))
	}
	if v := c.ExplainOwnership(topicA); v != "" {
		t.Fatalf("ownership did not return to the restarted owner: %s", v)
	}
	if c.Sups[successor].Hosts(topicA) {
		t.Errorf("deposed successor %d still hosts the topic", successor)
	}
	if e := c.Sups[owner].EpochOf(topicA); e < 2 {
		t.Errorf("reclaimed epoch %d — two ownership transfers must have advanced the era past 1", e)
	}
}

// TestEpochStaleOwnerIgnored is the deposed-owner regression: a subscriber
// that has re-homed to the successor receives a configuration from the old
// (deposed, lower-epoch) owner and must ignore it without corrupting any
// state.
func TestEpochStaleOwnerIgnored(t *testing.T) {
	const n = 8
	c := failoverCluster(t, 5, 3, n)

	owner, _ := c.ExpectedOwner(topicA)
	c.CrashSupervisor(owner)
	if _, ok := c.RunUntilConverged(topicA, n, 8000); !ok {
		t.Fatalf("no convergence after crash: %s", c.Explain(topicA))
	}

	victim := c.Members(topicA)[0]
	st, _ := c.Clients[victim].StateOf(topicA)
	if st.Epoch == 0 {
		t.Fatal("member never advanced past epoch 0 — failover did not happen")
	}

	// The deposed owner speaks from the grave: a stale configuration with
	// a nonsense label at its old (lower) epoch. From, label and neighbours
	// are all plausible — only the epoch gives it away.
	c.Sched.Send(sim.Message{
		To: victim, From: owner, Topic: topicA,
		Body: proto.SetData{
			Label: label.FromIndex(uint64(n + 3)),
			Pred:  proto.Tuple{L: label.FromIndex(0), Ref: c.Members(topicA)[1]},
			Epoch: st.Epoch - 1,
		},
	})
	c.Sched.RunRounds(3)

	now, _ := c.Clients[victim].StateOf(topicA)
	if now.Label != st.Label || now.Sup != st.Sup || now.Epoch != st.Epoch {
		t.Fatalf("stale-owner command corrupted state:\n before %+v\n after  %+v", st, now)
	}
	if !c.Converged(topicA) {
		t.Fatalf("system left legitimacy after a stale-owner command: %s", c.Explain(topicA))
	}
}

// TestFailoverDeliveryContinues: publications issued before, during and
// after an owner crash reach every pre-crash subscriber — no subscription
// is permanently lost to a supervisor failure.
func TestFailoverDeliveryContinues(t *testing.T) {
	const n = 8
	c := failoverCluster(t, 11, 4, n)
	members := c.Members(topicA)

	c.Publish(members[0], topicA, "before")
	owner, _ := c.ExpectedOwner(topicA)
	c.CrashSupervisor(owner)
	c.Publish(members[1], topicA, "during")
	if _, ok := c.RunUntilConverged(topicA, n, 8000); !ok {
		t.Fatalf("no convergence after crash: %s", c.Explain(topicA))
	}
	c.Publish(members[2], topicA, "after")

	if _, ok := c.Sched.RunRoundsUntil(4000, func() bool {
		return c.AllHavePubs(topicA, 3) && c.TriesEqual(topicA)
	}); !ok {
		t.Fatalf("publications never reached every survivor: %s", c.Explain(topicA))
	}
}

// TestJoinDuringOwnerOutage: a client that subscribes while the topic's
// owner is down must still be integrated — its staleness probe walks the
// supervisor set until a live supervisor adopts or redirects it.
func TestJoinDuringOwnerOutage(t *testing.T) {
	const n = 6
	c := failoverCluster(t, 13, 3, n)

	owner, _ := c.ExpectedOwner(topicA)
	c.CrashSupervisor(owner)
	late := c.AddClients(1)[0]
	c.Join(late, topicA)
	if _, ok := c.RunUntilConverged(topicA, n+1, 8000); !ok {
		t.Fatalf("late joiner never integrated: %s", c.Explain(topicA))
	}
	if lab := c.Clients[late].Topics(); len(lab) != 1 {
		t.Fatalf("late joiner holds %d instances", len(lab))
	}
}

// TestFailoverDeterministicReplay pins reproducibility: the same seeded
// failover scenario run twice delivers the same message count and
// converges in the same number of rounds.
func TestFailoverDeterministicReplay(t *testing.T) {
	run := func() (int, int64) {
		c := New(Options{Seed: 21, Supervisors: 4})
		c.AddClients(9)
		c.JoinAll(topicA)
		if _, ok := c.RunUntilConverged(topicA, 9, 8000); !ok {
			t.Fatalf("setup: %s", c.Explain(topicA))
		}
		owner, _ := c.ExpectedOwner(topicA)
		c.CrashSupervisor(owner)
		r, ok := c.RunUntilConverged(topicA, 9, 8000)
		if !ok {
			t.Fatalf("failover: %s", c.Explain(topicA))
		}
		return r, c.Sched.Delivered()
	}
	r1, d1 := run()
	r2, d2 := run()
	if r1 != r2 || d1 != d2 {
		t.Fatalf("replay diverged: (%d rounds, %d delivered) vs (%d rounds, %d delivered)", r1, d1, r2, d2)
	}
}
