package cluster

import (
	"fmt"

	"sspubsub/internal/core"
	"sspubsub/internal/label"
	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
	"sspubsub/internal/topology"
)

// CheckLegitimacy compares a supervisor database snapshot and the explicit
// states of all live members against the unique legitimate SR(n) of
// Definition 2. It returns "" when the state is legitimate, otherwise a
// description of the first violation. It is the shared oracle behind the
// deterministic Cluster and the live System.
func CheckLegitimacy(db map[label.Label]sim.NodeID, states map[sim.NodeID]core.State) string {
	if len(db) != len(states) {
		return fmt.Sprintf("database has %d entries, %d live members", len(db), len(states))
	}
	n := len(db)
	if n == 0 {
		return ""
	}
	ring := topology.New(n)
	nodeAt := make(map[label.Label]sim.NodeID, n)
	for l, v := range db {
		nodeAt[l] = v
	}
	for id, st := range states {
		if st.Departed {
			return fmt.Sprintf("member %d has departed", id)
		}
		lab := st.Label
		if lab.IsBottom() {
			return fmt.Sprintf("member %d has no label", id)
		}
		if nodeAt[lab] != id {
			return fmt.Sprintf("member %d holds label %s not assigned to it", id, lab)
		}
		x := ring.IndexOf(lab)
		if x < 0 {
			return fmt.Sprintf("member %d holds out-of-range label %s", id, lab)
		}
		exp := ring.Expected(x)
		if msg := matchSlot("left", st.Left, exp.Left, nodeAt); msg != "" {
			return fmt.Sprintf("member %d (%s): %s", id, lab, msg)
		}
		if msg := matchSlot("right", st.Right, exp.Right, nodeAt); msg != "" {
			return fmt.Sprintf("member %d (%s): %s", id, lab, msg)
		}
		if msg := matchSlot("ring", st.Ring, exp.Ring, nodeAt); msg != "" {
			return fmt.Sprintf("member %d (%s): %s", id, lab, msg)
		}
		if len(st.Shortcuts) != len(exp.Shortcuts) {
			return fmt.Sprintf("member %d (%s): %d shortcut slots, want %d (%v vs %v)",
				id, lab, len(st.Shortcuts), len(exp.Shortcuts), st.Shortcuts, exp.Shortcuts)
		}
		for slot, ref := range st.Shortcuts {
			want, ok := exp.Shortcuts[slot]
			if !ok {
				return fmt.Sprintf("member %d (%s): unexpected shortcut slot %s", id, lab, slot)
			}
			if ref == sim.None || ref != nodeAt[want] {
				return fmt.Sprintf("member %d (%s): shortcut %s resolves to %d, want %d",
					id, lab, slot, ref, nodeAt[want])
			}
		}
	}
	return ""
}

func matchSlot(name string, got proto.Tuple, wantLabel label.Label, nodeAt map[label.Label]sim.NodeID) string {
	if wantLabel.IsBottom() {
		if !got.IsBottom() {
			return fmt.Sprintf("%s = %s, want ⊥", name, got)
		}
		return ""
	}
	want := nodeAt[wantLabel]
	if got.Ref != want || got.L != wantLabel {
		return fmt.Sprintf("%s = %s, want %s@%d", name, got, wantLabel, want)
	}
	return ""
}
