package cluster

import (
	"fmt"
	"sort"

	"sspubsub/internal/core"
	"sspubsub/internal/sim"
	"sspubsub/internal/supervisor"
)

// Live assembles the same supervised publish-subscribe stack as Cluster on
// an arbitrary sim.Transport — in practice the concurrent goroutine
// runtime. It mirrors Cluster's driver and legitimacy API so scenarios can
// run unchanged on either substrate (the cross-substrate conformance
// tests do exactly that).
//
// All methods must be called from a single driver goroutine; the protocol
// nodes themselves run wherever the transport puts them. On a live
// transport the state-reading predicates (Converged, Explain, TriesEqual,
// AllHavePubs) see each node at a slightly different instant — wrap them
// in the runtime's quiesce barrier when an exact cross-node snapshot is
// required.
type Live struct {
	Tr      sim.Transport
	Sup     *supervisor.Supervisor
	Clients map[sim.NodeID]*core.Client
	opts    core.Options
	nextID  sim.NodeID

	// downed holds the clients of crashed nodes, so a chaos restart can
	// bring them back with exactly the stale state they crashed with — the
	// "arbitrary initial state" the protocol self-stabilizes from.
	downed map[sim.NodeID]*core.Client
}

// NewLive starts a supervisor on the transport and returns the harness.
func NewLive(tr sim.Transport, clientOpts core.Options) *Live {
	sup := supervisor.New(SupervisorID, tr)
	tr.AddNode(SupervisorID, sup)
	return &Live{
		Tr:      tr,
		Sup:     sup,
		Clients: make(map[sim.NodeID]*core.Client),
		opts:    clientOpts,
		nextID:  SupervisorID + 1,
		downed:  make(map[sim.NodeID]*core.Client),
	}
}

// AddClient creates and registers one client node, returning its ID.
func (l *Live) AddClient() sim.NodeID {
	id := l.nextID
	l.nextID++
	cl := core.NewClient(id, SupervisorID, l.opts)
	l.Clients[id] = cl
	l.Tr.AddNode(id, cl)
	return id
}

// AddClients creates n clients and returns their IDs in creation order.
func (l *Live) AddClients(n int) []sim.NodeID {
	out := make([]sim.NodeID, n)
	for i := range out {
		out[i] = l.AddClient()
	}
	return out
}

// Join subscribes a client to a topic (via its control channel).
func (l *Live) Join(id sim.NodeID, t sim.Topic) {
	l.Tr.Send(sim.Message{To: id, From: id, Topic: t, Body: core.JoinTopic{}})
}

// JoinAll subscribes every client to the topic, in ID order.
func (l *Live) JoinAll(t sim.Topic) {
	ids := make([]sim.NodeID, 0, len(l.Clients))
	for id := range l.Clients {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		l.Join(id, t)
	}
}

// Leave starts the unsubscribe handshake for one client.
func (l *Live) Leave(id sim.NodeID, t sim.Topic) {
	l.Tr.Send(sim.Message{To: id, From: id, Topic: t, Body: core.LeaveTopic{}})
}

// Publish makes a client publish a payload on a topic.
func (l *Live) Publish(id sim.NodeID, t sim.Topic, payload string) {
	l.Tr.Send(sim.Message{To: id, From: id, Topic: t, Body: core.PublishCmd{Payload: payload}})
}

// Crash fails a client without warning. The client object is retained so
// Restart can bring the node back with its stale state.
func (l *Live) Crash(id sim.NodeID) {
	l.Tr.Crash(id)
	if cl, ok := l.Clients[id]; ok {
		l.downed[id] = cl
		delete(l.Clients, id)
	}
}

// Restart re-registers a previously crashed client on the transport with
// whatever state it had at crash time. It reports false when id was never
// crashed (or already restarted).
func (l *Live) Restart(id sim.NodeID) bool {
	cl, ok := l.downed[id]
	if !ok {
		return false
	}
	delete(l.downed, id)
	l.Clients[id] = cl
	l.Tr.AddNode(id, cl)
	return true
}

// Downed returns the IDs of crashed, not-yet-restarted clients, sorted.
func (l *Live) Downed() []sim.NodeID {
	out := make([]sim.NodeID, 0, len(l.downed))
	for id := range l.downed {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Members returns the clients currently holding a live instance for t,
// sorted by ID.
func (l *Live) Members(t sim.Topic) []sim.NodeID {
	var out []sim.NodeID
	for id, cl := range l.Clients {
		if cl.Joined(t) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Converged reports whether topic t is in a legitimate state (see
// Cluster.Converged for the predicate).
func (l *Live) Converged(t sim.Topic) bool { return l.Explain(t) == "" }

// Explain returns a human-readable description of the first legitimacy
// violation, or "" when converged.
func (l *Live) Explain(t sim.Topic) string {
	if l.Sup.Corrupted(t) {
		return "supervisor database corrupted"
	}
	states := make(map[sim.NodeID]core.State)
	for _, id := range l.Members(t) {
		st, ok := l.Clients[id].StateOf(t)
		if !ok {
			return fmt.Sprintf("member %d has no instance", id)
		}
		states[id] = st
	}
	return CheckLegitimacy(l.Sup.Snapshot(t), states)
}

// ConvergedWith reports legitimacy with exactly n recorded members.
func (l *Live) ConvergedWith(t sim.Topic, n int) bool {
	return l.Sup.N(t) == n && len(l.Members(t)) == n && l.Converged(t)
}

// TriesEqual reports whether all live members hold hash-identical tries.
func (l *Live) TriesEqual(t sim.Topic) bool {
	members := l.Members(t)
	if len(members) == 0 {
		return true
	}
	first := l.Clients[members[0]].TrieRootHash(t)
	for _, id := range members[1:] {
		if l.Clients[id].TrieRootHash(t) != first {
			return false
		}
	}
	return true
}

// AllHavePubs reports whether every live member knows at least k
// publications for t.
func (l *Live) AllHavePubs(t sim.Topic, k int) bool {
	for _, id := range l.Members(t) {
		if len(l.Clients[id].Publications(t)) < k {
			return false
		}
	}
	return true
}
