package cluster

import (
	"fmt"
	"math/rand"
	"sort"

	"sspubsub/internal/core"
	"sspubsub/internal/hashdht"
	"sspubsub/internal/ordering"
	"sspubsub/internal/sim"
	"sspubsub/internal/supervisor"
)

// Live assembles the same supervised publish-subscribe stack as Cluster on
// an arbitrary sim.Transport — in practice the concurrent goroutine
// runtime. It mirrors Cluster's driver and legitimacy API so scenarios can
// run unchanged on either substrate (the cross-substrate conformance
// tests do exactly that).
//
// All methods must be called from a single driver goroutine; the protocol
// nodes themselves run wherever the transport puts them. On a live
// transport the state-reading predicates (Converged, Explain, TriesEqual,
// AllHavePubs) see each node at a slightly different instant — wrap them
// in the runtime's quiesce barrier when an exact cross-node snapshot is
// required.
type Live struct {
	Tr sim.Transport
	// Sup is the supervisor at SupervisorID — the whole plane on a classic
	// single-supervisor harness. Multi-supervisor call sites use Sups and
	// SupFor.
	Sup *supervisor.Supervisor
	// Sups holds every supervisor by node ID (crashed ones keep their
	// instance so a restart resumes with the stale state it crashed with).
	// SupIDs is the static plane, ascending from SupervisorID.
	Sups    map[sim.NodeID]*supervisor.Supervisor
	SupIDs  []sim.NodeID
	Clients map[sim.NodeID]*core.Client
	opts    core.Options
	nextID  sim.NodeID

	// downed holds the clients of crashed nodes, so a chaos restart can
	// bring them back with exactly the stale state they crashed with — the
	// "arbitrary initial state" the protocol self-stabilizes from.
	downed map[sim.NodeID]*core.Client
	// downedSups marks crashed, not-yet-restarted supervisors.
	downedSups map[sim.NodeID]bool
	// viewRing is the driver's ground-truth live-supervisor ring: it drives
	// client routing (SupervisorFor) and the expected-ownership oracle the
	// legitimacy checks compare the plane against.
	viewRing *hashdht.Ring
	// RepFactor is the plane's directory replication factor (0 when warm
	// failover is off); the replica predicates key off it.
	RepFactor int
}

// NewLive starts a single supervisor on the transport and returns the
// harness — the paper's reliable-supervisor configuration.
func NewLive(tr sim.Transport, clientOpts core.Options) *Live {
	return NewLiveN(tr, clientOpts, 1)
}

// NewLiveN starts a plane of `supervisors` supervisors (node IDs
// SupervisorID … SupervisorID+supervisors−1) sharding topics by consistent
// hashing, with crash-tolerant ownership when supervisors > 1. Client IDs
// follow the supervisor block.
func NewLiveN(tr sim.Transport, clientOpts core.Options, supervisors int) *Live {
	return NewLiveRF(tr, clientOpts, supervisors, 0)
}

// NewLiveRF is NewLiveN with directory replication: every topic owner
// streams its database to repFactor hashdht successors, so a supervisor
// crash is repaired from a warm replica instead of the Θ(n) Reregister
// rebuild (see internal/supervisor's replica layer).
func NewLiveRF(tr sim.Transport, clientOpts core.Options, supervisors, repFactor int) *Live {
	if supervisors < 1 {
		supervisors = 1
	}
	if repFactor < 0 || supervisors == 1 {
		repFactor = 0
	}
	ids := make([]sim.NodeID, supervisors)
	for i := range ids {
		ids[i] = SupervisorID + sim.NodeID(i)
	}
	viewRing := hashdht.NewRing(0)
	clientOpts.Supervisors = ids
	clientOpts.SupervisorFor = func(t sim.Topic) sim.NodeID {
		if id, ok := viewRing.OwnerTopic(t); ok {
			return id
		}
		return SupervisorID
	}
	l := &Live{
		Tr:         tr,
		Sups:       make(map[sim.NodeID]*supervisor.Supervisor, supervisors),
		SupIDs:     ids,
		Clients:    make(map[sim.NodeID]*core.Client),
		opts:       clientOpts,
		nextID:     SupervisorID + sim.NodeID(supervisors),
		downed:     make(map[sim.NodeID]*core.Client),
		downedSups: make(map[sim.NodeID]bool),
		viewRing:   viewRing,
		RepFactor:  repFactor,
	}
	for _, id := range ids {
		sup := supervisor.New(id, tr)
		if supervisors > 1 {
			sup.JoinPlane(ids)
			if repFactor > 0 {
				sup.SetReplicationFactor(repFactor)
			}
		}
		if clientOpts.DeliveryMode != ordering.BestEffort {
			sup.SetDefaultMode(clientOpts.DeliveryMode)
		}
		tr.AddNode(id, sup)
		l.Sups[id] = sup
		viewRing.Add(id)
	}
	l.Sup = l.Sups[SupervisorID]
	return l
}

// ---- supervisor plane driving ----

// CrashSupervisor fails a supervisor without warning; its instance is
// retained so RestartSupervisor can bring it back with the stale state it
// crashed with. It reports false for unknown or already-crashed IDs, and
// refuses to crash the last live supervisor — with the whole plane down
// no topic has an owner and nothing can converge, which is a driver
// mistake rather than a scenario.
func (l *Live) CrashSupervisor(id sim.NodeID) bool {
	if _, ok := l.Sups[id]; !ok || l.downedSups[id] {
		return false
	}
	if len(l.LiveSupervisors()) <= 1 {
		return false
	}
	l.Tr.Crash(id)
	l.downedSups[id] = true
	l.viewRing.Remove(id)
	return true
}

// RestartSupervisor re-registers a crashed supervisor with its stale
// state — an arbitrary initial plane state the ownership machinery must
// repair (epochs, hosting flags and the deposed database are all stale).
func (l *Live) RestartSupervisor(id sim.NodeID) bool {
	if !l.downedSups[id] {
		return false
	}
	delete(l.downedSups, id)
	l.Tr.AddNode(id, l.Sups[id])
	l.viewRing.Add(id)
	return true
}

// DownedSupervisors returns the crashed, not-yet-restarted supervisors,
// sorted.
func (l *Live) DownedSupervisors() []sim.NodeID {
	out := make([]sim.NodeID, 0, len(l.downedSups))
	for id := range l.downedSups {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsSupervisor reports whether id belongs to the static supervisor plane
// (crashed or not) — the protect predicate for churn injectors that must
// only fault subscribers.
func (l *Live) IsSupervisor(id sim.NodeID) bool {
	_, ok := l.Sups[id]
	return ok
}

// LiveSupervisors returns the supervisors currently up, sorted.
func (l *Live) LiveSupervisors() []sim.NodeID {
	out := make([]sim.NodeID, 0, len(l.SupIDs))
	for _, id := range l.SupIDs {
		if !l.downedSups[id] {
			out = append(out, id)
		}
	}
	return out
}

// ExpectedOwner returns the supervisor that ought to own the topic: the
// consistent-hashing owner over the live supervisors. ok is false when
// every supervisor is down.
func (l *Live) ExpectedOwner(t sim.Topic) (sim.NodeID, bool) {
	return l.viewRing.OwnerTopic(t)
}

// SupFor returns the supervisor instance expected to own the topic (nil
// when the whole plane is down).
func (l *Live) SupFor(t sim.Topic) *supervisor.Supervisor {
	owner, ok := l.ExpectedOwner(t)
	if !ok {
		return nil
	}
	return l.Sups[owner]
}

// ExplainOwnership checks the plane's ownership agreement for a topic: the
// expected owner (and only it) hosts the database, every member reports to
// it, and all epochs agree. It returns "" when ownership has converged.
func (l *Live) ExplainOwnership(t sim.Topic) string {
	owner, ok := l.ExpectedOwner(t)
	if !ok {
		return "no live supervisor"
	}
	members := l.Members(t)
	for _, id := range l.LiveSupervisors() {
		hosts := l.Sups[id].Hosts(t)
		if id != owner && hosts {
			return fmt.Sprintf("supervisor %d hosts topic %d owned by %d", id, t, owner)
		}
		if id == owner && !hosts && len(members) > 0 {
			return fmt.Sprintf("owner %d does not host topic %d (%d members)", id, t, len(members))
		}
	}
	epoch := l.Sups[owner].EpochOf(t)
	for _, id := range members {
		st, ok := l.Clients[id].StateOf(t)
		if !ok {
			return fmt.Sprintf("member %d has no instance", id)
		}
		if st.Sup != owner {
			return fmt.Sprintf("member %d reports to supervisor %d, owner is %d", id, st.Sup, owner)
		}
		if st.Epoch != epoch {
			return fmt.Sprintf("member %d at epoch %d, owner at epoch %d", id, st.Epoch, epoch)
		}
	}
	return ""
}

// ExpectedReplicas returns the supervisors that ought to hold a warm
// replica of t's directory: the RepFactor hashdht successors of the
// expected owner on the live ring. Empty when replication is off or the
// plane is too small.
func (l *Live) ExpectedReplicas(t sim.Topic) []sim.NodeID {
	if l.RepFactor <= 0 || len(l.SupIDs) <= 1 {
		return nil
	}
	return l.viewRing.Successors(hashdht.TopicKey(t), l.RepFactor)
}

// ExplainReplication checks replica convergence for a topic: every
// expected replica holder's held digest matches the owner's directory
// digest (epoch, entry count and content hash). It returns "" when all
// replicas are warm, and trivially when replication is off.
func (l *Live) ExplainReplication(t sim.Topic) string {
	if l.RepFactor <= 0 || len(l.SupIDs) <= 1 {
		return ""
	}
	owner, ok := l.ExpectedOwner(t)
	if !ok {
		return "no live supervisor"
	}
	epoch, hash, count, ok := l.Sups[owner].DirectoryDigest(t)
	if !ok {
		return fmt.Sprintf("owner %d does not host topic %d", owner, t)
	}
	mode := l.Sups[owner].ModeFor(t)
	for _, id := range l.ExpectedReplicas(t) {
		if l.downedSups[id] {
			continue
		}
		rEpoch, rHash, rCount, held := l.Sups[id].HeldReplicaDigest(t)
		if !held {
			return fmt.Sprintf("supervisor %d holds no replica of topic %d", id, t)
		}
		if rEpoch != epoch {
			return fmt.Sprintf("replica %d at epoch %d, owner at epoch %d", id, rEpoch, epoch)
		}
		if rCount != count {
			return fmt.Sprintf("replica %d has %d entries, owner has %d", id, rCount, count)
		}
		if rHash != hash {
			return fmt.Sprintf("replica %d digest mismatch against owner %d", id, owner)
		}
		if rMode := l.Sups[id].ModeFor(t); rMode != mode {
			return fmt.Sprintf("replica %d records delivery mode %v, owner records %v", id, rMode, mode)
		}
	}
	return ""
}

// ReplicasConverged reports whether every expected replica of t matches
// the owner's directory digest.
func (l *Live) ReplicasConverged(t sim.Topic) bool { return l.ExplainReplication(t) == "" }

// AddClient creates and registers one client node, returning its ID.
func (l *Live) AddClient() sim.NodeID {
	id := l.nextID
	l.nextID++
	cl := core.NewClient(id, SupervisorID, l.opts)
	l.Clients[id] = cl
	l.Tr.AddNode(id, cl)
	return id
}

// AddClients creates n clients and returns their IDs in creation order.
func (l *Live) AddClients(n int) []sim.NodeID {
	out := make([]sim.NodeID, n)
	for i := range out {
		out[i] = l.AddClient()
	}
	return out
}

// Join subscribes a client to a topic (via its control channel).
func (l *Live) Join(id sim.NodeID, t sim.Topic) {
	l.Tr.Send(sim.Message{To: id, From: id, Topic: t, Body: core.JoinTopic{}})
}

// JoinAll subscribes every client to the topic, in ID order.
func (l *Live) JoinAll(t sim.Topic) {
	ids := make([]sim.NodeID, 0, len(l.Clients))
	for id := range l.Clients {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		l.Join(id, t)
	}
}

// Leave starts the unsubscribe handshake for one client.
func (l *Live) Leave(id sim.NodeID, t sim.Topic) {
	l.Tr.Send(sim.Message{To: id, From: id, Topic: t, Body: core.LeaveTopic{}})
}

// Publish makes a client publish a payload on a topic.
func (l *Live) Publish(id sim.NodeID, t sim.Topic, payload string) {
	l.Tr.Send(sim.Message{To: id, From: id, Topic: t, Body: core.PublishCmd{Payload: payload}})
}

// Crash fails a client without warning. The client object is retained so
// Restart can bring the node back with its stale state.
func (l *Live) Crash(id sim.NodeID) {
	l.Tr.Crash(id)
	if cl, ok := l.Clients[id]; ok {
		l.downed[id] = cl
		delete(l.Clients, id)
	}
}

// Restart re-registers a previously crashed client on the transport with
// whatever state it had at crash time. It reports false when id was never
// crashed (or already restarted).
func (l *Live) Restart(id sim.NodeID) bool {
	cl, ok := l.downed[id]
	if !ok {
		return false
	}
	delete(l.downed, id)
	l.Clients[id] = cl
	l.Tr.AddNode(id, cl)
	return true
}

// Downed returns the IDs of crashed, not-yet-restarted clients, sorted.
func (l *Live) Downed() []sim.NodeID {
	out := make([]sim.NodeID, 0, len(l.downed))
	for id := range l.downed {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Members returns the clients currently holding a live instance for t,
// sorted by ID.
func (l *Live) Members(t sim.Topic) []sim.NodeID {
	var out []sim.NodeID
	for id, cl := range l.Clients {
		if cl.Joined(t) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SettledMembers returns the members with no unsubscribe in flight,
// sorted by ID. A publication that must provably reach the whole topic
// (the chaos engine's delivery wave) needs a publisher that will remain a
// member: with non-FIFO channels a leaver's departure grant can overtake
// its own publish command, silently dropping the publication.
func (l *Live) SettledMembers(t sim.Topic) []sim.NodeID {
	var out []sim.NodeID
	for id, cl := range l.Clients {
		if st, ok := cl.StateOf(t); ok && !st.Departed && !st.Leaving {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CorruptOrderingState scrambles the ordering state (sequence cursors,
// duplicate bitmaps, causal pending sets, publisher counters) of every live
// member of t — the chaos `corrupt-ordering` fault. Clients are visited in
// ID order so the scramble is deterministic given rng. A safe no-op on
// best-effort topics, which hold no ordering state.
func (l *Live) CorruptOrderingState(t sim.Topic, rng *rand.Rand) {
	ids := make([]sim.NodeID, 0, len(l.Clients))
	for id := range l.Clients {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		l.Clients[id].CorruptOrdering(t, rng)
	}
}

// Converged reports whether topic t is in a legitimate state (see
// Cluster.Converged for the predicate).
func (l *Live) Converged(t sim.Topic) bool { return l.Explain(t) == "" }

// Explain returns a human-readable description of the first legitimacy
// violation, or "" when converged. On a multi-supervisor plane the topic's
// expected owner is the database of record, and ownership agreement is
// part of legitimacy: a converged system has exactly one hosting
// supervisor, and every member reports to it at its epoch.
func (l *Live) Explain(t sim.Topic) string {
	sup := l.SupFor(t)
	if sup == nil {
		return "no live supervisor"
	}
	if sup.Corrupted(t) {
		return "supervisor database corrupted"
	}
	if len(l.SupIDs) > 1 {
		if v := l.ExplainOwnership(t); v != "" {
			return v
		}
	}
	states := make(map[sim.NodeID]core.State)
	for _, id := range l.Members(t) {
		st, ok := l.Clients[id].StateOf(t)
		if !ok {
			return fmt.Sprintf("member %d has no instance", id)
		}
		states[id] = st
	}
	return CheckLegitimacy(sup.Snapshot(t), states)
}

// ConvergedWith reports legitimacy with exactly n recorded members.
func (l *Live) ConvergedWith(t sim.Topic, n int) bool {
	sup := l.SupFor(t)
	return sup != nil && sup.N(t) == n && len(l.Members(t)) == n && l.Converged(t)
}

// TriesEqual reports whether all live members hold hash-identical tries.
func (l *Live) TriesEqual(t sim.Topic) bool {
	members := l.Members(t)
	if len(members) == 0 {
		return true
	}
	first := l.Clients[members[0]].TrieRootHash(t)
	for _, id := range members[1:] {
		if l.Clients[id].TrieRootHash(t) != first {
			return false
		}
	}
	return true
}

// AllHavePubs reports whether every live member knows at least k
// publications for t.
func (l *Live) AllHavePubs(t sim.Topic, k int) bool {
	for _, id := range l.Members(t) {
		if len(l.Clients[id].Publications(t)) < k {
			return false
		}
	}
	return true
}
