// Package wire defines the canonical binary representation of every
// message in the system: a length-prefixed, versioned frame carrying the
// sim.Message envelope (To, From, Topic) and one tagged protocol body.
// It is the boundary between the in-memory protocol (packages proto, core,
// sim) and anything that moves messages between address spaces — the TCP
// transport in internal/runtime/nettransport, and any future persistence
// or replay tooling.
//
// Frame layout (all multi-byte integers are varints unless noted):
//
//	uint32   payload length, big endian (payload excludes these 4 bytes)
//	byte[2]  magic "SR"
//	byte     version (currently 1)
//	svarint  To    (sim.NodeID)
//	svarint  From  (sim.NodeID)
//	svarint  Topic (sim.Topic)
//	uvarint  body type tag (see registry.go)
//	[]byte   body, per-type encoding
//
// The codec is self-describing through the type registry: a frame whose
// tag is unregistered, whose body does not parse, or whose payload has
// trailing bytes is rejected with an error — never a panic. That matters
// beyond robustness: a corrupted or adversarial frame is exactly the
// "arbitrary initial state" of the self-stabilization model, so the wire
// layer's job is to turn garbage into message loss (which the protocol
// provably absorbs) rather than into crashes.
//
// Decoding is canonicalizing: for any bytes b that Unmarshal accepts,
// Marshal(Unmarshal(b)) re-encodes to a frame that decodes to the same
// message. Empty slices decode as nil (the canonical form).
//
// The codec is built for an allocation-free steady state: AppendFrame
// encodes into a caller-held buffer (and WriteFrame into a pooled one),
// ReadFrameBuf reuses one frame buffer per connection, and the encoder/
// decoder cursors are recycled through sync.Pools. The Batch envelope
// (tag 34) lets a transport carry a whole coalescing window of messages
// in one frame; see the type's documentation for its layout and
// garbage semantics.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
)

const (
	// Version is the wire format version carried in every frame.
	Version = 1
	// MaxFrame is the maximum payload length the codec accepts. A length
	// prefix beyond it means the stream is corrupt (or hostile) and cannot
	// be resynchronized.
	MaxFrame = 1 << 20

	magic0, magic1 = 'S', 'R'
)

// ErrGarbage is wrapped by every recoverable decode failure: the frame was
// delimited correctly but its contents are not a well-formed message. The
// stream remains aligned and the reader may continue with the next frame.
var ErrGarbage = errors.New("wire: garbage frame")

// ErrFrameTooLarge reports a length prefix exceeding MaxFrame. Unlike
// ErrGarbage this poisons the whole stream: the reader cannot skip what it
// cannot trust the length of.
var ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")

// Marshal encodes m as one complete frame, length prefix included.
// It fails only when the body type is not registered. It allocates a
// fresh slice per call; hot paths should hold a buffer and use
// AppendFrame, or let WriteFrame recycle one from the frame pool.
func Marshal(m sim.Message) ([]byte, error) { return AppendFrame(nil, m) }

// encPool recycles the encoder cursors AppendFrame threads through the
// per-type encoding funcs. The cursor escapes into those (dynamically
// dispatched) calls, so without the pool every frame encoded would heap-
// allocate one.
var encPool = sync.Pool{New: func() any { return new(enc) }}

// decPool is encPool's decode-side twin.
var decPool = sync.Pool{New: func() any { return new(dec) }}

// AppendFrame appends the frame encoding of m to dst and returns the
// extended slice. When dst has sufficient capacity, the call performs no
// allocations.
func AppendFrame(dst []byte, m sim.Message) ([]byte, error) {
	tag, ent, err := lookupBody(m.Body)
	if err != nil {
		return dst, err
	}
	switch b := m.Body.(type) {
	case Batch:
		// Validate every nested body up front: the per-type encoding funcs
		// cannot fail mid-frame, so a batch with an unencodable or nested-
		// batch member must be rejected before any byte is written.
		for _, bm := range b.Msgs {
			if err := checkBatchable(bm.Body); err != nil {
				return dst, err
			}
		}
	case Batch2:
		for _, bm := range b.Msgs {
			if err := checkBatchable(bm.Body); err != nil {
				return dst, err
			}
		}
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length prefix, patched below
	e := encPool.Get().(*enc)
	e.b = dst
	e.raw(magic0, magic1, Version)
	e.svarint(int64(m.To))
	e.svarint(int64(m.From))
	e.svarint(int64(m.Topic))
	e.uvarint(tag)
	ent.enc(e, m.Body)
	out := e.b
	e.b = nil
	encPool.Put(e)
	payload := len(out) - start - 4
	if payload > MaxFrame {
		return out[:start], fmt.Errorf("%w (%d bytes)", ErrFrameTooLarge, payload)
	}
	binary.BigEndian.PutUint32(out[start:], uint32(payload))
	return out, nil
}

// Unmarshal decodes one complete frame (length prefix included). The
// buffer must contain exactly one frame; trailing bytes are an error.
func Unmarshal(b []byte) (sim.Message, error) { return UnmarshalState(b, nil) }

// UnmarshalState is Unmarshal decoding through st (nil st is plain
// Unmarshal): batch scaffolding, publication slices and payload strings
// come out of st's arena, and shareable Batch2 member bodies are served
// from st's intern cache when their exact bytes were decoded before. See
// DecodeState for the lifetime contract on the returned message.
func UnmarshalState(b []byte, st *DecodeState) (sim.Message, error) {
	if len(b) < 4 {
		return sim.Message{}, fmt.Errorf("%w: short length prefix", ErrGarbage)
	}
	n := binary.BigEndian.Uint32(b)
	if n > MaxFrame {
		return sim.Message{}, ErrFrameTooLarge
	}
	if int(n) != len(b)-4 {
		return sim.Message{}, fmt.Errorf("%w: length prefix %d over %d payload bytes", ErrGarbage, n, len(b)-4)
	}
	return decodePayload(b[4:], st)
}

// decodePayload decodes the frame contents after the length prefix,
// optionally through a DecodeState.
func decodePayload(p []byte, st *DecodeState) (sim.Message, error) {
	if len(p) < 3 {
		return sim.Message{}, fmt.Errorf("%w: short header", ErrGarbage)
	}
	if p[0] != magic0 || p[1] != magic1 {
		return sim.Message{}, fmt.Errorf("%w: bad magic %#x%#x", ErrGarbage, p[0], p[1])
	}
	if p[2] != Version {
		return sim.Message{}, fmt.Errorf("%w: unsupported version %d", ErrGarbage, p[2])
	}
	d := decPool.Get().(*dec)
	*d = dec{b: p[3:]}
	if st != nil {
		d.arena = &st.arena
		d.cache = &st.cache
	}
	defer func() {
		*d = dec{}
		decPool.Put(d)
	}()
	var m sim.Message
	m.To = sim.NodeID(d.svarint())
	m.From = sim.NodeID(d.svarint())
	m.Topic = sim.Topic(d.svarint())
	tag := d.uvarint()
	if d.err != nil {
		return sim.Message{}, d.err
	}
	ent, ok := registry[tag]
	if !ok {
		return sim.Message{}, fmt.Errorf("%w: unknown type tag %d", ErrGarbage, tag)
	}
	m.Body = ent.dec(d)
	if d.err != nil {
		return sim.Message{}, fmt.Errorf("decoding %s: %w", ent.name, d.err)
	}
	if d.off != len(d.b) {
		return sim.Message{}, fmt.Errorf("%w: %d trailing bytes after %s", ErrGarbage, len(d.b)-d.off, ent.name)
	}
	return m, nil
}

// framePool recycles whole-frame scratch buffers for the convenience
// wrappers (WriteFrame). Buffers that ballooned past keepFrame bytes are
// dropped rather than pooled, so one oversized frame does not pin a
// megabyte per P forever.
var framePool = sync.Pool{New: func() any { return new(frameBuf) }}

type frameBuf struct{ b []byte }

const keepFrame = 64 << 10

// WriteFrame writes m to w as one frame. It encodes into a pooled scratch
// buffer, so the steady-state call allocates nothing beyond what the body
// encoding itself requires (which is nothing).
func WriteFrame(w io.Writer, m sim.Message) error {
	fb := framePool.Get().(*frameBuf)
	b, err := AppendFrame(fb.b[:0], m)
	if err == nil {
		_, err = w.Write(b)
	}
	if cap(b) <= keepFrame {
		fb.b = b
	} else {
		fb.b = nil
	}
	framePool.Put(fb)
	return err
}

// ReadFrame reads one frame from r. Errors wrapping ErrGarbage are
// recoverable — the stream is still aligned on a frame boundary and the
// caller may read the next frame. Any other error (I/O failure,
// ErrFrameTooLarge) means the stream is unusable.
//
// ReadFrame allocates a fresh buffer per frame; loop readers should hold
// a buffer across calls and use ReadFrameBuf.
func ReadFrame(r io.Reader) (sim.Message, error) {
	m, _, err := ReadFrameBuf(r, nil)
	return m, err
}

// ReadFrameBuf reads one frame from r into the caller-supplied buffer,
// growing it only when a frame exceeds its capacity, and returns the
// (possibly re-grown) buffer for the next call. The decoded message
// never references the buffer — strings and slices are copied out — so
// the same buffer can back every frame of a connection:
//
//	var buf []byte
//	for {
//		m, buf, err = wire.ReadFrameBuf(r, buf)
//		...
//	}
//
// Error semantics match ReadFrame.
func ReadFrameBuf(r io.Reader, buf []byte) (sim.Message, []byte, error) {
	return ReadFrameBufState(r, buf, nil)
}

// ReadFrameBufState is ReadFrameBuf decoding through st (nil st is plain
// ReadFrameBuf); see UnmarshalState. A connection read loop pairs one
// buffer with one DecodeState and calls st.EndFrame after dispatching
// each frame's messages.
func ReadFrameBufState(r io.Reader, buf []byte, st *DecodeState) (sim.Message, []byte, error) {
	// The header is read through buf as well: a local array would escape
	// through the io.Reader interface call and cost one allocation per
	// frame.
	if cap(buf) < 4 {
		buf = make([]byte, 4, 512)
	}
	hdr := buf[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return sim.Message{}, buf, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > MaxFrame {
		return sim.Message{}, buf, ErrFrameTooLarge
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return sim.Message{}, buf, err
	}
	m, err := decodePayload(buf, st)
	return m, buf, err
}

// ---- primitive encoding ----

// enc is an append-only byte writer. Encoding cannot fail (the only
// failure mode, an unregistered body type, is caught before encoding
// starts).
type enc struct{ b []byte }

func (e *enc) raw(bs ...byte)   { e.b = append(e.b, bs...) }
func (e *enc) u8(v uint8)       { e.b = append(e.b, v) }
func (e *enc) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) svarint(v int64)  { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) str(s string) { e.uvarint(uint64(len(s))); e.b = append(e.b, s...) }

// dec is a cursor over one frame payload. The first failure latches in err
// and turns every later read into a zero-value no-op, so per-type decoders
// can read field-by-field without checking after each call. When arena and
// cache are set (stateful decode), strings and batch scaffolding come out
// of the arena and length-prefixed members consult the intern cache.
type dec struct {
	b     []byte
	off   int
	err   error
	arena *Arena
	cache *DecodeCache
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrGarbage, fmt.Sprintf(format, args...))
	}
}

func (d *dec) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("truncated byte")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *dec) svarint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad svarint")
		return 0
	}
	d.off += n
	return v
}

func (d *dec) boolean() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bad bool")
		return false
	}
}

// bytes fills dst from the input, or fails if fewer bytes remain.
func (d *dec) bytes(dst []byte) {
	if d.err != nil {
		return
	}
	if len(dst) > len(d.b)-d.off {
		d.fail("truncated %d-byte field", len(dst))
		return
	}
	copy(dst, d.b[d.off:])
	d.off += len(dst)
}

func (d *dec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("string length %d exceeds %d remaining bytes", n, len(d.b)-d.off)
		return ""
	}
	var s string
	if d.arena != nil {
		s = d.arena.grabString(d.b[d.off : d.off+int(n)])
	} else {
		s = string(d.b[d.off : d.off+int(n)])
	}
	d.off += int(n)
	return s
}

// grabMsgs allocates batch scaffolding — arena-bumped on the stateful
// path, a discrete slice otherwise. Empty stays nil (canonical form).
func (d *dec) grabMsgs(n int) []sim.Message {
	if n == 0 {
		return nil
	}
	if d.arena != nil {
		return d.arena.grabMsgs(n)
	}
	return make([]sim.Message, 0, n)
}

// grabPubs is grabMsgs for publication slices.
func (d *dec) grabPubs(n int) []proto.Publication {
	if n == 0 {
		return nil
	}
	if d.arena != nil {
		return d.arena.grabPubs(n)
	}
	return make([]proto.Publication, 0, n)
}

// sliceLen validates a decoded element count against the remaining input:
// every element costs at least minBytes, so a count beyond remaining/min
// is a lie and must not drive an allocation.
func (d *dec) sliceLen(minBytes int) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64((len(d.b)-d.off)/minBytes) {
		d.fail("slice length %d exceeds remaining input", n)
		return 0
	}
	return int(n)
}

// ---- raw frame assembly (encode-once transport path) ----
//
// The networked transport encodes each distinct body exactly once with
// AppendBody and then stamps that tagged encoding into as many frames as
// there are destinations — either one standalone frame per message
// (AppendFrameRaw) or as length-prefixed members of a Batch2 frame
// (BeginBatchFrame / AppendBatchMember / FinishFrame). The bytes these
// produce are identical to AppendFrame over the equivalent message, so
// readers cannot tell the paths apart.

// AppendBody appends the tagged encoding of body (type tag + per-type
// body; no envelope, no frame header) to dst. This is the unit the
// transport encodes once and shares across every destination. Batch
// bodies are rejected — a batch is framing, not payload.
func AppendBody(dst []byte, body any) ([]byte, error) {
	if err := checkBatchable(body); err != nil {
		return dst, err
	}
	tag, ent, _ := lookupBody(body)
	e := encPool.Get().(*enc)
	e.b = dst
	e.uvarint(tag)
	ent.enc(e, body)
	out := e.b
	e.b = nil
	encPool.Put(e)
	return out, nil
}

// AppendFrameRaw appends one complete frame wrapping a pre-encoded
// tagged body (from AppendBody) under the given envelope.
func AppendFrameRaw(dst []byte, to, from sim.NodeID, topic sim.Topic, tagged []byte) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, magic0, magic1, Version)
	dst = binary.AppendVarint(dst, int64(to))
	dst = binary.AppendVarint(dst, int64(from))
	dst = binary.AppendVarint(dst, int64(topic))
	dst = append(dst, tagged...)
	return FinishFrame(dst, start)
}

// BeginBatchFrame starts a Batch2 frame that will carry count members;
// append each with AppendBatchMember and close the frame with
// FinishFrame, passing the len(dst) from before this call as start.
func BeginBatchFrame(dst []byte, count int) []byte {
	dst = append(dst, 0, 0, 0, 0, magic0, magic1, Version)
	dst = append(dst, 0, 0, 0) // To, From, Topic: ⊥ envelope (svarint 0 ×3)
	dst = binary.AppendUvarint(dst, tagBatch2)
	return binary.AppendUvarint(dst, uint64(count))
}

// AppendBatchMember appends one length-prefixed Batch2 member wrapping a
// pre-encoded tagged body under the given envelope.
func AppendBatchMember(dst []byte, to, from sim.NodeID, topic sim.Topic, tagged []byte) []byte {
	n := svarintSize(int64(to)) + svarintSize(int64(from)) + svarintSize(int64(topic)) + len(tagged)
	dst = binary.AppendUvarint(dst, uint64(n))
	dst = binary.AppendVarint(dst, int64(to))
	dst = binary.AppendVarint(dst, int64(from))
	dst = binary.AppendVarint(dst, int64(topic))
	return append(dst, tagged...)
}

// BatchMemberSize returns the exact byte count AppendBatchMember will
// append for this member — the writer's frame-size budgeting primitive.
func BatchMemberSize(to, from sim.NodeID, topic sim.Topic, taggedLen int) int {
	n := svarintSize(int64(to)) + svarintSize(int64(from)) + svarintSize(int64(topic)) + taggedLen
	return uvarintSize(uint64(n)) + n
}

// BatchFrameOverhead returns the byte count of a Batch2 frame outside
// its members: length prefix, header, ⊥ envelope, tag and member count.
func BatchFrameOverhead(count int) int {
	return 4 + 3 + 3 + uvarintSize(tagBatch2) + uvarintSize(uint64(count))
}

// FinishFrame patches the length prefix of the frame started at offset
// start and validates the payload against MaxFrame (on failure dst is
// truncated back to start).
func FinishFrame(dst []byte, start int) ([]byte, error) {
	payload := len(dst) - start - 4
	if payload > MaxFrame {
		return dst[:start], fmt.Errorf("%w (%d bytes)", ErrFrameTooLarge, payload)
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(payload))
	return dst, nil
}

func uvarintSize(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func svarintSize(v int64) int {
	return uvarintSize(uint64(v)<<1 ^ uint64(v>>63))
}
