package wire

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"sspubsub/internal/label"
	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
)

// These guards pin the zero-allocation contract of the codec hot path.
// They are deliberately strict: a regression that re-introduces a
// per-frame allocation (an escaping cursor, a lost buffer reuse) fails
// here immediately instead of eroding the benchmark trajectory silently.

func allocCheckMsg() sim.Message {
	return sim.Message{To: 5, From: 9, Topic: 1, Body: proto.Check{
		Sender:    proto.Tuple{L: label.MustParse("011"), Ref: 9},
		YourLabel: label.MustParse("01"),
		Flag:      proto.CYC,
	}}
}

// TestAppendFrameAllocFree: encoding into a buffer with capacity performs
// no allocations at all, for both a fixed-size body and one with slices.
func TestAppendFrameAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; alloc counts are meaningless")
	}
	msgs := []sim.Message{
		allocCheckMsg(),
		{To: 9, From: 1, Topic: 1, Body: proto.CheckTrie{Sender: 4, Nodes: []proto.NodeSummary{
			{Label: proto.Key{Bits: 0b101, Len: 3}, Hash: [16]byte{1, 2, 3}},
		}}},
	}
	for _, m := range msgs {
		buf, err := Marshal(m) // warm: size the buffer, fault in the pools
		if err != nil {
			t.Fatal(err)
		}
		avg := testing.AllocsPerRun(200, func() {
			var err error
			buf, err = AppendFrame(buf[:0], m)
			if err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Errorf("AppendFrame(%T) allocates %.2f objects/op, want 0", m.Body, avg)
		}
	}
}

// TestWriteFrameAllocFree: the compatibility wrapper recycles its frame
// buffer through the pool, so the steady state allocates nothing.
func TestWriteFrameAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; alloc counts are meaningless")
	}
	m := allocCheckMsg()
	if err := WriteFrame(io.Discard, m); err != nil { // warm the pool
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := WriteFrame(io.Discard, m); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("WriteFrame allocates %.2f objects/op, want 0", avg)
	}
}

// TestReadFrameBufAllocs: with a reused frame buffer, decoding a
// fixed-size body costs exactly the one unavoidable allocation — boxing
// the decoded body into the message's `any` field.
func TestReadFrameBufAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; alloc counts are meaningless")
	}
	frame, err := Marshal(allocCheckMsg())
	if err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(frame)
	var buf []byte
	if _, buf, err = ReadFrameBuf(r, buf); err != nil { // warm: grow buf, fault in pools
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		r.Reset(frame)
		m, b, err := ReadFrameBuf(r, buf)
		buf = b
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := m.Body.(proto.Check); !ok {
			t.Fatalf("decoded %T", m.Body)
		}
	})
	if avg > 1 {
		t.Errorf("ReadFrameBuf(Check) allocates %.2f objects/op, want ≤ 1 (body boxing)", avg)
	}
}

// TestArenaBatchDecodeAllocs: decoding the PublishBatch16 shape through a
// DecodeState costs at most 2 allocations per frame — the body boxing and
// the amortized arena chunk — instead of the 18 discrete allocations of
// the stateless path (16 payload strings, the publication slice, boxing).
func TestArenaBatchDecodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; alloc counts are meaningless")
	}
	frame, err := Marshal(benchMessages()["PublishBatch16"])
	if err != nil {
		t.Fatal(err)
	}
	st := NewDecodeState()
	if _, err := UnmarshalState(frame, st); err != nil { // warm: size the arena chunks
		t.Fatal(err)
	}
	st.Reset()
	avg := testing.AllocsPerRun(200, func() {
		m, err := UnmarshalState(frame, st)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(m.Body.(proto.PublishBatch).Pubs); got != 16 {
			t.Fatalf("decoded %d pubs", got)
		}
		st.EndFrame()
		st.Reset() // the benchmark's lifetime model: caller owns the frame's values
	})
	if avg > 2 {
		t.Errorf("arena decode of PublishBatch16 allocates %.2f objects/op, want ≤ 2", avg)
	}
}

// TestArenaBatch2FanoutAllocs: a warm intern cache makes the decode of a
// fan-out Batch2 frame (same shareable body, many destinations) cost at
// most 1 allocation — everything but the batch box is served from the
// cache and the arena scaffold.
func TestArenaBatch2FanoutAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; alloc counts are meaningless")
	}
	body := proto.PublishNew{Pub: proto.Publication{
		Key: proto.Key{Bits: 0x9e37, Len: 64}, Origin: 3,
		Payload: "payload-with-some-realistic-length",
	}}
	var members []sim.Message
	for i := 0; i < 16; i++ {
		members = append(members, sim.Message{To: sim.NodeID(i), From: 3, Topic: 1, Body: body})
	}
	frame, err := Marshal(sim.Message{Body: Batch2{Msgs: members}})
	if err != nil {
		t.Fatal(err)
	}
	st := NewDecodeState()
	if _, err := UnmarshalState(frame, st); err != nil { // warm the cache
		t.Fatal(err)
	}
	st.EndFrame()
	avg := testing.AllocsPerRun(200, func() {
		m, err := UnmarshalState(frame, st)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(m.Body.(Batch2).Msgs); got != 16 {
			t.Fatalf("decoded %d members", got)
		}
		st.EndFrame()
	})
	if avg > 1 {
		t.Errorf("interned decode of a 16-way fan-out batch allocates %.2f objects/op, want ≤ 1", avg)
	}
}

// TestRegistryNamesMatchReflection: the registry's canonical names seed
// the shared accounting name table (sim.TypeName), so each must equal the
// %T rendering it replaces — otherwise CountByType keys would silently
// change meaning. Compared against a fresh Sprintf, not TypeName, since
// the latter would just echo the seeded value back.
func TestRegistryNamesMatchReflection(t *testing.T) {
	for tag, ent := range registry {
		if want := fmt.Sprintf("%T", ent.zero); ent.name != want {
			t.Errorf("tag %d: registry name %q, %%T renders %q", tag, ent.name, want)
		}
		if got := sim.TypeName(ent.zero); got != ent.name {
			t.Errorf("tag %d: TypeName %q diverges from registry name %q", tag, got, ent.name)
		}
	}
}
