package wire

import (
	"fmt"
	"testing"

	"sspubsub/internal/label"
	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
)

// benchMessages are the shapes that dominate live traffic: Check is the
// steady-state ring heartbeat, SetData the supervisor's answer, and
// PublishBatch the anti-entropy bulk path.
func benchMessages() map[string]sim.Message {
	batch := proto.PublishBatch{}
	for i := 0; i < 16; i++ {
		batch.Pubs = append(batch.Pubs, proto.Publication{
			Key:     proto.Key{Bits: uint64(i) * 0x9e3779b97f4a7c15, Len: 64},
			Origin:  sim.NodeID(i + 2),
			Payload: fmt.Sprintf("payload-%d-with-some-realistic-length", i),
		})
	}
	return map[string]sim.Message{
		"Check": {To: 5, From: 9, Topic: 1, Body: proto.Check{
			Sender:    proto.Tuple{L: label.MustParse("011"), Ref: 9},
			YourLabel: label.MustParse("01"),
			Flag:      proto.CYC,
		}},
		"SetData": {To: 9, From: 1, Topic: 1, Body: proto.SetData{
			Pred:  proto.Tuple{L: label.MustParse("01"), Ref: 4},
			Label: label.MustParse("011"),
			Succ:  proto.Tuple{L: label.MustParse("11"), Ref: 7},
		}},
		"PublishBatch16": {To: 5, From: 9, Topic: 1, Body: batch},
	}
}

// BenchmarkWireMarshal measures encode throughput per message shape.
func BenchmarkWireMarshal(b *testing.B) {
	for name, m := range benchMessages() {
		b.Run(name, func(b *testing.B) {
			frame, err := Marshal(m)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(frame)))
			b.ReportAllocs()
			buf := make([]byte, 0, len(frame))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = AppendFrame(buf[:0], m)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireUnmarshal measures decode throughput per message shape,
// through the per-connection DecodeState the transport read loop uses.
// The state is Reset each iteration — the strictest lifetime model, so
// the numbers hold even for callers that cannot batch-amortize.
func BenchmarkWireUnmarshal(b *testing.B) {
	for name, m := range benchMessages() {
		b.Run(name, func(b *testing.B) {
			frame, err := Marshal(m)
			if err != nil {
				b.Fatal(err)
			}
			st := NewDecodeState()
			b.SetBytes(int64(len(frame)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := UnmarshalState(frame, st); err != nil {
					b.Fatal(err)
				}
				st.EndFrame()
				st.Reset()
			}
		})
	}
}

// BenchmarkWireRoundTrip is the end-to-end codec cost per message — the
// number that bounds the net transport's per-frame CPU overhead.
func BenchmarkWireRoundTrip(b *testing.B) {
	for name, m := range benchMessages() {
		b.Run(name, func(b *testing.B) {
			frame, _ := Marshal(m)
			b.SetBytes(int64(len(frame)))
			b.ReportAllocs()
			buf := make([]byte, 0, len(frame))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf, _ = AppendFrame(buf[:0], m)
				if _, err := Unmarshal(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
