package wire

import (
	"errors"
	"reflect"
	"testing"

	"sspubsub/internal/core"
	"sspubsub/internal/label"
	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
)

// tape turns a fuzz byte string into a stream of typed draws, so the fuzzer
// explores the full message space structure-aware: every registered type,
// every field, arbitrary values. Exhausted tapes read zero.
type tape struct {
	b   []byte
	off int
}

func (t *tape) u8() uint8 {
	if t.off >= len(t.b) {
		return 0
	}
	v := t.b[t.off]
	t.off++
	return v
}

func (t *tape) u64() uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(t.u8())
	}
	return v
}

func (t *tape) node() sim.NodeID { return sim.NodeID(t.u64()) }

func (t *tape) label() label.Label {
	return label.Label{Bits: t.u64(), Len: t.u8()}
}

func (t *tape) tuple() proto.Tuple { return proto.Tuple{L: t.label(), Ref: t.node()} }

func (t *tape) key() proto.Key { return proto.Key{Bits: t.u64(), Len: t.u8()} }

func (t *tape) str() string {
	n := int(t.u8() % 16)
	out := make([]byte, n)
	for i := range out {
		out[i] = t.u8()
	}
	return string(out)
}

func (t *tape) flag() proto.Flag { return proto.Flag(t.u8() % 2) }

func (t *tape) summary() proto.NodeSummary {
	s := proto.NodeSummary{Label: t.key()}
	for i := range s.Hash {
		s.Hash[i] = t.u8()
	}
	return s
}

func (t *tape) publication() proto.Publication {
	return proto.Publication{Key: t.key(), Origin: t.node(), Payload: t.str()}
}

// genBody draws one message body of the selected registered type.
func genBody(sel uint8, tp *tape) any {
	switch sel % 29 {
	case 0:
		return proto.Subscribe{V: tp.node()}
	case 1:
		return proto.Unsubscribe{V: tp.node()}
	case 2:
		return proto.GetConfiguration{V: tp.node()}
	case 3:
		return proto.SetData{Pred: tp.tuple(), Label: tp.label(), Succ: tp.tuple()}
	case 4:
		return proto.Check{Sender: tp.tuple(), YourLabel: tp.label(), Flag: tp.flag()}
	case 5:
		return proto.Introduce{C: tp.tuple(), Flag: tp.flag()}
	case 6:
		return proto.Linearize{V: tp.tuple()}
	case 7:
		return proto.RemoveConnections{V: tp.node()}
	case 8:
		return proto.IntroduceShortcut{T: tp.tuple()}
	case 9:
		m := proto.CheckTrie{Sender: tp.node()}
		for i := int(tp.u8() % 4); i > 0; i-- {
			m.Nodes = append(m.Nodes, tp.summary())
		}
		return m
	case 10:
		m := proto.CheckAndPublish{Sender: tp.node()}
		for i := int(tp.u8() % 4); i > 0; i-- {
			m.Nodes = append(m.Nodes, tp.summary())
		}
		m.Prefix = tp.key()
		return m
	case 11:
		var m proto.PublishBatch
		for i := int(tp.u8() % 4); i > 0; i-- {
			m.Pubs = append(m.Pubs, tp.publication())
		}
		return m
	case 12:
		return proto.PublishNew{Pub: tp.publication()}
	case 13:
		m := proto.Token{Epoch: tp.u64(), N: tp.u64(), Pos: tp.u64(),
			Prev: tp.tuple(), First: tp.tuple(), NextHop: tp.tuple()}
		for i := int(tp.u8() % 4); i > 0; i-- {
			m.Pending = append(m.Pending, tp.tuple())
		}
		return m
	case 14:
		return proto.TokenReturn{Epoch: tp.u64(), Complete: tp.u8()%2 == 1,
			First: tp.tuple(), Last: tp.tuple()}
	case 15:
		return proto.Register{V: tp.node(), Label: tp.label()}
	case 16:
		return core.JoinTopic{}
	case 17:
		return core.LeaveTopic{}
	case 18:
		return core.PublishCmd{Payload: tp.str()}
	case 19:
		return Hello{Base: tp.node(), Slots: uint32(tp.u64())}
	case 20:
		return Welcome{Base: tp.node(), Slots: uint32(tp.u64())}
	case 21:
		return proto.Reregister{V: tp.node(), Label: tp.label(), Epoch: tp.u64()}
	case 22:
		return proto.OwnerAnnounce{Owner: tp.node(), Epoch: tp.u64()}
	case 23:
		var m proto.PlaneGossip
		for i := int(tp.u8() % 4); i > 0; i-- {
			m.Entries = append(m.Entries, proto.TopicEpoch{Topic: sim.Topic(uint32(tp.u64())), Epoch: tp.u64()})
		}
		return m
	case 24:
		m := proto.ReplicaDelta{Epoch: tp.u64(), Mode: tp.u8()}
		for i := int(tp.u8() % 4); i > 0; i-- {
			m.Put = append(m.Put, proto.ReplicaEntry{L: tp.label(), V: tp.node()})
		}
		for i := int(tp.u8() % 4); i > 0; i-- {
			m.Del = append(m.Del, tp.label())
		}
		return m
	case 25:
		m := proto.ReplicaDigest{Probe: tp.u8()%2 == 1, Epoch: tp.u64(), Count: tp.u64(), Mode: tp.u8()}
		for i := range m.Hash {
			m.Hash[i] = tp.u8()
		}
		return m
	case 26:
		m := proto.ReplicaSync{Epoch: tp.u64(), Round: tp.u64(), Seq: tp.u64(), Chunks: tp.u64(), Mode: tp.u8()}
		for i := int(tp.u8() % 4); i > 0; i-- {
			m.Entries = append(m.Entries, proto.ReplicaEntry{L: tp.label(), V: tp.node()})
		}
		return m
	case 27:
		return proto.PublishSeq{Pub: tp.publication(), Seq: tp.u64()}
	default:
		m := proto.PublishCausal{Pub: tp.publication(), Seq: tp.u64()}
		for i := int(tp.u8() % 4); i > 0; i-- {
			m.Barrier = append(m.Barrier, proto.BarrierEntry{Origin: tp.node(), Seq: tp.u64()})
		}
		return m
	}
}

// FuzzWireRoundTrip drives the structured property the transport depends
// on: for every message the generator can produce (any registered type,
// arbitrary field values), Unmarshal(Marshal(m)) == m exactly.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint8(0), []byte{})
	f.Add(uint8(3), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add(uint8(11), []byte{3, 0xFF, 0xAA, 0x55, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0})
	f.Add(uint8(13), []byte("token-pending-tuples-and-a-long-tail-of-entropy"))
	f.Add(uint8(20), []byte{0x80, 0})
	f.Fuzz(func(t *testing.T, sel uint8, raw []byte) {
		tp := &tape{b: raw}
		m := sim.Message{
			To:    tp.node(),
			From:  tp.node(),
			Topic: sim.Topic(tp.u64()),
			Body:  genBody(sel, tp),
		}
		b, err := Marshal(m)
		if err != nil {
			t.Fatalf("Marshal(%#v): %v", m, err)
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("Unmarshal(Marshal(%#v)): %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip:\n got %#v\nwant %#v", got, m)
		}
	})
}

// FuzzWireAdversarial feeds the decoder arbitrary bytes. It must never
// panic; when it does accept an input, re-encoding must be canonical
// (Marshal succeeds and decodes back to the same message) — otherwise a
// hostile frame could mean different things to different receivers.
func FuzzWireAdversarial(f *testing.F) {
	// Seed with valid frames of several shapes, then mutilations.
	for _, body := range []any{
		proto.Subscribe{V: 7},
		proto.Check{Sender: proto.Tuple{L: label.MustParse("01"), Ref: 4}, YourLabel: label.MustParse("1")},
		proto.PublishBatch{Pubs: []proto.Publication{{Key: proto.Key{Bits: 5, Len: 8}, Origin: 1, Payload: "x"}}},
		proto.Token{Epoch: 1, Pending: []proto.Tuple{{L: label.MustParse("0"), Ref: 2}}},
		core.PublishCmd{Payload: "seed"},
		Hello{Base: 4096, Slots: 64},
		proto.Reregister{V: 5, Label: label.MustParse("01"), Epoch: 3},
		proto.OwnerAnnounce{Owner: 2, Epoch: 4},
		proto.PlaneGossip{Entries: []proto.TopicEpoch{{Topic: 2, Epoch: 9}}},
		proto.ReplicaDelta{Epoch: 4, Put: []proto.ReplicaEntry{{L: label.MustParse("01"), V: 6}}, Del: []label.Label{label.MustParse("1")}},
		proto.ReplicaDigest{Probe: true, Epoch: 2, Count: 5, Hash: [16]byte{0xAB, 1}},
		proto.ReplicaSync{Epoch: 3, Round: 1, Seq: 0, Chunks: 2, Entries: []proto.ReplicaEntry{{L: label.MustParse("001"), V: 8}}},
		proto.PublishSeq{Pub: proto.Publication{Key: proto.Key{Bits: 5, Len: 8}, Origin: 1, Payload: "s"}, Seq: 7},
		proto.PublishCausal{Pub: proto.Publication{Key: proto.Key{Bits: 6, Len: 8}, Origin: 2, Payload: "c"}, Seq: 3,
			Barrier: []proto.BarrierEntry{{Origin: 1, Seq: 2}, {Origin: 4, Seq: 9}}},
	} {
		b, err := Marshal(sim.Message{To: 2, From: 3, Topic: 1, Body: body})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		if len(b) > 6 {
			cut := append([]byte{}, b[:len(b)-2]...)
			f.Add(cut)
			flip := append([]byte{}, b...)
			flip[6] ^= 0xFF
			f.Add(flip)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 3, 'S', 'R', 1})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 'S', 'R', 1})

	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Unmarshal(b)
		if err != nil {
			if !errors.Is(err, ErrGarbage) && !errors.Is(err, ErrFrameTooLarge) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		re, err := Marshal(m)
		if err != nil {
			t.Fatalf("accepted frame %x decoded to unmarshalable %#v: %v", b, m, err)
		}
		again, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-encoding of %#v does not decode: %v", m, err)
		}
		if !reflect.DeepEqual(again, m) {
			t.Fatalf("non-canonical frame %x:\n first %#v\nsecond %#v", b, m, again)
		}
	})
}
