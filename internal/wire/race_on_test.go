//go:build race

package wire

// raceEnabled reports that this test binary runs under the race
// detector, where sync.Pool deliberately drops items to widen race
// coverage — the pooled paths then allocate by design, so the
// exact-zero allocation guards do not apply.
const raceEnabled = true
