package wire

import (
	"bytes"
	"unsafe"

	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
)

// This file is the decode-side allocation machinery behind the
// per-connection decode path: a bump arena that batches the many small
// allocations of a batch decode (payload strings, publication slices,
// the batch's message scaffold) into a few chunk allocations, and a body
// intern cache that lets a reader decode a body it has already seen —
// byte-identical tag+body in a length-prefixed Batch2 member — exactly
// once, sharing the boxed value across every delivery. Together they are
// why the net substrate's hot path no longer pays one boxing allocation
// plus one string per fan-out edge.

const (
	// arenaChunk is the byte-chunk size strings are bumped through.
	arenaChunk = 4096
	// arenaMaxStr caps arena-allocated strings: anything larger gets a
	// private allocation, so one giant payload cannot pin a chunk whose
	// other strings are long-lived (nor force an oversized chunk).
	arenaMaxStr = 1024
	// arenaSliceChunk is the element count slice backings are bumped
	// through.
	arenaSliceChunk = 256
)

// Arena is a bump allocator for decoded message innards. Allocation
// never invalidates earlier values: when a chunk fills up the arena
// detaches it (the garbage collector owns it for as long as issued
// strings or slices reference it) and bumps through a fresh one. Only
// Reset — and, for the per-frame message scaffold, EndFrame on the
// owning DecodeState — rewinds and reuses memory, which is why both
// carry explicit lifetime contracts.
type Arena struct {
	buf  []byte              // string bytes
	msgs []sim.Message       // batch scaffold backing (per-frame lifetime)
	pubs []proto.Publication // publication backing (escapes with the body)
}

// grabString copies b into the arena and returns it as a string. The
// string aliases arena memory and stays valid until Reset.
func (a *Arena) grabString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > arenaMaxStr {
		return string(b)
	}
	if cap(a.buf)-len(a.buf) < len(b) {
		// Detach the full chunk: issued strings keep it alive.
		a.buf = make([]byte, 0, arenaChunk)
	}
	off := len(a.buf)
	a.buf = append(a.buf, b...)
	return unsafe.String(&a.buf[off], len(b))
}

// grabMsgs returns an empty slice with capacity n bumped out of the
// message scaffold, for the batch decoder to append into. Scaffold
// memory is rewound at every frame boundary (DecodeState.EndFrame), so
// these slices must not outlive the dispatch of their frame.
func (a *Arena) grabMsgs(n int) []sim.Message {
	if n == 0 {
		return nil
	}
	if cap(a.msgs)-len(a.msgs) < n {
		c := arenaSliceChunk
		if c < n {
			c = n
		}
		a.msgs = make([]sim.Message, 0, c)
	}
	l := len(a.msgs)
	a.msgs = a.msgs[:l+n]
	return a.msgs[l : l : l+n]
}

// grabPubs is grabMsgs for publication slices, minus the frame-boundary
// rewind: decoded publications escape into the engine, so their backing
// is only reused after a full Reset.
func (a *Arena) grabPubs(n int) []proto.Publication {
	if n == 0 {
		return nil
	}
	if cap(a.pubs)-len(a.pubs) < n {
		c := arenaSliceChunk
		if c < n {
			c = n
		}
		a.pubs = make([]proto.Publication, 0, c)
	}
	l := len(a.pubs)
	a.pubs = a.pubs[:l+n]
	return a.pubs[l : l : l+n]
}

// endFrame rewinds the per-frame scaffold only.
func (a *Arena) endFrame() { a.msgs = a.msgs[:0] }

// reset rewinds everything for reuse.
func (a *Arena) reset() {
	a.buf = a.buf[:0]
	a.msgs = a.msgs[:0]
	a.pubs = a.pubs[:0]
}

// cacheSlots sizes the body intern cache. Direct-mapped: a hash
// collision simply evicts, so the cache needs no lists and no eviction
// policy — the hot case (the same publication body crossing the link on
// every fan-out edge of a flood) hits one slot repeatedly.
const cacheSlots = 256

type cacheEnt struct {
	key  []byte // tag+body bytes, owned copy
	body any
}

// DecodeCache interns decoded bodies by their exact tag+body bytes.
// Only bodies whose type CanShare reports true are admitted: such a
// value contains no slices, maps or pointers (strings are fine — they
// are immutable), so one boxed copy can be delivered to any number of
// handlers concurrently.
type DecodeCache struct {
	ents [cacheSlots]cacheEnt
}

func cacheHash(key []byte) uint64 {
	// FNV-1a.
	h := uint64(14695981039346656037)
	for _, b := range key {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h
}

func (c *DecodeCache) lookup(key []byte) (any, bool) {
	e := &c.ents[cacheHash(key)&(cacheSlots-1)]
	if e.body != nil && bytes.Equal(e.key, key) {
		return e.body, true
	}
	return nil, false
}

func (c *DecodeCache) store(key []byte, body any) {
	e := &c.ents[cacheHash(key)&(cacheSlots-1)]
	e.key = append(e.key[:0], key...)
	e.body = body
}

func (c *DecodeCache) clear() {
	for i := range c.ents {
		c.ents[i].body = nil
	}
}

// DecodeState carries one connection's decode resources: the bump arena
// and the body intern cache. It is not safe for concurrent use — one
// reader goroutine owns it, matching one DecodeState per connection.
type DecodeState struct {
	arena Arena
	cache DecodeCache
}

// NewDecodeState returns an empty decode state.
func NewDecodeState() *DecodeState { return &DecodeState{} }

// EndFrame marks a frame boundary: the batch message scaffold of the
// just-dispatched frame is rewound for reuse. Call it after every frame
// once its messages have been handed off (the scaffold slice itself must
// not be retained — the runtimes copy messages by value on inject, so
// the transport qualifies). Decoded bodies, strings and publication
// slices are NOT invalidated; they live until Reset.
func (st *DecodeState) EndFrame() { st.arena.endFrame() }

// Reset rewinds the whole arena and drops the intern cache, invalidating
// every value decoded through this state. Only callers that control the
// full lifetime of what they decoded may use it (benchmarks, replay
// tooling that copies out); the transport read path never does — its
// decoded bodies escape into the runtime with unbounded lifetime.
func (st *DecodeState) Reset() {
	st.arena.reset()
	st.cache.clear()
}
