package wire

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"sort"

	"sspubsub/internal/core"
	"sspubsub/internal/label"
	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
)

// Type tags. Tags are part of the wire format: never renumber an existing
// tag, only append. Gaps are reserved for the message families they sit in.
const (
	// Supervisor-bound (Algorithm 3).
	tagSubscribe        = 1
	tagUnsubscribe      = 2
	tagGetConfiguration = 3
	// Supervisor → subscriber.
	tagSetData = 4
	// Ring maintenance (Algorithms 1, 2, 4).
	tagCheck             = 5
	tagIntroduce         = 6
	tagLinearize         = 7
	tagRemoveConnections = 8
	tagIntroduceShortcut = 9
	// Publication protocol (Algorithm 5).
	tagCheckTrie       = 10
	tagCheckAndPublish = 11
	tagPublishBatch    = 12
	tagPublishNew      = 13
	// Token-passing supervisor variant.
	tagToken       = 14
	tagTokenReturn = 15
	tagRegister    = 16
	// Client self-commands (package core): a node's application plane
	// talks to its protocol plane through the same channels, so these
	// cross the wire whenever a driver steers a remote node.
	tagJoinTopic  = 17
	tagLeaveTopic = 18
	tagPublishCmd = 19
	// Supervisor plane (crash-tolerant sharded supervision): ownership
	// announcements, the re-registration handshake and the epoch gossip.
	tagReregister    = 20
	tagOwnerAnnounce = 21
	tagPlaneGossip   = 22
	// Directory replication (warm-replica supervisor failover): delta
	// stream, anti-entropy digests and bounded-chunk full sync.
	tagReplicaDelta  = 23
	tagReplicaDigest = 24
	tagReplicaSync   = 25
	// Ordered delivery (per-topic FIFO / causal modes): sequenced and
	// causal-barrier publication frames.
	tagPublishSeq    = 26
	tagPublishCausal = 27
	// Transport control (package nettransport): connection handshake.
	tagHello   = 32
	tagWelcome = 33
	// Transport batching: one frame carrying many messages.
	tagBatch = 34
	// Transport batching, length-prefixed members (see Batch2).
	tagBatch2 = 35
)

// Hello is the first frame on a dialed connection: the joiner asks the hub
// for a block of Slots node IDs. Base ⊥ requests a fresh block; a non-⊥
// Base reclaims the block granted before a reconnect.
type Hello struct {
	Base  sim.NodeID
	Slots uint32
}

// Welcome answers a Hello: node IDs [Base, Base+Slots) now belong to the
// dialing process.
type Welcome struct {
	Base  sim.NodeID
	Slots uint32
}

// Batch is the multi-message envelope the networked transport uses to
// carry one coalesced flush window as a single frame: one length prefix,
// one header, then every message's own (To, From, Topic, tag, body)
// encoding back to back. Batches do not nest — a Batch body inside a
// Batch is rejected on both encode and decode — and a batch with any
// undecodable member is garbage as a whole (its messages become counted
// message loss, like any other garbage frame).
type Batch struct {
	Msgs []sim.Message
}

// Batch2 is Batch with length-prefixed members: each member's envelope,
// tag and body are preceded by a uvarint byte length. The prefix lets a
// reader know a member's exact byte range before decoding it — which is
// what the per-connection intern cache (DecodeCache) keys on to
// recognize a body it has already decoded — and lets a writer splice a
// pre-encoded tagged body (AppendBody) into a batch without
// re-encoding. Semantics otherwise match Batch: batches do not nest
// (neither Batch nor Batch2 may be a member of either), a member whose
// decoded size disagrees with its prefix is garbage, and any garbage
// member poisons the whole frame.
type Batch2 struct {
	Msgs []sim.Message
}

// checkBatchable reports why a body may not ride inside a Batch or
// Batch2: it must be a registered type and must not itself be a batch.
func checkBatchable(body any) error {
	switch body.(type) {
	case Batch, Batch2:
		return fmt.Errorf("wire: batch inside batch")
	}
	_, _, err := lookupBody(body)
	return err
}

// Encodable reports whether a message with this body can be encoded as a
// frame of its own and inside a Batch. The transport uses it to shed
// unencodable messages (as counted loss) before building a batch.
func Encodable(body any) bool { return checkBatchable(body) == nil }

// entry is one registered message type. dec returns the zero body on
// failure; the latched dec.err carries the diagnosis.
type entry struct {
	name string
	zero any
	enc  func(*enc, any)
	dec  func(*dec) any
}

var registry = map[uint64]entry{
	tagSubscribe: {"proto.Subscribe", proto.Subscribe{},
		func(e *enc, b any) { e.node(b.(proto.Subscribe).V) },
		func(d *dec) any { return proto.Subscribe{V: d.node()} }},
	tagUnsubscribe: {"proto.Unsubscribe", proto.Unsubscribe{},
		func(e *enc, b any) { e.node(b.(proto.Unsubscribe).V) },
		func(d *dec) any { return proto.Unsubscribe{V: d.node()} }},
	tagGetConfiguration: {"proto.GetConfiguration", proto.GetConfiguration{},
		func(e *enc, b any) { e.node(b.(proto.GetConfiguration).V) },
		func(d *dec) any { return proto.GetConfiguration{V: d.node()} }},
	tagSetData: {"proto.SetData", proto.SetData{},
		func(e *enc, b any) {
			m := b.(proto.SetData)
			e.tuple(m.Pred)
			e.label(m.Label)
			e.tuple(m.Succ)
			e.uvarint(m.Epoch)
		},
		func(d *dec) any {
			return proto.SetData{Pred: d.tuple(), Label: d.labelv(), Succ: d.tuple(), Epoch: d.uvarint()}
		}},
	tagCheck: {"proto.Check", proto.Check{},
		func(e *enc, b any) {
			m := b.(proto.Check)
			e.tuple(m.Sender)
			e.label(m.YourLabel)
			e.u8(uint8(m.Flag))
		},
		func(d *dec) any {
			return proto.Check{Sender: d.tuple(), YourLabel: d.labelv(), Flag: d.flag()}
		}},
	tagIntroduce: {"proto.Introduce", proto.Introduce{},
		func(e *enc, b any) {
			m := b.(proto.Introduce)
			e.tuple(m.C)
			e.u8(uint8(m.Flag))
		},
		func(d *dec) any { return proto.Introduce{C: d.tuple(), Flag: d.flag()} }},
	tagLinearize: {"proto.Linearize", proto.Linearize{},
		func(e *enc, b any) { e.tuple(b.(proto.Linearize).V) },
		func(d *dec) any { return proto.Linearize{V: d.tuple()} }},
	tagRemoveConnections: {"proto.RemoveConnections", proto.RemoveConnections{},
		func(e *enc, b any) { e.node(b.(proto.RemoveConnections).V) },
		func(d *dec) any { return proto.RemoveConnections{V: d.node()} }},
	tagIntroduceShortcut: {"proto.IntroduceShortcut", proto.IntroduceShortcut{},
		func(e *enc, b any) { e.tuple(b.(proto.IntroduceShortcut).T) },
		func(d *dec) any { return proto.IntroduceShortcut{T: d.tuple()} }},
	tagCheckTrie: {"proto.CheckTrie", proto.CheckTrie{},
		func(e *enc, b any) {
			m := b.(proto.CheckTrie)
			e.node(m.Sender)
			e.summaries(m.Nodes)
		},
		func(d *dec) any { return proto.CheckTrie{Sender: d.node(), Nodes: d.summaries()} }},
	tagCheckAndPublish: {"proto.CheckAndPublish", proto.CheckAndPublish{},
		func(e *enc, b any) {
			m := b.(proto.CheckAndPublish)
			e.node(m.Sender)
			e.summaries(m.Nodes)
			e.key(m.Prefix)
		},
		func(d *dec) any {
			return proto.CheckAndPublish{Sender: d.node(), Nodes: d.summaries(), Prefix: d.key()}
		}},
	tagPublishBatch: {"proto.PublishBatch", proto.PublishBatch{},
		func(e *enc, b any) {
			m := b.(proto.PublishBatch)
			e.uvarint(uint64(len(m.Pubs)))
			for _, p := range m.Pubs {
				e.publication(p)
			}
		},
		func(d *dec) any {
			n := d.sliceLen(3) // key ≥ 2 bytes, origin ≥ 1, payload len ≥ 1 — conservative floor
			pubs := d.grabPubs(n)
			for i := 0; i < n && d.err == nil; i++ {
				pubs = append(pubs, d.publication())
			}
			return proto.PublishBatch{Pubs: pubs}
		}},
	tagPublishNew: {"proto.PublishNew", proto.PublishNew{},
		func(e *enc, b any) { e.publication(b.(proto.PublishNew).Pub) },
		func(d *dec) any { return proto.PublishNew{Pub: d.publication()} }},
	tagPublishSeq: {"proto.PublishSeq", proto.PublishSeq{},
		func(e *enc, b any) {
			m := b.(proto.PublishSeq)
			e.publication(m.Pub)
			e.uvarint(m.Seq)
		},
		func(d *dec) any {
			return proto.PublishSeq{Pub: d.publication(), Seq: d.uvarint()}
		}},
	tagPublishCausal: {"proto.PublishCausal", proto.PublishCausal{},
		func(e *enc, b any) {
			m := b.(proto.PublishCausal)
			e.publication(m.Pub)
			e.uvarint(m.Seq)
			e.uvarint(uint64(len(m.Barrier)))
			for _, be := range m.Barrier {
				e.node(be.Origin)
				e.uvarint(be.Seq)
			}
		},
		func(d *dec) any {
			m := proto.PublishCausal{Pub: d.publication(), Seq: d.uvarint()}
			n := d.sliceLen(2) // origin ≥ 1 byte + seq ≥ 1 byte
			if n > 0 {
				m.Barrier = make([]proto.BarrierEntry, 0, n)
			}
			for i := 0; i < n && d.err == nil; i++ {
				m.Barrier = append(m.Barrier, proto.BarrierEntry{Origin: d.node(), Seq: d.uvarint()})
			}
			return m
		}},
	tagToken: {"proto.Token", proto.Token{},
		func(e *enc, b any) {
			m := b.(proto.Token)
			e.uvarint(m.Epoch)
			e.uvarint(m.N)
			e.uvarint(m.Pos)
			e.tuple(m.Prev)
			e.tuple(m.First)
			e.uvarint(uint64(len(m.Pending)))
			for _, t := range m.Pending {
				e.tuple(t)
			}
			e.tuple(m.NextHop)
		},
		func(d *dec) any {
			m := proto.Token{
				Epoch: d.uvarint(), N: d.uvarint(), Pos: d.uvarint(),
				Prev: d.tuple(), First: d.tuple(),
			}
			n := d.sliceLen(3) // tuple: label ≥ 2 bytes + ref ≥ 1
			if n > 0 {
				m.Pending = make([]proto.Tuple, 0, n)
			}
			for i := 0; i < n && d.err == nil; i++ {
				m.Pending = append(m.Pending, d.tuple())
			}
			m.NextHop = d.tuple()
			return m
		}},
	tagTokenReturn: {"proto.TokenReturn", proto.TokenReturn{},
		func(e *enc, b any) {
			m := b.(proto.TokenReturn)
			e.uvarint(m.Epoch)
			e.boolean(m.Complete)
			e.tuple(m.First)
			e.tuple(m.Last)
		},
		func(d *dec) any {
			return proto.TokenReturn{
				Epoch: d.uvarint(), Complete: d.boolean(),
				First: d.tuple(), Last: d.tuple(),
			}
		}},
	tagRegister: {"proto.Register", proto.Register{},
		func(e *enc, b any) {
			m := b.(proto.Register)
			e.node(m.V)
			e.label(m.Label)
		},
		func(d *dec) any { return proto.Register{V: d.node(), Label: d.labelv()} }},
	tagJoinTopic: {"core.JoinTopic", core.JoinTopic{},
		func(e *enc, b any) {},
		func(d *dec) any { return core.JoinTopic{} }},
	tagLeaveTopic: {"core.LeaveTopic", core.LeaveTopic{},
		func(e *enc, b any) {},
		func(d *dec) any { return core.LeaveTopic{} }},
	tagPublishCmd: {"core.PublishCmd", core.PublishCmd{},
		func(e *enc, b any) { e.str(b.(core.PublishCmd).Payload) },
		func(d *dec) any { return core.PublishCmd{Payload: d.str()} }},
	tagReregister: {"proto.Reregister", proto.Reregister{},
		func(e *enc, b any) {
			m := b.(proto.Reregister)
			e.node(m.V)
			e.label(m.Label)
			e.uvarint(m.Epoch)
		},
		func(d *dec) any {
			return proto.Reregister{V: d.node(), Label: d.labelv(), Epoch: d.uvarint()}
		}},
	tagOwnerAnnounce: {"proto.OwnerAnnounce", proto.OwnerAnnounce{},
		func(e *enc, b any) {
			m := b.(proto.OwnerAnnounce)
			e.node(m.Owner)
			e.uvarint(m.Epoch)
		},
		func(d *dec) any {
			return proto.OwnerAnnounce{Owner: d.node(), Epoch: d.uvarint()}
		}},
	tagPlaneGossip: {"proto.PlaneGossip", proto.PlaneGossip{},
		func(e *enc, b any) {
			m := b.(proto.PlaneGossip)
			e.uvarint(uint64(len(m.Entries)))
			for _, te := range m.Entries {
				e.svarint(int64(te.Topic))
				e.uvarint(te.Epoch)
			}
		},
		func(d *dec) any {
			n := d.sliceLen(2) // topic ≥ 1 byte + epoch ≥ 1 byte
			var entries []proto.TopicEpoch
			if n > 0 {
				entries = make([]proto.TopicEpoch, 0, n)
			}
			for i := 0; i < n && d.err == nil; i++ {
				entries = append(entries, proto.TopicEpoch{Topic: sim.Topic(d.svarint()), Epoch: d.uvarint()})
			}
			return proto.PlaneGossip{Entries: entries}
		}},
	tagReplicaDelta: {"proto.ReplicaDelta", proto.ReplicaDelta{},
		func(e *enc, b any) {
			m := b.(proto.ReplicaDelta)
			e.uvarint(m.Epoch)
			e.uvarint(uint64(len(m.Put)))
			for _, re := range m.Put {
				e.label(re.L)
				e.node(re.V)
			}
			e.uvarint(uint64(len(m.Del)))
			for _, l := range m.Del {
				e.label(l)
			}
			e.u8(m.Mode)
		},
		func(d *dec) any {
			m := proto.ReplicaDelta{Epoch: d.uvarint()}
			n := d.sliceLen(3) // label ≥ 2 bytes + node ≥ 1
			if n > 0 {
				m.Put = make([]proto.ReplicaEntry, 0, n)
			}
			for i := 0; i < n && d.err == nil; i++ {
				m.Put = append(m.Put, proto.ReplicaEntry{L: d.labelv(), V: d.node()})
			}
			n = d.sliceLen(2) // label ≥ 2 bytes
			if n > 0 && d.err == nil {
				m.Del = make([]label.Label, 0, n)
			}
			for i := 0; i < n && d.err == nil; i++ {
				m.Del = append(m.Del, d.labelv())
			}
			m.Mode = d.u8()
			return m
		}},
	tagReplicaDigest: {"proto.ReplicaDigest", proto.ReplicaDigest{},
		func(e *enc, b any) {
			m := b.(proto.ReplicaDigest)
			e.boolean(m.Probe)
			e.uvarint(m.Epoch)
			e.uvarint(m.Count)
			e.raw(m.Hash[:]...)
			e.u8(m.Mode)
		},
		func(d *dec) any {
			m := proto.ReplicaDigest{Probe: d.boolean(), Epoch: d.uvarint(), Count: d.uvarint()}
			d.bytes(m.Hash[:])
			m.Mode = d.u8()
			return m
		}},
	tagReplicaSync: {"proto.ReplicaSync", proto.ReplicaSync{},
		func(e *enc, b any) {
			m := b.(proto.ReplicaSync)
			e.uvarint(m.Epoch)
			e.uvarint(m.Round)
			e.uvarint(m.Seq)
			e.uvarint(m.Chunks)
			e.uvarint(uint64(len(m.Entries)))
			for _, re := range m.Entries {
				e.label(re.L)
				e.node(re.V)
			}
			e.u8(m.Mode)
		},
		func(d *dec) any {
			m := proto.ReplicaSync{
				Epoch: d.uvarint(), Round: d.uvarint(),
				Seq: d.uvarint(), Chunks: d.uvarint(),
			}
			n := d.sliceLen(3) // label ≥ 2 bytes + node ≥ 1
			if n > 0 {
				m.Entries = make([]proto.ReplicaEntry, 0, n)
			}
			for i := 0; i < n && d.err == nil; i++ {
				m.Entries = append(m.Entries, proto.ReplicaEntry{L: d.labelv(), V: d.node()})
			}
			m.Mode = d.u8()
			return m
		}},
	tagHello: {"wire.Hello", Hello{},
		func(e *enc, b any) {
			m := b.(Hello)
			e.node(m.Base)
			e.uvarint(uint64(m.Slots))
		},
		func(d *dec) any { return Hello{Base: d.node(), Slots: d.u32()} }},
	tagWelcome: {"wire.Welcome", Welcome{},
		func(e *enc, b any) {
			m := b.(Welcome)
			e.node(m.Base)
			e.uvarint(uint64(m.Slots))
		},
		func(d *dec) any { return Welcome{Base: d.node(), Slots: d.u32()} }},
}

// tagOf maps a body's concrete type to its tag; init builds it once the
// registry is complete.
var tagOf map[reflect.Type]uint64

// init completes the registry with the Batch entry (whose encoding
// recurses through lookupBody, so defining it inside the registry literal
// would be an initialization cycle), builds the type→tag table, and
// mirrors the canonical type names into the accounting name cache
// (sim.TypeName) so the scheduler's and runtimes' CountByType keys come
// from this table instead of a per-send fmt.Sprintf. A registry test
// asserts every name equals the %T rendering it replaces.
func init() {
	registry[tagBatch] = entry{"wire.Batch", Batch{},
		func(e *enc, b any) {
			m := b.(Batch)
			e.uvarint(uint64(len(m.Msgs)))
			for _, im := range m.Msgs {
				e.message(im)
			}
		},
		func(d *dec) any {
			// Cheapest possible member: three 1-byte svarints + 1-byte tag.
			n := d.sliceLen(4)
			msgs := d.grabMsgs(n)
			for i := 0; i < n && d.err == nil; i++ {
				msgs = append(msgs, d.message())
			}
			return Batch{Msgs: msgs}
		}}
	registry[tagBatch2] = entry{"wire.Batch2", Batch2{},
		func(e *enc, b any) {
			m := b.(Batch2)
			e.uvarint(uint64(len(m.Msgs)))
			for _, im := range m.Msgs {
				e.memberLP(im)
			}
		},
		func(d *dec) any {
			// Cheapest member: 1-byte length prefix + Batch's 4-byte floor.
			n := d.sliceLen(5)
			msgs := d.grabMsgs(n)
			for i := 0; i < n && d.err == nil; i++ {
				ln := d.uvarint()
				if d.err != nil {
					break
				}
				if ln < 4 || ln > uint64(len(d.b)-d.off) {
					d.fail("batch member length %d out of range", ln)
					break
				}
				end := d.off + int(ln)
				m := d.memberLP(end)
				if d.err == nil && d.off != end {
					d.fail("batch member decoded to %d bytes, length prefix said %d", int(ln)-(end-d.off), ln)
				}
				if d.err != nil {
					break
				}
				msgs = append(msgs, m)
			}
			return Batch2{Msgs: msgs}
		}}
	tagOf = make(map[reflect.Type]uint64, len(registry))
	shareTag = make(map[uint64]bool, len(registry))
	for tag, ent := range registry {
		t := reflect.TypeOf(ent.zero)
		if _, dup := tagOf[t]; dup {
			panic(fmt.Sprintf("wire: type %v registered twice", t))
		}
		tagOf[t] = tag
		shareTag[tag] = shareableType(t)
		sim.RegisterTypeName(ent.zero, ent.name)
	}
}

// shareTag marks tags whose decoded bodies may be shared by reference
// across deliveries; built from the registry's zero values at init.
var shareTag map[uint64]bool

// shareableType reports whether every value of t is safe to hand to any
// number of concurrent readers as one boxed copy: no slices, maps,
// pointers, channels, funcs or interfaces anywhere in the value. Strings
// are fine (immutable). Shareable types are a strict subset of Go's
// comparable types, so the transport may also group bodies with == when
// this holds.
func shareableType(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool, reflect.String,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return true
	case reflect.Array:
		return shareableType(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !shareableType(t.Field(i).Type) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// CanShare reports whether decoded bodies of this body's type may be
// shared by reference across deliveries (see shareableType). The
// transport uses it on the encode side to group identical bodies with ==
// (shareable implies comparable) and the decoder uses the same predicate
// to gate the intern cache, so both ends agree on which bodies are
// singleton-safe. Unregistered bodies report false.
func CanShare(body any) bool {
	if body == nil {
		return false
	}
	tag, ok := tagOf[reflect.TypeOf(body)]
	return ok && shareTag[tag]
}

func lookupBody(body any) (uint64, entry, error) {
	if body == nil {
		return 0, entry{}, fmt.Errorf("wire: nil message body")
	}
	tag, ok := tagOf[reflect.TypeOf(body)]
	if !ok {
		return 0, entry{}, fmt.Errorf("wire: unregistered body type %T", body)
	}
	return tag, registry[tag], nil
}

// Registered returns "tag name" lines for every registered type, sorted by
// tag — the codec's self-description (used by docs and tests).
func Registered() []string {
	tags := make([]uint64, 0, len(registry))
	for t := range registry {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	out := make([]string, len(tags))
	for i, t := range tags {
		out[i] = fmt.Sprintf("%d %s", t, registry[t].name)
	}
	return out
}

// ---- shared field codecs ----

func (e *enc) node(id sim.NodeID) { e.svarint(int64(id)) }
func (d *dec) node() sim.NodeID   { return sim.NodeID(d.svarint()) }

func (d *dec) u32() uint32 {
	v := d.uvarint()
	if v > 1<<32-1 {
		d.fail("uint32 overflow: %d", v)
		return 0
	}
	return uint32(v)
}

func (e *enc) label(l label.Label) {
	e.uvarint(l.Bits)
	e.u8(l.Len)
}

func (d *dec) labelv() label.Label {
	return label.Label{Bits: d.uvarint(), Len: d.u8()}
}

func (e *enc) tuple(t proto.Tuple) {
	e.label(t.L)
	e.node(t.Ref)
}

func (d *dec) tuple() proto.Tuple {
	return proto.Tuple{L: d.labelv(), Ref: d.node()}
}

func (e *enc) key(k proto.Key) {
	e.uvarint(k.Bits)
	e.u8(k.Len)
}

func (d *dec) key() proto.Key {
	return proto.Key{Bits: d.uvarint(), Len: d.u8()}
}

func (d *dec) flag() proto.Flag {
	switch v := d.u8(); v {
	case uint8(proto.LIN), uint8(proto.CYC):
		return proto.Flag(v)
	default:
		d.fail("bad flag %d", v)
		return proto.LIN
	}
}

func (e *enc) publication(p proto.Publication) {
	e.key(p.Key)
	e.node(p.Origin)
	e.str(p.Payload)
}

func (d *dec) publication() proto.Publication {
	return proto.Publication{Key: d.key(), Origin: d.node(), Payload: d.str()}
}

// message encodes one Batch member: the sim.Message envelope followed by
// its tagged body, exactly as in a standalone frame but without the
// length prefix and header. AppendFrame pre-validates every member with
// checkBatchable, so the lookups here cannot fail.
func (e *enc) message(m sim.Message) {
	tag, ent, err := lookupBody(m.Body)
	if err != nil || tag == tagBatch || tag == tagBatch2 {
		// Unreachable by construction; panicking here would turn an
		// internal invariant slip into a transport crash, so encode the
		// member as a GetConfiguration to ⊥ instead — the receiver drops
		// sends to ⊥, making it plain message loss.
		m = sim.Message{Body: proto.GetConfiguration{}}
		tag, ent, _ = lookupBody(m.Body)
	}
	e.svarint(int64(m.To))
	e.svarint(int64(m.From))
	e.svarint(int64(m.Topic))
	e.uvarint(tag)
	ent.enc(e, m.Body)
}

// memberLP encodes one Batch2 member: the uvarint byte length, then the
// member exactly as in a Batch. The length is unknown until the member
// is encoded, so the member is written first and shifted right to make
// room for the prefix (memmove on what was just written — still cheaper
// than encoding twice).
func (e *enc) memberLP(m sim.Message) {
	start := len(e.b)
	e.message(m)
	n := len(e.b) - start
	var tmp [binary.MaxVarintLen64]byte
	ln := binary.PutUvarint(tmp[:], uint64(n))
	e.b = append(e.b, tmp[:ln]...)
	copy(e.b[start+ln:], e.b[start:start+n])
	copy(e.b[start:], tmp[:ln])
}

// message decodes one Batch member. A nested batch or unknown tag fails
// the whole frame: the stream is still aligned (the outer length prefix
// delimits it), so the damage is bounded to this batch.
func (d *dec) message() sim.Message {
	var m sim.Message
	m.To = sim.NodeID(d.svarint())
	m.From = sim.NodeID(d.svarint())
	m.Topic = sim.Topic(d.svarint())
	tag := d.uvarint()
	if d.err != nil {
		return sim.Message{}
	}
	if tag == tagBatch || tag == tagBatch2 {
		d.fail("nested batch")
		return sim.Message{}
	}
	ent, ok := registry[tag]
	if !ok {
		d.fail("unknown type tag %d in batch", tag)
		return sim.Message{}
	}
	m.Body = ent.dec(d)
	return m
}

// memberLP decodes one Batch2 member whose bytes end at offset end (the
// caller validated end against the input). When the member's tag is
// shareable and this decode carries an intern cache, the tag+body byte
// range is the cache key: a hit returns the previously decoded body
// without touching the bytes again, a miss decodes and then interns.
func (d *dec) memberLP(end int) sim.Message {
	var m sim.Message
	m.To = sim.NodeID(d.svarint())
	m.From = sim.NodeID(d.svarint())
	m.Topic = sim.Topic(d.svarint())
	tagStart := d.off
	tag := d.uvarint()
	if d.err != nil {
		return sim.Message{}
	}
	if d.off > end {
		d.fail("batch member envelope overruns its length")
		return sim.Message{}
	}
	if tag == tagBatch || tag == tagBatch2 {
		d.fail("nested batch")
		return sim.Message{}
	}
	ent, ok := registry[tag]
	if !ok {
		d.fail("unknown type tag %d in batch", tag)
		return sim.Message{}
	}
	if d.cache != nil && shareTag[tag] {
		key := d.b[tagStart:end]
		if body, hit := d.cache.lookup(key); hit {
			m.Body = body
			d.off = end
			return m
		}
		m.Body = ent.dec(d)
		if d.err == nil && d.off == end {
			d.cache.store(key, m.Body)
		}
		return m
	}
	m.Body = ent.dec(d)
	return m
}

func (e *enc) summaries(ns []proto.NodeSummary) {
	e.uvarint(uint64(len(ns)))
	for _, n := range ns {
		e.key(n.Label)
		e.raw(n.Hash[:]...)
	}
}

func (d *dec) summaries() []proto.NodeSummary {
	n := d.sliceLen(2 + 16) // key ≥ 2 bytes + 16-byte hash
	var out []proto.NodeSummary
	if n > 0 {
		out = make([]proto.NodeSummary, 0, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		s := proto.NodeSummary{Label: d.key()}
		d.bytes(s.Hash[:])
		out = append(out, s)
	}
	return out
}
