package wire

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"sspubsub/internal/core"
	"sspubsub/internal/label"
	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
)

func lbl(s string) label.Label { return label.MustParse(s) }

func tup(l string, id sim.NodeID) proto.Tuple { return proto.Tuple{L: lbl(l), Ref: id} }

// sampleBodies holds one populated value per registered type, so the
// round-trip table provably covers the whole registry.
var sampleBodies = []any{
	proto.Subscribe{V: 7},
	proto.Unsubscribe{V: 1<<40 + 3},
	proto.GetConfiguration{V: 2},
	proto.SetData{Pred: tup("01", 4), Label: lbl("11"), Succ: proto.Tuple{}},
	proto.Check{Sender: tup("011", 9), YourLabel: lbl("0"), Flag: proto.CYC},
	proto.Introduce{C: tup("1", 5), Flag: proto.LIN},
	proto.Linearize{V: tup("001", 8)},
	proto.RemoveConnections{V: 3},
	proto.IntroduceShortcut{T: tup("101", 6)},
	proto.CheckTrie{Sender: 4, Nodes: []proto.NodeSummary{
		{Label: proto.Key{Bits: 0b101, Len: 3}, Hash: [16]byte{1, 2, 3, 255}},
		{Label: proto.Key{Bits: 0, Len: 0}},
	}},
	proto.CheckAndPublish{Sender: 5, Nodes: []proto.NodeSummary{
		{Label: proto.Key{Bits: 1, Len: 1}, Hash: [16]byte{9}},
	}, Prefix: proto.Key{Bits: 0b11, Len: 2}},
	proto.PublishBatch{Pubs: []proto.Publication{
		{Key: proto.Key{Bits: 42, Len: 64}, Origin: 7, Payload: "hello"},
		{Key: proto.Key{Bits: 0, Len: 1}, Origin: 8, Payload: ""},
	}},
	proto.PublishNew{Pub: proto.Publication{Key: proto.Key{Bits: 99, Len: 32}, Origin: 2, Payload: "pub-β"}},
	proto.Token{Epoch: 12, N: 6, Pos: 3, Prev: tup("01", 4), First: tup("0", 2),
		Pending: []proto.Tuple{tup("11", 9), {}}, NextHop: proto.Tuple{}},
	proto.TokenReturn{Epoch: 13, Complete: true, First: tup("0", 2), Last: tup("11", 9)},
	proto.Register{V: 11, Label: lbl("0001")},
	proto.Reregister{V: 12, Label: lbl("001"), Epoch: 1<<40 + 5},
	proto.OwnerAnnounce{Owner: 3, Epoch: 7},
	proto.PlaneGossip{Entries: []proto.TopicEpoch{{Topic: 1, Epoch: 2}, {Topic: 1 << 30, Epoch: 0}}},
	proto.PlaneGossip{},
	proto.SetData{Pred: tup("01", 4), Label: lbl("11"), Succ: tup("1", 6), Epoch: 9},
	core.JoinTopic{},
	core.LeaveTopic{},
	core.PublishCmd{Payload: "payload with\x00bytes"},
	Hello{Base: sim.None, Slots: 1024},
	Welcome{Base: 4096, Slots: 1024},
	Batch{Msgs: []sim.Message{
		{To: 5, From: 9, Topic: 1, Body: proto.Check{Sender: tup("011", 9), YourLabel: lbl("01"), Flag: proto.LIN}},
		{To: 9, From: 1, Topic: 1, Body: proto.SetData{Pred: tup("01", 4), Label: lbl("011"), Succ: tup("11", 7)}},
		{To: 2, From: 3, Topic: 2, Body: core.PublishCmd{Payload: "batched"}},
	}},
}

// TestRoundTripAllTypes checks Unmarshal(Marshal(m)) == m for a populated
// sample of every registered type, and that the sample set covers the
// registry exactly.
func TestRoundTripAllTypes(t *testing.T) {
	covered := make(map[reflect.Type]bool)
	for i, body := range sampleBodies {
		covered[reflect.TypeOf(body)] = true
		m := sim.Message{To: 3, From: 9, Topic: sim.Topic(i + 1), Body: body}
		b, err := Marshal(m)
		if err != nil {
			t.Fatalf("Marshal(%T): %v", body, err)
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("Unmarshal(Marshal(%T)): %v", body, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip %T:\n got %#v\nwant %#v", body, got, m)
		}
	}
	if len(covered) != len(Registered()) {
		t.Errorf("sampleBodies covers %d types, registry has %d:\n%s",
			len(covered), len(Registered()), strings.Join(Registered(), "\n"))
	}
}

// TestEnvelopeExtremes pins the envelope codec at the edges of the ID and
// topic domains (negative values must survive, even though the protocol
// never generates them: the codec must not corrupt what it carries).
func TestEnvelopeExtremes(t *testing.T) {
	for _, m := range []sim.Message{
		{To: sim.None, From: sim.None, Topic: 0, Body: core.JoinTopic{}},
		{To: 1<<62 - 1, From: -5, Topic: -1, Body: core.JoinTopic{}},
		{To: -1 << 62, From: 1, Topic: 1<<31 - 1, Body: core.JoinTopic{}},
	} {
		b, err := Marshal(m)
		if err != nil {
			t.Fatalf("Marshal(%v): %v", m, err)
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("Unmarshal(%v): %v", m, err)
		}
		if got != m {
			t.Errorf("envelope round trip: got %v want %v", got, m)
		}
	}
}

// TestGarbageRejected feeds the decoder a gallery of malformed frames;
// every one must fail with an ErrGarbage-class error — and none may panic.
func TestGarbageRejected(t *testing.T) {
	valid, err := Marshal(sim.Message{To: 2, From: 3, Topic: 1, Body: proto.Subscribe{V: 7}})
	if err != nil {
		t.Fatal(err)
	}
	trailing := make([]byte, len(valid)+1)
	copy(trailing, valid)
	trailing[len(valid)] = 0xFF
	overrun := append([]byte{}, valid...)
	overrun[3]++ // prefix claims one more payload byte than present

	cases := map[string][]byte{
		"empty":            {},
		"short prefix":     {0, 0},
		"bad magic":        {0, 0, 0, 3, 'X', 'Y', 1},
		"bad version":      {0, 0, 0, 3, 'S', 'R', 9},
		"header only":      {0, 0, 0, 2, 'S', 'R'},
		"length mismatch":  overrun,
		"trailing garbage": trailing,
		"unknown tag":      mustFrame(t, func(e *enc) { e.svarint(1); e.svarint(2); e.svarint(3); e.uvarint(9999) }),
		"truncated body":   valid[:len(valid)-1],
		"lying slice len":  mustFrame(t, func(e *enc) { e.svarint(1); e.svarint(2); e.svarint(3); e.uvarint(tagPublishBatch); e.uvarint(1 << 50) }),
		"bad bool": mustFrame(t, func(e *enc) {
			e.svarint(1)
			e.svarint(2)
			e.svarint(3)
			e.uvarint(tagTokenReturn)
			e.uvarint(1)
			e.u8(7)
		}),
		"bad flag": mustFrame(t, func(e *enc) {
			e.svarint(1)
			e.svarint(2)
			e.svarint(3)
			e.uvarint(tagIntroduce)
			e.uvarint(0)
			e.u8(0)
			e.svarint(0)
			e.u8(9)
		}),
		"huge string len":   mustFrame(t, func(e *enc) { e.svarint(1); e.svarint(2); e.svarint(3); e.uvarint(tagPublishCmd); e.uvarint(1 << 40) }),
		"nonminimal varint": mustFrame(t, func(e *enc) { e.raw(0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01) }),
		"body after empty":  mustFrame(t, func(e *enc) { e.svarint(1); e.svarint(2); e.svarint(3); e.uvarint(tagJoinTopic); e.u8(0) }),
	}

	for name, b := range cases {
		_, err := Unmarshal(b)
		if err == nil {
			t.Errorf("%s: decoded successfully, want error", name)
			continue
		}
		if !errors.Is(err, ErrGarbage) {
			t.Errorf("%s: error %v does not wrap ErrGarbage", name, err)
		}
	}
}

// mustFrame hand-assembles a frame around a raw payload writer, for
// malformed-input tests the normal Marshal path refuses to produce.
func mustFrame(t *testing.T, body func(*enc)) []byte {
	t.Helper()
	e := &enc{b: []byte{0, 0, 0, 0, 'S', 'R', Version}}
	body(e)
	n := len(e.b) - 4
	e.b[0], e.b[1], e.b[2], e.b[3] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
	return e.b
}

// TestFrameTooLarge: an oversize length prefix is a stream-poisoning
// error, distinct from recoverable garbage.
func TestFrameTooLarge(t *testing.T) {
	b := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := Unmarshal(b); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("got %v, want ErrFrameTooLarge", err)
	}
	if _, err := ReadFrame(bytes.NewReader(b)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("ReadFrame: got %v, want ErrFrameTooLarge", err)
	}
	big := proto.PublishBatch{Pubs: []proto.Publication{{Payload: strings.Repeat("x", MaxFrame+1)}}}
	if _, err := Marshal(sim.Message{To: 1, Body: big}); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("Marshal oversize: got %v, want ErrFrameTooLarge", err)
	}
}

// TestUnregisteredBody: Marshal refuses types outside the registry (the
// deterministic scheduler's garbage-injection bodies, for example, have no
// wire form on purpose).
func TestUnregisteredBody(t *testing.T) {
	type notAMessage struct{ X int }
	if _, err := Marshal(sim.Message{To: 1, Body: notAMessage{}}); err == nil {
		t.Error("Marshal accepted an unregistered body type")
	}
	if _, err := Marshal(sim.Message{To: 1, Body: nil}); err == nil {
		t.Error("Marshal accepted a nil body")
	}
}

// TestStreamReadWrite pushes a mixed sequence of frames through a byte
// stream, interleaved with one garbage frame that must be skippable.
func TestStreamReadWrite(t *testing.T) {
	var buf bytes.Buffer
	msgs := []sim.Message{
		{To: 1, From: 2, Topic: 1, Body: proto.Subscribe{V: 2}},
		{To: 2, From: 1, Topic: 1, Body: proto.SetData{Label: lbl("0")}},
		{To: 2, From: 3, Topic: 2, Body: proto.PublishNew{Pub: proto.Publication{Key: proto.Key{Bits: 5, Len: 8}, Origin: 3, Payload: "p"}}},
	}
	for i, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			// A well-delimited frame with an unknown tag: recoverable garbage.
			buf.Write(mustFrame(t, func(e *enc) { e.svarint(0); e.svarint(0); e.svarint(0); e.uvarint(500) }))
		}
	}
	var got []sim.Message
	for {
		m, err := ReadFrame(&buf)
		if err != nil {
			if errors.Is(err, ErrGarbage) {
				continue // skip, stream stays aligned
			}
			break // EOF
		}
		got = append(got, m)
	}
	if !reflect.DeepEqual(got, msgs) {
		t.Errorf("stream round trip:\n got %v\nwant %v", got, msgs)
	}
}

// TestRegisteredListing pins the registry self-description format.
func TestRegisteredListing(t *testing.T) {
	lines := Registered()
	if len(lines) < 20 {
		t.Fatalf("registry has only %d entries: %v", len(lines), lines)
	}
	if lines[0] != "1 proto.Subscribe" {
		t.Errorf("first entry = %q", lines[0])
	}
	for _, l := range lines {
		var tag uint64
		var name string
		if _, err := fmt.Sscanf(l, "%d %s", &tag, &name); err != nil {
			t.Errorf("unparseable registry line %q", l)
		}
	}
}
