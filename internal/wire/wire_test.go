package wire

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"unsafe"

	"sspubsub/internal/core"
	"sspubsub/internal/label"
	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
)

func lbl(s string) label.Label { return label.MustParse(s) }

func tup(l string, id sim.NodeID) proto.Tuple { return proto.Tuple{L: lbl(l), Ref: id} }

// sampleBodies holds one populated value per registered type, so the
// round-trip table provably covers the whole registry.
var sampleBodies = []any{
	proto.Subscribe{V: 7},
	proto.Unsubscribe{V: 1<<40 + 3},
	proto.GetConfiguration{V: 2},
	proto.SetData{Pred: tup("01", 4), Label: lbl("11"), Succ: proto.Tuple{}},
	proto.Check{Sender: tup("011", 9), YourLabel: lbl("0"), Flag: proto.CYC},
	proto.Introduce{C: tup("1", 5), Flag: proto.LIN},
	proto.Linearize{V: tup("001", 8)},
	proto.RemoveConnections{V: 3},
	proto.IntroduceShortcut{T: tup("101", 6)},
	proto.CheckTrie{Sender: 4, Nodes: []proto.NodeSummary{
		{Label: proto.Key{Bits: 0b101, Len: 3}, Hash: [16]byte{1, 2, 3, 255}},
		{Label: proto.Key{Bits: 0, Len: 0}},
	}},
	proto.CheckAndPublish{Sender: 5, Nodes: []proto.NodeSummary{
		{Label: proto.Key{Bits: 1, Len: 1}, Hash: [16]byte{9}},
	}, Prefix: proto.Key{Bits: 0b11, Len: 2}},
	proto.PublishBatch{Pubs: []proto.Publication{
		{Key: proto.Key{Bits: 42, Len: 64}, Origin: 7, Payload: "hello"},
		{Key: proto.Key{Bits: 0, Len: 1}, Origin: 8, Payload: ""},
	}},
	proto.PublishNew{Pub: proto.Publication{Key: proto.Key{Bits: 99, Len: 32}, Origin: 2, Payload: "pub-β"}},
	proto.Token{Epoch: 12, N: 6, Pos: 3, Prev: tup("01", 4), First: tup("0", 2),
		Pending: []proto.Tuple{tup("11", 9), {}}, NextHop: proto.Tuple{}},
	proto.TokenReturn{Epoch: 13, Complete: true, First: tup("0", 2), Last: tup("11", 9)},
	proto.Register{V: 11, Label: lbl("0001")},
	proto.Reregister{V: 12, Label: lbl("001"), Epoch: 1<<40 + 5},
	proto.OwnerAnnounce{Owner: 3, Epoch: 7},
	proto.PlaneGossip{Entries: []proto.TopicEpoch{{Topic: 1, Epoch: 2}, {Topic: 1 << 30, Epoch: 0}}},
	proto.PlaneGossip{},
	proto.SetData{Pred: tup("01", 4), Label: lbl("11"), Succ: tup("1", 6), Epoch: 9},
	proto.ReplicaDelta{Epoch: 3, Put: []proto.ReplicaEntry{
		{L: lbl("01"), V: 7},
		{L: lbl("011"), V: 1<<40 + 9},
	}, Del: []label.Label{lbl("0"), lbl("1011")}},
	proto.ReplicaDelta{Epoch: 1 << 50},
	proto.ReplicaDigest{Probe: true, Epoch: 5, Count: 1 << 20, Hash: [16]byte{1, 2, 3, 255}},
	proto.ReplicaSync{Epoch: 6, Round: 2, Seq: 1, Chunks: 3, Entries: []proto.ReplicaEntry{
		{L: lbl("0001"), V: 12},
	}},
	proto.ReplicaSync{Epoch: 7, Round: 1, Seq: 0, Chunks: 1},
	proto.ReplicaDelta{Epoch: 4, Mode: 1},
	proto.ReplicaDigest{Epoch: 2, Count: 3, Mode: 2},
	proto.ReplicaSync{Epoch: 8, Round: 1, Seq: 0, Chunks: 1, Mode: 2},
	proto.PublishSeq{Pub: proto.Publication{Key: proto.Key{Bits: 17, Len: 16}, Origin: 3, Payload: "seq-pub"}, Seq: 1 << 33},
	proto.PublishSeq{Pub: proto.Publication{Key: proto.Key{Bits: 1, Len: 1}, Origin: 4, Payload: ""}, Seq: 1},
	proto.PublishCausal{Pub: proto.Publication{Key: proto.Key{Bits: 5, Len: 8}, Origin: 6, Payload: "causal"}, Seq: 9,
		Barrier: []proto.BarrierEntry{{Origin: 1, Seq: 8}, {Origin: 1<<40 + 2, Seq: 1 << 50}}},
	proto.PublishCausal{Pub: proto.Publication{Key: proto.Key{Bits: 2, Len: 2}, Origin: 7, Payload: "lone"}, Seq: 1},
	core.JoinTopic{},
	core.LeaveTopic{},
	core.PublishCmd{Payload: "payload with\x00bytes"},
	Hello{Base: sim.None, Slots: 1024},
	Welcome{Base: 4096, Slots: 1024},
	Batch{Msgs: []sim.Message{
		{To: 5, From: 9, Topic: 1, Body: proto.Check{Sender: tup("011", 9), YourLabel: lbl("01"), Flag: proto.LIN}},
		{To: 9, From: 1, Topic: 1, Body: proto.SetData{Pred: tup("01", 4), Label: lbl("011"), Succ: tup("11", 7)}},
		{To: 2, From: 3, Topic: 2, Body: core.PublishCmd{Payload: "batched"}},
	}},
	Batch2{Msgs: []sim.Message{
		// The same shareable body to two destinations (the encode-once
		// multicast shape), plus a slice-bearing body that must bypass
		// the intern cache.
		{To: 5, From: 9, Topic: 1, Body: proto.PublishNew{Pub: proto.Publication{Key: proto.Key{Bits: 7, Len: 8}, Origin: 9, Payload: "fan-out"}}},
		{To: 6, From: 9, Topic: 1, Body: proto.PublishNew{Pub: proto.Publication{Key: proto.Key{Bits: 7, Len: 8}, Origin: 9, Payload: "fan-out"}}},
		{To: 2, From: 3, Topic: 2, Body: proto.PublishBatch{Pubs: []proto.Publication{{Key: proto.Key{Bits: 1, Len: 2}, Origin: 3, Payload: "x"}}}},
	}},
}

// TestRoundTripAllTypes checks Unmarshal(Marshal(m)) == m for a populated
// sample of every registered type, and that the sample set covers the
// registry exactly.
func TestRoundTripAllTypes(t *testing.T) {
	covered := make(map[reflect.Type]bool)
	for i, body := range sampleBodies {
		covered[reflect.TypeOf(body)] = true
		m := sim.Message{To: 3, From: 9, Topic: sim.Topic(i + 1), Body: body}
		b, err := Marshal(m)
		if err != nil {
			t.Fatalf("Marshal(%T): %v", body, err)
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("Unmarshal(Marshal(%T)): %v", body, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip %T:\n got %#v\nwant %#v", body, got, m)
		}
	}
	if len(covered) != len(Registered()) {
		t.Errorf("sampleBodies covers %d types, registry has %d:\n%s",
			len(covered), len(Registered()), strings.Join(Registered(), "\n"))
	}
}

// TestEnvelopeExtremes pins the envelope codec at the edges of the ID and
// topic domains (negative values must survive, even though the protocol
// never generates them: the codec must not corrupt what it carries).
func TestEnvelopeExtremes(t *testing.T) {
	for _, m := range []sim.Message{
		{To: sim.None, From: sim.None, Topic: 0, Body: core.JoinTopic{}},
		{To: 1<<62 - 1, From: -5, Topic: -1, Body: core.JoinTopic{}},
		{To: -1 << 62, From: 1, Topic: 1<<31 - 1, Body: core.JoinTopic{}},
	} {
		b, err := Marshal(m)
		if err != nil {
			t.Fatalf("Marshal(%v): %v", m, err)
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("Unmarshal(%v): %v", m, err)
		}
		if got != m {
			t.Errorf("envelope round trip: got %v want %v", got, m)
		}
	}
}

// TestGarbageRejected feeds the decoder a gallery of malformed frames;
// every one must fail with an ErrGarbage-class error — and none may panic.
func TestGarbageRejected(t *testing.T) {
	valid, err := Marshal(sim.Message{To: 2, From: 3, Topic: 1, Body: proto.Subscribe{V: 7}})
	if err != nil {
		t.Fatal(err)
	}
	trailing := make([]byte, len(valid)+1)
	copy(trailing, valid)
	trailing[len(valid)] = 0xFF
	overrun := append([]byte{}, valid...)
	overrun[3]++ // prefix claims one more payload byte than present

	cases := map[string][]byte{
		"empty":            {},
		"short prefix":     {0, 0},
		"bad magic":        {0, 0, 0, 3, 'X', 'Y', 1},
		"bad version":      {0, 0, 0, 3, 'S', 'R', 9},
		"header only":      {0, 0, 0, 2, 'S', 'R'},
		"length mismatch":  overrun,
		"trailing garbage": trailing,
		"unknown tag":      mustFrame(t, func(e *enc) { e.svarint(1); e.svarint(2); e.svarint(3); e.uvarint(9999) }),
		"truncated body":   valid[:len(valid)-1],
		"lying slice len":  mustFrame(t, func(e *enc) { e.svarint(1); e.svarint(2); e.svarint(3); e.uvarint(tagPublishBatch); e.uvarint(1 << 50) }),
		"bad bool": mustFrame(t, func(e *enc) {
			e.svarint(1)
			e.svarint(2)
			e.svarint(3)
			e.uvarint(tagTokenReturn)
			e.uvarint(1)
			e.u8(7)
		}),
		"bad flag": mustFrame(t, func(e *enc) {
			e.svarint(1)
			e.svarint(2)
			e.svarint(3)
			e.uvarint(tagIntroduce)
			e.uvarint(0)
			e.u8(0)
			e.svarint(0)
			e.u8(9)
		}),
		"huge string len":   mustFrame(t, func(e *enc) { e.svarint(1); e.svarint(2); e.svarint(3); e.uvarint(tagPublishCmd); e.uvarint(1 << 40) }),
		"nonminimal varint": mustFrame(t, func(e *enc) { e.raw(0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01) }),
		"body after empty":  mustFrame(t, func(e *enc) { e.svarint(1); e.svarint(2); e.svarint(3); e.uvarint(tagJoinTopic); e.u8(0) }),
		"batch2 member len beyond frame": mustFrame(t, func(e *enc) {
			e.svarint(0)
			e.svarint(0)
			e.svarint(0)
			e.uvarint(tagBatch2)
			e.uvarint(1)  // one member…
			e.uvarint(50) // …claiming 50 bytes with none present
		}),
		"batch2 member len below floor": mustFrame(t, func(e *enc) {
			e.svarint(0)
			e.svarint(0)
			e.svarint(0)
			e.uvarint(tagBatch2)
			e.uvarint(1)
			e.uvarint(3) // a member cannot fit in 3 bytes
			e.raw(0, 0, 0)
		}),
		"batch2 member trailing byte": mustFrame(t, func(e *enc) {
			e.svarint(0)
			e.svarint(0)
			e.svarint(0)
			e.uvarint(tagBatch2)
			e.uvarint(1)
			e.uvarint(5) // envelope(3) + JoinTopic tag(1) decode to 4 — 1 byte lies beyond
			e.svarint(1)
			e.svarint(2)
			e.svarint(3)
			e.uvarint(tagJoinTopic)
			e.u8(0xEE)
		}),
		"batch2 nested batch": mustFrame(t, func(e *enc) {
			e.svarint(0)
			e.svarint(0)
			e.svarint(0)
			e.uvarint(tagBatch2)
			e.uvarint(1)
			e.uvarint(5)
			e.svarint(1)
			e.svarint(2)
			e.svarint(3)
			e.uvarint(tagBatch)
			e.uvarint(0)
		}),
	}

	for name, b := range cases {
		_, err := Unmarshal(b)
		if err == nil {
			t.Errorf("%s: decoded successfully, want error", name)
			continue
		}
		if !errors.Is(err, ErrGarbage) {
			t.Errorf("%s: error %v does not wrap ErrGarbage", name, err)
		}
	}
}

// mustFrame hand-assembles a frame around a raw payload writer, for
// malformed-input tests the normal Marshal path refuses to produce.
func mustFrame(t *testing.T, body func(*enc)) []byte {
	t.Helper()
	e := &enc{b: []byte{0, 0, 0, 0, 'S', 'R', Version}}
	body(e)
	n := len(e.b) - 4
	e.b[0], e.b[1], e.b[2], e.b[3] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
	return e.b
}

// TestFrameTooLarge: an oversize length prefix is a stream-poisoning
// error, distinct from recoverable garbage.
func TestFrameTooLarge(t *testing.T) {
	b := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := Unmarshal(b); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("got %v, want ErrFrameTooLarge", err)
	}
	if _, err := ReadFrame(bytes.NewReader(b)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("ReadFrame: got %v, want ErrFrameTooLarge", err)
	}
	big := proto.PublishBatch{Pubs: []proto.Publication{{Payload: strings.Repeat("x", MaxFrame+1)}}}
	if _, err := Marshal(sim.Message{To: 1, Body: big}); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("Marshal oversize: got %v, want ErrFrameTooLarge", err)
	}
}

// TestUnregisteredBody: Marshal refuses types outside the registry (the
// deterministic scheduler's garbage-injection bodies, for example, have no
// wire form on purpose).
func TestUnregisteredBody(t *testing.T) {
	type notAMessage struct{ X int }
	if _, err := Marshal(sim.Message{To: 1, Body: notAMessage{}}); err == nil {
		t.Error("Marshal accepted an unregistered body type")
	}
	if _, err := Marshal(sim.Message{To: 1, Body: nil}); err == nil {
		t.Error("Marshal accepted a nil body")
	}
}

// TestStreamReadWrite pushes a mixed sequence of frames through a byte
// stream, interleaved with one garbage frame that must be skippable.
func TestStreamReadWrite(t *testing.T) {
	var buf bytes.Buffer
	msgs := []sim.Message{
		{To: 1, From: 2, Topic: 1, Body: proto.Subscribe{V: 2}},
		{To: 2, From: 1, Topic: 1, Body: proto.SetData{Label: lbl("0")}},
		{To: 2, From: 3, Topic: 2, Body: proto.PublishNew{Pub: proto.Publication{Key: proto.Key{Bits: 5, Len: 8}, Origin: 3, Payload: "p"}}},
	}
	for i, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			// A well-delimited frame with an unknown tag: recoverable garbage.
			buf.Write(mustFrame(t, func(e *enc) { e.svarint(0); e.svarint(0); e.svarint(0); e.uvarint(500) }))
		}
	}
	var got []sim.Message
	for {
		m, err := ReadFrame(&buf)
		if err != nil {
			if errors.Is(err, ErrGarbage) {
				continue // skip, stream stays aligned
			}
			break // EOF
		}
		got = append(got, m)
	}
	if !reflect.DeepEqual(got, msgs) {
		t.Errorf("stream round trip:\n got %v\nwant %v", got, msgs)
	}
}

// TestStateDecodeMatchesPlain: decoding through a DecodeState must yield
// exactly what the plain decoder yields, for every registered type, and
// must keep doing so when the state (arena chunks, intern cache) is warm
// from previous frames.
func TestStateDecodeMatchesPlain(t *testing.T) {
	st := NewDecodeState()
	for pass := 0; pass < 3; pass++ { // pass 0 cold, later passes warm/interned
		for i, body := range sampleBodies {
			m := sim.Message{To: 3, From: 9, Topic: sim.Topic(i + 1), Body: body}
			b, err := Marshal(m)
			if err != nil {
				t.Fatalf("Marshal(%T): %v", body, err)
			}
			want, err := Unmarshal(b)
			if err != nil {
				t.Fatalf("Unmarshal(%T): %v", body, err)
			}
			got, err := UnmarshalState(b, st)
			if err != nil {
				t.Fatalf("pass %d: UnmarshalState(%T): %v", pass, body, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("pass %d: state decode of %T:\n got %#v\nwant %#v", pass, body, got, want)
			}
			st.EndFrame()
		}
	}
}

// TestBatch2Interning: two identical shareable members decoded through
// one DecodeState must come back as the same boxed body — the decode-side
// half of encode-once multicast.
func TestBatch2Interning(t *testing.T) {
	pub := proto.PublishNew{Pub: proto.Publication{Key: proto.Key{Bits: 9, Len: 16}, Origin: 4, Payload: "shared"}}
	m := sim.Message{Body: Batch2{Msgs: []sim.Message{
		{To: 5, From: 4, Topic: 1, Body: pub},
		{To: 6, From: 4, Topic: 1, Body: pub},
	}}}
	b, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	st := NewDecodeState()
	got, err := UnmarshalState(b, st)
	if err != nil {
		t.Fatal(err)
	}
	msgs := got.Body.(Batch2).Msgs
	if len(msgs) != 2 {
		t.Fatalf("decoded %d members, want 2", len(msgs))
	}
	p0 := reflect.ValueOf(msgs[0].Body)
	p1 := reflect.ValueOf(msgs[1].Body)
	if msgs[0].Body != msgs[1].Body {
		t.Fatalf("identical members decoded to different values: %#v vs %#v", p0, p1)
	}
	// Same value is necessary but not sufficient — a second frame with the
	// same member must hit the cache, observable as the string payloads
	// aliasing the same backing memory.
	got2, err := UnmarshalState(b, st)
	if err != nil {
		t.Fatal(err)
	}
	s1 := msgs[0].Body.(proto.PublishNew).Pub.Payload
	s2 := got2.Body.(Batch2).Msgs[0].Body.(proto.PublishNew).Pub.Payload
	if unsafe.StringData(s1) != unsafe.StringData(s2) {
		t.Error("second decode of an identical member did not return the interned body")
	}
}

// TestRawAssemblyMatchesAppendFrame: the transport's raw builders must
// produce byte-identical frames to AppendFrame over the equivalent
// message — readers cannot tell the encode-once path apart.
func TestRawAssemblyMatchesAppendFrame(t *testing.T) {
	body := proto.PublishNew{Pub: proto.Publication{Key: proto.Key{Bits: 3, Len: 4}, Origin: -7, Payload: "raw"}}
	tagged, err := AppendBody(nil, body)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AppendBody(nil, Batch{}); err == nil {
		t.Error("AppendBody accepted a Batch body")
	}

	m := sim.Message{To: -3, From: 1 << 20, Topic: 5, Body: body}
	want, err := AppendFrame(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AppendFrameRaw(nil, m.To, m.From, m.Topic, tagged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("AppendFrameRaw:\n got %x\nwant %x", got, want)
	}

	members := []sim.Message{
		{To: 5, From: -9, Topic: 1, Body: body},
		{To: 1 << 30, From: 9, Topic: -2, Body: body},
	}
	want, err = AppendFrame(nil, sim.Message{Body: Batch2{Msgs: members}})
	if err != nil {
		t.Fatal(err)
	}
	got = BeginBatchFrame(nil, len(members))
	if len(got) != BatchFrameOverhead(len(members)) {
		t.Errorf("BatchFrameOverhead(%d) = %d, frame head is %d bytes",
			len(members), BatchFrameOverhead(len(members)), len(got))
	}
	for _, mm := range members {
		before := len(got)
		got = AppendBatchMember(got, mm.To, mm.From, mm.Topic, tagged)
		if sz := BatchMemberSize(mm.To, mm.From, mm.Topic, len(tagged)); len(got)-before != sz {
			t.Errorf("BatchMemberSize = %d, member occupied %d bytes", sz, len(got)-before)
		}
	}
	got, err = FinishFrame(got, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("batch assembly:\n got %x\nwant %x", got, want)
	}
}

// TestCanShare pins the share predicate on representative types: value
// types (strings included) are shareable, anything carrying a slice is
// not, batches never are.
func TestCanShare(t *testing.T) {
	for _, tc := range []struct {
		body any
		want bool
	}{
		{proto.PublishNew{Pub: proto.Publication{Payload: "p"}}, true},
		{proto.SetData{}, true},
		{core.PublishCmd{Payload: "x"}, true},
		{core.JoinTopic{}, true},
		{Hello{}, true},
		{proto.ReplicaDigest{}, true},
		{proto.PublishBatch{}, false},
		{proto.ReplicaDelta{}, false},
		{proto.ReplicaSync{}, false},
		{proto.CheckTrie{}, false},
		{proto.Token{}, false},
		{Batch{}, false},
		{Batch2{}, false},
		{nil, false},
		{struct{ X int }{}, false}, // unregistered
	} {
		if got := CanShare(tc.body); got != tc.want {
			t.Errorf("CanShare(%T) = %v, want %v", tc.body, got, tc.want)
		}
	}
}

// TestRegisteredListing pins the registry self-description format.
func TestRegisteredListing(t *testing.T) {
	lines := Registered()
	if len(lines) < 20 {
		t.Fatalf("registry has only %d entries: %v", len(lines), lines)
	}
	if lines[0] != "1 proto.Subscribe" {
		t.Errorf("first entry = %q", lines[0])
	}
	for _, l := range lines {
		var tag uint64
		var name string
		if _, err := fmt.Sscanf(l, "%d %s", &tag, &name); err != nil {
			t.Errorf("unparseable registry line %q", l)
		}
	}
}
