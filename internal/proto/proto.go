// Package proto defines the wire messages of the BuildSR protocol and the
// publication protocol, shared by the supervisor (Algorithm 3), the
// subscribers (Algorithms 1, 2, 4) and the publication engine (Algorithm 5).
//
// Every message is carried inside a sim.Message envelope that also records
// the topic, so one physical node can run many per-topic protocol instances
// (Section 4).
package proto

import (
	"fmt"

	"sspubsub/internal/label"
	"sspubsub/internal/sim"
)

// Tuple pairs a node reference with the label the holder believes that node
// has ("If node v ∈ V has an edge to w ∈ V, then v locally stores the tuple
// (label_w, w)", Section 2.2). The stored label can be stale; the Check
// action repairs it.
type Tuple struct {
	L   label.Label
	Ref sim.NodeID
}

// IsBottom reports whether the tuple is ⊥ (no node).
func (t Tuple) IsBottom() bool { return t.Ref == sim.None }

// String renders "label@id" or "⊥".
func (t Tuple) String() string {
	if t.IsBottom() {
		return "⊥"
	}
	return fmt.Sprintf("%s@%d", t.L, t.Ref)
}

// Flag distinguishes introductions along the sorted list from introductions
// for the cyclic closure edge (Algorithms 1–2 use flags LIN and CYC).
type Flag uint8

const (
	// LIN marks list (linearization) traffic.
	LIN Flag = iota
	// CYC marks cycle-closure traffic.
	CYC
)

func (f Flag) String() string {
	if f == CYC {
		return "CYC"
	}
	return "LIN"
}

// ---- Supervisor-bound messages (Algorithm 3) ----

// Subscribe asks the supervisor to integrate the sender into the topic's
// database and send back a configuration. Sent by new subscribers and by
// label-less nodes (action (i) of Section 3.2.1).
type Subscribe struct {
	V sim.NodeID
}

// Unsubscribe asks the supervisor to remove V from the topic's database
// (Section 4.1).
type Unsubscribe struct {
	V sim.NodeID
}

// GetConfiguration asks the supervisor to send node V its current
// configuration (pred, label, succ). V is usually the sender (actions (ii)
// and (iv)) but can be a third node (action (iii) requests a configuration
// on behalf of a ring neighbour).
type GetConfiguration struct {
	V sim.NodeID
}

// ---- Subscriber-bound messages from the supervisor ----

// SetData delivers a configuration (pred_v, label_v, succ_v) from the
// supervisor's database. All-⊥ means "you are not in the database": the
// receiver clears its label and will re-subscribe (or stay out, if it asked
// to leave). Epoch is the sender's ownership epoch for the topic (see the
// supervisor-plane messages below): a receiver that has followed a newer
// owner ignores configurations from third parties carrying an older epoch,
// which is what makes commands from a deposed supervisor harmless.
type SetData struct {
	Pred  Tuple
	Label label.Label
	Succ  Tuple
	Epoch uint64
}

// ---- Subscriber-to-subscriber ring maintenance (Algorithms 1, 2, 4) ----

// Check is the periodic self-introduction of the extended BuildRing
// protocol: the sender introduces itself (Sender, with its current label)
// and tells the receiver which label it has stored for the receiver
// (YourLabel). If YourLabel is stale the receiver replies with its correct
// label; otherwise it processes the introduction.
type Check struct {
	Sender    Tuple
	YourLabel label.Label
	Flag      Flag
}

// Introduce carries a node reference C to the receiver (possibly the sender
// itself, possibly a delegated third node) with the list/cycle flag.
type Introduce struct {
	C    Tuple
	Flag Flag
}

// Linearize delegates a node reference along the sorted list (the
// BuildList protocol of Onus et al., extended with label correction).
type Linearize struct {
	V Tuple
}

// RemoveConnections asks the receiver to delete every edge it stores to
// node V (sent by unsubscribed/label-less nodes, Lemma 6).
type RemoveConnections struct {
	V sim.NodeID
}

// IntroduceShortcut introduces node T as a shortcut (Section 3.2.2): the
// receiver adopts T for the shortcut slot labelled T.L if it maintains that
// slot, and re-linearizes any node it replaces.
type IntroduceShortcut struct {
	T Tuple
}

// ---- Publication protocol (Algorithm 5) ----

// Key is the fixed-width publication key h̄_m(origin, payload), stored as a
// bit string (Section 4.2). Width is configured system-wide; see pubsub.
type Key struct {
	Bits uint64
	Len  uint8
}

// Publication is one published item. Key = h̄_m(Origin, Payload) is its
// Patricia-trie key.
type Publication struct {
	Key     Key
	Origin  sim.NodeID
	Payload string
}

// NodeSummary identifies one Patricia-trie node by its label (a key prefix)
// and its Merkle-style hash; CheckTrie messages carry summaries only,
// "ignoring the node's outgoing edges".
type NodeSummary struct {
	Label Key
	Hash  [16]byte
}

// CheckTrie asks the receiver to compare the listed trie nodes against its
// own trie and respond per the three cases of Section 4.2.
type CheckTrie struct {
	Sender sim.NodeID
	Nodes  []NodeSummary
}

// CheckAndPublish combines a CheckTrie for Nodes with the request to send
// every publication whose key has prefix Prefix back to Sender.
type CheckAndPublish struct {
	Sender sim.NodeID
	Nodes  []NodeSummary
	Prefix Key
}

// PublishBatch delivers a set of publications (the paper's Publish(P)).
type PublishBatch struct {
	Pubs []Publication
}

// PublishNew floods a fresh publication over ring and shortcut edges
// (Section 4.3).
type PublishNew struct {
	Pub Publication
}

// ---- ordered delivery (per-topic FIFO / causal modes) ----
//
// Best-effort topics flood PublishNew. Ordered topics flood the same
// payload wrapped with bounded ordering metadata: a per-publisher sequence
// number (FIFO), plus a capped causal-barrier summary (causal). Storage
// and forwarding are unchanged — only the subscriber-side delivery
// callback is reordered, by internal/ordering.

// PublishSeq floods a fresh publication on a FIFO-mode topic: Pub plus the
// publisher's per-topic sequence number (starting at 1).
type PublishSeq struct {
	Pub Publication
	Seq uint64
}

// BarrierEntry is one element of a bounded causal-barrier summary: the
// publisher had delivered publications from Origin up to sequence Seq when
// it published.
type BarrierEntry struct {
	Origin sim.NodeID
	Seq    uint64
}

// PublishCausal floods a fresh publication on a causal-mode topic: Pub,
// the publisher's sequence number, and a barrier of at most
// ordering.BarrierCap entries summarizing the publication's causal
// predecessors. Receivers hold the publication until their own delivery
// frontier covers the barrier (or the bounded force-delivery timeout
// fires).
type PublishCausal struct {
	Pub     Publication
	Seq     uint64
	Barrier []BarrierEntry
}

// ---- supervisor plane (crash-tolerant sharded supervision) ----
//
// The paper assumes one reliable supervisor. With topics sharded over
// several supervisors by consistent hashing (Section 1.3), the plane
// itself must self-stabilize: supervisors monitor each other through the
// failure detector, a dead supervisor's topics migrate to their hashdht
// successors, and the successor rebuilds the topic database from the live
// overlay — the database is soft state recoverable from the system, the
// same property the paper's legitimacy proof already relies on. Ownership
// eras are totally ordered per topic by an epoch counter, so messages from
// deposed owners are recognizably stale.

// Reregister is the subscriber half of the WhoSupervises handshake: "I
// believe I am a member of this topic with label Label, last served at
// ownership epoch Epoch — if you own the topic, adopt me into your
// database (preserving my label if it is free) and confirm my
// configuration; otherwise tell me who does." Subscribers send it to the
// announced new owner after a migration, and round-robin over the
// supervisor set when their believed owner has gone silent.
type Reregister struct {
	V     sim.NodeID
	Label label.Label
	Epoch uint64
}

// OwnerAnnounce is the supervisor half of the WhoSupervises handshake: the
// envelope's topic is owned by supervisor Owner at ownership epoch Epoch.
// Sent to subscribers by a deposed owner handing its topics over, and by
// any supervisor answering a request for a topic it does not own.
type OwnerAnnounce struct {
	Owner sim.NodeID
	Epoch uint64
}

// TopicEpoch pairs a topic with the highest ownership epoch the sender has
// observed for it.
type TopicEpoch struct {
	Topic sim.Topic
	Epoch uint64
}

// PlaneGossip is the supervisor-to-supervisor heartbeat payload: the
// sender's hosted topics with their current ownership epochs. Peers learn
// which topics exist (so they can adopt orphans of a crashed owner they
// never served themselves) and how far the epoch counter has advanced (so
// an adoption starts at a fresh era). The envelope's topic field is
// unused: one gossip message covers many topics.
type PlaneGossip struct {
	Entries []TopicEpoch
}

// ---- directory replication (warm-replica supervisor failover) ----
//
// With ReplicationFactor > 0 every topic owner continuously replicates its
// (label, subscriber) database to the topic's hashdht successors, so an
// adopting successor starts from a warm replica instead of an empty
// database and the Reregister rebuild demotes to the fallback repair path.
// Replication itself is self-stabilizing: deltas are fire-and-forget (no
// logs, no acknowledgements), and a periodic anti-entropy digest exchange
// detects any divergence — lost deltas, reordered updates, arbitrary
// replica corruption — and repairs it with a bounded-chunk full sync.

// ReplicaEntry is one (label, subscriber) tuple of a replicated topic
// directory.
type ReplicaEntry struct {
	L label.Label
	V sim.NodeID
}

// ReplicaDelta streams a bounded batch of directory mutations (label
// assignments/replacements in Put, releases in Del) from a topic's owner to
// a replica holder. Epoch is the owner's current ownership era; replicas
// ignore deltas from older eras, which makes a deposed owner's stream
// harmless. Delivery is best-effort — anti-entropy repairs any gap.
type ReplicaDelta struct {
	Epoch uint64
	Put   []ReplicaEntry
	Del   []label.Label
	// Mode is the topic's delivery mode (an ordering.Mode value), carried
	// so replicas adopt it along with the directory.
	Mode uint8
}

// ReplicaDigest is the anti-entropy exchange. With Probe set it is the
// owner's periodic push of its database root digest (an order-independent
// fold of per-entry hashes, same 16-byte truncated-SHA-256 construction as
// the trie's structural hash); the replica compares and answers — Probe
// clear, carrying its own digest — only on mismatch, which makes the
// steady state silent. An owner receiving a mismatching answer ships a
// bounded-chunk ReplicaSync.
type ReplicaDigest struct {
	Probe bool
	Epoch uint64
	Count uint64
	Hash  [16]byte
	// Mode is the topic's delivery mode (an ordering.Mode value).
	Mode uint8
}

// ReplicaSync is one bounded chunk of a full directory sync: chunk Seq of
// Chunks total, for sync round Round at ownership era Epoch. The replica
// stages chunks (chunks of an older round or era are dropped, duplicates
// are idempotent) and atomically replaces its replica when the round is
// complete — so an arbitrarily corrupted replica converges to the owner's
// state without any unbounded log.
type ReplicaSync struct {
	Epoch   uint64
	Round   uint64
	Seq     uint64
	Chunks  uint64
	Entries []ReplicaEntry
	// Mode is the topic's delivery mode (an ordering.Mode value).
	Mode uint8
}

// ---- deterministic token-passing variant (paper's conclusion) ----

// Token is the circulating refresh of the token-passing supervisor
// variant: instead of a (label, subscriber) database and randomized
// probes, a token walks the ring in r-order and deterministically
// re-derives every subscriber's label from its position. Pos is the
// receiver's position; Prev the previous position's tuple; First the
// position-0 tuple (filled in by the first receiver, used for the ring
// closure); Pending carries not-yet-spliced joiners with their assigned
// labels; NextHop tells a freshly spliced joiner where to forward.
type Token struct {
	Epoch   uint64
	N       uint64
	Pos     uint64
	Prev    Tuple
	First   Tuple
	Pending []Tuple
	NextHop Tuple
}

// TokenReturn reports a completed (or broken) token pass back to the
// supervisor.
type TokenReturn struct {
	Epoch    uint64
	Complete bool
	First    Tuple
	Last     Tuple
}

// Register is the token-mode staleness report: a subscriber that has not
// seen a token for a while reports itself (with its current label) so the
// supervisor can rebuild from live members after token loss.
type Register struct {
	V     sim.NodeID
	Label label.Label
}
