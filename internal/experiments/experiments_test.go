package experiments

import (
	"strings"
	"testing"
)

func TestE1Figure1(t *testing.T) {
	res := E1Figure1()
	if res.ByLevel[4] != 16 || res.ByLevel[3] != 8 || res.ByLevel[2] != 4 || res.ByLevel[1] != 1 {
		t.Errorf("edge census = %v", res.ByLevel)
	}
	if !strings.Contains(res.Triples.String(), "0011") {
		t.Error("triples table missing label 0011")
	}
}

func TestE2DegreeBounds(t *testing.T) {
	rows, _ := E2Degree([]int{16, 64, 256})
	for _, r := range rows {
		if r.MaxDegree > r.Bound {
			t.Errorf("n=%d: max degree %d exceeds Lemma 3 bound %d", r.N, r.MaxDegree, r.Bound)
		}
		if r.AvgDegree > 4 {
			t.Errorf("n=%d: avg degree %.2f > 4", r.N, r.AvgDegree)
		}
		if r.Diameter > r.CeilLogN+1 {
			t.Errorf("n=%d: diameter %d > log n + 1", r.N, r.Diameter)
		}
	}
}

func TestE3RateIsConstant(t *testing.T) {
	rows, _ := E3ConfigRate([]int{16, 64}, 400, 7)
	for _, r := range rows {
		if r.PerRound > 2.0 {
			t.Errorf("n=%d: request rate %.3f not O(1)", r.N, r.PerRound)
		}
		// Measured rate should track the prediction within noise.
		if r.PerRound < r.Predicted*0.5 || r.PerRound > r.Predicted*1.6 {
			t.Errorf("n=%d: rate %.3f vs predicted %.3f", r.N, r.PerRound, r.Predicted)
		}
	}
	// Independence of n: the two rates differ by less than 0.5.
	if d := rows[0].PerRound - rows[1].PerRound; d > 0.5 || d < -0.5 {
		t.Errorf("rate grows with n: %.3f vs %.3f", rows[0].PerRound, rows[1].PerRound)
	}
}

func TestE4ConstantOverhead(t *testing.T) {
	// The marginal measurement subtracts a statistically estimated
	// background rate, so individual runs are noisy; the claim under test
	// is O(1) — a small constant that does not scale with n (compare
	// n = 8 here against the supervisor's Θ(n) database size).
	res, _ := E4Overhead(8, 6, 11)
	if res.SupMsgsPerJoin < -1 || res.SupMsgsPerJoin > 8 {
		t.Errorf("marginal supervisor msgs per join = %.2f, not constant-ish", res.SupMsgsPerJoin)
	}
	if res.SupMsgsPerLeave < -1 || res.SupMsgsPerLeave > 10 {
		t.Errorf("marginal supervisor msgs per leave = %.2f", res.SupMsgsPerLeave)
	}
}

func TestE5AllScenariosConverge(t *testing.T) {
	rows, _ := E5Convergence([]int{8, 16}, 2, 900)
	for _, r := range rows {
		if r.Failures > 0 {
			t.Errorf("%s n=%d: %d failures", r.Scenario, r.N, r.Failures)
		}
	}
}

func TestE6ClosureZeroMutations(t *testing.T) {
	res, _ := E6Closure(16, 150, 13)
	if res.Mutations != 0 {
		t.Errorf("closure violated: %d mutations", res.Mutations)
	}
	if res.MsgsPerNodeRnd > 8 {
		t.Errorf("steady-state message rate %.2f per node per round", res.MsgsPerNodeRnd)
	}
	// Expected: 1 round-robin refresh plus ≈1.07 replies to Theorem-5
	// probes ≈ 2.1 messages per round, independent of n.
	if res.SupMsgsPerRound > 3 {
		t.Errorf("supervisor sends %.2f msgs/round, want ≈ 2.1", res.SupMsgsPerRound)
	}
}

func TestE7AntiEntropyConverges(t *testing.T) {
	rows, _ := E7PublicationConvergence([]int{8}, 6, 17)
	for _, r := range rows {
		if !r.OK {
			t.Errorf("n=%d: anti-entropy never converged", r.N)
		}
	}
}

func TestE8FloodingLogarithmic(t *testing.T) {
	rows, _ := E8Flooding([]int{16, 64}, 19)
	for _, r := range rows {
		if r.SkipRingHops > r.CeilLogN {
			t.Errorf("n=%d: flood depth %d > ⌈log n⌉+1 = %d", r.N, r.SkipRingHops, r.CeilLogN)
		}
		if r.RingHops != r.N/2 {
			t.Errorf("n=%d: ring depth %d, want %d", r.N, r.RingHops, r.N/2)
		}
		if r.LiveRounds <= 0 || r.LiveRounds > 10 {
			t.Errorf("n=%d: live flooding took %d rounds", r.N, r.LiveRounds)
		}
	}
}

func TestE9Figure2Trace(t *testing.T) {
	res := E9Figure2()
	if !res.P4Delivered || !res.TriesEqual {
		t.Fatalf("P4 delivered=%v equal=%v", res.P4Delivered, res.TriesEqual)
	}
	// First direction: exactly two messages (probe + one reply).
	if len(res.TraceUtoV) != 2 {
		t.Errorf("u→v trace = %v", res.TraceUtoV)
	}
	// Second direction: probe, children, CheckAndPublish(p=101), Publish(P101).
	want := []string{"CheckTrie(⊥)", "CheckTrie(0, 10)", "CheckAndPublish(nodes=[100], p=101)", "Publish(P101)"}
	if len(res.TraceVtoU) != 4 {
		t.Fatalf("v→u trace = %v", res.TraceVtoU)
	}
	for i, w := range want {
		if !strings.Contains(res.TraceVtoU[i], w) {
			t.Errorf("trace[%d] = %s, want …%s", i, res.TraceVtoU[i], w)
		}
	}
}

func TestE10Tables(t *testing.T) {
	res := E10Balance(128, 20000, 2000, 5)
	for _, tb := range []string{res.Position.String(), res.Degrees.String(), res.Routing.String()} {
		if !strings.Contains(tb, "skip-ring") || !strings.Contains(tb, "chord") {
			t.Errorf("table missing overlays:\n%s", tb)
		}
	}
}

func TestE11JoinLocality(t *testing.T) {
	res, _ := E11JoinLocality(8, 23)
	// Every pre-existing node's configuration changes at most a few times
	// while n doubles; the paper predicts exactly 2 (plus the ring-closure
	// handover at the extremes).
	if res.MaxConfigChanges > 4 {
		t.Errorf("max config changes per node = %d during doubling", res.MaxConfigChanges)
	}
	if res.AvgConfigChanges > 3 {
		t.Errorf("avg config changes = %.2f", res.AvgConfigChanges)
	}
}

func TestE12CrashRecovery(t *testing.T) {
	rows, _ := E12CrashRecovery(16, []float64{0.25}, 29)
	for _, r := range rows {
		if !r.OK {
			t.Errorf("crash recovery failed for %d crashes", r.Crashed)
		}
	}
}

func TestE13BrokerComparison(t *testing.T) {
	res, _ := E13SupervisorVsBroker(16, 20, 37)
	if res.BrokerPerPublish < float64(res.N)*0.8 {
		t.Errorf("broker per-publish = %.1f, want ≈ n−1", res.BrokerPerPublish)
	}
	if res.SupPerPublish > 2 {
		t.Errorf("supervisor per-publish = %.1f, want ≈ 0 (only round-robin refresh)", res.SupPerPublish)
	}
}

func TestAblations(t *testing.T) {
	if tb := AblationActionIV(8, 1, 41); !strings.Contains(tb.String(), "enabled") {
		t.Error("action (iv) ablation table malformed")
	}
	if tb := AblationFlooding(16, 43); !strings.Contains(tb.String(), "anti-entropy only") {
		t.Error("flooding ablation table malformed")
	}
	if tb := AblationProbeSchedule(8, 47); !strings.Contains(tb.String(), "paper") {
		t.Error("probe ablation table malformed")
	}
}

func TestA4TokenVsDatabase(t *testing.T) {
	tb := A4TokenVsDatabase(16, 51)
	out := tb.String()
	if !strings.Contains(out, "database") || !strings.Contains(out, "token ring") {
		t.Fatalf("table malformed:\n%s", out)
	}
	if strings.Contains(out, "-1") {
		t.Fatalf("a mode failed to converge:\n%s", out)
	}
	t.Logf("\n%s", out)
}
