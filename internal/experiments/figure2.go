package experiments

import (
	"fmt"
	"strings"

	"sspubsub/internal/proto"
	"sspubsub/internal/pubsub"
	"sspubsub/internal/sim"
	"sspubsub/internal/simtest"
	"sspubsub/internal/trie"
)

// E9Result carries the Figure 2 reconstruction: the two tries, the message
// trace of both probe directions, and whether P4 was delivered.
type E9Result struct {
	TrieU       string
	TrieV       string
	TraceUtoV   []string
	TraceVtoU   []string
	P4Delivered bool
	TriesEqual  bool
}

// E9Figure2 re-enacts the running example of Section 4.2 (Figure 2):
// subscriber u stores P1=000, P2=010, P3=100, P4=101; subscriber v lacks
// P4. Probing u→v ends after one reply; probing v→u walks down to the
// missing node "10", requests prefix 101 via CheckAndPublish, and u
// delivers P4.
func E9Figure2() E9Result {
	mk := func(self, peer sim.NodeID) *pubsub.Engine {
		return pubsub.NewEngine(pubsub.Config{
			Self: self, Topic: Topic, KeyLen: 3,
			RingNeighbors: func() []proto.Tuple { return []proto.Tuple{{Ref: peer}} },
			FloodTargets:  func() []sim.NodeID { return []sim.NodeID{peer} },
		})
	}
	u, v := mk(10, 11), mk(11, 10)
	uc, vc := simtest.NewCtx(10), simtest.NewCtx(11)
	seed := func(e *pubsub.Engine, keys ...string) {
		for _, k := range keys {
			e.OnMessage(simtest.NewCtx(99), sim.Message{From: 99, Topic: Topic, Body: proto.PublishBatch{
				Pubs: []proto.Publication{{Key: trie.ParseKey(k), Origin: 1, Payload: "P" + k}},
			}})
		}
	}
	seed(u, "000", "010", "100", "101")
	seed(v, "000", "010", "100")

	res := E9Result{TrieU: u.Trie().Dump(), TrieV: v.Trie().Dump()}

	run := func(first sim.Message) []string {
		var trace []string
		inbox := []sim.Message{first}
		for len(inbox) > 0 {
			m := inbox[0]
			inbox = inbox[1:]
			trace = append(trace, describe(m))
			switch m.To {
			case 10:
				u.OnMessage(uc, m)
				inbox = append(inbox, uc.Take()...)
			case 11:
				v.OnMessage(vc, m)
				inbox = append(inbox, vc.Take()...)
			}
		}
		return trace
	}

	rootU, _ := u.Trie().RootSummary()
	res.TraceUtoV = run(sim.Message{From: 10, To: 11, Topic: Topic,
		Body: proto.CheckTrie{Sender: 10, Nodes: []proto.NodeSummary{rootU}}})
	rootV, _ := v.Trie().RootSummary()
	res.TraceVtoU = run(sim.Message{From: 11, To: 10, Topic: Topic,
		Body: proto.CheckTrie{Sender: 11, Nodes: []proto.NodeSummary{rootV}}})

	_, res.P4Delivered = v.Trie().Get(trie.ParseKey("101"))
	res.TriesEqual = u.Trie().Equal(v.Trie())
	return res
}

func describe(m sim.Message) string {
	who := func(id sim.NodeID) string {
		if id == 10 {
			return "u"
		}
		return "v"
	}
	switch b := m.Body.(type) {
	case proto.CheckTrie:
		var labs []string
		for _, ns := range b.Nodes {
			labs = append(labs, trie.KeyString(ns.Label))
		}
		return fmt.Sprintf("%s→%s CheckTrie(%s)", who(m.From), who(m.To), strings.Join(labs, ", "))
	case proto.CheckAndPublish:
		var labs []string
		for _, ns := range b.Nodes {
			labs = append(labs, trie.KeyString(ns.Label))
		}
		return fmt.Sprintf("%s→%s CheckAndPublish(nodes=[%s], p=%s)",
			who(m.From), who(m.To), strings.Join(labs, ", "), trie.KeyString(b.Prefix))
	case proto.PublishBatch:
		var ps []string
		for _, p := range b.Pubs {
			ps = append(ps, p.Payload)
		}
		return fmt.Sprintf("%s→%s Publish(%s)", who(m.From), who(m.To), strings.Join(ps, ", "))
	default:
		return fmt.Sprintf("%s→%s %T", who(m.From), who(m.To), m.Body)
	}
}
