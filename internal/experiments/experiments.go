// Package experiments reproduces every quantitative artifact of the paper
// (figures, lemmas, theorems and comparative claims) as measurable
// experiments over the real protocol stack. Each experiment returns both a
// rendered table (printed by cmd/experiments and recorded in
// EXPERIMENTS.md) and structured results that the benchmark harness and
// tests assert on. The experiment IDs E1–E13 are indexed in DESIGN.md.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"sspubsub/internal/baseline"
	"sspubsub/internal/cluster"
	"sspubsub/internal/core"
	"sspubsub/internal/metrics"
	"sspubsub/internal/sim"
	"sspubsub/internal/topology"
)

// Topic is the single topic used by the dynamic experiments.
const Topic sim.Topic = 1

// ---- E1: Figure 1 — the SR(16) topology ----

// E1Result carries the SR(16) construction.
type E1Result struct {
	Triples *metrics.Table // (x, l(x), r(l(x))) as printed in Figure 1
	Edges   *metrics.Table // edge census by level
	ByLevel map[uint8]int
}

// E1Figure1 reconstructs Figure 1: the sixteen label triples and the edge
// sets per level (16 ring, 8 green, 4 red, 1 blue).
func E1Figure1() E1Result {
	r := topology.New(16)
	triples := metrics.NewTable("x", "l(x)", "r(l(x))")
	for x := 0; x < 16; x++ {
		l := r.Label(x)
		triples.AddRow(x, l.String(), fmt.Sprintf("%d/16", int(l.Real()*16)))
	}
	byLevel := map[uint8]int{}
	for _, lvl := range r.Edges() {
		byLevel[lvl]++
	}
	edges := metrics.NewTable("level", "edges", "paper (Figure 1)")
	paper := map[uint8]string{4: "16 ring (black)", 3: "8 shortcuts (green)", 2: "4 shortcuts (red)", 1: "1 shortcut (blue)"}
	for lvl := uint8(4); lvl >= 1; lvl-- {
		edges.AddRow(int(lvl), byLevel[lvl], paper[lvl])
	}
	return E1Result{Triples: triples, Edges: edges, ByLevel: byLevel}
}

// ---- E2: Lemma 3 — degree and edge-count bounds ----

// E2Row is one measured size.
type E2Row struct {
	N             int
	MaxDegree     int
	Bound         int // 2·⌈log n⌉ (Lemma 3's worst case)
	AvgDegree     float64
	DirectedEdges int
	Paper4N4      int
	Diameter      int
	CeilLogN      int
}

// E2Degree measures Lemma 3 over a size sweep.
func E2Degree(ns []int) ([]E2Row, *metrics.Table) {
	tb := metrics.NewTable("n", "max deg", "2·⌈log n⌉", "avg deg", "|E| directed", "paper 4n−4", "diameter", "⌈log n⌉")
	var rows []E2Row
	for _, n := range ns {
		r := topology.New(n)
		st := r.Stats()
		logn := int(math.Ceil(math.Log2(float64(n))))
		row := E2Row{
			N: n, MaxDegree: st.MaxDegree, Bound: 2 * logn,
			AvgDegree: st.AvgDegree, DirectedEdges: st.Directed,
			Paper4N4: st.PaperDirected, Diameter: r.Diameter(), CeilLogN: logn,
		}
		rows = append(rows, row)
		tb.AddRow(n, row.MaxDegree, row.Bound, row.AvgDegree, row.DirectedEdges, row.Paper4N4, row.Diameter, logn)
	}
	return rows, tb
}

// ---- E3: Theorem 5 — configuration-request rate in a legitimate state ----

// E3Row is one measured size.
type E3Row struct {
	N         int
	Rounds    int
	Requests  int64
	PerRound  float64
	Predicted float64 // Σ_k f(k)/(2^k·k²) with f(1)=2, f(k)=2^{k−1}
}

// E3ConfigRate converges a ring of each size, then counts GetConfiguration
// messages per timeout interval over a long steady-state window.
func E3ConfigRate(ns []int, rounds int, seed int64) ([]E3Row, *metrics.Table) {
	tb := metrics.NewTable("n", "rounds", "requests", "per round", "predicted Σ", "paper claim")
	var rows []E3Row
	for _, n := range ns {
		c := mustConverge(n, seed+int64(n))
		c.Sched.ResetCounters()
		c.Sched.RunRounds(rounds)
		req := c.Sched.CountByType("proto.GetConfiguration")
		row := E3Row{
			N: n, Rounds: rounds, Requests: req,
			PerRound:  float64(req) / float64(rounds),
			Predicted: predictedRate(n),
		}
		rows = append(rows, row)
		tb.AddRow(n, rounds, req, row.PerRound, row.Predicted, "< 1 (Thm 5)")
	}
	return rows, tb
}

// predictedRate computes Σ over label lengths of f(k)·1/(2^k·k²) for the
// actual label population of SR(n): f(1)=2 and f(k)=2^{k−1} (truncated at
// the partially-filled top level). The paper's Theorem 5 uses f(k)=2^{k−1}
// for all k and reports < 1; with the real f(1)=2 the exact expectation is
// ≈ 1.07 — same O(1) shape, documented in EXPERIMENTS.md.
func predictedRate(n int) float64 {
	counts := map[int]int{}
	r := topology.New(n)
	for x := 0; x < n; x++ {
		counts[int(r.Label(x).Len)]++
	}
	sum := 0.0
	for k, f := range counts {
		sum += float64(f) / (math.Pow(2, float64(k)) * float64(k) * float64(k))
	}
	return sum
}

// ---- E4: Theorem 7 — subscribe/unsubscribe message overhead ----

// E4Result aggregates the per-operation supervisor message counts.
type E4Result struct {
	N                 int
	Joins             int
	SupMsgsPerJoin    float64
	Leaves            int
	SupMsgsPerLeave   float64
	SubscriberPerJoin float64 // messages sent by the joiner until converged
}

// E4Overhead joins and removes nodes one at a time from a legitimate state
// and counts the supervisor's *marginal* messages per operation: total
// supervisor sends during the operation window minus the steady-state
// background (one round-robin refresh per round plus replies to the
// Theorem-5 probes), measured on the same cluster beforehand.
func E4Overhead(n, ops int, seed int64) (E4Result, *metrics.Table) {
	c := mustConverge(n, seed)
	res := E4Result{N: n, Joins: ops, Leaves: ops}

	// Background supervisor rate per round in the legitimate state.
	const bgWindow = 300
	startSends := c.Sched.SentBy(cluster.SupervisorID)
	startNow := c.Sched.Now()
	c.Sched.RunRounds(bgWindow)
	bgRate := float64(c.Sched.SentBy(cluster.SupervisorID)-startSends) / (c.Sched.Now() - startNow)

	marginal := func(op func() (newN int)) float64 {
		var total float64
		for i := 0; i < ops; i++ {
			before := c.Sched.SentBy(cluster.SupervisorID)
			beforeNow := c.Sched.Now()
			newN := op()
			if _, ok := c.RunUntilConverged(Topic, newN, 2000); !ok {
				return -1
			}
			sends := float64(c.Sched.SentBy(cluster.SupervisorID) - before)
			total += sends - bgRate*(c.Sched.Now()-beforeNow)
		}
		return total / float64(ops)
	}

	cur := n
	var joiners []sim.NodeID
	res.SupMsgsPerJoin = marginal(func() int {
		id := c.AddClient()
		joiners = append(joiners, id)
		c.Join(id, Topic)
		cur++
		return cur
	})
	var subJoin int64
	for _, id := range joiners {
		subJoin += c.Sched.SentBy(id)
	}
	// Joiner messages include their share of steady-state maintenance after
	// integration; still O(1) per op at this scale.
	res.SubscriberPerJoin = float64(subJoin) / float64(ops)
	res.SupMsgsPerLeave = marginal(func() int {
		members := c.Members(Topic)
		c.Leave(members[cur%len(members)], Topic)
		cur--
		return cur
	})
	tb := metrics.NewTable("op", "count", "supervisor msgs/op (marginal)", "paper claim")
	tb.AddRow("subscribe", ops, res.SupMsgsPerJoin, "O(1) (Thm 7)")
	tb.AddRow("unsubscribe", ops, res.SupMsgsPerLeave, "O(1) (Thm 7)")
	return res, tb
}

// ---- E5: Theorem 8 — convergence from arbitrary initial states ----

// E5Scenario names an initial-state generator.
type E5Scenario string

// The five initial-state families of the convergence experiment.
const (
	ScenarioFresh      E5Scenario = "fresh-join-burst"
	ScenarioCorrupt    E5Scenario = "corrupted-states"
	ScenarioPartition  E5Scenario = "partitioned"
	ScenarioBadDB      E5Scenario = "corrupted-database"
	ScenarioGarbageMsg E5Scenario = "garbage-channels"
)

// AllScenarios lists the E5 initial states in presentation order.
var AllScenarios = []E5Scenario{ScenarioFresh, ScenarioCorrupt, ScenarioPartition, ScenarioBadDB, ScenarioGarbageMsg}

// E5Row is one (scenario, n) measurement averaged over seeds.
type E5Row struct {
	Scenario  E5Scenario
	N         int
	Seeds     int
	AvgRounds float64
	MaxRounds int
	Failures  int
}

// E5Convergence measures rounds-to-legitimacy per scenario and size.
func E5Convergence(ns []int, seeds int, base int64) ([]E5Row, *metrics.Table) {
	tb := metrics.NewTable("scenario", "n", "seeds", "avg rounds", "max rounds", "failures")
	var rows []E5Row
	for _, sc := range AllScenarios {
		for _, n := range ns {
			row := E5Row{Scenario: sc, N: n, Seeds: seeds}
			total := 0
			for s := 0; s < seeds; s++ {
				rounds, ok := runScenario(sc, n, base+int64(s)+int64(n)*31)
				if !ok {
					row.Failures++
					continue
				}
				total += rounds
				if rounds > row.MaxRounds {
					row.MaxRounds = rounds
				}
			}
			if seeds > row.Failures {
				row.AvgRounds = float64(total) / float64(seeds-row.Failures)
			}
			rows = append(rows, row)
			tb.AddRow(string(sc), n, seeds, row.AvgRounds, row.MaxRounds, row.Failures)
		}
	}
	return rows, tb
}

func runScenario(sc E5Scenario, n int, seed int64) (int, bool) {
	if sc == ScenarioFresh {
		c := cluster.New(cluster.Options{Seed: seed})
		c.AddClients(n)
		c.JoinAll(Topic)
		return c.RunUntilConverged(Topic, n, 5000)
	}
	c := mustConverge(n, seed)
	switch sc {
	case ScenarioCorrupt:
		c.CorruptSubscriberStates(Topic)
	case ScenarioPartition:
		c.PartitionStates(Topic, 2+int(seed%3))
	case ScenarioBadDB:
		c.CorruptSupervisorDB(Topic)
	case ScenarioGarbageMsg:
		c.InjectGarbageMessages(Topic, 5*n)
	}
	return c.RunUntilConverged(Topic, n, 20000)
}

// ---- E6: Theorem 13 — closure and steady-state maintenance cost ----

// E6Result aggregates the closure experiment.
type E6Result struct {
	N               int
	Rounds          int
	Mutations       int // explicit-state changes after convergence (must be 0)
	MsgsPerNodeRnd  float64
	SupMsgsPerRound float64
}

// E6Closure verifies that a converged system never mutates explicit state
// and measures the steady-state message rate per node per round.
func E6Closure(n, rounds int, seed int64) (E6Result, *metrics.Table) {
	c := mustConverge(n, seed)
	versions := map[sim.NodeID]uint64{}
	for id, cl := range c.Clients {
		st, _ := cl.StateOf(Topic)
		versions[id] = st.Version
	}
	c.Sched.ResetCounters()
	c.Sched.RunRounds(rounds)
	res := E6Result{N: n, Rounds: rounds}
	for id, cl := range c.Clients {
		st, _ := cl.StateOf(Topic)
		res.Mutations += int(st.Version - versions[id])
	}
	res.MsgsPerNodeRnd = float64(c.Sched.Delivered()) / float64(rounds) / float64(n)
	res.SupMsgsPerRound = float64(c.Sched.SentBy(cluster.SupervisorID)) / float64(rounds)
	tb := metrics.NewTable("n", "rounds", "state mutations", "msgs/node/round", "supervisor msgs/round")
	tb.AddRow(n, rounds, res.Mutations, res.MsgsPerNodeRnd, res.SupMsgsPerRound)
	return res, tb
}

// ---- E7: Theorem 17 — publication convergence via anti-entropy ----

// E7Row is one (n, pubs) measurement.
type E7Row struct {
	N      int
	Pubs   int
	Rounds int
	OK     bool
}

// E7PublicationConvergence seeds publications at random members with
// flooding disabled and measures rounds until all tries are hash-equal.
func E7PublicationConvergence(ns []int, pubs int, seed int64) ([]E7Row, *metrics.Table) {
	tb := metrics.NewTable("n", "publications", "rounds to equal tries", "converged")
	var rows []E7Row
	for _, n := range ns {
		c := cluster.New(cluster.Options{
			Seed:       seed + int64(n),
			ClientOpts: core.Options{DisableFlooding: true},
		})
		c.AddClients(n)
		c.JoinAll(Topic)
		if _, ok := c.RunUntilConverged(Topic, n, 2000); !ok {
			rows = append(rows, E7Row{N: n, Pubs: pubs})
			tb.AddRow(n, pubs, -1, false)
			continue
		}
		members := c.Members(Topic)
		rng := c.Sched.Rand()
		for i := 0; i < pubs; i++ {
			c.Publish(members[rng.Intn(len(members))], Topic, fmt.Sprintf("pub-%d", i))
		}
		rounds, ok := c.Sched.RunRoundsUntil(20000, func() bool {
			return c.AllHavePubs(Topic, pubs) && c.TriesEqual(Topic)
		})
		rows = append(rows, E7Row{N: n, Pubs: pubs, Rounds: rounds, OK: ok})
		tb.AddRow(n, pubs, rounds, ok)
	}
	return rows, tb
}

// ---- E8: Section 4.3 — flooding delivery hops vs ring-only routing ----

// E8Row is one size point.
type E8Row struct {
	N            int
	SkipRingHops int
	CeilLogN     int
	RingHops     int
	LiveRounds   int // rounds until all members hold a fresh publication
}

// E8Flooding compares worst-case delivery hops on the static graphs and
// measures live flooding latency in protocol rounds.
func E8Flooding(ns []int, seed int64) ([]E8Row, *metrics.Table) {
	tb := metrics.NewTable("n", "skip-ring hops", "⌈log n⌉+1", "ring-only hops", "live rounds")
	var rows []E8Row
	for _, n := range ns {
		sr := baseline.NewSkipRing(n)
		hist := baseline.FloodHops(sr, 0)
		ring := baseline.NewRing(n)
		rhist := baseline.FloodHops(ring, 0)
		row := E8Row{
			N:            n,
			SkipRingHops: len(hist) - 1,
			CeilLogN:     int(math.Ceil(math.Log2(float64(n)))) + 1,
			RingHops:     len(rhist) - 1,
		}
		// Live: publish once in a converged system, count rounds to full
		// dissemination (flooding enabled, anti-entropy disabled so the
		// measurement isolates PublishNew).
		c := cluster.New(cluster.Options{
			Seed:       seed + int64(n),
			ClientOpts: core.Options{DisableAntiEntropy: true},
		})
		c.AddClients(n)
		c.JoinAll(Topic)
		if _, ok := c.RunUntilConverged(Topic, n, 2000); ok {
			members := c.Members(Topic)
			c.Publish(members[0], Topic, "flood")
			rounds, _ := c.Sched.RunRoundsUntil(200, func() bool { return c.AllHavePubs(Topic, 1) })
			row.LiveRounds = rounds
		}
		rows = append(rows, row)
		tb.AddRow(n, row.SkipRingHops, row.CeilLogN, row.RingHops, row.LiveRounds)
	}
	return rows, tb
}

// ---- E10: Section 1.3 — balance against Chord and skip graphs ----

// E10Result carries the three balance/congestion tables.
type E10Result struct {
	Position *metrics.Table
	Degrees  *metrics.Table
	Routing  *metrics.Table
}

// E10Balance measures (a) position balance — the literal claim, (b) degree
// statistics, (c) greedy routing load (informational; the skip ring is a
// broadcast topology and loses this one, see EXPERIMENTS.md).
func E10Balance(n, keys, routes int, seed int64) E10Result {
	rng := rand.New(rand.NewSource(seed))
	sr := baseline.NewSkipRing(n)
	ch := baseline.NewChord(n, rng)
	sg := baseline.NewSkipGraph(n, rng)
	ro := baseline.NewRing(n)

	pos := metrics.NewTable("overlay", "max/avg key load", "max gap (× uniform)")
	srp := baseline.KeyLoad("skip-ring", sr.Positions(), keys, rand.New(rand.NewSource(seed)))
	chp := baseline.KeyLoad("chord", ch.Positions(), keys, rand.New(rand.NewSource(seed)))
	pos.AddRow(srp.Overlay, srp.MaxOverAvg, srp.MaxGap)
	pos.AddRow(chp.Overlay, chp.MaxOverAvg, chp.MaxGap)

	deg := metrics.NewTable("overlay", "max degree", "avg degree", "p99", "stddev")
	for _, o := range []baseline.Overlay{sr, ch, sg, ro} {
		b := baseline.Balance(o)
		deg.AddRow(b.Overlay, b.MaxDegree, b.AvgDegree, b.P99, b.StdDev)
	}

	rt := metrics.NewTable("overlay", "delivered", "max node load", "avg load", "avg hops")
	for _, o := range []baseline.Overlay{sr, ch, sg, ro} {
		r := baseline.Congestion(o, routes, rand.New(rand.NewSource(seed+1)))
		rt.AddRow(r.Overlay, r.Delivered, r.MaxLoad, r.AvgLoad, r.AvgHops)
	}
	return E10Result{Position: pos, Degrees: deg, Routing: rt}
}

// ---- E11: Section 4.1 — join locality ----

// E11Result aggregates the doubling experiment.
type E11Result struct {
	StartN           int
	Joins            int
	AvgConfigChanges float64 // per pre-existing node over the doubling
	MaxConfigChanges int
}

// E11JoinLocality doubles the ring size one join at a time and counts, per
// pre-existing subscriber, how many joins changed its configuration
// (label, left, right or ring — not shortcuts). The paper predicts exactly
// 2 per doubling ("a pre-existing subscriber is involved only for two
// consecutive subscribe operations").
func E11JoinLocality(startN int, seed int64) (E11Result, *metrics.Table) {
	c := mustConverge(startN, seed)
	type cfg struct {
		lab               string
		left, right, ring sim.NodeID
	}
	snap := func(id sim.NodeID) cfg {
		st, _ := c.Clients[id].StateOf(Topic)
		return cfg{st.Label.String(), st.Left.Ref, st.Right.Ref, st.Ring.Ref}
	}
	pre := c.Members(Topic)
	last := map[sim.NodeID]cfg{}
	changes := map[sim.NodeID]int{}
	for _, id := range pre {
		last[id] = snap(id)
	}
	cur := startN
	for i := 0; i < startN; i++ {
		id := c.AddClient()
		c.Join(id, Topic)
		cur++
		if _, ok := c.RunUntilConverged(Topic, cur, 2000); !ok {
			break
		}
		for _, p := range pre {
			if now := snap(p); now != last[p] {
				changes[p]++
				last[p] = now
			}
		}
	}
	res := E11Result{StartN: startN, Joins: startN}
	total := 0
	for _, p := range pre {
		total += changes[p]
		if changes[p] > res.MaxConfigChanges {
			res.MaxConfigChanges = changes[p]
		}
	}
	res.AvgConfigChanges = float64(total) / float64(len(pre))
	tb := metrics.NewTable("start n", "joins", "avg config changes/node", "max", "paper")
	tb.AddRow(startN, startN, res.AvgConfigChanges, res.MaxConfigChanges, "2 per doubling")
	return res, tb
}

// ---- E12: Section 3.3 — crash recovery ----

// E12Row is one crash fraction.
type E12Row struct {
	N       int
	Crashed int
	Rounds  int
	OK      bool
}

// E12CrashRecovery crashes a fraction of a converged ring and measures the
// rounds until the survivors form the legitimate SR(n−f).
func E12CrashRecovery(n int, fracs []float64, seed int64) ([]E12Row, *metrics.Table) {
	tb := metrics.NewTable("n", "crashed", "rounds to re-converge", "ok")
	var rows []E12Row
	for _, f := range fracs {
		c := mustConverge(n, seed+int64(f*100))
		members := c.Members(Topic)
		crash := int(f * float64(n))
		for i := 0; i < crash; i++ {
			c.Crash(members[i*len(members)/max(crash, 1)])
		}
		rounds, ok := c.RunUntilConverged(Topic, n-crash, 20000)
		rows = append(rows, E12Row{N: n, Crashed: crash, Rounds: rounds, OK: ok})
		tb.AddRow(n, crash, rounds, ok)
	}
	return rows, tb
}

// ---- E13: supervisor load vs centralized broker ----

// E13Result compares central-component load for the same workload.
type E13Result struct {
	N                int
	Pubs             int
	SupervisorMsgs   int64 // messages sent by the supervisor
	BrokerMsgs       int64 // messages sent by the broker
	SupPerPublish    float64
	BrokerPerPublish float64
}

// E13SupervisorVsBroker runs the same subscribe-then-publish workload on
// both architectures and compares the central component's message count.
func E13SupervisorVsBroker(n, pubs int, seed int64) (E13Result, *metrics.Table) {
	// Supervised system.
	c := mustConverge(n, seed)
	c.Sched.ResetCounters()
	members := c.Members(Topic)
	rng := c.Sched.Rand()
	for i := 0; i < pubs; i++ {
		c.Publish(members[rng.Intn(len(members))], Topic, fmt.Sprintf("p%d", i))
	}
	c.Sched.RunRoundsUntil(2000, func() bool { return c.AllHavePubs(Topic, pubs) })
	supMsgs := c.Sched.SentBy(cluster.SupervisorID)

	// Broker system.
	s := sim.NewScheduler(sim.SchedulerOptions{Seed: seed})
	broker := baseline.NewBroker()
	s.AddNode(1, broker)
	for i := 0; i < n; i++ {
		s.AddNode(sim.NodeID(i+2), &baseline.BrokerClient{})
		s.Send(sim.Message{To: 1, From: sim.NodeID(i + 2), Topic: Topic, Body: baseline.BSubscribe{}})
	}
	s.RunRounds(2)
	s.ResetCounters()
	for i := 0; i < pubs; i++ {
		pub := sim.NodeID(s.Rand().Intn(n) + 2)
		s.Send(sim.Message{To: 1, From: pub, Topic: Topic, Body: baseline.BPublish{Payload: fmt.Sprintf("p%d", i)}})
	}
	s.RunRounds(3)
	brokerMsgs := s.SentBy(1)

	res := E13Result{
		N: n, Pubs: pubs,
		SupervisorMsgs: supMsgs, BrokerMsgs: brokerMsgs,
		SupPerPublish:    float64(supMsgs) / float64(pubs),
		BrokerPerPublish: float64(brokerMsgs) / float64(pubs),
	}
	tb := metrics.NewTable("architecture", "central msgs total", "central msgs/publish", "expected")
	tb.AddRow("supervised skip ring", supMsgs, res.SupPerPublish, "O(1)/round, 0/publish")
	tb.AddRow("central broker", brokerMsgs, res.BrokerPerPublish, "Θ(n)/publish")
	return res, tb
}

// ---- ablations ----

// AblationActionIV compares convergence from partitioned states with and
// without the locally-minimal probe (action (iv)).
func AblationActionIV(n, seeds int, base int64) *metrics.Table {
	tb := metrics.NewTable("action (iv)", "n", "avg rounds", "max", "failures (cap 20000)")
	for _, disable := range []bool{false, true} {
		total, maxR, fail := 0, 0, 0
		for s := 0; s < seeds; s++ {
			c := cluster.New(cluster.Options{
				Seed:       base + int64(s),
				ClientOpts: core.Options{DisableActionIV: disable},
			})
			c.AddClients(n)
			c.JoinAll(Topic)
			if _, ok := c.RunUntilConverged(Topic, n, 2000); !ok {
				fail++
				continue
			}
			c.PartitionStates(Topic, 2)
			rounds, ok := c.RunUntilConverged(Topic, n, 20000)
			if !ok {
				fail++
				continue
			}
			total += rounds
			if rounds > maxR {
				maxR = rounds
			}
		}
		avg := 0.0
		if seeds > fail {
			avg = float64(total) / float64(seeds-fail)
		}
		name := "enabled"
		if disable {
			name = "disabled"
		}
		tb.AddRow(name, n, avg, maxR, fail)
	}
	return tb
}

// AblationFlooding compares delivery latency (rounds until everyone holds a
// fresh publication) with flooding on versus anti-entropy only.
func AblationFlooding(n int, seed int64) *metrics.Table {
	tb := metrics.NewTable("mechanism", "n", "rounds to full delivery")
	for _, mode := range []string{"flooding+anti-entropy", "anti-entropy only"} {
		c := cluster.New(cluster.Options{
			Seed:       seed,
			ClientOpts: core.Options{DisableFlooding: mode == "anti-entropy only"},
		})
		c.AddClients(n)
		c.JoinAll(Topic)
		if _, ok := c.RunUntilConverged(Topic, n, 2000); !ok {
			tb.AddRow(mode, n, -1)
			continue
		}
		c.Publish(c.Members(Topic)[0], Topic, "x")
		rounds, _ := c.Sched.RunRoundsUntil(20000, func() bool { return c.AllHavePubs(Topic, 1) })
		tb.AddRow(mode, n, rounds)
	}
	return tb
}

// AblationProbeSchedule compares the paper's 1/(2^k·k²) probe schedule
// against a naive constant schedule: steady-state supervisor load versus
// re-integration speed of one silently deleted database entry.
func AblationProbeSchedule(n int, seed int64) *metrics.Table {
	tb := metrics.NewTable("schedule", "n", "requests/round (steady)", "rounds to re-record")
	schedules := []struct {
		name string
		f    func(k int) float64
	}{
		{"paper 1/(2^k·k²)", nil},
		{"constant 1/4", func(int) float64 { return 0.25 }},
	}
	for _, sch := range schedules {
		c := cluster.New(cluster.Options{
			Seed:       seed,
			ClientOpts: core.Options{ProbeProb: sch.f},
		})
		c.AddClients(n)
		c.JoinAll(Topic)
		if _, ok := c.RunUntilConverged(Topic, n, 2000); !ok {
			tb.AddRow(sch.name, n, -1, -1)
			continue
		}
		c.Sched.ResetCounters()
		c.Sched.RunRounds(500)
		rate := float64(c.Sched.CountByType("proto.GetConfiguration")) / 500
		// Drop one entry from the database; the probes must re-record it.
		var victim sim.NodeID
		for l, v := range c.Sup.Snapshot(Topic) {
			victim = v
			c.Sup.DeleteLabel(Topic, l)
			_ = l
			break
		}
		rounds, ok := c.Sched.RunRoundsUntil(20000, func() bool {
			return c.Sup.LabelOf(Topic, victim).Len > 0 && c.ConvergedWith(Topic, n)
		})
		if !ok {
			rounds = -1
		}
		tb.AddRow(sch.name, n, rate, rounds)
	}
	return tb
}

// ---- shared helpers ----

// mustConverge builds a legitimate SR(n) cluster (panics on failure —
// experiment preconditions).
func mustConverge(n int, seed int64) *cluster.Cluster {
	c := cluster.New(cluster.Options{Seed: seed})
	c.AddClients(n)
	c.JoinAll(Topic)
	if _, ok := c.RunUntilConverged(Topic, n, 5000); !ok {
		panic(fmt.Sprintf("experiments: n=%d seed=%d did not converge: %s", n, seed, c.Explain(Topic)))
	}
	return c
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Banner renders a section header for the CLI output.
func Banner(id, title string) string {
	line := strings.Repeat("=", 72)
	return fmt.Sprintf("%s\n%s  %s\n%s\n", line, id, title, line)
}
