package experiments

import (
	"sspubsub/internal/cluster"
	"sspubsub/internal/core"
	"sspubsub/internal/label"
	"sspubsub/internal/metrics"
	"sspubsub/internal/sim"
	"sspubsub/internal/tokenring"
)

// A4TokenVsDatabase compares the paper's randomized database supervisor
// (Algorithm 3) with the deterministic token-passing variant of the
// conclusion, on the same join-burst workload: convergence time,
// steady-state supervisor traffic, and the supervisor's per-subscriber
// state (the token variant's selling point: O(1) instead of O(n)).
func A4TokenVsDatabase(n int, seed int64) *metrics.Table {
	tb := metrics.NewTable("supervisor", "n", "join-burst rounds", "steady sup msgs/round", "sup state", "randomized")

	// Database mode (the paper's main protocol).
	c := cluster.New(cluster.Options{Seed: seed})
	c.AddClients(n)
	c.JoinAll(Topic)
	dbRounds, ok := c.RunUntilConverged(Topic, n, 20000)
	if !ok {
		dbRounds = -1
	}
	c.Sched.ResetCounters()
	c.Sched.RunRounds(300)
	dbRate := float64(c.Sched.SentBy(cluster.SupervisorID)) / 300
	tb.AddRow("database (Alg. 3)", n, dbRounds, dbRate, "O(n) tuples", "yes (probes)")

	// Token mode (conclusion's future work).
	sched := sim.NewScheduler(sim.SchedulerOptions{Seed: seed})
	sup := tokenring.NewSupervisor(1)
	sched.AddNode(1, sup)
	nodes := map[sim.NodeID]*tokenring.Node{}
	for i := 0; i < n; i++ {
		id := sim.NodeID(i + 2)
		cl := core.NewClient(id, 1, core.Options{
			DisableActionIV: true,
			ProbeProb:       func(int) float64 { return 0 },
		})
		nd := tokenring.NewNode(cl, 1)
		nodes[id] = nd
		sched.AddNode(id, nd)
	}
	for id := range nodes {
		sched.Send(sim.Message{To: id, From: id, Topic: Topic, Body: core.JoinTopic{}})
	}
	legit := func() bool {
		states := make(map[sim.NodeID]core.State, n)
		db := make(map[label.Label]sim.NodeID, n)
		for id, nd := range nodes {
			if !nd.Client.Joined(Topic) {
				return false
			}
			st, _ := nd.Client.StateOf(Topic)
			states[id] = st
			if !st.Label.IsBottom() {
				db[st.Label] = id
			}
		}
		return len(db) == n && cluster.CheckLegitimacy(db, states) == ""
	}
	tokRounds, ok := sched.RunRoundsUntil(20000, legit)
	if !ok {
		tokRounds = -1
	}
	sched.ResetCounters()
	sched.RunRounds(300)
	tokRate := float64(sched.SentBy(1)) / 300
	tb.AddRow("token ring (concl.)", n, tokRounds, tokRate, "O(1) steady", "no")
	return tb
}
