package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sspubsub/internal/sim"
	"sspubsub/internal/simtest"
)

func overlays(n int, rng *rand.Rand) []Overlay {
	return []Overlay{
		NewSkipRing(n),
		NewChord(n, rng),
		NewSkipGraph(n, rng),
		NewRing(n),
	}
}

// Every overlay must deliver every route (greedy progress).
func TestRoutingDelivers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 5, 16, 64, 129} {
		for _, o := range overlays(n, rng) {
			for i := 0; i < 200; i++ {
				s, d := rng.Intn(n), rng.Intn(n)
				if _, ok := Route(o, s, d); !ok {
					t.Fatalf("%s n=%d: route %d→%d failed", o.Name(), n, s, d)
				}
			}
		}
	}
}

// Adjacency is symmetric and self-loop-free in all overlays.
func TestAdjacencySymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, o := range overlays(50, rng) {
		for x := 0; x < o.N(); x++ {
			for _, nb := range o.Neighbors(x) {
				if nb == x {
					t.Fatalf("%s: self-loop at %d", o.Name(), x)
				}
				found := false
				for _, back := range o.Neighbors(nb) {
					if back == x {
						found = true
					}
				}
				if !found {
					t.Fatalf("%s: edge %d→%d not symmetric", o.Name(), x, nb)
				}
			}
		}
	}
}

// Dilation: skip ring, Chord and skip graph route in O(log n); the plain
// ring needs Θ(n).
func TestDilationShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 256
	logn := math.Log2(n)
	for _, o := range overlays(n, rng) {
		res := Congestion(o, 2000, rand.New(rand.NewSource(7)))
		if res.Delivered < 1900 {
			t.Fatalf("%s: only %d/2000 delivered", o.Name(), res.Delivered)
		}
		switch o.Name() {
		case "ring-only":
			if res.AvgHops < float64(n)/8 {
				t.Errorf("ring avg hops %.1f suspiciously small", res.AvgHops)
			}
		default:
			if res.AvgHops > 3*logn {
				t.Errorf("%s avg hops %.1f exceeds 3·log n = %.1f", o.Name(), res.AvgHops, 3*logn)
			}
		}
	}
}

// The congestion claim of Section 1.3, read literally: "the supervised
// approach allows a much more balanced distribution of these nodes". The
// supervisor's labels cover the circle with gaps within a factor 2
// (deterministically), so per-node key responsibility stays near uniform;
// Chord's random identifiers produce Θ(log n) gap skew.
func TestPositionBalanceClaim(t *testing.T) {
	const n, keys = 512, 100000
	sr := NewSkipRing(n)
	srBal := KeyLoad("skip-ring", sr.Positions(), keys, rand.New(rand.NewSource(11)))
	if srBal.MaxGap > 2.001 {
		t.Errorf("skip-ring max gap %.2f× uniform, want ≤ 2", srBal.MaxGap)
	}
	if srBal.MaxOverAvg > 2.5 {
		t.Errorf("skip-ring key imbalance %.2f, want ≤ 2.5", srBal.MaxOverAvg)
	}
	for seed := int64(0); seed < 5; seed++ {
		ch := NewChord(n, rand.New(rand.NewSource(seed)))
		chBal := KeyLoad("chord", ch.Positions(), keys, rand.New(rand.NewSource(11)))
		if srBal.MaxOverAvg >= chBal.MaxOverAvg {
			t.Errorf("seed %d: skip-ring imbalance %.2f not below chord's %.2f",
				seed, srBal.MaxOverAvg, chBal.MaxOverAvg)
		}
		if srBal.MaxGap >= chBal.MaxGap {
			t.Errorf("seed %d: skip-ring max gap %.2f not below chord's %.2f",
				seed, srBal.MaxGap, chBal.MaxGap)
		}
		t.Logf("seed %d: max/avg key load skip-ring=%.2f chord=%.2f; max gap %.2f vs %.2f",
			seed, srBal.MaxOverAvg, chBal.MaxOverAvg, srBal.MaxGap, chBal.MaxGap)
	}
}

// Degree balance, informational: all logarithmic overlays have O(log n)
// degrees; the skip ring deliberately gives older nodes more edges
// ("older and thus more reliable nodes hold more connectivity
// responsibility", Section 2.1), so its max degree is 2⌈log n⌉−1 exactly.
func TestDegreeBalanceInformational(t *testing.T) {
	const n = 512
	sr := Balance(NewSkipRing(n))
	if want := 2*9 - 1; sr.MaxDegree != want {
		t.Errorf("skip-ring max degree %d, want %d", sr.MaxDegree, want)
	}
	rng := rand.New(rand.NewSource(0))
	ch := Balance(NewChord(n, rng))
	sg := Balance(NewSkipGraph(n, rng))
	if sr.AvgDegree > 4.0 || sr.MaxDegree >= ch.MaxDegree {
		t.Errorf("skip-ring avg %.1f max %d vs chord max %d", sr.AvgDegree, sr.MaxDegree, ch.MaxDegree)
	}
	t.Logf("degrees: skip-ring max=%d avg=%.1f; chord max=%d avg=%.1f; skip-graph max=%d avg=%.1f",
		sr.MaxDegree, sr.AvgDegree, ch.MaxDegree, ch.AvgDegree, sg.MaxDegree, sg.AvgDegree)
}

// Greedy point-to-point routing load, reported for completeness: the skip
// ring concentrates long routes on its short-label hubs (it is a broadcast
// topology, not a router), so Chord and skip graphs win this metric. The
// experiment records the numbers; the assertion is only that routing works
// and the ring-only baseline has the worst dilation.
func TestRoutingCongestionInformational(t *testing.T) {
	const n, routes = 256, 10000
	rng := rand.New(rand.NewSource(4))
	for _, o := range overlays(n, rng) {
		res := Congestion(o, routes, rand.New(rand.NewSource(9)))
		if res.Delivered < routes*9/10 {
			t.Errorf("%s: only %d/%d delivered", o.Name(), res.Delivered, routes)
		}
		t.Logf("%-10s maxLoad=%-6d avgLoad=%-8.1f avgHops=%.1f", res.Overlay, res.MaxLoad, res.AvgLoad, res.AvgHops)
	}
}

// Flooding reaches all nodes, within ⌈log n⌉+1 hops on the skip ring and
// within ⌈n/2⌉ on the plain ring (Section 4.3 versus [20, 21]).
func TestFloodHops(t *testing.T) {
	const n = 128
	sr := NewSkipRing(n)
	hist := FloodHops(sr, 0)
	total := 0
	for _, c := range hist {
		total += c
	}
	if total != n {
		t.Fatalf("flood reached %d/%d nodes", total, n)
	}
	if len(hist)-1 > 8 { // ⌈log 128⌉ + 1
		t.Errorf("skip-ring flood depth %d exceeds log n + 1", len(hist)-1)
	}
	ring := NewRing(n)
	rhist := FloodHops(ring, 0)
	if len(rhist)-1 != n/2 {
		t.Errorf("ring flood depth %d, want %d", len(rhist)-1, n/2)
	}
}

// Property: Chord's construction yields polylogarithmic degrees (the
// random-gap in-degree tail reaches a few multiples of log n, never Θ(n))
// and an average of about 2·log n.
func TestChordProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64 + rng.Intn(128)
		c := NewChord(n, rng)
		maxDeg, sum := 0, 0
		for x := 0; x < n; x++ {
			d := len(c.Neighbors(x))
			sum += d
			if d > maxDeg {
				maxDeg = d
			}
		}
		logn := math.Ceil(math.Log2(float64(n)))
		avg := float64(sum) / float64(n)
		return maxDeg <= 12*int(logn) && avg > logn && avg < 4*logn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRingSmall(t *testing.T) {
	r2 := NewRing(2)
	if got := r2.Neighbors(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("ring(2) neighbors = %v", got)
	}
	if hop := r2.NextHop(0, 1); hop != 1 {
		t.Errorf("ring(2) next hop = %d", hop)
	}
	r1 := NewRing(1)
	if got := r1.Neighbors(0); len(got) != 0 {
		t.Errorf("ring(1) neighbors = %v", got)
	}
}

// Broker baseline: per-publication cost equals the number of subscribers.
func TestBrokerFanout(t *testing.T) {
	b := NewBroker()
	c := simtest.NewCtx(1)
	for i := sim.NodeID(10); i < 20; i++ {
		b.OnMessage(c, sim.Message{From: i, Topic: 5, Body: BSubscribe{}})
	}
	if b.Subscribers(5) != 10 {
		t.Fatalf("subscribers = %d", b.Subscribers(5))
	}
	b.OnMessage(c, sim.Message{From: 10, Topic: 5, Body: BPublish{Payload: "x"}})
	msgs := c.Take()
	if len(msgs) != 9 { // everyone but the publisher
		t.Fatalf("broker sent %d messages, want 9", len(msgs))
	}
	b.OnMessage(c, sim.Message{From: 11, Topic: 5, Body: BUnsubscribe{}})
	b.OnMessage(c, sim.Message{From: 10, Topic: 5, Body: BPublish{Payload: "y"}})
	if msgs := c.Take(); len(msgs) != 8 {
		t.Fatalf("after unsubscribe: %d messages, want 8", len(msgs))
	}
	// Deliveries are counted by the baseline client.
	cl := &BrokerClient{}
	cl.OnMessage(c, sim.Message{From: 1, Topic: 5, Body: BDeliver{Payload: "x"}})
	if cl.Received != 1 {
		t.Error("client did not count delivery")
	}
}
