// Package baseline implements the comparison systems the paper positions
// the supervised skip ring against:
//
//   - Chord (Kniesburges et al. [13] / Stoica et al.): random node IDs on a
//     2^64 ring with successor and finger edges — the skip ring claims
//     better congestion thanks to its perfectly balanced label positions
//     (Section 1.3);
//   - skip graphs (Jacob et al. [10]): random membership vectors, doubly
//     linked lists per prefix level;
//   - a plain sorted ring, the O(n)-delivery topology of the
//     publish-subscribe systems of Siegemund/Turau [20, 21];
//   - a centralized broker (the client-server architecture of the
//     introduction), for the supervisor-load comparison.
//
// All overlays are static graphs with greedy routing; that is exactly the
// setting of the congestion and delivery-time claims.
package baseline

import (
	"math"
	"math/rand"
	"sort"

	"sspubsub/internal/topology"
)

// Overlay is a static routable graph over n nodes.
type Overlay interface {
	// Name identifies the overlay in experiment tables.
	Name() string
	// N returns the node count.
	N() int
	// Neighbors returns the adjacency of node x (indices).
	Neighbors(x int) []int
	// NextHop returns the neighbour x forwards to when routing toward
	// target t, or -1 when x == t (delivered) or no progress is possible.
	NextHop(x, t int) int
}

// Route walks greedily from s to t, returning the intermediate hops
// (excluding s and t) and whether t was reached within n hops.
func Route(o Overlay, s, t int) (via []int, ok bool) {
	x := s
	for hops := 0; hops <= o.N(); hops++ {
		if x == t {
			return via, true
		}
		nx := o.NextHop(x, t)
		if nx < 0 || nx == x {
			return via, false
		}
		x = nx
		if x != t {
			via = append(via, x)
		}
	}
	return via, false
}

// CongestionResult aggregates a routing-load experiment.
type CongestionResult struct {
	Overlay   string
	N         int
	Routes    int
	Delivered int
	MaxLoad   int     // max transits through a single node
	AvgLoad   float64 // mean transits per node
	AvgHops   float64 // mean delivered path length (dilation)
	MaxDegree int
}

// Congestion routes `routes` uniform random pairs over the overlay and
// reports per-node transit load and path lengths (the Section 1.3
// congestion comparison).
func Congestion(o Overlay, routes int, rng *rand.Rand) CongestionResult {
	res := CongestionResult{Overlay: o.Name(), N: o.N(), Routes: routes}
	load := make([]int, o.N())
	totalHops := 0
	for i := 0; i < routes; i++ {
		s := rng.Intn(o.N())
		t := rng.Intn(o.N())
		if s == t {
			continue
		}
		via, ok := Route(o, s, t)
		if !ok {
			continue
		}
		res.Delivered++
		totalHops += len(via) + 1
		for _, x := range via {
			load[x]++
		}
	}
	sum := 0
	for x, l := range load {
		sum += l
		if l > res.MaxLoad {
			res.MaxLoad = l
		}
		if d := len(o.Neighbors(x)); d > res.MaxDegree {
			res.MaxDegree = d
		}
	}
	if o.N() > 0 {
		res.AvgLoad = float64(sum) / float64(o.N())
	}
	if res.Delivered > 0 {
		res.AvgHops = float64(totalHops) / float64(res.Delivered)
	}
	return res
}

// FloodHops returns the eccentricity histogram of flooding from a random
// source: hops[i] is the number of nodes first reached in hop i.
func FloodHops(o Overlay, source int) []int {
	dist := make([]int, o.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[source] = 0
	queue := []int{source}
	far := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range o.Neighbors(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				if dist[w] > far {
					far = dist[w]
				}
				queue = append(queue, w)
			}
		}
	}
	hist := make([]int, far+1)
	for _, d := range dist {
		if d >= 0 {
			hist[d]++
		}
	}
	return hist
}

// DegreeBalance reports how evenly an overlay spreads its edges — the
// quantity behind the paper's congestion claim (Section 1.3): during a
// flood every node handles one message per incident edge, so broadcast
// congestion is bounded by the degree distribution. The supervised skip
// ring's deterministic label positions give it a deterministic
// 2·⌈log n⌉−1 maximum; Chord's and the skip graph's random coordinates
// spread around the same mean with a heavier tail.
type DegreeBalance struct {
	Overlay    string
	N          int
	MaxDegree  int
	AvgDegree  float64
	StdDev     float64
	P99        int
	MaxOverAvg float64 // max/avg: 1.0 would be perfectly balanced
}

// Balance computes the degree-balance statistics of an overlay.
func Balance(o Overlay) DegreeBalance {
	n := o.N()
	res := DegreeBalance{Overlay: o.Name(), N: n}
	degs := make([]int, n)
	sum := 0
	for x := 0; x < n; x++ {
		d := len(o.Neighbors(x))
		degs[x] = d
		sum += d
		if d > res.MaxDegree {
			res.MaxDegree = d
		}
	}
	if n == 0 {
		return res
	}
	res.AvgDegree = float64(sum) / float64(n)
	var ss float64
	for _, d := range degs {
		diff := float64(d) - res.AvgDegree
		ss += diff * diff
	}
	res.StdDev = math.Sqrt(ss / float64(n))
	sort.Ints(degs)
	res.P99 = degs[(99*n)/100]
	if res.AvgDegree > 0 {
		res.MaxOverAvg = float64(res.MaxDegree) / res.AvgDegree
	}
	return res
}

// PositionBalance measures the claim of Section 1.3 directly: how evenly
// the overlay's node coordinates cover the [0,1) circle. Each of M random
// keys is assigned to its circular successor node (the standard
// consistent-hashing responsibility rule); the max/avg assignment ratio
// quantifies imbalance. The supervisor's label assignment keeps adjacent
// gaps within a factor 2 deterministically, while random coordinates
// (Chord IDs, skip-graph keys) produce Θ(log n) gap skew.
type PositionBalance struct {
	Overlay    string
	N          int
	Keys       int
	MaxLoad    int
	AvgLoad    float64
	MaxOverAvg float64
	MaxGap     float64 // largest arc, as a multiple of the uniform 1/n arc
}

// KeyLoad computes the position-balance statistics for nodes at the given
// circular positions (64-bit fixed-point fractions).
func KeyLoad(name string, positions []uint64, keys int, rng *rand.Rand) PositionBalance {
	n := len(positions)
	res := PositionBalance{Overlay: name, N: n, Keys: keys}
	if n == 0 {
		return res
	}
	sorted := append([]uint64(nil), positions...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	load := make([]int, n)
	for i := 0; i < keys; i++ {
		k := rng.Uint64()
		idx := sort.Search(n, func(i int) bool { return sorted[i] >= k })
		load[idx%n]++
	}
	sum := 0
	for _, l := range load {
		sum += l
		if l > res.MaxLoad {
			res.MaxLoad = l
		}
	}
	res.AvgLoad = float64(sum) / float64(n)
	if res.AvgLoad > 0 {
		res.MaxOverAvg = float64(res.MaxLoad) / res.AvgLoad
	}
	var maxGap uint64
	for i := range sorted {
		next := sorted[(i+1)%n]
		gap := next - sorted[i] // wraps mod 2^64 for the last arc
		if gap > maxGap {
			maxGap = gap
		}
	}
	res.MaxGap = float64(maxGap) / (float64(1<<63) * 2 / float64(n))
	return res
}

// Positions returns the circular coordinates of the skip ring's nodes.
func (s *SkipRingOverlay) Positions() []uint64 { return append([]uint64(nil), s.pos...) }

// Positions returns Chord's node identifiers.
func (c *ChordOverlay) Positions() []uint64 { return append([]uint64(nil), c.ids...) }

// ---- skip ring adapter ----

// SkipRingOverlay adapts the legitimate SR(n) for routing comparisons.
type SkipRingOverlay struct {
	ring *topology.SkipRing
	pos  []uint64 // index → r(label) as fixed-point fraction
}

// NewSkipRing builds the static SR(n) overlay.
func NewSkipRing(n int) *SkipRingOverlay {
	r := topology.New(n)
	pos := make([]uint64, n)
	for x := 0; x < n; x++ {
		pos[x] = r.Label(x).Frac()
	}
	return &SkipRingOverlay{ring: r, pos: pos}
}

// Name implements Overlay.
func (s *SkipRingOverlay) Name() string { return "skip-ring" }

// N implements Overlay.
func (s *SkipRingOverlay) N() int { return s.ring.N() }

// Neighbors implements Overlay.
func (s *SkipRingOverlay) Neighbors(x int) []int { return s.ring.Neighbors(x) }

// NextHop routes greedily by circular label distance: forward to the
// neighbour closest to the target's ring position. Ring edges guarantee
// progress; shortcuts realize the O(log n) dilation.
func (s *SkipRingOverlay) NextHop(x, t int) int {
	if x == t {
		return -1
	}
	best, bestD := -1, circDist(s.pos[x], s.pos[t])
	for _, nb := range s.ring.Neighbors(x) {
		if d := circDist(s.pos[nb], s.pos[t]); d < bestD {
			best, bestD = nb, d
		}
	}
	return best
}

func circDist(a, b uint64) uint64 {
	d := a - b
	if int64(d) < 0 {
		d = -d
	}
	return d
}

// ---- plain ring ----

// RingOverlay is the sorted cycle without shortcuts: the topology class of
// the PSVR-style systems, whose publications need Θ(n) steps.
type RingOverlay struct {
	n int
}

// NewRing builds a plain n-cycle.
func NewRing(n int) *RingOverlay { return &RingOverlay{n: n} }

// Name implements Overlay.
func (r *RingOverlay) Name() string { return "ring-only" }

// N implements Overlay.
func (r *RingOverlay) N() int { return r.n }

// Neighbors implements Overlay.
func (r *RingOverlay) Neighbors(x int) []int {
	if r.n == 1 {
		return nil
	}
	if r.n == 2 {
		return []int{1 - x}
	}
	return []int{(x + r.n - 1) % r.n, (x + 1) % r.n}
}

// NextHop walks around the shorter arc.
func (r *RingOverlay) NextHop(x, t int) int {
	if x == t {
		return -1
	}
	cw := (t - x + r.n) % r.n
	if cw <= r.n-cw {
		return (x + 1) % r.n
	}
	return (x + r.n - 1) % r.n
}
