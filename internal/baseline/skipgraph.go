package baseline

import (
	"math/rand"
	"sort"
)

// SkipGraphOverlay is a skip graph (Aspnes/Shah; the self-stabilizing
// variant is Jacob et al. [10]): nodes are sorted by key; every node draws
// a random membership vector, and at each level i the nodes sharing a
// membership-vector prefix of length i form a doubly linked sorted list.
// Expected degree O(log n), but randomization makes levels uneven — the
// balance disadvantage versus the supervised skip ring.
type SkipGraphOverlay struct {
	n   int
	adj [][]int
}

// NewSkipGraph builds a skip graph over n nodes (keys are the indices,
// already sorted) with seeded random membership vectors.
func NewSkipGraph(n int, rng *rand.Rand) *SkipGraphOverlay {
	mv := make([]uint64, n)
	for i := range mv {
		mv[i] = rng.Uint64()
	}
	g := &SkipGraphOverlay{n: n, adj: make([][]int, n)}
	edges := map[[2]int]bool{}
	add := func(a, b int) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		edges[[2]int{a, b}] = true
	}
	// Level 0: the base list over all nodes. Higher levels: split by the
	// next membership bit until lists become singletons.
	type group struct{ members []int }
	groups := []group{{members: seq(n)}}
	for level := 0; len(groups) > 0 && level < 64; level++ {
		var next []group
		for _, gr := range groups {
			for i := 0; i+1 < len(gr.members); i++ {
				add(gr.members[i], gr.members[i+1])
			}
			if len(gr.members) <= 1 {
				continue
			}
			var zero, one []int
			for _, m := range gr.members {
				if mv[m]>>uint(level)&1 == 0 {
					zero = append(zero, m)
				} else {
					one = append(one, m)
				}
			}
			if len(zero) > 1 {
				next = append(next, group{zero})
			}
			if len(one) > 1 {
				next = append(next, group{one})
			}
		}
		groups = next
	}
	for e := range edges {
		g.adj[e[0]] = append(g.adj[e[0]], e[1])
		g.adj[e[1]] = append(g.adj[e[1]], e[0])
	}
	for x := range g.adj {
		sort.Ints(g.adj[x])
	}
	return g
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Name implements Overlay.
func (g *SkipGraphOverlay) Name() string { return "skip-graph" }

// N implements Overlay.
func (g *SkipGraphOverlay) N() int { return g.n }

// Neighbors implements Overlay.
func (g *SkipGraphOverlay) Neighbors(x int) []int { return g.adj[x] }

// NextHop searches greedily by key: jump to the neighbour closest to the
// target key without changing direction past it (skip graph search). The
// level-0 list guarantees progress.
func (g *SkipGraphOverlay) NextHop(x, t int) int {
	if x == t {
		return -1
	}
	best, bestD := -1, absInt(x-t)
	for _, nb := range g.adj[x] {
		if d := absInt(nb - t); d < bestD {
			best, bestD = nb, d
		}
	}
	return best
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
