package baseline

import (
	"math/rand"
	"sort"
)

// ChordOverlay is a Chord ring over n nodes with uniformly random 64-bit
// identifiers: each node links to its successor and to the first node at or
// after id + 2^i for every i (finger table). Unlike the supervised skip
// ring, the identifier gaps are random, which skews both finger targets and
// routing load — the imbalance the paper's congestion claim (Section 1.3)
// is about.
type ChordOverlay struct {
	n   int
	ids []uint64 // sorted node identifiers; node x has ids[x]
	adj [][]int
}

// NewChord builds a Chord overlay with seeded random identifiers.
func NewChord(n int, rng *rand.Rand) *ChordOverlay {
	ids := make([]uint64, n)
	seen := map[uint64]bool{}
	for i := range ids {
		for {
			v := rng.Uint64()
			if !seen[v] {
				seen[v] = true
				ids[i] = v
				break
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	c := &ChordOverlay{n: n, ids: ids, adj: make([][]int, n)}
	edges := map[[2]int]bool{}
	add := func(a, b int) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		edges[[2]int{a, b}] = true
	}
	for x := 0; x < n; x++ {
		add(x, (x+1)%n) // successor
		for i := 0; i < 64; i++ {
			target := ids[x] + 1<<uint(i) // wraps mod 2^64
			add(x, c.successorOf(target))
		}
	}
	for e := range edges {
		c.adj[e[0]] = append(c.adj[e[0]], e[1])
		c.adj[e[1]] = append(c.adj[e[1]], e[0])
	}
	for x := range c.adj {
		sort.Ints(c.adj[x])
	}
	return c
}

// successorOf returns the index of the first node whose id is ≥ target
// (wrapping around the ring).
func (c *ChordOverlay) successorOf(target uint64) int {
	i := sort.Search(c.n, func(i int) bool { return c.ids[i] >= target })
	if i == c.n {
		return 0
	}
	return i
}

// Name implements Overlay.
func (c *ChordOverlay) Name() string { return "chord" }

// N implements Overlay.
func (c *ChordOverlay) N() int { return c.n }

// Neighbors implements Overlay.
func (c *ChordOverlay) Neighbors(x int) []int { return c.adj[x] }

// NextHop forwards clockwise-greedily: among neighbours that do not
// overshoot the target (in clockwise distance), pick the one closest to it;
// the successor edge guarantees progress.
func (c *ChordOverlay) NextHop(x, t int) int {
	if x == t {
		return -1
	}
	want := c.ids[t]
	best, bestD := -1, clockwise(c.ids[x], want)
	for _, nb := range c.adj[x] {
		if d := clockwise(c.ids[nb], want); d < bestD {
			best, bestD = nb, d
		}
	}
	return best
}

// clockwise is the distance from a to b going clockwise on the 2^64 ring.
func clockwise(a, b uint64) uint64 { return b - a }
