package baseline

import (
	"sspubsub/internal/sim"
)

// Broker is the traditional client-server publish-subscribe architecture
// of the paper's introduction: a single server stores the subscriber lists
// and disseminates every publication itself. Its per-publication message
// cost is Θ(subscribers) — the load the supervised approach removes from
// the central component (the supervisor never touches publications).
type Broker struct {
	subs map[sim.Topic]map[sim.NodeID]bool
}

// Broker protocol messages.
type (
	// BSubscribe registers the sender for the envelope topic.
	BSubscribe struct{}
	// BUnsubscribe removes the sender's registration.
	BUnsubscribe struct{}
	// BPublish asks the broker to disseminate a payload.
	BPublish struct{ Payload string }
	// BDeliver carries a payload to a subscriber.
	BDeliver struct{ Payload string }
)

// NewBroker creates an empty broker.
func NewBroker() *Broker {
	return &Broker{subs: make(map[sim.Topic]map[sim.NodeID]bool)}
}

// OnMessage implements sim.Handler.
func (b *Broker) OnMessage(ctx sim.Context, m sim.Message) {
	switch body := m.Body.(type) {
	case BSubscribe:
		set, ok := b.subs[m.Topic]
		if !ok {
			set = make(map[sim.NodeID]bool)
			b.subs[m.Topic] = set
		}
		set[m.From] = true
	case BUnsubscribe:
		delete(b.subs[m.Topic], m.From)
	case BPublish:
		for id := range b.subs[m.Topic] {
			if id != m.From {
				ctx.Send(id, m.Topic, BDeliver{Payload: body.Payload})
			}
		}
	}
}

// OnTimeout implements sim.Handler (the broker has no periodic action).
func (b *Broker) OnTimeout(ctx sim.Context) {}

// Subscribers returns the number of registrations for a topic.
func (b *Broker) Subscribers(t sim.Topic) int { return len(b.subs[t]) }

var _ sim.Handler = (*Broker)(nil)

// BrokerClient is a minimal subscriber for the broker baseline: it counts
// deliveries.
type BrokerClient struct {
	Received int
}

// OnMessage implements sim.Handler.
func (c *BrokerClient) OnMessage(ctx sim.Context, m sim.Message) {
	if _, ok := m.Body.(BDeliver); ok {
		c.Received++
	}
}

// OnTimeout implements sim.Handler.
func (c *BrokerClient) OnTimeout(ctx sim.Context) {}
