// Package scale is the million-subscriber measurement harness: it drives
// 10^5–10^6 real-protocol subscribers on one machine by multiplexing
// thousands of unmodified core.Client state machines onto each physical
// node (Pool), using the substrate's listener aliasing so every virtual
// subscriber keeps its own node ID on the wire.
//
// The harness exists to measure, empirically, the growth orders the paper
// proves: join latency and publish fan-out in O(log n) rounds, supervisor
// database and trie memory in O(n) bytes with O(log n) per-operation work.
// Run executes one scale point (mass join → fan-out probe → crash burst →
// re-stabilization) and returns a Result; cmd/srsim's scale subcommand
// sweeps N over decades and fits power-law exponents (FitPowerLaw) to the
// resulting curves.
//
// Two findings from the first 10^5 run are baked into defaults here:
//
//   - The supervisor database was the first structure to fall over: its
//     per-request O(n) scans and O(n log n) re-sorts made joins/s collapse
//     quadratically. internal/supervisor now maintains an order-indexed
//     treap (O(log n) per operation); see that package.
//   - Stabilization after a crash burst is bounded by the supervisor's
//     round-robin cull sweep, which visits CullPerTimeout entries per
//     interval: with the paper's constant budget it is O(n) rounds by
//     construction, a deployment parameter rather than a protocol
//     property. Config.CullPerTimeout therefore defaults to N/64, keeping
//     the sweep ~64 rounds at every N so the curves measure the protocol,
//     not the budget.
package scale
