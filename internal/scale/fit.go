package scale

import "math"

// FitPowerLaw fits y = a·n^b by least squares over (ln n, ln y) and
// returns (a, b). The exponent b is the growth order the sweep reports:
// b ≈ 1 is linear, b ≈ 0.5 square-root, and b ≪ 1 with small absolute
// values is consistent with the paper's O(log n) bounds (a logarithm has
// no constant power-law exponent; its fitted b drifts toward 0 as n
// grows). Points with y ≤ 0 are clamped to a small epsilon so flat curves
// (e.g. a latency that stays at 0 rounds) fit b ≈ 0 instead of blowing
// up. Fewer than two points return (0, 0).
func FitPowerLaw(ns, ys []float64) (a, b float64) {
	if len(ns) != len(ys) || len(ns) < 2 {
		return 0, 0
	}
	const eps = 1e-9
	var sx, sy, sxx, sxy float64
	for i := range ns {
		x := math.Log(ns[i])
		y := ys[i]
		if y < eps {
			y = eps
		}
		ly := math.Log(y)
		sx += x
		sy += ly
		sxx += x * x
		sxy += x * ly
	}
	n := float64(len(ns))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0
	}
	b = (n*sxy - sx*sy) / den
	a = math.Exp((sy - b*sx) / n)
	return a, b
}
