package scale

import (
	"testing"
)

// pindepN sizes the P-independence property runs: the property is
// size-independent, so the race-detector binary (and -short) shrink it.
func pindepN(t *testing.T) int {
	if raceEnabled || testing.Short() {
		return 512
	}
	return 10_000
}

// TestPIndependence is the parallel engine's core acceptance property:
// with the same seed, the full scale scenario — mass join, fan-out probe,
// crash burst, re-stabilization — produces an identical Result (round
// summaries, memory, accounting, supervisor-DB content hash) for every
// worker count, including 1 (the inline serial execution of the same
// lane-sharded schedule).
func TestPIndependence(t *testing.T) {
	n := pindepN(t)
	var base Result
	var baseDigest string
	for _, workers := range []int{1, 2, 4, 8} {
		res := Run(Config{N: n, Seed: 1, Workers: workers})
		if !res.Converged {
			t.Fatalf("workers=%d: run did not converge", workers)
		}
		if res.DBHash == "" {
			t.Fatalf("workers=%d: no supervisor-DB hash", workers)
		}
		d := res.Digest()
		if workers == 1 {
			base, baseDigest = res, d
			continue
		}
		if d != baseDigest {
			t.Errorf("workers=%d digest diverged from workers=1:\n got  %s\n want %s", workers, d, baseDigest)
		}
		// Digest covers the schedule-determined scalars; double-check the
		// structs agree field-for-field once wall-clock noise is zeroed.
		a, b := res, base
		a.JoinWallSec, a.JoinsPerSec, a.FanoutWallSec, a.StabilizeWallSec, a.Workers = 0, 0, 0, 0, 0
		b.JoinWallSec, b.JoinsPerSec, b.FanoutWallSec, b.StabilizeWallSec, b.Workers = 0, 0, 0, 0, 0
		if a != b {
			t.Errorf("workers=%d Result diverged beyond wall-clock fields:\n got  %+v\n want %+v", workers, a, b)
		}
	}
}

// TestFailoverPIndependence extends the property to the multi-supervisor
// failover scenario (ring mutation at a barrier, warm-replica adoption).
func TestFailoverPIndependence(t *testing.T) {
	n := pindepN(t) / 4
	var base FailoverResult
	for i, workers := range []int{1, 4} {
		res := RunFailover(FailoverConfig{N: n, Seed: 1, ReplicationFactor: 1, Workers: workers})
		if !res.Converged {
			t.Fatalf("workers=%d: failover did not converge", workers)
		}
		if i == 0 {
			base = res
			continue
		}
		if res != base {
			t.Errorf("workers=%d failover result diverged:\n got  %+v\n want %+v", workers, res, base)
		}
	}
}

// TestSerialQueueHighWater pins satellite 1 on the legacy engine: the
// reported queue footprint is a true high-water mark (it can only be
// observed growing, never shrinks, and is positive after traffic).
func TestSerialQueueHighWater(t *testing.T) {
	h := New(Config{N: 64, Seed: 3})
	h.JoinAll()
	h.Sched.RunRounds(4)
	mid := h.Sched.QueueHighWaterBytes()
	if mid == 0 {
		t.Fatal("high water still zero after traffic")
	}
	h.Sched.RunRounds(64) // queue drains as the system settles
	end := h.Sched.QueueHighWaterBytes()
	if end < mid {
		t.Fatalf("high water shrank: %d -> %d", mid, end)
	}
}
