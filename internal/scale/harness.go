package scale

import (
	"fmt"
	"time"

	"sspubsub/internal/core"
	"sspubsub/internal/metrics"
	"sspubsub/internal/ordering"
	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
	"sspubsub/internal/supervisor"
)

// Config sizes one scale run.
type Config struct {
	// N is the number of virtual subscribers (the sweep variable).
	N int
	// PoolSize is how many virtual subscribers share one pool node.
	// Default 1024.
	PoolSize int
	// Seed drives the deterministic scheduler.
	Seed int64
	// Topic is the single topic under measurement. Default 1.
	Topic sim.Topic
	// HistoryCap bounds each subscriber's retained publications; at 10^5+
	// subscribers an unbounded history is the difference between a flat
	// and a linearly growing per-node footprint. 0 = unlimited.
	HistoryCap int
	// CullPerTimeout is the supervisor's per-interval failure-detector
	// budget. The default scales as max(1, N/64) so a full database sweep
	// takes ~64 rounds at any N — with the paper's constant budget of 1,
	// stabilization after a fault burst is O(N) rounds by construction
	// (the round-robin sweep visits one entry per interval), which is a
	// deployment parameter, not a protocol property.
	CullPerTimeout int
	// MaxQueuedEvents, if positive, caps the scheduler's event queue (see
	// sim.SchedulerOptions.MaxQueuedEvents). Leave 0 for measurement runs:
	// shed messages would distort latency curves. Result.OverflowDropped
	// reports whether a cap interfered.
	MaxQueuedEvents int
	// MaxRounds bounds every convergence wait. Default 512.
	MaxRounds int
	// SettleRounds run between join convergence and the publish probe so
	// shortcut edges (the O(log n) fan-out paths) can establish.
	// Default 16.
	SettleRounds int
	// CrashFrac is the fraction of subscribers crashed for the
	// stabilization probe. Default 0.01 (min 1 subscriber).
	CrashFrac float64
	// DeliveryMode runs every subscriber (and the supervisor's topic
	// directory) in the given delivery mode. Ordered modes time the
	// fan-out probe on actual application deliveries — which the ordering
	// layer may buffer — rather than on trie arrival, so the sweep
	// measures the ordering overhead end to end.
	DeliveryMode ordering.Mode
	// Workers selects the engine. 0 (the default) keeps the legacy serial
	// sim.Scheduler; >= 1 runs the lane-sharded parallel psim.Engine with
	// that many worker goroutines. The two engines execute different
	// (each deterministic) schedules; within the parallel engine, every
	// Workers value — including 1 — produces bit-identical results.
	Workers int
	// Lanes is the parallel engine's shard count (part of its schedule
	// identity). 0 = psim's default (16). Ignored when Workers == 0.
	Lanes int
}

func (c Config) withDefaults() Config {
	if c.PoolSize == 0 {
		c.PoolSize = 1024
	}
	if c.Topic == 0 {
		c.Topic = 1
	}
	if c.CullPerTimeout == 0 {
		c.CullPerTimeout = c.N / 64
		if c.CullPerTimeout < 1 {
			c.CullPerTimeout = 1
		}
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 512
	}
	if c.SettleRounds == 0 {
		c.SettleRounds = 16
	}
	if c.CrashFrac == 0 {
		c.CrashFrac = 0.01
	}
	return c
}

// SupervisorID is the harness' supervisor node ID.
const SupervisorID sim.NodeID = 1

// Harness hosts N real-protocol subscribers multiplexed into pools on the
// deterministic scheduler, plus the probes the scaling curves are built
// from. All N subscribers run the unmodified core.Client state machine;
// only their scheduling is shared (see Pool).
type Harness struct {
	Cfg     Config
	Sched   Sim
	Sup     *supervisor.Supervisor
	Pools   []*Pool
	subBase sim.NodeID

	// delivered counts application-level deliveries per subscriber (only
	// maintained when Cfg.DeliveryMode is an ordered mode).
	delivered []int
}

// New builds the system: one supervisor, ceil(N/PoolSize) pool nodes, N
// virtual subscribers (IDs contiguous from the first ID after the pools).
func New(cfg Config) *Harness {
	cfg = cfg.withDefaults()
	sched := newSim(cfg.Seed, cfg.Workers, cfg.Lanes, cfg.MaxQueuedEvents)
	sup := supervisor.New(SupervisorID, sched)
	sup.CullPerTimeout = cfg.CullPerTimeout
	sched.AddNode(SupervisorID, sup)

	numPools := (cfg.N + cfg.PoolSize - 1) / cfg.PoolSize
	subBase := SupervisorID + 1 + sim.NodeID(numPools)
	h := &Harness{Cfg: cfg, Sched: sched, Sup: sup, subBase: subBase}
	opts := core.Options{HistoryCap: cfg.HistoryCap, DeliveryMode: cfg.DeliveryMode}
	if cfg.DeliveryMode != ordering.BestEffort {
		sup.SetDefaultMode(cfg.DeliveryMode)
		h.delivered = make([]int, cfg.N)
		opts.OnDeliverTrace = func(node sim.NodeID, t sim.Topic, p proto.Publication, m ordering.Meta) {
			if i := int(node - subBase); t == cfg.Topic && i >= 0 && i < cfg.N {
				h.delivered[i]++
			}
		}
	}
	for j := 0; j < numPools; j++ {
		base := subBase + sim.NodeID(j*cfg.PoolSize)
		k := cfg.PoolSize
		if rest := cfg.N - j*cfg.PoolSize; rest < k {
			k = rest
		}
		p := NewPool(sched, base, k, SupervisorID, opts)
		p.Register(sched, SupervisorID+1+sim.NodeID(j))
		h.Pools = append(h.Pools, p)
	}
	return h
}

// ID returns the i-th subscriber's virtual node ID.
func (h *Harness) ID(i int) sim.NodeID { return h.subBase + sim.NodeID(i) }

// Client returns the i-th subscriber's state machine.
func (h *Harness) Client(i int) *core.Client {
	return h.Pools[i/h.Cfg.PoolSize].Client(i % h.Cfg.PoolSize)
}

// JoinAll issues a join command to every subscriber at the current time.
func (h *Harness) JoinAll() {
	for i := 0; i < h.Cfg.N; i++ {
		id := h.ID(i)
		h.Sched.Send(sim.Message{To: id, From: id, Topic: h.Cfg.Topic, Body: core.JoinTopic{}})
	}
}

// AwaitLabelled advances rounds until every subscriber holds a label (or
// MaxRounds elapse), returning the per-subscriber round at which its label
// arrived. The poll is O(pending) per round: labelled subscribers leave
// the scan set.
func (h *Harness) AwaitLabelled() (rounds []int, ok bool) {
	t := h.Cfg.Topic
	rounds = make([]int, h.Cfg.N)
	pending := make([]int, 0, h.Cfg.N)
	for i := 0; i < h.Cfg.N; i++ {
		if h.Client(i).Labelled(t) {
			continue
		}
		pending = append(pending, i)
	}
	for r := 1; r <= h.Cfg.MaxRounds && len(pending) > 0; r++ {
		h.Sched.RunRounds(1)
		next := pending[:0]
		for _, i := range pending {
			if h.Client(i).Labelled(t) {
				rounds[i] = r
			} else {
				next = append(next, i)
			}
		}
		pending = next
	}
	return rounds, len(pending) == 0
}

// AwaitPublication advances rounds until every live subscriber knows at
// least `want` publications, returning each subscriber's first round at or
// past the threshold.
func (h *Harness) AwaitPublication(want int) (rounds []int, ok bool) {
	t := h.Cfg.Topic
	rounds = make([]int, h.Cfg.N)
	pending := make([]int, 0, h.Cfg.N)
	for i := 0; i < h.Cfg.N; i++ {
		if h.Client(i).PublicationCount(t) < want {
			pending = append(pending, i)
		}
	}
	for r := 1; r <= h.Cfg.MaxRounds && len(pending) > 0; r++ {
		h.Sched.RunRounds(1)
		next := pending[:0]
		for _, i := range pending {
			if h.Client(i).PublicationCount(t) >= want {
				rounds[i] = r
			} else {
				next = append(next, i)
			}
		}
		pending = next
	}
	return rounds, len(pending) == 0
}

// AwaitDelivered advances rounds until every live subscriber has observed
// at least `want` application-level deliveries (ordered modes only; the
// counters are maintained by the OnDeliverTrace hook). Unlike
// AwaitPublication this sees the ordering layer's buffering: a reordered
// publication counts only once the delivery callback actually fired.
func (h *Harness) AwaitDelivered(want int) (rounds []int, ok bool) {
	rounds = make([]int, h.Cfg.N)
	pending := make([]int, 0, h.Cfg.N)
	for i := 0; i < h.Cfg.N; i++ {
		if h.delivered[i] < want {
			pending = append(pending, i)
		}
	}
	for r := 1; r <= h.Cfg.MaxRounds && len(pending) > 0; r++ {
		h.Sched.RunRounds(1)
		next := pending[:0]
		for _, i := range pending {
			if h.delivered[i] >= want {
				rounds[i] = r
			} else {
				next = append(next, i)
			}
		}
		pending = next
	}
	return rounds, len(pending) == 0
}

// Publish makes subscriber i author a publication.
func (h *Harness) Publish(i int, payload string) {
	id := h.ID(i)
	h.Sched.Send(sim.Message{To: id, From: id, Topic: h.Cfg.Topic, Body: core.PublishCmd{Payload: payload}})
}

// CrashFraction crashes Cfg.CrashFrac of the subscribers (at least one),
// spread evenly across the ID range and therefore across pools, and
// returns how many were crashed. Subscriber 0 is spared so the publish
// probe's author stays alive.
func (h *Harness) CrashFraction() int {
	k := int(float64(h.Cfg.N) * h.Cfg.CrashFrac)
	if k < 1 {
		k = 1
	}
	if k >= h.Cfg.N {
		k = h.Cfg.N - 1
	}
	stride := h.Cfg.N / k
	if stride < 1 {
		stride = 1
	}
	crashed := 0
	for i := 1; i < h.Cfg.N && crashed < k; i += stride {
		h.Sched.Crash(h.ID(i))
		h.Pools[i/h.Cfg.PoolSize].Kill(i % h.Cfg.PoolSize)
		crashed++
	}
	return crashed
}

// AwaitDBSize advances rounds until the supervisor database holds exactly
// want entries (the stabilization predicate after a crash burst: every
// dead subscriber culled, no live one evicted).
func (h *Harness) AwaitDBSize(want int) (rounds int, ok bool) {
	return h.Sched.RunRoundsUntil(h.Cfg.MaxRounds, func() bool {
		return h.Sup.N(h.Cfg.Topic) == want
	})
}

// Result is one scale point: everything cmd/srsim prints and benchjson
// ingests.
type Result struct {
	N int
	// Mode is the delivery mode the sweep point ran with ("besteffort",
	// "fifo", "causal").
	Mode string
	// Workers is the engine configuration the point ran on: 0 = legacy
	// serial scheduler, >= 1 = parallel engine with that many workers.
	// Physical parallelism only — never part of Digest.
	Workers int
	// Join: mass arrival of all N subscribers at t=0.
	JoinRounds  metrics.Summary // rounds until a subscriber held its label
	JoinWallSec float64         // wall-clock for the whole join phase
	JoinsPerSec float64
	// Fan-out: one publication reaching every live subscriber.
	FanoutRounds  metrics.Summary
	FanoutWallSec float64
	// Stabilization: crash burst of CrashFrac·N, rounds until the
	// supervisor database is exact again.
	Crashed          int
	StabilizeRounds  int
	StabilizeWallSec float64
	// Memory, measured not estimated.
	SupDBBytes      uint64 // supervisor database for the topic
	SubTrieBytes    uint64 // one subscriber's publication trie
	QueueBytes      uint64 // event-queue high-water footprint
	OverflowDropped int64  // non-zero means MaxQueuedEvents distorted the run
	// DBHash is the content hash of the supervisor's topic directory at
	// the end of the run (epoch:hash:count) — the cheap whole-system
	// fingerprint the P-independence gates diff.
	DBHash string
	// Converged reports every phase finished inside MaxRounds.
	Converged bool
}

// Digest renders every schedule-determined field in one canonical line:
// two runs of the same engine schedule must produce equal digests no
// matter how many workers executed them. Wall-clock fields and Workers —
// the things parallelism IS allowed to change — are excluded.
func (r Result) Digest() string {
	sum := func(s metrics.Summary) string {
		return fmt.Sprintf("{n=%d min=%g max=%g mean=%g p50=%g p95=%g p99=%g}",
			s.Count, s.Min, s.Max, s.Mean, s.P50, s.P95, s.P99)
	}
	return fmt.Sprintf("n=%d mode=%s join=%s fanout=%s crashed=%d stabilize=%d supdb=%d subtrie=%d queue=%d overflow=%d dbhash=%s converged=%v",
		r.N, r.Mode, sum(r.JoinRounds), sum(r.FanoutRounds), r.Crashed,
		r.StabilizeRounds, r.SupDBBytes, r.SubTrieBytes, r.QueueBytes,
		r.OverflowDropped, r.DBHash, r.Converged)
}

// Run executes the full scenario at one N: join everyone, wait for
// labels, settle, publish once and time the fan-out, sample memory, crash
// a fraction and time the supervisor's re-stabilization.
func Run(cfg Config) Result {
	cfg = cfg.withDefaults()
	h := New(cfg)
	defer h.Sched.Close()
	res := Result{N: cfg.N, Mode: cfg.DeliveryMode.String(), Workers: cfg.Workers, Converged: true}

	start := time.Now()
	h.JoinAll()
	joinRounds, ok := h.AwaitLabelled()
	res.JoinWallSec = time.Since(start).Seconds()
	res.JoinRounds = metrics.Summarize(metrics.Ints(joinRounds))
	if res.JoinWallSec > 0 {
		res.JoinsPerSec = float64(cfg.N) / res.JoinWallSec
	}
	res.Converged = res.Converged && ok

	h.Sched.RunRounds(cfg.SettleRounds)

	start = time.Now()
	h.Publish(0, fmt.Sprintf("pub-n%d", cfg.N))
	var fanRounds []int
	var ok2 bool
	if cfg.DeliveryMode != ordering.BestEffort {
		fanRounds, ok2 = h.AwaitDelivered(1)
	} else {
		fanRounds, ok2 = h.AwaitPublication(1)
	}
	res.FanoutWallSec = time.Since(start).Seconds()
	res.FanoutRounds = metrics.Summarize(metrics.Ints(fanRounds))
	res.Converged = res.Converged && ok2

	res.SupDBBytes = h.Sup.MemoryBytes(cfg.Topic)
	if in, found := h.Client(0).Instance(cfg.Topic); found {
		res.SubTrieBytes = in.Eng.Trie().MemoryBytes()
	}

	start = time.Now()
	res.Crashed = h.CrashFraction()
	rounds, ok := h.AwaitDBSize(cfg.N - res.Crashed)
	res.StabilizeWallSec = time.Since(start).Seconds()
	res.StabilizeRounds = rounds
	res.Converged = res.Converged && ok

	res.QueueBytes = h.Sched.QueueHighWaterBytes()
	res.OverflowDropped = h.Sched.OverflowDropped()
	if epoch, hash, count, found := h.Sup.DirectoryDigest(cfg.Topic); found {
		res.DBHash = fmt.Sprintf("%d:%x:%d", epoch, hash, count)
	}
	return res
}
