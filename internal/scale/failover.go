package scale

import (
	"sspubsub/internal/core"
	"sspubsub/internal/hashdht"
	"sspubsub/internal/label"
	"sspubsub/internal/sim"
	"sspubsub/internal/supervisor"
)

// FailoverConfig sizes one supervisor-failover measurement: a plane of
// Supervisors supervisors hosting N pooled subscribers on one topic, whose
// owner is crashed once the system (and, with a positive replication
// factor, its warm replicas) has converged.
type FailoverConfig struct {
	// N is the number of virtual subscribers.
	N int
	// PoolSize is how many virtual subscribers share one pool node
	// (default 1024).
	PoolSize int
	// Seed drives the deterministic scheduler.
	Seed int64
	// Topic is the topic under measurement. Default 1.
	Topic sim.Topic
	// Supervisors is the plane size (default 4).
	Supervisors int
	// ReplicationFactor is the directory replication factor. 0 measures
	// the cold Reregister rebuild (the PR 5 baseline); ≥ 1 measures warm
	// adoption from the hashdht successor's replica.
	ReplicationFactor int
	// CullPerTimeout is each supervisor's failure-detector budget per
	// interval (default max(1, N/64), as in Config).
	CullPerTimeout int
	// MaxRounds bounds every convergence wait (default 8192 — the cold
	// rebuild at 10^5 subscribers is dominated by the subscribers'
	// ratcheting staleness probes, which is exactly the cost the warm path
	// is built to avoid).
	MaxRounds int
	// SettleRounds run after join convergence before the crash so the
	// replica stream and anti-entropy reach steady state (default 64).
	SettleRounds int
	// Workers selects the engine, as on Config: 0 = legacy serial
	// scheduler, >= 1 = parallel engine with that many workers.
	Workers int
	// Lanes is the parallel engine's shard count (0 = default). Ignored
	// when Workers == 0.
	Lanes int
}

func (c FailoverConfig) withDefaults() FailoverConfig {
	if c.PoolSize == 0 {
		c.PoolSize = 1024
	}
	if c.Topic == 0 {
		c.Topic = 1
	}
	if c.Supervisors == 0 {
		c.Supervisors = 4
	}
	if c.CullPerTimeout == 0 {
		c.CullPerTimeout = c.N / 64
		if c.CullPerTimeout < 1 {
			c.CullPerTimeout = 1
		}
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 8192
	}
	if c.SettleRounds == 0 {
		c.SettleRounds = 64
	}
	return c
}

// FailoverResult is one failover measurement point.
type FailoverResult struct {
	N         int
	RepFactor int
	// SetupRounds is the unmeasured join-and-converge prologue length.
	SetupRounds int
	// ReplicaWarm reports whether the expected replicas matched the
	// owner's digest at crash time (always false with RepFactor 0).
	ReplicaWarm bool
	// FailoverRounds counts from the owner crash until the successor's
	// database is exact and every subscriber reports to it at a non-⊥
	// label; -1 when the budget expired.
	FailoverRounds int
	// Relabelled counts survivors whose label changed across the failover
	// — 0 is the warm path's "no relabelling" claim.
	Relabelled int
	// Converged reports whether every phase finished inside MaxRounds.
	Converged bool
}

// failoverHarness is the multi-supervisor sibling of Harness: a plane of
// supervisors sharded by consistent hashing, pooled subscribers routed by
// a driver-side view ring (mirroring cluster.NewLiveRF's client options).
type failoverHarness struct {
	cfg     FailoverConfig
	sched   Sim
	sups    map[sim.NodeID]*supervisor.Supervisor
	supIDs  []sim.NodeID
	ring    *hashdht.Ring
	pools   []*Pool
	subBase sim.NodeID
}

func newFailoverHarness(cfg FailoverConfig) *failoverHarness {
	sched := newSim(cfg.Seed, cfg.Workers, cfg.Lanes, 0)
	ids := make([]sim.NodeID, cfg.Supervisors)
	for i := range ids {
		ids[i] = SupervisorID + sim.NodeID(i)
	}
	ring := hashdht.NewRing(0)
	h := &failoverHarness{
		cfg:   cfg,
		sched: sched,
		sups:  make(map[sim.NodeID]*supervisor.Supervisor, cfg.Supervisors),
		ring:  ring,
	}
	for _, id := range ids {
		sup := supervisor.New(id, sched)
		sup.CullPerTimeout = cfg.CullPerTimeout
		if cfg.Supervisors > 1 {
			sup.JoinPlane(ids)
			if cfg.ReplicationFactor > 0 {
				sup.SetReplicationFactor(cfg.ReplicationFactor)
			}
		}
		sched.AddNode(id, sup)
		h.sups[id] = sup
		ring.Add(id)
	}
	h.supIDs = ids

	opts := core.Options{
		Supervisors: ids,
		SupervisorFor: func(t sim.Topic) sim.NodeID {
			if id, ok := ring.OwnerTopic(t); ok {
				return id
			}
			return SupervisorID
		},
	}
	numPools := (cfg.N + cfg.PoolSize - 1) / cfg.PoolSize
	h.subBase = SupervisorID + sim.NodeID(cfg.Supervisors) + sim.NodeID(numPools)
	for j := 0; j < numPools; j++ {
		base := h.subBase + sim.NodeID(j*cfg.PoolSize)
		k := cfg.PoolSize
		if rest := cfg.N - j*cfg.PoolSize; rest < k {
			k = rest
		}
		p := NewPool(sched, base, k, SupervisorID, opts)
		p.Register(sched, SupervisorID+sim.NodeID(cfg.Supervisors)+sim.NodeID(j))
		h.pools = append(h.pools, p)
	}
	return h
}

func (h *failoverHarness) client(i int) *core.Client {
	return h.pools[i/h.cfg.PoolSize].Client(i % h.cfg.PoolSize)
}

// replicasWarm reports whether every live expected replica holder's digest
// matches the owner's database digest for the topic.
func (h *failoverHarness) replicasWarm() bool {
	if h.cfg.ReplicationFactor <= 0 {
		return false
	}
	t := h.cfg.Topic
	owner, ok := h.ring.OwnerTopic(t)
	if !ok {
		return false
	}
	epoch, hash, count, ok := h.sups[owner].DirectoryDigest(t)
	if !ok {
		return false
	}
	for _, id := range h.ring.Successors(hashdht.TopicKey(t), h.cfg.ReplicationFactor) {
		rEpoch, rHash, rCount, held := h.sups[id].HeldReplicaDigest(t)
		if !held || rEpoch != epoch || rCount != count || rHash != hash {
			return false
		}
	}
	return true
}

// RunFailover executes one measurement: join N subscribers, converge,
// settle (replica steady state), crash the topic's owner and time the
// rounds until the successor's database is exact and every subscriber
// reports to it with a non-⊥ label.
func RunFailover(cfg FailoverConfig) FailoverResult {
	cfg = cfg.withDefaults()
	h := newFailoverHarness(cfg)
	defer h.sched.Close()
	t := cfg.Topic
	res := FailoverResult{N: cfg.N, RepFactor: cfg.ReplicationFactor}

	// Prologue: mass join, wait for labels, then for the owner's database
	// to be exact.
	for i := 0; i < cfg.N; i++ {
		id := h.subBase + sim.NodeID(i)
		h.sched.Send(sim.Message{To: id, From: id, Topic: t, Body: core.JoinTopic{}})
	}
	owner, _ := h.ring.OwnerTopic(t)
	setup, ok := h.sched.RunRoundsUntil(cfg.MaxRounds, func() bool {
		return h.sups[owner].N(t) == cfg.N
	})
	res.SetupRounds = setup
	if !ok {
		return res
	}
	h.sched.RunRounds(cfg.SettleRounds)
	res.ReplicaWarm = h.replicasWarm()

	// Record pre-crash labels (the warm path's no-relabelling claim).
	before := make([]label.Label, cfg.N)
	for i := 0; i < cfg.N; i++ {
		before[i] = h.client(i).CurrentLabel(t)
	}

	// Crash the owner; the driver view ring follows, so fresh routing
	// decisions go to the successor (as in cluster.Live.CrashSupervisor).
	h.sched.Crash(owner)
	h.ring.Remove(owner)
	newOwner, _ := h.ring.OwnerTopic(t)

	// Measure: successor database exact AND every subscriber re-homed at a
	// non-⊥ label. The pending-set poll touches only not-yet-re-homed
	// subscribers, so the per-round cost shrinks as the failover proceeds.
	pending := make([]int, cfg.N)
	for i := range pending {
		pending[i] = i
	}
	res.FailoverRounds = -1
	rounds, ok := h.sched.RunRoundsUntil(cfg.MaxRounds, func() bool {
		next := pending[:0]
		for _, i := range pending {
			cl := h.client(i)
			if cl.ReportsTo(t) != newOwner || !cl.Labelled(t) {
				next = append(next, i)
			}
		}
		pending = next
		return len(pending) == 0 && h.sups[newOwner].N(t) == cfg.N
	})
	if !ok {
		return res
	}
	res.FailoverRounds = rounds
	res.Converged = true
	for i := 0; i < cfg.N; i++ {
		if h.client(i).CurrentLabel(t) != before[i] {
			res.Relabelled++
		}
	}
	return res
}
