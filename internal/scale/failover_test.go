package scale

import (
	"testing"
)

// TestFailoverWarm exercises the tentpole end to end at pooled scale: with
// a positive replication factor the successor adopts its warm replica, so
// failover converges without relabelling a single survivor.
func TestFailoverWarm(t *testing.T) {
	res := RunFailover(FailoverConfig{N: 300, PoolSize: 64, Seed: 1, ReplicationFactor: 2})
	if !res.Converged {
		t.Fatalf("warm failover did not converge: %+v", res)
	}
	if !res.ReplicaWarm {
		t.Fatalf("replicas were not warm at crash time: %+v", res)
	}
	if res.Relabelled != 0 {
		t.Fatalf("warm failover relabelled %d survivors, want 0", res.Relabelled)
	}
}

// TestFailoverCold measures the PR 5 baseline (ReplicationFactor 0): the
// successor must rebuild from subscriber Reregisters. It still converges —
// the point of the warm path is speed, not reachability.
func TestFailoverCold(t *testing.T) {
	res := RunFailover(FailoverConfig{N: 300, PoolSize: 64, Seed: 1})
	if !res.Converged {
		t.Fatalf("cold failover did not converge: %+v", res)
	}
	if res.ReplicaWarm {
		t.Fatalf("ReplicaWarm true with ReplicationFactor 0: %+v", res)
	}
}

// TestFailoverWarmFasterThanCold pins the headline claim: warm adoption
// beats the cold rebuild at the same N and seed.
func TestFailoverWarmFasterThanCold(t *testing.T) {
	warm := RunFailover(FailoverConfig{N: 400, PoolSize: 64, Seed: 7, ReplicationFactor: 1})
	cold := RunFailover(FailoverConfig{N: 400, PoolSize: 64, Seed: 7})
	if !warm.Converged || !cold.Converged {
		t.Fatalf("non-convergence: warm=%+v cold=%+v", warm, cold)
	}
	if warm.FailoverRounds >= cold.FailoverRounds {
		t.Fatalf("warm failover (%d rounds) not faster than cold (%d rounds)",
			warm.FailoverRounds, cold.FailoverRounds)
	}
}

// TestFailoverDeterministic replays the same configuration twice and
// requires bit-identical results — the scheduler is deterministic and the
// harness must not introduce map-order or time dependence.
func TestFailoverDeterministic(t *testing.T) {
	cfg := FailoverConfig{N: 200, PoolSize: 64, Seed: 3, ReplicationFactor: 2}
	a := RunFailover(cfg)
	b := RunFailover(cfg)
	if a != b {
		t.Fatalf("failover run not deterministic:\n a=%+v\n b=%+v", a, b)
	}
}
