package scale

import (
	"math"
	"testing"
	"time"

	"sspubsub/internal/core"
	"sspubsub/internal/runtime/concurrent"
	"sspubsub/internal/sim"
	"sspubsub/internal/supervisor"
)

// The full scenario at a modest N: every pooled subscriber joins, gets a
// label, receives the probe publication; the crash burst is culled.
func TestRunSmallN(t *testing.T) {
	res := Run(Config{N: 96, PoolSize: 16, Seed: 7})
	if !res.Converged {
		t.Fatal("scenario did not converge")
	}
	if res.JoinRounds.Max <= 0 {
		t.Fatalf("join rounds summary empty: %+v", res.JoinRounds)
	}
	if res.FanoutRounds.Count != 96 {
		t.Fatalf("fan-out measured %d subscribers, want 96", res.FanoutRounds.Count)
	}
	if res.Crashed < 1 || res.StabilizeRounds <= 0 {
		t.Fatalf("stabilization probe: crashed %d in %d rounds", res.Crashed, res.StabilizeRounds)
	}
	if res.SupDBBytes == 0 || res.SubTrieBytes == 0 {
		t.Fatalf("memory probes returned zero: db %d trie %d", res.SupDBBytes, res.SubTrieBytes)
	}
	if res.OverflowDropped != 0 {
		t.Fatalf("no ceiling configured but %d messages shed", res.OverflowDropped)
	}
}

// Pooled subscribers are protocol-equivalent to dedicated nodes: same
// deterministic scheduler, same seed, the supervisor cannot tell them
// apart, and the whole population converges to one legitimate ring.
func TestPooledSubscribersConvergeLikeDedicated(t *testing.T) {
	h := New(Config{N: 40, PoolSize: 8, Seed: 3})
	h.JoinAll()
	if _, ok := h.AwaitLabelled(); !ok {
		t.Fatal("pooled subscribers did not all get labels")
	}
	if got := h.Sup.N(h.Cfg.Topic); got != 40 {
		t.Fatalf("supervisor database has %d entries, want 40", got)
	}
	// Labels must be exactly l(0)..l(n-1): the database is legitimate.
	if h.Sup.Corrupted(h.Cfg.Topic) {
		t.Fatal("supervisor database corrupted after mass join")
	}
}

// A crashed virtual subscriber must vanish like a crashed dedicated node:
// messages to it drop, the detector suspects it, the supervisor culls it.
func TestVirtualCrashSemantics(t *testing.T) {
	h := New(Config{N: 24, PoolSize: 8, Seed: 11})
	h.JoinAll()
	if _, ok := h.AwaitLabelled(); !ok {
		t.Fatal("join did not converge")
	}
	victim := h.ID(5)
	h.Sched.Crash(victim)
	h.Pools[0].Kill(5)
	if !h.Sched.Crashed(victim) {
		t.Fatal("substrate does not report the virtual subscriber crashed")
	}
	if rounds, ok := h.AwaitDBSize(23); !ok {
		t.Fatalf("supervisor never culled the crashed virtual subscriber (waited %d rounds)", rounds)
	}
}

// A pool crash fails all of its virtual subscribers at once (machine
// failure): their traffic drops and the supervisor eventually culls the
// whole block.
func TestPoolCrashFailsItsListeners(t *testing.T) {
	h := New(Config{N: 32, PoolSize: 8, Seed: 5})
	h.JoinAll()
	if _, ok := h.AwaitLabelled(); !ok {
		t.Fatal("join did not converge")
	}
	// Crash pool 1's node and each of its listeners on the detector.
	h.Sched.Crash(SupervisorID + 2)
	for i := 8; i < 16; i++ {
		h.Sched.Crash(h.ID(i))
	}
	if _, ok := h.AwaitDBSize(24); !ok {
		t.Fatal("supervisor did not cull the crashed pool's subscribers")
	}
}

// The pool multiplexing must work identically on the concurrent
// (goroutine-per-node) substrate: virtual IDs alias into the pool's
// mailbox, labels arrive, a publication fans out.
func TestPoolOnConcurrentRuntime(t *testing.T) {
	rt := concurrent.NewRuntime(concurrent.Options{Interval: 2 * time.Millisecond, Seed: 9})
	defer rt.Close()
	sup := supervisor.New(SupervisorID, rt)
	sup.CullPerTimeout = 4
	rt.AddNode(SupervisorID, sup)

	const n, topic = 48, sim.Topic(1)
	base := SupervisorID + 2
	pool := NewPool(rt, base, n, SupervisorID, core.Options{})
	pool.Register(rt, SupervisorID+1)

	for i := 0; i < n; i++ {
		id := base + sim.NodeID(i)
		rt.Send(sim.Message{To: id, From: id, Topic: topic, Body: core.JoinTopic{}})
	}
	deadline := time.Now().Add(10 * time.Second)
	labelled := func() bool {
		for i := 0; i < n; i++ {
			if !pool.Client(i).Labelled(topic) {
				return false
			}
		}
		return true
	}
	for !labelled() {
		if time.Now().After(deadline) {
			t.Fatal("pooled subscribers never all got labels on the concurrent runtime")
		}
		time.Sleep(5 * time.Millisecond)
	}

	pub := base // subscriber 0 publishes
	rt.Send(sim.Message{To: pub, From: pub, Topic: topic, Body: core.PublishCmd{Payload: "hello"}})
	for {
		all := true
		for i := 0; i < n; i++ {
			if pool.Client(i).PublicationCount(topic) < 1 {
				all = false
				break
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("publication did not reach every pooled subscriber on the concurrent runtime")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFitPowerLaw(t *testing.T) {
	// Exact power law y = 3·n^0.5.
	ns := []float64{1e3, 1e4, 1e5, 1e6}
	ys := make([]float64, len(ns))
	for i, n := range ns {
		ys[i] = 3 * math.Sqrt(n)
	}
	a, b := FitPowerLaw(ns, ys)
	if math.Abs(b-0.5) > 1e-9 || math.Abs(a-3) > 1e-6 {
		t.Fatalf("FitPowerLaw = (%g, %g), want (3, 0.5)", a, b)
	}
	// A logarithmic curve must fit a small exponent (≪ 1): that is the
	// signature the sweep uses to call a curve "consistent with O(log n)".
	for i, n := range ns {
		ys[i] = math.Log2(n)
	}
	if _, b = FitPowerLaw(ns, ys); b <= 0 || b >= 0.3 {
		t.Fatalf("log curve fitted exponent %g, want small positive", b)
	}
	// Flat-zero curves clamp instead of producing NaN/Inf.
	if a, b = FitPowerLaw(ns, []float64{0, 0, 0, 0}); math.IsNaN(b) || math.IsInf(b, 0) {
		t.Fatalf("flat curve fit = (%g, %g)", a, b)
	}
	if a, b = FitPowerLaw(nil, nil); a != 0 || b != 0 {
		t.Fatalf("empty fit = (%g, %g), want (0, 0)", a, b)
	}
}
