package scale

import (
	"runtime"

	"sspubsub/internal/psim"
	"sspubsub/internal/sim"
)

// Sim is the deterministic-simulation seam the scale harness drives:
// everything it needs from an event engine, satisfied by both the serial
// sim.Scheduler and the lane-sharded parallel psim.Engine. The harness
// code is engine-oblivious; Config.Workers picks the implementation.
type Sim interface {
	Substrate // sim.Transport + AddListener

	// Crashed reports whether the node has crashed.
	Crashed(id sim.NodeID) bool
	// RunRounds advances virtual time by k timeout intervals.
	RunRounds(k int)
	// RunRoundsUntil advances round by round until pred holds or maxRounds
	// elapsed.
	RunRoundsUntil(maxRounds int, pred func() bool) (rounds int, ok bool)
	// Now returns the current virtual time in timeout intervals.
	Now() float64
	// QueueHighWaterBytes returns the event queue's high-water footprint.
	QueueHighWaterBytes() uint64
	// OverflowDropped returns how many messages a MaxQueuedEvents ceiling
	// shed.
	OverflowDropped() int64
	// SetFault installs (or clears) a transport-layer fault filter.
	SetFault(f sim.FaultFunc)
}

var (
	_ Sim = (*sim.Scheduler)(nil)
	_ Sim = (*psim.Engine)(nil)
)

// DefaultWorkers is the -workers default: one lane worker per available
// CPU (the parallel engine clamps it to its lane count).
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// newSim builds the configured engine. workers <= 0 selects the legacy
// serial sim.Scheduler — a different (equally deterministic) schedule that
// every pre-existing seed-pinned artifact was recorded on. workers >= 1
// selects the lane-sharded parallel engine, whose results are bit-identical
// for every workers value (including 1: inline execution, no goroutines);
// see psim's package docs for the determinism contract.
func newSim(seed int64, workers, lanes, maxQueuedEvents int) Sim {
	if workers <= 0 {
		return sim.NewScheduler(sim.SchedulerOptions{
			Seed:            seed,
			MaxQueuedEvents: maxQueuedEvents,
		})
	}
	return psim.New(psim.Options{
		Seed:            seed,
		Workers:         workers,
		Lanes:           lanes,
		MaxQueuedEvents: maxQueuedEvents,
	})
}
