package scale

import (
	"math/rand"
	"sync"

	"sspubsub/internal/core"
	"sspubsub/internal/sim"
)

// Substrate is the transport seam the harness multiplexes over: any
// sim.Transport that can alias virtual node IDs onto a pool node. Both the
// deterministic Scheduler and the concurrent Runtime satisfy it.
type Substrate interface {
	sim.Transport
	AddListener(id, owner sim.NodeID)
}

// Pool is a sim.Handler hosting K virtual subscribers — real, unmodified
// core.Client protocol state machines — behind one physical node. The pool
// node owns the timeout chain (one scheduler event or one goroutine for
// all K) and the mailbox; each virtual ID is a Substrate listener routing
// its traffic back here. Virtual IDs are the contiguous range
// [Base, Base+Len), so demultiplexing is arithmetic, not a map lookup.
//
// Every protocol message a virtual subscriber sends or receives is a real
// message through the substrate, with From/To naming the virtual ID — the
// supervisor and any non-pooled peers cannot tell a pooled subscriber from
// a dedicated node. Only the scheduling is multiplexed: all K subscribers
// tick in the same instant, at the pool's phase, instead of at K
// independent phases.
type Pool struct {
	mu      sync.Mutex
	base    sim.NodeID
	tr      sim.Transport
	clients []*core.Client
	dead    []bool // Kill'ed (crashed) virtual subscribers: skip their ticks
	ctx     poolCtx
	live    int
}

// NewPool creates K clients with IDs base … base+k−1 reporting to the
// given supervisor. Call Register to attach the pool to a substrate.
func NewPool(tr sim.Transport, base sim.NodeID, k int, supervisor sim.NodeID, opts core.Options) *Pool {
	p := &Pool{
		base:    base,
		tr:      tr,
		clients: make([]*core.Client, k),
		dead:    make([]bool, k),
		live:    k,
	}
	for i := range p.clients {
		p.clients[i] = core.NewClient(base+sim.NodeID(i), supervisor, opts)
	}
	return p
}

// Register adds the pool node under poolID and every virtual subscriber as
// a listener aliased to it.
func (p *Pool) Register(s Substrate, poolID sim.NodeID) {
	s.AddNode(poolID, p)
	for i := range p.clients {
		s.AddListener(p.base+sim.NodeID(i), poolID)
	}
}

// Base returns the first virtual ID.
func (p *Pool) Base() sim.NodeID { return p.base }

// Len returns the number of virtual subscribers (dead ones included).
func (p *Pool) Len() int { return len(p.clients) }

// Live returns the number of not-yet-killed virtual subscribers.
func (p *Pool) Live() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live
}

// Client returns the i-th virtual subscriber's state machine (introspection
// only — the protocol drives it through the pool).
func (p *Pool) Client(i int) *core.Client { return p.clients[i] }

// Owns reports whether the virtual ID falls in this pool's range.
func (p *Pool) Owns(id sim.NodeID) bool {
	return id >= p.base && id < p.base+sim.NodeID(len(p.clients))
}

// Kill marks the i-th virtual subscriber crashed inside the pool: its
// periodic actions stop and inbound messages are ignored. The caller must
// also Crash the virtual ID on the substrate so the failure detector
// starts suspecting it — Kill alone models only the silent half.
func (p *Pool) Kill(i int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.dead[i] {
		p.dead[i] = true
		p.live--
	}
}

// OnTimeout drives every live virtual subscriber's periodic actions, in ID
// order. This preserves "every node executes its Timeout once per
// interval" (the paper's weakly fair action model) — the K subscribers
// just share one phase instead of K random ones.
func (p *Pool) OnTimeout(ctx sim.Context) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ctx.inner = ctx
	p.ctx.tr = p.tr
	for i, c := range p.clients {
		if p.dead[i] {
			continue
		}
		p.ctx.self = p.base + sim.NodeID(i)
		c.OnTimeout(&p.ctx)
	}
	p.ctx.inner = nil
}

// OnMessage routes a message to the virtual subscriber it addresses.
func (p *Pool) OnMessage(ctx sim.Context, m sim.Message) {
	p.mu.Lock()
	defer p.mu.Unlock()
	i := int(m.To - p.base)
	if i < 0 || i >= len(p.clients) || p.dead[i] {
		return // not ours (stale routing) or crashed: the message vanishes
	}
	p.ctx.inner = ctx
	p.ctx.tr = p.tr
	p.ctx.self = m.To
	p.clients[i].OnMessage(&p.ctx, m)
	p.ctx.inner = nil
}

var _ sim.Handler = (*Pool)(nil)

// poolCtx presents the pool's execution context as one virtual
// subscriber's: Self and the From field of every Send name the virtual ID,
// so protocol peers see the subscriber, never the pool. One instance is
// reused across all K drives per tick (handlers must not retain a Context,
// per its contract), keeping the multiplexing allocation-free.
type poolCtx struct {
	inner sim.Context
	tr    sim.Transport
	self  sim.NodeID
}

func (c *poolCtx) Self() sim.NodeID { return c.self }
func (c *poolCtx) Send(to sim.NodeID, topic sim.Topic, body any) {
	c.tr.Send(sim.Message{To: to, From: c.self, Topic: topic, Body: body})
}
func (c *poolCtx) Rand() *rand.Rand { return c.inner.Rand() }
func (c *poolCtx) Now() float64     { return c.inner.Now() }
