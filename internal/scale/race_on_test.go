//go:build race

package scale

// raceEnabled reports that this test binary runs under the race detector,
// where a full 10^4-subscriber P-independence sweep would take minutes —
// the property tests shrink N (the property is size-independent; CI's
// scale-smoke job covers the full size without the detector).
const raceEnabled = true
