package concurrent

import (
	"sync"

	"sspubsub/internal/sim"
)

// mailbox is the loss-free channel of one node: a buffered Go channel as
// the fast path plus an unbounded overflow queue behind a mutex, so push
// never blocks and never drops (the paper's channels "store any finite
// number of messages"). Delivery order across the two tiers is not FIFO,
// which the model explicitly permits.
//
// Invariant: whenever the overflow is non-empty, the channel was full at
// the moment of the last push (push shifts overflow into the channel while
// there is room, under the same lock). Hence a consumer blocked on an
// empty channel implies an empty overflow, and draining the overflow after
// every channel receive keeps spilled messages from stalling.
type mailbox struct {
	ch chan sim.Message

	mu     sync.Mutex
	over   []sim.Message
	closed bool
}

func newMailbox(depth int) *mailbox {
	return &mailbox{ch: make(chan sim.Message, depth)}
}

// push enqueues a message, spilling to the overflow when the channel is
// full. It reports false when the mailbox is closed (the node stopped).
func (b *mailbox) push(m sim.Message) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return false
	}
	b.over = append(b.over, m)
	for len(b.over) > 0 {
		select {
		case b.ch <- b.over[0]:
			b.over = b.over[1:]
		default:
			return true
		}
	}
	return true
}

// takeOverflow removes and returns all spilled messages.
func (b *mailbox) takeOverflow() []sim.Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := b.over
	b.over = nil
	return out
}

// close marks the mailbox closed, discards the overflow and returns how
// many messages it held. The channel itself is drained by the caller.
func (b *mailbox) close() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	nOver := len(b.over)
	b.over = nil
	return nOver
}
