package concurrent

import (
	"sync"

	"sspubsub/internal/sim"
)

// segCap is the number of messages one pooled overflow segment holds. 64
// envelopes ≈ 4KB per segment: large enough that a sustained burst costs
// one pool round-trip per 64 spills, small enough that an idle pool holds
// no meaningful memory.
const segCap = 64

// seg is one fixed-size chunk of an overflow queue. Segments are recycled
// through segPool; every consumed slot is zeroed before the segment goes
// back, so a pooled segment never retains message bodies.
type seg struct {
	buf  [segCap]sim.Message
	next *seg
}

var segPool = sync.Pool{New: func() any { return new(seg) }}

// overflowQueue is a FIFO of messages backed by a linked list of pooled
// fixed-size segments. Unlike the append/re-slice queue it replaces, its
// steady state allocates nothing: segments come from and return to
// segPool, and a queue that drains hands all its memory back. Not
// goroutine-safe; the owning mailbox's lock guards it.
type overflowQueue struct {
	head, tail *seg
	hi, ti     int // head read index, tail write index
	n          int
}

func (q *overflowQueue) len() int { return q.n }

func (q *overflowQueue) push(m sim.Message) {
	switch {
	case q.tail == nil:
		s := segPool.Get().(*seg)
		q.head, q.tail = s, s
		q.hi, q.ti = 0, 0
	case q.ti == segCap:
		s := segPool.Get().(*seg)
		q.tail.next = s
		q.tail = s
		q.ti = 0
	}
	q.tail.buf[q.ti] = m
	q.ti++
	q.n++
}

func (q *overflowQueue) peek() (sim.Message, bool) {
	if q.n == 0 {
		return sim.Message{}, false
	}
	return q.head.buf[q.hi], true
}

func (q *overflowQueue) pop() (sim.Message, bool) {
	if q.n == 0 {
		return sim.Message{}, false
	}
	s := q.head
	m := s.buf[q.hi]
	s.buf[q.hi] = sim.Message{} // release the Body reference
	q.hi++
	q.n--
	switch {
	case q.hi == segCap:
		q.head = s.next
		s.next = nil
		segPool.Put(s)
		q.hi = 0
		if q.head == nil {
			q.tail, q.ti = nil, 0
		}
	case q.n == 0:
		// Single partially consumed segment: all written slots have been
		// popped (and zeroed), so recycle it rather than letting the
		// read index creep toward a premature segment change.
		q.head, q.tail = nil, nil
		s.next = nil
		segPool.Put(s)
		q.hi, q.ti = 0, 0
	}
	return m, true
}

// reset discards all queued messages, returning how many there were and
// every segment to the pool.
func (q *overflowQueue) reset() int {
	dropped := q.n
	for {
		if _, ok := q.pop(); !ok {
			return dropped
		}
	}
}

// mailbox is the loss-free channel of one node: a buffered Go channel as
// the fast path plus an unbounded overflow queue behind a mutex, so push
// never blocks and never drops (the paper's channels "store any finite
// number of messages"). Delivery order across the two tiers is not FIFO,
// which the model explicitly permits.
//
// Invariant: whenever the overflow is non-empty, the channel was full at
// the moment of the last push (push shifts overflow into the channel while
// there is room, under the same lock). Hence a consumer blocked on an
// empty channel implies an empty overflow, and draining the overflow after
// every channel receive keeps spilled messages from stalling.
type mailbox struct {
	ch chan sim.Message

	mu     sync.Mutex
	over   overflowQueue
	closed bool
}

func newMailbox(depth int) *mailbox {
	return &mailbox{ch: make(chan sim.Message, depth)}
}

// push enqueues a message, spilling to the overflow when the channel is
// full. It reports false when the mailbox is closed (the node stopped).
func (b *mailbox) push(m sim.Message) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return false
	}
	if b.over.len() == 0 {
		// Fast path: nothing spilled, so FIFO within the channel tier is
		// preserved by sending directly.
		select {
		case b.ch <- m:
			return true
		default:
		}
	}
	b.over.push(m)
	for {
		front, ok := b.over.peek()
		if !ok {
			return true
		}
		select {
		case b.ch <- front:
			b.over.pop()
		default:
			return true
		}
	}
}

// overflowLen returns the number of currently spilled messages.
func (b *mailbox) overflowLen() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.over.len()
}

// popOverflow removes and returns the oldest spilled message.
func (b *mailbox) popOverflow() (sim.Message, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.over.pop()
}

// close marks the mailbox closed, discards the overflow and returns how
// many messages it held. The channel itself is drained by the caller.
func (b *mailbox) close() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	return b.over.reset()
}
