package concurrent

import (
	"sync"
	"testing"
	"time"

	"sspubsub/internal/sim"
)

// TestOverflowQueueFIFO: order is preserved across segment boundaries and
// interleaved push/pop, and a drained queue reports empty.
func TestOverflowQueueFIFO(t *testing.T) {
	var q overflowQueue
	const total = 5*segCap + 17 // force several segment transitions
	next := 0
	for i := 0; i < total; i++ {
		q.push(sim.Message{From: sim.NodeID(i)})
		if i%3 == 0 { // interleave pops so head and tail chase each other
			m, ok := q.pop()
			if !ok || m.From != sim.NodeID(next) {
				t.Fatalf("pop %d: got (%v, %v), want From=%d", next, m.From, ok, next)
			}
			next++
		}
	}
	for {
		m, ok := q.pop()
		if !ok {
			break
		}
		if m.From != sim.NodeID(next) {
			t.Fatalf("pop %d: got From=%d", next, m.From)
		}
		next++
	}
	if next != total {
		t.Fatalf("popped %d messages, want %d", next, total)
	}
	if q.len() != 0 {
		t.Fatalf("drained queue has len %d", q.len())
	}
	if q.head != nil || q.tail != nil {
		t.Fatal("drained queue retains segments")
	}
}

// TestOverflowQueueReset: reset returns the queued count and releases all
// segments.
func TestOverflowQueueReset(t *testing.T) {
	var q overflowQueue
	const total = 3*segCap + 5
	for i := 0; i < total; i++ {
		q.push(sim.Message{From: sim.NodeID(i)})
	}
	if got := q.reset(); got != total {
		t.Fatalf("reset returned %d, want %d", got, total)
	}
	if q.len() != 0 || q.head != nil || q.tail != nil {
		t.Fatal("reset left queue non-empty")
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop after reset returned a message")
	}
}

// TestOverflowQueueAllocFree: the push/pop steady state recycles pooled
// segments rather than allocating. The bound is fractional, not zero,
// only because a GC pass during the measurement may empty the pool.
func TestOverflowQueueAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; alloc counts are meaningless")
	}
	var q overflowQueue
	m := sim.Message{From: 1}
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 3*segCap; i++ {
			q.push(m)
		}
		for {
			if _, ok := q.pop(); !ok {
				break
			}
		}
	})
	if avg > 1 {
		t.Errorf("overflow churn allocates %.2f objects per %d-message cycle, want ≈ 0", avg, 3*segCap)
	}
}

// countingHandler counts deliveries and can be slowed to force spills.
type countingHandler struct {
	mu    sync.Mutex
	seen  map[int64]int
	total int
	delay time.Duration
}

func (h *countingHandler) OnMessage(_ sim.Context, m sim.Message) {
	if h.delay > 0 {
		time.Sleep(h.delay)
	}
	h.mu.Lock()
	h.seen[int64(m.Body.(int))]++
	h.total++
	h.mu.Unlock()
}
func (h *countingHandler) OnTimeout(sim.Context) {}

// TestOverflowUnderSustainedLoad hammers one node (tiny mailbox channel,
// slow handler, many concurrent senders) so the bulk of the traffic
// spills through the overflow queue, then verifies the loss-free
// contract exactly: every message delivered exactly once, and the
// runtime's Delivered/ReceivedBy/SentBy/CountByType counters all agree.
func TestOverflowUnderSustainedLoad(t *testing.T) {
	r := NewRuntime(Options{
		Interval:     time.Millisecond,
		MailboxDepth: 2, // force nearly everything through the overflow
	})
	defer r.Close()
	h := &countingHandler{seen: make(map[int64]int), delay: 10 * time.Microsecond}
	const target sim.NodeID = 1
	r.AddNode(target, h)

	const senders, perSender = 8, 400
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				r.Send(sim.Message{To: target, From: sim.NodeID(100 + s), Topic: 1, Body: s*perSender + i})
			}
		}(s)
	}
	wg.Wait()

	const total = senders * perSender
	if !r.Quiesce(30*time.Second, func() {}) {
		t.Fatal("system did not drain")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total != total {
		t.Fatalf("handler saw %d messages, want %d", h.total, total)
	}
	for k, c := range h.seen {
		if c != 1 {
			t.Fatalf("message %d delivered %d times", k, c)
		}
	}
	if len(h.seen) != total {
		t.Fatalf("distinct messages %d, want %d", len(h.seen), total)
	}
	if got := r.Delivered(); got != total {
		t.Errorf("Delivered = %d, want %d", got, total)
	}
	if got := r.ReceivedBy(target); got != total {
		t.Errorf("ReceivedBy = %d, want %d", got, total)
	}
	if got := r.Dropped(); got != 0 {
		t.Errorf("Dropped = %d, want 0", got)
	}
	if got := r.CountByType("int"); got != total {
		t.Errorf("CountByType(int) = %d, want %d", got, total)
	}
	for s := 0; s < senders; s++ {
		if got := r.SentBy(sim.NodeID(100 + s)); got != perSender {
			t.Errorf("SentBy(%d) = %d, want %d", 100+s, got, perSender)
		}
	}
}
