// Package concurrent is the production execution substrate: a live,
// goroutine-per-node runtime implementing sim.Transport. Compared to the
// reference executions in package sim it adds
//
//   - buffered mailbox channels with a loss-free overflow queue (the
//     paper's unbounded channels, but with a fast path that avoids a
//     mutex+slice round trip for the common case),
//   - real-time Timeout ticks with per-tick jitter, so node phases drift
//     like they do on real hardware instead of staying locked,
//   - a crash/restart fault injector (Injector) for churn testing: a
//     restarted node comes back with whatever state it had, which is
//     exactly the "arbitrary initial state" the protocol self-stabilizes
//     from,
//   - a graceful drain/quiesce barrier (Quiesce) that freezes the whole
//     system so convergence predicates can read a consistent cross-node
//     snapshot, then resumes.
//
// Protocol nodes implement sim.Handler against sim.Context and run here
// unchanged.
package concurrent

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sspubsub/internal/sim"
)

// Options configure a concurrent runtime.
type Options struct {
	// Interval is the real-time length of one timeout interval.
	// Default 10ms.
	Interval time.Duration
	// Jitter perturbs every tick by ±Jitter·Interval, drawn uniformly per
	// tick from the node's own random source. Must be in [0, 1).
	// Default 0.2.
	Jitter float64
	// Seed derives the per-node random sources. Live runs are not
	// deterministic (goroutine interleaving), but seeding keeps protocol
	// coin flips reproducible in aggregate.
	Seed int64
	// MailboxDepth is the capacity of each node's buffered mailbox channel;
	// traffic beyond it spills into an unbounded overflow queue, so no
	// message is ever lost. Default 256.
	MailboxDepth int
	// DetectorGrace is how long after a crash the failure detector keeps
	// answering "alive", modelling the eventually-correct detector of
	// Section 3.3. Default 2·Interval.
	DetectorGrace time.Duration
	// Redirect, when non-nil, is consulted on every Send after the
	// accounting step. Returning true means an external carrier (a network
	// transport) has taken the message and will re-enter it through Inject
	// once it arrives; returning false delivers locally as usual.
	Redirect func(m sim.Message) bool
	// ExtraPending, when non-nil, reports in-flight work held outside the
	// runtime (frames queued in a socket writer or sitting in the kernel).
	// Quiesce only declares the system drained once it returns zero.
	ExtraPending func() int64
}

// Runtime executes sim.Handlers live, one goroutine per node. It implements
// sim.Transport and sim.Detector.
type Runtime struct {
	opts  Options
	start time.Time

	mu      sync.RWMutex
	nodes   map[sim.NodeID]*node
	crashed map[sim.NodeID]time.Time
	seedC   int64
	closed  bool

	// pending counts messages enqueued but not yet fully handled; busy
	// counts handlers currently executing. paused suppresses Timeout
	// actions. Together they implement the quiesce barrier.
	pending   atomic.Int64
	busy      atomic.Int64
	paused    atomic.Bool
	quiesce   sync.Mutex  // serializes Quiesce callers
	inQuiesce atomic.Bool // true while a quiesce callback runs

	delivered atomic.Int64
	dropped   atomic.Int64
	// fault is the transport-layer fault filter (sim.FaultFunc); it is read
	// on every Send from arbitrary goroutines, hence the atomic holder.
	fault atomic.Pointer[sim.FaultFunc]
	// delayed counts messages held back by FaultDelay timers; Quiesce must
	// wait them out, exactly like frames an external carrier still holds.
	delayed atomic.Int64
	// delaySeq spreads FaultDelay hold times so two delayed messages from
	// the same burst come back in a different order than they left.
	delaySeq atomic.Int64
	// injects counts every mailbox entry attempt. Quiesce requires it to be
	// stable across a drain check: a carried frame can hop from ExtraPending
	// into pending between two counter reads, and the hop is only visible as
	// an inject.
	injects atomic.Int64

	acctMu sync.Mutex
	byType map[string]int64
	sentBy map[sim.NodeID]int64
	// recvBy counters are per-node atomics so the delivery hot path never
	// takes acctMu; the pointers are stable across Restart and survive
	// node removal so ReceivedBy stays queryable.
	recvBy map[sim.NodeID]*atomic.Int64

	wg sync.WaitGroup
}

type node struct {
	id sim.NodeID
	h  sim.Handler
	// owner is non-⊥ for listeners (AddListener): messages addressed to
	// this ID are routed into the owner's mailbox and handled by the
	// owner's handler on the owner's goroutine. Listeners have no
	// goroutine, mailbox, rng or stop channel of their own.
	owner sim.NodeID
	rng   *rand.Rand // used only from the node's own goroutine
	mbox  *mailbox
	recv  *atomic.Int64
	stop  chan struct{}
	rt    *Runtime
}

// NewRuntime creates a concurrent runtime with no nodes.
func NewRuntime(opts Options) *Runtime {
	if opts.Interval == 0 {
		opts.Interval = 10 * time.Millisecond
	}
	if opts.Jitter == 0 {
		opts.Jitter = 0.2
	}
	if opts.Jitter < 0 || opts.Jitter >= 1 {
		panic("concurrent: Jitter must be in [0, 1)")
	}
	if opts.MailboxDepth == 0 {
		opts.MailboxDepth = 256
	}
	if opts.DetectorGrace == 0 {
		opts.DetectorGrace = 2 * opts.Interval
	}
	return &Runtime{
		opts:    opts,
		start:   time.Now(),
		nodes:   make(map[sim.NodeID]*node),
		crashed: make(map[sim.NodeID]time.Time),
		seedC:   opts.Seed,
		byType:  make(map[string]int64),
		sentBy:  make(map[sim.NodeID]int64),
		recvBy:  make(map[sim.NodeID]*atomic.Int64),
	}
}

// AddNode registers a handler and starts its goroutine. Re-adding the ID of
// a crashed node is a restart: the detector stops suspecting it.
func (r *Runtime) AddNode(id sim.NodeID, h sim.Handler) {
	if id == sim.None {
		panic("concurrent: cannot add node with ID 0")
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	if _, dup := r.nodes[id]; dup {
		r.mu.Unlock()
		panic(fmt.Sprintf("concurrent: duplicate node %d", id))
	}
	r.seedC++
	n := &node{
		id:   id,
		h:    h,
		rng:  rand.New(rand.NewSource(r.seedC*0x9e3779b9 + int64(id))),
		mbox: newMailbox(r.opts.MailboxDepth),
		recv: r.recvCounter(id),
		stop: make(chan struct{}),
		rt:   r,
	}
	r.nodes[id] = n
	delete(r.crashed, id)
	r.mu.Unlock()

	r.wg.Add(1)
	go n.loop()
}

// AddListener registers id as a virtual alias of an existing owner node:
// messages addressed to id land in the owner's mailbox and are handled by
// the owner's handler on the owner's goroutine (Message.To still names id,
// so the owner can demultiplex). A listener costs one map entry — no
// goroutine, mailbox or timer — which is what lets one pool node host
// thousands of virtual subscribers. The owner is resolved per message, so
// traffic to a listener whose owner crashed is dropped, exactly like the
// deterministic Scheduler's semantics.
func (r *Runtime) AddListener(id, owner sim.NodeID) {
	if id == sim.None {
		panic("concurrent: cannot add listener with ID 0")
	}
	if owner == sim.None {
		panic("concurrent: listener needs a non-⊥ owner")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	if _, dup := r.nodes[id]; dup {
		panic(fmt.Sprintf("concurrent: duplicate node %d", id))
	}
	r.nodes[id] = &node{id: id, owner: owner, recv: r.recvCounter(id), rt: r}
	delete(r.crashed, id)
}

// Restart is AddNode for a previously crashed node, typically with the
// Handler it crashed with — its stale state is an arbitrary initial state
// for the self-stabilization machinery to repair.
func (r *Runtime) Restart(id sim.NodeID, h sim.Handler) { r.AddNode(id, h) }

// RemoveNode gracefully deregisters a node: its goroutine stops and queued
// messages are discarded.
func (r *Runtime) RemoveNode(id sim.NodeID) { r.stopNode(id, false) }

// Crash fails a node without warning (Section 3.3). Unlike RemoveNode, the
// failure detector only starts suspecting it after DetectorGrace.
func (r *Runtime) Crash(id sim.NodeID) { r.stopNode(id, true) }

func (r *Runtime) stopNode(id sim.NodeID, crash bool) {
	r.mu.Lock()
	n, ok := r.nodes[id]
	if ok {
		delete(r.nodes, id)
		if crash {
			r.crashed[id] = time.Now()
		}
	}
	r.mu.Unlock()
	if ok && n.stop != nil { // listeners own no goroutine or mailbox
		close(n.stop)
		n.discard()
	}
}

// Crashed reports whether the node has crashed (and not been restarted).
func (r *Runtime) Crashed(id sim.NodeID) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.crashed[id]
	return ok
}

// Suspects implements sim.Detector: live nodes are never suspected,
// crashed nodes are suspected once DetectorGrace has elapsed, and unknown
// or removed nodes are suspected immediately.
func (r *Runtime) Suspects(id sim.NodeID) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if _, live := r.nodes[id]; live {
		return false
	}
	if t, ok := r.crashed[id]; ok {
		return time.Since(t) >= r.opts.DetectorGrace
	}
	return true
}

// Send routes a message to the target's mailbox. Sends to ⊥, crashed or
// unknown nodes are dropped, mirroring the paper's failure semantics.
func (r *Runtime) Send(m sim.Message) {
	if m.To == sim.None {
		r.dropped.Add(1)
		return
	}
	// Count every non-⊥ send — including ones that end up dropped — so the
	// per-sender and per-type accounting means the same thing it does on
	// the deterministic Scheduler (which also counts at send time and
	// drops at delivery).
	r.acctMu.Lock()
	r.byType[sim.TypeName(m.Body)]++
	r.sentBy[m.From]++
	r.acctMu.Unlock()
	copies := 1
	if fp := r.fault.Load(); fp != nil {
		switch (*fp)(m) {
		case sim.FaultDrop:
			r.dropped.Add(1)
			return
		case sim.FaultDup:
			copies = 2
		case sim.FaultDelay:
			// Hold the message for 1–4 intervals, so traffic sent after it
			// arrives first. On expiry the message re-enters through the
			// normal routing (Redirect first, so a delayed message bound
			// for a remote peer still crosses the socket late instead of
			// being lost) but skips the fault filter — a filter returning
			// FaultDelay unconditionally must not defer forever. The
			// delayed counter keeps the held message visible to Quiesce;
			// re-entry raises pending/inflight before the counter drops, so
			// the token is never invisible.
			hold := r.opts.Interval * time.Duration(1+r.delaySeq.Add(1)%4)
			r.delayed.Add(1)
			time.AfterFunc(hold, func() {
				if r.opts.Redirect == nil || !r.opts.Redirect(m) {
					r.Inject(m)
				}
				r.delayed.Add(-1)
			})
			return
		}
	}
	for i := 0; i < copies; i++ {
		if r.opts.Redirect != nil && r.opts.Redirect(m) {
			continue
		}
		r.Inject(m)
	}
}

// SetFault installs (or clears, with nil) the transport-layer fault filter
// consulted on every Send after the accounting step. The filter runs on the
// sending goroutine and must be safe for concurrent use.
func (r *Runtime) SetFault(f sim.FaultFunc) {
	if f == nil {
		r.fault.Store(nil)
		return
	}
	r.fault.Store(&f)
}

// Inject delivers a message to a local mailbox, bypassing the Redirect
// hook and the send-side accounting: it is the re-entry point for messages
// a network transport carried over a socket (Send already counted them on
// the sending side). Messages to ⊥, crashed or unknown nodes are dropped.
func (r *Runtime) Inject(m sim.Message) {
	r.injects.Add(1)
	if m.To == sim.None {
		r.dropped.Add(1)
		return
	}
	r.mu.RLock()
	n, ok := r.nodes[m.To]
	if ok && n.owner != sim.None {
		// Listener: hand the message to the owning pool's mailbox. A missing
		// owner means the pool crashed, failing its listeners with it.
		n, ok = r.nodes[n.owner]
	}
	r.mu.RUnlock()
	if !ok {
		r.dropped.Add(1)
		return
	}
	// Raise pending before enqueueing so Quiesce can never observe the
	// message's gap between visibility and accounting.
	r.pending.Add(1)
	if !n.mbox.push(m) {
		r.pending.Add(-1)
		r.dropped.Add(1)
	}
}

// Close stops all node goroutines and waits for them to exit. Idempotent.
func (r *Runtime) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	nodes := make([]*node, 0, len(r.nodes))
	for _, n := range r.nodes {
		nodes = append(nodes, n)
	}
	r.nodes = make(map[sim.NodeID]*node)
	r.mu.Unlock()
	for _, n := range nodes {
		if n.stop != nil {
			close(n.stop)
			n.discard()
		}
	}
	r.wg.Wait()
}

// Quiesce freezes the system for a consistent cross-node snapshot: it
// suspends every node's Timeout action, waits until all mailboxes have
// drained and no handler is executing, runs f against the frozen system,
// then resumes. It returns false — without running f — if the system does
// not drain within timeout. The caller must not Send while f runs.
//
// A Quiesce issued from inside a quiesce callback (a convergence predicate
// composed of other quiescing predicates) runs f directly: the system is
// already frozen. Quiesce must only be called from one driver goroutine at
// a time plus its nested callbacks.
func (r *Runtime) Quiesce(timeout time.Duration, f func()) bool {
	if r.inQuiesce.Load() {
		f()
		return true
	}
	r.quiesce.Lock()
	defer r.quiesce.Unlock()
	r.paused.Store(true)
	defer r.paused.Store(false)
	deadline := time.Now().Add(timeout)
	for {
		// Order matters: busy is read before pending. A running message
		// handler keeps pending ≥ 1 until it returns, and once paused is
		// set no new Timeout handler can start, so busy == 0 followed by
		// pending == 0 implies the system is fully drained. ExtraPending
		// extends the barrier over messages an external carrier still
		// holds. A frame's only way from the carrier back into pending is
		// an Inject, so requiring the inject counter to be identical
		// before and after the three reads rules out a frame hopping
		// between counters mid-check: with no inject in the window, a
		// token observed absent from pending cannot reappear there, and
		// new tokens would need a running handler (busy/pending ≥ 1).
		// delayed plays the same role as ExtraPending for FaultDelay
		// holds: the timer callback Injects (raising pending) before it
		// decrements delayed, so a held message is never invisible to
		// this check.
		t0 := r.injects.Load()
		if r.busy.Load() == 0 && r.pending.Load() == 0 &&
			r.delayed.Load() == 0 &&
			(r.opts.ExtraPending == nil || r.opts.ExtraPending() == 0) &&
			r.injects.Load() == t0 {
			r.inQuiesce.Store(true)
			f()
			r.inQuiesce.Store(false)
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// Delivered returns the total number of messages handled by nodes.
func (r *Runtime) Delivered() int64 { return r.delivered.Load() }

// Dropped returns messages dropped (sent to ⊥, crashed, removed or unknown
// nodes, or discarded when their target stopped).
func (r *Runtime) Dropped() int64 { return r.dropped.Load() }

// CountByType returns the number of sends per message body type name.
func (r *Runtime) CountByType(typeName string) int64 {
	r.acctMu.Lock()
	defer r.acctMu.Unlock()
	return r.byType[typeName]
}

// SentBy returns the number of messages node id has sent so far.
func (r *Runtime) SentBy(id sim.NodeID) int64 {
	r.acctMu.Lock()
	defer r.acctMu.Unlock()
	return r.sentBy[id]
}

// recvCounter returns the stable per-node receive counter, creating it on
// first use.
func (r *Runtime) recvCounter(id sim.NodeID) *atomic.Int64 {
	r.acctMu.Lock()
	defer r.acctMu.Unlock()
	c, ok := r.recvBy[id]
	if !ok {
		c = new(atomic.Int64)
		r.recvBy[id] = c
	}
	return c
}

// ReceivedBy returns the number of messages delivered to node id so far.
func (r *Runtime) ReceivedBy(id sim.NodeID) int64 {
	r.acctMu.Lock()
	defer r.acctMu.Unlock()
	if c, ok := r.recvBy[id]; ok {
		return c.Load()
	}
	return 0
}

// ResetCounters zeroes the message accounting.
func (r *Runtime) ResetCounters() {
	r.acctMu.Lock()
	r.byType = make(map[string]int64)
	r.sentBy = make(map[sim.NodeID]int64)
	// Zero in place: live nodes hold pointers to these counters.
	for _, c := range r.recvBy {
		c.Store(0)
	}
	r.acctMu.Unlock()
	r.delivered.Store(0)
	r.dropped.Store(0)
}

// Now returns wall-clock time since the runtime started, in timeout
// intervals.
func (r *Runtime) Now() float64 {
	return float64(time.Since(r.start)) / float64(r.opts.Interval)
}

// Interval returns the configured timeout interval.
func (r *Runtime) Interval() time.Duration { return r.opts.Interval }

// NodeIDs returns the IDs of all live registered nodes, sorted.
func (r *Runtime) NodeIDs() []sim.NodeID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]sim.NodeID, 0, len(r.nodes))
	for id := range r.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Handler returns the handler registered under id, or nil. For a listener
// it resolves the owning pool's handler.
func (r *Runtime) Handler(id sim.NodeID) sim.Handler {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n, ok := r.nodes[id]
	if !ok {
		return nil
	}
	if n.owner != sim.None {
		if o, up := r.nodes[n.owner]; up {
			return o.h
		}
		return nil
	}
	return n.h
}

var _ sim.Transport = (*Runtime)(nil)

// loop is the node goroutine: it interleaves jittered Timeout ticks with
// mailbox deliveries until stopped.
func (n *node) loop() {
	defer n.rt.wg.Done()
	interval := n.rt.opts.Interval
	// Random phase spreads node timeouts across the interval.
	timer := time.NewTimer(time.Duration(n.rng.Int63n(int64(interval))))
	defer timer.Stop()
	ctx := &nodeCtx{n: n}
	for {
		select {
		case <-n.stop:
			return
		case m := <-n.mbox.ch:
			n.deliver(ctx, m)
			n.drainOverflow(ctx)
		case <-timer.C:
			// A crash may have raced the timer: never run a spontaneous
			// action after Crash() returned (Section 3.3, "stops executing
			// actions"). deliver makes the same check per message.
			select {
			case <-n.stop:
				return
			default:
			}
			// Overflow can only be non-empty while the channel is (or was
			// momentarily) full, but drain it here too so a tick never
			// races a spilled message.
			n.drainOverflow(ctx)
			// busy is raised before paused is checked; with sequentially
			// consistent atomics this closes the window in which Quiesce
			// could observe an idle system while a tick slips through.
			n.rt.busy.Add(1)
			if !n.rt.paused.Load() {
				n.h.OnTimeout(ctx)
			}
			n.rt.busy.Add(-1)
			timer.Reset(n.nextTick(interval))
		}
	}
}

// nextTick draws the next tick delay: Interval perturbed by ±Jitter.
func (n *node) nextTick(interval time.Duration) time.Duration {
	j := n.rt.opts.Jitter
	scale := 1 + j*(2*n.rng.Float64()-1)
	return time.Duration(float64(interval) * scale)
}

// drainOverflow delivers the messages that were spilled at the moment the
// drain starts. Bounding the drain by the observed length (rather than
// popping until empty) keeps a sustained overload from starving the
// channel tier and the Timeout action, matching the snapshot semantics of
// the slice-based queue this replaced.
func (n *node) drainOverflow(ctx *nodeCtx) {
	for left := n.mbox.overflowLen(); left > 0; left-- {
		om, ok := n.mbox.popOverflow()
		if !ok {
			return
		}
		n.deliver(ctx, om)
	}
}

func (n *node) deliver(ctx *nodeCtx, m sim.Message) {
	select {
	case <-n.stop:
		// Crashed between enqueue and handling: the message vanishes.
		n.rt.pending.Add(-1)
		n.rt.dropped.Add(1)
		return
	default:
	}
	n.rt.busy.Add(1)
	n.h.OnMessage(ctx, m)
	n.rt.busy.Add(-1)
	n.rt.delivered.Add(1)
	n.recv.Add(1)
	n.rt.pending.Add(-1)
}

// discard empties the mailbox of a stopped node, keeping the pending
// counter exact. It races benignly with the node goroutine's final pops:
// every message is taken by exactly one side.
func (n *node) discard() {
	dropped := n.mbox.close()
	for {
		select {
		case <-n.mbox.ch:
			dropped++
		default:
			n.rt.pending.Add(int64(-dropped))
			n.rt.dropped.Add(int64(dropped))
			return
		}
	}
}

// nodeCtx implements sim.Context for a node; it is only used from the
// node's own goroutine.
type nodeCtx struct {
	n *node
}

func (c *nodeCtx) Self() sim.NodeID { return c.n.id }
func (c *nodeCtx) Send(to sim.NodeID, topic sim.Topic, body any) {
	c.n.rt.Send(sim.Message{To: to, From: c.n.id, Topic: topic, Body: body})
}
func (c *nodeCtx) Rand() *rand.Rand { return c.n.rng }
func (c *nodeCtx) Now() float64     { return c.n.rt.Now() }
