package concurrent

import (
	"sync/atomic"
	"testing"
	"time"

	"sspubsub/internal/sim"
)

// countHandler counts deliveries.
type countHandler struct{ n atomic.Int64 }

func (h *countHandler) OnMessage(sim.Context, sim.Message) { h.n.Add(1) }
func (h *countHandler) OnTimeout(sim.Context)              {}

func TestRuntimeFaultDropAndDup(t *testing.T) {
	r := NewRuntime(Options{Interval: time.Millisecond})
	defer r.Close()
	h := &countHandler{}
	r.AddNode(2, h)

	r.SetFault(func(m sim.Message) sim.FaultAction { return sim.FaultDrop })
	for i := 0; i < 10; i++ {
		r.Send(sim.Message{To: 2, From: 3, Body: "x"})
	}
	if !r.Quiesce(2*time.Second, func() {}) {
		t.Fatal("no quiesce under drop-all fault")
	}
	if got := h.n.Load(); got != 0 {
		t.Fatalf("delivered %d under drop-all fault", got)
	}
	if got := r.Dropped(); got != 10 {
		t.Fatalf("Dropped() = %d, want 10", got)
	}

	r.SetFault(func(m sim.Message) sim.FaultAction { return sim.FaultDup })
	for i := 0; i < 10; i++ {
		r.Send(sim.Message{To: 2, From: 3, Body: "x"})
	}
	ok := r.Quiesce(2*time.Second, func() {
		if got := h.n.Load(); got != 20 {
			t.Errorf("delivered %d under dup fault, want 20", got)
		}
	})
	if !ok {
		t.Fatal("no quiesce under dup fault")
	}
}

// TestRuntimeFaultDelayDrains pins the quiesce contract for FaultDelay: a
// message held back by the delay timer is part of the in-flight state, so
// the barrier must wait it out and the message must be delivered before
// the frozen snapshot runs.
func TestRuntimeFaultDelayDrains(t *testing.T) {
	r := NewRuntime(Options{Interval: time.Millisecond})
	defer r.Close()
	h := &countHandler{}
	r.AddNode(2, h)
	r.SetFault(func(m sim.Message) sim.FaultAction { return sim.FaultDelay })
	const k = 25
	for i := 0; i < k; i++ {
		r.Send(sim.Message{To: 2, From: 3, Body: "x"})
	}
	r.SetFault(nil)
	ok := r.Quiesce(5*time.Second, func() {
		if got := h.n.Load(); got != k {
			t.Errorf("quiesced with %d delivered, want %d", got, k)
		}
	})
	if !ok {
		t.Fatal("quiesce timed out with delayed messages outstanding")
	}
	if got := r.Delivered(); got != k {
		t.Fatalf("Delivered() = %d, want %d", got, k)
	}
}
