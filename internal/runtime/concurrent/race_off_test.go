//go:build !race

package concurrent

const raceEnabled = false
