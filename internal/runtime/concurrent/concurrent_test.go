package concurrent

import (
	"sync/atomic"
	"testing"
	"time"

	"sspubsub/internal/sim"
)

// counter is a toy handler that counts deliveries and timeouts.
type counter struct {
	msgs  atomic.Int64
	ticks atomic.Int64
}

func (c *counter) OnMessage(ctx sim.Context, m sim.Message) { c.msgs.Add(1) }
func (c *counter) OnTimeout(ctx sim.Context)                { c.ticks.Add(1) }

// forwarder relays every message to a fixed next hop, decrementing a TTL.
type forwarder struct {
	next  sim.NodeID
	seen  atomic.Int64
	ticks atomic.Int64
}

func (f *forwarder) OnMessage(ctx sim.Context, m sim.Message) {
	f.seen.Add(1)
	if ttl := m.Body.(int); ttl > 0 {
		ctx.Send(f.next, m.Topic, ttl-1)
	}
}
func (f *forwarder) OnTimeout(ctx sim.Context) { f.ticks.Add(1) }

// TestMailboxOverflowLossFree floods a node far beyond its mailbox depth
// and verifies that the overflow tier preserves every message.
func TestMailboxOverflowLossFree(t *testing.T) {
	rt := NewRuntime(Options{Interval: time.Millisecond, MailboxDepth: 4, Seed: 1})
	defer rt.Close()
	c := &counter{}
	rt.AddNode(1, c)
	const total = 20000
	for i := 0; i < total; i++ {
		rt.Send(sim.Message{To: 1, From: 2, Topic: 1, Body: i})
	}
	ok := rt.Quiesce(10*time.Second, func() {
		if got := c.msgs.Load(); got != total {
			t.Errorf("delivered %d of %d messages", got, total)
		}
	})
	if !ok {
		t.Fatal("runtime did not quiesce")
	}
	if d := rt.Dropped(); d != 0 {
		t.Errorf("dropped %d messages", d)
	}
	if d := rt.Delivered(); d != total {
		t.Errorf("Delivered() = %d, want %d", d, total)
	}
}

// TestQuiesceFreezesSystem verifies that while the quiesce callback runs,
// no handler executes: a cascade of self-perpetuating forwards and the
// periodic ticks are both suspended.
func TestQuiesceFreezesSystem(t *testing.T) {
	rt := NewRuntime(Options{Interval: 500 * time.Microsecond, Seed: 2})
	defer rt.Close()
	a := &forwarder{next: 2}
	b := &forwarder{next: 1}
	rt.AddNode(1, a)
	rt.AddNode(2, b)
	// A long but finite forwarding cascade keeps traffic flowing.
	rt.Send(sim.Message{To: 1, From: 2, Topic: 1, Body: 5000})
	ok := rt.Quiesce(10*time.Second, func() {
		before := rt.Delivered()
		time.Sleep(5 * time.Millisecond) // several tick intervals
		if after := rt.Delivered(); after != before {
			t.Errorf("handlers ran during quiesce: delivered %d → %d", before, after)
		}
	})
	if !ok {
		t.Fatal("runtime did not quiesce")
	}
	if a.seen.Load()+b.seen.Load() != 5001 {
		t.Errorf("cascade delivered %d+%d messages, want 5001 total", a.seen.Load(), b.seen.Load())
	}
	// Ticks resume after the quiesce window.
	base := a.ticks.Load()
	time.Sleep(10 * time.Millisecond)
	if a.ticks.Load() == base {
		t.Error("timeouts did not resume after Quiesce")
	}
}

// TestCrashRestartAndDetector exercises the crash path: messages to a
// crashed node vanish, the failure detector respects the grace period, and
// a restarted node receives traffic again.
func TestCrashRestartAndDetector(t *testing.T) {
	grace := 20 * time.Millisecond
	rt := NewRuntime(Options{Interval: time.Millisecond, DetectorGrace: grace, Seed: 3})
	defer rt.Close()
	c := &counter{}
	rt.AddNode(7, c)
	if rt.Suspects(7) {
		t.Fatal("live node suspected")
	}

	rt.Crash(7)
	if !rt.Crashed(7) {
		t.Fatal("Crashed(7) = false after Crash")
	}
	if rt.Suspects(7) {
		t.Error("suspected before the grace period elapsed")
	}
	time.Sleep(grace + 5*time.Millisecond)
	if !rt.Suspects(7) {
		t.Error("not suspected after the grace period")
	}

	// Messages to the crashed node are dropped.
	before := c.msgs.Load()
	rt.Send(sim.Message{To: 7, From: 1, Topic: 1, Body: 0})
	if rt.Dropped() == 0 {
		t.Error("send to crashed node not counted as dropped")
	}

	rt.Restart(7, c)
	if rt.Suspects(7) || rt.Crashed(7) {
		t.Error("restarted node still suspected/crashed")
	}
	rt.Send(sim.Message{To: 7, From: 1, Topic: 1, Body: 0})
	if !rt.Quiesce(5*time.Second, func() {}) {
		t.Fatal("no quiesce")
	}
	if c.msgs.Load() != before+1 {
		t.Errorf("restarted node received %d new messages, want 1", c.msgs.Load()-before)
	}

	// RemoveNode, by contrast, is suspected immediately.
	rt.RemoveNode(7)
	if !rt.Suspects(7) {
		t.Error("removed node not suspected immediately")
	}
}

// TestInjectorChurn runs the fault injector against chattering nodes and
// verifies every victim is restarted and the runtime stays consistent.
func TestInjectorChurn(t *testing.T) {
	rt := NewRuntime(Options{Interval: time.Millisecond, Seed: 4})
	defer rt.Close()
	handlers := make([]*counter, 8)
	for i := range handlers {
		handlers[i] = &counter{}
		rt.AddNode(sim.NodeID(i+1), handlers[i])
	}
	in := rt.NewInjector(InjectorOptions{
		Period:   2 * time.Millisecond,
		Downtime: time.Millisecond,
		Seed:     4,
		Protect:  func(id sim.NodeID) bool { return id == 1 },
	})
	// Keep background traffic flowing while churn is active.
	stopTraffic := make(chan struct{})
	trafficDone := make(chan struct{})
	go func() {
		defer close(trafficDone)
		for i := 0; ; i++ {
			select {
			case <-stopTraffic:
				return
			default:
			}
			rt.Send(sim.Message{To: sim.NodeID(i%8 + 1), From: 1, Topic: 1, Body: i})
			time.Sleep(50 * time.Microsecond)
		}
	}()
	time.Sleep(100 * time.Millisecond)
	in.Stop()
	close(stopTraffic)
	<-trafficDone

	if in.Crashes() == 0 {
		t.Fatal("injector never crashed anyone")
	}
	if in.Crashes() != in.Restarts() {
		t.Errorf("crashes %d != restarts %d after Stop", in.Crashes(), in.Restarts())
	}
	if got := len(rt.NodeIDs()); got != 8 {
		t.Errorf("%d nodes live after churn, want 8", got)
	}
	if rt.Suspects(1) {
		t.Error("protected node was suspected")
	}
	if !rt.Quiesce(10*time.Second, func() {}) {
		t.Fatal("no quiesce after churn")
	}
}

// TestAccounting verifies the per-type and per-node counters.
func TestAccounting(t *testing.T) {
	rt := NewRuntime(Options{Interval: time.Millisecond, Seed: 5})
	defer rt.Close()
	rt.AddNode(1, &counter{})
	rt.AddNode(2, &counter{})
	for i := 0; i < 10; i++ {
		rt.Send(sim.Message{To: 1, From: 2, Topic: 1, Body: "s"})
	}
	rt.Send(sim.Message{To: 2, From: 1, Topic: 1, Body: 3})
	if !rt.Quiesce(5*time.Second, func() {}) {
		t.Fatal("no quiesce")
	}
	if got := rt.CountByType("string"); got != 10 {
		t.Errorf("CountByType(string) = %d", got)
	}
	if got := rt.SentBy(2); got != 10 {
		t.Errorf("SentBy(2) = %d", got)
	}
	if got := rt.ReceivedBy(1); got != 10 {
		t.Errorf("ReceivedBy(1) = %d", got)
	}
	rt.ResetCounters()
	if rt.CountByType("string") != 0 || rt.Delivered() != 0 {
		t.Error("ResetCounters did not zero the accounting")
	}
}

// TestCloseIdempotent verifies Close can be called twice and stops ticks.
func TestCloseIdempotent(t *testing.T) {
	rt := NewRuntime(Options{Interval: time.Millisecond, Seed: 6})
	c := &counter{}
	rt.AddNode(1, c)
	time.Sleep(5 * time.Millisecond)
	rt.Close()
	rt.Close()
	base := c.ticks.Load()
	time.Sleep(5 * time.Millisecond)
	if c.ticks.Load() != base {
		t.Error("ticks continued after Close")
	}
	// AddNode after Close is a silent no-op (used by late injector restarts).
	rt.AddNode(9, c)
	if len(rt.NodeIDs()) != 0 {
		t.Error("AddNode after Close registered a node")
	}
}
