//go:build race

package concurrent

// raceEnabled reports that this test binary runs under the race
// detector, where sync.Pool deliberately drops items to widen race
// coverage — the pooled segments then allocate by design, so the
// exact-zero allocation guards do not apply.
const raceEnabled = true
