package concurrent

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"sspubsub/internal/sim"
)

// InjectorOptions configure a crash/restart fault injector.
type InjectorOptions struct {
	// Period is the mean time between crashes; actual gaps are drawn
	// uniformly from [Period/2, 3·Period/2). Default 20·Interval.
	Period time.Duration
	// Downtime is how long a victim stays crashed before it is restarted
	// with the handler (and hence the stale state) it crashed with.
	// Default 4·Interval.
	Downtime time.Duration
	// Protect exempts nodes from being crashed (e.g. the supervisor, which
	// the paper assumes reliable). Nil protects no one.
	Protect func(sim.NodeID) bool
	// Seed drives victim selection.
	Seed int64
}

// Injector drives churn against a Runtime: it periodically crashes a
// random unprotected node and restarts it after a hold-off. Because a
// restarted node resumes with whatever state its handler held, every
// crash/restart cycle is an "arbitrary initial state" episode for the
// self-stabilization machinery.
type Injector struct {
	rt   *Runtime
	opts InjectorOptions
	rng  *rand.Rand

	crashes  atomic.Int64
	restarts atomic.Int64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	wg       sync.WaitGroup // outstanding delayed restarts
}

// NewInjector creates and starts an injector against the runtime.
func (r *Runtime) NewInjector(opts InjectorOptions) *Injector {
	if opts.Period == 0 {
		opts.Period = 20 * r.opts.Interval
	}
	if opts.Downtime == 0 {
		opts.Downtime = 4 * r.opts.Interval
	}
	in := &Injector{
		rt:   r,
		opts: opts,
		rng:  rand.New(rand.NewSource(opts.Seed*0x9e3779b9 + 0x7f4a7c15)),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go in.loop()
	return in
}

// Crashes returns how many crashes the injector has inflicted.
func (in *Injector) Crashes() int64 { return in.crashes.Load() }

// Restarts returns how many victims have been restarted.
func (in *Injector) Restarts() int64 { return in.restarts.Load() }

// Stop halts the injector and immediately restarts any victim still down,
// so the system can re-converge. It blocks until all restarts finished.
// Idempotent.
func (in *Injector) Stop() {
	in.stopOnce.Do(func() { close(in.stop) })
	<-in.done
	in.wg.Wait()
}

func (in *Injector) loop() {
	defer close(in.done)
	for {
		gap := time.Duration(float64(in.opts.Period) * (0.5 + in.rng.Float64()))
		select {
		case <-in.stop:
			return
		case <-time.After(gap):
		}
		in.crashOne()
	}
}

// crashOne picks a random live unprotected node, crashes it and schedules
// its restart.
func (in *Injector) crashOne() {
	ids := in.rt.NodeIDs()
	in.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids {
		if in.opts.Protect != nil && in.opts.Protect(id) {
			continue
		}
		h := in.rt.Handler(id)
		if h == nil {
			continue // lost a race with removal
		}
		in.rt.Crash(id)
		in.crashes.Add(1)
		in.wg.Add(1)
		go func(id sim.NodeID, h sim.Handler) {
			defer in.wg.Done()
			select {
			case <-in.stop:
			case <-time.After(in.opts.Downtime):
			}
			in.rt.Restart(id, h)
			in.restarts.Add(1)
		}(id, h)
		return
	}
}
