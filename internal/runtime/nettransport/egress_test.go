package nettransport

import (
	"strings"
	"sync"
	"testing"
	"time"

	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
)

// These tests pin the two contracts of the encode-once egress pipeline:
//
//   - Conservation: every message that enters Redirect is delivered or
//     counted in LostFrames exactly once, under overflow, faults and
//     shutdown alike — the invariant the quiesce barrier is built on.
//   - Slab balance: every refcounted encode slab acquired by the router
//     is released exactly once, across every loss path there is. A leak
//     here is invisible to the functional tests (the pool just grows),
//     so SlabStats pins it directly.

// slabBalanced asserts acquired == released on a *closed* transport —
// only after Close has swept the rings is the balance required to hold.
func slabBalanced(t *testing.T, tr *Transport, name string) {
	t.Helper()
	acq, rel := tr.SlabStats()
	if acq != rel {
		t.Errorf("%s: slab leak: %d acquired, %d released", name, acq, rel)
	}
}

// TestEgressConservationOverflow blasts a loopback transport whose egress
// ring is deliberately tiny from several goroutines at once. Overflow is
// allowed — loss-free delivery is not the contract — but every message
// must end up delivered or counted, and the quiesce barrier must settle
// (a lost in-flight hold would wedge it forever).
func TestEgressConservationOverflow(t *testing.T) {
	tr, err := NewLoopback(Options{Interval: 5 * time.Millisecond, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	h := &countHandler{}
	tr.AddNode(1, h)
	const (
		senders = 4
		each    = 1000
	)
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr.Send(sim.Message{To: 1, From: 2, Topic: 1, Body: proto.Subscribe{V: sim.NodeID(g*each + i)}})
			}
		}(g)
	}
	wg.Wait()
	if !tr.Quiesce(10*time.Second, func() {}) {
		t.Fatal("quiesce wedged: some loss path leaked an in-flight hold")
	}
	sent := int64(senders * each)
	delivered := h.n.Load()
	lost := tr.LostFrames()
	if delivered+lost != sent {
		t.Fatalf("conservation violated: sent %d, delivered %d + lost %d = %d",
			sent, delivered, lost, delivered+lost)
	}
	if lost == 0 {
		t.Logf("note: no overflow occurred (delivered all %d); the ring was never full", sent)
	}
	tr.Close()
	slabBalanced(t, tr, "overflow")
}

// TestEgressLossFreeModerateLoad: under load the default queue depths
// absorb easily, the pipeline must be loss-free — the same guarantee the
// channel-based egress gave, now across router + ring + writer.
func TestEgressLossFreeModerateLoad(t *testing.T) {
	tr, err := NewLoopback(Options{Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	h := &countHandler{}
	tr.AddNode(1, h)
	const n = 500
	for i := 0; i < n; i++ {
		tr.Send(sim.Message{To: 1, From: 2, Topic: 1, Body: proto.Subscribe{V: sim.NodeID(i)}})
	}
	ok := tr.Quiesce(10*time.Second, func() {
		if got := h.n.Load(); got != n {
			t.Errorf("delivered %d of %d under quiesce", got, n)
		}
	})
	if !ok {
		t.Fatal("quiesce timed out")
	}
	if lost := tr.LostFrames(); lost != 0 {
		t.Fatalf("moderate load lost %d frames, want 0", lost)
	}
}

// TestSlabBalanceAcrossFaults cycles the frame fault hook through drop,
// corrupt and clean verdicts while traffic flows: the fault paths release
// slab references on completely different code paths than a clean write,
// and each must do so exactly once.
func TestSlabBalanceAcrossFaults(t *testing.T) {
	tr, err := NewLoopback(Options{Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	h := &countHandler{}
	tr.AddNode(1, h)
	var calls int
	tr.SetFrameFault(func() FrameFault {
		calls++
		switch calls % 3 {
		case 0:
			return FrameDrop
		case 1:
			return FrameCorrupt
		default:
			return FrameDeliver
		}
	})
	const n = 300
	for i := 0; i < n; i++ {
		tr.Send(sim.Message{To: 1, From: 2, Topic: 1, Body: proto.Subscribe{V: sim.NodeID(i)}})
	}
	if !tr.Quiesce(10*time.Second, func() {}) {
		t.Fatal("quiesce wedged under fault mix")
	}
	tr.Close()
	slabBalanced(t, tr, "fault mix")
}

// TestSlabBalanceOversizeAndUnencodable drives the two shed-before-wire
// paths: a body the codec refuses to encode at all (dropped by the
// router, slab released immediately) and a body whose standalone frame
// exceeds wire.MaxFrame (encoded into a slab, shed by the writer when
// frame assembly fails). Both are counted loss; interleaved normal
// traffic must still arrive.
func TestSlabBalanceOversizeAndUnencodable(t *testing.T) {
	type notRegistered struct{ X int }
	tr, err := NewLoopback(Options{Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	h := &countHandler{}
	tr.AddNode(1, h)
	huge := proto.PublishNew{Pub: proto.Publication{
		Key: proto.Key{Bits: 1, Len: 64}, Origin: 2,
		Payload: strings.Repeat("x", (1<<20)+512), // frame > wire.MaxFrame
	}}
	const normal, bad = 50, 10
	for i := 0; i < bad; i++ {
		tr.Send(sim.Message{To: 1, From: 2, Topic: 1, Body: notRegistered{X: i}})
		tr.Send(sim.Message{To: 1, From: 2, Topic: 1, Body: huge})
	}
	for i := 0; i < normal; i++ {
		tr.Send(sim.Message{To: 1, From: 2, Topic: 1, Body: proto.Subscribe{V: sim.NodeID(i)}})
	}
	if !tr.Quiesce(10*time.Second, func() {}) {
		t.Fatal("quiesce wedged on shed messages")
	}
	if got := h.n.Load(); got != normal {
		t.Errorf("delivered %d, want %d (shed messages must not block the stream)", got, normal)
	}
	if lost := tr.LostFrames(); lost != 2*bad {
		t.Errorf("LostFrames() = %d, want %d (unencodable + oversize)", lost, 2*bad)
	}
	tr.Close()
	slabBalanced(t, tr, "oversize/unencodable")
}

// TestSlabBalanceAcrossReconnect runs the full link-death matrix: hub
// dies with joiner traffic queued (frames stranded in the dial peer's
// ring), the joiner sends into the dead link (loss at the ring or at
// redial), the hub comes back and traffic resumes, and finally both ends
// close. Every transport involved must balance its slabs.
func TestSlabBalanceAcrossReconnect(t *testing.T) {
	hub1, err := NewHub(Options{Listen: "127.0.0.1:0", Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	addr := hub1.Addr()
	j, err := NewJoiner(Options{Hub: addr, Interval: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond})
	if err != nil {
		hub1.Close()
		t.Fatal(err)
	}
	hubNode := &countHandler{}
	hub1.AddNode(1, hubNode)
	nid := j.BaseID()
	n := &countHandler{}
	j.AddNode(nid, n)

	// Live traffic both ways.
	j.Send(sim.Message{To: 1, From: nid, Topic: 1, Body: proto.Subscribe{V: 1}})
	hub1.Send(sim.Message{To: nid, From: 1, Topic: 1, Body: proto.Subscribe{V: 2}})
	waitFor(t, 5*time.Second, "pre-kill traffic", func() bool {
		return hubNode.n.Load() == 1 && n.n.Load() == 1
	})

	hub1.Close()
	slabBalanced(t, hub1, "killed hub")

	// Link down: sends stack up in the dial peer's ring (drained on
	// reconnect) or are counted loss. Either way the slabs must balance.
	for i := 0; i < 50; i++ {
		j.Send(sim.Message{To: 1, From: nid, Topic: 1, Body: proto.Subscribe{V: sim.NodeID(i)}})
	}

	hub2, err := NewHub(Options{Listen: addr, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	hubNode2 := &countHandler{}
	hub2.AddNode(1, hubNode2)

	// The joiner redials with backoff and the stream resumes.
	waitFor(t, 10*time.Second, "post-reconnect delivery", func() bool {
		j.Send(sim.Message{To: 1, From: nid, Topic: 1, Body: proto.Subscribe{V: 99}})
		time.Sleep(10 * time.Millisecond)
		return hubNode2.n.Load() > 0
	})

	// Accepted-peer death from the hub's side: the joiner closes while the
	// hub stays up, then the hub closes too.
	j.Close()
	slabBalanced(t, j, "joiner")
	hub2.Close()
	slabBalanced(t, hub2, "restarted hub")
}

// BenchmarkNetEgressMulticast measures the encode-once fan-out: one
// shareable publication multicast to 16 in-process nodes through the
// loopback transport, every copy crossing the codec and a real TCP
// socket. allocs/op is the whole-pipeline allocation cost of one 16-way
// multicast (router encode + ring handoff + batch write + arena decode +
// 16 mailbox injections); the committed baseline gates it.
func BenchmarkNetEgressMulticast(b *testing.B) {
	tr, err := NewLoopback(Options{Interval: time.Second})
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	const fan = 16
	nodes := make([]*countHandler, fan)
	for i := range nodes {
		nodes[i] = &countHandler{}
		tr.AddNode(sim.NodeID(i+1), nodes[i])
	}
	delivered := func() int64 {
		var sum int64
		for _, n := range nodes {
			sum += n.n.Load()
		}
		return sum
	}
	body := proto.PublishNew{Pub: proto.Publication{
		Key: proto.Key{Bits: 0x9e3779b97f4a7c15, Len: 64}, Origin: 1,
		Payload: "payload-with-some-realistic-length",
	}}
	drainTo := func(want int64) {
		deadline := time.Now().Add(30 * time.Second)
		for delivered() < want {
			if time.Now().After(deadline) {
				b.Fatalf("delivered %d of %d (lost %d)", delivered(), want, tr.LostFrames())
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for d := 0; d < fan; d++ {
			tr.Send(sim.Message{To: sim.NodeID(d + 1), From: 1, Topic: 1, Body: body})
		}
		// Drain in windows so queue growth never substitutes for the
		// pipeline in the measurement.
		if (i+1)%64 == 0 || i == b.N-1 {
			drainTo(int64(i+1) * fan)
		}
	}
	b.StopTimer()
	if lost := tr.LostFrames(); lost != 0 {
		b.Fatalf("multicast bench lost %d frames", lost)
	}
}
