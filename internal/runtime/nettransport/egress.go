package nettransport

import (
	"sync"
	"sync/atomic"

	"sspubsub/internal/sim"
	"sspubsub/internal/wire"
)

// This file is the encode-once egress pipeline. Every outbound message —
// protocol sends intercepted by Redirect, hub relays, Welcome grants —
// funnels through one router goroutine (egressRouter) instead of being
// encoded by each per-peer writer:
//
//	handlers ──egressCh──▶ router ──SPSC ring──▶ per-peer writeLoop
//
// The router encodes each distinct message body exactly once into a
// pooled, refcounted byte slab (wire.AppendBody: tag + body, no
// envelope) and pushes one outFrame per destination — envelope fields by
// value, slab by reference — onto that destination's lock-free ring. A
// publication fanning out to k peers therefore costs one encode, not k.
// Writers stamp the shared slab into standalone frames or Batch2 members
// (wire.AppendFrameRaw / AppendBatchMember) and release their reference
// when the socket write has completed; the last release returns the slab
// to the pool.
//
// Loss accounting is unchanged from the channel-based egress: every
// message either reaches a socket write or is counted in lost exactly
// once — at egress saturation, at encode failure, at a full ring, at the
// fault hook, at an I/O failure, or in the Close-time ring sweep — and,
// on the loopback role, each of those loss points also releases the
// message's in-flight hold so the quiesce barrier stays exact.

// egressItem is one routed message: the frame to send and the link that
// must carry it (resolved under t.mu by the caller, as before).
type egressItem struct {
	m sim.Message
	p *peer
}

// outFrame is one frame bound for a peer's writer: the envelope by
// value, the tagged body as a shared slab reference.
type outFrame struct {
	to, from sim.NodeID
	topic    sim.Topic
	s        *slab
}

// slab is a pooled, refcounted buffer holding one encoded tagged body.
// The router acquires it with one creator reference, takes one more per
// ring push, and drops the creator reference at the end of the burst;
// writers (and the loss paths) drop theirs after the bytes are written
// or the frame is shed. The final drop returns the slab to the pool.
type slab struct {
	b    []byte
	refs atomic.Int32
}

var slabPool = sync.Pool{New: func() any { return new(slab) }}

// keepSlab caps the slab capacity retained by the pool; an occasional
// giant payload must not pin its buffer forever.
const keepSlab = 64 << 10

// acquireSlab takes a slab from the pool with one (creator) reference.
func (t *Transport) acquireSlab() *slab {
	s := slabPool.Get().(*slab)
	s.b = s.b[:0]
	s.refs.Store(1)
	t.slabAcquired.Add(1)
	return s
}

// ref takes one more reference (router only, while it still holds the
// creator reference, so the count cannot be racing toward zero).
func (s *slab) ref() { s.refs.Add(1) }

// unref drops one reference; the last drop counts the release and pools
// the slab. Writers on different goroutines drop concurrently, so the
// count must be atomic.
func (s *slab) unref(t *Transport) {
	if s.refs.Add(-1) == 0 {
		t.slabReleased.Add(1)
		if cap(s.b) <= keepSlab {
			slabPool.Put(s)
		}
	}
}

// SlabStats returns how many encode slabs have been acquired from and
// released back to the pool. After Close the two are equal — the leak
// property the slab tests pin.
func (t *Transport) SlabStats() (acquired, released int64) {
	return t.slabAcquired.Load(), t.slabReleased.Load()
}

// egressSend hands a message to the router, non-blocking: a saturated
// egress queue is counted loss (exactly like the full per-peer queue it
// replaces), releasing the loopback in-flight hold.
func (t *Transport) egressSend(m sim.Message, p *peer) {
	select {
	case t.egressCh <- egressItem{m: m, p: p}:
	default:
		t.egressLost()
	}
}

// egressLost accounts one message that left Redirect but will never
// reach a socket: count it and release its loopback in-flight hold.
func (t *Transport) egressLost() {
	t.lost.Add(1)
	if t.role == roleLoopback {
		t.inflight.Add(-1)
	}
}

// startEgress wires the router; called once per transport, before any
// peer exists. The channel is a staging hop, not the buffer — the
// per-peer rings hold the real backlog — so its capacity only needs to
// absorb a sender burst while the router works through one routing
// pass; it scales with QueueDepth for small test configurations but is
// capped so a transport's fixed footprint stays modest.
func (t *Transport) startEgress() {
	depth := 2 * int(t.opts.QueueDepth)
	if depth > 1024 {
		depth = 1024
	}
	t.egressCh = make(chan egressItem, depth)
	t.egressStop = make(chan struct{})
	t.wg.Add(1)
	go t.egressRouter()
}

// egressBurst bounds the messages routed per wake-up. One burst is the
// encode-sharing window: identical bodies within it share one slab.
const egressBurst = 256

// egressRouter is the single producer of every peer ring. It drains the
// egress channel in bursts, encodes each distinct shareable body once
// (distinct-by-== within the burst; wire.CanShare guarantees the compare
// is safe), and fans the slabs out to the destination rings.
func (t *Transport) egressRouter() {
	defer t.wg.Done()
	burst := make([]egressItem, 0, egressBurst)
	type encoded struct {
		body any // nil for non-shareable bodies (never matched)
		s    *slab
	}
	groups := make([]encoded, 0, 16)
	for {
		select {
		case it := <-t.egressCh:
			burst = append(burst, it)
		case <-t.egressStop:
			// The runtime is closed: no sender is left, so whatever is
			// still queued is counted loss and the router retires.
			for {
				select {
				case <-t.egressCh:
					t.egressLost()
				default:
					return
				}
			}
		}
		for len(burst) < egressBurst {
			select {
			case it := <-t.egressCh:
				burst = append(burst, it)
			default:
				goto route
			}
		}
	route:
		for _, it := range burst {
			var s *slab
			share := wire.CanShare(it.m.Body)
			if share {
				for i := range groups {
					if groups[i].body != nil && groups[i].body == it.m.Body {
						s = groups[i].s
						break
					}
				}
			}
			if s == nil {
				s = t.acquireSlab()
				var err error
				s.b, err = wire.AppendBody(s.b[:0], it.m.Body)
				if err != nil {
					// Unencodable body: shed as counted loss before it can
					// poison a frame, exactly as the old gather() did.
					s.unref(t)
					t.egressLost()
					continue
				}
				var key any
				if share {
					key = it.m.Body
				}
				groups = append(groups, encoded{body: key, s: s})
			}
			s.ref()
			if !it.p.push(outFrame{to: it.m.To, from: it.m.From, topic: it.m.Topic, s: s}) {
				// Ring full or peer shut down: counted loss, like the full
				// per-peer channel it replaces.
				s.unref(t)
				t.egressLost()
			}
		}
		for i := range groups {
			groups[i].s.unref(t) // creator reference held through the burst
			groups[i] = encoded{}
		}
		groups = groups[:0]
		burst = burst[:0]
	}
}
