package nettransport

import (
	"errors"
	"net"
	"sync"
	"time"

	"bufio"

	"sspubsub/internal/sim"
	"sspubsub/internal/wire"
)

// peerQueueDepth bounds the frames buffered toward one link. A full queue
// drops (message loss, which the protocol tolerates) rather than blocking
// a protocol handler.
const peerQueueDepth = 4096

// peer is one link: a frame queue, a writer that batches queued frames
// into coalesced flushes, and a reader that dispatches arriving frames.
// Dial-side peers (addr != "") redial with exponential backoff when the
// link drops; accepted peers live exactly as long as their connection.
type peer struct {
	t    *Transport
	addr string // dial target; "" for accepted connections
	q    chan sim.Message
	stop chan struct{}
	once sync.Once

	mu   sync.Mutex
	conn net.Conn
	down time.Time // zero while the link is up
}

// newDialPeer starts a link that dials addr and keeps redialing.
func (t *Transport) newDialPeer(addr string) *peer {
	p := &peer{
		t:    t,
		addr: addr,
		q:    make(chan sim.Message, peerQueueDepth),
		stop: make(chan struct{}),
		down: time.Now(), // down until the first dial succeeds
	}
	t.wg.Add(1)
	go p.run()
	return p
}

// newAcceptedPeer wraps an accepted connection.
func (t *Transport) newAcceptedPeer(conn net.Conn) *peer {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil
	}
	p := &peer{
		t:    t,
		q:    make(chan sim.Message, peerQueueDepth),
		stop: make(chan struct{}),
	}
	p.conn = conn
	t.accepted = append(t.accepted, p)
	t.wg.Add(2)
	t.mu.Unlock()
	dead := make(chan struct{})
	go func() {
		defer t.wg.Done()
		p.writeLoop(conn, dead)
	}()
	go func() {
		defer t.wg.Done()
		p.readLoop(conn)
		close(dead)
		conn.Close()
		p.markDown()
		// The peer stays reachable through any block that points at it (so
		// the failure detector can time its absence), but drop it from the
		// accepted list: a reconnecting joiner creates a fresh peer every
		// time, and retaining dead ones would leak.
		t.dropAccepted(p)
	}()
	return p
}

// run is the dial-side lifecycle: dial, handshake, pump, redial.
func (p *peer) run() {
	defer p.t.wg.Done()
	backoff := 50 * time.Millisecond
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", p.addr, 2*time.Second)
		if err != nil {
			p.t.opts.logf("nettransport: dial %s: %v (retry in %s)", p.addr, err, backoff)
			select {
			case <-p.stop:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > p.t.opts.MaxBackoff {
				backoff = p.t.opts.MaxBackoff
			}
			continue
		}
		backoff = 50 * time.Millisecond
		if !p.setConn(conn) {
			// shutdown() ran while we were dialing: the connection it
			// closed was the old one, so close this one and leave before
			// readLoop can block on a healthy socket forever.
			conn.Close()
			return
		}
		if p.t.role == roleJoiner {
			// (Re-)introduce ourselves before any queued data flows: Base ⊥
			// requests a fresh ID block, a previous base reclaims it.
			hello := wire.Hello{Base: p.t.BaseID(), Slots: p.t.opts.Slots}
			if err := wire.WriteFrame(conn, sim.Message{Body: hello}); err != nil {
				conn.Close()
				continue
			}
		}
		p.markUp()
		dead := make(chan struct{})
		p.t.wg.Add(1)
		go func() {
			defer p.t.wg.Done()
			p.writeLoop(conn, dead)
		}()
		p.readLoop(conn)
		conn.Close()
		close(dead)
		p.markDown()
		p.t.opts.logf("nettransport: link to %s lost; reconnecting", p.addr)
	}
}

// readLoop dispatches frames until the connection fails. Garbage frames
// are counted and skipped — the stream stays aligned; only framing-level
// corruption or I/O failure ends the connection. One frame buffer is
// reused for the whole life of the connection (decoded messages never
// reference it), so the steady-state read path allocates only what the
// decoded bodies themselves need.
func (p *peer) readLoop(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 64<<10)
	var buf []byte
	for {
		m, b, err := wire.ReadFrameBuf(br, buf)
		buf = b
		if err != nil {
			if errors.Is(err, wire.ErrGarbage) {
				p.t.garbage.Add(1)
				p.t.opts.logf("nettransport: dropped garbage frame: %v", err)
				continue
			}
			return
		}
		if batch, ok := m.Body.(wire.Batch); ok {
			for _, im := range batch.Msgs {
				p.t.dispatch(im, p)
			}
			continue
		}
		p.t.dispatch(m, p)
	}
}

// maxBatch bounds the messages per Batch frame. 64 messages keeps a
// typical batch far below wire.MaxFrame while still amortizing the frame
// header and the encode/dispatch bookkeeping across a whole coalescing
// window.
const maxBatch = 64

// writeLoop drains the frame queue into the connection, gathering every
// message queued within one coalescing window into Batch frames of up to
// maxBatch messages, and flushing the socket once per FlushEvery window.
// Frames are encoded into a scratch buffer reused across the connection's
// lifetime, so the steady-state write path performs no allocations.
func (p *peer) writeLoop(conn net.Conn, dead chan struct{}) {
	bw := bufio.NewWriterSize(conn, 64<<10)
	flush := time.NewTicker(p.t.opts.FlushEvery)
	defer flush.Stop()
	dirty := false
	scratch := make([]byte, 0, 4096)
	batch := make([]sim.Message, 0, maxBatch)

	// writeOne emits a single-message frame. It reports false only on an
	// I/O failure; an unencodable or oversize message is shed as counted
	// loss and the stream continues.
	writeOne := func(m sim.Message) bool {
		var err error
		scratch, err = wire.AppendFrame(scratch[:0], m)
		if err != nil {
			p.frameLost()
			return true // only this message is bad; the stream is fine
		}
		write, corrupted := p.applyFrameFault(scratch, 1)
		if !write {
			return true // frame shed by the fault hook
		}
		if _, err := bw.Write(scratch); err != nil {
			if corrupted {
				p.t.lost.Add(1) // holds already released by the corrupt path
			} else {
				p.frameLost()
			}
			return false // I/O failure: let the reader's error path reconnect
		}
		dirty = true
		return true
	}

	// keepScratch caps the frame buffer capacity retained across flushes:
	// an occasional giant batch (up to maxBatch members of up to
	// wire.MaxFrame each) may balloon scratch transiently, but must not
	// pin that memory for the connection's lifetime.
	const keepScratch = 1 << 20

	// flushBatch emits the gathered messages: a plain frame for a single
	// message, one Batch frame otherwise. A batch that cannot be encoded
	// as one frame (oversize) falls back to per-message frames so one
	// bad member costs only itself. Resets batch in all paths; every
	// gathered message ends in exactly one of delivered-to-bw or
	// frameLost, so loopback in-flight holds cannot leak.
	flushBatch := func() bool {
		defer func() {
			for i := range batch {
				batch[i] = sim.Message{} // release Body references
			}
			batch = batch[:0]
			if cap(scratch) > keepScratch {
				scratch = make([]byte, 0, 4096)
			}
		}()
		switch len(batch) {
		case 0:
			return true
		case 1:
			return writeOne(batch[0])
		}
		var err error
		scratch, err = wire.AppendFrame(scratch[:0], sim.Message{Body: wire.Batch{Msgs: batch}})
		if err != nil {
			for i, m := range batch {
				if !writeOne(m) {
					// I/O failure mid-fallback: the rest of the batch is
					// already dequeued and will never be written.
					for range batch[i+1:] {
						p.frameLost()
					}
					return false
				}
			}
			return true
		}
		write, corrupted := p.applyFrameFault(scratch, len(batch))
		if !write {
			return true // batch frame shed by the fault hook
		}
		if _, err := bw.Write(scratch); err != nil {
			if corrupted {
				p.t.lost.Add(int64(len(batch))) // holds already released
			} else {
				for range batch {
					p.frameLost()
				}
			}
			return false
		}
		dirty = true
		return true
	}

	// gather appends m to the current batch, shedding messages the codec
	// cannot carry (as counted loss) before they can poison a whole
	// batch's encode.
	gather := func(m sim.Message) {
		if !wire.Encodable(m.Body) {
			p.frameLost()
			return
		}
		batch = append(batch, m)
	}

	for {
		select {
		case <-p.stop:
			bw.Flush()
			return
		case <-dead:
			return
		case m := <-p.q:
			for {
				gather(m)
				for more := true; more && len(batch) < maxBatch; {
					select {
					case m2 := <-p.q:
						gather(m2)
					default:
						more = false
					}
				}
				if !flushBatch() {
					conn.Close()
					return
				}
				// A burst larger than one batch: keep chunking while the
				// queue stays non-empty.
				select {
				case m = <-p.q:
					continue
				default:
				}
				break
			}
		case <-flush.C:
			if dirty {
				if bw.Flush() != nil {
					conn.Close()
					return
				}
				dirty = false
			}
		}
	}
}

// applyFrameFault runs the wire-level fault hook for an encoded frame
// carrying n messages. write reports whether the frame may be written
// (false for FrameDrop, accounted as n lost frames). FrameCorrupt flips
// the magic bytes in place — the receiver will count the frame as garbage
// and skip it, so the loopback in-flight holds are released here (the
// messages will never re-enter through Inject) and corrupted is returned
// true: a subsequent I/O failure on the same frame must NOT run the
// frameLost accounting again, or the holds would be double-released and
// the quiesce barrier would open early. Flipping the magic, not arbitrary
// bytes, guarantees the corrupted frame cannot decode into a different
// valid message, which would likewise double-release the holds.
func (p *peer) applyFrameFault(frame []byte, n int) (write, corrupted bool) {
	switch p.t.frameVerdict() {
	case FrameDrop:
		for i := 0; i < n; i++ {
			p.frameLost()
		}
		return false, false
	case FrameCorrupt:
		frame[4] ^= 0xFF
		frame[5] ^= 0xFF
		if p.t.role == roleLoopback {
			p.t.inflight.Add(int64(-n))
		}
		return true, true
	}
	return true, false
}

// frameLost records one frame that will never arrive, releasing its
// loopback in-flight hold so the quiesce barrier cannot wedge on it.
func (p *peer) frameLost() {
	p.t.lost.Add(1)
	if p.t.role == roleLoopback {
		p.t.inflight.Add(-1)
	}
}

// enqueue queues a frame for the link, dropping when the queue is full or
// the peer is shut down.
func (p *peer) enqueue(m sim.Message) bool {
	select {
	case <-p.stop:
		return false
	default:
	}
	select {
	case p.q <- m:
		return true
	default:
		return false
	}
}

// setConn installs the current connection. It reports false — without
// installing — when the peer has been shut down, so a dial racing
// shutdown cannot resurrect the link.
func (p *peer) setConn(c net.Conn) bool {
	select {
	case <-p.stop:
		return false
	default:
	}
	p.mu.Lock()
	p.conn = c
	p.mu.Unlock()
	// Re-check: shutdown may have read the old conn just before we
	// installed this one.
	select {
	case <-p.stop:
		return false
	default:
		return true
	}
}

func (p *peer) markUp() {
	p.mu.Lock()
	p.down = time.Time{}
	p.mu.Unlock()
}

func (p *peer) markDown() {
	p.mu.Lock()
	if p.down.IsZero() {
		p.down = time.Now()
	}
	p.mu.Unlock()
}

// downFor reports whether the link has been down for at least grace.
func (p *peer) downFor(grace time.Duration) bool {
	if p == nil {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return !p.down.IsZero() && time.Since(p.down) >= grace
}

// shutdown permanently stops the peer and closes its connection.
func (p *peer) shutdown() {
	p.once.Do(func() { close(p.stop) })
	p.mu.Lock()
	c := p.conn
	p.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

func (p *peer) describe() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		return p.conn.RemoteAddr().String()
	}
	return p.addr
}
