package nettransport

import (
	"errors"
	"net"
	"sync"
	"time"

	"bufio"

	"sspubsub/internal/ring"
	"sspubsub/internal/sim"
	"sspubsub/internal/wire"
)

// peer is one link: a lock-free SPSC ring of pre-encoded frames fed by
// the egress router, a writer that drains the ring into coalesced Batch2
// frames, and a reader that dispatches arriving frames. Dial-side peers
// (addr != "") redial with exponential backoff when the link drops;
// accepted peers live exactly as long as their connection.
//
// Ring roles: the egress router is the only producer for every peer; the
// current writeLoop goroutine is the only consumer. The consumer role
// migrates across reconnects — run() provably waits for the previous
// writeLoop to exit before starting the next — and ends at the Close-time
// sweep, which drains survivors only after wg.Wait has retired every
// goroutine.
type peer struct {
	t    *Transport
	addr string // dial target; "" for accepted connections
	rb   *ring.SPSC[outFrame]
	stop chan struct{}
	once sync.Once

	mu   sync.Mutex
	conn net.Conn
	down time.Time // zero while the link is up
}

func (t *Transport) newPeer(addr string) *peer {
	return &peer{
		t:    t,
		addr: addr,
		rb:   ring.New[outFrame](int(t.opts.QueueDepth)),
		stop: make(chan struct{}),
	}
}

// newDialPeer starts a link that dials addr and keeps redialing. Dial
// peers exist before the transport is usable, so unlike accepted peers
// they cannot race Close.
func (t *Transport) newDialPeer(addr string) *peer {
	p := t.newPeer(addr)
	p.down = time.Now() // down until the first dial succeeds
	t.mu.Lock()
	t.allPeers = append(t.allPeers, p)
	t.mu.Unlock()
	t.wg.Add(1)
	go p.run()
	return p
}

// newAcceptedPeer wraps an accepted connection. The closed-check and the
// registration are one critical section: either this runs before Close
// collects its peer list (so Close shuts this peer down too), or it
// observes closed and refuses.
func (t *Transport) newAcceptedPeer(conn net.Conn) *peer {
	p := t.newPeer("")
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil
	}
	p.conn = conn
	t.allPeers = append(t.allPeers, p)
	t.accepted = append(t.accepted, p)
	t.wg.Add(2)
	t.mu.Unlock()
	dead := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer t.wg.Done()
		defer close(writerDone)
		p.writeLoop(conn, dead)
	}()
	go func() {
		defer t.wg.Done()
		p.readLoop(conn)
		close(dead)
		conn.Close()
		<-writerDone
		p.markDown()
		// The peer stays reachable through any block that points at it (so
		// the failure detector can time its absence), but drop it from the
		// accepted list: a reconnecting joiner creates a fresh peer every
		// time, and retaining dead ones would leak. Frames the router still
		// routes here are stranded in the ring until the Close-time sweep
		// counts them as loss — the same fate they had unread in the old
		// channel, now with the slabs reclaimed.
		t.dropAccepted(p)
	}()
	return p
}

// run is the dial-side lifecycle: dial, handshake, pump, redial.
func (p *peer) run() {
	defer p.t.wg.Done()
	backoff := 50 * time.Millisecond
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", p.addr, 2*time.Second)
		if err != nil {
			p.t.opts.logf("nettransport: dial %s: %v (retry in %s)", p.addr, err, backoff)
			select {
			case <-p.stop:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > p.t.opts.MaxBackoff {
				backoff = p.t.opts.MaxBackoff
			}
			continue
		}
		backoff = 50 * time.Millisecond
		if !p.setConn(conn) {
			// shutdown() ran while we were dialing: the connection it
			// closed was the old one, so close this one and leave before
			// readLoop can block on a healthy socket forever.
			conn.Close()
			return
		}
		if p.t.role == roleJoiner {
			// (Re-)introduce ourselves before any queued data flows: Base ⊥
			// requests a fresh ID block, a previous base reclaims it.
			hello := wire.Hello{Base: p.t.BaseID(), Slots: p.t.opts.Slots}
			if err := wire.WriteFrame(conn, sim.Message{Body: hello}); err != nil {
				conn.Close()
				continue
			}
		}
		p.markUp()
		dead := make(chan struct{})
		writerDone := make(chan struct{})
		p.t.wg.Add(1)
		go func() {
			defer p.t.wg.Done()
			defer close(writerDone)
			p.writeLoop(conn, dead)
		}()
		p.readLoop(conn)
		conn.Close()
		close(dead)
		// The ring is single-consumer: the next connection's writeLoop may
		// not start until this one has provably exited.
		<-writerDone
		p.markDown()
		p.t.opts.logf("nettransport: link to %s lost; reconnecting", p.addr)
	}
}

// readLoop dispatches frames until the connection fails. Garbage frames
// are counted and skipped — the stream stays aligned; only framing-level
// corruption or I/O failure ends the connection. One frame buffer and one
// decode state (arena + body intern cache) are reused for the whole life
// of the connection, so the steady-state read path allocates only what
// escapes into the runtime — and for a fan-out of one shareable body,
// that is a single boxed value served from the cache.
func (p *peer) readLoop(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 64<<10)
	var buf []byte
	st := wire.NewDecodeState()
	for {
		m, b, err := wire.ReadFrameBufState(br, buf, st)
		buf = b
		if err != nil {
			if errors.Is(err, wire.ErrGarbage) {
				p.t.garbage.Add(1)
				p.t.opts.logf("nettransport: dropped garbage frame: %v", err)
				st.EndFrame() // a failed decode's scaffolding is reusable too
				continue
			}
			return
		}
		switch batch := m.Body.(type) {
		case wire.Batch:
			for _, im := range batch.Msgs {
				p.t.dispatch(im, p)
			}
		case wire.Batch2:
			for _, im := range batch.Msgs {
				p.t.dispatch(im, p)
			}
		default:
			p.t.dispatch(m, p)
		}
		// Dispatch injects message values into mailboxes (copies), so the
		// frame's scaffold slices can be rewound for the next frame.
		st.EndFrame()
	}
}

// maxBatch bounds the frames drained from the ring per write pass, and
// with it the members per Batch2 frame. 64 keeps a typical batch far
// below wire.MaxFrame while amortizing the frame header and the
// dispatch bookkeeping across a whole coalescing window.
const maxBatch = 64

// frameBudget is the soft size cap of one composed Batch2 frame. Chunks
// are cut so members beyond the budget start a new frame; a single
// member larger than the budget goes out as a standalone frame, where
// only wire.MaxFrame (enforced by the codec) bounds it.
const frameBudget = 256 << 10

// writeLoop drains the peer's ring into the connection: each PopN burst
// is composed into standalone frames or Batch2 frames (size-budgeted),
// stamping the router's pre-encoded slabs under per-destination
// envelopes — no message is re-encoded here. Slab references are dropped
// once their bytes have left for the socket (or the frame is shed), and
// the scratch buffer is reused across the connection's lifetime, so the
// steady-state write path performs no allocations.
func (p *peer) writeLoop(conn net.Conn, dead chan struct{}) {
	bw := bufio.NewWriterSize(conn, 64<<10)
	flush := time.NewTicker(p.t.opts.FlushEvery)
	defer flush.Stop()
	dirty := false
	scratch := make([]byte, 0, 4096)
	frames := make([]outFrame, maxBatch)

	// keepScratch caps the frame buffer capacity retained across flushes:
	// an occasional giant frame may balloon scratch transiently, but must
	// not pin that memory for the connection's lifetime.
	const keepScratch = 1 << 20

	// writeChunk composes fs into one wire frame and writes it through the
	// fault hook. It reports false only on an I/O failure; oversize and
	// fault-shed frames are counted loss and the stream continues. Every
	// message in fs ends in exactly one of delivered-to-bw or frameLost,
	// so loopback in-flight holds cannot leak.
	writeChunk := func(fs []outFrame) bool {
		var err error
		if len(fs) == 1 {
			f := fs[0]
			scratch, err = wire.AppendFrameRaw(scratch[:0], f.to, f.from, f.topic, f.s.b)
		} else {
			scratch = wire.BeginBatchFrame(scratch[:0], len(fs))
			for _, f := range fs {
				scratch = wire.AppendBatchMember(scratch, f.to, f.from, f.topic, f.s.b)
			}
			scratch, err = wire.FinishFrame(scratch, 0)
		}
		if err != nil {
			// Oversize: only this chunk is bad; shed it as counted loss.
			for range fs {
				p.frameLost()
			}
			return true
		}
		write, corrupted := p.applyFrameFault(scratch, len(fs))
		if !write {
			return true // frame shed by the fault hook
		}
		if _, err := bw.Write(scratch); err != nil {
			if corrupted {
				p.t.lost.Add(int64(len(fs))) // holds already released by the corrupt path
			} else {
				for range fs {
					p.frameLost()
				}
			}
			return false // I/O failure: let the reader's error path reconnect
		}
		dirty = true
		return true
	}

	// release drops the slab references of fs and clears the entries.
	release := func(fs []outFrame) {
		for i := range fs {
			fs[i].s.unref(p.t)
			fs[i] = outFrame{}
		}
	}

	// emit writes one PopN burst as size-budgeted chunks. On I/O failure
	// the unwritten tail is counted loss (it was dequeued and will never
	// be written); all slab references are dropped in every path.
	emit := func(fs []outFrame) bool {
		i := 0
		for i < len(fs) {
			n := 1
			size := wire.BatchMemberSize(fs[i].to, fs[i].from, fs[i].topic, len(fs[i].s.b))
			for i+n < len(fs) {
				f := fs[i+n]
				next := wire.BatchMemberSize(f.to, f.from, f.topic, len(f.s.b))
				if size+next > frameBudget {
					break
				}
				size += next
				n++
			}
			ok := writeChunk(fs[i : i+n]) // accounts its own messages in all paths
			release(fs[i : i+n])
			i += n
			if !ok {
				for range fs[i:] {
					p.frameLost()
				}
				release(fs[i:])
				return false
			}
		}
		return true
	}

	for {
		if n := p.rb.PopN(frames); n > 0 {
			if !emit(frames[:n]) {
				conn.Close()
				return
			}
			if cap(scratch) > keepScratch {
				scratch = make([]byte, 0, 4096)
			}
			continue
		}
		// Ring empty (wake flag armed by PopN): sleep until the router
		// pushes, the flush window closes, or the connection dies.
		select {
		case <-p.stop:
			bw.Flush()
			return
		case <-dead:
			return
		case <-p.rb.Wake():
		case <-flush.C:
			if dirty {
				if bw.Flush() != nil {
					conn.Close()
					return
				}
				dirty = false
			}
		}
	}
}

// applyFrameFault runs the wire-level fault hook for an encoded frame
// carrying n messages. write reports whether the frame may be written
// (false for FrameDrop, accounted as n lost frames). FrameCorrupt flips
// the magic bytes in place — the receiver will count the frame as garbage
// and skip it, so the loopback in-flight holds are released here (the
// messages will never re-enter through Inject) and corrupted is returned
// true: a subsequent I/O failure on the same frame must NOT run the
// frameLost accounting again, or the holds would be double-released and
// the quiesce barrier would open early. Flipping the magic, not arbitrary
// bytes, guarantees the corrupted frame cannot decode into a different
// valid message, which would likewise double-release the holds.
func (p *peer) applyFrameFault(frame []byte, n int) (write, corrupted bool) {
	switch p.t.frameVerdict() {
	case FrameDrop:
		for i := 0; i < n; i++ {
			p.frameLost()
		}
		return false, false
	case FrameCorrupt:
		frame[4] ^= 0xFF
		frame[5] ^= 0xFF
		if p.t.role == roleLoopback {
			p.t.inflight.Add(int64(-n))
		}
		return true, true
	}
	return true, false
}

// frameLost records one frame that will never arrive, releasing its
// loopback in-flight hold so the quiesce barrier cannot wedge on it.
func (p *peer) frameLost() {
	p.t.lost.Add(1)
	if p.t.role == roleLoopback {
		p.t.inflight.Add(-1)
	}
}

// push appends a frame to the peer's ring (router only — the ring is
// single-producer), refusing when the peer is shut down or the ring is
// full; the caller owns the loss accounting and the slab reference.
func (p *peer) push(f outFrame) bool {
	select {
	case <-p.stop:
		return false
	default:
	}
	return p.rb.Push(f)
}

// drainRing empties the ring as counted loss, reclaiming the slab
// references. Only the Close path calls it, after wg.Wait has retired
// the router and every writer — the ring has no other producer or
// consumer left, so the sweep is race-free and final.
func (p *peer) drainRing() {
	for {
		f, ok := p.rb.Pop()
		if !ok {
			return
		}
		f.s.unref(p.t)
		p.frameLost()
	}
}

// setConn installs the current connection. It reports false — without
// installing — when the peer has been shut down, so a dial racing
// shutdown cannot resurrect the link.
func (p *peer) setConn(c net.Conn) bool {
	select {
	case <-p.stop:
		return false
	default:
	}
	p.mu.Lock()
	p.conn = c
	p.mu.Unlock()
	// Re-check: shutdown may have read the old conn just before we
	// installed this one.
	select {
	case <-p.stop:
		return false
	default:
		return true
	}
}

func (p *peer) markUp() {
	p.mu.Lock()
	p.down = time.Time{}
	p.mu.Unlock()
}

func (p *peer) markDown() {
	p.mu.Lock()
	if p.down.IsZero() {
		p.down = time.Now()
	}
	p.mu.Unlock()
}

// downFor reports whether the link has been down for at least grace.
func (p *peer) downFor(grace time.Duration) bool {
	if p == nil {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return !p.down.IsZero() && time.Since(p.down) >= grace
}

// shutdown permanently stops the peer and closes its connection.
func (p *peer) shutdown() {
	p.once.Do(func() { close(p.stop) })
	p.mu.Lock()
	c := p.conn
	p.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

func (p *peer) describe() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		return p.conn.RemoteAddr().String()
	}
	return p.addr
}
