// Package nettransport runs the protocol across real TCP connections: a
// sim.Transport whose messages leave the address space as wire frames.
// Local nodes execute on an embedded concurrent runtime
// (internal/runtime/concurrent); the transport intercepts every send with
// the runtime's Redirect hook, routes frames over sockets, and re-enters
// arriving frames with Inject. Protocol code is unchanged — it still only
// sees sim.Context.
//
// Three roles, one implementation:
//
//   - Loopback (NewLoopback): a single process that dials its own
//     listener, so every message — even node-to-node within the process —
//     crosses the codec and a real TCP socket. This is the conformance
//     and benchmarking configuration: same scenario API as the other
//     substrates, plus a working Quiesce barrier that extends over frames
//     in flight.
//   - Hub (NewHub): listens for joiner processes, grants each a block of
//     node IDs, delivers frames addressed to its own nodes and relays
//     joiner-to-joiner traffic (a star topology — the supervisor process
//     is the natural hub).
//   - Joiner (NewJoiner): dials the hub, receives its ID block, and sends
//     every non-local message to the hub for delivery or relay. Dropped
//     links are redialed with exponential backoff; frames queued or lost
//     while a link is down are message loss, which the protocol already
//     tolerates (Section 3.3 treats channel contents as corruptible
//     state).
//
// Failure semantics: a garbage frame (wire.ErrGarbage) is counted and
// skipped — the stream stays aligned and nothing crashes, because a
// corrupted frame is exactly the arbitrary state self-stabilization
// absorbs. A framing-level violation (oversize length prefix, I/O error)
// kills the connection; reconnect makes it look like a lossy link.
package nettransport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sspubsub/internal/runtime/concurrent"
	"sspubsub/internal/sim"
	"sspubsub/internal/wire"
)

// Options configure a networked transport.
type Options struct {
	// Listen is the TCP address to listen on (hub and loopback roles).
	Listen string
	// Hub is the address to dial (joiner role).
	Hub string
	// Interval is the protocol timeout interval of the embedded runtime.
	// Default 10ms.
	Interval time.Duration
	// Seed seeds the embedded runtime's per-node randomness.
	Seed int64
	// Jitter is the per-tick timeout jitter (see concurrent.Options).
	Jitter float64
	// FlushEvery is the write-coalescing interval: frames queued within
	// one window leave in a single flush. Default 500µs.
	FlushEvery time.Duration
	// Slots is the node-ID block size a joiner requests. Default 1024.
	Slots uint32
	// QueueDepth bounds the frames buffered toward one link (the per-peer
	// egress ring; capacities round up to a power of two). A full ring
	// drops (message loss, which the protocol tolerates) rather than
	// blocking a protocol handler. Default 4096.
	QueueDepth uint32
	// HandshakeTimeout bounds a joiner's wait for its Welcome. Default 5s.
	HandshakeTimeout time.Duration
	// MaxBackoff caps the reconnect backoff. Default 2s.
	MaxBackoff time.Duration
	// DetectorGrace is how long a peer's link may be down before the
	// failure detector suspects its nodes. Default 20·Interval.
	DetectorGrace time.Duration
	// Logf, when non-nil, receives connection lifecycle diagnostics.
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.Interval == 0 {
		o.Interval = 10 * time.Millisecond
	}
	if o.FlushEvery == 0 {
		o.FlushEvery = 500 * time.Microsecond
	}
	if o.Slots == 0 {
		o.Slots = 1024
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 4096
	}
	if o.HandshakeTimeout == 0 {
		o.HandshakeTimeout = 5 * time.Second
	}
	if o.MaxBackoff == 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.DetectorGrace == 0 {
		o.DetectorGrace = 20 * o.Interval
	}
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

type role int

const (
	roleLoopback role = iota
	roleHub
	roleJoiner
)

// firstJoinerBase is the first node ID block a hub grants. Everything
// below it belongs to the hub process (supervisors and hub-local clients).
const firstJoinerBase sim.NodeID = 1 << 12

// Transport is a sim.Transport over TCP. It must be closed.
type Transport struct {
	opts Options
	role role
	rt   *concurrent.Runtime
	ln   net.Listener

	// inflight counts frames between the Redirect intercept and their
	// local re-injection; only the loopback role maintains it (frames that
	// leave the process never come back, so cross-process quiesce is not a
	// thing). It is the runtime's ExtraPending. Known conservative edge:
	// frames sitting unflushed in the write buffer when the loopback
	// connection itself dies are unaccounted losses, leaving inflight
	// permanently raised — Quiesce then reports false rather than lying,
	// and a dying loopback socket means the host is broken anyway.
	inflight atomic.Int64
	garbage  atomic.Int64 // undecodable frames dropped
	lost     atomic.Int64 // frames dropped by dead links / unroutable IDs

	// frameFault, when set, is consulted once per outgoing frame on the
	// writer goroutines: it can drop the frame whole or smash its magic
	// bytes so the receiver's decoder sees garbage (the chaos engine's
	// wire-corruption fault).
	frameFault atomic.Pointer[func() FrameFault]

	// egressCh feeds the encode-once router (see egress.go); egressStop
	// retires it during Close. The slab counters expose the refcounted-
	// slab leak invariant (SlabStats).
	egressCh     chan egressItem
	egressStop   chan struct{}
	slabAcquired atomic.Int64
	slabReleased atomic.Int64

	mu       sync.Mutex
	local    map[sim.NodeID]bool
	blocks   []*block // hub: granted ID blocks, routing table
	accepted []*peer  // every accepted connection, for shutdown
	allPeers []*peer  // every peer ever created, for the Close ring sweep
	up       *peer    // loopback/joiner: the dialed upstream link
	base     sim.NodeID
	slots    uint32
	next     sim.NodeID // hub: next block base to grant
	closed   bool
	ready    chan struct{} // joiner: closed once Welcome arrives
	readyMu  sync.Once

	wg sync.WaitGroup
}

// block is one granted node-ID range and the peer link that owns it.
type block struct {
	base sim.NodeID
	n    uint32
	p    *peer
}

func (b *block) contains(id sim.NodeID) bool {
	return id >= b.base && id < b.base+sim.NodeID(b.n)
}

// NewLoopback starts a single-process transport whose every message
// crosses a real TCP socket: it listens on addr (default 127.0.0.1:0) and
// dials itself.
func NewLoopback(opts Options) (*Transport, error) {
	if opts.Listen == "" {
		opts.Listen = "127.0.0.1:0"
	}
	t, err := newTransport(opts, roleLoopback)
	if err != nil {
		return nil, err
	}
	t.up = t.newDialPeer(t.ln.Addr().String())
	return t, nil
}

// NewHub starts the hub process: it listens on opts.Listen, hosts its own
// nodes, grants ID blocks to joiners and relays joiner-to-joiner frames.
func NewHub(opts Options) (*Transport, error) {
	if opts.Listen == "" {
		return nil, fmt.Errorf("nettransport: hub requires a listen address")
	}
	return newTransport(opts, roleHub)
}

// NewJoiner dials the hub, performs the Hello/Welcome handshake and
// returns once this process owns a node-ID block (see BaseID). The link
// redials with backoff forever after; only the first handshake is awaited.
func NewJoiner(opts Options) (*Transport, error) {
	if opts.Hub == "" {
		return nil, fmt.Errorf("nettransport: joiner requires a hub address")
	}
	opts.fill()
	t := &Transport{
		opts:  opts,
		role:  roleJoiner,
		local: make(map[sim.NodeID]bool),
		ready: make(chan struct{}),
	}
	t.rt = t.newRuntime()
	t.startEgress()
	t.up = t.newDialPeer(opts.Hub)
	select {
	case <-t.ready:
		return t, nil
	case <-time.After(opts.HandshakeTimeout):
		t.Close()
		return nil, fmt.Errorf("nettransport: no Welcome from hub %s within %s", opts.Hub, opts.HandshakeTimeout)
	}
}

func newTransport(opts Options, r role) (*Transport, error) {
	opts.fill()
	ln, err := net.Listen("tcp", opts.Listen)
	if err != nil {
		return nil, fmt.Errorf("nettransport: listen %s: %w", opts.Listen, err)
	}
	t := &Transport{
		opts:  opts,
		role:  r,
		ln:    ln,
		local: make(map[sim.NodeID]bool),
		next:  firstJoinerBase,
	}
	t.rt = t.newRuntime()
	t.startEgress()
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

func (t *Transport) newRuntime() *concurrent.Runtime {
	return concurrent.NewRuntime(concurrent.Options{
		Interval:     t.opts.Interval,
		Seed:         t.opts.Seed,
		Jitter:       t.opts.Jitter,
		Redirect:     t.redirect,
		ExtraPending: t.inflight.Load,
	})
}

// Addr returns the transport's listen address ("" for joiners).
func (t *Transport) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// BaseID returns the first node ID of the block granted to this process.
// On the hub and loopback roles it returns sim.None: they allocate their
// IDs below firstJoinerBase themselves.
func (t *Transport) BaseID() sim.NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.base
}

// Slots returns the size of the granted ID block (joiner role).
func (t *Transport) Slots() uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.slots
}

// FrameFault is the verdict of the wire-level fault hook for one outgoing
// frame.
type FrameFault uint8

const (
	// FrameDeliver writes the frame unchanged.
	FrameDeliver FrameFault = iota
	// FrameDrop sheds the frame before it reaches the socket (counted as
	// lost frames, one per carried message).
	FrameDrop
	// FrameCorrupt flips the frame's magic bytes: the frame crosses the
	// socket but the receiver's decoder rejects it as garbage, exercising
	// the ErrGarbage recovery path end to end.
	FrameCorrupt
)

// SetFault installs (or clears, with nil) the message-level fault filter of
// the embedded runtime; see concurrent.Runtime.SetFault.
func (t *Transport) SetFault(f sim.FaultFunc) { t.rt.SetFault(f) }

// SetFrameFault installs (or clears, with nil) the wire-level fault hook,
// consulted once per outgoing frame on the writer goroutines. It must be
// safe for concurrent use.
func (t *Transport) SetFrameFault(f func() FrameFault) {
	if f == nil {
		t.frameFault.Store(nil)
		return
	}
	t.frameFault.Store(&f)
}

// frameVerdict evaluates the wire-level fault hook for the next frame.
func (t *Transport) frameVerdict() FrameFault {
	if f := t.frameFault.Load(); f != nil {
		return (*f)()
	}
	return FrameDeliver
}

// GarbageFrames returns the number of frames dropped as undecodable.
func (t *Transport) GarbageFrames() int64 { return t.garbage.Load() }

// LostFrames returns frames dropped by dead links or unroutable targets.
func (t *Transport) LostFrames() int64 { return t.lost.Load() }

// ---- sim.Transport ----

// AddNode registers a handler on the embedded runtime and records the ID
// as local for routing.
func (t *Transport) AddNode(id sim.NodeID, h sim.Handler) {
	t.mu.Lock()
	t.local[id] = true
	t.mu.Unlock()
	t.rt.AddNode(id, h)
}

// RemoveNode deregisters a local node.
func (t *Transport) RemoveNode(id sim.NodeID) {
	t.rt.RemoveNode(id)
	t.mu.Lock()
	delete(t.local, id)
	t.mu.Unlock()
}

// Crash fails a local node without warning. Crashing a remote node is not
// supported and is a no-op (each process owns its own failures).
func (t *Transport) Crash(id sim.NodeID) {
	t.mu.Lock()
	isLocal := t.local[id]
	if isLocal {
		delete(t.local, id)
	}
	t.mu.Unlock()
	if isLocal || t.role == roleLoopback {
		t.rt.Crash(id)
	}
}

// Send routes a message through the embedded runtime (whose Redirect hook
// brings it back to this transport when it must cross a socket).
func (t *Transport) Send(m sim.Message) { t.rt.Send(m) }

// Suspects implements the failure detector of Section 3.3 across
// processes: local nodes defer to the runtime's crash bookkeeping; nodes
// in a granted block are suspected once their link has been down longer
// than DetectorGrace; unknown IDs are suspected immediately.
func (t *Transport) Suspects(id sim.NodeID) bool {
	if t.role == roleLoopback {
		return t.rt.Suspects(id)
	}
	t.mu.Lock()
	isLocal := t.local[id]
	var owner *peer
	for _, b := range t.blocks {
		if b.contains(id) {
			owner = b.p
			break
		}
	}
	joinerUp := t.up
	t.mu.Unlock()
	if isLocal {
		return t.rt.Suspects(id)
	}
	if owner != nil {
		return owner.downFor(t.opts.DetectorGrace)
	}
	if t.role == roleJoiner {
		// Everything non-local reaches this process through the hub; while
		// the hub link is up we cannot tell remote nodes apart, and only
		// the supervisor consults the detector anyway.
		return joinerUp.downFor(t.opts.DetectorGrace)
	}
	return true
}

// Close stops the listener, all peer links, the egress router and the
// embedded runtime, then sweeps every peer ring: frames stranded between
// the router and a writer are counted loss and their slabs reclaimed, so
// SlabStats balances on a closed transport.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	peers := make([]*peer, 0, len(t.blocks)+len(t.accepted)+1)
	if t.up != nil {
		peers = append(peers, t.up)
	}
	for _, b := range t.blocks {
		peers = append(peers, b.p)
	}
	peers = append(peers, t.accepted...)
	t.mu.Unlock()
	if t.ln != nil {
		t.ln.Close()
	}
	for _, p := range peers {
		p.shutdown()
	}
	// Runtime first (no handler is left to call egressSend), then the
	// router (drains the egress queue as loss and exits), then the
	// barrier: after wg.Wait no goroutine touches any ring.
	t.rt.Close()
	close(t.egressStop)
	t.wg.Wait()
	t.mu.Lock()
	all := t.allPeers
	t.mu.Unlock()
	for _, p := range all {
		p.drainRing()
	}
}

// ---- driver conveniences (Simulation facade parity) ----

// Quiesce freezes the transport for a consistent snapshot: timeouts pause
// and the barrier waits for mailboxes, handlers AND frames in the socket
// to drain. Only meaningful on the loopback role, where every frame comes
// back; on hub/joiner roles frames crossing to other processes are outside
// any one process's barrier.
func (t *Transport) Quiesce(timeout time.Duration, f func()) bool {
	return t.rt.Quiesce(timeout, f)
}

// Delivered returns messages handled by local nodes.
func (t *Transport) Delivered() int64 { return t.rt.Delivered() }

// CountByType returns local sends per message body type name.
func (t *Transport) CountByType(name string) int64 { return t.rt.CountByType(name) }

// SentBy returns messages sent by a local node.
func (t *Transport) SentBy(id sim.NodeID) int64 { return t.rt.SentBy(id) }

// ResetCounters zeroes the local accounting.
func (t *Transport) ResetCounters() { t.rt.ResetCounters() }

// Now returns time in timeout intervals since the transport started.
func (t *Transport) Now() float64 { return t.rt.Now() }

// Runtime exposes the embedded concurrent runtime (fault injectors,
// advanced accounting).
func (t *Transport) Runtime() *concurrent.Runtime { return t.rt }

var _ sim.Transport = (*Transport)(nil)

// ---- routing ----

// redirect is the runtime's Redirect hook: it decides, for every send,
// whether the message stays in-process or crosses a socket. Messages
// that cross hand off to the egress router (encode-once, lock-free
// rings); the router and its loss paths own the rest of the accounting.
func (t *Transport) redirect(m sim.Message) bool {
	switch t.role {
	case roleLoopback:
		// Everything crosses the socket, even self-sends: the point of the
		// loopback role is that no message skips the codec. The in-flight
		// hold taken here is released at Inject or at whichever loss point
		// claims the message first.
		t.inflight.Add(1)
		t.egressSend(m, t.up)
		return true
	case roleJoiner:
		t.mu.Lock()
		isLocal := t.local[m.To]
		up := t.up
		t.mu.Unlock()
		if isLocal {
			return false
		}
		t.egressSend(m, up)
		return true
	default: // hub
		t.mu.Lock()
		isLocal := t.local[m.To]
		p := t.peerFor(m.To)
		t.mu.Unlock()
		if isLocal {
			return false
		}
		if p == nil {
			t.lost.Add(1)
			return true
		}
		t.egressSend(m, p)
		return true
	}
}

// peerFor returns the link owning id's block. Caller holds t.mu.
func (t *Transport) peerFor(id sim.NodeID) *peer {
	for _, b := range t.blocks {
		if b.contains(id) {
			return b.p
		}
	}
	return nil
}

// dispatch handles one decoded frame arriving on a connection.
func (t *Transport) dispatch(m sim.Message, from *peer) {
	switch body := m.Body.(type) {
	case wire.Hello:
		t.handleHello(body, from)
	case wire.Welcome:
		t.mu.Lock()
		t.base, t.slots = body.Base, body.Slots
		t.mu.Unlock()
		t.readyMu.Do(func() {
			if t.ready != nil {
				close(t.ready)
			}
		})
	default:
		t.deliverOrRelay(m)
	}
}

// deliverOrRelay delivers a data frame to a local node or, on the hub,
// relays it toward the block owning its target.
func (t *Transport) deliverOrRelay(m sim.Message) {
	if t.role == roleLoopback {
		t.rt.Inject(m)
		t.inflight.Add(-1)
		return
	}
	t.mu.Lock()
	isLocal := t.local[m.To]
	var relay *peer
	if !isLocal && t.role == roleHub {
		relay = t.peerFor(m.To)
	}
	t.mu.Unlock()
	switch {
	case isLocal:
		t.rt.Inject(m)
	case relay != nil:
		t.egressSend(m, relay)
	default:
		// Target unknown: the node never existed, its process left, or the
		// frame is stale. Message loss, by design.
		t.lost.Add(1)
	}
}

// handleHello grants (or re-attaches) a node-ID block to a dialing peer.
// A reclaim (Base ≠ ⊥) is honored exactly: re-attach when the block
// exists, re-create it at the same range when it does not (the hub may
// have restarted and lost its grants) — never hand out a different base,
// because the joiner's node IDs are fixed at its System's construction
// and a base swap would silently misroute every frame. Only when the
// requested range already overlaps someone else's block does the joiner
// get a fresh one; it is then effectively partitioned, which the failure
// detector turns into ordinary member loss.
func (t *Transport) handleHello(h wire.Hello, from *peer) {
	if t.role != roleHub {
		return // loopback: self-dialed link needs no handshake; ignore
	}
	slots := h.Slots
	if slots == 0 || slots > 1<<16 {
		slots = t.opts.Slots
	}
	t.mu.Lock()
	var granted *block
	if h.Base != sim.None {
		for _, b := range t.blocks {
			if b.base == h.Base {
				granted = b // reconnect: re-attach the old block
				break
			}
		}
		if granted == nil && !t.overlapsLocked(h.Base, slots) {
			// Hub restarted since the original grant: restore the block at
			// exactly the claimed range.
			granted = &block{base: h.Base, n: slots}
			t.blocks = append(t.blocks, granted)
			if end := h.Base + sim.NodeID(slots); t.next < end {
				t.next = end
			}
		}
	}
	if granted == nil {
		granted = &block{base: t.next, n: slots}
		t.next += sim.NodeID(slots)
		t.blocks = append(t.blocks, granted)
	}
	old := granted.p
	granted.p = from
	t.mu.Unlock()
	if old != nil && old != from {
		old.shutdown() // the joiner reconnected; retire the dead link
	}
	t.opts.logf("nettransport: granted block [%d,%d) to %s", granted.base,
		granted.base+sim.NodeID(granted.n), from.describe())
	t.egressSend(sim.Message{Body: wire.Welcome{Base: granted.base, Slots: granted.n}}, from)
}

// overlapsLocked reports whether [base, base+n) intersects any granted
// block. Caller holds t.mu.
func (t *Transport) overlapsLocked(base sim.NodeID, n uint32) bool {
	end := base + sim.NodeID(n)
	for _, b := range t.blocks {
		if base < b.base+sim.NodeID(b.n) && b.base < end {
			return true
		}
	}
	return false
}

// dropAccepted removes a dead accepted peer from the shutdown list.
func (t *Transport) dropAccepted(p *peer) {
	t.mu.Lock()
	for i, q := range t.accepted {
		if q == p {
			t.accepted = append(t.accepted[:i], t.accepted[i+1:]...)
			break
		}
	}
	t.mu.Unlock()
	p.shutdown()
}

// acceptLoop turns incoming connections into peers (hub) or frame sources
// (loopback).
func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.newAcceptedPeer(conn)
	}
}
