package nettransport

import (
	"sync/atomic"
	"testing"
	"time"

	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
)

type countHandler struct{ n atomic.Int64 }

func (h *countHandler) OnMessage(sim.Context, sim.Message) { h.n.Add(1) }
func (h *countHandler) OnTimeout(sim.Context)              {}

// TestLoopbackFrameCorrupt pins the wire-corruption fault: corrupted
// frames cross the socket, are rejected as garbage by the reader, never
// reach a handler, and — critically — do not wedge the quiesce barrier
// (their loopback in-flight holds are released at corruption time).
func TestLoopbackFrameCorrupt(t *testing.T) {
	tr, err := NewLoopback(Options{Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	h := &countHandler{}
	tr.AddNode(2, h)

	tr.SetFrameFault(func() FrameFault { return FrameCorrupt })
	const k = 10
	for i := 0; i < k; i++ {
		tr.Send(sim.Message{To: 2, From: 2, Topic: 1, Body: proto.Subscribe{V: 2}})
	}
	if !tr.Quiesce(5*time.Second, func() {}) {
		t.Fatal("quiesce wedged on corrupted frames")
	}
	if got := h.n.Load(); got != 0 {
		t.Fatalf("%d corrupted frames were delivered", got)
	}
	// Corrupted frames are outside the quiesce barrier (their holds are
	// released at corruption time), so the reader's garbage count trails
	// the barrier: poll for it. Coalescing may batch several messages into
	// one corrupted frame, so the count is ≥ 1 and ≤ k.
	deadline := time.Now().Add(5 * time.Second)
	for tr.GarbageFrames() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if g := tr.GarbageFrames(); g < 1 || g > k {
		t.Fatalf("GarbageFrames() = %d, want in [1, %d]", g, k)
	}

	// Healed link: traffic flows again.
	tr.SetFrameFault(nil)
	tr.Send(sim.Message{To: 2, From: 2, Topic: 1, Body: proto.Subscribe{V: 2}})
	ok := tr.Quiesce(5*time.Second, func() {
		if got := h.n.Load(); got != 1 {
			t.Errorf("post-heal delivery count %d, want 1", got)
		}
	})
	if !ok {
		t.Fatal("no quiesce after healing the frame fault")
	}
}

// TestLoopbackFrameDrop pins the frame-shedding fault and its loss
// accounting.
func TestLoopbackFrameDrop(t *testing.T) {
	tr, err := NewLoopback(Options{Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	h := &countHandler{}
	tr.AddNode(2, h)
	tr.SetFrameFault(func() FrameFault { return FrameDrop })
	const k = 10
	for i := 0; i < k; i++ {
		tr.Send(sim.Message{To: 2, From: 2, Topic: 1, Body: proto.Subscribe{V: 2}})
	}
	if !tr.Quiesce(5*time.Second, func() {}) {
		t.Fatal("quiesce wedged on dropped frames")
	}
	if got := h.n.Load(); got != 0 {
		t.Fatalf("%d dropped frames were delivered", got)
	}
	if lost := tr.LostFrames(); lost != k {
		t.Fatalf("LostFrames() = %d, want %d (one per shed message)", lost, k)
	}
}
