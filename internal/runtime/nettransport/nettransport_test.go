package nettransport

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
	"sspubsub/internal/wire"
)

// echoNode counts deliveries and, when pingTo is set, replies to every
// message with one send back.
type echoNode struct {
	got    atomic.Int64
	pingTo sim.NodeID
}

func (e *echoNode) OnMessage(ctx sim.Context, m sim.Message) {
	e.got.Add(1)
	if e.pingTo != sim.None {
		ctx.Send(e.pingTo, m.Topic, m.Body)
	}
}
func (e *echoNode) OnTimeout(ctx sim.Context) {}

func waitFor(t *testing.T, timeout time.Duration, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLoopbackDelivery: messages between nodes of one process cross the
// socket and still arrive; the quiesce barrier covers frames in flight.
func TestLoopbackDelivery(t *testing.T) {
	tr, err := NewLoopback(Options{Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	a, b := &echoNode{}, &echoNode{}
	tr.AddNode(1, a)
	tr.AddNode(2, b)
	for i := 0; i < 100; i++ {
		tr.Send(sim.Message{To: 2, From: 1, Topic: 1, Body: proto.Subscribe{V: sim.NodeID(i)}})
	}
	waitFor(t, 5*time.Second, "loopback delivery", func() bool { return b.got.Load() == 100 })
	ok := tr.Quiesce(2*time.Second, func() {
		if got := b.got.Load(); got != 100 {
			t.Errorf("under quiesce: %d delivered", got)
		}
	})
	if !ok {
		t.Fatal("quiesce timed out")
	}
	if g := tr.GarbageFrames(); g != 0 {
		t.Errorf("%d garbage frames on a clean run", g)
	}
}

// TestLoopbackPingPong exercises handler-originated sends (the Redirect
// hook on node goroutines) under load, race-detector friendly.
func TestLoopbackPingPong(t *testing.T) {
	tr, err := NewLoopback(Options{Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	a := &echoNode{pingTo: 2}
	b := &echoNode{}
	tr.AddNode(1, a)
	tr.AddNode(2, b)
	for i := 0; i < 50; i++ {
		tr.Send(sim.Message{To: 1, From: 2, Topic: 1, Body: proto.Subscribe{}})
	}
	waitFor(t, 5*time.Second, "ping-pong", func() bool { return b.got.Load() == 50 })
}

// TestHubJoinerRouting runs a hub and two joiners as separate transports
// over real sockets: hub↔joiner and joiner↔joiner (relayed) traffic.
func TestHubJoinerRouting(t *testing.T) {
	hub, err := NewHub(Options{Listen: "127.0.0.1:0", Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	j1, err := NewJoiner(Options{Hub: hub.Addr(), Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer j1.Close()
	j2, err := NewJoiner(Options{Hub: hub.Addr(), Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()

	if j1.BaseID() == j2.BaseID() || j1.BaseID() == sim.None {
		t.Fatalf("bad block grants: %d and %d", j1.BaseID(), j2.BaseID())
	}

	hubNode := &echoNode{}
	hub.AddNode(1, hubNode)
	n1 := &echoNode{}
	id1 := j1.BaseID()
	j1.AddNode(id1, n1)
	n2 := &echoNode{}
	id2 := j2.BaseID()
	j2.AddNode(id2, n2)

	// Joiner → hub.
	j1.Send(sim.Message{To: 1, From: id1, Topic: 1, Body: proto.Subscribe{V: 7}})
	waitFor(t, 5*time.Second, "joiner→hub", func() bool { return hubNode.got.Load() == 1 })

	// Hub → joiner.
	hub.Send(sim.Message{To: id1, From: 1, Topic: 1, Body: proto.Subscribe{V: 8}})
	waitFor(t, 5*time.Second, "hub→joiner", func() bool { return n1.got.Load() == 1 })

	// Joiner → joiner, relayed through the hub.
	j1.Send(sim.Message{To: id2, From: id1, Topic: 1, Body: proto.Subscribe{V: 9}})
	waitFor(t, 5*time.Second, "joiner→joiner relay", func() bool { return n2.got.Load() == 1 })

	// Unroutable: silently dropped, counted, no crash.
	before := hub.LostFrames()
	hub.Send(sim.Message{To: 99999, From: 1, Topic: 1, Body: proto.Subscribe{}})
	waitFor(t, 5*time.Second, "unroutable counted", func() bool { return hub.LostFrames() > before })
}

// TestGarbageFramesDropped writes raw garbage into the hub's listener:
// the frames must be counted and dropped without wedging the transport.
func TestGarbageFramesDropped(t *testing.T) {
	hub, err := NewHub(Options{Listen: "127.0.0.1:0", Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	hubNode := &echoNode{}
	hub.AddNode(1, hubNode)

	conn, err := net.Dial("tcp", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Three well-delimited garbage frames (unknown tag / bad magic), then a
	// valid one: the reader must survive the garbage and deliver the rest.
	bad1 := []byte{0, 0, 0, 3, 'S', 'R', 99}      // bad version
	bad2 := []byte{0, 0, 0, 4, 'S', 'R', 1, 0xFF} // truncated envelope
	bad3 := []byte{0, 0, 0, 5, 'X', 'Y', 1, 0, 0} // bad magic
	good, err := wire.Marshal(sim.Message{To: 1, From: 5, Topic: 1, Body: wire.Hello{Base: 1, Slots: 3}})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range [][]byte{bad1, bad2, bad3, good} {
		if _, err := conn.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "garbage counted", func() bool { return hub.GarbageFrames() == 3 })
	// The valid frame was a Hello: the hub must still answer with a Welcome.
	m, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Body.(wire.Welcome); !ok {
		t.Fatalf("expected Welcome after garbage, got %T", m.Body)
	}
}

// TestJoinerReconnect kills the joiner's first hub and brings up a new hub
// on the same address: the joiner must redial with backoff, re-present its
// block, and traffic must flow again. Link downtime must look like message
// loss, not an error.
func TestJoinerReconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	hub1, err := NewHub(Options{Listen: addr, Interval: 5 * time.Millisecond, MaxBackoff: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	j, err := NewJoiner(Options{Hub: addr, Interval: 5 * time.Millisecond, MaxBackoff: 100 * time.Millisecond})
	if err != nil {
		hub1.Close()
		t.Fatal(err)
	}
	defer j.Close()
	base := j.BaseID()
	nid := base
	n := &echoNode{}
	j.AddNode(nid, n)

	hub1.Close() // link drops; joiner enters backoff

	// Sends while the link is down are lost, not fatal.
	j.Send(sim.Message{To: 1, From: nid, Topic: 1, Body: proto.Subscribe{}})

	hub2, err := NewHub(Options{Listen: addr, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer hub2.Close()
	hubNode := &echoNode{}
	hub2.AddNode(1, hubNode)

	// After reconnect the joiner re-greets with its old base; the new hub
	// grants it afresh and routing works both ways again.
	var delivered bool
	deadline := time.Now().Add(10 * time.Second)
	for !delivered && time.Now().Before(deadline) {
		j.Send(sim.Message{To: 1, From: nid, Topic: 1, Body: proto.Subscribe{V: 1}})
		time.Sleep(20 * time.Millisecond)
		delivered = hubNode.got.Load() > 0
	}
	if !delivered {
		t.Fatal("joiner never reached the new hub")
	}
	hub2.Send(sim.Message{To: nid, From: 1, Topic: 1, Body: proto.Subscribe{V: 2}})
	waitFor(t, 5*time.Second, "hub2→joiner", func() bool { return n.got.Load() > 0 })
}

// TestWriteCoalescing: many frames sent within one flush window arrive in
// far fewer socket flushes than frames (observable only indirectly —
// assert they all arrive and the test's real value is the race detector
// over the batching path).
func TestWriteCoalescing(t *testing.T) {
	tr, err := NewLoopback(Options{Interval: 5 * time.Millisecond, FlushEvery: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	n := &echoNode{}
	tr.AddNode(1, n)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				tr.Send(sim.Message{To: 1, From: 2, Topic: 1, Body: proto.Subscribe{V: sim.NodeID(g*1000 + i)}})
			}
		}(g)
	}
	wg.Wait()
	waitFor(t, 10*time.Second, "coalesced burst", func() bool { return n.got.Load() == 1000 })
}

// TestLoopbackCrashDropsInFlight: frames addressed to a crashed node are
// dropped on re-injection and the quiesce barrier still settles.
func TestLoopbackCrashDropsInFlight(t *testing.T) {
	tr, err := NewLoopback(Options{Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	a, b := &echoNode{}, &echoNode{}
	tr.AddNode(1, a)
	tr.AddNode(2, b)
	for i := 0; i < 20; i++ {
		tr.Send(sim.Message{To: 2, From: 1, Topic: 1, Body: proto.Subscribe{}})
	}
	tr.Crash(2)
	if !tr.Quiesce(2*time.Second, func() {}) {
		t.Fatal("quiesce did not settle after crash")
	}
	if !tr.Suspects(2) {
		// DetectorGrace for the embedded runtime defaults to 2·Interval.
		time.Sleep(15 * time.Millisecond)
		if !tr.Suspects(2) {
			t.Error("crashed node never suspected")
		}
	}
	if tr.Suspects(1) {
		t.Error("live node suspected")
	}
}

// TestHubRestartBlockReclaim reproduces the two-joiner hub-restart
// scenario: after the hub loses its grant table, each reconnecting joiner
// must get back exactly the base it claims — never a different one (the
// joiner's node IDs are fixed), and never one that captures another
// joiner's block.
func TestHubRestartBlockReclaim(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	hub1, err := NewHub(Options{Listen: addr, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	mkJoiner := func() *Transport {
		j, err := NewJoiner(Options{Hub: addr, Interval: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	jA, jB := mkJoiner(), mkJoiner()
	defer jA.Close()
	defer jB.Close()
	baseA, baseB := jA.BaseID(), jB.BaseID()
	if baseA == baseB {
		t.Fatalf("grants collide: %d", baseA)
	}

	hub1.Close() // grant table lost
	hub2, err := NewHub(Options{Listen: addr, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer hub2.Close()
	hubNode := &echoNode{}
	hub2.AddNode(1, hubNode)
	nA, nB := &echoNode{}, &echoNode{}
	jA.AddNode(baseA, nA)
	jB.AddNode(baseB, nB)

	// Both joiners redial in arbitrary order and reclaim their old bases;
	// after that, hub→joiner routing must hit the right process for both.
	waitFor(t, 10*time.Second, "both joiners reachable again", func() bool {
		hub2.Send(sim.Message{To: baseA, From: 1, Topic: 1, Body: proto.Subscribe{V: 1}})
		hub2.Send(sim.Message{To: baseB, From: 1, Topic: 1, Body: proto.Subscribe{V: 2}})
		time.Sleep(10 * time.Millisecond)
		return nA.got.Load() > 0 && nB.got.Load() > 0
	})
	if jA.BaseID() != baseA || jB.BaseID() != baseB {
		t.Errorf("bases changed across hub restart: A %d→%d, B %d→%d",
			baseA, jA.BaseID(), baseB, jB.BaseID())
	}
}
