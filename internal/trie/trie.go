package trie

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"strings"
	"unsafe"

	"sspubsub/internal/proto"
)

// Node is one Patricia-trie node. Invariants (Section 4.2):
//   - a leaf's label is a full m-bit key and it stores one publication;
//   - an inner node has exactly two children and its label is the longest
//     common prefix of its children's labels;
//   - Hash is h(key) for leaves and h(c0.Hash ◦ c1.Hash) for inner nodes
//     (Merkle-style; the paper's formula hashes the subtree contents so a
//     single root comparison certifies set equality).
type Node struct {
	Label Key
	Hash  [16]byte
	// Child holds the two subtries of an inner node, indexed by the first
	// bit after Label; both nil for leaves.
	Child [2]*Node
	// Pub is the stored publication (leaves only).
	Pub proto.Publication
	// leaves counts the publications stored in this subtree, so prefix
	// collection can size its result exactly instead of growing it.
	leaves int
}

// Leaves returns the number of publications stored under n.
func (n *Node) Leaves() int { return n.leaves }

// IsLeaf reports whether n stores a publication.
func (n *Node) IsLeaf() bool { return n.Child[0] == nil }

// Summary returns the (label, hash) pair sent in CheckTrie messages.
func (n *Node) Summary() proto.NodeSummary {
	return proto.NodeSummary{Label: n.Label, Hash: n.Hash}
}

// Trie is a hashed Patricia trie over fixed-width keys. The zero value is
// not usable; call New.
type Trie struct {
	keyLen uint8
	root   *Node
	size   int
}

// New creates an empty trie for keys of width m bits (1 ≤ m ≤ 64).
func New(m uint8) *Trie {
	if m == 0 || m > 64 {
		panic(fmt.Sprintf("trie: invalid key width %d", m))
	}
	return &Trie{keyLen: m}
}

// KeyLen returns the key width m.
func (t *Trie) KeyLen() uint8 { return t.keyLen }

// Len returns the number of stored publications.
func (t *Trie) Len() int { return t.size }

// Root returns the root node, or nil for an empty trie.
func (t *Trie) Root() *Node { return t.root }

// RootSummary returns the root's summary; ok is false for an empty trie.
func (t *Trie) RootSummary() (proto.NodeSummary, bool) {
	if t.root == nil {
		return proto.NodeSummary{}, false
	}
	return t.root.Summary(), true
}

func leafHash(k Key) [16]byte {
	var buf [9]byte
	binary.BigEndian.PutUint64(buf[:8], k.Bits)
	buf[8] = k.Len
	s := sha256.Sum256(buf[:])
	var out [16]byte
	copy(out[:], s[:16])
	return out
}

func innerHash(a, b [16]byte) [16]byte {
	var buf [32]byte
	copy(buf[:16], a[:])
	copy(buf[16:], b[:])
	s := sha256.Sum256(buf[:])
	var out [16]byte
	copy(out[:], s[:16])
	return out
}

func (n *Node) rehash() {
	if n.IsLeaf() {
		n.Hash = leafHash(n.Label)
		return
	}
	n.Hash = innerHash(n.Child[0].Hash, n.Child[1].Hash)
}

// Insert adds publication p. It returns true if p was new; re-inserting an
// existing key is a no-op ("no publish messages are deleted", Theorem 17 —
// the trie grows monotonically).
func (t *Trie) Insert(p proto.Publication) bool {
	if p.Key.Len != t.keyLen {
		panic(fmt.Sprintf("trie: key width %d, trie width %d", p.Key.Len, t.keyLen))
	}
	if t.root == nil {
		t.root = &Node{Label: p.Key, Pub: p, leaves: 1}
		t.root.rehash()
		t.size++
		return true
	}
	// Walk down, remembering the path for rehash. Keys are at most 64 bits
	// wide, so the path fits a fixed stack buffer — no per-insert slice.
	var pathBuf [64]*Node
	path := pathBuf[:0]
	cur := t.root
	var parent *Node
	var parentIdx uint8
	for {
		lcp := LCP(p.Key, cur.Label)
		if lcp.Len == cur.Label.Len {
			if cur.IsLeaf() {
				return false // full key match: already present
			}
			path = append(path, cur)
			parent = cur
			parentIdx = KeyBit(p.Key, cur.Label.Len)
			cur = cur.Child[parentIdx]
			continue
		}
		// Diverged inside cur.Label: split with a new inner node labelled
		// with the common prefix. The two nodes are born and die together,
		// so one allocation carries both.
		pair := &[2]Node{
			{Label: p.Key, Pub: p, leaves: 1},
			{Label: lcp, leaves: cur.leaves + 1},
		}
		leaf, inner := &pair[0], &pair[1]
		leaf.rehash()
		inner.Child[KeyBit(p.Key, lcp.Len)] = leaf
		inner.Child[KeyBit(cur.Label, lcp.Len)] = cur
		inner.rehash()
		if parent == nil {
			t.root = inner
		} else {
			parent.Child[parentIdx] = inner
		}
		for i := len(path) - 1; i >= 0; i-- {
			path[i].rehash()
			path[i].leaves++
		}
		t.size++
		return true
	}
}

// DeleteMin removes and returns the publication with the smallest key.
// ok is false for an empty trie.
//
// This is the eviction primitive for bounded publication stores: evicting
// by smallest *key* (not insertion order) keeps eviction a pure function of
// the stored set, so replicas that converged to the same set evict the same
// publication and their root hashes stay equal — an insertion-order policy
// would make equal sets hash-unequal forever under anti-entropy.
func (t *Trie) DeleteMin() (proto.Publication, bool) {
	if t.root == nil {
		return proto.Publication{}, false
	}
	// The leftmost leaf holds the smallest key: walk() and All() visit
	// Child[0] first and yield key order.
	var pathBuf [64]*Node
	path := pathBuf[:0]
	cur := t.root
	for !cur.IsLeaf() {
		path = append(path, cur)
		cur = cur.Child[0]
	}
	pub := cur.Pub
	t.size--
	if len(path) == 0 {
		t.root = nil
		return pub, true
	}
	// Splice out the leaf's parent: its other child takes the parent's
	// place (an inner node always has exactly two children).
	parent := path[len(path)-1]
	sibling := parent.Child[1]
	if len(path) == 1 {
		t.root = sibling
	} else {
		grand := path[len(path)-2]
		grand.Child[0] = sibling // parent was reached via Child[0]
	}
	for i := len(path) - 2; i >= 0; i-- {
		path[i].leaves--
		path[i].rehash()
	}
	return pub, true
}

// MemoryBytes estimates the resident size of the trie: a full binary tree
// of 2·size−1 nodes plus the payload strings. Deterministic accounting for
// the scale harness, not a heap measurement.
func (t *Trie) MemoryBytes() uint64 {
	if t.size == 0 {
		return uint64(unsafe.Sizeof(*t))
	}
	nodes := uint64(2*t.size - 1)
	total := uint64(unsafe.Sizeof(*t)) + nodes*uint64(unsafe.Sizeof(Node{}))
	var rec func(n *Node)
	rec = func(n *Node) {
		if n.IsLeaf() {
			total += uint64(len(n.Pub.Payload))
			return
		}
		rec(n.Child[0])
		rec(n.Child[1])
	}
	rec(t.root)
	return total
}

// Has reports whether a publication with the given key is stored.
func (t *Trie) Has(k Key) bool {
	n := t.Find(k)
	return n != nil && n.IsLeaf()
}

// Get returns the publication stored under k.
func (t *Trie) Get(k Key) (proto.Publication, bool) {
	n := t.Find(k)
	if n == nil || !n.IsLeaf() {
		return proto.Publication{}, false
	}
	return n.Pub, true
}

// Find returns the node whose label equals l exactly (the paper's
// SearchNode), or nil.
func (t *Trie) Find(l Key) *Node {
	n := t.FindAtOrBelow(l)
	if n != nil && n.Label == l {
		return n
	}
	return nil
}

// FindAtOrBelow returns the node with minimal label length whose label has
// l as a (not necessarily proper) prefix — the node c of case (iii) in
// Section 4.2 — or nil if no stored key extends l.
func (t *Trie) FindAtOrBelow(l Key) *Node {
	cur := t.root
	for cur != nil {
		lcp := LCP(l, cur.Label)
		switch {
		case lcp.Len == l.Len:
			// cur.Label extends (or equals) l: cur is the shallowest such
			// node, since its parent's label was a proper prefix of l.
			return cur
		case lcp.Len == cur.Label.Len:
			// cur.Label is a proper prefix of l: descend.
			if cur.IsLeaf() {
				return nil
			}
			cur = cur.Child[KeyBit(l, cur.Label.Len)]
		default:
			return nil // diverged strictly inside both
		}
	}
	return nil
}

// CollectPrefix returns all stored publications whose key starts with l,
// in key order. The result is sized exactly from the subtree's leaf count.
func (t *Trie) CollectPrefix(l Key) []proto.Publication {
	n := t.FindAtOrBelow(l)
	if n == nil {
		return nil
	}
	out := make([]proto.Publication, 0, n.leaves)
	n.walk(func(leaf *Node) { out = append(out, leaf.Pub) })
	return out
}

// All returns every stored publication in key order.
func (t *Trie) All() []proto.Publication {
	if t.root == nil {
		return nil
	}
	out := make([]proto.Publication, 0, t.size)
	t.root.walk(func(leaf *Node) { out = append(out, leaf.Pub) })
	return out
}

func (n *Node) walk(visit func(*Node)) {
	if n.IsLeaf() {
		visit(n)
		return
	}
	n.Child[0].walk(visit)
	n.Child[1].walk(visit)
}

// Equal reports whether both tries store the same publication set, by root
// hash comparison (the legitimate-state test of Theorem 23).
func (t *Trie) Equal(o *Trie) bool {
	if t.root == nil || o.root == nil {
		return t.root == nil && o.root == nil
	}
	return t.root.Hash == o.root.Hash
}

// CheckInvariants verifies the structural invariants; it returns a
// description of the first violation, or "".
func (t *Trie) CheckInvariants() string {
	if t.root == nil {
		if t.size != 0 {
			return "empty root with nonzero size"
		}
		return ""
	}
	leaves := 0
	var rec func(n *Node) string
	rec = func(n *Node) string {
		if n.IsLeaf() {
			leaves++
			if n.Child[1] != nil {
				return "leaf with one child"
			}
			if n.Label.Len != t.keyLen {
				return fmt.Sprintf("leaf label %s has wrong width", KeyString(n.Label))
			}
			if n.Pub.Key != n.Label {
				return "leaf label differs from publication key"
			}
			if n.Hash != leafHash(n.Label) {
				return "stale leaf hash"
			}
			if n.leaves != 1 {
				return fmt.Sprintf("leaf %s has leaf count %d", KeyString(n.Label), n.leaves)
			}
			return ""
		}
		if n.Child[1] == nil {
			return "inner node with one child"
		}
		if n.leaves != n.Child[0].leaves+n.Child[1].leaves {
			return fmt.Sprintf("inner %s leaf count %d ≠ %d + %d", KeyString(n.Label),
				n.leaves, n.Child[0].leaves, n.Child[1].leaves)
		}
		for b := 0; b < 2; b++ {
			c := n.Child[b]
			if !HasPrefix(c.Label, n.Label) || c.Label.Len <= n.Label.Len {
				return fmt.Sprintf("child label %s does not extend %s", KeyString(c.Label), KeyString(n.Label))
			}
			if KeyBit(c.Label, n.Label.Len) != uint8(b) {
				return "child under wrong branch"
			}
		}
		if lcp := LCP(n.Child[0].Label, n.Child[1].Label); lcp != n.Label {
			return fmt.Sprintf("inner label %s is not the children's LCP %s", KeyString(n.Label), KeyString(lcp))
		}
		if n.Hash != innerHash(n.Child[0].Hash, n.Child[1].Hash) {
			return "stale inner hash"
		}
		if msg := rec(n.Child[0]); msg != "" {
			return msg
		}
		return rec(n.Child[1])
	}
	if msg := rec(t.root); msg != "" {
		return msg
	}
	if leaves != t.size {
		return fmt.Sprintf("size %d but %d leaves", t.size, leaves)
	}
	return ""
}

// Dump renders the trie structure for debugging and the Figure 2 test.
func (t *Trie) Dump() string {
	if t.root == nil {
		return "(empty)"
	}
	var sb strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		if n.IsLeaf() {
			fmt.Fprintf(&sb, "leaf %s %q\n", KeyString(n.Label), n.Pub.Payload)
			return
		}
		fmt.Fprintf(&sb, "node %s\n", KeyString(n.Label))
		rec(n.Child[0], depth+1)
		rec(n.Child[1], depth+1)
	}
	rec(t.root, 0)
	return sb.String()
}
