package trie

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"sspubsub/internal/proto"
)

func pub(key string) proto.Publication {
	k := ParseKey(key)
	return proto.Publication{Key: k, Origin: 1, Payload: key}
}

func TestKeyBasics(t *testing.T) {
	k := ParseKey("1011")
	if KeyString(k) != "1011" {
		t.Fatalf("roundtrip: %s", KeyString(k))
	}
	bitsWant := []uint8{1, 0, 1, 1}
	for i, w := range bitsWant {
		if KeyBit(k, uint8(i)) != w {
			t.Errorf("bit %d = %d, want %d", i, KeyBit(k, uint8(i)), w)
		}
	}
	if KeyString(KeyPrefix(k, 2)) != "10" {
		t.Errorf("prefix(2) = %s", KeyString(KeyPrefix(k, 2)))
	}
	if !HasPrefix(k, ParseKey("10")) || HasPrefix(k, ParseKey("11")) {
		t.Error("HasPrefix wrong")
	}
	if !HasPrefix(k, EmptyKey) {
		t.Error("empty key must prefix everything")
	}
	if got := LCP(ParseKey("1011"), ParseKey("1001")); KeyString(got) != "10" {
		t.Errorf("LCP = %s", KeyString(got))
	}
	if got := LCP(ParseKey("0"), ParseKey("1")); got != EmptyKey {
		t.Errorf("LCP(0,1) = %s", KeyString(got))
	}
	if got := LCP(ParseKey("101"), ParseKey("10111")); KeyString(got) != "101" {
		t.Errorf("LCP nested = %s", KeyString(got))
	}
}

func TestKeyForDeterministicAndSpread(t *testing.T) {
	a := KeyFor(64, 7, "hello")
	b := KeyFor(64, 7, "hello")
	if a != b {
		t.Error("KeyFor must be deterministic")
	}
	if a == KeyFor(64, 8, "hello") {
		t.Error("origin must affect the key")
	}
	if a == KeyFor(64, 7, "hellp") {
		t.Error("payload must affect the key")
	}
	if k := KeyFor(8, 1, "x"); k.Len != 8 || k.Bits>>8 != 0 {
		t.Errorf("width-8 key malformed: %+v", k)
	}
}

// Figure 2 of the paper: subscriber u stores P1=000, P2=010, P3=100, P4=101
// (3-bit keys); its trie has root ⊥ with children 0 (inner) and 10 (inner).
func TestFigure2Structure(t *testing.T) {
	u := New(3)
	for _, p := range []string{"000", "010", "100", "101"} {
		if !u.Insert(pub(p)) {
			t.Fatalf("insert %s failed", p)
		}
	}
	if msg := u.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	root := u.Root()
	if root.Label != EmptyKey {
		t.Fatalf("root label %s, want ⊥", KeyString(root.Label))
	}
	if got := KeyString(root.Child[0].Label); got != "0" {
		t.Errorf("left child label %s, want 0", got)
	}
	if got := KeyString(root.Child[1].Label); got != "10" {
		t.Errorf("right child label %s, want 10", got)
	}
	// v (missing P4) has children 0 and the leaf 100.
	v := New(3)
	for _, p := range []string{"000", "010", "100"} {
		v.Insert(pub(p))
	}
	if got := KeyString(v.Root().Child[1].Label); got != "100" {
		t.Errorf("v right child %s, want leaf 100", got)
	}
	if u.Equal(v) {
		t.Error("u and v differ; root hashes must differ")
	}
	v.Insert(pub("101"))
	if !u.Equal(v) {
		t.Error("after inserting P4 the tries must be hash-equal")
	}
}

func TestInsertDuplicate(t *testing.T) {
	tr := New(4)
	if !tr.Insert(pub("1010")) || tr.Insert(pub("1010")) {
		t.Error("duplicate insert must return false")
	}
	if tr.Len() != 1 {
		t.Errorf("len = %d", tr.Len())
	}
}

func TestFindAtOrBelow(t *testing.T) {
	tr := New(3)
	for _, p := range []string{"000", "010", "100"} {
		tr.Insert(pub(p))
	}
	// Exact inner node.
	if n := tr.Find(ParseKey("0")); n == nil || KeyString(n.Label) != "0" {
		t.Fatal("Find(0) failed")
	}
	// "10" is not a node label in this trie (leaf 100 hangs below root).
	if n := tr.Find(ParseKey("10")); n != nil {
		t.Error("Find(10) should be nil")
	}
	// …but FindAtOrBelow(10) returns the leaf 100 (case (iii)'s node c).
	if n := tr.FindAtOrBelow(ParseKey("10")); n == nil || KeyString(n.Label) != "100" {
		t.Fatal("FindAtOrBelow(10) should return leaf 100")
	}
	// Prefix with no extension.
	if n := tr.FindAtOrBelow(ParseKey("11")); n != nil {
		t.Error("FindAtOrBelow(11) should be nil")
	}
	// Empty prefix returns the root.
	if n := tr.FindAtOrBelow(EmptyKey); n != tr.Root() {
		t.Error("FindAtOrBelow(⊥) should be the root")
	}
}

func TestCollectPrefix(t *testing.T) {
	tr := New(4)
	keys := []string{"0000", "0001", "0100", "1000", "1011", "1111"}
	for _, k := range keys {
		tr.Insert(pub(k))
	}
	got := tr.CollectPrefix(ParseKey("10"))
	var names []string
	for _, p := range got {
		names = append(names, p.Payload)
	}
	if !reflect.DeepEqual(names, []string{"1000", "1011"}) {
		t.Errorf("CollectPrefix(10) = %v", names)
	}
	if all := tr.All(); len(all) != len(keys) {
		t.Errorf("All() returned %d items", len(all))
	}
	if got := tr.CollectPrefix(ParseKey("110")); got != nil {
		t.Errorf("CollectPrefix(110) = %v, want nil", got)
	}
}

func TestHashesCertifySetEquality(t *testing.T) {
	// Insertion order must not affect the root hash (history independence).
	keys := []string{"0000", "1111", "0101", "0011", "1001", "0110"}
	a, b := New(4), New(4)
	for _, k := range keys {
		a.Insert(pub(k))
	}
	perm := rand.New(rand.NewSource(5)).Perm(len(keys))
	for _, i := range perm {
		b.Insert(pub(keys[i]))
	}
	if !a.Equal(b) {
		t.Error("same set via different orders must hash equal")
	}
	b.Insert(pub("1110"))
	if a.Equal(b) {
		t.Error("different sets must not hash equal")
	}
}

func TestEmptyTrie(t *testing.T) {
	tr := New(8)
	if _, ok := tr.RootSummary(); ok {
		t.Error("empty trie must have no root summary")
	}
	if tr.Find(ParseKey("1")) != nil || tr.FindAtOrBelow(EmptyKey) != nil {
		t.Error("lookups on empty trie must be nil")
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Error(msg)
	}
	if !tr.Equal(New(8)) {
		t.Error("two empty tries are equal")
	}
	if tr.Equal(func() *Trie { o := New(8); o.Insert(proto.Publication{Key: Key{Bits: 1, Len: 8}}); return o }()) {
		t.Error("empty vs nonempty must differ")
	}
}

// Property: a trie over any random key set contains exactly that set, in
// sorted order, and all structural invariants hold.
func TestPropertyInsertLookup(t *testing.T) {
	f := func(raw []uint16, width uint8) bool {
		m := width%12 + 5 // widths 5..16
		tr := New(m)
		want := map[Key]bool{}
		for _, r := range raw {
			k := Key{Bits: uint64(r) & ((1 << m) - 1), Len: m}
			tr.Insert(proto.Publication{Key: k, Origin: 1})
			want[k] = true
		}
		if tr.CheckInvariants() != "" {
			return false
		}
		if tr.Len() != len(want) {
			return false
		}
		for k := range want {
			if !tr.Has(k) {
				return false
			}
		}
		all := tr.All()
		if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i].Key.Bits < all[j].Key.Bits }) {
			return false
		}
		return len(all) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: CollectPrefix(p) returns exactly the stored keys extending p.
func TestPropertyCollectPrefix(t *testing.T) {
	f := func(raw []uint16, pfx uint16, pfxLen uint8) bool {
		const m = 12
		tr := New(m)
		keys := map[Key]bool{}
		for _, r := range raw {
			k := Key{Bits: uint64(r) & ((1 << m) - 1), Len: m}
			tr.Insert(proto.Publication{Key: k, Origin: 1})
			keys[k] = true
		}
		pl := pfxLen % (m + 1)
		p := Key{Bits: uint64(pfx) & ((1 << pl) - 1), Len: pl}
		got := map[Key]bool{}
		for _, x := range tr.CollectPrefix(p) {
			got[x.Key] = true
		}
		want := map[Key]bool{}
		for k := range keys {
			if HasPrefix(k, p) {
				want[k] = true
			}
		}
		return reflect.DeepEqual(got, want) || len(got) == 0 && len(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDump(t *testing.T) {
	tr := New(3)
	tr.Insert(pub("000"))
	tr.Insert(pub("010"))
	d := tr.Dump()
	if d == "" || d == "(empty)" {
		t.Error("dump of nonempty trie is empty")
	}
	if New(3).Dump() != "(empty)" {
		t.Error("dump of empty trie")
	}
}
