// Package trie implements the hashed Patricia trie of Section 4.2: a
// compressed binary trie over fixed-width publication keys whose nodes
// carry Merkle-style hashes, so two subscribers can locate the exact
// difference between their publication sets by exchanging O(depth) node
// summaries (the CheckTrie protocol).
//
// Keys are h̄_m(origin, payload): a collision-resistant hash (SHA-256,
// truncated to the configured width m ≤ 64) of the publishing node's unique
// ID and the payload, so every key has the same length and keys identify
// publications ("the constant m and the hash function h̄_m are known to all
// subscribers").
package trie

import (
	"crypto/sha256"
	"encoding/binary"
	"math/bits"

	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
)

// Key re-exports proto.Key locally; a Key is a bit string of Len ≤ 64 bits
// stored most-significant-first in Bits. Trie node labels are key prefixes;
// leaf labels are full keys.
type Key = proto.Key

// EmptyKey is the empty bit string ⊥ (the label of a root whose children
// share no common prefix).
var EmptyKey = Key{}

// KeyBit returns bit i of k, counting from the most significant (leftmost)
// bit, i.e. the bit consumed at trie depth i.
func KeyBit(k Key, i uint8) uint8 {
	return uint8(k.Bits>>(k.Len-1-i)) & 1
}

// KeyPrefix returns the first n bits of k.
func KeyPrefix(k Key, n uint8) Key {
	if n >= k.Len {
		return k
	}
	return Key{Bits: k.Bits >> (k.Len - n), Len: n}
}

// HasPrefix reports whether p is a prefix of k (every key is a prefix of
// itself; the empty key is a prefix of everything).
func HasPrefix(k, p Key) bool {
	return k.Len >= p.Len && KeyPrefix(k, p.Len) == p
}

// LCP returns the longest common prefix of a and b.
func LCP(a, b Key) Key {
	n := a.Len
	if b.Len < n {
		n = b.Len
	}
	if n == 0 {
		return EmptyKey
	}
	x := (a.Bits >> (a.Len - n)) ^ (b.Bits >> (b.Len - n))
	if x == 0 {
		return Key{Bits: a.Bits >> (a.Len - n), Len: n}
	}
	common := n - uint8(64-bits.LeadingZeros64(x))
	return Key{Bits: a.Bits >> (a.Len - common), Len: common}
}

// AppendBit extends k with one bit.
func AppendBit(k Key, b uint8) Key {
	return Key{Bits: k.Bits<<1 | uint64(b&1), Len: k.Len + 1}
}

// KeyString renders the bit string, "⊥" for the empty key.
func KeyString(k Key) string {
	if k.Len == 0 {
		return "⊥"
	}
	buf := make([]byte, k.Len)
	for i := uint8(0); i < k.Len; i++ {
		buf[i] = '0' + KeyBit(k, i)
	}
	return string(buf)
}

// ParseKey parses a bit string into a Key; it panics on invalid input
// (test/table helper).
func ParseKey(s string) Key {
	var k Key
	for _, c := range s {
		switch c {
		case '0':
			k = AppendBit(k, 0)
		case '1':
			k = AppendBit(k, 1)
		default:
			panic("trie: invalid key string " + s)
		}
	}
	return k
}

// KeyFor computes h̄_m(origin, payload): the m-bit publication key
// (Section 4.2). SHA-256 stands in for the paper's collision-resistant
// hash function.
func KeyFor(m uint8, origin sim.NodeID, payload string) Key {
	h := sha256.New()
	var idb [8]byte
	binary.BigEndian.PutUint64(idb[:], uint64(origin))
	h.Write(idb[:])
	h.Write([]byte(payload))
	sum := h.Sum(nil)
	v := binary.BigEndian.Uint64(sum[:8])
	if m < 64 {
		v >>= 64 - m
	}
	return Key{Bits: v, Len: m}
}

// NewPublication builds a Publication with its key (m is the system-wide
// key width).
func NewPublication(m uint8, origin sim.NodeID, payload string) proto.Publication {
	return proto.Publication{Key: KeyFor(m, origin, payload), Origin: origin, Payload: payload}
}
