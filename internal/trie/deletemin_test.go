package trie

import (
	"math/rand"
	"testing"

	"sspubsub/internal/proto"
)

// TestDeleteMinOrderAndInvariants deletes a random trie down to empty and
// checks that publications come out in key order with every structural
// invariant intact after each step.
func TestDeleteMinOrderAndInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		tr := New(16)
		n := 1 + rng.Intn(60)
		for i := 0; i < n; i++ {
			k := Key{Bits: rng.Uint64() & 0xffff, Len: 16}
			tr.Insert(proto.Publication{Key: k, Origin: 1, Payload: KeyString(k)})
		}
		want := tr.All() // key order
		for i, w := range want {
			got, ok := tr.DeleteMin()
			if !ok || got != w {
				t.Fatalf("trial %d: DeleteMin #%d = %v ok=%v, want %v", trial, i, got, ok, w)
			}
			if msg := tr.CheckInvariants(); msg != "" {
				t.Fatalf("trial %d after delete %d: %s", trial, i, msg)
			}
			if tr.Len() != len(want)-i-1 {
				t.Fatalf("trial %d: Len = %d, want %d", trial, tr.Len(), len(want)-i-1)
			}
		}
		if _, ok := tr.DeleteMin(); ok {
			t.Fatal("DeleteMin on empty trie returned ok")
		}
	}
}

// TestDeleteMinPreservesSetEquality checks the property bounded stores rely
// on: two tries holding the same set hash equal after both evict their
// minimum, regardless of how the sets were built.
func TestDeleteMinPreservesSetEquality(t *testing.T) {
	a, b := New(16), New(16)
	keys := []string{"1010101010101010", "0000000011111111", "1111000011110000",
		"0101010101010101", "1000000000000001"}
	for _, s := range keys {
		a.Insert(pub(s))
	}
	for i := len(keys) - 1; i >= 0; i-- {
		b.Insert(pub(keys[i]))
	}
	for a.Len() > 0 {
		pa, _ := a.DeleteMin()
		pb, _ := b.DeleteMin()
		if pa.Key != pb.Key {
			t.Fatalf("divergent eviction: %v vs %v", pa.Key, pb.Key)
		}
		if !a.Equal(b) {
			t.Fatalf("root hashes diverged at size %d", a.Len())
		}
	}
}

// TestMemoryBytesShrinks checks the accounting moves with the stored set.
func TestMemoryBytesShrinks(t *testing.T) {
	tr := New(16)
	empty := tr.MemoryBytes()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		k := Key{Bits: rng.Uint64() & 0xffff, Len: 16}
		tr.Insert(proto.Publication{Key: k, Origin: 1, Payload: "x"})
	}
	full := tr.MemoryBytes()
	if full <= empty {
		t.Fatalf("MemoryBytes did not grow: empty %d, full %d", empty, full)
	}
	for tr.Len() > 0 {
		tr.DeleteMin()
	}
	if got := tr.MemoryBytes(); got != empty {
		t.Fatalf("MemoryBytes after draining = %d, want %d", got, empty)
	}
}
