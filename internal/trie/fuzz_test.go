package trie

import (
	"strings"
	"testing"

	"sspubsub/internal/sim"
)

// FuzzKeyStringRoundTrip checks ParseKey/KeyString over arbitrary strings:
// well-formed bit strings of width ≤ 64 round-trip exactly, everything
// else must panic (ParseKey is a table/test helper with a hard contract).
func FuzzKeyStringRoundTrip(f *testing.F) {
	for _, s := range []string{"", "0", "1", "0110", "x", "01x", "2",
		strings.Repeat("10", 32)} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		wellFormed := len(s) <= 64
		for _, c := range s {
			if c != '0' && c != '1' {
				wellFormed = false
			}
		}
		if !wellFormed {
			defer func() {
				if recover() == nil && len(s) <= 64 {
					t.Fatalf("ParseKey(%q) accepted malformed input", s)
				}
			}()
			ParseKey(s)
			return
		}
		k := ParseKey(s)
		if int(k.Len) != len(s) {
			t.Fatalf("ParseKey(%q).Len = %d", s, k.Len)
		}
		got := KeyString(k)
		if s == "" {
			if got != "⊥" {
				t.Fatalf("KeyString(empty) = %q", got)
			}
			return
		}
		if got != s {
			t.Fatalf("KeyString(ParseKey(%q)) = %q", s, got)
		}
	})
}

// FuzzKeyOps checks the prefix algebra the CheckTrie reconciliation relies
// on: KeyPrefix truncates, HasPrefix accepts every prefix, LCP is the
// maximal common prefix, and AppendBit extends consistently.
func FuzzKeyOps(f *testing.F) {
	f.Add(uint64(0), uint8(0), uint64(0), uint8(0), uint8(0))
	f.Add(uint64(0b1011), uint8(4), uint64(0b1010), uint8(4), uint8(2))
	f.Add(^uint64(0), uint8(64), uint64(1), uint8(1), uint8(63))
	f.Add(uint64(0b110), uint8(3), uint64(0b1101), uint8(4), uint8(1))
	f.Fuzz(func(t *testing.T, abits uint64, alen uint8, bbits uint64, blen uint8, n uint8) {
		mk := func(bits uint64, l uint8) Key {
			l %= 65
			if l < 64 {
				bits &= (1 << l) - 1
			}
			return Key{Bits: bits, Len: l}
		}
		a, b := mk(abits, alen), mk(bbits, blen)

		p := KeyPrefix(a, n)
		if n < a.Len && p.Len != n || n >= a.Len && p != a {
			t.Fatalf("KeyPrefix(%v, %d) = %v", a, n, p)
		}
		if !HasPrefix(a, p) {
			t.Fatalf("HasPrefix(%v, KeyPrefix=%v) = false", a, p)
		}
		if !HasPrefix(a, EmptyKey) || !HasPrefix(a, a) {
			t.Fatal("HasPrefix must accept the empty key and the key itself")
		}

		l := LCP(a, b)
		if !HasPrefix(a, l) || !HasPrefix(b, l) {
			t.Fatalf("LCP(%v, %v) = %v is not a common prefix", a, b, l)
		}
		if LCP(a, a) != a {
			t.Fatalf("LCP(%v, %v) != itself", a, a)
		}
		// Maximality: the bit after the LCP differs (when both keys go on).
		if l.Len < a.Len && l.Len < b.Len {
			if KeyBit(a, l.Len) == KeyBit(b, l.Len) {
				t.Fatalf("LCP(%v, %v) = %v not maximal", a, b, l)
			}
		}

		if a.Len < 64 {
			bit := uint8(abits>>63) & 1
			e := AppendBit(a, bit)
			if e.Len != a.Len+1 || KeyBit(e, a.Len) != bit || !HasPrefix(e, a) {
				t.Fatalf("AppendBit(%v, %d) = %v", a, bit, e)
			}
		}
	})
}

// FuzzKeyFor checks the publication-key hash: fixed width, determinism,
// and stability of the derived Publication.
func FuzzKeyFor(f *testing.F) {
	f.Add(int64(1), "hello", uint8(64))
	f.Add(int64(0), "", uint8(8))
	f.Add(int64(-3), "payload", uint8(1))
	f.Fuzz(func(t *testing.T, origin int64, payload string, m uint8) {
		m = m%64 + 1
		k1 := KeyFor(m, sim.NodeID(origin), payload)
		k2 := KeyFor(m, sim.NodeID(origin), payload)
		if k1 != k2 {
			t.Fatalf("KeyFor not deterministic: %v vs %v", k1, k2)
		}
		if k1.Len != m {
			t.Fatalf("KeyFor width %d, want %d", k1.Len, m)
		}
		if m < 64 && k1.Bits>>m != 0 {
			t.Fatalf("KeyFor(%d bits) has stray high bits: %x", m, k1.Bits)
		}
		p := NewPublication(m, sim.NodeID(origin), payload)
		if p.Key != k1 || p.Payload != payload || p.Origin != sim.NodeID(origin) {
			t.Fatalf("NewPublication mismatch: %+v", p)
		}
	})
}
