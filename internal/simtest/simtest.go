// Package simtest provides a recording sim.Context for driving protocol
// handlers directly in unit tests, without a scheduler.
package simtest

import (
	"math/rand"

	"sspubsub/internal/sim"
)

// Ctx is a sim.Context that records every Send.
type Ctx struct {
	ID   sim.NodeID
	Out  []sim.Message
	Rng  *rand.Rand
	Time float64
}

// NewCtx creates a recording context for node id.
func NewCtx(id sim.NodeID) *Ctx {
	return &Ctx{ID: id, Rng: rand.New(rand.NewSource(int64(id) + 7))}
}

// Self implements sim.Context.
func (c *Ctx) Self() sim.NodeID { return c.ID }

// Send records the message.
func (c *Ctx) Send(to sim.NodeID, topic sim.Topic, body any) {
	c.Out = append(c.Out, sim.Message{To: to, From: c.ID, Topic: topic, Body: body})
}

// Rand implements sim.Context.
func (c *Ctx) Rand() *rand.Rand { return c.Rng }

// Now implements sim.Context.
func (c *Ctx) Now() float64 { return c.Time }

// Take returns and clears the recorded messages.
func (c *Ctx) Take() []sim.Message {
	out := c.Out
	c.Out = nil
	return out
}

// OfType returns the recorded messages whose body matches the predicate.
func (c *Ctx) OfType(match func(any) bool) []sim.Message {
	var out []sim.Message
	for _, m := range c.Out {
		if match(m.Body) {
			out = append(out, m)
		}
	}
	return out
}
