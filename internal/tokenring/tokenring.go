// Package tokenring implements the deterministic supervisor variant the
// paper's conclusion poses as future work: "one may investigate, if there
// are deterministic self-stabilizing protocols for supervised overlay
// networks. These can probably [be] established by using a token-passing
// scheme. … Then the space overhead for the supervisor could be reduced as
// it only needs to know the number of subscribers n."
//
// Design. The supervisor stores, per topic, only a constant amount of
// steady-state data: the ring size n, the tuple of position 0 (the entry),
// the tuple of the last position, an epoch and the token bookkeeping. It
// periodically launches a Token that walks the ring in r-order; every
// receiver derives its label deterministically from its position
// (label.NthInOrder) and adopts the predecessor carried by the token. The
// final node returns the token and the supervisor installs the cycle
// closure by introducing the first and last tuples to each other. No
// randomness and no per-subscriber database are involved in the steady
// state.
//
// Joins are spliced in-pass: pending joiners ride on the token with their
// assigned labels and are visited at exactly the positions their labels
// occupy. Leaves and crashes break the pass; after repeated failures the
// supervisor falls back to a rebuild: it waits for live subscribers to
// re-register (nodes report themselves when they have not seen a token
// for a while) and then batch-assigns the new ring. During a rebuild the
// supervisor transiently stores the registration set (O(n)); the paper's
// O(1)-space claim concerns the steady state, and the trade-off is
// measured by the token-vs-database experiment.
package tokenring

import (
	"fmt"
	"math/rand"
	"sort"

	"sspubsub/internal/core"
	"sspubsub/internal/label"
	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
)

// Supervisor is the token-passing supervisor (a sim.Handler).
type Supervisor struct {
	self   sim.NodeID
	topics map[sim.Topic]*topicState

	// TokenSlack is the extra allowance (in timeout intervals) beyond one
	// expected pass duration before a token is declared lost.
	TokenSlack float64
	// RebuildQuiet is how long registration must be quiet before a rebuild
	// batch-assigns the ring.
	RebuildQuiet float64
}

type topicState struct {
	epoch uint64
	n     uint64      // committed ring size
	entry proto.Tuple // position 0
	last  proto.Tuple // position n−1

	tokenOut  bool
	tokenN    uint64 // size the in-flight pass is building
	tokenSent float64
	failures  int

	pending  map[sim.NodeID]bool // joiners awaiting splice
	inFlight map[sim.NodeID]bool // joiners riding the current pass

	rebuild      bool
	rebuildStart float64
	prevN        uint64              // ring size before the rebuild began
	regs         map[sim.NodeID]bool // re-registrations during rebuild
	lastReg      float64
	fallback     sim.NodeID // most recent complainer (entry candidate)
}

// NewSupervisor creates a token-passing supervisor.
func NewSupervisor(self sim.NodeID) *Supervisor {
	return &Supervisor{
		self:         self,
		topics:       make(map[sim.Topic]*topicState),
		TokenSlack:   5,
		RebuildQuiet: 3,
	}
}

func (s *Supervisor) topic(t sim.Topic) *topicState {
	st, ok := s.topics[t]
	if !ok {
		st = &topicState{pending: map[sim.NodeID]bool{}, inFlight: map[sim.NodeID]bool{}, regs: map[sim.NodeID]bool{}}
		s.topics[t] = st
	}
	return st
}

// N returns the committed ring size for a topic.
func (s *Supervisor) N(t sim.Topic) int { return int(s.topic(t).n) }

// Epoch returns the current token epoch (tests).
func (s *Supervisor) Epoch(t sim.Topic) uint64 { return s.topic(t).epoch }

// Rebuilding reports whether the topic is in rebuild mode (tests).
func (s *Supervisor) Rebuilding(t sim.Topic) bool { return s.topic(t).rebuild }

// OnTimeout launches or retries token passes and finalizes rebuilds.
func (s *Supervisor) OnTimeout(ctx sim.Context) {
	topics := make([]sim.Topic, 0, len(s.topics))
	for t := range s.topics {
		topics = append(topics, t)
	}
	sort.Slice(topics, func(i, j int) bool { return topics[i] < topics[j] })
	for _, t := range topics {
		s.timeoutTopic(ctx, t)
	}
}

func (s *Supervisor) timeoutTopic(ctx sim.Context, t sim.Topic) {
	st := s.topic(t)
	now := ctx.Now()

	if st.rebuild {
		// Finish when registration goes quiet, or after every live member
		// has certainly had a staleness window (2·prevN + slack) — with
		// many members the re-registration stream never goes quiet.
		cap := 2*float64(st.prevN) + 16
		if len(st.regs) > 0 &&
			(now-st.lastReg >= s.RebuildQuiet || now-st.rebuildStart >= cap) {
			s.finishRebuild(ctx, t, st)
		}
		return
	}

	if st.tokenOut {
		// Expected pass duration ≈ one hop per message delay (< 1 interval
		// each); allow n + slack intervals before declaring loss.
		if now-st.tokenSent <= float64(st.tokenN)+s.TokenSlack {
			return
		}
		st.tokenOut = false
		st.failures++
		st.epoch++
		// Drop the in-flight joiners rather than re-pending them: a joiner
		// that was spliced before the pass broke is a member now and must
		// not be assigned a second label, while an unspliced joiner is
		// still unlabelled and re-subscribes by itself. (Re-pending spliced
		// members is a livelock: every subsequent pass visits them twice
		// and aborts.)
		st.inFlight = map[sim.NodeID]bool{}
		if st.failures >= 3 {
			s.startRebuild(st)
			return
		}
	}

	// Launch a pass. Bootstrap directly while the ring is tiny.
	joiners := sortedIDs(st.pending)
	if st.n == 0 {
		if len(joiners) == 0 {
			return
		}
		// First subscriber: assign l(0) directly.
		v := joiners[0]
		delete(st.pending, v)
		st.n = 1
		st.entry = proto.Tuple{L: label.FromIndex(0), Ref: v}
		st.last = st.entry
		ctx.Send(v, t, proto.SetData{Label: label.FromIndex(0)})
		return
	}
	st.epoch++
	st.tokenN = st.n + uint64(len(joiners))
	pendingTuples := make([]proto.Tuple, len(joiners))
	st.inFlight = map[sim.NodeID]bool{}
	for i, v := range joiners {
		pendingTuples[i] = proto.Tuple{L: label.FromIndex(st.n + uint64(i)), Ref: v}
		st.inFlight[v] = true
	}
	st.pending = map[sim.NodeID]bool{}
	st.tokenOut = true
	st.tokenSent = now
	ctx.Send(st.entry.Ref, t, proto.Token{
		Epoch:   st.epoch,
		N:       st.tokenN,
		Pos:     0,
		Pending: pendingTuples,
	})
}

func (s *Supervisor) startRebuild(st *topicState) {
	st.rebuild = true
	st.prevN = st.n
	st.rebuildStart = -1 // set on the first registration
	st.n = 0
	st.entry = proto.Tuple{}
	st.last = proto.Tuple{}
	st.regs = map[sim.NodeID]bool{}
	for v := range st.pending { // joiners participate in the rebuild
		st.regs[v] = true
	}
	for v := range st.inFlight {
		st.regs[v] = true
	}
	st.pending = map[sim.NodeID]bool{}
	st.inFlight = map[sim.NodeID]bool{}
}

// finishRebuild batch-assigns the ring over the registered set and then
// discards it, returning to O(1) steady-state memory.
func (s *Supervisor) finishRebuild(ctx sim.Context, t sim.Topic, st *topicState) {
	ids := sortedIDs(st.regs)
	n := uint64(len(ids))
	tuples := make([]proto.Tuple, n)
	for i, v := range ids {
		tuples[i] = proto.Tuple{L: label.NthInOrder(n, uint64(i)), Ref: v}
	}
	for i, v := range ids {
		pred := tuples[(uint64(i)+n-1)%n]
		succ := tuples[(uint64(i)+1)%n]
		if n == 1 {
			pred, succ = proto.Tuple{}, proto.Tuple{}
		}
		ctx.Send(v, t, proto.SetData{Pred: pred, Label: tuples[i].L, Succ: succ})
	}
	st.n = n
	st.entry = tuples[0]
	st.last = tuples[n-1]
	st.rebuild = false
	st.failures = 0
	st.regs = map[sim.NodeID]bool{}
	st.tokenOut = false
}

// OnMessage handles registrations, leaves and token returns.
func (s *Supervisor) OnMessage(ctx sim.Context, m sim.Message) {
	st := s.topic(m.Topic)
	switch b := m.Body.(type) {
	case proto.Subscribe:
		v := b.V
		if v == sim.None {
			v = m.From
		}
		if st.rebuild {
			st.regs[v] = true
			st.lastReg = ctx.Now()
			if st.rebuildStart < 0 {
				st.rebuildStart = ctx.Now()
			}
		} else if !st.inFlight[v] {
			// A joiner already riding the current pass re-subscribes while
			// still unlabelled; pending it again would assign it a second
			// label on the next pass.
			st.pending[v] = true
		}
	case proto.Register:
		v := b.V
		if v == sim.None {
			v = m.From
		}
		st.fallback = v
		if st.rebuild {
			st.regs[v] = true
			st.lastReg = ctx.Now()
			if st.rebuildStart < 0 {
				st.rebuildStart = ctx.Now()
			}
		} else if b.Label.IsBottom() {
			if !st.inFlight[v] {
				st.pending[v] = true
			}
		} else {
			// A labelled node that has not seen the token for a long time
			// is not on the walk: it is a shadow member (e.g. left over
			// from a pass that broke after splicing it). Evict it — it
			// clears its label, re-subscribes and is spliced consistently.
			// A legitimate member complaining about a merely delayed token
			// suffers the same eviction and simply rejoins: churn, not
			// incorrectness.
			ctx.Send(v, m.Topic, proto.SetData{})
		}
	case proto.Unsubscribe:
		v := b.V
		if v == sim.None {
			v = m.From
		}
		// Grant immediately; without a database the supervisor cannot
		// excise one member surgically, so the ring is rebuilt from the
		// survivors' re-registrations.
		delete(st.pending, v)
		delete(st.inFlight, v)
		delete(st.regs, v)
		ctx.Send(v, m.Topic, proto.SetData{})
		if !st.rebuild {
			s.startRebuild(st)
		}
	case proto.GetConfiguration:
		if b.V != sim.None {
			st.fallback = b.V
		}
	case proto.TokenReturn:
		if b.Epoch != st.epoch || !st.tokenOut {
			return // stale pass
		}
		st.tokenOut = false
		if !b.Complete {
			st.failures++
			st.epoch++
			st.inFlight = map[sim.NodeID]bool{} // see the timeout path
			if st.failures >= 3 {
				s.startRebuild(st)
			}
			return
		}
		st.failures = 0
		st.n = st.tokenN
		if !b.First.IsBottom() {
			st.entry = b.First
		}
		if !b.Last.IsBottom() {
			st.last = b.Last
		}
		// All joiners of this pass are spliced.
		st.inFlight = map[sim.NodeID]bool{}
		// Install the cycle closure: introduce the extremes to each other.
		if st.entry.Ref != sim.None && st.last.Ref != sim.None && st.entry.Ref != st.last.Ref {
			ctx.Send(st.entry.Ref, m.Topic, proto.Introduce{C: st.last, Flag: proto.CYC})
			ctx.Send(st.last.Ref, m.Topic, proto.Introduce{C: st.entry, Flag: proto.CYC})
		}
	}
}

// ---- corruption injectors and invariant probes (chaos engine, tests) ----

// CorruptTopicState scrambles the supervisor's O(1) steady-state data for
// a topic with pseudo-random garbage: the committed ring size drifts, the
// entry/last tuples point at arbitrary (possibly nonexistent) nodes with
// arbitrary labels, the epoch jumps, and a phantom token is marked in
// flight. Every case is repaired by the token machinery itself — a pass
// over garbage pointers breaks, repeated breaks escalate to a rebuild, and
// the rebuild recommits a consistent ring from live re-registrations.
//
// On a live substrate the caller must hold the quiesce barrier.
func (s *Supervisor) CorruptTopicState(t sim.Topic, rng *rand.Rand) {
	st := s.topic(t)
	junk := func() proto.Tuple {
		if rng.Intn(4) == 0 {
			return proto.Tuple{}
		}
		return proto.Tuple{
			L:   label.FromIndex(rng.Uint64() % 128),
			Ref: sim.NodeID(rng.Int63n(64)), // may be ⊥, live, dead or unknown
		}
	}
	st.n = uint64(rng.Intn(int(st.n + 8)))
	st.entry = junk()
	st.last = junk()
	st.epoch += uint64(rng.Intn(5))
	st.tokenOut = rng.Intn(2) == 0 // phantom pass: no token actually exists
	st.tokenN = uint64(rng.Intn(int(st.n + 4)))
	st.tokenSent = 0
	for i := rng.Intn(3); i > 0; i-- {
		st.pending[sim.NodeID(rng.Int63n(64))] = true
	}
}

// CheckIntegrity validates the structural invariants of the supervisor's
// committed steady state for a topic, returning "" when they hold or a
// description of the first violation. In a legitimate state (Definition 2,
// restricted to what the O(1) supervisor stores) the entry tuple is
// position 0 of the committed ring and the last tuple is position n−1:
//
//   - n == 0  → entry and last are both ⊥ and no rebuild is pending,
//   - n ≥ 1  → entry = (l(0), v) and last = (l(n−1), w) with real nodes,
//     and for n == 1 they coincide.
//
// A rebuild in progress is reported as a violation: the probe is meant to
// hold only after convergence.
func (s *Supervisor) CheckIntegrity(t sim.Topic) string {
	st := s.topic(t)
	if st.rebuild {
		return "rebuild in progress"
	}
	if st.n == 0 {
		if !st.entry.IsBottom() || !st.last.IsBottom() {
			return fmt.Sprintf("empty ring with entry=%s last=%s", st.entry, st.last)
		}
		return ""
	}
	if st.entry.IsBottom() || st.last.IsBottom() {
		return fmt.Sprintf("committed ring of %d with entry=%s last=%s", st.n, st.entry, st.last)
	}
	if want := label.NthInOrder(st.n, 0); st.entry.L != want {
		return fmt.Sprintf("entry label %s, want l(0)=%s for n=%d", st.entry.L, want, st.n)
	}
	if want := label.NthInOrder(st.n, st.n-1); st.last.L != want {
		return fmt.Sprintf("last label %s, want l(%d)=%s for n=%d", st.last.L, st.n-1, want, st.n)
	}
	if st.n == 1 && st.entry != st.last {
		return fmt.Sprintf("singleton ring with entry %s ≠ last %s", st.entry, st.last)
	}
	return ""
}

// Entry returns the committed entry tuple (position 0) for a topic.
func (s *Supervisor) Entry(t sim.Topic) proto.Tuple { return s.topic(t).entry }

// Last returns the committed last tuple (position n−1) for a topic.
func (s *Supervisor) Last(t sim.Topic) proto.Tuple { return s.topic(t).last }

func sortedIDs(set map[sim.NodeID]bool) []sim.NodeID {
	out := make([]sim.NodeID, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

var _ sim.Handler = (*Supervisor)(nil)

// Node wraps a core.Client for token mode: it intercepts Token messages,
// applies the positional configuration to the right per-topic instance,
// forwards the token, and reports staleness to the supervisor when no
// token has been seen for StaleAfter intervals.
type Node struct {
	Client     *core.Client
	Supervisor sim.NodeID
	// StaleAfter is the staleness threshold in timeout intervals.
	StaleAfter float64

	lastToken map[sim.Topic]float64
	lastEpoch map[sim.Topic]uint64
	lastN     map[sim.Topic]uint64
}

// NewNode wraps a client for token mode.
func NewNode(client *core.Client, supervisor sim.NodeID) *Node {
	return &Node{
		Client:     client,
		Supervisor: supervisor,
		StaleAfter: 12,
		lastToken:  map[sim.Topic]float64{},
		lastEpoch:  map[sim.Topic]uint64{},
		lastN:      map[sim.Topic]uint64{},
	}
}

// OnTimeout drives the wrapped client and reports token staleness.
func (n *Node) OnTimeout(ctx sim.Context) {
	n.Client.OnTimeout(ctx)
	for _, t := range n.Client.Topics() {
		if !n.Client.Joined(t) {
			continue
		}
		seen, ok := n.lastToken[t]
		if !ok {
			n.lastToken[t] = ctx.Now()
			continue
		}
		// Scale the staleness threshold with the last observed ring size: a
		// pass takes about one hop per message delay, so a healthy token
		// returns well within 2·N intervals.
		threshold := n.StaleAfter
		if t2 := 2*float64(n.lastN[t]) + 8; t2 > threshold {
			threshold = t2
		}
		if ctx.Now()-seen > threshold {
			st, _ := n.Client.StateOf(t)
			ctx.Send(n.Supervisor, t, proto.Register{V: n.Client.ID(), Label: st.Label})
			n.lastToken[t] = ctx.Now() // back off until the next window
		}
	}
}

// OnMessage intercepts tokens and forwards everything else to the client.
func (n *Node) OnMessage(ctx sim.Context, m sim.Message) {
	tok, ok := m.Body.(proto.Token)
	if !ok {
		n.Client.OnMessage(ctx, m)
		return
	}
	n.lastToken[m.Topic] = ctx.Now()
	n.lastN[m.Topic] = tok.N
	in, joined := n.Client.Instance(m.Topic)
	if !joined || in.Sub.Departed() {
		ctx.Send(n.Supervisor, m.Topic, proto.TokenReturn{Epoch: tok.Epoch, Complete: false, First: tok.First})
		return
	}
	if tok.Pos >= tok.N {
		return // corrupted token
	}
	// A consistent pass visits every node exactly once. A second visit in
	// the same epoch means the walk is inconsistent (a node holds two
	// positions — e.g. a straggler Subscribe re-pended an already-labelled
	// node, or stale right pointers looped the walk). Abort the pass; the
	// supervisor's failure counter escalates to a rebuild, which is always
	// consistent.
	if last, ok := n.lastEpoch[m.Topic]; ok && last == tok.Epoch {
		ctx.Send(n.Supervisor, m.Topic, proto.TokenReturn{Epoch: tok.Epoch, Complete: false, First: tok.First})
		return
	}
	n.lastEpoch[m.Topic] = tok.Epoch
	lab := label.NthInOrder(tok.N, tok.Pos)
	in.Sub.ApplyToken(lab, tok.Prev)
	self := proto.Tuple{L: lab, Ref: n.Client.ID()}
	if tok.Pos == 0 {
		tok.First = self
	}

	next := tok.Pos + 1
	if next == tok.N {
		// Census check: a consistent ring of exactly N nodes closes here —
		// our successor must be the entry (or still unknown). Anything else
		// means extra nodes are woven into the physical ring (e.g. joiners
		// spliced by a pass that later broke); only a rebuild restores an
		// exact census, so fail the pass.
		complete := true
		if right := in.Sub.Right(); !right.IsBottom() && right.Ref != tok.First.Ref {
			complete = false
		}
		ctx.Send(n.Supervisor, m.Topic, proto.TokenReturn{
			Epoch: tok.Epoch, Complete: complete, First: tok.First, Last: self,
		})
		return
	}
	nextLabel := label.NthInOrder(tok.N, next)
	fwd := tok
	fwd.Pos = next
	fwd.Prev = self

	// A pending joiner owns the next position: splice it in, handing it the
	// place to continue (our old right, or the hop we ourselves inherited).
	for i, p := range tok.Pending {
		if p.L == nextLabel {
			fwd.Pending = append(append([]proto.Tuple{}, tok.Pending[:i]...), tok.Pending[i+1:]...)
			fwd.NextHop = in.Sub.Right()
			if fwd.NextHop.IsBottom() {
				fwd.NextHop = tok.NextHop
			}
			ctx.Send(p.Ref, m.Topic, fwd)
			return
		}
	}
	fwd.NextHop = proto.Tuple{}
	target := in.Sub.Right()
	if target.IsBottom() {
		target = tok.NextHop
	}
	if target.IsBottom() || target.Ref == tok.First.Ref {
		// No way forward, or a premature wrap (the physical ring is shorter
		// than N): fail the pass.
		ctx.Send(n.Supervisor, m.Topic, proto.TokenReturn{
			Epoch: tok.Epoch, Complete: false, First: tok.First, Last: self,
		})
		return
	}
	ctx.Send(target.Ref, m.Topic, fwd)
}

var _ sim.Handler = (*Node)(nil)
