package tokenring

import (
	"sort"
	"testing"

	"sspubsub/internal/cluster"
	"sspubsub/internal/core"
	"sspubsub/internal/label"
	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
)

const tp sim.Topic = 1

// harness wires a token supervisor and wrapped clients on the
// deterministic scheduler. Subscriber randomness is disabled: token mode
// is the fully deterministic variant (probes off, staleness reports and
// token passes only).
type harness struct {
	sched *sim.Scheduler
	sup   *Supervisor
	nodes map[sim.NodeID]*Node
}

func newHarness(seed int64, n int) *harness {
	h := &harness{
		sched: sim.NewScheduler(sim.SchedulerOptions{Seed: seed}),
		sup:   NewSupervisor(1),
		nodes: map[sim.NodeID]*Node{},
	}
	h.sched.AddNode(1, h.sup)
	for i := 0; i < n; i++ {
		h.addNode()
	}
	return h
}

func (h *harness) addNode() sim.NodeID {
	id := sim.NodeID(len(h.nodes) + 2)
	cl := core.NewClient(id, 1, core.Options{
		DisableActionIV: true,
		ProbeProb:       func(int) float64 { return 0 },
	})
	nd := NewNode(cl, 1)
	h.nodes[id] = nd
	h.sched.AddNode(id, nd)
	return id
}

func (h *harness) joinAll() {
	ids := make([]sim.NodeID, 0, len(h.nodes))
	for id := range h.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		h.sched.Send(sim.Message{To: id, From: id, Topic: tp, Body: core.JoinTopic{}})
	}
}

// legit checks the members' states against the legitimate SR(n), using a
// pseudo-database derived from the actual labels (the token supervisor
// stores none).
func (h *harness) legit(wantN int) string {
	states := map[sim.NodeID]core.State{}
	db := map[label.Label]sim.NodeID{}
	for id, nd := range h.nodes {
		if !nd.Client.Joined(tp) {
			continue
		}
		st, _ := nd.Client.StateOf(tp)
		states[id] = st
		if !st.Label.IsBottom() {
			db[st.Label] = id
		}
	}
	if len(states) != wantN {
		return "wrong member count"
	}
	if len(db) != len(states) {
		return "duplicate or missing labels"
	}
	return cluster.CheckLegitimacy(db, states)
}

func (h *harness) converge(t *testing.T, wantN, maxRounds int) int {
	t.Helper()
	// Full quiescence: legitimate states, supervisor count agrees, and the
	// supervisor's transient sets (pending splices, rebuild registrations)
	// have drained. Transient mismatches (e.g. a straggler complaint that
	// re-pended a member) are resolved by subsequent passes/rebuilds.
	pred := func() bool {
		st := h.sup.topic(tp)
		return h.legit(wantN) == "" && h.sup.N(tp) == wantN &&
			len(st.pending) == 0 && len(st.regs) == 0 && !st.rebuild
	}
	rounds, ok := h.sched.RunRoundsUntil(maxRounds, pred)
	if !ok {
		st := h.sup.topic(tp)
		t.Fatalf("token ring not quiescent after %d rounds: legit=%q supN=%d pending=%d regs=%d rebuild=%v",
			maxRounds, h.legit(wantN), h.sup.N(tp), len(st.pending), len(st.regs), st.rebuild)
	}
	return rounds
}

func TestTokenJoinBurst(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 16, 32} {
		h := newHarness(int64(n)*3+1, n)
		h.joinAll()
		rounds := h.converge(t, n, 8000)
		t.Logf("n=%d converged in %d rounds", n, rounds)
	}
}

func TestTokenClosureAndDeterminism(t *testing.T) {
	h := newHarness(7, 16)
	h.joinAll()
	h.converge(t, 16, 8000)
	versions := map[sim.NodeID]uint64{}
	for id, nd := range h.nodes {
		st, _ := nd.Client.StateOf(tp)
		versions[id] = st.Version
	}
	// Convergence may emit duplicate-label referrals (token relabelling
	// creates transient duplicates); the steady state must not.
	h.sched.ResetCounters()
	h.sched.RunRounds(200)
	if msg := h.legit(16); msg != "" {
		t.Fatalf("legitimacy lost: %s", msg)
	}
	for id, nd := range h.nodes {
		st, _ := nd.Client.StateOf(tp)
		if st.Version != versions[id] {
			t.Errorf("node %d mutated state during steady token passes", id)
		}
	}
	// Deterministic: no probabilistic GetConfiguration traffic at all.
	if got := h.sched.CountByType("proto.GetConfiguration"); got != 0 {
		t.Errorf("%d probabilistic probes in deterministic mode", got)
	}
}

func TestTokenSequentialJoins(t *testing.T) {
	h := newHarness(11, 4)
	h.joinAll()
	h.converge(t, 4, 8000)
	for i := 0; i < 4; i++ {
		id := h.addNode()
		h.sched.Send(sim.Message{To: id, From: id, Topic: tp, Body: core.JoinTopic{}})
		rounds := h.converge(t, 5+i, 8000)
		t.Logf("join %d spliced and converged in %d rounds", i, rounds)
	}
}

func TestTokenLeaveTriggersRebuild(t *testing.T) {
	h := newHarness(13, 8)
	h.joinAll()
	h.converge(t, 8, 8000)
	var leaver sim.NodeID
	for id := range h.nodes {
		leaver = id
		break
	}
	h.sched.Send(sim.Message{To: leaver, From: leaver, Topic: tp, Body: core.LeaveTopic{}})
	rounds := h.converge(t, 7, 8000)
	t.Logf("rebuilt without leaver in %d rounds", rounds)
	if !h.nodes[leaver].Client.Departed(tp) {
		t.Error("leaver never got permission")
	}
}

func TestTokenCrashRecovery(t *testing.T) {
	h := newHarness(17, 12)
	h.joinAll()
	h.converge(t, 12, 8000)
	crashed := 0
	for id := range h.nodes {
		if crashed == 3 {
			break
		}
		h.sched.Crash(id)
		delete(h.nodes, id)
		crashed++
	}
	rounds := h.converge(t, 9, 8000)
	t.Logf("recovered from %d crashes (token loss → rebuild) in %d rounds", crashed, rounds)
}

func TestTokenGarbageTokenAbsorbed(t *testing.T) {
	h := newHarness(19, 8)
	h.joinAll()
	h.converge(t, 8, 8000)
	// A corrupted token with absurd values must not wreck the ring
	// permanently: the next legitimate pass repairs all labels.
	var victim sim.NodeID
	for id := range h.nodes {
		victim = id
		break
	}
	h.sched.InjectAt(h.sched.Now()+0.1, sim.Message{To: victim, From: 99, Topic: tp, Body: proto2Token()})
	h.converge(t, 8, 8000)
}

// proto2Token builds a corrupted token (helper keeps the import local).
func proto2Token() any {
	return tokenWith(64, 7)
}

func TestTokenSupervisorStateIsConstant(t *testing.T) {
	// The steady-state supervisor stores n, entry, last, epoch — no
	// per-subscriber data. Verify the pending/regs maps drain.
	h := newHarness(23, 16)
	h.joinAll()
	h.converge(t, 16, 8000)
	st := h.sup.topic(tp)
	if len(st.pending) != 0 || len(st.regs) != 0 {
		t.Errorf("supervisor retains per-subscriber state: pending=%d regs=%d",
			len(st.pending), len(st.regs))
	}
	if h.sup.Rebuilding(tp) {
		t.Error("steady state must not be rebuilding")
	}
}

// tokenWith builds a syntactically valid but semantically absurd token.
func tokenWith(n, pos uint64) proto.Token {
	return proto.Token{Epoch: 999, N: n, Pos: pos, Prev: proto.Tuple{L: label.FromIndex(63), Ref: 77}}
}
