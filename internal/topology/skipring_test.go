package topology

import (
	"math"
	"testing"
	"testing/quick"

	"sspubsub/internal/label"
)

// edge is a test helper: the undirected edge between subscriber indices.
func edge(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// Figure 1 of the paper: SR(16) has 16 ring edges (level 4), 8 shortcuts at
// level 3 (green), 4 at level 2 (red) and 1 at level 1 (blue).
func TestFigure1EdgeCensus(t *testing.T) {
	r := New(16)
	byLevel := map[uint8]int{}
	for _, lvl := range r.Edges() {
		byLevel[lvl]++
	}
	want := map[uint8]int{4: 16, 3: 8, 2: 4, 1: 1}
	for lvl, w := range want {
		if byLevel[lvl] != w {
			t.Errorf("level %d: %d edges, want %d", lvl, byLevel[lvl], w)
		}
	}
	if len(r.Edges()) != 29 {
		t.Errorf("|E| = %d undirected, want 29", len(r.Edges()))
	}
}

// Spot-check specific Figure 1 edges. Indices are subscriber numbers x:
// x=0 ↔ r 0, x=1 ↔ 1/2, x=2 ↔ 1/4, x=3 ↔ 3/4, x=4 ↔ 1/8, x=5 ↔ 3/8 …
func TestFigure1SpecificEdges(t *testing.T) {
	r := New(16)
	cases := []struct {
		a, b  int
		level uint8
	}{
		{0, 1, 1},  // 0 — 1/2: the blue level-1 shortcut
		{0, 2, 2},  // 0 — 1/4 (red)
		{2, 1, 2},  // 1/4 — 1/2 (red)
		{1, 3, 2},  // 1/2 — 3/4 (red)
		{3, 0, 2},  // 3/4 — 0 (red, wraps)
		{0, 4, 3},  // 0 — 1/8 (green)
		{4, 2, 3},  // 1/8 — 1/4 (green)
		{2, 5, 3},  // 1/4 — 3/8 (green)
		{0, 8, 4},  // 0 — 1/16 (ring)
		{8, 4, 4},  // 1/16 — 1/8 (ring)
		{15, 0, 4}, // 15/16 — 0 (ring, wraps)
	}
	for _, c := range cases {
		lvl, ok := r.EdgeLevel(c.a, c.b)
		if !ok {
			t.Errorf("edge (%d,%d) missing", c.a, c.b)
			continue
		}
		if lvl != c.level {
			t.Errorf("edge (%d,%d) level %d, want %d", c.a, c.b, lvl, c.level)
		}
	}
	// Non-edges: 1/16 has no shortcut anywhere (deepest level).
	if _, ok := r.EdgeLevel(8, 1); ok {
		t.Error("1/16 — 1/2 must not be an edge")
	}
}

// Lemma 3: max degree 2(log n − k + 1) up to the shared level-1 edge;
// average degree ≤ 4; |E| ≈ 4n − 4 directed.
func TestDegreeStatsLemma3(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 64, 256, 1024, 4096} {
		r := New(n)
		st := r.Stats()
		logn := int(math.Ceil(math.Log2(float64(n))))
		// The label-0 node holds 2 edges per level except the deduplicated
		// level-1 edge: 2·log n − 1.
		if want := 2*logn - 1; n >= 4 && st.MaxDegree != want {
			t.Errorf("n=%d: max degree %d, want %d", n, st.MaxDegree, want)
		}
		if st.AvgDegree > 4.0 {
			t.Errorf("n=%d: avg degree %.3f > 4", n, st.AvgDegree)
		}
		// Directed edge count: paper's closed form is 4n−4; the actual
		// graph double-counts one less edge (the level-1 pair is a single
		// edge), giving 4n−6 for powers of two.
		if n >= 4 && n&(n-1) == 0 {
			if st.Directed != 4*n-6 {
				t.Errorf("n=%d: directed edges %d, want %d (paper closed form %d)",
					n, st.Directed, 4*n-6, st.PaperDirected)
			}
		}
	}
}

// The skip ring has logarithmic diameter (Section 4.3: flooding reaches all
// subscribers in O(log n) hops).
func TestDiameterLogarithmic(t *testing.T) {
	for _, n := range []int{2, 4, 16, 64, 256, 1024} {
		r := New(n)
		d := r.Diameter()
		logn := int(math.Ceil(math.Log2(float64(n))))
		if d > logn+1 {
			t.Errorf("n=%d: diameter %d exceeds log n + 1 = %d", n, d, logn+1)
		}
	}
}

// Expected states must be mutually consistent: if x's expected left is
// label L, then L's owner's expected right is x's label, etc.
func TestExpectedStatesConsistent(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 16, 23, 64} {
		r := New(n)
		for x := 0; x < n; x++ {
			exp := r.Expected(x)
			if !exp.Left.IsBottom() {
				y := r.IndexOf(exp.Left)
				if y < 0 {
					t.Fatalf("n=%d x=%d: left label %s unknown", n, x, exp.Left)
				}
				if got := r.Expected(y).Right; got != exp.Label {
					t.Errorf("n=%d: %s.left=%s but %s.right=%s", n, exp.Label, exp.Left, exp.Left, got)
				}
			}
			if !exp.Ring.IsBottom() {
				y := r.IndexOf(exp.Ring)
				if got := r.Expected(y).Ring; got != exp.Label {
					t.Errorf("n=%d: ring edge not mutual between %s and %s", n, exp.Label, exp.Ring)
				}
			}
			// Every expected shortcut label must exist in the ring.
			for slot := range exp.Shortcuts {
				if r.IndexOf(slot) < 0 {
					t.Errorf("n=%d x=%d: shortcut slot %s unknown", n, x, slot)
				}
			}
		}
	}
}

// Property: shortcut slots derived by the oracle match Definition 2's edge
// set — for every expected shortcut (v, s) the static graph has an edge at
// level max(|v|, |s|) < ⌈log n⌉.
func TestExpectedShortcutsMatchEdges(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed%120) + 2
		r := New(n)
		for x := 0; x < n; x++ {
			exp := r.Expected(x)
			for slot := range exp.Shortcuts {
				y := r.IndexOf(slot)
				if y < 0 {
					return false
				}
				if _, ok := r.EdgeLevel(x, y); !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Conversely, every static edge is accounted for by either a ring
// adjacency or a shortcut slot of one of its endpoints.
func TestEdgesCoveredByExpectedStates(t *testing.T) {
	for _, n := range []int{2, 3, 7, 16, 33} {
		r := New(n)
		for e := range r.Edges() {
			a, b := e[0], e[1]
			if covered(r, a, b) || covered(r, b, a) {
				continue
			}
			t.Errorf("n=%d: edge (%d,%d) not covered by any expected state", n, a, b)
		}
	}
}

func covered(r *SkipRing, x, y int) bool {
	exp := r.Expected(x)
	ly := r.Label(y)
	if exp.Left == ly || exp.Right == ly || exp.Ring == ly {
		return true
	}
	_, ok := exp.Shortcuts[ly]
	return ok
}

func TestRingNeighborsWrap(t *testing.T) {
	r := New(16)
	// x=0 (r 0): pred is the max (15/16 = x 15), succ is 1/16 = x 8.
	pred, succ := r.RingNeighbors(0)
	if pred != 15 || succ != 8 {
		t.Errorf("RingNeighbors(0) = %d,%d; want 15,8", pred, succ)
	}
}

func TestIndexOf(t *testing.T) {
	r := New(10)
	for x := 0; x < 10; x++ {
		if r.IndexOf(r.Label(x)) != x {
			t.Errorf("IndexOf(Label(%d)) != %d", x, x)
		}
	}
	if r.IndexOf(label.FromIndex(10)) != -1 {
		t.Error("out-of-range label should map to -1")
	}
	if r.IndexOf(label.Bottom) != -1 {
		t.Error("⊥ should map to -1")
	}
}

func TestBFSHops(t *testing.T) {
	r := New(64)
	hops := r.BFSHops(0)
	for x, h := range hops {
		if h < 0 {
			t.Fatalf("node %d unreachable", x)
		}
	}
	if hops[0] != 0 {
		t.Error("source distance must be 0")
	}
}

func TestSingletonAndPair(t *testing.T) {
	r1 := New(1)
	if len(r1.Edges()) != 0 || r1.Diameter() != 0 {
		t.Error("SR(1) must have no edges")
	}
	exp := r1.Expected(0)
	if !exp.Left.IsBottom() || !exp.Right.IsBottom() || !exp.Ring.IsBottom() || len(exp.Shortcuts) != 0 {
		t.Errorf("SR(1) expected state not empty: %+v", exp)
	}
	r2 := New(2)
	if len(r2.Edges()) != 1 {
		t.Errorf("SR(2) must have exactly 1 edge, got %d", len(r2.Edges()))
	}
	e0 := r2.Expected(0)
	if e0.Right != r2.Label(1) || !e0.Left.IsBottom() || e0.Ring != r2.Label(1) {
		t.Errorf("SR(2) node 0 expected state wrong: %+v", e0)
	}
}
