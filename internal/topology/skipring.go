// Package topology constructs the legitimate skip ring SR(n) of
// Definition 2 as a static graph. It serves three purposes:
//
//   - the legitimacy oracle for the self-stabilization experiments: the
//     unique explicit state every subscriber must converge to (labels,
//     left/right/ring assignment, shortcut sets);
//   - the structural experiments of the paper (Figure 1, Lemma 3's degree
//     bounds, the O(log n) diameter used by Section 4.3);
//   - a routable static overlay for the congestion comparison against
//     Chord and skip graphs (Section 1.3).
package topology

import (
	"sort"

	"sspubsub/internal/label"
)

// SkipRing is the legitimate SR(n) for subscribers indexed 0 … n−1 (index x
// holds label l(x)).
type SkipRing struct {
	n      int
	labels []label.Label // by subscriber index
	order  []int         // subscriber indices sorted by r(label)
	rank   []int         // index → position in order
	adj    [][]int       // index → sorted neighbour indices (ER ∪ ES)
	level  map[[2]int]uint8
}

// New builds SR(n). It panics for n < 1.
func New(n int) *SkipRing {
	if n < 1 {
		panic("topology: n must be ≥ 1")
	}
	r := &SkipRing{
		n:      n,
		labels: make([]label.Label, n),
		order:  make([]int, n),
		rank:   make([]int, n),
		level:  make(map[[2]int]uint8),
	}
	for x := 0; x < n; x++ {
		r.labels[x] = label.FromIndex(uint64(x))
		r.order[x] = x
	}
	sort.Slice(r.order, func(i, j int) bool {
		return r.labels[r.order[i]].Frac() < r.labels[r.order[j]].Frac()
	})
	for pos, x := range r.order {
		r.rank[x] = pos
	}

	edges := map[[2]int]uint8{}
	addEdge := func(a, b int, lvl uint8) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		if old, ok := edges[[2]int{a, b}]; !ok || lvl > old {
			// Keep the highest level so ring edges dominate in reporting
			// (a level-1 edge between the two K_1 nodes of SR(2) is also
			// their ring edge).
			edges[[2]int{a, b}] = lvl
		}
	}

	// Ring edges ER: consecutive in r-order (level ⌈log n⌉).
	top := uint8(ceilLog2(n))
	if n >= 2 {
		for pos := 0; pos < n; pos++ {
			addEdge(r.order[pos], r.order[(pos+1)%n], top)
		}
	}
	// Shortcuts ES: for each i < ⌈log n⌉, the sorted ring over
	// K_i = {w : |label_w| ≤ i}.
	for i := uint8(1); i < top; i++ {
		var ki []int
		for x := 0; x < n; x++ {
			if uint8(r.labels[x].Len) <= i {
				ki = append(ki, x)
			}
		}
		sort.Slice(ki, func(a, b int) bool {
			return r.labels[ki[a]].Frac() < r.labels[ki[b]].Frac()
		})
		if len(ki) < 2 {
			continue
		}
		if len(ki) == 2 {
			addEdge(ki[0], ki[1], i)
			continue
		}
		for p := 0; p < len(ki); p++ {
			addEdge(ki[p], ki[(p+1)%len(ki)], i)
		}
	}

	r.adj = make([][]int, n)
	for e, lvl := range edges {
		r.adj[e[0]] = append(r.adj[e[0]], e[1])
		r.adj[e[1]] = append(r.adj[e[1]], e[0])
		r.level[e] = lvl
	}
	for x := range r.adj {
		sort.Ints(r.adj[x])
	}
	return r
}

func ceilLog2(n int) int {
	k, v := 0, 1
	for v < n {
		v <<= 1
		k++
	}
	return k
}

// N returns the number of subscribers.
func (r *SkipRing) N() int { return r.n }

// Label returns l(x).
func (r *SkipRing) Label(x int) label.Label { return r.labels[x] }

// IndexOf returns the subscriber index holding lab, or −1.
func (r *SkipRing) IndexOf(lab label.Label) int {
	if lab.IsBottom() {
		return -1
	}
	x := int(lab.Index())
	if x < r.n && r.labels[x] == lab {
		return x
	}
	return -1
}

// Neighbors returns x's adjacency in ER ∪ ES, sorted by index.
func (r *SkipRing) Neighbors(x int) []int { return r.adj[x] }

// EdgeLevel returns the level of edge (a, b) per Definition 2 and whether
// the edge exists.
func (r *SkipRing) EdgeLevel(a, b int) (uint8, bool) {
	if a > b {
		a, b = b, a
	}
	lvl, ok := r.level[[2]int{a, b}]
	return lvl, ok
}

// Edges returns all undirected edges with their levels.
func (r *SkipRing) Edges() map[[2]int]uint8 {
	out := make(map[[2]int]uint8, len(r.level))
	for e, l := range r.level {
		out[e] = l
	}
	return out
}

// RingNeighbors returns the circular predecessor and successor of x in the
// r-ordering (x itself for n = 1).
func (r *SkipRing) RingNeighbors(x int) (pred, succ int) {
	p := r.rank[x]
	return r.order[(p-1+r.n)%r.n], r.order[(p+1)%r.n]
}

// ExpectedState is the unique legitimate explicit state of one subscriber:
// the slot assignment the BuildSR protocol converges to.
type ExpectedState struct {
	Label label.Label
	// Left and Right are the list neighbours (⊥ for the minimum's left and
	// the maximum's right). Ring is the closure edge held by the two
	// extremes (⊥ elsewhere).
	Left, Right, Ring label.Label
	// Shortcuts is the derived shortcut slot set: slot label → owner label.
	Shortcuts map[label.Label]label.Label
}

// Expected computes subscriber x's legitimate state.
func (r *SkipRing) Expected(x int) ExpectedState {
	st := ExpectedState{Label: r.labels[x], Shortcuts: map[label.Label]label.Label{}}
	if r.n == 1 {
		return st
	}
	pos := r.rank[x]
	pred, succ := r.RingNeighbors(x)
	if pos > 0 {
		st.Left = r.labels[pred]
	} else {
		st.Ring = r.labels[pred] // minimum: closure edge to the maximum
	}
	if pos < r.n-1 {
		st.Right = r.labels[succ]
	} else {
		st.Ring = r.labels[succ] // maximum: closure edge to the minimum
	}
	// Shortcut derivation uses the circular neighbours (Section 3.2.2).
	set, _, _ := label.Shortcuts(st.Label, r.labels[pred], r.labels[succ])
	for _, s := range set {
		st.Shortcuts[s] = s
	}
	return st
}

// DegreeStats reports Lemma 3's quantities over the whole ring.
type DegreeStats struct {
	N             int
	MaxDegree     int
	AvgDegree     float64
	Undirected    int // |ER ∪ ES| as undirected edges
	Directed      int // 2·Undirected
	PaperDirected int // the paper's closed form 4n−4
}

// Stats computes degree statistics.
func (r *SkipRing) Stats() DegreeStats {
	st := DegreeStats{N: r.n, Undirected: len(r.level), PaperDirected: 4*r.n - 4}
	st.Directed = 2 * st.Undirected
	total := 0
	for x := 0; x < r.n; x++ {
		d := len(r.adj[x])
		total += d
		if d > st.MaxDegree {
			st.MaxDegree = d
		}
	}
	if r.n > 0 {
		st.AvgDegree = float64(total) / float64(r.n)
	}
	return st
}

// Diameter returns the hop diameter of ER ∪ ES (BFS from every node;
// O(n·m), fine at simulation scale).
func (r *SkipRing) Diameter() int {
	max := 0
	for s := 0; s < r.n; s++ {
		d := r.eccentricity(s)
		if d > max {
			max = d
		}
	}
	return max
}

// Eccentricity returns the BFS eccentricity of node s.
func (r *SkipRing) eccentricity(s int) int {
	dist := make([]int, r.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []int{s}
	far := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range r.adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				if dist[w] > far {
					far = dist[w]
				}
				queue = append(queue, w)
			}
		}
	}
	return far
}

// BFSHops returns the hop distance of every node from source (the flooding
// delivery time of Section 4.3).
func (r *SkipRing) BFSHops(source int) []int {
	dist := make([]int, r.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[source] = 0
	queue := []int{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range r.adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}
