package pubsub

import (
	"fmt"
	"testing"

	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
	"sspubsub/internal/simtest"
	"sspubsub/internal/trie"
)

const tp sim.Topic = 1

// pair builds two engines u (id 10) and v (id 11) that are mutual ring
// neighbours with 3-bit keys (the Figure 2 setting).
func pair(keyLen uint8) (u, v *Engine, uc, vc *simtest.Ctx) {
	mk := func(self, peer sim.NodeID) Config {
		return Config{
			Self:   self,
			Topic:  tp,
			KeyLen: keyLen,
			RingNeighbors: func() []proto.Tuple {
				return []proto.Tuple{{Ref: peer}}
			},
			FloodTargets: func() []sim.NodeID { return []sim.NodeID{peer} },
		}
	}
	return NewEngine(mk(10, 11)), NewEngine(mk(11, 10)), simtest.NewCtx(10), simtest.NewCtx(11)
}

func fixedPub(key string) proto.Publication {
	return proto.Publication{Key: trie.ParseKey(key), Origin: 1, Payload: "P" + key}
}

// seed inserts publications with fixed keys directly (bypassing hashing, so
// tests can reproduce the paper's example keys).
func seed(e *Engine, keys ...string) {
	for _, k := range keys {
		e.insert(fixedPub(k))
	}
}

// deliver routes all captured messages to the right engine until quiet,
// returning a trace of "sender→receiver type" strings.
func deliver(u, v *Engine, uc, vc *simtest.Ctx) []string {
	var trace []string
	for {
		msgs := append(uc.Take(), vc.Take()...)
		if len(msgs) == 0 {
			return trace
		}
		for _, m := range msgs {
			trace = append(trace, fmt.Sprintf("%d→%d %T", m.From, m.To, m.Body))
			switch m.To {
			case 10:
				u.OnMessage(uc, m)
			case 11:
				v.OnMessage(vc, m)
			}
		}
	}
}

// Figure 2, first direction: u (P1..P4) probes v (P1..P3). v's reply names
// its nodes 0 and 100, both of which u already matches — the chain ends
// with no publication transfer.
func TestFigure2ProbeFromU(t *testing.T) {
	u, v, uc, vc := pair(3)
	seed(u, "000", "010", "100", "101")
	seed(v, "000", "010", "100")

	root, _ := u.Trie().RootSummary()
	v.OnMessage(vc, sim.Message{From: 10, To: 11, Topic: tp, Body: proto.CheckTrie{Sender: 10, Nodes: []proto.NodeSummary{root}}})
	trace := deliver(u, v, uc, vc)
	// v must answer with exactly one CheckTrie (children 0, 100), and u
	// must stay silent afterwards.
	if len(trace) != 1 || trace[0] != "11→10 proto.CheckTrie" {
		t.Fatalf("trace = %v", trace)
	}
	if u.Trie().Len() != 4 || v.Trie().Len() != 3 {
		t.Fatal("no publications may move in this direction")
	}
}

// Figure 2, second direction: v probes u; u answers with children (0, 10);
// v lacks node 10 and sends CheckAndPublish(v, (100,h(P3)), p=101); u
// delivers P4. After insertion both tries are hash-equal.
func TestFigure2ProbeFromV(t *testing.T) {
	u, v, uc, vc := pair(3)
	seed(u, "000", "010", "100", "101")
	seed(v, "000", "010", "100")

	root, _ := v.Trie().RootSummary()
	u.OnMessage(uc, sim.Message{From: 11, To: 10, Topic: tp, Body: proto.CheckTrie{Sender: 11, Nodes: []proto.NodeSummary{root}}})
	trace := deliver(u, v, uc, vc)
	want := []string{
		"10→11 proto.CheckTrie",       // u sends children (0, h..), (10, h..)
		"11→10 proto.CheckAndPublish", // v: node 10 missing → c = leaf 100, p = 101
		"10→11 proto.PublishBatch",    // u delivers P4 (prefix 101)
	}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace[%d] = %s, want %s", i, trace[i], want[i])
		}
	}
	if !u.Trie().Equal(v.Trie()) {
		t.Fatal("tries not equal after sync")
	}
	if p, ok := v.Trie().Get(trie.ParseKey("101")); !ok || p.Payload != "P101" {
		t.Fatal("P4 not delivered")
	}
}

// The CheckAndPublish prefix computation of the example: v finds c = leaf
// "100" (minimal extension of "10") and requests prefix 101 = 10 ◦ (1−0).
func TestCheckAndPublishPrefix(t *testing.T) {
	_, v, _, vc := pair(3)
	seed(v, "000", "010", "100")
	v.checkTrie(vc, 10, []proto.NodeSummary{{Label: trie.ParseKey("10"), Hash: [16]byte{1}}})
	msgs := vc.Take()
	if len(msgs) != 1 {
		t.Fatalf("msgs = %v", msgs)
	}
	cap, ok := msgs[0].Body.(proto.CheckAndPublish)
	if !ok {
		t.Fatalf("got %T", msgs[0].Body)
	}
	if trie.KeyString(cap.Prefix) != "101" {
		t.Errorf("prefix = %s, want 101", trie.KeyString(cap.Prefix))
	}
	if len(cap.Nodes) != 1 || trie.KeyString(cap.Nodes[0].Label) != "100" {
		t.Errorf("continuation node = %v, want leaf 100", cap.Nodes)
	}
}

// A receiver with an empty trie asks for everything under the probed label.
func TestEmptyTrieAsksForAll(t *testing.T) {
	u, v, uc, vc := pair(3)
	seed(u, "000", "010", "100", "101")
	root, _ := u.Trie().RootSummary()
	v.OnMessage(vc, sim.Message{From: 10, To: 11, Topic: tp, Body: proto.CheckTrie{Sender: 10, Nodes: []proto.NodeSummary{root}}})
	deliver(u, v, uc, vc)
	if !u.Trie().Equal(v.Trie()) {
		t.Fatalf("empty trie not filled: %d pubs", v.Trie().Len())
	}
}

// Disjoint publication sets merge completely through repeated probes in
// both directions (the potential-function argument of Theorem 17).
func TestDisjointSetsMerge(t *testing.T) {
	u, v, uc, vc := pair(5)
	seed(u, "00000", "00100", "11000", "01010")
	seed(v, "10000", "10111", "00111")
	for i := 0; i < 6; i++ {
		if root, ok := u.Trie().RootSummary(); ok {
			v.OnMessage(vc, sim.Message{From: 10, To: 11, Topic: tp, Body: proto.CheckTrie{Sender: 10, Nodes: []proto.NodeSummary{root}}})
		}
		deliver(u, v, uc, vc)
		if root, ok := v.Trie().RootSummary(); ok {
			u.OnMessage(uc, sim.Message{From: 11, To: 10, Topic: tp, Body: proto.CheckTrie{Sender: 11, Nodes: []proto.NodeSummary{root}}})
		}
		deliver(u, v, uc, vc)
		if u.Trie().Equal(v.Trie()) {
			break
		}
	}
	if !u.Trie().Equal(v.Trie()) || u.Trie().Len() != 7 {
		t.Fatalf("merge incomplete: u=%d v=%d", u.Trie().Len(), v.Trie().Len())
	}
}

// Equal tries: a probe generates no response at all (Theorem 23).
func TestEqualTriesSilent(t *testing.T) {
	u, v, _, vc := pair(3)
	seed(u, "000", "111")
	seed(v, "000", "111")
	root, _ := u.Trie().RootSummary()
	v.OnMessage(vc, sim.Message{From: 10, To: 11, Topic: tp, Body: proto.CheckTrie{Sender: 10, Nodes: []proto.NodeSummary{root}}})
	if msgs := vc.Take(); len(msgs) != 0 {
		t.Fatalf("stable probe answered with %v", msgs)
	}
}

func TestPublishFloods(t *testing.T) {
	u, _, uc, _ := pair(8)
	p := u.Publish(uc, "hello")
	if !u.Trie().Has(p.Key) {
		t.Fatal("publisher must store its own publication")
	}
	msgs := uc.Take()
	if len(msgs) != 1 {
		t.Fatalf("flood = %v", msgs)
	}
	pn, ok := msgs[0].Body.(proto.PublishNew)
	if !ok || pn.Pub.Payload != "hello" || pn.Pub.Origin != 10 {
		t.Fatalf("flooded %v", msgs[0].Body)
	}
}

func TestPublishNewForwardOnce(t *testing.T) {
	_, v, _, vc := pair(8)
	p := trie.NewPublication(8, 10, "x")
	v.OnMessage(vc, sim.Message{From: 10, To: 11, Topic: tp, Body: proto.PublishNew{Pub: p}})
	// v's only neighbour is the sender: nothing to forward to.
	if msgs := vc.Take(); len(msgs) != 0 {
		t.Fatalf("forwarded back to sender: %v", msgs)
	}
	// Duplicate delivery is dropped without forwarding.
	v.OnMessage(vc, sim.Message{From: 10, To: 11, Topic: tp, Body: proto.PublishNew{Pub: p}})
	if msgs := vc.Take(); len(msgs) != 0 || v.Trie().Len() != 1 {
		t.Fatalf("duplicate not dropped: %v, len=%d", msgs, v.Trie().Len())
	}
}

func TestOnDeliverInvokedOncePerPublication(t *testing.T) {
	var got []string
	e := NewEngine(Config{
		Self: 10, Topic: tp, KeyLen: 8,
		RingNeighbors: func() []proto.Tuple { return nil },
		FloodTargets:  func() []sim.NodeID { return nil },
		OnDeliver:     func(p proto.Publication) { got = append(got, p.Payload) },
	})
	c := simtest.NewCtx(10)
	p := trie.NewPublication(8, 99, "a")
	e.OnMessage(c, sim.Message{From: 99, Topic: tp, Body: proto.PublishBatch{Pubs: []proto.Publication{p, p}}})
	e.OnMessage(c, sim.Message{From: 99, Topic: tp, Body: proto.PublishNew{Pub: p}})
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("OnDeliver calls = %v, want exactly one", got)
	}
}

func TestTimeoutProbesRandomNeighbor(t *testing.T) {
	u, _, uc, _ := pair(8)
	u.Publish(uc, "x")
	uc.Take()
	u.OnTimeout(uc)
	msgs := uc.Take()
	if len(msgs) != 1 || msgs[0].To != 11 {
		t.Fatalf("probe = %v", msgs)
	}
	if _, ok := msgs[0].Body.(proto.CheckTrie); !ok {
		t.Fatalf("probe body %T", msgs[0].Body)
	}
}

func TestTimeoutSilentWhenEmptyOrIsolated(t *testing.T) {
	u, _, uc, _ := pair(8)
	u.OnTimeout(uc) // empty trie
	if msgs := uc.Take(); len(msgs) != 0 {
		t.Fatalf("empty trie probed: %v", msgs)
	}
	iso := NewEngine(Config{Self: 12, Topic: tp, KeyLen: 8,
		RingNeighbors: func() []proto.Tuple { return nil },
		FloodTargets:  func() []sim.NodeID { return nil }})
	ic := simtest.NewCtx(12)
	iso.Publish(ic, "y")
	ic.Take()
	iso.OnTimeout(ic)
	if msgs := ic.Take(); len(msgs) != 0 {
		t.Fatalf("isolated node probed: %v", msgs)
	}
}

func TestAblationSwitches(t *testing.T) {
	noFlood := NewEngine(Config{Self: 10, Topic: tp, KeyLen: 8,
		RingNeighbors:   func() []proto.Tuple { return []proto.Tuple{{Ref: 11}} },
		FloodTargets:    func() []sim.NodeID { return []sim.NodeID{11} },
		DisableFlooding: true})
	c := simtest.NewCtx(10)
	noFlood.Publish(c, "x")
	if msgs := c.Take(); len(msgs) != 0 {
		t.Fatalf("flooding disabled but sent %v", msgs)
	}
	noAE := NewEngine(Config{Self: 10, Topic: tp, KeyLen: 8,
		RingNeighbors:      func() []proto.Tuple { return []proto.Tuple{{Ref: 11}} },
		FloodTargets:       func() []sim.NodeID { return []sim.NodeID{11} },
		DisableAntiEntropy: true})
	noAE.Publish(c, "y")
	c.Take()
	noAE.OnTimeout(c)
	if msgs := c.Take(); len(msgs) != 0 {
		t.Fatalf("anti-entropy disabled but probed %v", msgs)
	}
}

func TestCorruptedKeyWidthRejected(t *testing.T) {
	_, v, _, vc := pair(3)
	bad := proto.Publication{Key: trie.ParseKey("10101010"), Origin: 5}
	v.OnMessage(vc, sim.Message{From: 5, Topic: tp, Body: proto.PublishBatch{Pubs: []proto.Publication{bad}}})
	if v.Trie().Len() != 0 {
		t.Fatal("foreign key width must be rejected")
	}
}
