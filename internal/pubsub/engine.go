// Package pubsub implements the self-stabilizing publication protocol of
// Sections 4.2 and 4.3 (Algorithm 5 of Feldmann et al.).
//
// Every subscriber stores its topic's publications in a hashed Patricia
// trie. A periodic anti-entropy exchange (CheckTrie / CheckAndPublish /
// Publish) reconciles neighbouring tries along ring edges, guaranteeing
// that all subscribers eventually store all publications (Theorem 17);
// a flooding layer (PublishNew) over ring and shortcut edges delivers
// fresh publications in O(log n) hops (Section 4.3).
//
// On topics with an ordered delivery mode (internal/ordering), storage and
// flooding are unchanged — publications flood as PublishSeq/PublishCausal
// carrying bounded ordering metadata, and only the delivery callback is
// reordered through a per-topic ordering.Buffer.
package pubsub

import (
	"math/rand"

	"sspubsub/internal/ordering"
	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
	"sspubsub/internal/trie"
)

// Config wires an Engine to its host subscriber.
type Config struct {
	// Self is the hosting node; Topic the topic this engine serves.
	Self  sim.NodeID
	Topic sim.Topic
	// KeyLen is the system-wide publication key width m (Section 4.2).
	KeyLen uint8
	// RingNeighbors returns the current direct ring neighbours (left,
	// right, ring) — the anti-entropy gossip partners.
	RingNeighbors func() []proto.Tuple
	// FloodTargets returns all neighbours in ER ∪ ES for PublishNew.
	FloodTargets func() []sim.NodeID
	// OnDeliver, if non-nil, is invoked exactly once per publication that
	// becomes locally known (once per time it becomes known: with a
	// HistoryCap an evicted publication can be relearned through
	// anti-entropy and delivered again — at-least-once in bounded mode).
	// On ordered topics, deliveries pass through the reorder buffer first.
	OnDeliver func(proto.Publication)
	// OnDeliverMeta, if non-nil, is invoked after OnDeliver with the
	// delivery's ordering provenance (a zero Meta on best-effort topics).
	OnDeliverMeta func(proto.Publication, ordering.Meta)

	// Mode is the topic's delivery mode. BestEffort leaves the delivery
	// path exactly as the paper specifies; FIFO/Causal interpose a bounded
	// self-stabilizing reorder buffer (internal/ordering).
	Mode ordering.Mode

	// HistoryCap bounds the number of publications retained in the trie;
	// when exceeded, the publications with the smallest keys are evicted.
	// 0 means unlimited — the paper's model, where the trie grows
	// monotonically ("no publish messages are deleted", Theorem 17).
	// Eviction by smallest key keeps the retained set a pure function of
	// the known set, so capped replicas still converge to identical tries.
	HistoryCap int

	// DisableFlooding turns off the PublishNew layer (ablation: anti-entropy
	// only, as in the convergence proof of Theorem 17).
	DisableFlooding bool
	// DisableAntiEntropy turns off the periodic CheckTrie exchange
	// (ablation: flooding only, which cannot serve late joiners).
	DisableAntiEntropy bool
}

// Engine is the per-topic publication state machine of one subscriber.
type Engine struct {
	cfg Config
	t   *trie.Trie

	// Ordered-mode state (nil / zero on best-effort topics).
	ord     *ordering.Buffer
	nextSeq uint64
	ticks   uint64
}

// NewEngine creates an engine with an empty trie.
func NewEngine(cfg Config) *Engine {
	if cfg.KeyLen == 0 {
		cfg.KeyLen = 64
	}
	e := &Engine{cfg: cfg, t: trie.New(cfg.KeyLen)}
	if cfg.Mode != ordering.BestEffort {
		e.ord = ordering.New(cfg.Mode, cfg.Self, e.emit)
	}
	return e
}

// Trie exposes the underlying Patricia trie (read-only use).
func (e *Engine) Trie() *trie.Trie { return e.t }

// Publications returns all locally known publications in key order.
func (e *Engine) Publications() []proto.Publication { return e.t.All() }

// emit hands one delivery to the application callbacks.
func (e *Engine) emit(p proto.Publication, m ordering.Meta) {
	if e.cfg.OnDeliver != nil {
		e.cfg.OnDeliver(p)
	}
	if e.cfg.OnDeliverMeta != nil {
		e.cfg.OnDeliverMeta(p, m)
	}
}

// Publish creates, stores and floods a new publication authored by the
// host ("whenever a subscriber u generates a new publication p, u inserts
// p into u.T and broadcasts p over the ring"). On ordered topics the flood
// body additionally carries the publisher's sequence number (and, in
// causal mode, the bounded causal barrier).
func (e *Engine) Publish(ctx sim.Context, payload string) proto.Publication {
	p := trie.NewPublication(e.cfg.KeyLen, e.cfg.Self, payload)
	if e.ord == nil {
		e.insert(p)
		if !e.cfg.DisableFlooding {
			// Box the body once: every flood target receives the same value,
			// so the per-edge interface conversion would be pure allocation.
			var body any = proto.PublishNew{Pub: p}
			for _, id := range e.cfg.FloodTargets() {
				ctx.Send(id, e.cfg.Topic, body)
			}
		}
		return p
	}
	e.nextSeq++
	seq := e.nextSeq
	barrier := e.ord.Barrier() // nil unless causal
	var body any
	if e.cfg.Mode == ordering.Causal {
		body = proto.PublishCausal{Pub: p, Seq: seq, Barrier: barrier}
	} else {
		body = proto.PublishSeq{Pub: p, Seq: seq}
	}
	if !e.cfg.DisableFlooding {
		for _, id := range e.cfg.FloodTargets() {
			ctx.Send(id, e.cfg.Topic, body)
		}
	}
	if e.insertStore(p) {
		e.ord.Arrive(p, seq, barrier)
	}
	return p
}

// insertStore inserts p into the trie (with HistoryCap eviction) without
// delivering it. It reports whether p was new.
func (e *Engine) insertStore(p proto.Publication) bool {
	if p.Key.Len != e.t.KeyLen() {
		return false // corrupted message with a foreign key width
	}
	if !e.t.Insert(p) {
		return false
	}
	for e.cfg.HistoryCap > 0 && e.t.Len() > e.cfg.HistoryCap {
		e.t.DeleteMin()
	}
	return true
}

// insert stores p and delivers it along the unsequenced path: directly on
// best-effort topics, flagged Recovered through the buffer on ordered
// topics (anti-entropy carries no ordering metadata).
func (e *Engine) insert(p proto.Publication) bool {
	if !e.insertStore(p) {
		return false
	}
	if e.ord != nil {
		e.ord.Recovered(p)
	} else {
		e.emit(p, ordering.Meta{})
	}
	return true
}

// CorruptOrdering scrambles the engine's ordering state in place — the
// corrupt-ordering chaos fault. No-op on best-effort topics, which hold no
// ordering state.
func (e *Engine) CorruptOrdering(rng *rand.Rand) {
	if e.ord == nil {
		return
	}
	e.ord.Corrupt(rng)
	if rng.Intn(2) == 0 {
		// Scramble the publisher counter too. Downward makes receivers see
		// "ancient" sequences (their ResyncAfter run resyncs them);
		// upward makes them declare a gap lost and jump.
		if rng.Intn(2) == 0 && e.nextSeq > 0 {
			e.nextSeq = uint64(rng.Int63n(int64(e.nextSeq + 1)))
		} else {
			e.nextSeq += uint64(rng.Intn(4 * ordering.Window))
		}
	}
}

// OnTimeout is the PublishTimeout action (Algorithm 5 lines 1–4): send our
// root summary to one random direct ring neighbour. On ordered topics it
// also drives the reorder buffer's clock (age-out of held publications).
func (e *Engine) OnTimeout(ctx sim.Context) {
	if e.ord != nil {
		e.ticks++
		e.ord.Tick(e.ticks)
	}
	if e.cfg.DisableAntiEntropy {
		return
	}
	nbs := e.cfg.RingNeighbors()
	if len(nbs) == 0 {
		return
	}
	root, ok := e.t.RootSummary()
	if !ok {
		return // empty trie: our neighbour's probe toward us will find the gap
	}
	nb := nbs[ctx.Rand().Intn(len(nbs))]
	ctx.Send(nb.Ref, e.cfg.Topic, proto.CheckTrie{Sender: e.cfg.Self, Nodes: []proto.NodeSummary{root}})
}

// OnMessage handles publication-protocol messages; it reports false for
// bodies that belong to other protocols.
func (e *Engine) OnMessage(ctx sim.Context, m sim.Message) bool {
	switch b := m.Body.(type) {
	case proto.CheckTrie:
		e.checkTrie(ctx, b.Sender, b.Nodes)
	case proto.CheckAndPublish:
		e.checkTrie(ctx, b.Sender, b.Nodes)
		if pubs := e.t.CollectPrefix(b.Prefix); len(pubs) > 0 {
			ctx.Send(b.Sender, e.cfg.Topic, proto.PublishBatch{Pubs: pubs})
		}
	case proto.PublishBatch:
		for _, p := range b.Pubs {
			e.insert(p)
		}
	case proto.PublishNew:
		if e.insert(b.Pub) && !e.cfg.DisableFlooding {
			// Forward the received body as-is: m.Body is already boxed, so
			// the whole fan-out costs zero allocations.
			for _, id := range e.cfg.FloodTargets() {
				if id != m.From {
					ctx.Send(id, e.cfg.Topic, m.Body)
				}
			}
		}
	case proto.PublishSeq:
		e.onSequenced(ctx, m, b.Pub, b.Seq, nil)
	case proto.PublishCausal:
		e.onSequenced(ctx, m, b.Pub, b.Seq, b.Barrier)
	default:
		return false
	}
	return true
}

// onSequenced handles a flooded ordered publication: store, deliver
// through the reorder buffer, forward. A sequenced frame reaching a
// best-effort engine (mode drift between deployments, or a topic whose
// mode the supervisor has not yet replicated here) degrades gracefully to
// best-effort delivery — the metadata is ignored, never an error.
func (e *Engine) onSequenced(ctx sim.Context, m sim.Message, p proto.Publication, seq uint64, barrier []proto.BarrierEntry) {
	if !e.insertStore(p) {
		return
	}
	if e.ord != nil {
		e.ord.Arrive(p, seq, barrier)
	} else {
		e.emit(p, ordering.Meta{})
	}
	if !e.cfg.DisableFlooding {
		for _, id := range e.cfg.FloodTargets() {
			if id != m.From {
				ctx.Send(id, e.cfg.Topic, m.Body)
			}
		}
	}
}

// checkTrie implements the three cases of the CheckTrie action
// (Section 4.2): for each received (label, hash) summary,
//
//  1. equal node hashes — subtries match, no reply;
//  2. differing hashes on an inner node — descend by replying with the two
//     child summaries;
//  3. label unknown here — the sender's subtrie is missing locally: reply
//     CheckAndPublish naming the node below the divergence (to continue the
//     walk) and the prefix of the publications we lack.
func (e *Engine) checkTrie(ctx sim.Context, sender sim.NodeID, nodes []proto.NodeSummary) {
	if sender == e.cfg.Self || sender == sim.None {
		return
	}
	for _, ns := range nodes {
		v := e.t.Find(ns.Label)
		if v != nil {
			if v.Hash == ns.Hash {
				continue // subtries equal
			}
			if !v.IsLeaf() {
				ctx.Send(sender, e.cfg.Topic, proto.CheckTrie{
					Sender: e.cfg.Self,
					Nodes:  []proto.NodeSummary{v.Child[0].Summary(), v.Child[1].Summary()},
				})
			}
			// Leaf with differing hash cannot happen under a
			// collision-resistant h; nothing sensible to do.
			continue
		}
		// Case (iii): no node labelled ns.Label. Find c, the shallowest node
		// whose label properly extends it.
		c := e.t.FindAtOrBelow(ns.Label)
		if c != nil {
			b1 := trie.KeyBit(c.Label, ns.Label.Len)
			missing := trie.AppendBit(ns.Label, 1-b1)
			ctx.Send(sender, e.cfg.Topic, proto.CheckAndPublish{
				Sender: e.cfg.Self,
				Nodes:  []proto.NodeSummary{c.Summary()},
				Prefix: missing,
			})
		} else {
			// Nothing under this prefix at all: ask for everything below it.
			ctx.Send(sender, e.cfg.Topic, proto.CheckAndPublish{
				Sender: e.cfg.Self,
				Prefix: ns.Label,
			})
		}
	}
}
