package pubsub

import (
	"fmt"
	"testing"

	"sspubsub/internal/sim"
	"sspubsub/internal/simtest"
)

// mkCapped builds a lone engine (no neighbours) with the given HistoryCap.
func mkCapped(self sim.NodeID, cap int) (*Engine, *simtest.Ctx) {
	e := NewEngine(Config{
		Self:            self,
		Topic:           tp,
		KeyLen:          64,
		HistoryCap:      cap,
		DisableFlooding: true,
	})
	return e, simtest.NewCtx(self)
}

// Regression test for the unbounded-history leak: with a HistoryCap set, a
// subscriber under sustained publish load must retain at most HistoryCap
// publications and its trie memory must plateau exactly — the footprint
// after 10× more publishes is byte-identical, not merely "close".
func TestHistoryCapBoundsMemory(t *testing.T) {
	const cap = 64
	e, ctx := mkCapped(10, cap)

	publish := func(n int) {
		for i := 0; i < n; i++ {
			// Fixed-width payloads so the at-cap footprint is a constant.
			e.Publish(ctx, fmt.Sprintf("payload-%08d", i))
		}
	}

	publish(2 * cap) // warm past the cap
	if got := e.Trie().Len(); got != cap {
		t.Fatalf("retained %d publications, want exactly %d", got, cap)
	}
	plateau := e.Trie().MemoryBytes()
	if plateau == 0 {
		t.Fatal("MemoryBytes() = 0 for a non-empty trie")
	}

	// 10× more load: count and memory must not move at all.
	for round := 0; round < 10; round++ {
		publish(2 * cap)
		if got := e.Trie().Len(); got != cap {
			t.Fatalf("round %d: retained %d publications, want %d", round, got, cap)
		}
		if got := e.Trie().MemoryBytes(); got != plateau {
			t.Fatalf("round %d: MemoryBytes() = %d, want flat at %d", round, got, plateau)
		}
	}
}

// HistoryCap = 0 must preserve the paper's monotone store: everything is
// retained and memory grows with every publication.
func TestHistoryCapZeroIsUnlimited(t *testing.T) {
	e, ctx := mkCapped(10, 0)
	const n = 500
	prev := uint64(0)
	for i := 0; i < n; i++ {
		e.Publish(ctx, fmt.Sprintf("payload-%08d", i))
		if got := e.Trie().MemoryBytes(); got <= prev {
			t.Fatalf("publication %d: MemoryBytes() = %d, not growing past %d", i, got, prev)
		} else {
			prev = got
		}
	}
	if got := e.Trie().Len(); got != n {
		t.Fatalf("retained %d publications, want all %d", got, n)
	}
}

// Eviction by smallest key keeps the retained set a pure function of the
// known set: two capped replicas that learn the same publications in
// different orders end with identical tries (equal root hashes), so
// anti-entropy between them stays silent.
func TestHistoryCapReplicasConverge(t *testing.T) {
	const cap = 16
	a, ac := mkCapped(10, cap)
	b, _ := mkCapped(11, cap)

	var pubs []string
	for i := 0; i < 5*cap; i++ {
		pubs = append(pubs, fmt.Sprintf("payload-%08d", i))
	}
	for _, p := range pubs {
		a.Publish(ac, p)
	}
	// b learns the exact same publications (keys are deterministic in
	// origin+payload) but in reverse order, evicting as it goes.
	full, fc := mkCapped(10, 0)
	for _, p := range pubs {
		full.Publish(fc, p)
	}
	stream := full.Trie().All()
	for i := len(stream) - 1; i >= 0; i-- {
		b.insert(stream[i])
	}

	if a.Trie().Len() != cap || b.Trie().Len() != cap {
		t.Fatalf("lens %d/%d, want %d", a.Trie().Len(), b.Trie().Len(), cap)
	}
	ra, okA := a.Trie().RootSummary()
	rb, okB := b.Trie().RootSummary()
	if !okA || !okB || ra.Hash != rb.Hash {
		t.Fatalf("capped replicas diverged: %x vs %x", ra.Hash, rb.Hash)
	}
}
