package core

import (
	"testing"

	"sspubsub/internal/label"
	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
	"sspubsub/internal/simtest"
)

const (
	supID sim.NodeID = 1
	tp    sim.Topic  = 1
)

func tup(lab string, id sim.NodeID) proto.Tuple {
	return proto.Tuple{L: label.MustParse(lab), Ref: id}
}

func newSub(id sim.NodeID) (*Subscriber, *simtest.Ctx) {
	return NewSubscriber(id, supID, tp), simtest.NewCtx(id)
}

func TestActionISubscribesWhenUnlabelled(t *testing.T) {
	s, c := newSub(10)
	s.OnTimeout(c)
	msgs := c.Take()
	if len(msgs) != 1 || msgs[0].To != supID {
		t.Fatalf("unlabelled node sent %v", msgs)
	}
	if _, ok := msgs[0].Body.(proto.Subscribe); !ok {
		t.Fatalf("want Subscribe, got %T", msgs[0].Body)
	}
}

func TestSetDataPlacesNeighbors(t *testing.T) {
	s, c := newSub(10)
	// Interior node: label 01 (1/4), pred 001 (1/8), succ 1 (1/2).
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{
		Pred: tup("001", 11), Label: label.MustParse("01"), Succ: tup("1", 12),
	}})
	if s.Label() != label.MustParse("01") {
		t.Fatalf("label = %s", s.Label())
	}
	if s.Left() != tup("001", 11) || s.Right() != tup("1", 12) || !s.Ring().IsBottom() {
		t.Fatalf("slots: left=%v right=%v ring=%v", s.Left(), s.Right(), s.Ring())
	}
}

func TestSetDataMinimumWrapsPredToRing(t *testing.T) {
	s, c := newSub(10)
	// Minimum node: label 0, pred is the maximum (11 = 3/4) → ring edge.
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{
		Pred: tup("11", 13), Label: label.MustParse("0"), Succ: tup("01", 12),
	}})
	if !s.Left().IsBottom() || s.Ring() != tup("11", 13) || s.Right() != tup("01", 12) {
		t.Fatalf("min slots: left=%v right=%v ring=%v", s.Left(), s.Right(), s.Ring())
	}
}

func TestSetDataMaximumWrapsSuccToRing(t *testing.T) {
	s, c := newSub(10)
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{
		Pred: tup("1", 12), Label: label.MustParse("11"), Succ: tup("0", 13),
	}})
	if !s.Right().IsBottom() || s.Ring() != tup("0", 13) || s.Left() != tup("1", 12) {
		t.Fatalf("max slots: left=%v right=%v ring=%v", s.Left(), s.Right(), s.Ring())
	}
}

func TestSetDataBottomClearsLabelOnly(t *testing.T) {
	s, c := newSub(10)
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{
		Pred: tup("001", 11), Label: label.MustParse("01"), Succ: tup("1", 12),
	}})
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{}})
	if !s.Label().IsBottom() {
		t.Fatal("label must clear on ⊥ config")
	}
	// Next timeout re-subscribes (action (i)).
	c.Take()
	s.OnTimeout(c)
	if msgs := c.Take(); len(msgs) != 1 {
		t.Fatalf("want re-subscribe, got %v", msgs)
	} else if _, ok := msgs[0].Body.(proto.Subscribe); !ok {
		t.Fatalf("want Subscribe, got %T", msgs[0].Body)
	}
}

// Action (iii): a stored neighbour circularly closer than the proposed one
// triggers a GetConfiguration on its behalf.
func TestActionIIIRequestsCloserNeighbor(t *testing.T) {
	s, c := newSub(10)
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{
		Pred: tup("001", 11), Label: label.MustParse("01"), Succ: tup("1", 12),
	}})
	// Simulate knowing an unrecorded node 99 at 0011 (3/16), closer to 1/4
	// than the database's 001 (1/8).
	s.linearize(c, tup("0011", 99))
	c.Take()
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{
		Pred: tup("001", 11), Label: label.MustParse("01"), Succ: tup("1", 12),
	}})
	var reqs []sim.NodeID
	for _, m := range c.Take() {
		if g, ok := m.Body.(proto.GetConfiguration); ok && m.To == supID {
			reqs = append(reqs, g.V)
		}
	}
	if len(reqs) != 1 || reqs[0] != 99 {
		t.Fatalf("action (iii) requests = %v, want [99]", reqs)
	}
}

func TestCheckCorrectsStaleLabel(t *testing.T) {
	s, c := newSub(10)
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{
		Pred: tup("001", 11), Label: label.MustParse("01"), Succ: tup("1", 12),
	}})
	c.Take()
	// Node 11 introduces itself but believes our label is 0011.
	s.OnMessage(c, sim.Message{From: 11, Topic: tp, Body: proto.Check{
		Sender: tup("001", 11), YourLabel: label.MustParse("0011"), Flag: proto.LIN,
	}})
	msgs := c.Take()
	if len(msgs) != 1 || msgs[0].To != 11 {
		t.Fatalf("msgs = %v", msgs)
	}
	in, ok := msgs[0].Body.(proto.Introduce)
	if !ok || in.C.L != label.MustParse("01") || in.C.Ref != 10 {
		t.Fatalf("correction = %v", msgs[0].Body)
	}
}

func TestCheckMatchingLabelActsAsIntroduction(t *testing.T) {
	s, c := newSub(10)
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{
		Label: label.MustParse("01"), Succ: tup("1", 12),
	}})
	c.Take()
	// A node at 001 introduces itself with our correct label: adopted left.
	s.OnMessage(c, sim.Message{From: 11, Topic: tp, Body: proto.Check{
		Sender: tup("001", 11), YourLabel: label.MustParse("01"), Flag: proto.LIN,
	}})
	if s.Left() != tup("001", 11) {
		t.Fatalf("left = %v", s.Left())
	}
}

func TestLinearizeAdoptAndDelegate(t *testing.T) {
	s, c := newSub(10)
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{
		Pred: tup("0001", 11), Label: label.MustParse("01"), Succ: tup("1", 12),
	}})
	c.Take()
	// 001 (1/8) lies between left 0001 (1/16) and us (1/4): adopt, delegate
	// the displaced 0001 to the new left neighbour.
	s.linearize(c, tup("001", 13))
	if s.Left() != tup("001", 13) {
		t.Fatalf("left = %v", s.Left())
	}
	msgs := c.Take()
	if len(msgs) != 1 || msgs[0].To != 13 {
		t.Fatalf("delegation = %v", msgs)
	}
	lin, ok := msgs[0].Body.(proto.Linearize)
	if !ok || lin.V != tup("0001", 11) {
		t.Fatalf("delegated %v", msgs[0].Body)
	}
	// 00001 (1/32) is farther than the current left: delegated toward it.
	s.linearize(c, tup("00001", 14))
	if s.Left() != tup("001", 13) {
		t.Fatal("left must not change")
	}
	msgs = c.Take()
	if len(msgs) != 1 || msgs[0].To != 13 {
		t.Fatalf("delegation = %v", msgs)
	}
}

func TestIntroduceToBottomNodeRefuses(t *testing.T) {
	s, c := newSub(10)
	s.OnMessage(c, sim.Message{From: 11, Topic: tp, Body: proto.Introduce{C: tup("01", 11), Flag: proto.LIN}})
	msgs := c.Take()
	if len(msgs) != 1 {
		t.Fatalf("msgs = %v", msgs)
	}
	rc, ok := msgs[0].Body.(proto.RemoveConnections)
	if !ok || rc.V != 10 || msgs[0].To != 11 {
		t.Fatalf("⊥ node must answer RemoveConnections(self), got %v", msgs[0])
	}
}

func TestRemoveConnectionsClearsSlots(t *testing.T) {
	s, c := newSub(10)
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{
		Pred: tup("001", 11), Label: label.MustParse("01"), Succ: tup("1", 12),
	}})
	s.OnMessage(c, sim.Message{From: 11, Topic: tp, Body: proto.RemoveConnections{V: 11}})
	if !s.Left().IsBottom() {
		t.Fatal("left not cleared")
	}
	if s.Right() != tup("1", 12) {
		t.Fatal("right must be untouched")
	}
}

func TestLeaveHandshake(t *testing.T) {
	s, c := newSub(10)
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{
		Pred: tup("001", 11), Label: label.MustParse("01"), Succ: tup("1", 12),
	}})
	c.Take()
	s.Leave(c)
	msgs := c.Take()
	if len(msgs) != 1 || msgs[0].To != supID {
		t.Fatalf("leave sent %v", msgs)
	}
	if _, ok := msgs[0].Body.(proto.Unsubscribe); !ok {
		t.Fatalf("want Unsubscribe, got %T", msgs[0].Body)
	}
	// While waiting, timeouts re-send the request.
	s.OnTimeout(c)
	if msgs := c.Take(); len(msgs) != 1 {
		t.Fatalf("retry = %v", msgs)
	}
	// Permission arrives: all neighbours are told to drop us.
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{}})
	if !s.Departed() {
		t.Fatal("not departed")
	}
	drops := map[sim.NodeID]bool{}
	for _, m := range c.Take() {
		if rc, ok := m.Body.(proto.RemoveConnections); ok && rc.V == 10 {
			drops[m.To] = true
		}
	}
	if !drops[11] || !drops[12] {
		t.Fatalf("RemoveConnections not sent to both neighbours: %v", drops)
	}
	// Departed instances are quiet on timeout.
	s.OnTimeout(c)
	if msgs := c.Take(); len(msgs) != 0 {
		t.Fatalf("departed node sent %v", msgs)
	}
}

// A SetData arriving while leaving must not resurrect the instance.
func TestLeaveIgnoresLateConfig(t *testing.T) {
	s, c := newSub(10)
	s.Leave(c)
	c.Take()
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{
		Pred: tup("001", 11), Label: label.MustParse("01"), Succ: tup("1", 12),
	}})
	if !s.Label().IsBottom() || s.Departed() {
		t.Fatal("late config must be ignored while leaving")
	}
}

func TestCircularNeighborsAtExtremes(t *testing.T) {
	s, c := newSub(10)
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{
		Pred: tup("11", 13), Label: label.MustParse("0"), Succ: tup("01", 12),
	}})
	c.Take()
	l, r := s.circularNeighbors()
	if l != tup("11", 13) || r != tup("01", 12) {
		t.Fatalf("circular neighbours = %v, %v", l, r)
	}
}

// Shortcut slots derive from the circular neighbours; stale slots are
// dropped and new ones appear as unknown (⊥ refs).
func TestShortcutSlotDerivation(t *testing.T) {
	s, c := newSub(10)
	// Node 01 (1/4) in SR(16): neighbours 0011 (3/16) and 0101 (5/16);
	// slots must be 001, 0, 011, 1 (the Section 3.2.2 running example).
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{
		Pred: tup("0011", 11), Label: label.MustParse("01"), Succ: tup("0101", 12),
	}})
	s.OnTimeout(c)
	c.Take()
	sc := s.Shortcuts()
	for _, want := range []string{"001", "0", "011", "1"} {
		if _, ok := sc[label.MustParse(want)]; !ok {
			t.Errorf("missing shortcut slot %s (have %v)", want, sc)
		}
	}
	if len(sc) != 4 {
		t.Errorf("slots = %v, want 4", sc)
	}
}

func TestIntroduceShortcutAdoptAndDisplace(t *testing.T) {
	s, c := newSub(10)
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{
		Pred: tup("0011", 11), Label: label.MustParse("01"), Succ: tup("0101", 12),
	}})
	s.OnTimeout(c)
	c.Take()
	// Adopt node 20 for slot 001.
	s.OnMessage(c, sim.Message{From: 99, Topic: tp, Body: proto.IntroduceShortcut{T: tup("001", 20)}})
	if s.Shortcuts()[label.MustParse("001")] != 20 {
		t.Fatalf("slot 001 = %v", s.Shortcuts())
	}
	// Replace with node 21: the displaced 20 is re-linearized (delegated
	// toward our left, since 001 < 01).
	s.OnMessage(c, sim.Message{From: 99, Topic: tp, Body: proto.IntroduceShortcut{T: tup("001", 21)}})
	if s.Shortcuts()[label.MustParse("001")] != 21 {
		t.Fatalf("slot 001 = %v", s.Shortcuts())
	}
	msgs := c.Take()
	found := false
	for _, m := range msgs {
		if lin, ok := m.Body.(proto.Linearize); ok && lin.V.Ref == 20 {
			found = true
		}
	}
	if !found {
		t.Fatalf("displaced occupant not re-linearized: %v", msgs)
	}
	// A label we hold no slot for is treated as a list candidate.
	s.OnMessage(c, sim.Message{From: 99, Topic: tp, Body: proto.IntroduceShortcut{T: tup("00001", 22)}})
	if _, ok := s.Shortcuts()[label.MustParse("00001")]; ok {
		t.Fatal("foreign slot must not be created")
	}
}

// A deepest-level node (no shortcuts) introduces its two ring neighbours
// to each other on Timeout — the bottom-up construction of Lemma 12.
func TestLevelPairIntroduction(t *testing.T) {
	s, c := newSub(10)
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{
		Pred: tup("001", 11), Label: label.MustParse("0011"), Succ: tup("01", 12),
	}})
	c.Take()
	s.OnTimeout(c)
	intros := map[sim.NodeID]proto.Tuple{}
	for _, m := range c.Take() {
		if is, ok := m.Body.(proto.IntroduceShortcut); ok {
			intros[m.To] = is.T
		}
	}
	if intros[11] != tup("01", 12) || intros[12] != tup("001", 11) {
		t.Fatalf("level-pair introductions = %v", intros)
	}
}

// The minimum's closure-edge announcement travels rightward (CYC routing).
func TestCycRouting(t *testing.T) {
	s, c := newSub(10)
	// Interior node 01 with left and right.
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{
		Pred: tup("001", 11), Label: label.MustParse("01"), Succ: tup("1", 12),
	}})
	c.Take()
	// A CYC candidate smaller than us travels toward the maximum (right).
	s.OnMessage(c, sim.Message{From: 11, Topic: tp, Body: proto.Introduce{C: tup("0", 13), Flag: proto.CYC}})
	msgs := c.Take()
	if len(msgs) != 1 || msgs[0].To != 12 {
		t.Fatalf("CYC routing = %v", msgs)
	}
	in, ok := msgs[0].Body.(proto.Introduce)
	if !ok || in.Flag != proto.CYC || in.C != tup("0", 13) {
		t.Fatalf("forwarded %v", msgs[0].Body)
	}
}

func TestCycAdoptedAtMaximum(t *testing.T) {
	s, c := newSub(10)
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{
		Pred: tup("01", 11), Label: label.MustParse("11"), Succ: proto.Tuple{},
	}})
	c.Take()
	s.OnMessage(c, sim.Message{From: 11, Topic: tp, Body: proto.Introduce{C: tup("0", 13), Flag: proto.CYC}})
	if s.Ring() != tup("0", 13) {
		t.Fatalf("ring = %v", s.Ring())
	}
	// A farther CYC candidate replaces it; the nearer is re-linearized.
	s.OnMessage(c, sim.Message{From: 11, Topic: tp, Body: proto.Introduce{C: tup("0", 9), Flag: proto.CYC}})
	if s.Ring().Ref != 13 && s.Ring().Ref != 9 {
		t.Fatalf("ring = %v", s.Ring())
	}
}

func TestDegreeCountsDistinctNeighbors(t *testing.T) {
	s, c := newSub(10)
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{
		Pred: tup("0011", 11), Label: label.MustParse("01"), Succ: tup("0101", 12),
	}})
	s.OnTimeout(c)
	c.Take()
	if got := s.Degree(); got != 2 { // slots exist but refs unknown
		t.Fatalf("degree = %d, want 2", got)
	}
	s.OnMessage(c, sim.Message{From: 99, Topic: tp, Body: proto.IntroduceShortcut{T: tup("001", 20)}})
	if got := s.Degree(); got != 3 {
		t.Fatalf("degree = %d, want 3", got)
	}
}

// Theorem 5's schedule: action (ii) fires with probability 1/(2^k·k²).
func TestProbeProbabilitySchedule(t *testing.T) {
	s, c := newSub(10)
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{
		Pred: tup("001", 11), Label: label.MustParse("01"), Succ: tup("1", 12),
	}})
	c.Take()
	const rounds = 200000
	probes := 0
	for i := 0; i < rounds; i++ {
		s.superviseProbe(c)
		probes += len(c.Take())
	}
	want := 1.0 / (4 * 4) // k = 2
	got := float64(probes) / rounds
	if got < want*0.8 || got > want*1.2 {
		t.Errorf("probe rate %.5f, want ≈ %.5f", got, want)
	}
}

// Action (iv): locally-minimal nodes without label l(0) probe with
// probability 1/2; the legitimate minimum (label 0) must not.
func TestActionIVTrigger(t *testing.T) {
	s, c := newSub(10)
	s.ForceState(label.MustParse("0101"), proto.Tuple{}, tup("011", 12), proto.Tuple{}, nil)
	probes := 0
	for i := 0; i < 1000; i++ {
		s.superviseProbe(c)
		probes += len(c.Take())
	}
	if probes < 400 || probes > 600 {
		t.Errorf("locally-minimal node probed %d/1000, want ≈ 500", probes)
	}
	// The legitimate label-0 node never uses action (iv)…
	s.ForceState(label.MustParse("0"), proto.Tuple{}, tup("01", 12), tup("11", 13), nil)
	probes = 0
	for i := 0; i < 1000; i++ {
		s.superviseProbe(c)
		probes += len(c.Take())
	}
	// …only action (ii) with k=1 → p = 1/2. It must not probe at rate 1.
	if probes < 400 || probes > 600 {
		t.Errorf("label-0 node probed %d/1000, want ≈ 500 (action (ii) k=1)", probes)
	}
	// Ablation: DisableActionIV silences the locally-minimal probe (the
	// node falls through to action (ii) with its long label).
	s.DisableActionIV = true
	s.ForceState(label.MustParse("0101"), proto.Tuple{}, tup("011", 12), proto.Tuple{}, nil)
	probes = 0
	for i := 0; i < 1000; i++ {
		s.superviseProbe(c)
		probes += len(c.Take())
	}
	if probes > 100 {
		t.Errorf("disabled action (iv) still probed %d/1000", probes)
	}
}

// Duplicate-label candidates are never adopted; they are referred to the
// supervisor (the zombie-reference guard).
func TestDuplicateLabelReferredToSupervisor(t *testing.T) {
	s, c := newSub(10)
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{
		Pred: tup("001", 11), Label: label.MustParse("01"), Succ: tup("1", 12),
	}})
	c.Take()
	s.linearize(c, tup("01", 66))
	if s.Left().Ref == 66 || s.Right().Ref == 66 {
		t.Fatal("duplicate-label candidate was adopted")
	}
	msgs := c.Take()
	if len(msgs) != 1 || msgs[0].To != supID {
		t.Fatalf("msgs = %v", msgs)
	}
	if g, ok := msgs[0].Body.(proto.GetConfiguration); !ok || g.V != 66 {
		t.Fatalf("referral = %v", msgs[0].Body)
	}
}

func TestFloodTargetsDeduped(t *testing.T) {
	s, c := newSub(10)
	// n = 2: the peer is simultaneously right and ring neighbour.
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{
		Pred: tup("1", 11), Label: label.MustParse("0"), Succ: tup("1", 11),
	}})
	targets := s.FloodTargets()
	if len(targets) != 1 || targets[0] != 11 {
		t.Fatalf("targets = %v, want exactly [11]", targets)
	}
	if s.Degree() != 1 {
		t.Fatalf("degree = %d", s.Degree())
	}
}

func TestRemoveConnectionsClearsShortcutRefs(t *testing.T) {
	s, c := newSub(10)
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{
		Pred: tup("0011", 11), Label: label.MustParse("01"), Succ: tup("0101", 12),
	}})
	s.OnTimeout(c)
	s.OnMessage(c, sim.Message{From: 99, Topic: tp, Body: proto.IntroduceShortcut{T: tup("001", 20)}})
	c.Take()
	s.OnMessage(c, sim.Message{From: 20, Topic: tp, Body: proto.RemoveConnections{V: 20}})
	if got := s.Shortcuts()[label.MustParse("001")]; got != sim.None {
		t.Fatalf("shortcut ref not cleared: %d", got)
	}
	// The slot itself must survive (it is derived from our neighbours).
	if _, ok := s.Shortcuts()[label.MustParse("001")]; !ok {
		t.Fatal("derived slot removed")
	}
}

func TestCorrectStoredLabelClearsStaleShortcutSlots(t *testing.T) {
	s, c := newSub(10)
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{
		Pred: tup("0011", 11), Label: label.MustParse("01"), Succ: tup("0101", 12),
	}})
	s.OnTimeout(c)
	// Slot 001 holds node 20…
	s.OnMessage(c, sim.Message{From: 99, Topic: tp, Body: proto.IntroduceShortcut{T: tup("001", 20)}})
	c.Take()
	// …but node 20 actually carries label 00011: any introduction carrying
	// its true label must clear the stale slot.
	s.OnMessage(c, sim.Message{From: 20, Topic: tp, Body: proto.Linearize{V: tup("00011", 20)}})
	if got := s.Shortcuts()[label.MustParse("001")]; got != sim.None {
		t.Fatalf("stale shortcut slot kept ref %d", got)
	}
}

func TestApplyTokenIdempotent(t *testing.T) {
	s, c := newSub(10)
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{
		Pred: tup("001", 11), Label: label.MustParse("01"), Succ: tup("1", 12),
	}})
	v := s.Version()
	s.ApplyToken(label.MustParse("01"), tup("001", 11))
	if s.Version() != v {
		t.Fatal("matching ApplyToken mutated state (closure violation)")
	}
	// Position 0: clears left.
	s.ApplyToken(label.MustParse("0"), proto.Tuple{})
	if !s.Left().IsBottom() || s.Label() != label.MustParse("0") {
		t.Fatalf("pos-0 token: label=%s left=%v", s.Label(), s.Left())
	}
	// Departed instances ignore tokens.
	s.Leave(c)
	s.OnMessage(c, sim.Message{Topic: tp, Body: proto.SetData{}})
	v = s.Version()
	s.ApplyToken(label.MustParse("11"), tup("1", 12))
	if s.Version() != v {
		t.Fatal("departed instance accepted a token")
	}
}

func TestClientRejectsForeignTopicTraffic(t *testing.T) {
	cl := NewClient(10, supID, Options{})
	c := simtest.NewCtx(10)
	cl.OnMessage(c, sim.Message{From: 11, Topic: 9, Body: proto.Check{
		Sender: tup("01", 11), YourLabel: label.MustParse("1"), Flag: proto.LIN,
	}})
	msgs := c.Take()
	if len(msgs) != 1 {
		t.Fatalf("msgs = %v", msgs)
	}
	rc, ok := msgs[0].Body.(proto.RemoveConnections)
	if !ok || rc.V != 10 || msgs[0].To != 11 {
		t.Fatalf("foreign-topic traffic must be refused with RemoveConnections, got %v", msgs[0])
	}
	// Publication traffic for unknown topics is silently ignored.
	cl.OnMessage(c, sim.Message{From: 11, Topic: 9, Body: proto.PublishNew{}})
	if msgs := c.Take(); len(msgs) != 0 {
		t.Fatalf("pub traffic answered: %v", msgs)
	}
}
