package core

import (
	"math/rand"
	"sort"
	"sync"

	"sspubsub/internal/label"
	"sspubsub/internal/ordering"
	"sspubsub/internal/proto"
	"sspubsub/internal/pubsub"
	"sspubsub/internal/sim"
)

// Control messages a client sends to itself (through the ordinary message
// channel, so application commands work identically under the deterministic
// scheduler and the live runtime).

// JoinTopic starts a BuildSR instance for the envelope's topic.
type JoinTopic struct{}

// LeaveTopic begins the unsubscribe handshake for the envelope's topic.
type LeaveTopic struct{}

// PublishCmd publishes a payload on the envelope's topic.
type PublishCmd struct{ Payload string }

// Options configure a client's per-topic instances.
type Options struct {
	// KeyLen is the publication key width m (default 64).
	KeyLen uint8
	// OnDeliver is invoked once per publication that becomes known for a
	// topic the client subscribes to. It runs inside the protocol handler:
	// it must not call back into the Client.
	OnDeliver func(sim.Topic, proto.Publication)

	// DeliveryMode selects the per-topic delivery discipline (best-effort,
	// FIFO per publisher, or causal — see internal/ordering). It applies to
	// every topic this client joins.
	DeliveryMode ordering.Mode

	// OnDeliverTrace, if non-nil, receives every delivery with its ordering
	// provenance. Options are shared across a deployment's clients, so the
	// delivering node is passed explicitly. Same constraints as OnDeliver.
	OnDeliverTrace func(node sim.NodeID, t sim.Topic, p proto.Publication, m ordering.Meta)

	// SupervisorFor, if non-nil, routes each topic to its responsible
	// supervisor (the multi-supervisor extension of Section 1.3); the
	// default supervisor is used otherwise.
	SupervisorFor func(sim.Topic) sim.NodeID

	// Supervisors is the static supervisor plane (all supervisor node IDs).
	// With two or more, subscribers re-home to a topic's current owner on
	// supervisor failover and probe the plane when their owner goes silent;
	// empty or single-entry sets disable both (nothing to fail over to).
	Supervisors []sim.NodeID

	// HistoryCap bounds each topic trie to the newest-keyed HistoryCap
	// publications (0 = unlimited, the paper's monotone store). See
	// pubsub.Config.HistoryCap.
	HistoryCap int

	// Ablation switches (see DESIGN.md).
	DisableFlooding    bool
	DisableAntiEntropy bool
	DisableActionIV    bool
	ProbeProb          func(k int) float64
}

// Client is the sim.Handler for one physical subscriber node: it routes
// messages to per-topic Subscriber instances and their publication engines
// (Section 4: "by assigning the topic number to each message that is sent
// out, we can identify the appropriate protocol at the receiver").
type Client struct {
	mu   sync.Mutex
	id   sim.NodeID
	sup  sim.NodeID
	opts Options
	inst map[sim.Topic]*Instance
}

// Instance pairs one topic's overlay protocol with its publication engine.
type Instance struct {
	Sub *Subscriber
	Eng *pubsub.Engine
}

// NewClient creates a client with no subscriptions.
func NewClient(id, supervisor sim.NodeID, opts Options) *Client {
	if opts.KeyLen == 0 {
		opts.KeyLen = 64
	}
	return &Client{id: id, sup: supervisor, opts: opts, inst: make(map[sim.Topic]*Instance)}
}

// ID returns the client's node ID.
func (c *Client) ID() sim.NodeID { return c.id }

func (c *Client) ensure(t sim.Topic) *Instance {
	if in, ok := c.inst[t]; ok {
		return in
	}
	sup := c.sup
	if c.opts.SupervisorFor != nil {
		if alt := c.opts.SupervisorFor(t); alt != sim.None {
			sup = alt
		}
	}
	sub := NewSubscriber(c.id, sup, t)
	sub.SetPlane(c.opts.Supervisors)
	sub.DisableActionIV = c.opts.DisableActionIV
	sub.ProbeProb = c.opts.ProbeProb
	cfg := pubsub.Config{
		Self:               c.id,
		Topic:              t,
		KeyLen:             c.opts.KeyLen,
		RingNeighbors:      sub.RingNeighbors,
		FloodTargets:       sub.FloodTargets,
		DisableFlooding:    c.opts.DisableFlooding,
		DisableAntiEntropy: c.opts.DisableAntiEntropy,
		HistoryCap:         c.opts.HistoryCap,
		Mode:               c.opts.DeliveryMode,
	}
	if c.opts.OnDeliver != nil {
		topic := t
		cfg.OnDeliver = func(p proto.Publication) { c.opts.OnDeliver(topic, p) }
	}
	if c.opts.OnDeliverTrace != nil {
		topic := t
		cfg.OnDeliverMeta = func(p proto.Publication, m ordering.Meta) {
			c.opts.OnDeliverTrace(c.id, topic, p, m)
		}
	}
	in := &Instance{Sub: sub, Eng: pubsub.NewEngine(cfg)}
	c.inst[t] = in
	return in
}

// OnTimeout drives every live instance's periodic actions.
func (c *Client) OnTimeout(ctx sim.Context) {
	c.mu.Lock()
	defer c.mu.Unlock()
	topics := make([]sim.Topic, 0, len(c.inst))
	for t := range c.inst {
		topics = append(topics, t)
	}
	sort.Slice(topics, func(i, j int) bool { return topics[i] < topics[j] })
	for _, t := range topics {
		in := c.inst[t]
		in.Sub.OnTimeout(ctx)
		if !in.Sub.Departed() {
			in.Eng.OnTimeout(ctx)
		}
	}
}

// OnMessage routes a message to the right per-topic instance, handling the
// client's own control commands first.
func (c *Client) OnMessage(ctx sim.Context, m sim.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch b := m.Body.(type) {
	case JoinTopic:
		in := c.ensure(m.Topic)
		if in.Sub.Departed() {
			// Re-join after a completed unsubscribe: start a fresh instance
			// (the departed one only existed to answer residual
			// introductions with RemoveConnections).
			delete(c.inst, m.Topic)
			in = c.ensure(m.Topic)
		}
		if in.Sub.Label().IsBottom() {
			ctx.Send(in.Sub.Supervisor(), m.Topic, proto.Subscribe{V: c.id})
		}
		return
	case LeaveTopic:
		if in, ok := c.inst[m.Topic]; ok {
			in.Sub.Leave(ctx)
		}
		return
	case PublishCmd:
		if in, ok := c.inst[m.Topic]; ok && !in.Sub.Departed() {
			in.Eng.Publish(ctx, b.Payload)
		}
		return
	}
	in, ok := c.inst[m.Topic]
	if !ok {
		// Topology traffic for a topic we never joined (corrupted initial
		// channels): behave like a ⊥-labelled node and ask the sender to
		// drop its edges to us. RemoveConnections never triggers replies,
		// so this cannot loop.
		switch m.Body.(type) {
		case proto.Check, proto.Introduce, proto.Linearize, proto.IntroduceShortcut, proto.SetData:
			if m.From != sim.None && m.From != c.id {
				ctx.Send(m.From, m.Topic, proto.RemoveConnections{V: c.id})
			}
		}
		return
	}
	if in.Eng.OnMessage(ctx, m) {
		return
	}
	in.Sub.OnMessage(ctx, m)
}

// ---- thread-safe introspection ----

// Topics returns the topics with an instance, sorted.
func (c *Client) Topics() []sim.Topic {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]sim.Topic, 0, len(c.inst))
	for t := range c.inst {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Joined reports whether the client has a live (non-departed) instance.
func (c *Client) Joined(t sim.Topic) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	in, ok := c.inst[t]
	return ok && !in.Sub.Departed()
}

// Labelled reports whether the client currently holds a non-⊥ label for
// the topic. Unlike StateOf it allocates nothing — the scale harness polls
// it across 10^5+ subscribers every round, where StateOf's shortcut-map
// copy would dominate the run.
func (c *Client) Labelled(t sim.Topic) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	in, ok := c.inst[t]
	return ok && !in.Sub.Departed() && !in.Sub.Label().IsBottom()
}

// ReportsTo returns the supervisor the client currently believes owns the
// topic (sim.None without an instance). Allocation-free like Labelled —
// the scale harness' failover probe polls it across 10^5+ subscribers.
func (c *Client) ReportsTo(t sim.Topic) sim.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	in, ok := c.inst[t]
	if !ok {
		return sim.None
	}
	return in.Sub.Supervisor()
}

// CurrentLabel returns the client's label for the topic (⊥ without an
// instance), without StateOf's allocations.
func (c *Client) CurrentLabel(t sim.Topic) label.Label {
	c.mu.Lock()
	defer c.mu.Unlock()
	in, ok := c.inst[t]
	if !ok {
		return label.Bottom
	}
	return in.Sub.Label()
}

// PublicationCount returns the number of locally known publications for
// the topic without materializing them (the scale harness' fan-out probe).
func (c *Client) PublicationCount(t sim.Topic) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	in, ok := c.inst[t]
	if !ok {
		return 0
	}
	return in.Eng.Trie().Len()
}

// Departed reports whether an unsubscribe completed for the topic.
func (c *Client) Departed(t sim.Topic) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	in, ok := c.inst[t]
	return ok && in.Sub.Departed()
}

// State is a read-only snapshot of one instance's explicit protocol state.
type State struct {
	Label     label.Label
	Left      proto.Tuple
	Right     proto.Tuple
	Ring      proto.Tuple
	Shortcuts map[label.Label]sim.NodeID
	Version   uint64
	Departed  bool
	// Leaving marks an unsubscribe in flight (requested, not yet granted).
	Leaving bool
	// Sup is the supervisor the instance currently reports to (the believed
	// topic owner on a sharded plane); Epoch is the ownership era of the
	// last accepted configuration.
	Sup   sim.NodeID
	Epoch uint64
}

// StateOf snapshots the instance for topic t; ok is false if none exists.
func (c *Client) StateOf(t sim.Topic) (State, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	in, ok := c.inst[t]
	if !ok {
		return State{}, false
	}
	return State{
		Label:     in.Sub.Label(),
		Left:      in.Sub.Left(),
		Right:     in.Sub.Right(),
		Ring:      in.Sub.Ring(),
		Shortcuts: in.Sub.Shortcuts(),
		Version:   in.Sub.Version(),
		Departed:  in.Sub.Departed(),
		Leaving:   in.Sub.Leaving(),
		Sup:       in.Sub.Supervisor(),
		Epoch:     in.Sub.Epoch(),
	}, true
}

// Publications returns the known publications for a topic, in key order.
func (c *Client) Publications(t sim.Topic) []proto.Publication {
	c.mu.Lock()
	defer c.mu.Unlock()
	in, ok := c.inst[t]
	if !ok {
		return nil
	}
	return in.Eng.Publications()
}

// TrieRootHash returns the root hash of the topic's trie (zero for empty).
func (c *Client) TrieRootHash(t sim.Topic) [16]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	in, ok := c.inst[t]
	if !ok {
		return [16]byte{}
	}
	if root, ok := in.Eng.Trie().RootSummary(); ok {
		return root.Hash
	}
	return [16]byte{}
}

// Degree returns the number of distinct known overlay neighbours.
func (c *Client) Degree(t sim.Topic) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	in, ok := c.inst[t]
	if !ok {
		return 0
	}
	return in.Sub.Degree()
}

// CorruptOrdering scrambles the client's ordering state for topic t — the
// corrupt-ordering chaos fault. No-op on best-effort topics or without an
// instance.
func (c *Client) CorruptOrdering(t sim.Topic, rng *rand.Rand) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if in, ok := c.inst[t]; ok {
		in.Eng.CorruptOrdering(rng)
	}
}

// Instance exposes the raw per-topic instance for deterministic tests; it
// must not be used concurrently with a live runtime.
func (c *Client) Instance(t sim.Topic) (*Instance, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	in, ok := c.inst[t]
	return in, ok
}

var _ sim.Handler = (*Client)(nil)
