// Package core implements the subscriber side of the BuildSR protocol —
// the paper's primary contribution (Sections 2.2, 3.2 and 4.1 of Feldmann
// et al.; Algorithms 1, 2 and 4).
//
// Each Subscriber is one per-topic protocol instance. It maintains
//
//   - its label (assigned by the supervisor, ⊥ until then),
//   - its sorted-ring neighbourhood left/right/ring via the extended
//     BuildRing protocol (linearization with label correction),
//   - its shortcut set, derived locally from the ring neighbours' labels
//     and populated bottom-up through IntroduceShortcut messages,
//
// and talks to the supervisor through the four label-acquisition actions
// (i)–(iv) of Section 3.2.1.
package core

import (
	"fmt"
	"sort"

	"sspubsub/internal/label"
	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
)

// Staleness-probe pacing (timeout intervals): a subscriber on a sharded
// supervisor plane that has not heard from its believed owner for
// staleAfter intervals sends a round-robin Reregister probe over the
// supervisor set. The threshold starts at staleProbeInit and doubles on
// every probe up to staleProbeMax — and it never shrinks: on a ring whose
// round-robin refresh gap exceeds the initial threshold (more than
// staleProbeInit members), the threshold ratchets just past the gap after
// a handful of early probes and spurious probing stops for the life of
// the instance, while a genuinely silent plane is still probed within at
// most staleProbeMax intervals.
const (
	staleProbeInit = 16
	staleProbeMax  = 256
)

// Subscriber is one per-topic BuildSR instance. It is driven through
// OnTimeout and OnMessage by the owning node handler (Client).
type Subscriber struct {
	self       sim.NodeID
	supervisor sim.NodeID // current believed topic owner (mutable on a sharded plane)
	topic      sim.Topic

	// plane is the static supervisor set (empty outside a sharded plane).
	// epoch is the ownership era of the last accepted configuration; it is
	// what lets the subscriber ignore a deposed owner's stale commands.
	plane []sim.NodeID
	epoch uint64
	// sinceHeard counts timeouts since the supervisor plane was last heard
	// from; staleAfter is the ratcheting probe threshold (0 = unarmed; see
	// the staleProbe constants) and probeAt the round-robin cursor.
	// desperate is set while a probe is outstanding: an ownership hint of
	// any epoch is then acceptable (the believed owner is silent, possibly
	// forever), though the hint itself never regresses our epoch.
	sinceHeard int
	staleAfter int
	probeAt    int
	desperate  bool

	lab   label.Label
	left  proto.Tuple
	right proto.Tuple
	ring  proto.Tuple
	// shortcuts maps a shortcut slot label to the node reference believed to
	// carry it; sim.None marks a derived slot whose owner is still unknown
	// (the paper's (label, ⊥) entries).
	shortcuts map[label.Label]sim.NodeID

	// leaving is set after the client requested Unsubscribe and cleared once
	// the supervisor grants permission (all-⊥ SetData).
	leaving bool
	// departed is set once permission arrived; the instance stays only to
	// answer residual introductions with RemoveConnections (Lemma 6).
	departed bool

	// version counts every mutation of (label, left, right, ring,
	// shortcuts); the closure experiment asserts it stays constant.
	version uint64

	// ftCache / rnCache memoize FloodTargets and RingNeighbors, keyed by
	// version (stored +1 so the zero value means "never built"). Both are
	// on the publication fan-out path — FloodTargets used to rebuild a
	// map, a sorted slice and a closure on every PublishNew hop — and in
	// a converged overlay the neighbourhood is static, so the steady
	// state is a version compare and a slice return with no allocations.
	ftCache   []sim.NodeID
	ftSlots   []label.Label // scratch for deterministic shortcut ordering
	ftVersion uint64
	rnCache   []proto.Tuple
	rnVersion uint64

	// DisableActionIV switches off the locally-minimal probe (ablation).
	DisableActionIV bool
	// ProbeProb overrides the action (ii) probability schedule 1/(2^k·k²);
	// nil selects the paper's schedule (ablation hook).
	ProbeProb func(k int) float64
}

// NewSubscriber creates a fresh, label-less instance for one topic.
func NewSubscriber(self, supervisor sim.NodeID, topic sim.Topic) *Subscriber {
	return &Subscriber{
		self:       self,
		supervisor: supervisor,
		topic:      topic,
		shortcuts:  make(map[label.Label]sim.NodeID),
	}
}

// ---- ordering ----

// pos is the total order used by linearization: primarily the label's ring
// position, with the node ID breaking ties so that duplicate labels (which
// occur in corrupted initial states) still sort consistently.
type pos struct {
	frac uint64
	id   sim.NodeID
}

func tuplePos(t proto.Tuple) pos { return pos{t.L.Frac(), t.Ref} }

func (p pos) less(q pos) bool {
	if p.frac != q.frac {
		return p.frac < q.frac
	}
	return p.id < q.id
}

func (s *Subscriber) selfPos() pos { return pos{s.lab.Frac(), s.self} }

func (s *Subscriber) selfTuple() proto.Tuple { return proto.Tuple{L: s.lab, Ref: s.self} }

// ---- accessors ----

// Label returns the current label (⊥ if none).
func (s *Subscriber) Label() label.Label { return s.lab }

// Left, Right, Ring return the stored neighbour tuples (⊥ tuples if unset).
func (s *Subscriber) Left() proto.Tuple  { return s.left }
func (s *Subscriber) Right() proto.Tuple { return s.right }
func (s *Subscriber) Ring() proto.Tuple  { return s.ring }

// Topic returns the topic this instance belongs to.
func (s *Subscriber) Topic() sim.Topic { return s.topic }

// Supervisor returns the supervisor this instance currently reports to —
// on a sharded plane, the believed owner of the topic.
func (s *Subscriber) Supervisor() sim.NodeID { return s.supervisor }

// Epoch returns the ownership epoch of the last accepted configuration.
func (s *Subscriber) Epoch() uint64 { return s.epoch }

// SetPlane installs the static supervisor set, enabling owner re-homing
// and staleness probing. A set of one (or none) disables both: there is no
// other supervisor to fail over to.
func (s *Subscriber) SetPlane(plane []sim.NodeID) { s.plane = plane }

// planeMember reports whether id is one of the plane's supervisors.
func (s *Subscriber) planeMember(id sim.NodeID) bool {
	if id == sim.None {
		return false
	}
	for _, p := range s.plane {
		if p == id {
			return true
		}
	}
	return false
}

// heard records supervisor-plane contact. The probe threshold is a
// ratchet, not re-armed: on rings whose refresh gap exceeds the initial
// threshold it has converged past the gap, and resetting it here would
// restart the spurious-probe cycle on every refresh.
func (s *Subscriber) heard() {
	s.sinceHeard = 0
	s.desperate = false
}

// Departed reports whether the supervisor granted an unsubscribe.
func (s *Subscriber) Departed() bool { return s.departed }

// Leaving reports whether an unsubscribe is in flight (requested but not
// yet granted).
func (s *Subscriber) Leaving() bool { return s.leaving }

// Version returns the mutation counter over the instance's explicit state.
func (s *Subscriber) Version() uint64 { return s.version }

// Shortcuts returns a copy of the shortcut slots.
func (s *Subscriber) Shortcuts() map[label.Label]sim.NodeID {
	out := make(map[label.Label]sim.NodeID, len(s.shortcuts))
	for l, v := range s.shortcuts {
		out[l] = v
	}
	return out
}

// RingNeighbors returns the non-⊥ direct ring neighbours (left, right,
// ring), the peers the publication protocol gossips with. The returned
// slice is a cache shared with later calls: it is valid until the next
// state mutation and must not be modified or retained.
func (s *Subscriber) RingNeighbors() []proto.Tuple {
	if s.rnVersion == s.version+1 {
		return s.rnCache
	}
	out := s.rnCache[:0]
	for _, t := range [3]proto.Tuple{s.left, s.right, s.ring} {
		if !t.IsBottom() {
			out = append(out, t)
		}
	}
	s.rnCache, s.rnVersion = out, s.version+1
	return out
}

// FloodTargets returns every known neighbour reference (ring plus resolved
// shortcuts), deduplicated — the edge set ER ∪ ES used by PublishNew
// flooding (Section 4.3). Like RingNeighbors, the returned slice is a
// cache: valid until the next state mutation, not to be modified or
// retained.
func (s *Subscriber) FloodTargets() []sim.NodeID {
	if s.ftVersion == s.version+1 {
		return s.ftCache
	}
	out := s.ftCache[:0]
	add := func(id sim.NodeID) {
		if id == sim.None || id == s.self {
			return
		}
		for _, seen := range out { // the degree is O(log n); linear dedup beats a map
			if seen == id {
				return
			}
		}
		out = append(out, id)
	}
	add(s.left.Ref)
	add(s.right.Ref)
	add(s.ring.Ref)
	// Deterministic order over the map: sort the slots by ring position,
	// with the raw label breaking Frac ties so equal-position slots (which
	// occur only in corrupted states) cannot reintroduce map-iteration
	// nondeterminism.
	slots := s.ftSlots[:0]
	for l := range s.shortcuts {
		slots = append(slots, l)
	}
	sort.Slice(slots, func(i, j int) bool {
		if fi, fj := slots[i].Frac(), slots[j].Frac(); fi != fj {
			return fi < fj
		}
		if slots[i].Bits != slots[j].Bits {
			return slots[i].Bits < slots[j].Bits
		}
		return slots[i].Len < slots[j].Len
	})
	for _, l := range slots {
		add(s.shortcuts[l])
	}
	s.ftSlots = slots
	s.ftCache, s.ftVersion = out, s.version+1
	return out
}

// Degree returns the number of distinct known neighbours.
func (s *Subscriber) Degree() int { return len(s.FloodTargets()) }

// ---- state mutation helpers (all explicit-state changes counted) ----

func (s *Subscriber) setLabel(l label.Label) {
	if s.lab != l {
		s.lab = l
		s.version++
	}
}

func (s *Subscriber) setSlot(slot *proto.Tuple, t proto.Tuple) {
	if *slot != t {
		*slot = t
		s.version++
	}
}

// ---- Timeout (Algorithm 4 lines 1–14, Algorithm 2, Algorithm 1) ----

// OnTimeout runs the periodic subscriber action.
func (s *Subscriber) OnTimeout(ctx sim.Context) {
	if s.departed {
		return
	}
	s.sinceHeard++
	s.maybeProbeOwner(ctx)
	if s.leaving {
		// Re-request until the supervisor grants permission (the initial
		// Unsubscribe may have raced with database repair).
		ctx.Send(s.supervisor, s.topic, proto.Unsubscribe{V: s.self})
		return
	}
	if s.lab.IsBottom() {
		// Action (i): ask the supervisor to integrate us.
		ctx.Send(s.supervisor, s.topic, proto.Subscribe{V: s.self})
		return
	}

	s.buildRingTimeout(ctx)
	s.maintainShortcuts(ctx)
	s.superviseProbe(ctx)
}

// maybeProbeOwner is the subscriber side of supervisor-crash recovery: if
// the believed owner has been silent past the adaptive threshold, ask the
// next supervisor in round-robin order who owns us now. The probe is a
// Reregister carrying our label and epoch — a live owner (or successor
// that adopted the topic) re-admits us directly; any other supervisor
// answers with an OwnerAnnounce redirect. A leaving instance probes with
// Unsubscribe instead: it wants out, not back in.
func (s *Subscriber) maybeProbeOwner(ctx sim.Context) {
	if len(s.plane) <= 1 {
		return
	}
	if s.staleAfter <= 0 {
		s.staleAfter = staleProbeInit
	}
	if s.sinceHeard < s.staleAfter {
		return
	}
	s.sinceHeard = 0
	if s.staleAfter < staleProbeMax {
		s.staleAfter *= 2
	}
	s.desperate = true
	target := s.plane[s.probeAt%len(s.plane)]
	s.probeAt++
	if s.leaving {
		ctx.Send(target, s.topic, proto.Unsubscribe{V: s.self})
		return
	}
	ctx.Send(target, s.topic, proto.Reregister{V: s.self, Label: s.lab, Epoch: s.epoch})
}

// buildRingTimeout is the extended BuildRing periodic action (Algorithm 2
// calling Algorithm 1): re-side mis-sorted neighbours, introduce ourselves
// to both list neighbours (with the labels we believe they have), and
// maintain the cyclic closure edge.
func (s *Subscriber) buildRingTimeout(ctx sim.Context) {
	me := s.selfPos()

	// Self-references are stale garbage from corrupted states.
	if s.left.Ref == s.self {
		s.setSlot(&s.left, proto.Tuple{})
	}
	if s.right.Ref == s.self {
		s.setSlot(&s.right, proto.Tuple{})
	}
	if s.ring.Ref == s.self {
		s.setSlot(&s.ring, proto.Tuple{})
	}

	// Algorithm 1: a neighbour stored on the wrong side is re-linearized.
	if !s.left.IsBottom() && !tuplePos(s.left).less(me) {
		c := s.left
		s.setSlot(&s.left, proto.Tuple{})
		s.linearize(ctx, c)
	}
	if !s.right.IsBottom() && !me.less(tuplePos(s.right)) {
		c := s.right
		s.setSlot(&s.right, proto.Tuple{})
		s.linearize(ctx, c)
	}

	// Introduce ourselves to the list neighbours, telling each the label we
	// think it has so it can correct us (Section 2.2 extension).
	if !s.left.IsBottom() {
		ctx.Send(s.left.Ref, s.topic, proto.Check{Sender: s.selfTuple(), YourLabel: s.left.L, Flag: proto.LIN})
	}
	if !s.right.IsBottom() {
		ctx.Send(s.right.Ref, s.topic, proto.Check{Sender: s.selfTuple(), YourLabel: s.right.L, Flag: proto.LIN})
	}

	// Algorithm 2: cyclic closure maintenance.
	if s.ring.IsBottom() {
		// An extreme without a closure edge announces itself around the
		// ring so the opposite extreme can adopt it.
		if s.left.IsBottom() && !s.right.IsBottom() {
			ctx.Send(s.right.Ref, s.topic, proto.Introduce{C: s.selfTuple(), Flag: proto.CYC})
		} else if s.right.IsBottom() && !s.left.IsBottom() {
			ctx.Send(s.left.Ref, s.topic, proto.Introduce{C: s.selfTuple(), Flag: proto.CYC})
		}
		return
	}
	rp := tuplePos(s.ring)
	switch {
	case s.left.IsBottom() && me.less(rp):
		// We look like the minimum: the ring edge points to the maximum.
		ctx.Send(s.ring.Ref, s.topic, proto.Check{Sender: s.selfTuple(), YourLabel: s.ring.L, Flag: proto.CYC})
	case s.right.IsBottom() && rp.less(me):
		// We look like the maximum: the ring edge points to the minimum.
		ctx.Send(s.ring.Ref, s.topic, proto.Check{Sender: s.selfTuple(), YourLabel: s.ring.L, Flag: proto.CYC})
	case !s.left.IsBottom() && me.less(rp):
		// Not an extreme: pass the closure candidate toward the minimum.
		c := s.ring
		s.setSlot(&s.ring, proto.Tuple{})
		ctx.Send(s.left.Ref, s.topic, proto.Introduce{C: c, Flag: proto.CYC})
	case !s.right.IsBottom() && rp.less(me):
		c := s.ring
		s.setSlot(&s.ring, proto.Tuple{})
		ctx.Send(s.right.Ref, s.topic, proto.Introduce{C: c, Flag: proto.CYC})
	default:
		// Isolated node holding only a ring edge: treat as list candidate.
		c := s.ring
		s.setSlot(&s.ring, proto.Tuple{})
		s.linearize(ctx, c)
	}
}

// circularNeighbors returns the effective left and right neighbours on the
// circle: the list neighbours where present, with the closure edge standing
// in for the missing side at the extremes ("we use v.left and v.right to
// indicate v's neighbor in the ring even if stored in v.ring", Section 3.2).
func (s *Subscriber) circularNeighbors() (left, right proto.Tuple) {
	left, right = s.left, s.right
	if !s.ring.IsBottom() {
		me := s.selfPos()
		if left.IsBottom() && me.less(tuplePos(s.ring)) {
			left = s.ring // we are the minimum: circular left is the maximum
		}
		if right.IsBottom() && tuplePos(s.ring).less(me) {
			right = s.ring // we are the maximum: circular right is the minimum
		}
	}
	return left, right
}

// maintainShortcuts recomputes the desired shortcut slot set from the
// current circular neighbours (Section 3.2.2) and performs the periodic
// level-k introduction that builds rings bottom-up (Algorithm 4 lines
// 12–14; Lemma 12).
func (s *Subscriber) maintainShortcuts(ctx sim.Context) {
	effLeft, effRight := s.circularNeighbors()
	var leftL, rightL label.Label
	if !effLeft.IsBottom() {
		leftL = effLeft.L
	}
	if !effRight.IsBottom() {
		rightL = effRight.L
	}
	want, levelLeft, levelRight := label.Shortcuts(s.lab, leftL, rightL)
	desired := make(map[label.Label]bool, len(want))
	for _, l := range want {
		desired[l] = true
	}
	// Drop slots we should no longer have; their occupants are delegated
	// back into the sorted list so the references are not lost. Iterate in
	// label order, not map order: dropping several slots (which happens
	// from corrupted states) sends one Linearize each, and the send order
	// determines how random delivery delays are drawn — a map-order walk
	// would break equal-seed replay.
	slots := make([]label.Label, 0, len(s.shortcuts))
	for l := range s.shortcuts {
		slots = append(slots, l)
	}
	sort.Slice(slots, func(i, j int) bool {
		if slots[i].Frac() != slots[j].Frac() {
			return slots[i].Frac() < slots[j].Frac()
		}
		return slots[i].Len < slots[j].Len // corrupted labels can collide on Frac
	})
	for _, l := range slots {
		if !desired[l] {
			ref := s.shortcuts[l]
			delete(s.shortcuts, l)
			s.version++
			if ref != sim.None && ref != s.self {
				s.linearize(ctx, proto.Tuple{L: l, Ref: ref})
			}
		}
	}
	for l := range desired {
		if _, ok := s.shortcuts[l]; !ok {
			s.shortcuts[l] = sim.None
			s.version++
		}
	}

	// Level-k introduction: our two level-|label| neighbours are adjacent in
	// R_{|label|−1}; introduce them to each other. When we are a
	// deepest-level node the pair is simply (left, right) — levelLeft and
	// levelRight equal the ring neighbour labels then.
	lt := s.resolve(levelLeft)
	rt := s.resolve(levelRight)
	if lt.IsBottom() || rt.IsBottom() || lt.Ref == rt.Ref {
		return
	}
	ctx.Send(lt.Ref, s.topic, proto.IntroduceShortcut{T: rt})
	ctx.Send(rt.Ref, s.topic, proto.IntroduceShortcut{T: lt})
}

// resolve maps a derived shortcut label to the tuple we currently hold for
// it: a direct ring neighbour (including the closure edge) when the label
// matches one, otherwise the shortcut slot occupant.
func (s *Subscriber) resolve(l label.Label) proto.Tuple {
	if l.IsBottom() {
		return proto.Tuple{}
	}
	for _, t := range []proto.Tuple{s.left, s.right, s.ring} {
		if !t.IsBottom() && t.L == l {
			return t
		}
	}
	if ref, ok := s.shortcuts[l]; ok && ref != sim.None {
		return proto.Tuple{L: l, Ref: ref}
	}
	return proto.Tuple{}
}

// superviseProbe implements actions (ii) and (iv) of Section 3.2.1
// (Algorithm 4 lines 7–11).
func (s *Subscriber) superviseProbe(ctx sim.Context) {
	if !s.DisableActionIV && s.left.IsBottom() && s.lab != label.FromIndex(0) {
		// Action (iv): we look locally minimal (no smaller neighbour known)
		// yet do not hold the minimal label l(0) — in a legitimate state the
		// locally minimal node is exactly the label-0 node, so this is a
		// sure sign of an unrecorded component (isolated nodes, partitioned
		// mini-rings). The label-0 node itself never triggers, which keeps
		// Theorem 5's accounting intact.
		if ctx.Rand().Float64() < 0.5 {
			ctx.Send(s.supervisor, s.topic, proto.GetConfiguration{V: s.self})
		}
		return
	}
	// Action (ii): probe with probability 1/(2^k · k²), k = |label|.
	k := int(s.lab.Len)
	var p float64
	if s.ProbeProb != nil {
		p = s.ProbeProb(k)
	} else {
		p = 1.0 / (float64(uint64(1)<<uint(k)) * float64(k) * float64(k))
	}
	if ctx.Rand().Float64() < p {
		ctx.Send(s.supervisor, s.topic, proto.GetConfiguration{V: s.self})
	}
}

// Leave starts an unsubscribe (Section 4.1). The instance keeps running
// until the supervisor grants permission.
func (s *Subscriber) Leave(ctx sim.Context) {
	s.leaving = true
	ctx.Send(s.supervisor, s.topic, proto.Unsubscribe{V: s.self})
}

// ---- message handling ----

// OnMessage dispatches one protocol message to this instance.
func (s *Subscriber) OnMessage(ctx sim.Context, m sim.Message) {
	switch b := m.Body.(type) {
	case proto.SetData:
		s.onSetData(ctx, m.From, b)
	case proto.OwnerAnnounce:
		s.onOwnerAnnounce(ctx, b)
	case proto.Check:
		s.onCheck(ctx, b)
	case proto.Introduce:
		s.handleIntroduce(ctx, b.C, b.Flag)
	case proto.Linearize:
		s.onLinearizeMsg(ctx, b.V)
	case proto.RemoveConnections:
		s.removeConnections(b.V)
	case proto.IntroduceShortcut:
		s.onIntroduceShortcut(ctx, b.T)
	}
}

// onSetData processes a configuration from the supervisor (Algorithm 4
// SetData), including action (iii) of Section 3.2.1. On a sharded plane
// the sender and epoch are screened first: a configuration from a node
// other than the believed owner is accepted only from a plane supervisor
// whose era is at least ours — accepting re-homes us to that supervisor —
// while a deposed owner's stale command (older epoch) is ignored without
// touching any state.
func (s *Subscriber) onSetData(ctx sim.Context, from sim.NodeID, d proto.SetData) {
	if from != sim.None && from != s.supervisor {
		if !s.planeMember(from) || d.Epoch < s.epoch {
			return
		}
		if !s.departed {
			s.supervisor = from
		}
	}
	if from == s.supervisor {
		// The believed owner is authoritative for the era — follow it even
		// downward, so a supervisor whose epoch state was corrupted can
		// re-converge with its subscribers instead of being ignored forever.
		s.epoch = d.Epoch
		s.heard()
	}
	if s.departed {
		// A non-⊥ configuration for a departed instance means the database
		// re-recorded us: our pre-departure Subscribe (action (i) retries,
		// or the original join) was reordered past the unsubscribe grant —
		// channels are non-FIFO — and arrived after the supervisor deleted
		// our tuple. Nothing else ever removes that entry (the failure
		// detector only screens crashed nodes, and a departed instance
		// neither probes nor rejoins), so the db ↔ membership disagreement
		// would be permanent: answer with Unsubscribe until the database
		// forgets us again. Found by the chaos engine's churn scenarios.
		if !d.Label.IsBottom() {
			to := from
			if to == sim.None {
				to = s.supervisor
			}
			ctx.Send(to, s.topic, proto.Unsubscribe{V: s.self})
		}
		return
	}
	if s.leaving {
		if d.Label.IsBottom() {
			// Permission granted: drop the label and ask every neighbour to
			// delete its edges to us (Lemma 6).
			s.grantDeparture(ctx)
		}
		// Otherwise our Unsubscribe raced; OnTimeout re-sends it.
		return
	}
	if d.Label.IsBottom() {
		// Not recorded: clear the label; action (i) on the next timeout
		// re-subscribes us. Stored neighbour references are kept — they are
		// re-linearized once the new label arrives.
		s.setLabel(label.Bottom)
		return
	}

	// Action (iii): if a stored direct ring neighbour is circularly closer
	// than the one the database proposes, that neighbour is unknown to the
	// supervisor — request its configuration on its behalf.
	s.requestCloserNeighbors(ctx, d)

	s.setLabel(d.Label)
	me := s.selfPos()

	// Overwrite the slots with the authoritative configuration ("Update
	// u.left, u.right, u.ring w.r.t. pred, succ and label", Algorithm 4).
	// Displaced occupants are NOT re-circulated: a displaced live node is
	// re-served by the round-robin refresh (and action (iii) above already
	// requested configurations for the closer ones), while a displaced
	// reference to a crashed node must die here — re-linearizing it would
	// let it win placement contests forever. A pred on the "wrong" side
	// means we are the minimum and pred is the cyclic closure edge
	// (likewise succ/maximum).
	var newLeft, newRight, newRing proto.Tuple
	if !d.Pred.IsBottom() && d.Pred.Ref != s.self {
		if tuplePos(d.Pred).less(me) {
			newLeft = d.Pred
		} else {
			newRing = d.Pred
		}
	}
	if !d.Succ.IsBottom() && d.Succ.Ref != s.self {
		if me.less(tuplePos(d.Succ)) {
			newRight = d.Succ
		} else {
			newRing = d.Succ // n = 2: pred = succ; keep one closure edge
		}
	}
	s.setSlot(&s.left, newLeft)
	s.setSlot(&s.right, newRight)
	s.setSlot(&s.ring, newRing)
}

// onOwnerAnnounce processes an ownership hint: the topic is (believed to
// be) owned by a.Owner at era a.Epoch. Hints naming a newer era are always
// followed; equal-or-older hints are followed only while this subscriber
// is desperate (its believed owner has gone silent) — and never regress
// the epoch, so a deposed owner cannot talk anyone back into its era.
// Following a hint re-homes the instance and immediately re-registers
// with the new owner (or re-requests the unsubscribe, if leaving), which
// is how a successor's database gets rebuilt from the live overlay.
func (s *Subscriber) onOwnerAnnounce(ctx sim.Context, a proto.OwnerAnnounce) {
	if s.departed || !s.planeMember(a.Owner) {
		return
	}
	if a.Owner == s.supervisor {
		if a.Epoch > s.epoch {
			s.epoch = a.Epoch
		}
		s.heard()
		return
	}
	if a.Epoch <= s.epoch && !s.desperate {
		return
	}
	s.supervisor = a.Owner
	if a.Epoch > s.epoch {
		s.epoch = a.Epoch
	}
	s.heard()
	if s.leaving {
		ctx.Send(s.supervisor, s.topic, proto.Unsubscribe{V: s.self})
		return
	}
	ctx.Send(s.supervisor, s.topic, proto.Reregister{V: s.self, Label: s.lab, Epoch: s.epoch})
}

// requestCloserNeighbors implements action (iii): compare the stored
// direct ring neighbours against the configuration and ask the supervisor
// to refresh any stored neighbour that is circularly closer than the
// database's proposal.
func (s *Subscriber) requestCloserNeighbors(ctx sim.Context, d proto.SetData) {
	lab := d.Label
	closer := func(stored proto.Tuple, proposed proto.Tuple) bool {
		if stored.IsBottom() || stored.Ref == s.self {
			return false
		}
		if proposed.IsBottom() {
			return true
		}
		if stored.Ref == proposed.Ref {
			return false
		}
		return label.CircularDistance(stored.L, lab) <= label.CircularDistance(proposed.L, lab)
	}
	if closer(s.left, d.Pred) {
		ctx.Send(s.supervisor, s.topic, proto.GetConfiguration{V: s.left.Ref})
	}
	if closer(s.right, d.Succ) {
		ctx.Send(s.supervisor, s.topic, proto.GetConfiguration{V: s.right.Ref})
	}
	if !s.ring.IsBottom() && s.ring.Ref != s.self {
		// The ring edge corresponds to whichever side of the configuration
		// wraps around: pred for the minimum, succ for the maximum.
		var against proto.Tuple
		if tuplePos(s.ring).less(pos{lab.Frac(), s.self}) {
			against = d.Succ
		} else {
			against = d.Pred
		}
		if closer(s.ring, against) {
			ctx.Send(s.supervisor, s.topic, proto.GetConfiguration{V: s.ring.Ref})
		}
	}
}

// grantDeparture finalizes an unsubscribe: label ⊥, all edges dropped, and
// RemoveConnections sent to every known neighbour.
func (s *Subscriber) grantDeparture(ctx sim.Context) {
	for _, id := range s.FloodTargets() {
		ctx.Send(id, s.topic, proto.RemoveConnections{V: s.self})
	}
	s.setLabel(label.Bottom)
	s.setSlot(&s.left, proto.Tuple{})
	s.setSlot(&s.right, proto.Tuple{})
	s.setSlot(&s.ring, proto.Tuple{})
	if len(s.shortcuts) > 0 {
		s.shortcuts = make(map[label.Label]sim.NodeID)
		s.version++
	}
	s.departed = true
	s.leaving = false
}

// onCheck answers the periodic self-introduction: correct the sender's
// stale view of our label, or accept the introduction (Algorithm 1 Check).
func (s *Subscriber) onCheck(ctx sim.Context, c proto.Check) {
	if s.lab.IsBottom() {
		ctx.Send(c.Sender.Ref, s.topic, proto.RemoveConnections{V: s.self})
		return
	}
	if c.YourLabel != s.lab {
		ctx.Send(c.Sender.Ref, s.topic, proto.Introduce{C: s.selfTuple(), Flag: c.Flag})
		return
	}
	s.handleIntroduce(ctx, c.Sender, c.Flag)
}

func (s *Subscriber) onLinearizeMsg(ctx sim.Context, v proto.Tuple) {
	if s.lab.IsBottom() {
		if v.Ref != s.self && v.Ref != sim.None {
			ctx.Send(v.Ref, s.topic, proto.RemoveConnections{V: s.self})
		}
		return
	}
	s.correctStoredLabel(v)
	s.linearize(ctx, v)
}

// handleIntroduce processes an Introduce (Algorithm 2): ⊥-labelled nodes
// refuse with RemoveConnections; otherwise the candidate's label corrects
// stale stored tuples, and it is processed as cycle-closure (CYC) or list
// (LIN) traffic.
func (s *Subscriber) handleIntroduce(ctx sim.Context, c proto.Tuple, flag proto.Flag) {
	if s.lab.IsBottom() {
		if c.Ref != s.self && c.Ref != sim.None {
			ctx.Send(c.Ref, s.topic, proto.RemoveConnections{V: s.self})
		}
		return
	}
	if c.Ref == s.self || c.Ref == sim.None || c.L.IsBottom() {
		return
	}
	s.correctStoredLabel(c)
	if flag == proto.CYC {
		s.handleCYC(ctx, c)
		return
	}
	s.linearize(ctx, c)
}

// correctStoredLabel updates stored tuples whose reference matches c but
// whose label is stale (Algorithm 1 lines 16–22 and Algorithm 2 lines
// 18–23): if the tuple stays on the same side it is relabelled in place,
// otherwise the slot is cleared (the candidate is then re-placed by the
// caller's linearization).
func (s *Subscriber) correctStoredLabel(c proto.Tuple) {
	me := s.selfPos()
	fix := func(slot *proto.Tuple, wantLess bool) {
		if slot.IsBottom() || slot.Ref != c.Ref || slot.L == c.L {
			return
		}
		if tuplePos(c).less(me) == wantLess && tuplePos(c) != me {
			s.setSlot(slot, c)
		} else {
			s.setSlot(slot, proto.Tuple{})
		}
	}
	fix(&s.left, true)
	fix(&s.right, false)
	if !s.ring.IsBottom() && s.ring.Ref == c.Ref && s.ring.L != c.L {
		// The closure edge keeps pointing at the opposite extreme only if
		// the corrected label stays on the same side.
		sameSide := tuplePos(c).less(me) == tuplePos(s.ring).less(me)
		if sameSide {
			s.setSlot(&s.ring, c)
		} else {
			s.setSlot(&s.ring, proto.Tuple{})
		}
	}
	// Shortcut slots are keyed by label: a slot holding c's reference under
	// a different label is stale (c has exactly one label). Clear it — the
	// level-pair introductions refill it with a verified owner. Without
	// this, stale (label, ref) pairs survive in shortcut slots and keep
	// re-infecting neighbours through IntroduceShortcut.
	for slot, ref := range s.shortcuts {
		if ref == c.Ref && slot != c.L {
			s.shortcuts[slot] = sim.None
			s.version++
		}
	}
}

// handleCYC routes or adopts a cyclic-closure candidate (Algorithm 2
// Introduce with flag CYC).
func (s *Subscriber) handleCYC(ctx sim.Context, c proto.Tuple) {
	me := s.selfPos()
	cp := tuplePos(c)
	if cp == me {
		return
	}
	if s.ring.IsBottom() {
		if cp.less(me) {
			if s.right.IsBottom() {
				s.setSlot(&s.ring, c) // we are the maximum: adopt the minimum
			} else {
				ctx.Send(s.right.Ref, s.topic, proto.Introduce{C: c, Flag: proto.CYC})
			}
		} else {
			if s.left.IsBottom() {
				s.setSlot(&s.ring, c) // we are the minimum: adopt the maximum
			} else {
				ctx.Send(s.left.Ref, s.topic, proto.Introduce{C: c, Flag: proto.CYC})
			}
		}
		return
	}
	rp := tuplePos(s.ring)
	if cp.less(me) == rp.less(me) {
		// Same side: keep the farther node as the closure edge, linearize
		// the closer one (Algorithm 2 lines 30–34).
		if c.Ref == s.ring.Ref {
			return
		}
		var far, near proto.Tuple
		if distance(me, cp) > distance(me, rp) {
			far, near = c, s.ring
		} else {
			far, near = s.ring, c
		}
		s.setSlot(&s.ring, far)
		s.linearize(ctx, near)
		return
	}
	// Opposite sides: we cannot be the extreme both ways; re-linearize both
	// (Algorithm 2 lines 35–38).
	old := s.ring
	s.setSlot(&s.ring, proto.Tuple{})
	s.linearize(ctx, old)
	s.linearize(ctx, c)
}

// distance is the linear distance between two positions, used only to pick
// the farther of two same-side closure candidates.
func distance(a, b pos) uint64 {
	if a.frac > b.frac {
		return a.frac - b.frac
	}
	return b.frac - a.frac
}

// linearize places candidate c in the sorted list (the BuildList protocol,
// Algorithm 1 Linearize): adopt it if it is closer than the current
// neighbour on its side, delegating the displaced node toward c; otherwise
// delegate c toward its position.
func (s *Subscriber) linearize(ctx sim.Context, c proto.Tuple) {
	if c.Ref == s.self || c.Ref == sim.None || c.L.IsBottom() {
		return
	}
	s.correctStoredLabel(c)
	me := s.selfPos()
	cp := tuplePos(c)
	if cp.frac == me.frac {
		// A node claiming our own label: a duplicate that only the
		// supervisor can resolve (or a stale reference to a node that used
		// to hold it). Never adopt; refer it to the supervisor.
		if c.Ref != s.self {
			ctx.Send(s.supervisor, s.topic, proto.GetConfiguration{V: c.Ref})
		}
		return
	}
	switch {
	case cp == me:
		return
	case cp.less(me):
		switch {
		case s.left.IsBottom():
			s.setSlot(&s.left, c)
		case c == s.left:
			return
		case c.Ref != s.left.Ref && cp.frac == s.left.L.Frac():
			// A candidate at the occupant's exact position is a duplicate
			// label — possibly a stale reference to a crashed node. Swapping
			// on an ID tie-break would let dead references displace live
			// ones forever; keep the occupant (our own SetData refresh is
			// authoritative for this slot) and refer the claimant to the
			// supervisor, where a live duplicate is corrected and a dead one
			// evaporates.
			ctx.Send(s.supervisor, s.topic, proto.GetConfiguration{V: c.Ref})
		case tuplePos(s.left).less(cp):
			// c lies strictly between left and us: adopt, delegate old left.
			old := s.left
			s.setSlot(&s.left, c)
			ctx.Send(c.Ref, s.topic, proto.Linearize{V: old})
		case c.Ref == s.left.Ref:
			return // same node, label already corrected
		default:
			ctx.Send(s.left.Ref, s.topic, proto.Linearize{V: c})
		}
	default:
		switch {
		case s.right.IsBottom():
			s.setSlot(&s.right, c)
		case c == s.right:
			return
		case c.Ref != s.right.Ref && cp.frac == s.right.L.Frac():
			ctx.Send(s.supervisor, s.topic, proto.GetConfiguration{V: c.Ref})
		case cp.less(tuplePos(s.right)):
			old := s.right
			s.setSlot(&s.right, c)
			ctx.Send(c.Ref, s.topic, proto.Linearize{V: old})
		case c.Ref == s.right.Ref:
			return
		default:
			ctx.Send(s.right.Ref, s.topic, proto.Linearize{V: c})
		}
	}
}

// removeConnections deletes every edge to v (sent by departing or
// ⊥-labelled nodes, Lemma 6).
func (s *Subscriber) removeConnections(v sim.NodeID) {
	if v == sim.None {
		return
	}
	if s.left.Ref == v {
		s.setSlot(&s.left, proto.Tuple{})
	}
	if s.right.Ref == v {
		s.setSlot(&s.right, proto.Tuple{})
	}
	if s.ring.Ref == v {
		s.setSlot(&s.ring, proto.Tuple{})
	}
	for l, ref := range s.shortcuts {
		if ref == v {
			s.shortcuts[l] = sim.None
			s.version++
		}
	}
}

// onIntroduceShortcut adopts a shortcut introduction (Algorithm 4
// IntroduceShortcut): if we maintain a slot for T's label, occupy it and
// re-linearize any displaced occupant; otherwise treat T as a list
// candidate.
func (s *Subscriber) onIntroduceShortcut(ctx sim.Context, t proto.Tuple) {
	if s.lab.IsBottom() {
		if t.Ref != s.self && t.Ref != sim.None {
			ctx.Send(t.Ref, s.topic, proto.RemoveConnections{V: s.self})
		}
		return
	}
	if t.Ref == s.self || t.Ref == sim.None || t.L.IsBottom() {
		return
	}
	if old, ok := s.shortcuts[t.L]; ok {
		if old != t.Ref {
			s.shortcuts[t.L] = t.Ref
			s.version++
			if old != sim.None && old != s.self {
				s.linearize(ctx, proto.Tuple{L: t.L, Ref: old})
			}
			// Verify the adoption: if T's real label differs, it replies
			// with an Introduce carrying the truth, and correctStoredLabel
			// clears this slot again. Adoptions only happen when the slot
			// changes, so a legitimate state stays silent.
			ctx.Send(t.Ref, s.topic, proto.Check{Sender: s.selfTuple(), YourLabel: t.L, Flag: proto.LIN})
		}
		return
	}
	s.linearize(ctx, t)
}

// ApplyToken installs the positional configuration carried by a
// deterministic token pass (the token-passing supervisor variant of the
// paper's conclusion): the label derived from the receiver's ring position
// and the predecessor tuple. Right/ring slots are left to linearization
// and the cycle-closure introductions; a matching state mutates nothing,
// so steady-state passes preserve closure.
func (s *Subscriber) ApplyToken(lab label.Label, pred proto.Tuple) {
	if s.departed || s.leaving || lab.IsBottom() {
		return
	}
	s.setLabel(lab)
	if pred.IsBottom() {
		// Position 0: the minimum has no list predecessor.
		s.setSlot(&s.left, proto.Tuple{})
		return
	}
	if pred.Ref != s.self && tuplePos(pred).less(s.selfPos()) {
		s.setSlot(&s.left, pred)
	}
}

// DebugString renders the instance state compactly.
func (s *Subscriber) DebugString() string {
	return fmt.Sprintf("sub %d t%d label=%s left=%s right=%s ring=%s |sc|=%d",
		s.self, s.topic, s.lab, s.left, s.right, s.ring, len(s.shortcuts))
}

// ---- test hooks: corrupted initial states ----

// ForceState overwrites the instance's explicit state (arbitrary initial
// states of the self-stabilization experiments).
func (s *Subscriber) ForceState(lab label.Label, left, right, ring proto.Tuple, shortcuts map[label.Label]sim.NodeID) {
	s.lab = lab
	s.left, s.right, s.ring = left, right, ring
	s.shortcuts = make(map[label.Label]sim.NodeID)
	for l, v := range shortcuts {
		s.shortcuts[l] = v
	}
	s.version++
}
