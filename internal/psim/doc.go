// Package psim is a conservative parallel discrete-event engine for the
// deterministic simulation substrate: the multi-core sibling of
// sim.Scheduler, built for the million-subscriber scale sweeps.
//
// # Model
//
// Nodes (and the scale harness' virtual pool listeners) are partitioned
// across a fixed number of lanes by a deterministic hash of NodeID. Each
// lane owns an event min-heap, a random stream derived from (seed, lane),
// and the exclusive right to execute its nodes' handlers. Virtual time
// advances in lookahead windows of width MinDelay: the transport
// guarantees that a message sent at time t is delivered no earlier than
// t+MinDelay, so two events inside the same window can never causally
// affect one another — which makes every lane's window slice independent
// and safe to execute in parallel. Cross-lane sends are buffered per
// (srcLane, dstLane) during the window and merged at the barrier; every
// event carries a (deliverTime, srcLane, per-lane seq) key assigned at
// creation, so heaps order identically no matter which worker produced
// which event, and the merged schedule is canonical.
//
// # Determinism contract
//
// The schedule identity is (Seed, Lanes, MinDelay, MaxDelay). Two runs
// with the same identity produce bit-identical results — labels, round
// counts, delivery traces, accounting — for ANY value of Workers,
// including Workers=1, which executes the whole schedule inline on the
// calling goroutine with no goroutines at all. Workers is physical
// parallelism only; it can change wall-clock time and nothing else.
// Changing Lanes changes the (still deterministic) schedule, the same way
// changing Seed does.
//
// Randomness rules that uphold the contract: handlers draw from their
// executing lane's stream; per-node timeout phases are pure functions of
// (seed, nodeID); driver injections with an unregistered From draw from a
// dedicated external stream; SetLaneFault builds one filter per lane over
// a dedicated per-lane fault stream. Nothing ever draws from a stream
// another worker could be advancing.
//
// # Barrier operations
//
// Unlike sim.Scheduler there is no single-event Step; the unit of progress
// is the window. Topology mutation (AddNode, AddListener, RemoveNode,
// Crash), external Send/InjectAt, fault installation and the accounting
// accessors are barrier operations — call them between Run* calls, never
// from inside a handler. Handlers interact with the engine only through
// their Context.
package psim
